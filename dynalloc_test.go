package dynalloc_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"dynalloc"
)

func TestPublicAPIQuickstart(t *testing.T) {
	w, err := dynalloc.GenerateWorkflow("bimodal", 80, 42)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := dynalloc.NewAllocator(dynalloc.ExhaustiveBucketing, dynalloc.AllocatorConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynalloc.Simulate(dynalloc.SimConfig{
		Workflow: w,
		Policy:   alloc,
		Pool:     dynalloc.StaticPool(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []dynalloc.Kind{dynalloc.Cores, dynalloc.Memory, dynalloc.Disk} {
		awe := res.Acc.AWE(k)
		if awe <= 0 || awe > 1 {
			t.Errorf("AWE(%s) = %v", k, awe)
		}
	}
}

func TestPublicAPISequentialAndOracle(t *testing.T) {
	w, err := dynalloc.GenerateWorkflow("normal", 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynalloc.SimulateSequential(w, dynalloc.NewOracle(w), dynalloc.RampEarly)
	if err != nil {
		t.Fatal(err)
	}
	if awe := res.Acc.AWE(dynalloc.Memory); math.Abs(awe-1) > 1e-9 {
		t.Errorf("oracle AWE = %v", awe)
	}
}

func TestPublicAPINames(t *testing.T) {
	if len(dynalloc.AlgorithmNames()) != 7 {
		t.Error("expected 7 algorithms")
	}
	if len(dynalloc.WorkflowNames()) != 7 {
		t.Error("expected 7 workloads")
	}
	v := dynalloc.NewVector(1, 2, 3, 4)
	if v.Get(dynalloc.Disk) != 3 {
		t.Error("vector accessor broken")
	}
	if dynalloc.PaperWorker().Get(dynalloc.Cores) != 16 {
		t.Error("paper worker shape")
	}
}

func TestPublicAPIPools(t *testing.T) {
	for _, pool := range []dynalloc.PoolModel{
		dynalloc.StaticPool(5),
		dynalloc.BackfillPool(2, 6, 30),
		dynalloc.ChurnPool(3, 600, 300, 3600),
	} {
		if len(pool.Schedule(1)) == 0 {
			t.Errorf("pool %s produced no workers", pool.Name())
		}
	}
}

// TestLargeWorkflowConvergence checks the paper's future-work hypothesis
// (Section VII): the bucketing algorithms should perform at least as well on
// much larger workflows, since they converge to a steady state within a few
// thousand tasks.
func TestLargeWorkflowConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("large workflow test skipped in -short mode")
	}
	aweAt := func(n int) float64 {
		w, err := dynalloc.GenerateWorkflow("bimodal", n, 42)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := dynalloc.NewAllocator(dynalloc.ExhaustiveBucketing, dynalloc.AllocatorConfig{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := dynalloc.SimulateSequential(w, pol, dynalloc.RampEarly)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acc.AWE(dynalloc.Memory)
	}
	small := aweAt(1000)
	large := aweAt(12000)
	if large < small-0.05 {
		t.Errorf("12000-task AWE %.3f fell more than 5%% below 1000-task AWE %.3f", large, small)
	}
}

func TestPublicAPIFlowAndData(t *testing.T) {
	alloc, err := dynalloc.NewAllocator(dynalloc.GreedyBucketing, dynalloc.AllocatorConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := dynalloc.NewFlow(dynalloc.NewLocalExecutor(alloc, dynalloc.RampEarly))
	for i := 0; i < 15; i++ {
		f.Submit("api", dynalloc.Task{Consumption: dynalloc.NewVector(1, 300, 50, 10)})
	}
	if got := len(f.WaitAll()); got != 15 {
		t.Fatalf("outcomes = %d", got)
	}
	if f.Metrics().AWE(dynalloc.Memory) <= 0 {
		t.Error("flow metrics empty")
	}

	w, err := dynalloc.GenerateWorkflow("colmena", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	layer := dynalloc.NewDataLayer()
	dynalloc.AttachData(layer, w, 5)
	if layer.InputMB(1) <= 0 {
		t.Error("data layer empty after AttachData")
	}
	res, err := dynalloc.Simulate(dynalloc.SimConfig{
		Workflow: w,
		Policy:   dynalloc.NewOracle(w),
		Pool:     dynalloc.CondorPool(60, 0.3, 20),
		Place:    dynalloc.PlaceLocality,
		Data:     layer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != w.Len() {
		t.Fatalf("completed %d tasks", len(res.Outcomes))
	}

	p := dynalloc.PerturbWorkflow(w, dynalloc.Perturbation{Jitter: 0.05}, 6)
	if p.Len() != w.Len() {
		t.Error("perturbation changed task count")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	opts := dynalloc.ExperimentOptions{
		Seed:       1,
		Tasks:      40,
		Workloads:  []string{"uniform"},
		Algorithms: []dynalloc.AlgorithmName{dynalloc.MaxSeen, dynalloc.GreedyBucketing},
	}
	cells, err := dynalloc.ReproduceGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	if len(dynalloc.Figure5(cells, opts)) != 3 {
		t.Error("Figure5 should emit one table per kind")
	}
	if len(dynalloc.Figure6(cells, opts)) != 3 {
		t.Error("Figure6 should emit one table per kind")
	}
}

func TestPublicAPIContextAndOptions(t *testing.T) {
	// The option-based entry point must agree with the struct-based one.
	opts := dynalloc.ExperimentOptions{
		Seed:       9,
		Tasks:      40,
		Workloads:  []string{"uniform"},
		Algorithms: []dynalloc.AlgorithmName{dynalloc.MaxSeen},
	}
	want, err := dynalloc.ReproduceGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	var progressed int
	got, err := dynalloc.ReproduceGridContext(context.Background(), dynalloc.ExperimentOptions{},
		dynalloc.WithSeed(9), dynalloc.WithTasks(40),
		dynalloc.WithWorkloads("uniform"), dynalloc.WithAlgorithms(dynalloc.MaxSeen),
		dynalloc.WithParallelism(2),
		dynalloc.WithProgress(func(dynalloc.ExperimentProgress) { progressed++ }))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0].Makespan != want[0].Makespan ||
		fmt.Sprintf("%#v", got[0].Summary) != fmt.Sprintf("%#v", want[0].Summary) {
		t.Error("option-based grid diverged from struct-based grid")
	}
	if progressed != len(got) {
		t.Errorf("progress fired %d times for %d cells", progressed, len(got))
	}
}

func TestPublicAPISentinelErrors(t *testing.T) {
	if _, err := dynalloc.GenerateWorkflow("bogus", 10, 1); !errors.Is(err, dynalloc.ErrUnknownWorkflow) {
		t.Errorf("GenerateWorkflow err = %v, want ErrUnknownWorkflow", err)
	}
	if _, err := dynalloc.NewAllocator("bogus", dynalloc.AllocatorConfig{}); !errors.Is(err, dynalloc.ErrUnknownAlgorithm) {
		t.Errorf("NewAllocator err = %v, want ErrUnknownAlgorithm", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := dynalloc.GenerateWorkflow("normal", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = dynalloc.SimulateContext(ctx, dynalloc.SimConfig{
		Workflow: w,
		Policy:   dynalloc.NewOracle(w),
		Pool:     dynalloc.StaticPool(4),
	})
	if !errors.Is(err, dynalloc.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateContext err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if _, err := dynalloc.ReproduceGridContext(ctx, dynalloc.ExperimentOptions{Tasks: 20}); !errors.Is(err, dynalloc.ErrCanceled) {
		t.Errorf("ReproduceGridContext err = %v, want ErrCanceled", err)
	}
}

// TestPublicAPIStreaming drives the facade's lazy-workload path end to end:
// a Source with a submit window, per-outcome streaming instead of a retained
// slice, and per-category reservoir metrics — the million-task API at a
// test-sized scale.
func TestPublicAPIStreaming(t *testing.T) {
	alloc := func() dynalloc.Policy {
		a, err := dynalloc.NewAllocator(dynalloc.MaxSeen, dynalloc.AllocatorConfig{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	w, err := dynalloc.GenerateWorkflow("bimodal", 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	retained, err := dynalloc.Simulate(dynalloc.SimConfig{
		Workflow: w, Policy: alloc(), Pool: dynalloc.StaticPool(6),
	})
	if err != nil {
		t.Fatal(err)
	}

	src, err := dynalloc.GenerateWorkflowSource("bimodal", 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	cats := dynalloc.NewCategoryMetrics(32, 4)
	streamed := 0
	res, err := dynalloc.Simulate(dynalloc.SimConfig{
		Source:     dynalloc.WithSubmitWindow(src, 64),
		Policy:     alloc(),
		Pool:       dynalloc.StaticPool(6),
		Categories: cats,
		OnOutcome:  func(o *dynalloc.TaskOutcome) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != nil {
		t.Error("streaming run retained outcomes")
	}
	if streamed != 300 || res.Acc.Tasks() != 300 {
		t.Errorf("streamed %d outcomes, accumulated %d", streamed, res.Acc.Tasks())
	}
	if res.PeakWindow == 0 || res.PeakWindow >= 300 {
		t.Errorf("peak window = %d, want windowed (0, 300)", res.PeakWindow)
	}
	if got := cats.Categories(); len(got) != 1 || got[0] != "bimodal" || cats.Tasks() != 300 {
		t.Errorf("category metrics = %v (%d tasks)", cats.Categories(), cats.Tasks())
	}
	// The submit window reorders nothing on a static pool: aggregates match
	// the retained run exactly.
	if res.Acc != retained.Acc {
		t.Errorf("streaming aggregates diverged:\n%+v\nvs\n%+v", res.Summary(), retained.Summary())
	}

	if _, err := dynalloc.GenerateWorkflowSource("bogus", 10, 1); !errors.Is(err, dynalloc.ErrUnknownWorkflow) {
		t.Errorf("GenerateWorkflowSource err = %v, want ErrUnknownWorkflow", err)
	}
}
