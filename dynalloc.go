package dynalloc

import (
	"context"

	"dynalloc/internal/allocator"
	"dynalloc/internal/condor"
	"dynalloc/internal/flow"
	"dynalloc/internal/harness"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/vine"
	"dynalloc/internal/workflow"
)

// Resource model.
type (
	// Kind identifies a resource dimension (cores, memory, disk, time).
	Kind = resources.Kind
	// Vector holds one value per resource kind.
	Vector = resources.Vector
)

// Resource kinds.
const (
	Cores  = resources.Cores
	Memory = resources.Memory
	Disk   = resources.Disk
	Time   = resources.Time
)

// NewVector builds a resource vector from cores, memory (MB), disk (MB) and
// time (s).
func NewVector(cores, memoryMB, diskMB, timeS float64) Vector {
	return resources.New(cores, memoryMB, diskMB, timeS)
}

// PaperWorker returns the evaluation worker shape: 16 cores, 64 GB memory,
// 64 GB disk.
func PaperWorker() Vector { return resources.PaperWorker() }

// Allocation algorithms.
type (
	// AlgorithmName identifies one of the seven allocation algorithms.
	AlgorithmName = allocator.Name
	// AllocatorConfig tunes an Allocator.
	AllocatorConfig = allocator.Config
	// Allocator is the adaptive multi-resource, per-category allocator.
	Allocator = allocator.Allocator
	// Policy is the scheduler-facing allocation interface.
	Policy = allocator.Policy
)

// The seven algorithms of the paper's evaluation.
const (
	WholeMachine        = allocator.WholeMachine
	MaxSeen             = allocator.MaxSeen
	MinWaste            = allocator.MinWaste
	MaxThroughput       = allocator.MaxThroughput
	QuantizedBucketing  = allocator.Quantized
	GreedyBucketing     = allocator.Greedy
	ExhaustiveBucketing = allocator.Exhaustive
)

// AlgorithmNames returns all algorithm names in the paper's order.
func AlgorithmNames() []AlgorithmName { return allocator.Names() }

// NewAllocator builds an allocator running the named algorithm.
func NewAllocator(alg AlgorithmName, cfg AllocatorConfig) (*Allocator, error) {
	return allocator.New(alg, cfg)
}

// Workloads.
type (
	// Workflow is a generated workload.
	Workflow = workflow.Workflow
	// Task is one unit of work with its hidden consumption 4-tuple.
	Task = workflow.Task
	// Source streams a workload's tasks lazily; a *Workflow is one concrete
	// Source (via its Stream method), and the named generators are another.
	Source = workflow.Source
)

// WorkflowNames returns the seven evaluation workload names.
func WorkflowNames() []string { return workflow.Names() }

// GenerateWorkflow builds any of the seven evaluation workloads; n scales
// the synthetic families (0 = the paper's 1000 tasks).
//
// The returned slice-backed Workflow holds every task in memory, which the
// perturbation, oracle, and data layers need. For workloads too large for
// that — million-task runs — prefer GenerateWorkflowSource and drive the
// simulation through SimConfig.Source.
func GenerateWorkflow(name string, n int, seed uint64) (*Workflow, error) {
	return workflow.ByName(name, n, seed)
}

// GenerateWorkflowSource returns the same task stream GenerateWorkflow
// materializes, as a lazy Source: tasks are sampled on demand, so a
// million-task run never holds more than the in-flight window. Set it as
// SimConfig.Source (instead of SimConfig.Workflow) and pair it with
// OnOutcome or DiscardOutcomes to keep the whole run's footprint bounded.
func GenerateWorkflowSource(name string, n int, seed uint64) (Source, error) {
	return workflow.SourceByName(name, n, seed)
}

// WithSubmitWindow caps how many tasks beyond the completed count a Source
// releases to the simulator — the knob that bounds a streaming run's
// working set (0 removes the workload's own cap).
func WithSubmitWindow(src Source, window int) Source {
	return workflow.WithSubmitWindow(src, window)
}

// Simulation.
type (
	// SimConfig configures a discrete-event simulation run.
	SimConfig = sim.Config
	// Result is a run's outcomes plus aggregated metrics.
	Result = sim.Result
	// ConsumptionModel selects the task usage-over-time profile.
	ConsumptionModel = sim.ConsumptionModel
	// PoolModel generates opportunistic worker arrival schedules.
	PoolModel = opportunistic.Model
	// Summary is a flat snapshot of a run's metrics.
	Summary = metrics.Summary
	// TaskOutcome is one task's attempts, waste, and consumption.
	TaskOutcome = metrics.TaskOutcome
	// CategoryMetrics accumulates per-category statistics from streamed
	// outcomes: exact running aggregates plus bounded reservoir samples of
	// memory peaks and runtimes. Pass one as SimConfig.Categories.
	CategoryMetrics = metrics.ByCategory
	// Reservoir is a fixed-capacity uniform sample over an unbounded stream.
	Reservoir = metrics.Reservoir
)

// NewCategoryMetrics builds a per-category streaming accumulator whose
// reservoirs hold at most reservoirCap samples each (0 disables sampling);
// seed fixes the sampling decisions.
func NewCategoryMetrics(reservoirCap int, seed uint64) *CategoryMetrics {
	return metrics.NewByCategory(reservoirCap, seed)
}

// Consumption models.
const (
	RampEarly     = sim.RampEarly
	RampLinear    = sim.RampLinear
	PeakAtEnd     = sim.PeakAtEnd
	PeakImmediate = sim.PeakImmediate
)

// Sentinel errors. Match them with errors.Is; every error carrying one of
// these conditions wraps the corresponding sentinel.
var (
	// ErrUnknownAlgorithm reports an algorithm name that matches no known
	// allocation algorithm.
	ErrUnknownAlgorithm = allocator.ErrUnknownAlgorithm
	// ErrUnknownWorkflow reports a workload name that matches no evaluation
	// workload.
	ErrUnknownWorkflow = workflow.ErrUnknownWorkflow
	// ErrUnknownPlacement reports a placement-policy name that matches no
	// known policy.
	ErrUnknownPlacement = sim.ErrUnknownPlacement
	// ErrCanceled reports a simulation or experiment sweep aborted by its
	// context; the context's own error is wrapped alongside it.
	ErrCanceled = sim.ErrCanceled
)

// Simulate runs the discrete-event simulation: dispatch, placement,
// enforcement, retries, and opportunistic worker churn.
//
// The workload comes from exactly one of SimConfig.Workflow (a materialized
// task slice) or SimConfig.Source (a lazy stream). With a Source, set
// OnOutcome to receive each task's outcome as it finishes — or
// DiscardOutcomes to fold results into the accumulator only — and
// Result.Outcomes stays nil, so memory tracks the submit window rather
// than the task count.
func Simulate(cfg SimConfig) (*Result, error) { return sim.Run(cfg) }

// SimulateContext is Simulate under a context: the event loop checks ctx
// at event boundaries and aborts with an error wrapping ErrCanceled once
// the context is done.
func SimulateContext(ctx context.Context, cfg SimConfig) (*Result, error) {
	return sim.RunContext(ctx, cfg)
}

// SimulateSequential runs the fast pool-free driver: tasks execute in
// submission order with the same allocation semantics. AWE is
// pool-independent, so this answers the paper's efficiency questions
// quickly.
func SimulateSequential(w *Workflow, p Policy, model ConsumptionModel) (*Result, error) {
	return sim.RunSequential(w, p, model, 0)
}

// SimulateSequentialContext is SimulateSequential under a context, checked
// between tasks.
func SimulateSequentialContext(ctx context.Context, w *Workflow, p Policy, model ConsumptionModel) (*Result, error) {
	return sim.RunSequentialContext(ctx, w, p, model, 0)
}

// NewOracle returns the unrealizable optimal policy (allocation equals
// consumption) for a workload; it bounds every real algorithm.
func NewOracle(w *Workflow) Policy { return sim.NewOracle(w) }

// Opportunistic pools.

// StaticPool provisions n permanent workers at time zero.
func StaticPool(n int) PoolModel { return opportunistic.Static{N: n} }

// BackfillPool ramps from min to max workers, one roughly every interval
// seconds — the paper's 20-to-50-worker HTCondor pool shape.
func BackfillPool(min, max int, interval float64) PoolModel {
	return opportunistic.Backfill{Min: min, Max: max, Interval: interval}
}

// ChurnPool models a volatile pool with lease-bounded workers and
// replacement arrivals.
func ChurnPool(initial int, meanLifetime, meanInterval, horizon float64) PoolModel {
	return opportunistic.Churn{
		Initial:       initial,
		MeanLifetime:  meanLifetime,
		MeanInterval:  meanInterval,
		Horizon:       horizon,
		KeepLastAlive: true,
	}
}

// CondorPool simulates an HTCondor-style batch cluster: pilot jobs are
// backfilled into slots left idle by a stream of primary jobs and preempted
// when primaries return — the worker-deployment mechanism the paper's
// evaluation used.
func CondorPool(slots int, primaryLoad float64, pilotTarget int) PoolModel {
	c := condor.DefaultCluster()
	c.Slots = slots
	c.PrimaryLoad = primaryLoad
	c.PilotTarget = pilotTarget
	return c
}

// ExtendedAlgorithmNames returns the paper's seven algorithms plus this
// repository's extensions (k-means bucketing from the paper's reference
// [11], and a fixed-percentile heuristic).
func ExtendedAlgorithmNames() []AlgorithmName { return allocator.ExtendedNames() }

// Application and data layers.
type (
	// Flow is the dynamic-application layer: submit tasks at runtime as
	// futures and steer on their results.
	Flow = flow.Flow
	// Future is the handle to a submitted task.
	Future = flow.Future
	// Executor runs tasks for a Flow (LocalPolicyExecutor, or a live
	// wq.Manager).
	Executor = flow.Executor
	// DataLayer models TaskVine-style file staging and worker caches.
	DataLayer = vine.Layer
	// Placement selects how tasks are placed onto workers.
	Placement = sim.Placement
	// Perturbation rescales, jitters, and reorders a workflow between runs
	// (the paper's "evolution of workflows").
	Perturbation = workflow.Perturbation
)

// Placement policies.
const (
	PlaceFirstFit = sim.FirstFit
	PlaceWorstFit = sim.WorstFit
	PlaceBestFit  = sim.BestFit
	PlaceLocality = sim.Locality
)

// NewFlow creates a dynamic-application flow over an executor.
func NewFlow(exec Executor) *Flow { return flow.New(exec) }

// NewLocalExecutor returns an executor that runs tasks instantly under a
// policy with the simulator's virtual resource monitor.
func NewLocalExecutor(p Policy, model ConsumptionModel) Executor {
	return &flow.LocalExecutor{Policy: p, Model: model}
}

// NewDataLayer creates an empty data layer; AttachData populates it with a
// synthetic file layout (shared per-category environments plus per-task
// data) for a workload.
func NewDataLayer() *DataLayer { return vine.NewLayer() }

// AttachData populates a data layer for a workload.
func AttachData(l *DataLayer, w *Workflow, seed uint64) { vine.Attach(l, w, seed) }

// PerturbWorkflow returns a perturbed copy of a workflow.
func PerturbWorkflow(w *Workflow, p Perturbation, seed uint64) *Workflow {
	return workflow.Perturb(w, p, seed)
}

// Experiment reproduction.
type (
	// ExperimentOptions configure a figure/table reproduction run.
	ExperimentOptions = harness.Options
	// ExperimentOption is the functional-option form of ExperimentOptions.
	ExperimentOption = harness.Option
	// ExperimentProgress reports one completed grid cell to a WithProgress
	// callback.
	ExperimentProgress = harness.Progress
	// ExperimentCell is one (workload, algorithm) result.
	ExperimentCell = harness.Cell
	// ReportTable is a renderable result table.
	ReportTable = report.Table
)

// Experiment options for ReproduceGridContext. Options compose left to
// right over the ExperimentOptions base value.

// WithSeed sets the base random seed of the sweep.
func WithSeed(seed uint64) ExperimentOption { return harness.WithSeed(seed) }

// WithTasks sets the synthetic workload task count (0 = the paper's 1000).
func WithTasks(n int) ExperimentOption { return harness.WithTasks(n) }

// WithModel sets the task consumption profile.
func WithModel(m ConsumptionModel) ExperimentOption { return harness.WithModel(m) }

// WithDES selects the full discrete-event pool simulation over the fast
// sequential driver.
func WithDES(use bool) ExperimentOption { return harness.WithDES(use) }

// WithPool sets the worker pool model for DES runs.
func WithPool(p PoolModel) ExperimentOption { return harness.WithPool(p) }

// WithWorkloads restricts the workload set (default: all seven).
func WithWorkloads(names ...string) ExperimentOption { return harness.WithWorkloads(names...) }

// WithAlgorithms restricts the algorithm set (default: all seven).
func WithAlgorithms(algs ...AlgorithmName) ExperimentOption {
	return harness.WithAlgorithms(algs...)
}

// WithAllocatorConfig overrides allocator settings (Seed stays managed by
// the harness).
func WithAllocatorConfig(cfg AllocatorConfig) ExperimentOption {
	return harness.WithAllocatorConfig(cfg)
}

// WithParallelism bounds how many grid cells run concurrently
// (0 = GOMAXPROCS, 1 = sequential). Cell results are identical at any
// parallelism.
func WithParallelism(n int) ExperimentOption { return harness.WithParallelism(n) }

// WithProgress installs a per-cell completion callback; calls are
// serialized with monotone Done counts.
func WithProgress(fn func(ExperimentProgress)) ExperimentOption {
	return harness.WithProgress(fn)
}

// ReproduceGrid runs the (workload x algorithm) grid behind Figures 5 and 6.
func ReproduceGrid(opts ExperimentOptions) ([]ExperimentCell, error) {
	return harness.RunGrid(opts)
}

// ReproduceGridContext runs the grid across WithParallelism worker
// goroutines under a context. Cells are returned in workload-major order
// and are byte-for-byte identical to a sequential run at any parallelism;
// cancellation aborts in-flight simulations promptly with an error
// wrapping ErrCanceled.
func ReproduceGridContext(ctx context.Context, opts ExperimentOptions, extra ...ExperimentOption) ([]ExperimentCell, error) {
	return harness.RunGridContext(ctx, opts, extra...)
}

// Figure5 renders the Absolute Workflow Efficiency tables from grid cells.
func Figure5(cells []ExperimentCell, opts ExperimentOptions) []*ReportTable {
	return harness.Fig5Tables(cells, opts)
}

// Figure6 renders the waste-decomposition tables from grid cells.
func Figure6(cells []ExperimentCell, opts ExperimentOptions) []*ReportTable {
	return harness.Fig6Tables(cells, opts)
}

// TableI measures the bucketing-state computation cost at growing record
// counts and renders the paper's Table I.
func TableI(seed uint64, reps int) *ReportTable {
	return harness.Table1Report(harness.Table1(seed, reps))
}

// TableIContext is TableI under a context, checked between timing cells.
func TableIContext(ctx context.Context, seed uint64, reps int) (*ReportTable, error) {
	rows, err := harness.Table1Context(ctx, seed, reps)
	if err != nil {
		return nil, err
	}
	return harness.Table1Report(rows), nil
}
