package dynalloc_test

import (
	"bytes"
	"math"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/condor"
	"dynalloc/internal/resources"
	"dynalloc/internal/runlog"
	"dynalloc/internal/sim"
	"dynalloc/internal/trace"
	"dynalloc/internal/vine"
	"dynalloc/internal/workflow"
)

// TestFullStackScenario exercises the whole system end to end, the way the
// paper's deployment composed it: a production-shaped workload is generated
// and serialized; replayed byte-identically from its trace; executed by an
// adaptive allocator on a simulated HTCondor pool with the data layer and
// locality placement; and the resulting run log replays to the same
// metrics.
func TestFullStackScenario(t *testing.T) {
	// 1. Generate and serialize the workload.
	original := workflow.ColmenaXTB(99)
	var traceBuf bytes.Buffer
	if err := trace.WriteWorkflow(&traceBuf, original); err != nil {
		t.Fatal(err)
	}
	w, err := trace.ReadWorkflow(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != original.Len() || len(w.Barriers) != 1 {
		t.Fatalf("trace round trip lost structure: %d tasks, %v barriers", w.Len(), w.Barriers)
	}

	// 2. Execute on a batch-system pool with the data layer.
	layer := vine.NewLayer()
	vine.Attach(layer, w, 100)
	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 101})
	cluster := condor.Cluster{
		Slots: 60, PrimaryLoad: 0.4, PrimaryMeanDuration: 2400,
		PilotTarget: 25, SubmitDelay: 20, Horizon: 1e7,
	}
	res, err := sim.Run(sim.Config{
		Workflow: w,
		Policy:   pol,
		Pool:     cluster,
		PoolSeed: 102,
		Place:    sim.Locality,
		Data:     layer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != w.Len() {
		t.Fatalf("completed %d of %d tasks", len(res.Outcomes), w.Len())
	}
	for _, k := range resources.AllocatedKinds() {
		awe := res.Acc.AWE(k)
		if awe <= 0 || awe > 1 {
			t.Errorf("AWE(%s) = %v", k, awe)
		}
	}
	// The adaptive allocator must do far better than whole-machine
	// allocation on memory even in this fully composed setting.
	if awe := res.Acc.AWE(resources.Memory); awe < 0.10 {
		t.Errorf("memory AWE = %.3f; allocator not functioning end to end", awe)
	}

	// 3. The run log replays to identical metrics.
	var logBuf bytes.Buffer
	hdr := runlog.Header{Workload: w.Name, Algorithm: pol.Name(), Seed: 101}
	if err := runlog.Write(&logBuf, hdr, res); err != nil {
		t.Fatal(err)
	}
	parsed, err := runlog.Read(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := runlog.Replay(parsed)
	for _, k := range resources.AllocatedKinds() {
		if math.Abs(replayed.AWE(k)-res.Acc.AWE(k)) > 1e-9 {
			t.Errorf("log replay AWE(%s) drifted: %v vs %v", k, replayed.AWE(k), res.Acc.AWE(k))
		}
	}
	if replayed.Retries() != res.Acc.Retries() {
		t.Errorf("log replay retries drifted: %d vs %d", replayed.Retries(), res.Acc.Retries())
	}

	// 4. Per-category breakdown covers both ColmenaXTB categories.
	byCat := runlog.ReplayByCategory(parsed)
	if len(byCat) != 2 {
		t.Fatalf("categories in log = %d", len(byCat))
	}
	if byCat["evaluate_mpnn"].Tasks() != workflow.ColmenaEvaluateTasks {
		t.Errorf("evaluate_mpnn tasks = %d", byCat["evaluate_mpnn"].Tasks())
	}
}

// TestPriorFreeAcrossPerturbedReruns verifies the prior-free design goal:
// rerunning a perturbed variant of a workflow (the paper's "evolution of
// workflows") with a fresh allocator performs about as well as the original
// run — there is no prior to mislead.
func TestPriorFreeAcrossPerturbedReruns(t *testing.T) {
	base, err := workflow.Synthetic("bimodal", 600, 55)
	if err != nil {
		t.Fatal(err)
	}
	run := func(w *workflow.Workflow) float64 {
		pol := allocator.MustNew(allocator.Greedy, allocator.Config{Seed: 56})
		res, err := sim.RunSequential(w, pol, sim.RampEarly, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acc.AWE(resources.Memory)
	}
	aweBase := run(base)
	perturbed := workflow.Perturb(base, workflow.Perturbation{
		Scale:        resources.New(1, 1.5, 1, 1.2),
		Jitter:       0.05,
		SwapFraction: 0.3,
	}, 57)
	awePerturbed := run(perturbed)
	if math.Abs(aweBase-awePerturbed) > 0.12 {
		t.Errorf("prior-free rerun diverged: base %.3f vs perturbed %.3f", aweBase, awePerturbed)
	}
}
