package dynalloc_test

import (
	"fmt"

	"dynalloc"
)

// The canonical loop: generate a workload, build an allocator, simulate,
// and read the paper's headline metric.
func ExampleSimulate() {
	w, _ := dynalloc.GenerateWorkflow("bimodal", 300, 42)
	alloc, _ := dynalloc.NewAllocator(dynalloc.ExhaustiveBucketing, dynalloc.AllocatorConfig{Seed: 1})
	res, _ := dynalloc.Simulate(dynalloc.SimConfig{
		Workflow: w,
		Policy:   alloc,
		Pool:     dynalloc.StaticPool(8),
	})
	fmt.Printf("tasks: %d\n", res.Acc.Tasks())
	fmt.Printf("memory AWE in (0,1]: %v\n", res.Acc.AWE(dynalloc.Memory) > 0 && res.Acc.AWE(dynalloc.Memory) <= 1)
	// Output:
	// tasks: 300
	// memory AWE in (0,1]: true
}

// The oracle allocates each task exactly its hidden consumption — the
// unrealizable optimum that every real algorithm is measured against.
func ExampleNewOracle() {
	w, _ := dynalloc.GenerateWorkflow("normal", 100, 7)
	res, _ := dynalloc.SimulateSequential(w, dynalloc.NewOracle(w), dynalloc.RampEarly)
	fmt.Printf("oracle memory AWE: %.0f%%\n", 100*res.Acc.AWE(dynalloc.Memory))
	fmt.Printf("oracle retries: %d\n", res.Acc.Retries())
	// Output:
	// oracle memory AWE: 100%
	// oracle retries: 0
}

// Allocators are driven through the Policy interface: ask for an
// allocation, report the observed consumption, and the next prediction
// adapts.
func ExampleNewAllocator() {
	alloc, _ := dynalloc.NewAllocator(dynalloc.MaxSeen, dynalloc.AllocatorConfig{Seed: 3})

	// Exploratory mode: with no records, Max Seen allocates a whole worker.
	first := alloc.Allocate("analysis", 1)
	fmt.Printf("exploratory memory: %.0f MB\n", first.Get(dynalloc.Memory))

	// Feed ten completed tasks that peaked at 306 MB of memory.
	for id := 1; id <= 10; id++ {
		alloc.Observe("analysis", id, dynalloc.NewVector(1, 306, 306, 0), 60)
	}

	// Steady state: the 250 MB histogram rounds the 306 MB max up to 500.
	next := alloc.Allocate("analysis", 11)
	fmt.Printf("steady-state memory: %.0f MB\n", next.Get(dynalloc.Memory))
	// Output:
	// exploratory memory: 65536 MB
	// steady-state memory: 500 MB
}

// The seven algorithms of the paper's evaluation, in figure order.
func ExampleAlgorithmNames() {
	for _, n := range dynalloc.AlgorithmNames() {
		fmt.Println(n)
	}
	// Output:
	// whole-machine
	// max-seen
	// min-waste
	// max-throughput
	// quantized-bucketing
	// greedy-bucketing
	// exhaustive-bucketing
}
