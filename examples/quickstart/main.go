// Quickstart: allocate a dynamic workflow with Exhaustive Bucketing and
// compare it against the Whole Machine baseline and the oracle.
//
// This walks the paper's core loop end to end: generate a workload whose
// per-task resource consumption is hidden from the allocator, simulate its
// execution on a pool of 16-core/64 GB workers, and measure the Absolute
// Workflow Efficiency (AWE) — the fraction of allocated resources that were
// actually used (Section II-C of the paper; AWE = 1 is optimal).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dynalloc"
)

func main() {
	// A bimodal workload: two populations of tasks with very different
	// memory needs, the paper's model of "specialization of tasks". 500
	// tasks, all in one category, so the allocator must discover the two
	// clusters on its own.
	w, err := dynalloc.GenerateWorkflow("bimodal", 500, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %q: %d tasks, hidden per-task consumption\n\n", w.Name, w.Len())

	policies := []dynalloc.Policy{
		mustAllocator(dynalloc.WholeMachine),
		mustAllocator(dynalloc.MaxSeen),
		mustAllocator(dynalloc.ExhaustiveBucketing),
		dynalloc.NewOracle(w), // unrealizable upper bound
	}

	fmt.Printf("%-22s %10s %10s %10s %9s\n", "policy", "cores AWE", "memory AWE", "disk AWE", "retries")
	for _, p := range policies {
		res, err := dynalloc.Simulate(dynalloc.SimConfig{
			Workflow: w,
			Policy:   p,
			Pool:     dynalloc.StaticPool(10),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %9.1f%% %9.1f%% %9.1f%% %9d\n",
			p.Name(),
			100*res.Acc.AWE(dynalloc.Cores),
			100*res.Acc.AWE(dynalloc.Memory),
			100*res.Acc.AWE(dynalloc.Disk),
			res.Acc.Retries())
	}

	fmt.Println("\nWhole Machine wastes almost everything; Exhaustive Bucketing")
	fmt.Println("learns the two task populations online — no prior traces, no")
	fmt.Println("task-specific features — and approaches the oracle.")
	os.Exit(0)
}

func mustAllocator(alg dynalloc.AlgorithmName) dynalloc.Policy {
	a, err := dynalloc.NewAllocator(alg, dynalloc.AllocatorConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	return a
}
