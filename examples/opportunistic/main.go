// Opportunistic churn: running a workflow on a volatile worker pool where
// workers hold short leases and are evicted mid-task (spot instances,
// preemptible backfill slots — the deployment mode the paper's title is
// about).
//
// The example shows two properties of the system:
//
//   - the manager survives evictions: interrupted tasks are requeued with
//     their allocations intact and the workflow still completes;
//   - the AWE metric is independent of the pool (Section II-C): the same
//     allocator scores nearly the same efficiency on a stable pool and on
//     a churning pool, even though the makespan and attempt counts differ.
//
// Run with:
//
//	go run ./examples/opportunistic
package main

import (
	"fmt"
	"log"

	"dynalloc"
)

func main() {
	w, err := dynalloc.GenerateWorkflow("trimodal", 600, 11)
	if err != nil {
		log.Fatal(err)
	}

	pools := []struct {
		label string
		pool  dynalloc.PoolModel
	}{
		{"stable (20 permanent workers)", dynalloc.StaticPool(20)},
		{"backfill ramp (20 -> 50)", dynalloc.BackfillPool(20, 50, 120)},
		{"churn (30 min leases)", dynalloc.ChurnPool(20, 1800, 120, 1e6)},
	}

	fmt.Printf("%-32s %10s %9s %9s %10s %10s\n",
		"pool", "memory AWE", "retries", "evictions", "makespan", "peak wkrs")
	for _, p := range pools {
		policy, err := dynalloc.NewAllocator(dynalloc.GreedyBucketing, dynalloc.AllocatorConfig{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynalloc.Simulate(dynalloc.SimConfig{
			Workflow: w,
			Policy:   policy,
			Pool:     p.pool,
			PoolSeed: 13,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %9.1f%% %9d %9d %9.0fs %10d\n",
			p.label,
			100*res.Acc.AWE(dynalloc.Memory),
			res.Acc.Retries(),
			res.Evictions,
			res.Makespan,
			res.PeakWorkers)
	}

	fmt.Println("\nEvictions interrupt tasks and stretch the makespan, but the")
	fmt.Println("allocator's efficiency barely moves: AWE measures allocation")
	fmt.Println("quality, not infrastructure luck.")
}
