// ColmenaXTB: a two-phase molecular-design campaign on an opportunistic
// pool (the paper's Section III case study).
//
// Phase 1 ranks candidate molecules with 228 memory-hungry neural-network
// inference tasks (evaluate_mpnn, 1.0-1.2 GB each); phase 2 computes
// atomization energies for the 1000 top-ranked molecules with small,
// core-hungry tasks (~200 MB but 0.9-3.6 cores). The phase change happens
// at runtime — the "arbitrary structure of workflows" stochasticity the
// bucketing algorithms are designed to survive.
//
// The example demonstrates two of the paper's observations:
//
//  1. Different task categories must be allocated independently
//     (Section III-B): pooling every category into one estimator state
//     makes phase-1's 1.2 GB records inflate phase-2's 200 MB tasks.
//  2. Bucketing allocators beat Max Seen on this workload because Max Seen
//     can only ever allocate the running maximum.
//
// The pool ramps from 20 to 50 workers as the batch system backfills,
// matching the paper's HTCondor deployment.
//
// Run with:
//
//	go run ./examples/colmena
package main

import (
	"fmt"
	"log"

	"dynalloc"
)

func main() {
	w, err := dynalloc.GenerateWorkflow("colmena", 0, 2024)
	if err != nil {
		log.Fatal(err)
	}
	counts := w.CategoryCounts()
	fmt.Printf("ColmenaXTB: %d evaluate_mpnn + %d compute_atomization_energy tasks\n\n",
		counts["evaluate_mpnn"], counts["compute_atomization_energy"])

	type variant struct {
		label string
		alg   dynalloc.AlgorithmName
		cfg   dynalloc.AllocatorConfig
	}
	variants := []variant{
		{"max-seen", dynalloc.MaxSeen, dynalloc.AllocatorConfig{Seed: 1}},
		{"exhaustive (per-category)", dynalloc.ExhaustiveBucketing, dynalloc.AllocatorConfig{Seed: 1}},
		{"exhaustive (category-blind)", dynalloc.ExhaustiveBucketing, dynalloc.AllocatorConfig{Seed: 1, IgnoreCategories: true}},
		{"greedy (per-category)", dynalloc.GreedyBucketing, dynalloc.AllocatorConfig{Seed: 1}},
	}

	fmt.Printf("%-28s %10s %10s %8s %10s\n", "policy", "memory AWE", "cores AWE", "retries", "makespan")
	for _, v := range variants {
		policy, err := dynalloc.NewAllocator(v.alg, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynalloc.Simulate(dynalloc.SimConfig{
			Workflow: w,
			Policy:   policy,
			Pool:     dynalloc.BackfillPool(20, 50, 120),
			PoolSeed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.1f%% %9.1f%% %8d %9.0fs\n",
			v.label,
			100*res.Acc.AWE(dynalloc.Memory),
			100*res.Acc.AWE(dynalloc.Cores),
			res.Acc.Retries(),
			res.Makespan)
	}

	fmt.Println("\nPer-category bucketing adapts to the phase change within a few")
	fmt.Println("tasks; the category-blind variant drags phase-1's gigabyte-scale")
	fmt.Println("records into phase 2 and pays for it on every small task.")
}
