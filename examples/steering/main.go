// Steering: a Colmena-style molecular-search campaign written as a *real*
// dynamic application — tasks are generated at runtime by application
// logic, not declared in advance — using the flow application layer over a
// local executor with an adaptive allocator.
//
// The campaign loop: rank a batch of candidate molecules with
// memory-hungry inference tasks; for the top-scoring candidates, submit
// small, core-hungry energy computations; repeat until the budget is
// spent. The allocator sees two interleaved task categories whose resource
// shapes it must learn online — the exact scenario of the paper's
// Section III case study, but driven by live application control flow.
//
// Run with:
//
//	go run ./examples/steering
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"dynalloc/internal/allocator"
	"dynalloc/internal/flow"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

func main() {
	policy := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 11})
	f := flow.New(&flow.LocalExecutor{Policy: policy})
	r := rand.New(rand.NewPCG(2024, 7))

	const (
		rounds    = 8
		batchSize = 40
		topK      = 10
	)
	energySubmitted := 0
	for round := 0; round < rounds; round++ {
		// Phase A: rank a fresh batch of candidates (inference tasks:
		// ~1.0-1.2 GB memory, ~1 core).
		scores := make([]float64, batchSize)
		futures := make([]*flow.Future, batchSize)
		for i := range futures {
			futures[i] = f.Submit("evaluate_mpnn", workflow.Task{
				Consumption: resources.New(
					0.9+0.2*r.Float64(),
					1000+200*r.Float64(),
					8+4*r.Float64(),
					60+60*r.Float64(),
				),
			})
			scores[i] = r.Float64() // the model's predicted score
		}
		for _, fut := range futures {
			fut.Wait()
		}

		// Phase B: the application inspects the results and generates
		// follow-up work only for the most promising candidates.
		threshold := kthLargest(scores, topK)
		for _, s := range scores {
			if s >= threshold {
				f.Submit("compute_atomization_energy", workflow.Task{
					Consumption: resources.New(
						0.9+2.7*r.Float64(), // the paper's 0.9-3.6 core spread
						180+40*r.Float64(),
						8+4*r.Float64(),
						200+200*r.Float64(),
					),
				})
				energySubmitted++
			}
		}
	}

	outcomes := f.WaitAll()
	acc := f.Metrics()
	fmt.Printf("campaign: %d rounds, %d inference + %d energy tasks (generated at runtime)\n",
		rounds, len(outcomes)-energySubmitted, energySubmitted)
	fmt.Printf("allocator: %s\n\n", policy.Name())
	for _, k := range []resources.Kind{resources.Cores, resources.Memory, resources.Disk} {
		fmt.Printf("  %-7s AWE %5.1f%%  (waste: %.3g internal + %.3g failed)\n",
			k, 100*acc.AWE(k), acc.InternalFragmentation(k), acc.FailedAllocation(k))
	}
	fmt.Printf("\nretries: %d across %d attempts\n", acc.Retries(), acc.Attempts())
	fmt.Println("\nNo DAG was ever declared: each round's energy tasks exist only")
	fmt.Println("because of scores observed at runtime, and the allocator adapted")
	fmt.Println("to both task categories while the campaign ran.")
	if acc.Tasks() != len(outcomes) {
		log.Fatal("metrics mismatch")
	}
}

// kthLargest returns the k-th largest value (ties included).
func kthLargest(xs []float64, k int) float64 {
	cp := append([]float64(nil), xs...)
	for i := 0; i < k && i < len(cp); i++ {
		maxIdx := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] > cp[maxIdx] {
				maxIdx = j
			}
		}
		cp[i], cp[maxIdx] = cp[maxIdx], cp[i]
	}
	if k > len(cp) {
		k = len(cp)
	}
	return cp[k-1]
}
