// Live execution: the same allocator driving a real manager/worker
// deployment over TCP instead of the simulator.
//
// This example starts a Work Queue-style manager and four workers inside
// one process (the cmd/wq-manager and cmd/wq-worker binaries run the same
// code across machines), executes a 300-task bimodal workload, and prints
// the allocator's efficiency. Workers enforce allocations with a virtual
// resource monitor and kill over-consuming attempts, so the full
// allocate -> execute -> exhaust -> escalate -> observe loop crosses real
// sockets.
//
// Run with:
//
//	go run ./examples/livewq
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dynalloc"
	"dynalloc/internal/allocator"
	"dynalloc/internal/workflow"
	"dynalloc/internal/wq"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	w, err := workflow.ByName("bimodal", 300, 21)
	if err != nil {
		log.Fatal(err)
	}
	// Compress simulated runtimes so the live demo finishes in seconds.
	for i := range w.Tasks {
		w.Tasks[i].Consumption = w.Tasks[i].Consumption.With(dynalloc.Time, 10+float64(i%20))
	}

	policy := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 4})
	m := wq.NewManager(policy)
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manager listening on %s\n", addr)

	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := wq.RunWorker(ctx, addr, wq.WorkerConfig{TimeScale: 1e-3}); err != nil && ctx.Err() == nil {
				log.Printf("worker %d: %v", id, err)
			}
		}(i)
	}

	start := time.Now()
	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		log.Fatal(err)
	}
	m.Close()
	wg.Wait()

	s := res.Summary()
	fmt.Printf("completed %d tasks on %d workers in %s (%d attempts, %d retries)\n",
		s.Tasks, workers, time.Since(start).Round(time.Millisecond), s.Attempts, s.Retries)
	for _, ks := range s.PerKind {
		fmt.Printf("  %-7s AWE %5.1f%%\n", ks.Kind, 100*ks.AWE)
	}
	fmt.Println("\nThe same Policy interface drives the simulator and this live")
	fmt.Println("engine; swap the loopback workers for cmd/wq-worker processes on")
	fmt.Println("other machines and nothing else changes.")
}
