// TopEFT: a high-energy-physics analysis workflow (the paper's second
// Section III case study) — 363 preprocessing tasks, then 3994 processing
// tasks interleaved with 212 accumulating tasks, 4569 tasks total.
//
// Its signatures stress different parts of an allocator:
//
//   - processing memory is bimodal (~450 MB and ~580 MB clusters), which is
//     exactly what the bucketing algorithms' cluster detection exploits;
//   - disk is a constant 306 MB, so a good allocator should approach 100%
//     disk efficiency while Max Seen's 250 MB histogram rounds every
//     allocation up to 500 MB (the paper's Section V-C example);
//   - cores are mostly <= 1 with rare outliers up to 3, the paper's
//     "inherent stochasticity of tasks".
//
// Run with:
//
//	go run ./examples/topeft
package main

import (
	"fmt"
	"log"

	"dynalloc"
)

func main() {
	w, err := dynalloc.GenerateWorkflow("topeft", 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	counts := w.CategoryCounts()
	fmt.Printf("TopEFT: %d preprocessing + %d processing + %d accumulating tasks\n\n",
		counts["preprocessing"], counts["processing"], counts["accumulating"])

	for _, alg := range []dynalloc.AlgorithmName{
		dynalloc.MaxSeen,
		dynalloc.MinWaste,
		dynalloc.QuantizedBucketing,
		dynalloc.ExhaustiveBucketing,
	} {
		policy, err := dynalloc.NewAllocator(alg, dynalloc.AllocatorConfig{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		// The sequential driver: AWE is pool-independent, and TopEFT is
		// the largest workload (4569 tasks), so skip pool placement.
		res, err := dynalloc.SimulateSequential(w, policy, dynalloc.RampEarly)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s disk AWE %5.1f%%  memory AWE %5.1f%%  cores AWE %5.1f%%  retries %4d\n",
			alg,
			100*res.Acc.AWE(dynalloc.Disk),
			100*res.Acc.AWE(dynalloc.Memory),
			100*res.Acc.AWE(dynalloc.Cores),
			res.Acc.Retries())
	}

	fmt.Println("\nEvery task writes exactly 306 MB of disk: Exhaustive Bucketing's")
	fmt.Println("representative converges on 306 MB (disk AWE near 100%), while Max")
	fmt.Println("Seen's 250 MB histogram rounds to 500 MB and caps out near 61%.")
}
