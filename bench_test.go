// Benchmark harness: one bench target per table and figure of the paper's
// evaluation (Section V), plus ablation benches for the design choices
// called out in DESIGN.md. Efficiency benches report the reproduced numbers
// as custom metrics (AWE%, retries/task, failed-waste share) alongside the
// usual ns/op, so a `go test -bench=.` run regenerates the figures' rows.
package dynalloc_test

import (
	"fmt"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/core"
	"dynalloc/internal/dist"
	"dynalloc/internal/harness"
	"dynalloc/internal/record"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// --- Figure 2: production workload trace generation ------------------------

func BenchmarkFig2_TraceGeneration(b *testing.B) {
	b.Run("colmena", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := workflow.ColmenaXTB(uint64(i))
			if w.Len() != workflow.ColmenaEvaluateTasks+workflow.ColmenaComputeTasks {
				b.Fatal("bad trace")
			}
		}
	})
	b.Run("topeft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := workflow.TopEFT(uint64(i))
			if w.Len() == 0 {
				b.Fatal("bad trace")
			}
		}
	})
}

// --- Figure 3: the bucketing worked example ---------------------------------

func BenchmarkFig3_WorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Fig3Example(42, 2000)
		if len(tab.Rows) == 0 {
			b.Fatal("no buckets")
		}
	}
}

// --- Figure 4: synthetic workload generation --------------------------------

func BenchmarkFig4_SyntheticGeneration(b *testing.B) {
	for _, name := range workflow.SyntheticNames() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := workflow.Synthetic(name, 0, uint64(i))
				if err != nil || w.Len() != workflow.DefaultSyntheticTasks {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 5 and 6: the evaluation grid -----------------------------------

// runCell executes one (workload, algorithm) cell with the paper's task
// counts and reports the reproduced metrics.
func runCell(b *testing.B, wfName string, alg allocator.Name, reportWaste bool) {
	b.Helper()
	w, err := workflow.ByName(wfName, 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		pol := allocator.MustNew(alg, allocator.Config{Seed: uint64(i + 1)})
		res, err = sim.RunSequential(w, pol, sim.RampEarly, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
	b.ReportMetric(float64(res.Acc.Retries())/float64(res.Acc.Tasks()), "retries/task")
	if reportWaste {
		total := res.Acc.Waste(resources.Memory)
		if total > 0 {
			b.ReportMetric(100*res.Acc.FailedAllocation(resources.Memory)/total, "failed-share%")
		}
	}
}

func BenchmarkFig5_AWE(b *testing.B) {
	for _, wfName := range workflow.Names() {
		for _, alg := range allocator.Names() {
			b.Run(fmt.Sprintf("%s/%s", wfName, alg), func(b *testing.B) {
				runCell(b, wfName, alg, false)
			})
		}
	}
}

func BenchmarkFig6_WasteBreakdown(b *testing.B) {
	// The paper's Figure 6 drops the Whole Machine baseline; waste shares
	// come from the same runs as Figure 5, so this sweep restricts itself
	// to the two headline algorithms per workload to bound benchmark time.
	for _, wfName := range workflow.Names() {
		for _, alg := range []allocator.Name{allocator.Greedy, allocator.Exhaustive} {
			b.Run(fmt.Sprintf("%s/%s", wfName, alg), func(b *testing.B) {
				runCell(b, wfName, alg, true)
			})
		}
	}
}

// --- Table I: bucketing-state computation cost -------------------------------

func benchTable1(b *testing.B, alg core.Algorithm) {
	r := dist.NewRand(7)
	sampler := dist.Normal{Mean: 8192, Stddev: 2048, Min: 64}
	for _, n := range harness.Table1Sizes {
		b.Run(fmt.Sprintf("records-%d", n), func(b *testing.B) {
			l := &record.List{}
			for i := 0; i < n; i++ {
				l.Add(record.Record{TaskID: i + 1, Value: sampler.Sample(r), Sig: float64(i + 1), Time: 60})
			}
			l.Sorted()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buckets := core.ComputeBuckets(l, alg)
				core.SampleAllocation(buckets, r)
			}
		})
	}
}

func BenchmarkTable1_GreedyBucketing(b *testing.B) {
	benchTable1(b, core.GreedyBucketing{})
}

func BenchmarkTable1_ExhaustiveBucketing(b *testing.B) {
	benchTable1(b, core.ExhaustiveBucketing{})
}

// --- Ablations ----------------------------------------------------------------

// Ablation: how the task consumption profile (when under-allocations are
// detected) moves the headline efficiency.
func BenchmarkAblation_ConsumptionModel(b *testing.B) {
	w, err := workflow.ByName("normal", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range sim.Models() {
		b.Run(model.String(), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: uint64(i + 1)})
				res, err = sim.RunSequential(w, pol, model, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
		})
	}
}

// Ablation: the exploratory-mode record threshold (the paper uses 10).
func BenchmarkAblation_ExplorationCount(b *testing.B) {
	w, err := workflow.ByName("bimodal", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, count := range []int{1, 5, 10, 25, 50} {
		b.Run(fmt.Sprintf("explore-%d", count), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				pol := allocator.MustNew(allocator.Exhaustive,
					allocator.Config{Seed: uint64(i + 1), ExploreCount: count})
				res, err = sim.RunSequential(w, pol, sim.RampEarly, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
		})
	}
}

// Ablation: Exhaustive Bucketing's bucket-count cap (the paper uses 10).
func BenchmarkAblation_MaxBuckets(b *testing.B) {
	w, err := workflow.ByName("trimodal", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5, 10, 20} {
		b.Run(fmt.Sprintf("max-%d", k), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				pol := allocator.MustNew(allocator.Exhaustive,
					allocator.Config{Seed: uint64(i + 1), MaxBuckets: k})
				res, err = sim.RunSequential(w, pol, sim.RampEarly, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
		})
	}
}

// Ablation: per-category states vs one pooled state (Section III-B).
func BenchmarkAblation_CategoryIsolation(b *testing.B) {
	w := workflow.ColmenaXTB(42)
	for _, blind := range []bool{false, true} {
		name := "per-category"
		if blind {
			name = "category-blind"
		}
		b.Run(name, func(b *testing.B) {
			var res *sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				pol := allocator.MustNew(allocator.Exhaustive,
					allocator.Config{Seed: uint64(i + 1), IgnoreCategories: blind})
				res, err = sim.RunSequential(w, pol, sim.RampEarly, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
		})
	}
}

// Ablation: task-ID (recency) significance vs flat significance on the
// phasing workload, where recency weighting is designed to pay off.
func BenchmarkAblation_Significance(b *testing.B) {
	w, err := workflow.ByName("trimodal", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, flat := range []bool{false, true} {
		name := "task-id-sig"
		if flat {
			name = "flat-sig"
		}
		b.Run(name, func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				pol := allocator.MustNew(allocator.Greedy,
					allocator.Config{Seed: uint64(i + 1), FlatSignificance: flat})
				res, err = sim.RunSequential(w, pol, sim.RampEarly, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
		})
	}
}

// Future work (Section VII): >10,000-task workflows should converge at
// least as well as the 1000-task versions.
func BenchmarkLargeWorkflow_20kTasks(b *testing.B) {
	w, err := workflow.Synthetic("bimodal", 20000, 42)
	if err != nil {
		b.Fatal(err)
	}
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: uint64(i + 1)})
		res, err = sim.RunSequential(w, pol, sim.RampEarly, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Acc.AWE(resources.Memory), "mem-AWE%")
}

// End-to-end discrete-event simulation throughput on the paper pool.
func BenchmarkSimulator_PaperPool(b *testing.B) {
	w, err := workflow.ByName("uniform", 0, 42)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: uint64(i + 1)})
		if _, err := sim.Run(sim.Config{Workflow: w, Policy: pol, PoolSeed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}
