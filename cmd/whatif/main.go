// Command whatif replays one recorded run log under every registered
// allocator and ranks the outcomes: the counterfactual "what if this exact
// run — same task stream, same submission order, same worker churn — had
// been allocated differently?". The recorded allocator's row (marked *) is
// a fidelity replay that reproduces the recorded summary; every other row
// answers the counterfactual against the identical environment.
//
//	vinesim -workflow topeft -algorithm greedy-bucketing -des -log run.jsonl
//	whatif run.jsonl
//	whatif -algorithms greedy-bucketing,max-seen -j 2 run.jsonl
//
// With -fidelity the tool additionally replays under the recorded allocator
// and verifies the replayed summary is bit-identical to the recorded
// footer, exiting non-zero on any mismatch — the round-trip check the
// replay subsystem is pinned by.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"

	"dynalloc/internal/allocator"
	"dynalloc/internal/harness"
	"dynalloc/internal/runlog"
)

func main() {
	algorithms := flag.String("algorithms", "", "comma-separated allocator subset (default: all nine)")
	jobs := flag.Int("j", 0, "replays to run concurrently (0 = GOMAXPROCS)")
	fidelity := flag.Bool("fidelity", false, "verify the recorded allocator's replay reproduces the recorded footer bit-identically")
	csv := flag.Bool("csv", false, "emit the ranking as CSV instead of a table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: whatif [-algorithms a,b,...] [-j N] [-fidelity] [-csv] <runlog.jsonl>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	fatalIf(err)
	log, err := runlog.Read(f)
	f.Close()
	fatalIf(err)
	if log.UnknownKinds > 0 {
		fmt.Fprintf(os.Stderr, "whatif: %s: skipped %d record(s) of unknown kind (log format %d, this build reads %d)\n",
			path, log.UnknownKinds, log.Header.Format, runlog.FormatVersion)
	}

	algs, err := parseAlgorithms(*algorithms)
	fatalIf(err)

	if *fidelity {
		fatalIf(checkFidelity(log))
		fmt.Printf("fidelity: replay under %s reproduces the recorded summary bit-identically\n",
			log.Header.Algorithm)
	}

	cells, err := harness.WhatIfContext(context.Background(), log, algs, *jobs)
	fatalIf(err)
	tab := harness.WhatIfTable(log, cells)
	if *csv {
		fatalIf(tab.RenderCSV(os.Stdout))
	} else {
		fatalIf(tab.Render(os.Stdout))
	}
	if best, ok := harness.BestWhatIf(cells); ok && !best.Recorded {
		fmt.Printf("counterfactual winner: %s (recorded run used %s)\n",
			best.Algorithm, log.Header.Algorithm)
	}
}

// parseAlgorithms resolves a comma-separated allocator list; empty means
// every registered allocator.
func parseAlgorithms(s string) ([]allocator.Name, error) {
	if s == "" {
		return nil, nil
	}
	var out []allocator.Name
	for _, part := range strings.Split(s, ",") {
		name, err := allocator.ParseName(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, name)
	}
	return out, nil
}

// checkFidelity replays the log under its recorded allocator and compares
// the replayed summary against the recorded footer field by field. JSON
// round-trips float64 exactly and the engines are deterministic given the
// recorded environment, so anything short of bit-identical is a replay bug
// (or a hand-edited log).
func checkFidelity(log *runlog.Log) error {
	if log.Footer == nil {
		return fmt.Errorf("whatif: log has no footer to verify against (truncated run?)")
	}
	res, err := runlog.ResimulateAs(context.Background(), log, log.Header.Algorithm)
	if err != nil {
		return fmt.Errorf("whatif: fidelity replay: %w", err)
	}
	got := res.Summary()
	want := log.Footer.Summary
	if !reflect.DeepEqual(got, want) {
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		return fmt.Errorf("whatif: replay diverged from the recorded summary\n  recorded: %s\n  replayed: %s", wj, gj)
	}
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
}
