// Command vinesim runs one workload under one allocation algorithm and
// reports the paper's metrics: per-resource Absolute Workflow Efficiency,
// waste decomposition, and attempt/retry counts.
//
// Usage:
//
//	vinesim -workflow topeft -algorithm exhaustive-bucketing
//	vinesim -workflow normal -tasks 5000 -algorithm max-seen -des -pool backfill:20:50:120
//	vinesim -workflow-file trace.json -algorithm greedy-bucketing -json
//	vinesim -workflow uniform -tasks 1000000 -des -stream -window 16384 -algorithm max-seen
//
// A comma-separated -algorithm list compares algorithms on the same
// workload side by side, fanned across -j worker goroutines; Ctrl-C
// cancels in-flight simulations promptly.
//
//	vinesim -workflow topeft -algorithm max-seen,greedy-bucketing,exhaustive-bucketing -j 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"dynalloc/internal/harness"

	"dynalloc/internal/allocator"
	"dynalloc/internal/condor"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/runlog"
	"dynalloc/internal/sim"
	"dynalloc/internal/trace"
	"dynalloc/internal/vine"
	"dynalloc/internal/workflow"
)

func main() {
	var (
		wfName   = flag.String("workflow", "normal", "workload: "+strings.Join(workflow.Names(), ", "))
		wfFile   = flag.String("workflow-file", "", "load the workload from a JSON trace instead of generating it")
		algName  = flag.String("algorithm", string(allocator.Exhaustive), "allocation algorithm, or a comma-separated list to compare")
		tasks    = flag.Int("tasks", 0, "synthetic task count (0 = paper's 1000)")
		seed     = flag.Uint64("seed", 42, "random seed")
		model    = flag.String("model", sim.RampEarly.String(), "consumption model: ramp-early, ramp-linear, peak-at-end, peak-immediate")
		useDES   = flag.Bool("des", false, "run the discrete-event pool simulation instead of the sequential driver")
		poolSpec = flag.String("pool", "paper", "pool for -des: paper, static:N, backfill:MIN:MAX:INTERVAL, churn:N:LIFE:INTERVAL:HORIZON, condor:SLOTS:LOAD:PILOTS")
		jsonOut  = flag.Bool("json", false, "emit the summary as JSON")
		oracle   = flag.Bool("oracle", false, "use the oracle policy instead of -algorithm")
		logPath  = flag.String("log", "", "write a replayable run log (JSON lines) to this file")
		place    = flag.String("placement", sim.FirstFit.String(), "worker placement for -des: first-fit, worst-fit, best-fit, locality")
		withData = flag.Bool("data", false, "enable the TaskVine-style data layer (file staging and caches) for -des")
		stream   = flag.Bool("stream", false, "generate tasks lazily and fold outcomes as they finish (constant memory; -des only)")
		window   = flag.Int("window", 0, "with -stream, cap tasks in flight beyond the completed count (0 = workload default)")
		jobs     = flag.Int("j", 0, "concurrent simulations when comparing algorithms (0 = GOMAXPROCS)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProf, err := harness.StartProfiles(*cpuProf, *memProf)
	fatalIf(err)
	defer func() { fatalIf(stopProf()) }()

	cm, err := sim.ParseConsumptionModel(*model)
	fatalIf(err)

	if algs := strings.Split(*algName, ","); len(algs) > 1 {
		if *wfFile != "" || *oracle {
			fatalIf(fmt.Errorf("-algorithm lists support generated workloads only (no -workflow-file, no -oracle)"))
		}
		compareAlgorithms(ctx, *wfName, algs, *tasks, *seed, cm, *useDES, *poolSpec, *jobs)
		return
	}

	var (
		w       *workflow.Workflow
		src     workflow.Source
		wfLabel string
	)
	if *stream {
		// Streaming keeps only the in-flight window of tasks alive, so every
		// feature that needs the full task list up front is rejected rather
		// than silently materializing a million-task slice.
		if !*useDES {
			fatalIf(fmt.Errorf("-stream requires -des"))
		}
		if *wfFile != "" || *oracle || *withData {
			fatalIf(fmt.Errorf("-stream generates tasks lazily; -workflow-file, -oracle and -data need the materialized task list"))
		}
		s, err := workflow.SourceByName(*wfName, *tasks, *seed)
		fatalIf(err)
		if *window > 0 {
			s = workflow.WithSubmitWindow(s, *window)
		}
		src = s
		wfLabel = s.Name()
	} else {
		var err error
		w, err = loadWorkflow(*wfFile, *wfName, *tasks, *seed)
		fatalIf(err)
		wfLabel = w.Name
	}

	var policy allocator.Policy
	if *oracle {
		policy = sim.NewOracle(w)
	} else {
		alg, err := allocator.ParseName(*algName)
		fatalIf(err)
		policy, err = allocator.New(alg, allocator.Config{Seed: *seed})
		fatalIf(err)
	}

	// The run log opens before the run so streaming runs can append task
	// lines as outcomes finalize (Writer.Task wired into OnOutcome) instead
	// of needing the materialized outcome slice afterwards.
	var (
		logFile *os.File
		logW    *runlog.Writer
		logErr  error
	)
	openLog := func(hdr runlog.Header) {
		f, err := os.Create(*logPath)
		fatalIf(err)
		lw, err := runlog.NewWriter(f, hdr)
		fatalIf(err)
		logFile, logW = f, lw
	}

	var res *sim.Result
	if *useDES {
		pool, err := parsePool(*poolSpec)
		fatalIf(err)
		placement, err := sim.ParsePlacement(*place)
		fatalIf(err)
		var layer *vine.Layer
		if *withData {
			layer = vine.NewLayer()
			vine.Attach(layer, w, *seed)
		}
		cfg := sim.Config{
			Workflow: w, Source: src, Policy: policy, Pool: pool, PoolSeed: *seed, Model: cm,
			Place: placement, Data: layer,
			DiscardOutcomes: *stream,
		}
		if *logPath != "" {
			wfWindow, wfBarriers := workloadShape(w, src)
			hdr := runlog.SimHeader(runlog.DriverDES, wfLabel, policy.Name(), *seed, cfg, wfWindow, wfBarriers)
			if w != nil {
				hdr.Tasks = len(w.Tasks)
			}
			openLog(hdr)
			if *stream {
				// OnOutcome runs on the engine goroutine and the outcome is
				// recycled after the callback, so encode synchronously here.
				cfg.OnOutcome = func(o *metrics.TaskOutcome) {
					if err := logW.Task(o); err != nil && logErr == nil {
						logErr = err
					}
				}
			}
		}
		res, err = sim.RunContext(ctx, cfg)
		fatalIf(err)
	} else {
		if *logPath != "" {
			hdr := runlog.SimHeader(runlog.DriverSequential, wfLabel, policy.Name(), *seed,
				sim.Config{Model: cm}, w.SubmitWindow, w.Barriers)
			hdr.Tasks = len(w.Tasks)
			openLog(hdr)
		}
		res, err = sim.RunSequentialContext(ctx, w, policy, cm, 0)
		fatalIf(err)
	}

	if logW != nil {
		fatalIf(logErr)
		fatalIf(logW.Finish(res))
		fatalIf(logFile.Close())
		fmt.Fprintf(os.Stderr, "wrote run log %s\n", *logPath)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(res.Summary()))
		return
	}
	s := res.Summary()
	fmt.Printf("workload=%s algorithm=%s tasks=%d attempts=%d retries=%d evictions=%d\n",
		wfLabel, policy.Name(), s.Tasks, s.Attempts, s.Retries, s.Evictions)
	if *useDES {
		fmt.Printf("makespan=%.1fs peak-workers=%d", res.Makespan, res.PeakWorkers)
		if *stream {
			fmt.Printf(" peak-window=%d", res.PeakWindow)
		}
		fmt.Println()
	}
	tab := report.New("", "resource", "AWE", "consumption", "allocation", "internal_frag", "failed_alloc")
	for _, ks := range s.PerKind {
		tab.AddRow(ks.Kind, report.Percent(ks.AWE),
			fmt.Sprintf("%.4g", ks.Consumption), fmt.Sprintf("%.4g", ks.Allocation),
			fmt.Sprintf("%.4g", ks.InternalFragmentation), fmt.Sprintf("%.4g", ks.FailedAllocation))
	}
	fatalIf(tab.Render(os.Stdout))
}

// compareAlgorithms runs one workload under several algorithms through the
// parallel experiment harness and renders a side-by-side metrics table.
func compareAlgorithms(ctx context.Context, wfName string, algNames []string, tasks int, seed uint64, cm sim.ConsumptionModel, useDES bool, poolSpec string, jobs int) {
	algs := make([]allocator.Name, len(algNames))
	for i, s := range algNames {
		alg, err := allocator.ParseName(strings.TrimSpace(s))
		fatalIf(err)
		algs[i] = alg
	}
	opts := harness.Options{
		Seed: seed, Tasks: tasks, Model: cm, UseDES: useDES,
		Workloads: []string{wfName}, Algorithms: algs, Parallelism: jobs,
	}
	if useDES {
		pool, err := parsePool(poolSpec)
		fatalIf(err)
		opts.Pool = pool
	}
	cells, err := harness.RunGridContext(ctx, opts)
	fatalIf(err)
	tab := report.New(fmt.Sprintf("%s — algorithm comparison", wfName),
		"algorithm", "cores AWE", "memory AWE", "disk AWE", "retries", "elapsed")
	for _, c := range cells {
		tab.AddRow(string(c.Algorithm),
			report.Percent(c.AWE(resources.Cores)),
			report.Percent(c.AWE(resources.Memory)),
			report.Percent(c.AWE(resources.Disk)),
			c.Summary.Retries,
			c.Elapsed.Round(time.Millisecond).String())
	}
	fatalIf(tab.Render(os.Stdout))
}

// workloadShape extracts the submit window and phase barriers of whichever
// workload form the run uses (materialized slice or lazy source), for the
// run-log header. Enumerating a source's barriers is stateless (NextBarrier
// does not consume tasks), so the source stays fresh for the run.
func workloadShape(w *workflow.Workflow, src workflow.Source) (int, []int) {
	if w != nil {
		return w.SubmitWindow, w.Barriers
	}
	var barriers []int
	for b := src.NextBarrier(0); b > 0; b = src.NextBarrier(b) {
		barriers = append(barriers, b)
	}
	return src.SubmitWindow(), barriers
}

func loadWorkflow(file, name string, tasks int, seed uint64) (*workflow.Workflow, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		w, err := trace.ReadWorkflow(f)
		if err != nil {
			return nil, err
		}
		return w, w.Validate(resources.PaperWorker())
	}
	return workflow.ByName(name, tasks, seed)
}

func parsePool(spec string) (opportunistic.Model, error) {
	parts := strings.Split(spec, ":")
	nums := func(want int) ([]float64, error) {
		if len(parts) != want+1 {
			return nil, fmt.Errorf("pool spec %q needs %d parameters", spec, want)
		}
		out := make([]float64, want)
		for i := range out {
			v, err := strconv.ParseFloat(parts[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("pool spec %q: %w", spec, err)
			}
			out[i] = v
		}
		return out, nil
	}
	switch parts[0] {
	case "paper":
		return opportunistic.PaperPool(), nil
	case "static":
		v, err := nums(1)
		if err != nil {
			return nil, err
		}
		return opportunistic.Static{N: int(v[0])}, nil
	case "backfill":
		v, err := nums(3)
		if err != nil {
			return nil, err
		}
		return opportunistic.Backfill{Min: int(v[0]), Max: int(v[1]), Interval: v[2]}, nil
	case "churn":
		v, err := nums(4)
		if err != nil {
			return nil, err
		}
		return opportunistic.Churn{
			Initial: int(v[0]), MeanLifetime: v[1], MeanInterval: v[2], Horizon: v[3],
			KeepLastAlive: true,
		}, nil
	case "condor":
		v, err := nums(3)
		if err != nil {
			return nil, err
		}
		c := condor.DefaultCluster()
		c.Slots = int(v[0])
		c.PrimaryLoad = v[1]
		c.PilotTarget = int(v[2])
		return c, nil
	default:
		return nil, fmt.Errorf("unknown pool model %q", parts[0])
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vinesim:", err)
		os.Exit(1)
	}
}
