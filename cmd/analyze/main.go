// Command analyze recomputes the paper's metrics from saved run logs
// (written by vinesim -log) without re-running the simulation, and compares
// several logs side by side.
//
//	vinesim -workflow topeft -algorithm exhaustive-bucketing -log eb.jsonl
//	vinesim -workflow topeft -algorithm max-seen -log ms.jsonl
//	analyze eb.jsonl ms.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/runlog"
)

func main() {
	perCategory := flag.Bool("by-category", false, "break metrics down per task category")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: analyze [-by-category] <runlog.jsonl>...")
		os.Exit(2)
	}

	tab := report.New("Run log analysis",
		"log", "workload", "algorithm", "tasks", "retries",
		"cores AWE", "memory AWE", "disk AWE")
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		fatalIf(err)
		log, err := runlog.Read(f)
		f.Close()
		fatalIf(err)
		acc := runlog.Replay(log)
		tab.AddRow(path, log.Header.Workload, log.Header.Algorithm,
			acc.Tasks(), acc.Retries(),
			report.Percent(acc.AWE(resources.Cores)),
			report.Percent(acc.AWE(resources.Memory)),
			report.Percent(acc.AWE(resources.Disk)))

		if *perCategory {
			byCat := runlog.ReplayByCategory(log)
			cats := make([]string, 0, len(byCat))
			for cat := range byCat {
				cats = append(cats, cat)
			}
			sort.Strings(cats)
			for _, cat := range cats {
				acc := byCat[cat]
				tab.AddRow("  - "+cat, "", "", acc.Tasks(), acc.Retries(),
					report.Percent(acc.AWE(resources.Cores)),
					report.Percent(acc.AWE(resources.Memory)),
					report.Percent(acc.AWE(resources.Disk)))
			}
		}
	}
	fatalIf(tab.Render(os.Stdout))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}
