// Command analyze recomputes the paper's metrics from saved run logs
// (written by vinesim -log or a live wq-manager -log run) without re-running
// anything, and compares several logs side by side. Live-engine logs carry
// lifecycle event lines (dispatches, evictions, heartbeat timeouts, drain);
// those replay identically, with the event count reported alongside the
// metrics. Logs are read and replayed across -j worker goroutines; the
// output order always matches the argument order.
//
//	vinesim -workflow topeft -algorithm exhaustive-bucketing -log eb.jsonl
//	wq-manager -workflow topeft -algorithm max-seen -log live.jsonl
//	analyze eb.jsonl live.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/runlog"
)

func main() {
	perCategory := flag.Bool("by-category", false, "break metrics down per task category")
	jobs := flag.Int("j", 0, "run logs to replay concurrently (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: analyze [-by-category] [-j N] <runlog.jsonl>...")
		os.Exit(2)
	}

	paths := flag.Args()
	rowsPerLog := make([][][]any, len(paths))
	errs := make([]error, len(paths))
	parallelism := *jobs
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(paths) {
		parallelism = len(paths)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				rowsPerLog[i], errs[i] = replayLog(paths[i], *perCategory)
			}
		}()
	}
	wg.Wait()

	tab := report.New("Run log analysis",
		"log", "workload", "algorithm", "tasks", "retries", "evictions", "failed", "events",
		"cores AWE", "memory AWE", "disk AWE")
	for i, rows := range rowsPerLog {
		fatalIf(errs[i])
		for _, row := range rows {
			tab.AddRow(row...)
		}
	}
	fatalIf(tab.Render(os.Stdout))
}

// replayLog reads one run log and returns its table rows: the aggregate
// row first, then one row per category when perCategory is set.
func replayLog(path string, perCategory bool) ([][]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := runlog.Read(f)
	if err != nil {
		return nil, err
	}
	if log.UnknownKinds > 0 {
		fmt.Fprintf(os.Stderr, "analyze: %s: skipped %d record(s) of unknown kind (log format %d, this build reads %d)\n",
			path, log.UnknownKinds, log.Header.Format, runlog.FormatVersion)
	}
	acc := runlog.Replay(log)
	rows := [][]any{{path, log.Header.Workload, log.Header.Algorithm,
		acc.Tasks(), acc.Retries(), acc.Evictions(), acc.Failures(), len(log.Events),
		report.Percent(acc.AWE(resources.Cores)),
		report.Percent(acc.AWE(resources.Memory)),
		report.Percent(acc.AWE(resources.Disk))}}

	if perCategory {
		byCat := runlog.ReplayByCategory(log)
		cats := make([]string, 0, len(byCat))
		for cat := range byCat {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
		for _, cat := range cats {
			acc := byCat[cat]
			rows = append(rows, []any{"  - " + cat, "", "",
				acc.Tasks(), acc.Retries(), acc.Evictions(), acc.Failures(), "",
				report.Percent(acc.AWE(resources.Cores)),
				report.Percent(acc.AWE(resources.Memory)),
				report.Percent(acc.AWE(resources.Disk))})
		}
	}
	return rows, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}
