// Command wq-worker runs one live worker: it connects to a wq-manager,
// advertises its capacity, and executes tasks under a virtual resource
// monitor until the manager shuts it down.
//
//	wq-worker -addr 127.0.0.1:9123 -cores 16 -memory 65536 -disk 65536
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dynalloc/internal/resources"
	"dynalloc/internal/wq"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9123", "manager address")
		cores     = flag.Float64("cores", 16, "advertised cores")
		memory    = flag.Float64("memory", 64*1024, "advertised memory (MB)")
		disk      = flag.Float64("disk", 64*1024, "advertised disk (MB)")
		timeScale = flag.Float64("timescale", 1e-3, "wall seconds per simulated task second")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := wq.WorkerConfig{
		Capacity:  resources.New(*cores, *memory, *disk, resources.Unlimited),
		TimeScale: *timeScale,
	}
	fmt.Printf("worker connecting to %s (%v cores, %v MB memory, %v MB disk)\n",
		*addr, *cores, *memory, *disk)
	if err := wq.RunWorker(ctx, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "wq-worker:", err)
		os.Exit(1)
	}
	fmt.Println("worker shut down")
}
