// Command wq-worker runs one live worker: it connects to a wq-manager,
// advertises its capacity, answers the manager's heartbeat pings, and
// executes tasks under a virtual resource monitor until the manager shuts it
// down. With -reconnect the worker re-dials after a lost connection (a
// manager restart, or being declared lost by the heartbeat sweeper during a
// stall), which is how an opportunistic node rejoins the pool.
//
//	wq-worker -addr 127.0.0.1:9123 -cores 16 -memory 65536 -disk 65536 -reconnect 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"dynalloc/internal/resources"
	"dynalloc/internal/wq"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9123", "manager address")
		cores     = flag.Float64("cores", 16, "advertised cores")
		memory    = flag.Float64("memory", 64*1024, "advertised memory (MB)")
		disk      = flag.Float64("disk", 64*1024, "advertised disk (MB)")
		timeScale = flag.Float64("timescale", 1e-3, "wall seconds per simulated task second")
		reconnect = flag.Int("reconnect", 0, "re-dial this many times after a lost connection")
		backoff   = flag.Duration("reconnect-wait", time.Second, "pause between reconnect attempts")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := wq.WorkerConfig{
		Capacity:  resources.New(*cores, *memory, *disk, resources.Unlimited),
		TimeScale: *timeScale,
	}
	fmt.Printf("worker connecting to %s (%v cores, %v MB memory, %v MB disk)\n",
		*addr, *cores, *memory, *disk)
	attempts := *reconnect
	for {
		err := wq.RunWorker(ctx, *addr, cfg)
		if err == nil || ctx.Err() != nil {
			break
		}
		if attempts <= 0 {
			fmt.Fprintln(os.Stderr, "wq-worker:", err)
			os.Exit(1)
		}
		attempts--
		fmt.Fprintf(os.Stderr, "wq-worker: %v; reconnecting in %s (%d attempts left)\n",
			err, *backoff, attempts+1)
		select {
		case <-time.After(*backoff):
		case <-ctx.Done():
		}
	}
	fmt.Println("worker shut down")
}
