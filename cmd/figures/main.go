// Command figures regenerates every table and figure of the paper's
// evaluation section:
//
//	figures -fig 2              # ColmenaXTB/TopEFT consumption series (CSV)
//	figures -fig 3              # Greedy/Exhaustive bucketing worked example
//	figures -fig 4              # synthetic workflow memory series (CSV)
//	figures -fig 5              # AWE grid, 7 workflows x 7 algorithms
//	figures -fig 6              # waste decomposition grid
//	figures -table 1            # bucketing-state computation cost
//	figures -all                # everything (CSV series written to -outdir)
//
// Figure 5/6 runs use the fast sequential driver by default; pass -des to
// run the full discrete-event simulation on the paper's 20-to-50-worker
// opportunistic pool. Grid cells fan out across -j worker goroutines
// (default GOMAXPROCS) with identical results at any parallelism; Ctrl-C
// cancels in-flight simulations promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/harness"
	"dynalloc/internal/plot"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/trace"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (2-6)")
		table    = flag.Int("table", 0, "table to regenerate (1)")
		all      = flag.Bool("all", false, "regenerate everything")
		seed     = flag.Uint64("seed", 42, "random seed")
		tasks    = flag.Int("tasks", 0, "synthetic task count (0 = paper's 1000)")
		useDES   = flag.Bool("des", false, "use the discrete-event pool simulation for figures 5/6")
		model    = flag.String("model", sim.RampEarly.String(), "consumption model for figures 5/6")
		extended = flag.Bool("extended", false, "include the extension algorithms (k-means, percentile) in figures 5/6")
		asPlot   = flag.Bool("plot", false, "render terminal graphics (bar charts for figure 5, scatter strips for figures 2/4) instead of tables/CSV only")
		outdir   = flag.String("outdir", "figures-out", "directory for CSV series (figures 2 and 4)")
		reps     = flag.Int("reps", 10, "measurement repetitions for table 1")
		seeds    = flag.Int("seeds", 1, "replicate figures 5/6 across this many seeds and report mean ± sd")
		jobs     = flag.Int("j", 0, "grid cells to simulate concurrently (0 = GOMAXPROCS, 1 = sequential)")
		progress = flag.Bool("progress", false, "report each completed grid cell on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProf, err := harness.StartProfiles(*cpuProf, *memProf)
	fatalIf(err)
	defer func() { fatalIf(stopProf()) }()

	cm, err := sim.ParseConsumptionModel(*model)
	fatalIf(err)
	opts := harness.Options{Seed: *seed, Tasks: *tasks, UseDES: *useDES, Model: cm, Parallelism: *jobs}
	if *extended {
		opts.Algorithms = allocator.ExtendedNames()
	}
	if *progress {
		opts.Progress = func(p harness.Progress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s done in %s\n",
				p.Done, p.Total, p.Cell.Workload, p.Cell.Algorithm, p.Cell.Elapsed.Round(time.Millisecond))
		}
	}

	ran := false
	run := func(n int, sel *int, f func()) {
		if *all || *sel == n {
			f()
			ran = true
		}
	}
	run(2, fig, func() { fig2(*seed, *outdir, *asPlot) })
	run(3, fig, func() { fig3(*seed) })
	run(4, fig, func() { fig4(*seed, *tasks, *outdir, *asPlot) })
	run(5, fig, func() {
		if *seeds > 1 {
			fig5Replicated(ctx, opts, *seeds)
		} else {
			fig56(ctx, opts, true, *asPlot)
		}
	})
	run(6, fig, func() { fig56(ctx, opts, false, false) })
	run(1, table, func() { table1(ctx, *seed, *reps) })
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fig2(seed uint64, outdir string, asPlot bool) {
	series := harness.Fig2Series(seed)
	writeSeries(outdir, "fig2", series)
	if asPlot {
		plotSeries(series)
	}
}

func fig3(seed uint64) {
	fatalIf(harness.Fig3Example(seed, 2000).Render(os.Stdout))
	fmt.Println()
}

func fig4(seed uint64, tasks int, outdir string, asPlot bool) {
	series, err := harness.Fig4Series(seed, tasks)
	fatalIf(err)
	writeSeries(outdir, "fig4", series)
	if asPlot {
		plotSeries(series)
	}
}

// plotSeries renders the memory column of each series as a scatter strip.
func plotSeries(series map[string][]trace.TaskPoint) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		values := make([]float64, len(series[name]))
		for i, p := range series[name] {
			values[i] = p.MemoryMB
		}
		fatalIf(plot.Strip{
			Title:  fmt.Sprintf("%s — memory consumption (MB) by task order", name),
			Values: values,
		}.Render(os.Stdout))
		fmt.Println()
	}
}

func writeSeries(outdir, prefix string, series map[string][]trace.TaskPoint) {
	fatalIf(os.MkdirAll(outdir, 0o755))
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(outdir, fmt.Sprintf("%s_%s.csv", prefix, name))
		f, err := os.Create(path)
		fatalIf(err)
		fatalIf(harness.WriteSeriesCSV(f, series[name]))
		fatalIf(f.Close())
		fmt.Printf("wrote %s (%d tasks)\n", path, len(series[name]))
	}
}

// fig56 runs the shared grid and renders Figure 5 (AWE) or Figure 6
// (waste).
func fig56(ctx context.Context, opts harness.Options, five bool, asPlot bool) {
	cells, err := harness.RunGridContext(ctx, opts)
	fatalIf(err)
	if five {
		for _, tab := range harness.Fig5Tables(cells, opts) {
			fatalIf(tab.Render(os.Stdout))
			fmt.Println()
		}
		if asPlot {
			plotFig5(cells)
		}
	} else {
		for _, tab := range harness.Fig6Tables(cells, opts) {
			fatalIf(tab.Render(os.Stdout))
			fmt.Println()
		}
	}
}

// fig5Replicated runs the Figure 5 grid across several seeds and reports
// mean ± standard deviation per cell.
func fig5Replicated(ctx context.Context, opts harness.Options, seeds int) {
	cells, err := harness.RunGridReplicatedContext(ctx, opts, seeds)
	fatalIf(err)
	for _, k := range resources.AllocatedKinds() {
		fatalIf(harness.ReplicatedTable(cells, opts, k, seeds).Render(os.Stdout))
		fmt.Println()
	}
}

func table1(ctx context.Context, seed uint64, reps int) {
	rows, err := harness.Table1Context(ctx, seed, reps)
	fatalIf(err)
	fatalIf(harness.Table1Report(rows).Render(os.Stdout))
	fmt.Println()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// plotFig5 renders one bar chart per (resource kind, workload) cell group.
func plotFig5(cells []harness.Cell) {
	var workloads []string
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Workload] {
			seen[c.Workload] = true
			workloads = append(workloads, c.Workload)
		}
	}
	for _, k := range resources.AllocatedKinds() {
		for _, wf := range workloads {
			chart := plot.BarChart{
				Title: fmt.Sprintf("%s AWE — %s", k, wf),
				Max:   100,
				Unit:  "%",
			}
			for _, c := range cells {
				if c.Workload != wf {
					continue
				}
				chart.Bars = append(chart.Bars, plot.Bar{
					Label: string(c.Algorithm),
					Value: 100 * c.AWE(k),
				})
			}
			fatalIf(chart.Render(os.Stdout))
			fmt.Println()
		}
	}
}
