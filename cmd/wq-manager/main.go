// Command wq-manager runs the live Work Queue-style manager: it listens for
// workers, executes a workload with the chosen allocation algorithm, and
// prints the same efficiency report as vinesim plus the engine's lifecycle
// counters (dispatches, evictions, retries, failures, per-worker
// utilization).
//
// Start a manager, then one or more wq-worker processes:
//
//	wq-manager -addr 127.0.0.1:9123 -workflow bimodal -tasks 200 -log live.jsonl &
//	wq-worker  -addr 127.0.0.1:9123 &
//	wq-worker  -addr 127.0.0.1:9123 &
//
// With -log the run is traced into a run log (header, lifecycle event
// lines, task outcomes, footer) that cmd/analyze replays exactly like a
// simulator log.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/report"
	"dynalloc/internal/runlog"
	"dynalloc/internal/workflow"
	"dynalloc/internal/wq"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9123", "listen address")
		wfName     = flag.String("workflow", "normal", "workload: "+strings.Join(workflow.Names(), ", "))
		algName    = flag.String("algorithm", string(allocator.Exhaustive), "allocation algorithm")
		tasks      = flag.Int("tasks", 200, "synthetic task count")
		seed       = flag.Uint64("seed", 42, "random seed")
		timeout    = flag.Duration("timeout", 10*time.Minute, "overall run deadline")
		minW       = flag.Int("min-workers", 1, "wait for this many workers before submitting")
		logPath    = flag.String("log", "", "write a replayable run log (with lifecycle events) to this file")
		hbInterval = flag.Duration("heartbeat", 2*time.Second, "worker ping interval (0 disables liveness sweeping)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 0, "declare a worker lost after this much silence (0 = 4x heartbeat)")
		retryLimit = flag.Int("retry-limit", 0, "abandon a task after this many evictions/exhaustions (0 = unbounded)")
		drain      = flag.Duration("drain-timeout", 5*time.Second, "how long Close waits for in-flight results")
	)
	flag.Parse()

	w, err := workflow.ByName(*wfName, *tasks, *seed)
	fatalIf(err)
	alg, err := allocator.ParseName(*algName)
	fatalIf(err)
	policy, err := allocator.New(alg, allocator.Config{Seed: *seed})
	fatalIf(err)

	opts := []wq.Option{
		wq.WithHeartbeat(*hbInterval, *hbTimeout),
		wq.WithRetryLimit(*retryLimit),
		wq.WithDrainTimeout(*drain),
	}
	var lw *runlog.Writer
	var logFile *os.File
	if *logPath != "" {
		logFile, err = os.Create(*logPath)
		fatalIf(err)
		lw, err = runlog.NewWriter(logFile, runlog.Header{
			Workload:    w.Name,
			Algorithm:   policy.Name(),
			Seed:        *seed,
			Tasks:       len(w.Tasks),
			Driver:      runlog.DriverWQ,
			Window:      w.SubmitWindow,
			Barriers:    w.Barriers,
			MaxAttempts: *retryLimit,
		})
		fatalIf(err)
		opts = append(opts, wq.WithTracer(wq.NewRunlogTracer(lw)))
	}

	m := wq.NewManager(policy, opts...)
	bound, err := m.Listen(*addr)
	fatalIf(err)
	defer m.Close()
	fmt.Printf("manager listening on %s; waiting for %d worker(s)\n", bound, *minW)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	for m.Workers() < *minW {
		select {
		case <-ctx.Done():
			fatalIf(fmt.Errorf("timed out waiting for workers"))
		case <-time.After(100 * time.Millisecond):
		}
	}

	start := time.Now()
	res, err := m.RunWorkflow(ctx, w)
	fatalIf(err)
	m.Close() // drain now so the drain events land before the log footer

	s := res.Summary()
	fmt.Printf("completed %d tasks in %s: attempts=%d retries=%d evictions=%d failed=%d workers(peak)=%d\n",
		s.Tasks, time.Since(start).Round(time.Millisecond), s.Attempts, s.Retries, s.Evictions,
		res.Failed, res.PeakWorkers)
	tab := report.New("", "resource", "AWE", "internal_frag", "failed_alloc")
	for _, ks := range s.PerKind {
		tab.AddRow(ks.Kind, report.Percent(ks.AWE),
			fmt.Sprintf("%.4g", ks.InternalFragmentation), fmt.Sprintf("%.4g", ks.FailedAllocation))
	}
	fatalIf(tab.Render(os.Stdout))

	st := m.Stats()
	fmt.Printf("\nengine: dispatches=%d successes=%d exhaustions=%d evictions=%d failures=%d requeues=%d\n",
		st.Dispatches, st.Successes, st.Exhaustions, st.Evictions, st.Failures, st.Requeues)
	fmt.Printf("        heartbeat_timeouts=%d workers_lost=%d peak_queue=%d peak_workers=%d\n",
		st.HeartbeatTimeouts, st.WorkersLost, st.PeakQueue, st.PeakWorkers)
	fmt.Printf("        frames_sent=%d flush_batches=%d decode_errors=%d\n",
		st.FramesSent, st.FlushBatches, st.DecodeErrors)
	wtab := report.New("per-worker utilization",
		"worker", "connected", "dispatched", "successes", "exhaustions", "evictions", "busy (virtual s)")
	for _, ws := range st.Workers {
		wtab.AddRow(ws.ID, ws.Connected, ws.Dispatched, ws.Successes, ws.Exhaustions, ws.Evictions,
			fmt.Sprintf("%.1f", ws.BusySeconds))
	}
	fatalIf(wtab.Render(os.Stdout))

	if lw != nil {
		fatalIf(lw.Finish(res))
		fatalIf(logFile.Close())
		fmt.Printf("\nrun log (%d events) written to %s; replay with: analyze %s\n",
			lw.Events(), *logPath, *logPath)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wq-manager:", err)
		os.Exit(1)
	}
}
