// Command wq-manager runs the live Work Queue-style manager: it listens for
// workers, executes a workload with the chosen allocation algorithm, and
// prints the same efficiency report as vinesim.
//
// Start a manager, then one or more wq-worker processes:
//
//	wq-manager -addr 127.0.0.1:9123 -workflow bimodal -tasks 200 &
//	wq-worker  -addr 127.0.0.1:9123 &
//	wq-worker  -addr 127.0.0.1:9123 &
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/report"
	"dynalloc/internal/workflow"
	"dynalloc/internal/wq"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9123", "listen address")
		wfName  = flag.String("workflow", "normal", "workload: "+strings.Join(workflow.Names(), ", "))
		algName = flag.String("algorithm", string(allocator.Exhaustive), "allocation algorithm")
		tasks   = flag.Int("tasks", 200, "synthetic task count")
		seed    = flag.Uint64("seed", 42, "random seed")
		timeout = flag.Duration("timeout", 10*time.Minute, "overall run deadline")
		minW    = flag.Int("min-workers", 1, "wait for this many workers before submitting")
	)
	flag.Parse()

	w, err := workflow.ByName(*wfName, *tasks, *seed)
	fatalIf(err)
	alg, err := allocator.ParseName(*algName)
	fatalIf(err)
	policy, err := allocator.New(alg, allocator.Config{Seed: *seed})
	fatalIf(err)

	m := wq.NewManager(policy)
	bound, err := m.Listen(*addr)
	fatalIf(err)
	defer m.Close()
	fmt.Printf("manager listening on %s; waiting for %d worker(s)\n", bound, *minW)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	for m.Workers() < *minW {
		select {
		case <-ctx.Done():
			fatalIf(fmt.Errorf("timed out waiting for workers"))
		case <-time.After(100 * time.Millisecond):
		}
	}

	start := time.Now()
	res, err := m.RunWorkflow(ctx, w)
	fatalIf(err)
	s := res.Summary()
	fmt.Printf("completed %d tasks in %s: attempts=%d retries=%d evictions=%d workers(peak)=%d\n",
		s.Tasks, time.Since(start).Round(time.Millisecond), s.Attempts, s.Retries, s.Evictions, res.PeakWorkers)
	tab := report.New("", "resource", "AWE", "internal_frag", "failed_alloc")
	for _, ks := range s.PerKind {
		tab.AddRow(ks.Kind, report.Percent(ks.AWE),
			fmt.Sprintf("%.4g", ks.InternalFragmentation), fmt.Sprintf("%.4g", ks.FailedAllocation))
	}
	fatalIf(tab.Render(os.Stdout))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wq-manager:", err)
		os.Exit(1)
	}
}
