// Command tracegen generates an evaluation workload and writes it as a JSON
// trace (replayable with vinesim -workflow-file) or as a CSV consumption
// series.
//
//	tracegen -workflow topeft -o topeft.json
//	tracegen -workflow trimodal -tasks 5000 -csv -o trimodal.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynalloc/internal/trace"
	"dynalloc/internal/workflow"
)

func main() {
	var (
		wfName = flag.String("workflow", "normal", "workload: "+strings.Join(workflow.Names(), ", "))
		tasks  = flag.Int("tasks", 0, "synthetic task count (0 = paper's 1000)")
		seed   = flag.Uint64("seed", 42, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
		asCSV  = flag.Bool("csv", false, "write a CSV consumption series instead of a JSON trace")
	)
	flag.Parse()

	w, err := workflow.ByName(*wfName, *tasks, *seed)
	fatalIf(err)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer func() { fatalIf(f.Close()) }()
		dst = f
	}
	if *asCSV {
		fatalIf(trace.WriteCSV(dst, trace.Points(w)))
	} else {
		fatalIf(trace.WriteWorkflow(dst, w))
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d tasks, %d categories)\n",
			*out, w.Len(), len(w.Categories()))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
