// Command ablate runs the design-choice ablation suite: consumption
// profile, exploration threshold, bucket cap, category isolation,
// significance weighting, and placement robustness. The measured tables
// back the Ablations section of EXPERIMENTS.md.
//
//	ablate                # everything
//	ablate -only category # one ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"dynalloc/internal/harness"
	"dynalloc/internal/report"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 42, "random seed")
		tasks = flag.Int("tasks", 0, "synthetic task count (0 = paper's 1000)")
		only  = flag.String("only", "", "run one ablation: model, exploration, buckets, category, significance, placement")
	)
	flag.Parse()

	type ablation struct {
		name string
		run  func() (*report.Table, error)
	}
	suite := []ablation{
		{"model", func() (*report.Table, error) { return harness.AblateConsumptionModel(*seed, "normal", *tasks) }},
		{"exploration", func() (*report.Table, error) { return harness.AblateExploration(*seed, "bimodal", *tasks, nil) }},
		{"buckets", func() (*report.Table, error) { return harness.AblateMaxBuckets(*seed, "trimodal", *tasks, nil) }},
		{"category", func() (*report.Table, error) { return harness.AblateCategoryIsolation(*seed) }},
		{"significance", func() (*report.Table, error) { return harness.AblateSignificance(*seed, "trimodal", *tasks) }},
		{"placement", func() (*report.Table, error) { return harness.AblatePlacement(*seed, "bimodal", *tasks) }},
	}

	ran := false
	for _, a := range suite {
		if *only != "" && *only != a.name {
			continue
		}
		tab, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablate: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ablate:", err)
			os.Exit(1)
		}
		fmt.Println()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ablate: unknown ablation %q\n", *only)
		os.Exit(2)
	}
}
