// Command ablate runs the design-choice ablation suite: consumption
// profile, exploration threshold, bucket cap, category isolation,
// significance weighting, and placement robustness. The measured tables
// back the Ablations section of EXPERIMENTS.md.
//
//	ablate                # everything, fanned across -j workers
//	ablate -only category # one ablation
//	ablate -j 1           # sequential
//
// Ctrl-C cancels in-flight simulations promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"dynalloc/internal/harness"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 42, "random seed")
		tasks = flag.Int("tasks", 0, "synthetic task count (0 = paper's 1000)")
		only  = flag.String("only", "", "run one ablation: model, exploration, buckets, category, significance, placement")
		jobs  = flag.Int("j", 0, "ablations to run concurrently (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	suite := harness.AblationSuite(*seed, *tasks)
	if *only != "" {
		var picked []harness.Ablation
		for _, a := range suite {
			if a.Name == *only {
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			var names []string
			for _, a := range suite {
				names = append(names, a.Name)
			}
			fmt.Fprintf(os.Stderr, "ablate: unknown ablation %q (have: %s)\n", *only, strings.Join(names, ", "))
			os.Exit(2)
		}
		suite = picked
	}

	tables, err := harness.RunAblations(ctx, suite, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
	for _, tab := range tables {
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ablate:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
