// Command allocd runs the multi-tenant allocator service: a long-lived TCP
// daemon that serves resource predictions to many independent workflows at
// once, each behind its own isolated allocator state. Clients speak the
// JSON-line protocol of internal/serve (register, then
// request/retry/observe/ping/stats frames); cmd/allocbench is a ready-made
// load generator against it.
//
//	allocd -addr 127.0.0.1:9200 -max-records 4096 -tenant-ttl 1h &
//	allocbench -addr 127.0.0.1:9200 -tenants 8
//
// Record decay (-max-records) keeps every long-lived tenant's per-category
// memory bounded: a category is reset at the ceiling and rebuilt from its
// most recent observations. -tenant-ttl evicts tenants that have been
// disconnected and idle, bounding memory across tenant churn too. Ctrl-C
// drains gracefully: connected clients get a drain frame and a grace period
// to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"time"

	"dynalloc/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9200", "listen address")
		maxRecords = flag.Int("max-records", 4096, "per-category record ceiling before decay (0 = never decay)")
		window     = flag.Int("decay-window", 0, "observations replayed after a decay reset (0 = half the ceiling)")
		tenantTTL  = flag.Duration("tenant-ttl", time.Hour, "evict tenants idle and disconnected this long (0 = keep forever)")
		drain      = flag.Duration("drain-timeout", 5*time.Second, "grace period for connected clients on shutdown")
		statsEvery = flag.Duration("stats-interval", time.Minute, "print per-tenant counters this often (0 disables)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// Live profiling of the service hot paths, mirroring
		// harness.StartProfiles on the sim CLIs:
		//   go tool pprof http://<pprof-addr>/debug/pprof/profile?seconds=10
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "allocd: pprof:", err)
			}
		}()
		fmt.Printf("allocd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	s := serve.NewServer(
		serve.WithMaxRecords(*maxRecords),
		serve.WithDecayWindow(*window),
		serve.WithTenantTTL(*tenantTTL),
		serve.WithServerDrainTimeout(*drain),
	)
	bound, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocd:", err)
		os.Exit(1)
	}
	fmt.Printf("allocd listening on %s (max-records=%d tenant-ttl=%s)\n", bound, *maxRecords, *tenantTTL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *statsEvery > 0 {
		go func() {
			ticker := time.NewTicker(*statsEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					printStats(s)
				}
			}
		}()
	}

	<-ctx.Done()
	fmt.Println("allocd: draining...")
	s.Close()
	printStats(s)
	fmt.Printf("allocd: stopped (%d idle tenants evicted over the run)\n", s.TenantsEvicted())
}

func printStats(s *serve.Server) {
	stats := s.Stats()
	if len(stats) == 0 {
		fmt.Println("allocd: no tenants")
	}
	for _, st := range stats {
		fmt.Printf("allocd: tenant=%s conns=%d allocates=%d retries=%d observes=%d decays=%d categories=%d records=%d\n",
			st.Tenant, st.Connections, st.Allocates, st.Retries, st.Observes, st.Decays, st.Categories, st.Records)
	}
	if n := s.DecodeErrors(); n > 0 {
		fmt.Printf("allocd: decode-errors=%d (malformed frames rejected; their connections were closed)\n", n)
	}
}
