// Command benchfmt converts `go test -bench` output into the repo's
// benchmark-trajectory JSON. It reads the benchmark text on stdin, echoes
// it to stderr (so a piped run stays watchable), and writes one JSON
// document per invocation:
//
//	go test ./internal/sim -run '^$' -bench BenchmarkSim -benchmem | benchfmt -out BENCH_sim.json
//
// Each benchmark line becomes an entry with ns/op, B/op, and allocs/op
// plus any custom metrics (e.g. mem-AWE%) keyed by their unit. The exit
// status is non-zero when no benchmark lines were seen, so a CI smoke run
// fails loudly if the bench suite bit-rots.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the BENCH_*.json layout: enough machine context to compare
// trajectory points across commits, plus the per-benchmark entries.
type Document struct {
	GeneratedAt string  `json:"generated_at"`
	Goos        string  `json:"goos,omitempty"`
	Goarch      string  `json:"goarch,omitempty"`
	CPU         string  `json:"cpu,omitempty"`
	Benchmarks  []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output JSON path (required)")
	flag.Parse()
	if *out == "" {
		// Required rather than defaulted: two bench suites feed two different
		// trajectory files, and a forgotten -out silently clobbering
		// BENCH_sim.json with allocator numbers is worse than an error.
		fatal(fmt.Errorf("-out is required (e.g. -out BENCH_sim.json)"))
	}

	doc := Document{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseLine(line); ok {
				e.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchfmt: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseLine parses one `BenchmarkName-8  N  V unit  V unit ...` line. Lines
// that merely start a sub-benchmark group (no measurements yet) report !ok.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS decoration, keeping sub-bench names
	// (which may themselves contain dashes) intact.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
	}
	return e, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfmt:", err)
	os.Exit(1)
}
