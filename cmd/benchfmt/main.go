// Command benchfmt converts `go test -bench` output into the repo's
// benchmark-trajectory JSON. It reads the benchmark text on stdin, echoes
// it to stderr (so a piped run stays watchable), and writes one JSON
// document per invocation:
//
//	go test ./internal/sim -run '^$' -bench BenchmarkSim -benchmem | benchfmt -out BENCH_sim.json
//
// Each benchmark line becomes an entry with ns/op, B/op, and allocs/op
// plus any custom metrics (e.g. mem-AWE%) keyed by their unit. The exit
// status is non-zero when no benchmark lines were seen, so a CI smoke run
// fails loudly if the bench suite bit-rots.
//
// With -merge, entries parsed now replace same-named entries in an existing
// -out document and the rest are kept, so several bench suites can feed one
// trajectory file. With -max-allocs N, the run fails when any benchmark it
// parsed reports more than N allocs/op — a CI regression gate for paths
// that must stay allocation-bounded.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the BENCH_*.json layout: enough machine context to compare
// trajectory points across commits, plus the per-benchmark entries.
type Document struct {
	GeneratedAt string  `json:"generated_at"`
	Goos        string  `json:"goos,omitempty"`
	Goarch      string  `json:"goarch,omitempty"`
	CPU         string  `json:"cpu,omitempty"`
	Benchmarks  []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output JSON path (required)")
	merge := flag.Bool("merge", false, "fold into an existing -out document: entries parsed now replace same-named ones, the rest are kept")
	maxAllocs := flag.Float64("max-allocs", -1, "fail when any benchmark parsed from stdin exceeds this allocs/op (-1 disables)")
	flag.Parse()
	if *out == "" {
		// Required rather than defaulted: two bench suites feed two different
		// trajectory files, and a forgotten -out silently clobbering
		// BENCH_sim.json with allocator numbers is worse than an error.
		fatal(fmt.Errorf("-out is required (e.g. -out BENCH_sim.json)"))
	}

	doc := Document{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseLine(line); ok {
				e.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	// The ceiling judges only what this run measured — merged-in history has
	// already passed (or predates) its own gate.
	if *maxAllocs >= 0 {
		for _, e := range doc.Benchmarks {
			if e.AllocsPerOp != nil && *e.AllocsPerOp > *maxAllocs {
				fatal(fmt.Errorf("%s allocates %.0f/op, over the -max-allocs ceiling %.0f",
					e.Name, *e.AllocsPerOp, *maxAllocs))
			}
		}
	}
	if *merge {
		doc.Benchmarks = mergeEntries(*out, doc.Benchmarks)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchfmt: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseLine parses one `BenchmarkName-8  N  V unit  V unit ...` line. Lines
// that merely start a sub-benchmark group (no measurements yet) report !ok.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS decoration, keeping sub-bench names
	// (which may themselves contain dashes) intact.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
	}
	return e, true
}

// mergeEntries folds fresh results into the document already at path: a
// fresh entry replaces the existing entry of the same name in place (so two
// bench suites feeding one trajectory file don't clobber each other), other
// existing entries keep their position, and entries new to the file append.
// A missing file is an ordinary first run.
func mergeEntries(path string, fresh []Entry) []Entry {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fresh
		}
		fatal(err)
	}
	var prev Document
	if err := json.Unmarshal(data, &prev); err != nil {
		fatal(fmt.Errorf("merging into %s: %w", path, err))
	}
	replace := make(map[string]int, len(fresh))
	for i, e := range fresh {
		replace[e.Name] = i
	}
	out := make([]Entry, 0, len(prev.Benchmarks)+len(fresh))
	taken := make(map[string]bool, len(fresh))
	for _, e := range prev.Benchmarks {
		if i, ok := replace[e.Name]; ok && !taken[e.Name] {
			out = append(out, fresh[i])
			taken[e.Name] = true
		} else if !ok {
			out = append(out, e)
		}
	}
	for _, e := range fresh {
		if !taken[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfmt:", err)
	os.Exit(1)
}
