// Command allocbench is the load generator for the allocator service: it
// dials an allocd (or spins up an in-process server when -addr is empty),
// registers a fleet of tenants with several connections each, and streams
// the synthetic scheduler loop — allocate, escalate through retries until
// the task's peak fits, observe — as fast as the service answers, printing
// sustained allocations/sec and the per-tenant counters at the end.
//
//	allocbench -tenants 8 -conns 2 -tasks 5000                # in-process
//	allocbench -addr 127.0.0.1:9200 -tenants 8 -tasks 5000    # against allocd
//	allocbench -tenants 1 -conns 1 -pipeline 64 -tasks 100000 # deep pipeline
//	allocbench -tenants 1 -conns 1 -batch 32 -tasks 100000    # batched allocates
//
// -pipeline N drives each connection with N concurrent task streams, so up
// to N calls are in flight on one socket and the client's flush coalescing
// collapses them into few syscalls. -batch N requests predictions in
// AllocateBatch chunks of N, the cheapest way to saturate the wire from a
// single goroutine.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
	"dynalloc/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "", "allocd address (empty = run an in-process server)")
		tenants    = flag.Int("tenants", 8, "concurrent tenants")
		conns      = flag.Int("conns", 2, "connections per tenant")
		tasks      = flag.Int("tasks", 5000, "tasks per connection")
		algName    = flag.String("algorithm", string(allocator.Exhaustive), "allocation algorithm for new tenants")
		seed       = flag.Uint64("seed", 42, "base random seed")
		maxRecords = flag.Int("max-records", 4096, "in-process server record ceiling (ignored with -addr)")
		pipeline   = flag.Int("pipeline", 1, "concurrent task streams per connection (pipeline depth)")
		batch      = flag.Int("batch", 1, "request allocations in AllocateBatch chunks of this size")
	)
	flag.Parse()
	if *pipeline < 1 {
		*pipeline = 1
	}
	if *batch < 1 {
		*batch = 1
	}

	if _, err := allocator.ParseName(*algName); err != nil {
		fatal(err)
	}

	target := *addr
	if target == "" {
		s := serve.NewServer(serve.WithMaxRecords(*maxRecords))
		bound, err := s.Listen("127.0.0.1:0")
		fatalIf(err)
		defer s.Close()
		target = bound
		fmt.Printf("allocbench: in-process server on %s\n", bound)
	}

	var (
		wg         sync.WaitGroup
		allocs     atomic.Int64 // allocate round-trips served
		retries    atomic.Int64
		firstErr   atomic.Value
		totalConns = *tenants * *conns
	)
	start := time.Now()
	for ti := 0; ti < *tenants; ti++ {
		tenant := fmt.Sprintf("bench-%02d", ti)
		for ci := 0; ci < *conns; ci++ {
			wg.Add(1)
			go func(tenant string, ti, ci int) {
				defer wg.Done()
				window := 2 * *pipeline * *batch
				if window < 8 {
					window = 8
				}
				c, err := serve.Dial(target, tenant, *algName, *seed+uint64(ti),
					serve.WithPipelineWindow(window))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				defer c.Close()
				// -pipeline splits this connection's task budget across
				// concurrent streams; every stream's calls interleave on the
				// one socket and flush-coalesce into shared syscalls.
				var pwg sync.WaitGroup
				per := (*tasks + *pipeline - 1) / *pipeline
				for p := 0; p < *pipeline; p++ {
					lo, hi := p*per, (p+1)*per
					if hi > *tasks {
						hi = *tasks
					}
					if lo >= hi {
						break
					}
					pwg.Add(1)
					go func(p, lo, hi int) {
						defer pwg.Done()
						drive := rand.New(rand.NewPCG(*seed+uint64(ti), uint64(ci*1000+p)))
						if err := runStream(c, drive, ci, lo, hi, *batch, &allocs, &retries); err != nil {
							firstErr.CompareAndSwap(nil, err)
						}
					}(p, lo, hi)
				}
				pwg.Wait()
				if _, err := c.Stats(); err != nil { // barrier: all observes applied
					firstErr.CompareAndSwap(nil, err)
				}
			}(tenant, ti, ci)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		fatal(err)
	}

	n := allocs.Load()
	fmt.Printf("allocbench: %d allocations (+%d retries) across %d tenants x %d conns in %s\n",
		n, retries.Load(), *tenants, *conns, elapsed.Round(time.Millisecond))
	fmt.Printf("allocbench: %.0f allocs/sec sustained over %d connections\n",
		float64(n)/elapsed.Seconds(), totalConns)

	// Final per-tenant counters, fetched over a fresh connection per tenant.
	rows := make([]string, 0, *tenants)
	for ti := 0; ti < *tenants; ti++ {
		tenant := fmt.Sprintf("bench-%02d", ti)
		c, err := serve.Dial(target, tenant, *algName, 0)
		if err != nil {
			continue
		}
		if st, err := c.Stats(); err == nil {
			rows = append(rows, fmt.Sprintf("  %s: allocates=%d retries=%d observes=%d decays=%d records=%d",
				st.Tenant, st.Allocates, st.Retries, st.Observes, st.Decays, st.Records))
		}
		c.Close()
	}
	if len(rows) > 0 {
		fmt.Println("allocbench: tenant counters:")
		fmt.Println(strings.Join(rows, "\n"))
	}
}

// runStream drives the synthetic scheduler loop — allocate (singly or in
// AllocateBatch chunks), escalate through retries until the task's peak
// fits, observe — over tasks [lo, hi) of connection ci.
func runStream(c *serve.Client, drive *rand.Rand, ci, lo, hi, batch int, allocs, retries *atomic.Int64) error {
	tasks := hi - lo
	ids := make([]int, 0, batch)
	peaks := make([]resources.Vector, 0, batch)
	vecs := make([]resources.Vector, 0, batch)
	for done := 0; done < tasks; done += batch {
		n := batch
		if done+n > tasks {
			n = tasks - done
		}
		// Batches are per category (AllocateBatch takes one); alternate
		// chunk by chunk so both categories keep learning.
		cat := [2]string{"preproc", "fit"}[(lo+done)%2]
		ids, peaks = ids[:0], peaks[:0]
		for i := 0; i < n; i++ {
			ids = append(ids, ci*1_000_000+lo+done+i)
			peak := resources.New(
				1+3*drive.Float64(),
				200+3000*drive.Float64(),
				100+800*drive.Float64(),
				10+50*drive.Float64(),
			)
			if drive.Float64() < 0.3 {
				peak = peak.Scale(4)
			}
			peaks = append(peaks, peak)
		}
		var err error
		if batch > 1 {
			vecs, err = c.AllocateBatch(cat, ids, vecs)
			if err != nil {
				return err
			}
		} else {
			vecs = vecs[:0]
			v, err := c.Allocate(cat, ids[0])
			if err != nil {
				return err
			}
			vecs = append(vecs, v)
		}
		allocs.Add(int64(n))
		for i := 0; i < n; i++ {
			alloc, peak := vecs[i], peaks[i]
			for hop := 0; hop < 64; hop++ {
				var exceeded []resources.Kind
				for _, k := range resources.AllocatedKinds() {
					if peak.Get(k) > alloc.Get(k) {
						exceeded = append(exceeded, k)
					}
				}
				if len(exceeded) == 0 {
					break
				}
				var err error
				alloc, err = c.Retry(cat, ids[i], alloc, exceeded)
				if err != nil {
					return err
				}
				retries.Add(1)
			}
			if err := c.Observe(cat, ids[i], peak, 10+50*drive.Float64()); err != nil {
				return err
			}
		}
	}
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "allocbench:", err)
	os.Exit(1)
}
