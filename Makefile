GO ?= go

# The dispatch-heavy simulator scenarios, the event-engine micro-benchmarks
# under them, and the harness grid benchmark; all feed the BENCH_sim.json
# trajectory.
BENCH_PKGS = ./internal/sim ./internal/devent ./internal/harness
BENCH_PATTERN = 'BenchmarkSim|BenchmarkDevent|BenchmarkRunGrid'

# The bucketing-core and allocator hot-path scenarios, plus the end-to-end
# paper-pool simulation they dominate; these feed BENCH_alloc.json.
BENCH_ALLOC_PKGS = ./internal/core ./internal/allocator ./internal/sim
BENCH_ALLOC_PATTERN = 'BenchmarkCore|BenchmarkAlloc|BenchmarkSimPaperPool1k'

# The streaming macro-scenarios: million-task Source-driven runs and the
# capacity-index placement probes. Merged into BENCH_sim.json rather than
# rewriting it, since the full Stream1M run takes about a minute.
BENCH_STREAM_PKGS = ./internal/sim
BENCH_STREAM_PATTERN = 'BenchmarkStream|BenchmarkPlacementIndex'

# The allocator-service throughput scenarios (sustained allocs/sec across
# concurrent tenants over real TCP connections); these feed BENCH_serve.json.
BENCH_SERVE_PKGS = ./internal/serve
BENCH_SERVE_PATTERN = 'BenchmarkServe'
# Ceiling for the service smoke run: the hand-rolled frame codec and the
# pooled call slots make a steady-state round-trip allocation-free (0
# allocs/op measured; the budget covers goroutine spin-up amortized across
# the 100-iteration smoke). Anything past this means the frame hot path
# started allocating again.
SERVE_MAX_ALLOCS = 8
# Ceiling for the streaming smoke run: BenchmarkStream100k measures ~140k
# allocs for a 100k-task run (setup plus ~0.4 allocs/task of retry and map
# traffic); anything past this means the engine regressed to per-task
# allocation.
STREAM_MAX_ALLOCS = 200000

# The live work-queue engine scenarios: full manager->worker->manager round
# trips over in-memory loopback connections at 1/8/64 workers plus the
# worker-churn overlay; these feed BENCH_wq.json (which also keeps the
# pre-codec encoding/json baseline entries for the before/after pair).
BENCH_WQ_PKGS = ./internal/wq
BENCH_WQ_PATTERN = 'BenchmarkWQ'
# Ceiling for the live-engine smoke run: a steady-state round trip costs 4
# allocs/op (outcome channel, task state, and reader/executor handoff); the
# headroom covers driver/executor goroutine spin-up amortized across the
# smoke iterations. Past this the wire hot path started allocating again.
WQ_MAX_ALLOCS = 8

.PHONY: all build test race test-live vet bench bench-smoke bench-alloc bench-alloc-smoke bench-stream bench-stream-smoke serve-bench serve-bench-smoke wq-bench wq-bench-smoke whatif-smoke short ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./... -count=1

# The parallel experiment harness is the concurrency-heavy package; run it
# (and the public facade that drives it) under the race detector, together
# with the pooled event engine, the simulator that recycles its
# slots/handles (harness workers run simulations concurrently), and the
# runlog package whose Writer is shared across engine and tracer goroutines.
race:
	$(GO) test -race ./internal/harness/... ./internal/devent/... ./internal/sim/... ./internal/serve/... ./internal/runlog/... . -count=1

# The live work-queue engine integration tests (heartbeat loss, bounded
# retry, drain-under-load, ID-collision regressions) under the race detector.
test-live:
	$(GO) test -race ./internal/wq/... -count=1

vet:
	$(GO) vet ./...

short:
	$(GO) test ./... -short -count=1

# Full benchmark run: measures the simulator dispatch hot path and the
# experiment grid, then records the trajectory point in BENCH_sim.json
# (ns/op, B/op, allocs/op per scenario).
bench:
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -out BENCH_sim.json

# One-iteration smoke of the same suite, wired into ci so the benchmarks
# (and the benchfmt pipeline) cannot bit-rot unnoticed.
bench-smoke:
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem -benchtime 1x | $(GO) run ./cmd/benchfmt -out BENCH_sim.json

# Full benchmark run of the allocation path: bucketing-core partitions
# (cold and incremental), the allocator Allocate/Retry/Observe cycle per
# algorithm, and the paper-pool simulation; records BENCH_alloc.json.
bench-alloc:
	$(GO) test $(BENCH_ALLOC_PKGS) -run '^$$' -bench $(BENCH_ALLOC_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -out BENCH_alloc.json

# One-iteration smoke of the allocation-path suite, wired into ci.
bench-alloc-smoke:
	$(GO) test $(BENCH_ALLOC_PKGS) -run '^$$' -bench $(BENCH_ALLOC_PATTERN) -benchmem -benchtime 1x | $(GO) run ./cmd/benchfmt -out BENCH_alloc.json

# Full streaming run: the 1M-task and 100k-task Source-driven scenarios plus
# the 100k-worker placement-index probes, merged into BENCH_sim.json.
bench-stream:
	$(GO) test $(BENCH_STREAM_PKGS) -run '^$$' -bench $(BENCH_STREAM_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -merge -out BENCH_sim.json

# ci smoke of the streaming path: the 100k-task scenario and the index
# probes, with the allocs/op ceiling enforced so the window-bounded memory
# contract cannot regress silently. (The capacity index's query correctness
# runs under -race via the sim package in the race target.)
bench-stream-smoke:
	$(GO) test $(BENCH_STREAM_PKGS) -run '^$$' -bench 'BenchmarkStream100k|BenchmarkPlacementIndex' -benchmem -benchtime 1x | $(GO) run ./cmd/benchfmt -merge -max-allocs $(STREAM_MAX_ALLOCS) -out BENCH_sim.json

# Full service benchmark: sustained allocation throughput against a live
# server at 1, 8, and 16 concurrent tenants; records BENCH_serve.json.
serve-bench:
	$(GO) test $(BENCH_SERVE_PKGS) -run '^$$' -bench $(BENCH_SERVE_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -out BENCH_serve.json

# ci smoke of the service path, with the per-round-trip allocs/op ceiling
# enforced so the frame hot path cannot silently start allocating. 1000
# iterations rather than 1 so the per-connection goroutine spin-up (up to 64
# driver goroutines started after the timer reset) amortizes out of
# allocs/op — steady state is 0 allocs/op, so the tight ceiling needs the
# setup noise below ~1/op (still tens of ms per scenario).
serve-bench-smoke:
	$(GO) test $(BENCH_SERVE_PKGS) -run '^$$' -bench $(BENCH_SERVE_PATTERN) -benchmem -benchtime 1000x | $(GO) run ./cmd/benchfmt -max-allocs $(SERVE_MAX_ALLOCS) -out BENCH_serve.json

# Full live-engine benchmark: sustained dispatch/result round trips through
# the wq manager and workers over loopback transport, merged into
# BENCH_wq.json so the recorded encoding/json baseline entries survive as
# the comparison point.
wq-bench:
	$(GO) test $(BENCH_WQ_PKGS) -run '^$$' -bench $(BENCH_WQ_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -merge -out BENCH_wq.json

# ci smoke of the live engine, with the per-round-trip allocs/op ceiling
# enforced so the frame hot path cannot silently start allocating. 2000
# iterations amortize the driver/executor goroutine spin-up below ~1/op.
wq-bench-smoke:
	$(GO) test $(BENCH_WQ_PKGS) -run '^$$' -bench $(BENCH_WQ_PATTERN) -benchmem -benchtime 2000x | $(GO) run ./cmd/benchfmt -merge -max-allocs $(WQ_MAX_ALLOCS) -out BENCH_wq.json

# End-to-end smoke of the record -> replay -> what-if loop: record a small
# DES run on a churny pool, verify the fidelity replay reproduces the
# recorded footer bit-identically, and rank two counterfactual allocators
# against it. Exercises the same path as `whatif <any saved run log>`.
whatif-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/vinesim -workflow normal -tasks 120 -algorithm greedy-bucketing \
		-des -pool churn:8:600:120:2000 -log "$$tmp/rec.jsonl" >/dev/null 2>&1 && \
	$(GO) run ./cmd/whatif -fidelity -algorithms greedy-bucketing,max-seen -j 2 "$$tmp/rec.jsonl"

ci: vet build test race test-live whatif-smoke bench-smoke bench-alloc-smoke bench-stream-smoke serve-bench-smoke wq-bench-smoke

clean:
	rm -rf figures-out
