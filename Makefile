GO ?= go

.PHONY: all build test race test-live vet bench short ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./... -count=1

# The parallel experiment harness is the concurrency-heavy package; run it
# (and the public facade that drives it) under the race detector.
race:
	$(GO) test -race ./internal/harness/... . -count=1

# The live work-queue engine integration tests (heartbeat loss, bounded
# retry, drain-under-load, ID-collision regressions) under the race detector.
test-live:
	$(GO) test -race ./internal/wq/... -count=1

vet:
	$(GO) vet ./...

short:
	$(GO) test ./... -short -count=1

bench:
	$(GO) test ./internal/harness/ -run '^$$' -bench BenchmarkRunGrid -benchmem

ci: vet build test race test-live

clean:
	rm -rf figures-out
