GO ?= go

# The dispatch-heavy simulator scenarios plus the harness grid benchmark;
# both feed the BENCH_sim.json trajectory.
BENCH_PKGS = ./internal/sim ./internal/harness
BENCH_PATTERN = 'BenchmarkSim|BenchmarkRunGrid'

.PHONY: all build test race test-live vet bench bench-smoke short ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./... -count=1

# The parallel experiment harness is the concurrency-heavy package; run it
# (and the public facade that drives it) under the race detector.
race:
	$(GO) test -race ./internal/harness/... . -count=1

# The live work-queue engine integration tests (heartbeat loss, bounded
# retry, drain-under-load, ID-collision regressions) under the race detector.
test-live:
	$(GO) test -race ./internal/wq/... -count=1

vet:
	$(GO) vet ./...

short:
	$(GO) test ./... -short -count=1

# Full benchmark run: measures the simulator dispatch hot path and the
# experiment grid, then records the trajectory point in BENCH_sim.json
# (ns/op, B/op, allocs/op per scenario).
bench:
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -out BENCH_sim.json

# One-iteration smoke of the same suite, wired into ci so the benchmarks
# (and the benchfmt pipeline) cannot bit-rot unnoticed.
bench-smoke:
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem -benchtime 1x | $(GO) run ./cmd/benchfmt -out BENCH_sim.json

ci: vet build test race test-live bench-smoke

clean:
	rm -rf figures-out
