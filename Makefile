GO ?= go

# The dispatch-heavy simulator scenarios, the event-engine micro-benchmarks
# under them, and the harness grid benchmark; all feed the BENCH_sim.json
# trajectory.
BENCH_PKGS = ./internal/sim ./internal/devent ./internal/harness
BENCH_PATTERN = 'BenchmarkSim|BenchmarkDevent|BenchmarkRunGrid'

# The bucketing-core and allocator hot-path scenarios, plus the end-to-end
# paper-pool simulation they dominate; these feed BENCH_alloc.json.
BENCH_ALLOC_PKGS = ./internal/core ./internal/allocator ./internal/sim
BENCH_ALLOC_PATTERN = 'BenchmarkCore|BenchmarkAlloc|BenchmarkSimPaperPool1k'

.PHONY: all build test race test-live vet bench bench-smoke bench-alloc bench-alloc-smoke short ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./... -count=1

# The parallel experiment harness is the concurrency-heavy package; run it
# (and the public facade that drives it) under the race detector, together
# with the pooled event engine and the simulator that recycles its
# slots/handles (harness workers run simulations concurrently).
race:
	$(GO) test -race ./internal/harness/... ./internal/devent/... ./internal/sim/... . -count=1

# The live work-queue engine integration tests (heartbeat loss, bounded
# retry, drain-under-load, ID-collision regressions) under the race detector.
test-live:
	$(GO) test -race ./internal/wq/... -count=1

vet:
	$(GO) vet ./...

short:
	$(GO) test ./... -short -count=1

# Full benchmark run: measures the simulator dispatch hot path and the
# experiment grid, then records the trajectory point in BENCH_sim.json
# (ns/op, B/op, allocs/op per scenario).
bench:
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -out BENCH_sim.json

# One-iteration smoke of the same suite, wired into ci so the benchmarks
# (and the benchfmt pipeline) cannot bit-rot unnoticed.
bench-smoke:
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem -benchtime 1x | $(GO) run ./cmd/benchfmt -out BENCH_sim.json

# Full benchmark run of the allocation path: bucketing-core partitions
# (cold and incremental), the allocator Allocate/Retry/Observe cycle per
# algorithm, and the paper-pool simulation; records BENCH_alloc.json.
bench-alloc:
	$(GO) test $(BENCH_ALLOC_PKGS) -run '^$$' -bench $(BENCH_ALLOC_PATTERN) -benchmem | $(GO) run ./cmd/benchfmt -out BENCH_alloc.json

# One-iteration smoke of the allocation-path suite, wired into ci.
bench-alloc-smoke:
	$(GO) test $(BENCH_ALLOC_PKGS) -run '^$$' -bench $(BENCH_ALLOC_PATTERN) -benchmem -benchtime 1x | $(GO) run ./cmd/benchfmt -out BENCH_alloc.json

ci: vet build test race test-live bench-smoke bench-alloc-smoke

clean:
	rm -rf figures-out
