package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynalloc/internal/record"
)

func TestEvenEndsBasic(t *testing.T) {
	l := uniformSigList(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	// nb = 2: break value at 50 -> closest record strictly below 50 is 40
	// (index 3); ends = [3, 9].
	ends := evenEnds(l.View(), 2, nil)
	if len(ends) != 2 || ends[0] != 3 || ends[1] != 9 {
		t.Errorf("evenEnds(2) = %v, want [3 9]", ends)
	}
	// nb = 4: break values 25, 50, 75 -> indices of 20, 40, 70 = 1, 3, 6.
	ends = evenEnds(l.View(), 4, nil)
	want := []int{1, 3, 6, 9}
	if len(ends) != len(want) {
		t.Fatalf("evenEnds(4) = %v, want %v", ends, want)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("evenEnds(4) = %v, want %v", ends, want)
		}
	}
}

func TestEvenEndsDropsEmptyAndDuplicateMappings(t *testing.T) {
	// All mass near the max: low break values map below the minimum record
	// and must be dropped; close break values map to the same record and
	// must be deduplicated.
	l := uniformSigList(90, 91, 92, 93, 100)
	ends := evenEnds(l.View(), 10, nil) // break values 10,20,...,90
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("evenEnds produced non-ascending ends %v", ends)
		}
	}
	if ends[len(ends)-1] != 4 {
		t.Errorf("last end = %d, want 4", ends[len(ends)-1])
	}
}

func TestEvenEndsNeverCollidesWithFinalBucket(t *testing.T) {
	l := uniformSigList(1, 2, 3)
	for nb := 2; nb <= 10; nb++ {
		ends := evenEnds(l.View(), nb, nil)
		for i := 0; i < len(ends)-1; i++ {
			if ends[i] >= 2 {
				t.Fatalf("nb=%d: interior end %d collides with final bucket", nb, ends[i])
			}
		}
	}
}

func TestComputeExhaustCostSingleBucket(t *testing.T) {
	l := uniformSigList(10, 20, 30)
	// One bucket: rep = 30, v = 20 -> expected waste = 10.
	if got := ExpectedWaste(l, []int{2}); math.Abs(got-10) > 1e-12 {
		t.Errorf("single bucket cost = %v, want 10", got)
	}
}

func TestComputeExhaustCostTwoBucketsHand(t *testing.T) {
	// Records 10, 30 with uniform significance; buckets {10}, {30}.
	// p1 = p2 = 0.5; rep = [10, 30]; v = [10, 30].
	// T[0][0]=0, T[0][1]=20, T[1][1]=0, T[1][0]=10 + 1.0*T[1][1] = 10.
	// W = .25*(0 + 20 + 10 + 0) = 7.5 — equal to the greedy split cost.
	l := uniformSigList(10, 30)
	if got := ExpectedWaste(l, []int{0, 1}); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("two-bucket cost = %v, want 7.5", got)
	}
}

// TestComputeExhaustCostFourBucketRetryChainHand pins the retry-chain
// recurrence on a fully hand-computed 4-bucket case. Every quantity is a
// dyadic rational, so the expected cost is exact in binary floating point
// under any summation order — the O(nB²) suffix-accumulator evaluation must
// reproduce it to the bit, not within an epsilon.
//
// Records (value, sig): (4,4), (8,2), (16,1), (32,1); one bucket per record.
//
//	rep = v = [4, 8, 16, 32]
//	p   = [1/2, 1/4, 1/8, 1/8],  tail = [1, 1/2, 1/4, 1/8, 0]
//
// Failure rows, filled from the last column (T[i][j] = rep_j + Σ_{k>j}
// p_k/tail_{j+1}·T[i][k]):
//
//	row 0: T[0][·] = [0, 4, 12, 28]              (all-success row)
//	row 1: T[1][0] = 4 + (1/2)·0 + (1/4)·8 + (1/4)·24        = 12
//	row 2: T[2][1] = 8 + (1/2)·0 + (1/2)·16                  = 16
//	       T[2][0] = 4 + (1/2)·16 + (1/4)·0 + (1/4)·16       = 16
//	row 3: T[3][2] = 16 + 1·0                                = 16
//	       T[3][1] = 8 + (1/2)·16 + (1/2)·0                  = 16
//	       T[3][0] = 4 + (1/2)·16 + (1/4)·16 + (1/4)·0       = 16
//
// W = Σ p_i·p_j·T[i][j] = (1/2)·6 + (1/4)·10 + (1/8)·14 + (1/8)·14 = 9.
func TestComputeExhaustCostFourBucketRetryChainHand(t *testing.T) {
	l := &record.List{}
	for _, rec := range []record.Record{
		{TaskID: 1, Value: 4, Sig: 4},
		{TaskID: 2, Value: 8, Sig: 2},
		{TaskID: 3, Value: 16, Sig: 1},
		{TaskID: 4, Value: 32, Sig: 1},
	} {
		l.Add(rec)
	}
	if got := ExpectedWaste(l, []int{0, 1, 2, 3}); got != 9 {
		t.Errorf("four-bucket retry-chain cost = %v, want exactly 9", got)
	}
}

// simulateExpectedWaste Monte-Carlo-simulates the allocation process the
// T-table models: the task's true bucket i is drawn by probability, the
// allocator draws j the same way, and whenever j < i the allocation fails,
// wasting rep_j, and the allocator redraws among buckets above j.
func simulateExpectedWaste(l *record.List, ends []int, trials int, r *rand.Rand) float64 {
	buckets := bucketsFromEnds(l, ends)
	v := make([]float64, len(buckets))
	lo := 0
	for j, e := range ends {
		v[j] = l.WeightedMean(lo, e)
		lo = e + 1
	}
	total := 0.0
	for t := 0; t < trials; t++ {
		i := sampleBucket(buckets, 0, r)
		j := sampleBucket(buckets, 0, r)
		waste := 0.0
		for j < i {
			waste += buckets[j].Rep
			j = sampleBucket(buckets, j+1, r)
		}
		waste += buckets[j].Rep - v[i]
		total += waste
	}
	return total / float64(trials)
}

func TestExhaustCostMatchesMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	l := &record.List{}
	for i := 0; i < 60; i++ {
		l.Add(record.Record{TaskID: i + 1, Value: r.Float64() * 100, Sig: float64(i + 1)})
	}
	for _, ends := range [][]int{
		{59},
		{19, 59},
		{9, 29, 59},
		{4, 14, 34, 59},
	} {
		analytic := ExpectedWaste(l, ends)
		mc := simulateExpectedWaste(l, ends, 300000, r)
		if math.Abs(analytic-mc) > 0.02*(1+math.Abs(analytic)) {
			t.Errorf("ends %v: analytic %v vs monte-carlo %v", ends, analytic, mc)
		}
	}
}

// allConfigurations enumerates every bucket-end configuration of a list of
// length n (the true exhaustive search Algorithm 2 describes before the
// combinations optimization).
func allConfigurations(n int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if start == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for end := start; end < n; end++ {
			rec(end+1, append(cur, end))
		}
	}
	rec(0, nil)
	return out
}

func TestExhaustiveBeatsOrMatchesSingleBucket(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		r := rand.New(rand.NewPCG(seed, 13))
		l := &record.List{}
		for i := 0; i < n; i++ {
			l.Add(record.Record{TaskID: i + 1, Value: r.Float64() * 100, Sig: float64(i + 1)})
		}
		ends := ExhaustiveBucketing{}.Partition(l, nil)
		chosen := ExpectedWaste(l, ends)
		single := ExpectedWaste(l, []int{n - 1})
		return chosen <= single+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveNearTrueOptimumOnSeparatedClusters(t *testing.T) {
	// On well-separated clusters the even-spacing heuristic should find the
	// same partition as the true exhaustive enumeration.
	values := []float64{10, 11, 12, 500, 510, 990, 1000}
	l := uniformSigList(values...)
	best := math.Inf(1)
	for _, cfg := range allConfigurations(len(values)) {
		if c := ExpectedWaste(l, cfg); c < best {
			best = c
		}
	}
	got := ExpectedWaste(l, ExhaustiveBucketing{}.Partition(l, nil))
	if got > best*1.25+1e-9 {
		t.Errorf("even-spacing cost %v too far above true optimum %v", got, best)
	}
}

func TestExhaustiveRespectsMaxBuckets(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 11))
	l := &record.List{}
	for i := 0; i < 500; i++ {
		l.Add(record.Record{TaskID: i + 1, Value: r.Float64() * 1000, Sig: float64(i + 1)})
	}
	for _, maxB := range []int{1, 2, 3, 5, 10} {
		ends := ExhaustiveBucketing{MaxBuckets: maxB}.Partition(l, nil)
		if len(ends) > maxB {
			t.Errorf("MaxBuckets=%d produced %d buckets", maxB, len(ends))
		}
	}
	// Default cap is 10.
	ends := ExhaustiveBucketing{}.Partition(l, nil)
	if len(ends) > DefaultMaxBuckets {
		t.Errorf("default cap exceeded: %d buckets", len(ends))
	}
}

func TestExhaustiveEmptyAndSingleton(t *testing.T) {
	if got := (ExhaustiveBucketing{}).Partition(&record.List{}, nil); got != nil {
		t.Errorf("empty partition = %v", got)
	}
	l := uniformSigList(5)
	ends := ExhaustiveBucketing{}.Partition(l, nil)
	if len(ends) != 1 || ends[0] != 0 {
		t.Errorf("singleton partition = %v", ends)
	}
}

func TestExhaustiveName(t *testing.T) {
	if (ExhaustiveBucketing{}).Name() != "exhaustive" {
		t.Error("unexpected algorithm name")
	}
}

func TestExpectedWasteExported(t *testing.T) {
	l := uniformSigList(10, 30)
	if got := ExpectedWaste(l, []int{0, 1}); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("ExpectedWaste = %v, want 7.5", got)
	}
}

func TestBucketCountStaysSmall(t *testing.T) {
	// Section V-A: "the number of buckets rarely exceeds 10 at any given
	// time". Exhaustive is capped by construction; greedy should also stay
	// small on the distribution families of the evaluation.
	r := rand.New(rand.NewPCG(99, 99))
	type gen func() float64
	families := map[string]gen{
		"normal":      func() float64 { return math.Max(8+2*r.NormFloat64(), 0.1) },
		"uniform":     func() float64 { return 2 + 10*r.Float64() },
		"exponential": func() float64 { return 2 + 3*r.ExpFloat64() },
		"bimodal": func() float64 {
			if r.Float64() < 0.5 {
				return math.Max(3+0.4*r.NormFloat64(), 0.1)
			}
			return math.Max(9+0.7*r.NormFloat64(), 0.1)
		},
	}
	for name, g := range families {
		l := &record.List{}
		for i := 0; i < 2000; i++ {
			l.Add(record.Record{TaskID: i + 1, Value: g(), Sig: float64(i + 1)})
		}
		eb := ExhaustiveBucketing{}.Partition(l, nil)
		if len(eb) > 10 {
			t.Errorf("%s: exhaustive produced %d buckets", name, len(eb))
		}
		gb := GreedyBucketing{}.Partition(l, nil)
		if len(gb) > 64 {
			t.Errorf("%s: greedy produced an implausible %d buckets", name, len(gb))
		}
	}
}
