package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynalloc/internal/record"
)

// naiveGreedyCost re-derives the four-case expected-waste formula of
// Section IV-B directly from the sorted records, without prefix sums.
func naiveGreedyCost(l *record.List, lo, i, hi int) float64 {
	s := l.Sorted()
	if i == hi {
		var sig, valSig float64
		rep := s[hi].Value
		for k := lo; k <= hi; k++ {
			sig += s[k].Sig
			valSig += s[k].Value * s[k].Sig
		}
		return rep - valSig/sig
	}
	var s1, vs1, s2, vs2 float64
	for k := lo; k <= i; k++ {
		s1 += s[k].Sig
		vs1 += s[k].Value * s[k].Sig
	}
	for k := i + 1; k <= hi; k++ {
		s2 += s[k].Sig
		vs2 += s[k].Value * s[k].Sig
	}
	p1 := s1 / (s1 + s2)
	p2 := s2 / (s1 + s2)
	vLo := vs1 / s1
	vHi := vs2 / s2
	rep1 := s[i].Value
	rep2 := s[hi].Value
	return p1*p1*(rep1-vLo) + p1*p2*(rep2-vLo) + p2*p1*(rep1+rep2-vHi) + p2*p2*(rep2-vHi)
}

func TestGreedyCostMatchesNaive(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		r := rand.New(rand.NewPCG(seed, 5))
		l := &record.List{}
		for i := 0; i < n; i++ {
			l.Add(record.Record{TaskID: i + 1, Value: r.Float64() * 50, Sig: float64(i + 1)})
		}
		for i := 0; i < n; i++ {
			got := greedyCost(l.View(), 0, i, n-1)
			want := naiveGreedyCost(l, 0, i, n-1)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyCostHandComputed(t *testing.T) {
	// Two records, uniform significance: values 10 and 30.
	l := uniformSigList(10, 30)
	// Split after index 0: p1 = p2 = 0.5, rep1=10, rep2=30, vLo=10, vHi=30.
	// cost = .25*(10-10) + .25*(30-10) + .25*(10+30-30) + .25*(30-30)
	//      = 0 + 5 + 2.5 + 0 = 7.5
	if got := greedyCost(l.View(), 0, 0, 1); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("split cost = %v, want 7.5", got)
	}
	// Single bucket: rep=30, mean=20 -> cost 10.
	if got := greedyCost(l.View(), 0, 1, 1); math.Abs(got-10) > 1e-12 {
		t.Errorf("single-bucket cost = %v, want 10", got)
	}
}

func TestGreedySplitsWellSeparatedClusters(t *testing.T) {
	// Two tight clusters far apart: greedy must break between them.
	values := []float64{100, 101, 102, 103, 5000, 5001, 5002, 5003}
	l := uniformSigList(values...)
	ends := GreedyBucketing{}.Partition(l, nil)
	found := false
	for _, e := range ends {
		if e == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("greedy ends = %v, want a break after index 3", ends)
	}
}

func TestGreedySingleBucketOnConstantValues(t *testing.T) {
	l := uniformSigList(306, 306, 306, 306, 306)
	ends := GreedyBucketing{}.Partition(l, nil)
	if len(ends) != 1 || ends[0] != 4 {
		t.Errorf("constant values should form one bucket, got ends %v", ends)
	}
}

func TestGreedyRecursionFindsNestedClusters(t *testing.T) {
	// Three clusters; recursion should find both internal breaks (Fig. 3c).
	var values []float64
	for i := 0; i < 10; i++ {
		values = append(values, 100+float64(i))
	}
	for i := 0; i < 10; i++ {
		values = append(values, 2000+float64(i))
	}
	for i := 0; i < 10; i++ {
		values = append(values, 9000+float64(i))
	}
	l := uniformSigList(values...)
	ends := GreedyBucketing{}.Partition(l, nil)
	has := func(e int) bool {
		for _, x := range ends {
			if x == e {
				return true
			}
		}
		return false
	}
	if !has(9) || !has(19) {
		t.Errorf("greedy ends = %v, want breaks after 9 and 19", ends)
	}
}

func TestGreedyEmptyAndSingleton(t *testing.T) {
	if got := (GreedyBucketing{}).Partition(&record.List{}, nil); got != nil {
		t.Errorf("empty partition = %v, want nil", got)
	}
	l := uniformSigList(42)
	ends := GreedyBucketing{}.Partition(l, nil)
	if len(ends) != 1 || ends[0] != 0 {
		t.Errorf("singleton partition = %v", ends)
	}
}

func TestGreedyName(t *testing.T) {
	if (GreedyBucketing{}).Name() != "greedy" {
		t.Error("unexpected algorithm name")
	}
}

// Property: greedy's chosen split at the top level is at least as good as
// any single alternative split under the same two-bucket cost model.
func TestGreedyTopLevelOptimality(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		r := rand.New(rand.NewPCG(seed, 9))
		l := &record.List{}
		for i := 0; i < n; i++ {
			l.Add(record.Record{TaskID: i + 1, Value: r.Float64() * 100, Sig: float64(i + 1)})
		}
		best := math.Inf(1)
		bestIdx := -1
		for i := 0; i < n; i++ {
			c := greedyCost(l.View(), 0, i, n-1)
			if c < best {
				best, bestIdx = c, i
			}
		}
		// Re-run the scan as greedySplit would and confirm the same argmin.
		minCost := math.Inf(1)
		breakIdx := n - 1
		for i := 0; i < n; i++ {
			cost := greedyCost(l.View(), 0, i, n-1)
			if cost < minCost {
				minCost, breakIdx = cost, i
			}
		}
		return breakIdx == bestIdx && minCost == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyHandlesLargeNormalSample(t *testing.T) {
	// The Figure 3b scenario: 2000 memory records from N(8, 2) GB.
	r := rand.New(rand.NewPCG(42, 42))
	l := &record.List{}
	for i := 0; i < 2000; i++ {
		v := 8 + 2*r.NormFloat64()
		if v < 0.1 {
			v = 0.1
		}
		l.Add(record.Record{TaskID: i + 1, Value: v, Sig: float64(i + 1)})
	}
	ends := GreedyBucketing{}.Partition(l, nil)
	if len(ends) == 0 {
		t.Fatal("no buckets")
	}
	bs := bucketsFromEnds(l, ends)
	if bs[len(bs)-1].Rep != l.MaxValue() {
		t.Error("last bucket rep must be the maximum record value")
	}
}
