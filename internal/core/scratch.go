package core

// Scratch is the reusable working memory of the partition hot path. One
// bucketing recomputation needs a handful of per-bucket slices (the
// representative, probability, mean, and probability-tail arrays of
// compute_exhaust_cost) plus two candidate-configuration buffers (the
// sweep's current candidate and the best seen so far). Allocating them per
// recomputation dominated the allocator's cost structure — one recompute per
// completion batch, per category and resource kind — so every State owns one
// Scratch and threads it through Algorithm.Partition; the steady state is
// allocation-free.
//
// A nil *Scratch is accepted everywhere and behaves like a fresh, empty one,
// so one-shot callers (tests, the worked-example tooling) need not manage
// buffers. A Scratch is not safe for concurrent use; neither are the States
// that own them.
//
// Slices returned by Partition alias the Scratch and remain valid only until
// the next Partition call that uses it.
type Scratch struct {
	rep  []float64 // representative value per bucket
	prob []float64 // normalized significance share per bucket
	mean []float64 // significance-weighted mean value per bucket
	tail []float64 // tail[j] = Σ_{m >= j} prob[m]

	cand []int // candidate configuration under evaluation
	best []int // best configuration seen; Partition's return value
}

// floats resizes the four per-bucket float buffers to hold nB buckets and
// returns them.
func (s *Scratch) floats(nB int) (rep, prob, mean, tail []float64) {
	if cap(s.tail) < nB+1 {
		c := nB + 1 + 8
		s.rep = make([]float64, 0, c)
		s.prob = make([]float64, 0, c)
		s.mean = make([]float64, 0, c)
		s.tail = make([]float64, 0, c)
	}
	return s.rep[:nB], s.prob[:nB], s.mean[:nB], s.tail[:nB+1]
}
