package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"dynalloc/internal/record"
)

func addN(s *State, values ...float64) {
	base := s.Len()
	for i, v := range values {
		s.Add(record.Record{TaskID: base + i + 1, Value: v, Sig: float64(base + i + 1), Time: 1})
	}
}

func TestStateLazyRecompute(t *testing.T) {
	s := NewState(GreedyBucketing{})
	addN(s, 1, 2, 3, 4, 5)
	if got := s.Stats().Recomputes; got != 0 {
		t.Fatalf("recomputes before first query = %d", got)
	}
	s.Buckets()
	s.Buckets()
	if got := s.Stats().Recomputes; got != 1 {
		t.Errorf("recomputes after two queries = %d, want 1 (lazy batching)", got)
	}
	// A batch of updates between predictions costs exactly one recompute.
	addN(s, 6, 7, 8)
	r := rand.New(rand.NewPCG(1, 1))
	s.Predict(r)
	s.Predict(r)
	if got := s.Stats().Recomputes; got != 2 {
		t.Errorf("recomputes after batch update = %d, want 2", got)
	}
	if got := s.Stats().Predictions; got != 2 {
		t.Errorf("predictions = %d, want 2", got)
	}
}

func TestStatePredictEmptyReturnsZero(t *testing.T) {
	s := NewState(ExhaustiveBucketing{})
	r := rand.New(rand.NewPCG(2, 2))
	if got := s.Predict(r); got != 0 {
		t.Errorf("empty Predict = %v, want 0", got)
	}
}

func TestStatePredictReturnsARep(t *testing.T) {
	s := NewState(ExhaustiveBucketing{})
	addN(s, 100, 101, 102, 5000, 5001, 5002)
	r := rand.New(rand.NewPCG(3, 3))
	reps := map[float64]bool{}
	for _, b := range s.Buckets() {
		reps[b.Rep] = true
	}
	for i := 0; i < 200; i++ {
		p := s.Predict(r)
		if !reps[p] {
			t.Fatalf("Predict returned %v, not a bucket representative %v", p, reps)
		}
	}
}

func TestStatePredictFollowsBucketProbabilities(t *testing.T) {
	// Two clusters with uniform significance: 4 low records and 4 high
	// records should split prediction mass roughly evenly once separated.
	s := NewState(GreedyBucketing{})
	for i, v := range []float64{10, 11, 12, 13, 900, 901, 902, 903} {
		s.Add(record.Record{TaskID: i + 1, Value: v, Sig: 1})
	}
	bs := s.Buckets()
	if len(bs) < 2 {
		t.Fatalf("expected >= 2 buckets, got %v", bs)
	}
	r := rand.New(rand.NewPCG(4, 4))
	low := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Predict(r) < 500 {
			low++
		}
	}
	frac := float64(low) / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("low-bucket prediction fraction = %v, want ~0.5", frac)
	}
}

func TestStateRetryEscalates(t *testing.T) {
	s := NewState(ExhaustiveBucketing{})
	addN(s, 100, 101, 102, 5000, 5001, 5002)
	r := rand.New(rand.NewPCG(5, 5))
	// After failing at the low bucket's rep, retry must land strictly above.
	lowRep := s.Buckets()[0].Rep
	for i := 0; i < 100; i++ {
		got := s.Retry(lowRep, r)
		if got <= lowRep {
			t.Fatalf("Retry(%v) = %v, not an escalation", lowRep, got)
		}
	}
}

func TestStateRetryDoublesAboveMax(t *testing.T) {
	s := NewState(GreedyBucketing{})
	addN(s, 10, 20, 30)
	r := rand.New(rand.NewPCG(6, 6))
	if got := s.Retry(30, r); got != 60 {
		t.Errorf("Retry(30) above all reps = %v, want 60 (doubling)", got)
	}
	if got := s.Retry(100, r); got != 200 {
		t.Errorf("Retry(100) = %v, want 200", got)
	}
}

func TestStateRetryZeroPrev(t *testing.T) {
	s := NewState(GreedyBucketing{})
	r := rand.New(rand.NewPCG(7, 7))
	if got := s.Retry(0, r); got != 1 {
		t.Errorf("Retry(0) with no buckets = %v, want 1", got)
	}
	if got := s.Retry(-5, r); got != 1 {
		t.Errorf("Retry(-5) = %v, want 1", got)
	}
}

func TestStateRetryTerminates(t *testing.T) {
	// Escalation from any starting point must exceed any target in finitely
	// many steps: each Retry strictly increases the allocation.
	s := NewState(ExhaustiveBucketing{})
	addN(s, 5, 6, 7, 8, 1000)
	r := rand.New(rand.NewPCG(8, 8))
	target := 1e9
	alloc := s.Predict(r)
	steps := 0
	for alloc < target {
		next := s.Retry(alloc, r)
		if next <= alloc {
			t.Fatalf("Retry did not increase: %v -> %v", alloc, next)
		}
		alloc = next
		steps++
		if steps > 64 {
			t.Fatalf("escalation took too long: %d steps, at %v", steps, alloc)
		}
	}
}

func TestStateMaxBucketsTelemetry(t *testing.T) {
	s := NewState(ExhaustiveBucketing{})
	addN(s, 1, 2, 3, 100, 200, 300, 1000, 2000, 3000)
	s.Buckets()
	st := s.Stats()
	if st.LastBuckets < 1 || st.MaxBuckets < st.LastBuckets {
		t.Errorf("telemetry inconsistent: %+v", st)
	}
	if st.RecomputeTime < 0 {
		t.Errorf("negative recompute time: %v", st.RecomputeTime)
	}
}

func TestStateAccessors(t *testing.T) {
	s := NewState(GreedyBucketing{})
	if s.Algorithm().Name() != "greedy" {
		t.Error("Algorithm accessor mismatch")
	}
	addN(s, 1, 2)
	if s.Len() != 2 || s.Records().Len() != 2 {
		t.Error("record accessors mismatch")
	}
}
