package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"dynalloc/internal/record"
)

// The bucketing-core benchmark suite: `make bench-alloc` runs these and
// records the allocs/op and ns/op trajectory in BENCH_alloc.json. Cold
// scenarios measure one full partition of a settled record list — the unit
// of work a completion batch triggers (Section V-C) — and incremental
// scenarios measure the State lazy path end to end: one record lands, the
// next prediction pays one rebuild merge, one partition, and one bucket
// materialization.

// benchRecords builds an n-record bimodal list (the Figure 3b shape) with
// the paper's task-ID significance weighting.
func benchRecords(n int, seed uint64) *record.List {
	r := rand.New(rand.NewPCG(seed, 0xBE))
	l := &record.List{}
	for i := 0; i < n; i++ {
		v := 9 + 0.7*r.NormFloat64()
		if r.Float64() < 0.5 {
			v = 3 + 0.4*r.NormFloat64()
		}
		l.Add(record.Record{TaskID: i + 1, Value: math.Max(v, 0.1), Sig: float64(i + 1), Time: 1})
	}
	return l
}

// benchPartitionCold measures repeated partitions of a settled list.
func benchPartitionCold(b *testing.B, alg Algorithm, n int) {
	b.Helper()
	l := benchRecords(n, 42)
	l.Sorted() // settle the sorted view outside the timed region
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ends := alg.Partition(l, &s); len(ends) == 0 {
			b.Fatal("empty partition")
		}
	}
}

// benchIncremental measures the allocator-visible cycle on a warm state:
// one observed record followed by one prediction (which pays the lazy
// recompute for the batch of one).
func benchIncremental(b *testing.B, alg Algorithm, n int) {
	b.Helper()
	s := NewState(alg)
	r := rand.New(rand.NewPCG(42, 0xBE))
	for _, rec := range benchRecords(n, 42).All() {
		s.Add(rec)
	}
	s.Buckets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := n + i + 1
		s.Add(record.Record{TaskID: id, Value: 3 + 7*r.Float64(), Sig: float64(id), Time: 1})
		if s.Predict(r) <= 0 {
			b.Fatal("no prediction")
		}
	}
}

func BenchmarkCorePartitionGreedy1k(b *testing.B) { benchPartitionCold(b, GreedyBucketing{}, 1000) }

func BenchmarkCorePartitionGreedy10k(b *testing.B) { benchPartitionCold(b, GreedyBucketing{}, 10000) }

func BenchmarkCorePartitionExhaustive1k(b *testing.B) {
	benchPartitionCold(b, ExhaustiveBucketing{}, 1000)
}

func BenchmarkCorePartitionExhaustive10k(b *testing.B) {
	benchPartitionCold(b, ExhaustiveBucketing{}, 10000)
}

func BenchmarkCoreIncrementalGreedy10k(b *testing.B) { benchIncremental(b, GreedyBucketing{}, 10000) }

func BenchmarkCoreIncrementalExhaustive10k(b *testing.B) {
	benchIncremental(b, ExhaustiveBucketing{}, 10000)
}
