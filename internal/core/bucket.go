// Package core implements the paper's primary contribution: the bucketing
// approach to adaptive task resource allocation (Section IV), with the two
// bucket-finding algorithms Greedy Bucketing (Algorithm 1) and Exhaustive
// Bucketing (Algorithm 2, with the even-spacing combinations optimization of
// Section IV-D).
//
// A bucketing State tracks one resource kind for one task category. It
// accumulates resource records of completed tasks, lazily recomputes a set of
// buckets over the sorted record list, and serves allocation predictions:
// the first allocation of a task samples a bucket in proportion to its
// significance-weighted probability and returns the bucket's representative
// value; after a resource exhaustion, only buckets with strictly larger
// representatives are considered, and when none remain the previous
// allocation is doubled until the task succeeds.
package core

import (
	"fmt"
	"math/rand/v2"

	"dynalloc/internal/record"
)

// Bucket is one interval of the sorted record list, reduced to the two
// values the predictor needs (Section IV-A): the representative value
// (the maximum record value in the bucket) and the probability value
// (the bucket's share of total significance).
type Bucket struct {
	Lo, Hi int     // inclusive index range into the sorted record list
	Rep    float64 // representative value: max record value in the bucket
	Prob   float64 // normalized significance share of the bucket
	Count  int     // number of records in the bucket
}

func (b Bucket) String() string {
	return fmt.Sprintf("bucket[%d:%d] rep=%.3f prob=%.3f n=%d", b.Lo, b.Hi, b.Rep, b.Prob, b.Count)
}

// appendBucketsCum materializes buckets from the inclusive end indices of
// each bucket over the sorted record list, appending to dst, and appends the
// running cumulative probability (cum[i] = Σ prob[0..i], accumulated left to
// right so it matches a sequential sum bit for bit) to cum. ends must be
// strictly ascending and terminate at l.Len()-1. Passing the previous
// buffers re-sliced to length zero makes a recomputation allocation-free.
func appendBucketsCum(dst []Bucket, cum []float64, l *record.List, ends []int) ([]Bucket, []float64) {
	total := l.TotalSig()
	running := 0.0
	lo := 0
	for _, hi := range ends {
		b := Bucket{
			Lo:    lo,
			Hi:    hi,
			Rep:   l.Value(hi),
			Count: hi - lo + 1,
		}
		if total > 0 {
			b.Prob = l.SigSum(lo, hi) / total
		}
		running += b.Prob
		dst = append(dst, b)
		cum = append(cum, running)
		lo = hi + 1
	}
	return dst, cum
}

// bucketsFromEnds materializes a fresh bucket slice from end indices; the
// State recompute path uses appendBucketsCum with reused buffers instead.
func bucketsFromEnds(l *record.List, ends []int) []Bucket {
	out := make([]Bucket, 0, len(ends))
	out, _ = appendBucketsCum(out, nil, l, ends)
	return out
}

// sampleBucket draws a bucket index in proportion to the (possibly
// unnormalized) probability masses of buckets[from:]. It returns the index
// into the full slice.
func sampleBucket(buckets []Bucket, from int, r *rand.Rand) int {
	total := 0.0
	for _, b := range buckets[from:] {
		total += b.Prob
	}
	return pickBucket(buckets, from, total, r)
}

// sampleBucketCum is sampleBucket with the full-range probability mass
// served from the cumulative array: the common Predict case (from == 0)
// skips the renormalization re-scan entirely. cum is accumulated left to
// right, so cum[len-1] is bit-identical to the sequential sum sampleBucket
// computes. Escalations (from > 0) still sum the tail directly — a
// prefix-difference would associate the additions differently and perturb
// the draw by an ulp.
func sampleBucketCum(buckets []Bucket, cum []float64, from int, r *rand.Rand) int {
	var total float64
	if from == 0 {
		if n := len(cum); n > 0 {
			total = cum[n-1]
		}
	} else {
		for _, b := range buckets[from:] {
			total += b.Prob
		}
	}
	return pickBucket(buckets, from, total, r)
}

// pickBucket draws x uniformly over the probability mass and walks
// buckets[from:] to find the drawn index.
func pickBucket(buckets []Bucket, from int, total float64, r *rand.Rand) int {
	if total <= 0 {
		return len(buckets) - 1
	}
	x := r.Float64() * total
	for i := from; i < len(buckets); i++ {
		x -= buckets[i].Prob
		if x < 0 {
			return i
		}
	}
	return len(buckets) - 1
}

// Algorithm computes a bucket partition over a sorted record list. The
// returned slice holds the inclusive end index of every bucket, ascending,
// with the final element equal to l.Len()-1. The scratch carries the
// computation's reusable working memory between calls; it may be nil, in
// which case the call allocates transient buffers. The returned slice may
// alias the scratch and is valid only until the next Partition call using
// the same scratch.
type Algorithm interface {
	Name() string
	Partition(l *record.List, s *Scratch) []int
}

// ComputeBuckets runs one full bucketing-state computation — partitioning
// the record list and materializing the buckets — exactly the work a state
// recomputation performs. The Table I harness times this step together with
// an allocation derivation.
func ComputeBuckets(l *record.List, alg Algorithm) []Bucket {
	return bucketsFromEnds(l, alg.Partition(l, nil))
}

// SampleAllocation derives an allocation from a bucket set the way the
// predictor does: a bucket is chosen in proportion to its probability and
// its representative value returned.
func SampleAllocation(buckets []Bucket, r *rand.Rand) float64 {
	if len(buckets) == 0 {
		return 0
	}
	return buckets[sampleBucket(buckets, 0, r)].Rep
}
