package core

import (
	"math"

	"dynalloc/internal/record"
)

// BruteForce is the literal Algorithm 2 without the combinations
// optimization of Section IV-D: it enumerates every possible bucket
// configuration of the record list and scores each with
// compute_exhaust_cost. Its cost grows exponentially (2^(n-1)
// configurations), so it is only usable on small lists; it exists as the
// ground-truth reference the optimized ExhaustiveBucketing is validated
// against, and as the exact solver for the worked examples.
type BruteForce struct {
	// MaxRecords guards against accidental exponential blow-ups; lists
	// longer than this panic. Zero means 20.
	MaxRecords int
}

// Name implements Algorithm.
func (BruteForce) Name() string { return "brute-force" }

// Partition implements Algorithm.
func (b BruteForce) Partition(l *record.List, s *Scratch) []int {
	n := l.Len()
	if n == 0 {
		return nil
	}
	maxN := b.MaxRecords
	if maxN <= 0 {
		maxN = 20
	}
	if n > maxN {
		panic("core: BruteForce.Partition on a list larger than MaxRecords")
	}
	if s == nil {
		s = &Scratch{}
	}
	v := l.View()
	best := []int{n - 1}
	bestCost := computeExhaustCost(v, best, s)
	// Every subset of {0..n-2} as interior bucket ends.
	ends := make([]int, 0, n)
	var rec func(next int)
	rec = func(next int) {
		if next == n-1 {
			cfg := append(append([]int{}, ends...), n-1)
			if cost := computeExhaustCost(v, cfg, s); cost < bestCost {
				bestCost = cost
				best = cfg
			}
			return
		}
		rec(next + 1) // next is not a bucket end
		ends = append(ends, next)
		rec(next + 1) // next is a bucket end
		ends = ends[:len(ends)-1]
	}
	rec(0)
	return best
}

// OptimalityGap returns how far a partition's expected waste is above the
// brute-force optimum for the same records, as a ratio >= 1 (1 means the
// partition is optimal). It is a testing/validation helper for small lists.
func OptimalityGap(l *record.List, ends []int, maxRecords int) float64 {
	bf := BruteForce{MaxRecords: maxRecords}
	optimal := ExpectedWaste(l, bf.Partition(l, nil))
	got := ExpectedWaste(l, ends)
	if optimal <= 0 {
		if got <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return got / optimal
}
