package core

import (
	"math/rand/v2"
	"time"

	"dynalloc/internal/record"
)

// Stats exposes the telemetry the paper reports in Table I and Section V-C:
// how often the bucketing state was recomputed, how long the recomputations
// took, and how large the bucket sets grew.
type Stats struct {
	Recomputes    int           // number of bucket recomputations performed
	RecomputeTime time.Duration // cumulative wall time spent recomputing
	Predictions   int           // number of Predict/Retry calls served
	LastBuckets   int           // bucket count after the latest recomputation
	MaxBuckets    int           // largest bucket count ever observed
}

// State is the bucketing state for one resource kind of one task category
// (Figure 3a: the bucketing manager maintains a separate state per resource
// type). Records are accumulated as tasks complete; the bucket set is
// recomputed lazily on the next prediction after an update, which realizes
// the batching behaviour described in Section V-C (a sequence of completed
// tasks between two ready tasks costs one recomputation).
//
// The state owns all working memory of the recompute path — the partition
// scratch, the bucket slice, and the cumulative-probability array — and
// reuses it across recomputations, so a warm recompute is allocation-free.
//
// State is not safe for concurrent use; callers serialize access (the
// allocator owns one goroutine-confined state per category and kind).
type State struct {
	alg      Algorithm
	recs     record.List
	buckets  []Bucket
	cum      []float64 // cum[i] = Σ buckets[0..i].Prob, for Predict sampling
	scratch  Scratch
	computed bool // a bucket set exists (distinguishes empty from stale)
	dirty    bool
	stats    Stats
}

// NewState returns an empty bucketing state driven by the given algorithm.
func NewState(alg Algorithm) *State {
	return &State{alg: alg}
}

// Algorithm returns the bucket-finding algorithm driving this state.
func (s *State) Algorithm() Algorithm { return s.alg }

// Add records the peak consumption of a completed task and marks the bucket
// set stale.
func (s *State) Add(r record.Record) {
	s.recs.Add(r)
	s.dirty = true
}

// Len returns the number of accumulated records.
func (s *State) Len() int { return s.recs.Len() }

// Records exposes the underlying record list (read-only use).
func (s *State) Records() *record.List { return &s.recs }

// Stats returns a copy of the state's telemetry counters.
func (s *State) Stats() Stats { return s.stats }

// Buckets returns the current bucket set, recomputing it first if any
// records arrived since the last computation. The returned slice is owned by
// the state and is valid until the first query after the next Add.
func (s *State) Buckets() []Bucket {
	if s.dirty || !s.computed {
		start := time.Now()
		ends := s.alg.Partition(&s.recs, &s.scratch)
		s.buckets, s.cum = appendBucketsCum(s.buckets[:0], s.cum[:0], &s.recs, ends)
		s.stats.RecomputeTime += time.Since(start)
		s.stats.Recomputes++
		s.stats.LastBuckets = len(s.buckets)
		if len(s.buckets) > s.stats.MaxBuckets {
			s.stats.MaxBuckets = len(s.buckets)
		}
		s.computed = true
		s.dirty = false
	}
	return s.buckets
}

// Predict returns the first-attempt allocation for the next task: a bucket
// is sampled in proportion to its probability value and its representative
// value is returned. With no records yet, Predict returns 0 and the caller
// (the allocator's exploratory mode) must supply a default.
func (s *State) Predict(r *rand.Rand) float64 {
	s.stats.Predictions++
	bs := s.Buckets()
	if len(bs) == 0 {
		return 0
	}
	return bs[sampleBucketCum(bs, s.cum, 0, r)].Rep
}

// Retry returns the allocation for a task that exhausted a previous
// allocation of prev: only buckets with representative values strictly
// greater than prev are considered, with probabilities renormalized among
// them; when no such bucket exists the previous value is doubled
// (Section IV-A). A non-positive prev falls back to the smallest positive
// step so the doubling chain is always increasing.
func (s *State) Retry(prev float64, r *rand.Rand) float64 {
	s.stats.Predictions++
	bs := s.Buckets()
	from := len(bs)
	for i, b := range bs {
		if b.Rep > prev {
			from = i
			break
		}
	}
	if from == len(bs) {
		if prev <= 0 {
			return 1
		}
		return prev * 2
	}
	return bs[sampleBucketCum(bs, s.cum, from, r)].Rep
}
