package core

import (
	"math"

	"dynalloc/internal/record"
)

// DefaultMaxBuckets is the cap on the number of buckets considered by
// Exhaustive Bucketing. The paper observes that the number of buckets rarely
// exceeds 10 at any given time and restricts the outer loop accordingly
// (Section V-A).
const DefaultMaxBuckets = 10

// ExhaustiveBucketing implements Algorithm 2 with the combinations
// optimization of Section IV-D. Rather than enumerating all C(N, k) break
// point sets, each bucket count nb considers a single candidate
// configuration whose break values split the value space evenly
// (v_max·i/nb), mapped to the closest records with lower values; duplicate
// and empty mappings are dropped. Each configuration is scored by
// computeExhaustCost and the lowest expected waste wins.
type ExhaustiveBucketing struct {
	// MaxBuckets bounds the number of buckets considered; 0 means
	// DefaultMaxBuckets.
	MaxBuckets int
}

// Name implements Algorithm.
func (ExhaustiveBucketing) Name() string { return "exhaustive" }

// Partition implements Algorithm. The candidate and winner configurations
// double-buffer through the scratch, so a warm Partition is allocation-free.
func (e ExhaustiveBucketing) Partition(l *record.List, s *Scratch) []int {
	n := l.Len()
	if n == 0 {
		return nil
	}
	if s == nil {
		s = &Scratch{}
	}
	v := l.View()
	maxB := e.MaxBuckets
	if maxB <= 0 {
		maxB = DefaultMaxBuckets
	}
	if maxB > n {
		maxB = n
	}
	s.best = append(s.best[:0], n-1)
	bestCost := computeExhaustCost(v, s.best, s)
	for nb := 2; nb <= maxB; nb++ {
		ends := evenEnds(v, nb, s.cand[:0])
		s.cand = ends
		if len(ends) < 2 {
			continue // configuration degenerated to a single bucket
		}
		cost := computeExhaustCost(v, ends, s)
		if cost < bestCost {
			bestCost = cost
			s.best, s.cand = ends, s.best
		}
	}
	return s.best
}

// evenEnds appends to ends the candidate bucket end indices for a target of
// nb buckets: break values at v_max·i/nb for i = 1..nb-1, each mapped to the
// closest record strictly below it, deduplicated, plus the final index.
func evenEnds(v record.View, nb int, ends []int) []int {
	n := v.Len()
	vmax := v.MaxValue()
	prev := -1
	for i := 1; i < nb; i++ {
		idx := v.SearchValue(vmax * float64(i) / float64(nb))
		if idx < 0 || idx == prev || idx >= n-1 {
			continue // empty or duplicate mapping, or collides with the last bucket
		}
		ends = append(ends, idx)
		prev = idx
	}
	return append(ends, n-1)
}

// computeExhaustCost is compute_exhaust_cost of Algorithm 2: the expected
// resource waste of the next task under the bucket configuration described
// by ends. It evaluates the N×N table T where T[i][j] is the expected waste
// when the task truly falls within bucket i and the allocator chooses bucket
// j:
//
//	i <= j: T[i][j] = rep_j - v_i                      (allocation sufficient)
//	i >  j: T[i][j] = rep_j + Σ_{k>j} p_k/P_{>j} · T[i][k]   (failed, retried
//	        among the renormalized higher buckets)
//
// and returns W = Σ_{i,j} p_i · p_j · T[i][j].
//
// The retry-chain sum is evaluated in O(nB²) rather than the textbook
// O(nB³): within each row i, a running accumulator acc = Σ_{k>j} p_k·T[i][k]
// is carried from the last column toward the first, so T[i][j] for a failure
// entry is rep_j + acc/tail_{j+1} in O(1), and the same accumulator ends the
// row as Σ_j p_j·T[i][j] — the row's full contribution to W. No nB×nB table
// is materialized at all; the only working memory is the four per-bucket
// slices from the scratch.
func computeExhaustCost(v record.View, ends []int, s *Scratch) float64 {
	if s == nil {
		s = &Scratch{}
	}
	nB := len(ends)
	rep, prob, mean, tail := s.floats(nB)
	total := v.TotalSig()
	lo := 0
	for j, hi := range ends {
		rep[j] = v.Value(hi)
		prob[j] = 0
		if total > 0 {
			prob[j] = v.SigSum(lo, hi) / total
		}
		mean[j] = v.WeightedMean(lo, hi)
		lo = hi + 1
	}

	// tail[j] = Σ_{m >= j} prob_m, so the renormalizer for buckets above j
	// is tail[j+1].
	tail[nB] = 0
	for j := nB - 1; j >= 0; j-- {
		tail[j] = tail[j+1] + prob[j]
	}

	w := 0.0
	for i := 0; i < nB; i++ {
		acc := 0.0 // Σ over the columns visited so far of p_k·T[i][k]
		for j := nB - 1; j >= 0; j-- {
			var tij float64
			if i <= j {
				tij = rep[j] - mean[i]
			} else {
				tij = rep[j]
				if t := tail[j+1]; t > 0 {
					tij += acc / t
				}
			}
			acc += prob[j] * tij
		}
		w += prob[i] * acc
	}
	if math.IsNaN(w) {
		return math.Inf(1)
	}
	return w
}

// ExpectedWaste exposes compute_exhaust_cost for tests, ablations, and the
// worked-example tooling: it scores an arbitrary bucket configuration
// (given by inclusive end indices over the sorted record list) by its
// expected resource waste for the next task.
func ExpectedWaste(l *record.List, ends []int) float64 {
	return computeExhaustCost(l.View(), ends, nil)
}
