package core

import (
	"math"

	"dynalloc/internal/record"
)

// DefaultMaxBuckets is the cap on the number of buckets considered by
// Exhaustive Bucketing. The paper observes that the number of buckets rarely
// exceeds 10 at any given time and restricts the outer loop accordingly
// (Section V-A).
const DefaultMaxBuckets = 10

// ExhaustiveBucketing implements Algorithm 2 with the combinations
// optimization of Section IV-D. Rather than enumerating all C(N, k) break
// point sets, each bucket count nb considers a single candidate
// configuration whose break values split the value space evenly
// (v_max·i/nb), mapped to the closest records with lower values; duplicate
// and empty mappings are dropped. Each configuration is scored by
// computeExhaustCost and the lowest expected waste wins.
type ExhaustiveBucketing struct {
	// MaxBuckets bounds the number of buckets considered; 0 means
	// DefaultMaxBuckets.
	MaxBuckets int
}

// Name implements Algorithm.
func (ExhaustiveBucketing) Name() string { return "exhaustive" }

// Partition implements Algorithm.
func (e ExhaustiveBucketing) Partition(l *record.List) []int {
	n := l.Len()
	if n == 0 {
		return nil
	}
	maxB := e.MaxBuckets
	if maxB <= 0 {
		maxB = DefaultMaxBuckets
	}
	if maxB > n {
		maxB = n
	}
	best := []int{n - 1}
	bestCost := computeExhaustCost(l, best)
	for nb := 2; nb <= maxB; nb++ {
		ends := evenEnds(l, nb)
		if len(ends) < 2 {
			continue // configuration degenerated to a single bucket
		}
		cost := computeExhaustCost(l, ends)
		if cost < bestCost {
			bestCost = cost
			best = ends
		}
	}
	return best
}

// evenEnds returns the candidate bucket end indices for a target of nb
// buckets: break values at v_max·i/nb for i = 1..nb-1, each mapped to the
// closest record strictly below it, deduplicated, plus the final index.
func evenEnds(l *record.List, nb int) []int {
	n := l.Len()
	vmax := l.MaxValue()
	ends := make([]int, 0, nb)
	prev := -1
	for i := 1; i < nb; i++ {
		idx := l.SearchValue(vmax * float64(i) / float64(nb))
		if idx < 0 || idx == prev || idx >= n-1 {
			continue // empty or duplicate mapping, or collides with the last bucket
		}
		ends = append(ends, idx)
		prev = idx
	}
	return append(ends, n-1)
}

// computeExhaustCost is compute_exhaust_cost of Algorithm 2: the expected
// resource waste of the next task under the bucket configuration described
// by ends. It fills the N×N table T where T[i][j] is the expected waste
// when the task truly falls within bucket i and the allocator chooses bucket
// j:
//
//	i <= j: T[i][j] = rep_j - v_i                      (allocation sufficient)
//	i >  j: T[i][j] = rep_j + Σ_{k>j} p_k/P_{>j} · T[i][k]   (failed, retried
//	        among the renormalized higher buckets)
//
// filled from the last column toward the first, and returns
// W = Σ_{i,j} p_i · p_j · T[i][j].
func computeExhaustCost(l *record.List, ends []int) float64 {
	nB := len(ends)
	rep := make([]float64, nB)
	prob := make([]float64, nB)
	v := make([]float64, nB)
	total := l.TotalSig()
	lo := 0
	for j, hi := range ends {
		rep[j] = l.Value(hi)
		if total > 0 {
			prob[j] = l.SigSum(lo, hi) / total
		}
		v[j] = l.WeightedMean(lo, hi)
		lo = hi + 1
	}

	// tail[j] = Σ_{m >= j} prob_m, so the renormalizer for buckets above j
	// is tail[j+1].
	tail := make([]float64, nB+1)
	for j := nB - 1; j >= 0; j-- {
		tail[j] = tail[j+1] + prob[j]
	}

	t := make([][]float64, nB)
	for i := range t {
		t[i] = make([]float64, nB)
		for j := nB - 1; j >= 0; j-- {
			if i <= j {
				t[i][j] = rep[j] - v[i]
				continue
			}
			sum := rep[j]
			if tail[j+1] > 0 {
				for k := j + 1; k < nB; k++ {
					sum += prob[k] / tail[j+1] * t[i][k]
				}
			}
			t[i][j] = sum
		}
	}

	w := 0.0
	for i := 0; i < nB; i++ {
		for j := 0; j < nB; j++ {
			w += prob[i] * prob[j] * t[i][j]
		}
	}
	if math.IsNaN(w) {
		return math.Inf(1)
	}
	return w
}

// ExpectedWaste exposes compute_exhaust_cost for tests, ablations, and the
// worked-example tooling: it scores an arbitrary bucket configuration
// (given by inclusive end indices over the sorted record list) by its
// expected resource waste for the next task.
func ExpectedWaste(l *record.List, ends []int) float64 {
	return computeExhaustCost(l, ends)
}
