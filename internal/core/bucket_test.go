package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynalloc/internal/record"
)

func newList(values ...float64) *record.List {
	l := &record.List{}
	for i, v := range values {
		l.Add(record.Record{TaskID: i + 1, Value: v, Sig: float64(i + 1), Time: 1})
	}
	return l
}

func uniformSigList(values ...float64) *record.List {
	l := &record.List{}
	for i, v := range values {
		l.Add(record.Record{TaskID: i + 1, Value: v, Sig: 1, Time: 1})
	}
	return l
}

func TestBucketsFromEndsSingle(t *testing.T) {
	l := uniformSigList(1, 2, 3, 4)
	bs := bucketsFromEnds(l, []int{3})
	if len(bs) != 1 {
		t.Fatalf("got %d buckets, want 1", len(bs))
	}
	b := bs[0]
	if b.Lo != 0 || b.Hi != 3 || b.Rep != 4 || b.Count != 4 {
		t.Errorf("bucket = %+v", b)
	}
	if math.Abs(b.Prob-1) > 1e-12 {
		t.Errorf("single bucket prob = %v, want 1", b.Prob)
	}
}

func TestBucketsFromEndsPartition(t *testing.T) {
	l := uniformSigList(1, 2, 10, 11, 12)
	bs := bucketsFromEnds(l, []int{1, 4})
	if len(bs) != 2 {
		t.Fatalf("got %d buckets", len(bs))
	}
	if bs[0].Rep != 2 || bs[1].Rep != 12 {
		t.Errorf("reps = %v, %v", bs[0].Rep, bs[1].Rep)
	}
	if math.Abs(bs[0].Prob-0.4) > 1e-12 || math.Abs(bs[1].Prob-0.6) > 1e-12 {
		t.Errorf("probs = %v, %v", bs[0].Prob, bs[1].Prob)
	}
	if bs[0].Count != 2 || bs[1].Count != 3 {
		t.Errorf("counts = %d, %d", bs[0].Count, bs[1].Count)
	}
}

func TestBucketsFromEndsSignificanceWeighting(t *testing.T) {
	// Significance = task ID (paper Section V-A): later records weigh more.
	l := &record.List{}
	l.Add(record.Record{TaskID: 1, Value: 10, Sig: 1})
	l.Add(record.Record{TaskID: 2, Value: 20, Sig: 9})
	bs := bucketsFromEnds(l, []int{0, 1})
	if math.Abs(bs[0].Prob-0.1) > 1e-12 || math.Abs(bs[1].Prob-0.9) > 1e-12 {
		t.Errorf("probs = %v, %v, want 0.1, 0.9", bs[0].Prob, bs[1].Prob)
	}
}

func TestSampleBucketDistribution(t *testing.T) {
	buckets := []Bucket{
		{Rep: 1, Prob: 0.2},
		{Rep: 2, Prob: 0.5},
		{Rep: 3, Prob: 0.3},
	}
	r := rand.New(rand.NewPCG(1, 1))
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[sampleBucket(buckets, 0, r)]++
	}
	for i, want := range []float64{0.2, 0.5, 0.3} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bucket %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestSampleBucketFromOffsetRenormalizes(t *testing.T) {
	buckets := []Bucket{
		{Rep: 1, Prob: 0.9},
		{Rep: 2, Prob: 0.05},
		{Rep: 3, Prob: 0.05},
	}
	r := rand.New(rand.NewPCG(2, 2))
	const n = 20000
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[sampleBucket(buckets, 1, r)]++
	}
	if counts[0] != 0 {
		t.Fatal("sampleBucket(from=1) chose an excluded bucket")
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("renormalized frequency = %v, want ~0.5", frac)
	}
}

func TestSampleBucketZeroMass(t *testing.T) {
	buckets := []Bucket{{Rep: 1, Prob: 0}, {Rep: 2, Prob: 0}}
	r := rand.New(rand.NewPCG(3, 3))
	if got := sampleBucket(buckets, 0, r); got != 1 {
		t.Errorf("zero-mass sampling = %d, want last index", got)
	}
}

// Property: for any record multiset and any algorithm, the computed buckets
// form an exact partition with non-decreasing representatives summing to
// probability 1, and each rep is the maximum value within its bucket.
func TestPartitionInvariants(t *testing.T) {
	algs := []Algorithm{GreedyBucketing{}, ExhaustiveBucketing{}}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		r := rand.New(rand.NewPCG(seed, 77))
		l := &record.List{}
		for i := 0; i < n; i++ {
			l.Add(record.Record{
				TaskID: i + 1,
				Value:  math.Abs(r.NormFloat64())*100 + 1,
				Sig:    float64(i + 1),
				Time:   1,
			})
		}
		for _, alg := range algs {
			ends := alg.Partition(l, nil)
			if len(ends) == 0 || ends[len(ends)-1] != n-1 {
				return false
			}
			for i := 1; i < len(ends); i++ {
				if ends[i] <= ends[i-1] {
					return false
				}
			}
			bs := bucketsFromEnds(l, ends)
			probSum := 0.0
			covered := 0
			prevRep := math.Inf(-1)
			sorted := l.Sorted()
			for _, b := range bs {
				probSum += b.Prob
				covered += b.Count
				if b.Rep < prevRep {
					return false
				}
				prevRep = b.Rep
				maxInBucket := math.Inf(-1)
				for i := b.Lo; i <= b.Hi; i++ {
					maxInBucket = math.Max(maxInBucket, sorted[i].Value)
				}
				if b.Rep != maxInBucket {
					return false
				}
			}
			if covered != n || math.Abs(probSum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
