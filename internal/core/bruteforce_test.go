package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynalloc/internal/record"
)

func TestBruteForceMatchesHandEnumeration(t *testing.T) {
	// Two far-apart clusters: the optimum is clearly the two-bucket split.
	l := uniformSigList(10, 11, 1000, 1001)
	ends := BruteForce{}.Partition(l, nil)
	if len(ends) < 2 {
		t.Fatalf("ends = %v, expected a split", ends)
	}
	has := false
	for _, e := range ends {
		if e == 1 {
			has = true
		}
	}
	if !has {
		t.Errorf("ends = %v, want a break after index 1", ends)
	}
}

func TestBruteForceGuards(t *testing.T) {
	if got := (BruteForce{}).Partition(&record.List{}, nil); got != nil {
		t.Error("empty list should partition to nil")
	}
	if (BruteForce{}).Name() != "brute-force" {
		t.Error("name")
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized list should panic")
		}
	}()
	big := &record.List{}
	for i := 0; i < 30; i++ {
		big.Add(record.Record{TaskID: i + 1, Value: float64(i), Sig: 1})
	}
	BruteForce{}.Partition(big, nil)
}

// Property: the brute-force partition is never worse than the single
// bucket, the greedy partition, or the optimized exhaustive partition —
// it is the true optimum of the cost model.
func TestBruteForceIsOptimal(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		r := rand.New(rand.NewPCG(seed, 41))
		l := &record.List{}
		for i := 0; i < n; i++ {
			l.Add(record.Record{TaskID: i + 1, Value: r.Float64() * 100, Sig: float64(i + 1)})
		}
		optimal := ExpectedWaste(l, BruteForce{}.Partition(l, nil))
		for _, alg := range []Algorithm{GreedyBucketing{}, ExhaustiveBucketing{}} {
			if ExpectedWaste(l, alg.Partition(l, nil)) < optimal-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The quality of the even-spacing heuristic: on random lists its expected
// waste stays within a bounded factor of the brute-force optimum.
func TestExhaustiveHeuristicGapIsBounded(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 44))
	worst := 1.0
	for trial := 0; trial < 60; trial++ {
		n := 6 + r.IntN(8)
		l := &record.List{}
		for i := 0; i < n; i++ {
			l.Add(record.Record{TaskID: i + 1, Value: r.Float64()*100 + 1, Sig: float64(i + 1)})
		}
		gap := OptimalityGap(l, ExhaustiveBucketing{}.Partition(l, nil), 0)
		if math.IsInf(gap, 1) {
			t.Fatalf("trial %d: infinite gap", trial)
		}
		worst = math.Max(worst, gap)
	}
	if worst > 3.0 {
		t.Errorf("even-spacing heuristic up to %.2fx above optimum; expected a small constant", worst)
	}
	t.Logf("worst even-spacing gap over 60 random lists: %.3fx", worst)
}

func TestOptimalityGapPerfect(t *testing.T) {
	l := uniformSigList(10, 11, 1000, 1001)
	ends := BruteForce{}.Partition(l, nil)
	if gap := OptimalityGap(l, ends, 0); math.Abs(gap-1) > 1e-12 {
		t.Errorf("gap of the optimum itself = %v", gap)
	}
}
