package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"os"
	"testing"

	"dynalloc/internal/record"
)

// The golden-equivalence layer for the bucketing core: the recompute hot
// path is free to change its data structures (scratch reuse, suffix
// accumulators, snapshot views, double-buffered rebuilds) but must never
// change the bucket sets it derives or the prediction/retry values it
// serves. Each cell streams a seeded workload through a State, interleaving
// batched observations with Predict and Retry calls exactly the way the
// allocator drives it, and pins an FNV-1a fingerprint over every bucket
// boundary and every served value, bit-exact.
//
// Regenerate after an *intentional* behaviour change with:
//
//	CORE_GOLDEN_UPDATE=1 go test ./internal/core -run TestGoldenStateStreams -v

// streamFingerprint drives one bucketing state through batches of the
// generator's records and hashes everything observable: the bucket set after
// every recompute (index range, representative and probability bits, count)
// and the exact float bits of every Predict and Retry-chain value.
func streamFingerprint(alg Algorithm, seed uint64, gen func(*rand.Rand) float64) uint64 {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	drive := rand.New(rand.NewPCG(seed, 0xD01))
	sample := rand.New(rand.NewPCG(seed, 0x5A3))
	s := NewState(alg)
	task := 0
	for round := 0; round < 60; round++ {
		// A completion batch lands between two ready tasks (Section V-C):
		// several records cost exactly one recompute on the next query.
		batch := 1 + drive.IntN(5)
		for b := 0; b < batch; b++ {
			task++
			s.Add(record.Record{
				TaskID: task,
				Value:  gen(drive),
				Sig:    float64(task),
				Time:   1 + drive.Float64(),
			})
		}
		for _, bkt := range s.Buckets() {
			word(uint64(bkt.Lo))
			word(uint64(bkt.Hi))
			word(math.Float64bits(bkt.Rep))
			word(math.Float64bits(bkt.Prob))
			word(uint64(bkt.Count))
		}
		// A few first allocations, one of which fails and escalates through
		// the retry chain until it clears the maximum seen value.
		for p := 0; p < 3; p++ {
			v := s.Predict(sample)
			word(math.Float64bits(v))
			if p == 0 {
				limit := s.Records().MaxValue()
				for hops := 0; v <= limit && hops < 64; hops++ {
					v = s.Retry(v, sample)
					word(math.Float64bits(v))
				}
			}
		}
	}
	return h.Sum64()
}

// goldenGenerators are the workload families of the evaluation (Section V-B)
// reduced to scalar record generators.
var goldenGenerators = []struct {
	name string
	gen  func(*rand.Rand) float64
}{
	{"uniform", func(r *rand.Rand) float64 { return 2 + 10*r.Float64() }},
	{"bimodal", func(r *rand.Rand) float64 {
		if r.Float64() < 0.5 {
			return math.Max(3+0.4*r.NormFloat64(), 0.1)
		}
		return math.Max(9+0.7*r.NormFloat64(), 0.1)
	}},
}

func TestGoldenStateStreams(t *testing.T) {
	algs := []Algorithm{GreedyBucketing{}, ExhaustiveBucketing{}}
	update := os.Getenv("CORE_GOLDEN_UPDATE") != ""
	i := 0
	for _, alg := range algs {
		for _, g := range goldenGenerators {
			for _, seed := range []uint64{1, 2, 3} {
				name := fmt.Sprintf("%s/%s/seed%d", alg.Name(), g.name, seed)
				got := streamFingerprint(alg, seed, g.gen)
				if update {
					fmt.Printf("\t0x%x,\n", got)
				} else if want := goldenStateStreams[i]; got != want {
					t.Errorf("%s: stream fingerprint 0x%x, want 0x%x", name, got, want)
				}
				i++
			}
		}
	}
}

// TestGoldenStateStreamsReproducible guards the golden table itself: the
// same cell must fingerprint identically twice in one process before
// comparing against pinned values means anything.
func TestGoldenStateStreamsReproducible(t *testing.T) {
	g := goldenGenerators[0]
	a := streamFingerprint(ExhaustiveBucketing{}, 1, g.gen)
	b := streamFingerprint(ExhaustiveBucketing{}, 1, g.gen)
	if a != b {
		t.Fatalf("same-seed streams diverged: %x vs %x", a, b)
	}
}

// goldenStateStreams is indexed by the cell order of TestGoldenStateStreams:
// algorithms {greedy, exhaustive} x generators {uniform, bimodal} x seeds
// {1, 2, 3}.
var goldenStateStreams = []uint64{
	0xb24d08192ad0e075,
	0x64cd7214a033543d,
	0xf3893aba34fcce3,
	0x3c76f79eed0a2ee5,
	0x5dbcdb0a91e4e5c,
	0x1b073c462746845a,
	0xac8e48ecd37bc414,
	0xc1a0059d01d56dd4,
	0xa6e33af57b127bd6,
	0x21e61196ef7585c7,
	0x1c91125dcda7fe6f,
	0x5d1576fe328fa949,
}
