package core

import (
	"math"

	"dynalloc/internal/record"
)

// GreedyBucketing implements Algorithm 1 of the paper. Given the sorted
// record range [lo, hi] it scans every candidate break point i, evaluates the
// expected resource waste of the two-bucket configuration {[lo,i], [i+1,hi]}
// (with i == hi encoding "keep a single bucket"), keeps the minimizing break,
// and recurses into both halves. Every range statistic is served from the
// record list's prefix sums, so each cost evaluation is O(1) and each scan is
// O(hi-lo).
type GreedyBucketing struct{}

// Name implements Algorithm.
func (GreedyBucketing) Name() string { return "greedy" }

// Partition implements Algorithm.
func (GreedyBucketing) Partition(l *record.List) []int {
	n := l.Len()
	if n == 0 {
		return nil
	}
	return greedySplit(l, 0, n-1, make([]int, 0, 8))
}

// greedySplit appends the bucket end indices for the sorted range [lo, hi]
// to out and returns the extended slice.
func greedySplit(l *record.List, lo, hi int, out []int) []int {
	if lo == hi {
		return append(out, hi)
	}
	minCost := math.Inf(1)
	breakIdx := hi
	for i := lo; i <= hi; i++ {
		cost := greedyCost(l, lo, i, hi)
		if cost < minCost {
			minCost = cost
			breakIdx = i
		}
	}
	if breakIdx == hi {
		// A single bucket over [lo, hi] yields the minimum expected waste.
		return append(out, hi)
	}
	out = greedySplit(l, lo, breakIdx, out)
	out = greedySplit(l, breakIdx+1, hi, out)
	return out
}

// greedyCost is compute_greedy_cost of Algorithm 1: the expected resource
// waste of the next task under the two-bucket configuration obtained by
// breaking the sorted range [lo, hi] after index i. The four cases of
// Section IV-B are:
//
//	task in B1, choose B1: p1^2 * (rep1 - v_lo)
//	task in B1, choose B2: p1*p2 * (rep2 - v_lo)
//	task in B2, choose B1: p2*p1 * (rep1 + rep2 - v_hi)   (failed, retried)
//	task in B2, choose B2: p2^2 * (rep2 - v_hi)
//
// where v_lo and v_hi are the significance-weighted mean values of the
// respective buckets. i == hi evaluates the single-bucket configuration,
// whose expected waste is rep - v_mean.
func greedyCost(l *record.List, lo, i, hi int) float64 {
	if i == hi {
		return l.Value(hi) - l.WeightedMean(lo, hi)
	}
	s1 := l.SigSum(lo, i)
	s2 := l.SigSum(i+1, hi)
	total := s1 + s2
	if total <= 0 {
		return math.Inf(1)
	}
	p1 := s1 / total
	p2 := s2 / total
	rep1 := l.Value(i)
	rep2 := l.Value(hi)
	vLo := l.WeightedMean(lo, i)
	vHi := l.WeightedMean(i+1, hi)
	return p1*p1*(rep1-vLo) +
		p1*p2*(rep2-vLo) +
		p2*p1*(rep1+rep2-vHi) +
		p2*p2*(rep2-vHi)
}
