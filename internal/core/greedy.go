package core

import (
	"math"

	"dynalloc/internal/record"
)

// GreedyBucketing implements Algorithm 1 of the paper. Given the sorted
// record range [lo, hi] it scans every candidate break point i, evaluates the
// expected resource waste of the two-bucket configuration {[lo,i], [i+1,hi]}
// (with i == hi encoding "keep a single bucket"), keeps the minimizing break,
// and recurses into both halves. Every range statistic is served from the
// record list's prefix sums, so each cost evaluation is O(1) and each scan is
// O(hi-lo).
type GreedyBucketing struct{}

// Name implements Algorithm.
func (GreedyBucketing) Name() string { return "greedy" }

// Partition implements Algorithm. The output buffer lives in the scratch,
// so a warm Partition is allocation-free.
func (GreedyBucketing) Partition(l *record.List, s *Scratch) []int {
	n := l.Len()
	if n == 0 {
		return nil
	}
	if s == nil {
		s = &Scratch{}
	}
	if cap(s.best) < 8 {
		s.best = make([]int, 0, 8)
	}
	s.best = greedySplit(l.View(), 0, n-1, s.best[:0])
	return s.best
}

// greedySplit appends the bucket end indices for the sorted range [lo, hi]
// to out and returns the extended slice. The candidate sweep runs directly
// over the snapshot's prefix-sum slices with the range-invariant terms
// (the range's prefix bases and the right bucket's representative) hoisted
// out of the loop; the per-candidate arithmetic is exactly greedyCost's.
func greedySplit(v record.View, lo, hi int, out []int) []int {
	if lo == hi {
		return append(out, hi)
	}
	pSig, pVS := v.PrefixSig, v.PrefixValSig
	sigLo, vsLo := pSig[lo], pVS[lo]
	sigHi, vsHi := pSig[hi+1], pVS[hi+1]
	rep2 := v.Sorted[hi].Value
	minCost := math.Inf(1)
	breakIdx := hi
	for i := lo; i < hi; i++ {
		s1 := pSig[i+1] - sigLo
		s2 := sigHi - pSig[i+1]
		total := s1 + s2
		if total <= 0 {
			continue // +Inf cost can never beat the running minimum
		}
		p1 := s1 / total
		p2 := s2 / total
		rep1 := v.Sorted[i].Value
		var vLo, vHi float64
		if s1 != 0 {
			vLo = (pVS[i+1] - vsLo) / s1
		}
		if s2 != 0 {
			vHi = (vsHi - pVS[i+1]) / s2
		}
		cost := p1*p1*(rep1-vLo) +
			p1*p2*(rep2-vLo) +
			p2*p1*(rep1+rep2-vHi) +
			p2*p2*(rep2-vHi)
		if cost < minCost {
			minCost = cost
			breakIdx = i
		}
	}
	// i == hi evaluates the single-bucket configuration last, exactly as the
	// uniform sweep did: a strict < keeps earlier break points on ties.
	if singleCost := rep2 - v.WeightedMean(lo, hi); singleCost < minCost {
		breakIdx = hi
	}
	if breakIdx == hi {
		// A single bucket over [lo, hi] yields the minimum expected waste.
		return append(out, hi)
	}
	out = greedySplit(v, lo, breakIdx, out)
	out = greedySplit(v, breakIdx+1, hi, out)
	return out
}

// greedyCost is compute_greedy_cost of Algorithm 1: the expected resource
// waste of the next task under the two-bucket configuration obtained by
// breaking the sorted range [lo, hi] after index i. The four cases of
// Section IV-B are:
//
//	task in B1, choose B1: p1^2 * (rep1 - v_lo)
//	task in B1, choose B2: p1*p2 * (rep2 - v_lo)
//	task in B2, choose B1: p2*p1 * (rep1 + rep2 - v_hi)   (failed, retried)
//	task in B2, choose B2: p2^2 * (rep2 - v_hi)
//
// where v_lo and v_hi are the significance-weighted mean values of the
// respective buckets. i == hi evaluates the single-bucket configuration,
// whose expected waste is rep - v_mean. greedySplit inlines this arithmetic
// with the range invariants hoisted; this form is the reference the tests
// check against.
func greedyCost(v record.View, lo, i, hi int) float64 {
	if i == hi {
		return v.Value(hi) - v.WeightedMean(lo, hi)
	}
	s1 := v.SigSum(lo, i)
	s2 := v.SigSum(i+1, hi)
	total := s1 + s2
	if total <= 0 {
		return math.Inf(1)
	}
	p1 := s1 / total
	p2 := s2 / total
	rep1 := v.Value(i)
	rep2 := v.Value(hi)
	vLo := v.WeightedMean(lo, i)
	vHi := v.WeightedMean(i+1, hi)
	return p1*p1*(rep1-vLo) +
		p1*p2*(rep2-vLo) +
		p2*p1*(rep1+rep2-vHi) +
		p2*p2*(rep2-vHi)
}
