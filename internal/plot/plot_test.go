package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	c := BarChart{
		Title: "AWE",
		Bars: []Bar{
			{Label: "whole-machine", Value: 12.1},
			{Label: "exhaustive", Value: 65.8},
		},
		Width: 20,
		Max:   100,
		Unit:  "%",
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "12.1%") || !strings.Contains(lines[2], "65.8%") {
		t.Errorf("values missing:\n%s", out)
	}
	// Bar lengths proportional: 12.1/100*20 ≈ 2, 65.8/100*20 ≈ 13.
	if strings.Count(lines[1], "#") != 2 {
		t.Errorf("short bar = %d hashes", strings.Count(lines[1], "#"))
	}
	if strings.Count(lines[2], "#") != 13 {
		t.Errorf("long bar = %d hashes", strings.Count(lines[2], "#"))
	}
}

func TestBarChartDefaultsAndClamping(t *testing.T) {
	c := BarChart{Bars: []Bar{{Label: "a", Value: -5}, {Label: "b", Value: 10}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.Count(lines[0], "#") != 0 {
		t.Error("negative value should render as empty bar")
	}
	if strings.Count(lines[1], "#") != 40 {
		t.Error("max value should fill the default width")
	}
	// All-zero chart must not divide by zero.
	z := BarChart{Bars: []Bar{{Label: "z", Value: 0}}}
	if err := z.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestStripShowsPhases(t *testing.T) {
	// A phased series: low plateau then high plateau. The first half of
	// the strip should mark the bottom row, the second half the top row.
	var values []float64
	for i := 0; i < 50; i++ {
		values = append(values, 100)
	}
	for i := 0; i < 50; i++ {
		values = append(values, 900)
	}
	s := Strip{Title: "phases", Values: values, Height: 4, Width: 10}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	top := lines[1]    // first grid row (high values)
	bottom := lines[4] // last grid row (low values)
	if !strings.Contains(top[10:], "*") {
		t.Errorf("top row empty: %q", top)
	}
	if !strings.Contains(bottom[:15], "*") {
		t.Errorf("bottom row empty: %q", bottom)
	}
	if !strings.Contains(lines[0], "phases") {
		t.Error("title missing")
	}
	if !strings.Contains(lines[len(lines)-1], "100 tasks") {
		t.Errorf("axis annotation missing: %q", lines[len(lines)-1])
	}
}

func TestStripEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	if err := (Strip{Title: "empty"}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty series") {
		t.Error("empty series not reported")
	}
	buf.Reset()
	// Constant series: must not divide by zero.
	if err := (Strip{Values: []float64{5, 5, 5}}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Fewer values than columns.
	buf.Reset()
	if err := (Strip{Values: []float64{1, 2, 3}, Width: 50}).Render(&buf); err != nil {
		t.Fatal(err)
	}
}
