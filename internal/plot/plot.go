// Package plot renders the evaluation's figures as terminal graphics:
// horizontal bar charts for the AWE and waste comparisons (Figures 5/6) and
// compact scatter strips for the consumption series (Figures 2/4). Pure
// text output, suitable for logs and CI.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters, one per
// line, with the numeric value appended. Max is the full-scale value; zero
// means the largest bar.
type BarChart struct {
	Title  string
	Bars   []Bar
	Width  int     // bar area width in characters (default 40)
	Max    float64 // full scale (default: max value)
	Unit   string  // appended to the printed value
	Digits int     // decimal places for the value (default 1)
}

// Render writes the chart.
func (c BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	digits := c.Digits
	if digits == 0 {
		digits = 1
	}
	max := c.Max
	if max <= 0 {
		for _, b := range c.Bars {
			max = math.Max(max, b.Value)
		}
	}
	if max <= 0 {
		max = 1
	}
	labelW := 0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := int(math.Round(b.Value / max * float64(width)))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.*f%s\n",
			labelW, b.Label,
			strings.Repeat("#", n), strings.Repeat(" ", width-n),
			digits, b.Value, c.Unit)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Strip renders a value series as a fixed-height character strip: each
// column is one (or more) samples, with the row chosen by the sample's
// magnitude. It is the terminal rendition of the Figure 2/4 scatter plots,
// showing clusters and phase changes at a glance.
type Strip struct {
	Title  string
	Values []float64
	Height int // rows (default 8)
	Width  int // columns (default 72); values are downsampled to fit
}

// Render writes the strip with a max/min scale annotation.
func (s Strip) Render(w io.Writer) error {
	height := s.Height
	if height <= 0 {
		height = 8
	}
	width := s.Width
	if width <= 0 {
		width = 72
	}
	if len(s.Values) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(empty series)\n", s.Title)
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.Values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	// Downsample into columns; each column shows every row any of its
	// samples lands in, so bimodal columns show two marks.
	cols := width
	if len(s.Values) < cols {
		cols = len(s.Values)
	}
	grid := make([][]bool, height)
	for r := range grid {
		grid[r] = make([]bool, cols)
	}
	for i, v := range s.Values {
		col := i * cols / len(s.Values)
		row := int((v - lo) / (hi - lo) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[height-1-row][col] = true
	}
	var sb strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&sb, "%s\n", s.Title)
	}
	for r, rowCells := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.4g", hi)
		case height - 1:
			label = fmt.Sprintf("%8.4g", lo)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		for _, on := range rowCells {
			if on {
				sb.WriteByte('*')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8s +%s> task order (%d tasks)\n", "", strings.Repeat("-", cols), len(s.Values))
	_, err := io.WriteString(w, sb.String())
	return err
}
