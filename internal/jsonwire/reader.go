package jsonwire

import (
	"bytes"
	"io"
)

// Reader reads newline-delimited frame lines from a connection into a
// reused, grow-on-demand buffer: a frame larger than the current buffer
// doubles it rather than killing the connection (unlike a default
// bufio.Scanner, whose 64 KiB token cap turns a large frame into an opaque
// error). Its Buffered method lets a server flush coalesced replies exactly
// when it is about to block for more input.
type Reader struct {
	r       io.Reader
	buf     []byte
	start   int // unconsumed window start
	end     int // unconsumed window end
	scanned int // bytes of the window already searched for '\n'
}

// NewReader wraps r with a 4 KiB initial buffer.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, 4096)}
}

// Next returns the next non-blank line without its newline. Whitespace-only
// lines are skipped (a stream decoder would treat newlines as inter-frame
// whitespace); a final unterminated line at EOF is returned as a frame. The
// returned slice aliases the reader's buffer and is valid only until the
// next call.
func (fr *Reader) Next() ([]byte, error) {
	for {
		window := fr.buf[fr.start:fr.end]
		if i := bytes.IndexByte(window[fr.scanned:], '\n'); i >= 0 {
			line := window[:fr.scanned+i]
			fr.start += fr.scanned + i + 1
			fr.scanned = 0
			if isBlank(line) {
				continue
			}
			return line, nil
		}
		fr.scanned = len(window)
		if err := fr.fill(); err != nil {
			if err == io.EOF && fr.end > fr.start && !isBlank(fr.buf[fr.start:fr.end]) {
				line := fr.buf[fr.start:fr.end]
				fr.start, fr.scanned = fr.end, 0
				return line, nil
			}
			return nil, err
		}
	}
}

// Buffered reports whether a complete frame line is already in memory, i.e.
// whether Next can return without touching the connection.
func (fr *Reader) Buffered() bool {
	window := fr.buf[fr.start:fr.end]
	if i := bytes.IndexByte(window[fr.scanned:], '\n'); i >= 0 {
		return true
	}
	fr.scanned = len(window)
	return false
}

// fill compacts the window to the front of the buffer, growing it when a
// single frame exceeds the current size, and reads more bytes.
func (fr *Reader) fill() error {
	if fr.start > 0 {
		copy(fr.buf, fr.buf[fr.start:fr.end])
		fr.end -= fr.start
		fr.start = 0
	}
	if fr.end == len(fr.buf) {
		grown := make([]byte, 2*len(fr.buf))
		copy(grown, fr.buf[:fr.end])
		fr.buf = grown
	}
	n, err := fr.r.Read(fr.buf[fr.end:])
	fr.end += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

func isBlank(line []byte) bool {
	for _, c := range line {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}
