// Package jsonwire is the shared hand-rolled JSON wire codec for the repo's
// newline-delimited frame protocols (internal/serve, internal/wq). Both
// protocols are ordinary JSON on the wire but must never pay encoding/json's
// reflection cost on a hot path: frames are encoded by appending into a
// reused buffer and decoded by a hand-written scanner into a reused struct.
//
// The package provides the protocol-independent machinery — string/float/
// vector encoding, the scratch-reusing Decoder, and the grow-on-demand
// line Reader — while each protocol keeps its own frame layout (field order,
// omitempty decisions, fold-match tie-breaks) next to its Frame/Message
// type, pinned byte- and value-compatible with encoding/json by per-protocol
// fuzz targets. Compatibility matters: stock encoding/json peers
// interoperate with both protocols unchanged.
//
// Encoding parity covers field order, omitempty behavior, HTML-escaped
// strings (including U+2028/U+2029 and invalid-UTF-8 replacement), and
// encoding/json's float formatting. Decoding parity covers case-folded field
// matching, last-duplicate-wins, null semantics (scalars unchanged,
// slices/pointers set to nil), fixed-array zero-padding with extra elements
// validated and discarded, and the same nesting-depth limit.
package jsonwire

import (
	"errors"
	"math"
	"strconv"
	"unicode/utf8"

	"dynalloc/internal/resources"
)

// maxInternStrings bounds a Decoder's string intern table so a peer
// streaming unique strings cannot grow it without bound; past the cap new
// strings simply allocate.
const maxInternStrings = 4096

// maxNestingDepth mirrors encoding/json's nesting limit so the decoder
// errors on the same pathological inputs (and cannot recurse unboundedly).
const maxNestingDepth = 10000

// ErrNonFiniteFloat mirrors json.Marshal's refusal to encode NaN or ±Inf.
var ErrNonFiniteFloat = errors.New("jsonwire: unsupported value: non-finite float")

// ---------------------------------------------------------------------------
// Encoding

// AppendFloat appends encoding/json's formatting of v: shortest round-trip
// representation, 'f' form for 1e-6 <= |v| < 1e21 and 'e' form otherwise,
// with a single leading zero trimmed from small negative exponents
// ("1e-09" -> "1e-9").
func AppendFloat(dst []byte, v float64) ([]byte, error) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return dst, ErrNonFiniteFloat
	}
	// Fast path: integral values in the exact-int64 range format as plain
	// digits under shortest-'f' anyway, and AppendInt is much cheaper than
	// the shortest-float search. v != 0 keeps negative zero ("-0") on the
	// slow path.
	if v == math.Trunc(v) && v >= -1e15 && v <= 1e15 && v != 0 {
		return strconv.AppendInt(dst, int64(v), 10), nil
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, v, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// AppendVector appends a resource vector as a JSON array of floats.
func AppendVector(dst []byte, v resources.Vector) ([]byte, error) {
	var err error
	dst = append(dst, '[')
	for i, x := range v {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = AppendFloat(dst, x); err != nil {
			return dst, err
		}
	}
	return append(dst, ']'), nil
}

const hexDigits = "0123456789abcdef"

// htmlSafe[b] reports bytes that pass through unescaped, matching
// encoding/json's htmlSafeSet: printable ASCII minus '"', '\\', '<', '>', '&'.
var htmlSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		t[b] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()

// AppendString replicates encoding/json's HTML-escaping string encoder.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
