package jsonwire

import (
	"bytes"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"dynalloc/internal/resources"
)

// DecodeError marks a malformed frame, as opposed to an I/O error on the
// underlying connection. Protocol servers count these separately and report
// them to the peer before hanging up.
type DecodeError struct{ msg string }

func (e *DecodeError) Error() string { return "jsonwire: decode frame: " + e.msg }

// Decoder parses one newline-delimited JSON document per DecodeObject call,
// reusing all of its scratch (string intern table, string-list backing
// array, unescape buffer) across calls so the steady-state decode path
// allocates nothing. The zero value is ready to use; a Decoder must not be
// shared between goroutines.
//
// Value semantics match json.Unmarshal into a fresh struct: case-folded
// field matching (see FoldEqual), last-duplicate-wins, null leaves scalars
// at their current value and sets slices/pointers to nil, fixed-size vectors
// zero-pad short arrays and validate-then-discard extra elements, and
// unknown fields are skipped after validation.
type Decoder struct {
	data  []byte
	pos   int
	depth int

	strings map[string]string // intern table: hot strings decode alloc-free
	listBuf []string          // backing scratch for Strings fields
	strBuf  []byte            // scratch for unescaping strings
}

// bstr views b as a string without copying. Used only to feed strconv
// parsers, which do not retain their argument; the byte slice is part of the
// decoder's input buffer and outlives the call.
func bstr(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Errf builds a *DecodeError; protocol field callbacks use it for their own
// validation failures so every malformed-frame error is one type.
func (d *Decoder) Errf(format string, args ...any) error {
	return &DecodeError{msg: fmt.Sprintf(format, args...)}
}

// DecodeObject parses line (one JSON document, no trailing newline) as an
// object, invoking field(key) for every key with the decoder positioned on
// the value's first byte. The caller zeroes its target struct first; a bare
// "null" document then leaves it zeroed, as json.Unmarshal would leave a
// fresh struct.
func (d *Decoder) DecodeObject(line []byte, field func(key []byte) error) error {
	d.data, d.pos, d.depth = line, 0, 0
	d.skipWS()
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	var err error
	switch d.data[d.pos] {
	case 'n':
		err = d.literal("null")
	case '{':
		err = d.object(field)
	default:
		err = d.Errf("frame must be a JSON object")
	}
	if err != nil {
		return err
	}
	d.skipWS()
	if d.pos != len(d.data) {
		return d.Errf("trailing data after frame")
	}
	return nil
}

func (d *Decoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

func (d *Decoder) literal(lit string) error {
	if len(d.data)-d.pos < len(lit) || string(d.data[d.pos:d.pos+len(lit)]) != lit {
		return d.Errf("invalid literal at offset %d", d.pos)
	}
	d.pos += len(lit)
	return nil
}

func (d *Decoder) push() error {
	d.depth++
	if d.depth > maxNestingDepth {
		return d.Errf("exceeded max nesting depth")
	}
	return nil
}

// Null consumes a JSON null value if one is next and reports whether it did.
// Field decoders for nested objects use it before dispatching on the value
// shape.
func (d *Decoder) Null() (bool, error) {
	if d.pos >= len(d.data) {
		return false, d.Errf("unexpected end of input")
	}
	if d.data[d.pos] != 'n' {
		return false, nil
	}
	return true, d.literal("null")
}

// Object walks the key/value pairs of the JSON object at the current
// position, invoking field(key) for every value (with the decoder on the
// value's first byte). The value must be an object; callers that accept null
// check Null first.
func (d *Decoder) Object(field func(key []byte) error) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] != '{' {
		return d.Errf("expected object at offset %d", d.pos)
	}
	return d.object(field)
}

// object steps through the key/value pairs of the JSON object at d.pos
// (which the caller has verified is '{'), invoking field(key) for every
// value. It factors the brace/comma/colon walk shared by every frame shape.
func (d *Decoder) object(field func(key []byte) error) error {
	if err := d.push(); err != nil {
		return err
	}
	d.pos++ // '{'
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == '}' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		d.skipWS()
		if d.pos >= len(d.data) || d.data[d.pos] != '"' {
			return d.Errf("expected object key at offset %d", d.pos)
		}
		key, err := d.str()
		if err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) || d.data[d.pos] != ':' {
			return d.Errf("expected ':' at offset %d", d.pos)
		}
		d.pos++
		d.skipWS()
		if err := field(key); err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return d.Errf("unterminated object")
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case '}':
			d.pos++
			d.depth--
			return nil
		default:
			return d.Errf("expected ',' or '}' at offset %d", d.pos)
		}
	}
}

// FoldEqual matches encoding/json's field-name folding, which is defined as
// bytes.EqualFold (ASCII fast path handled there). Protocol field resolvers
// use it for the fold-match tie-break after exact matching fails.
func FoldEqual(key []byte, name string) bool {
	return len(key) == len(name) && bytes.EqualFold(key, []byte(name))
}

// Field decoders. Each is entered with the decoder on the value's first
// byte. JSON null leaves a scalar target unchanged, matching encoding/json.

// String decodes a JSON string into dst, interning the value so repeated
// strings (frame types, category names, resource-kind names) decode
// alloc-free.
func (d *Decoder) String(dst *string) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	if d.data[d.pos] != '"' {
		return d.Errf("expected string at offset %d", d.pos)
	}
	b, err := d.str()
	if err != nil {
		return err
	}
	*dst = d.intern(b)
	return nil
}

// Uint decodes a JSON number into a uint64.
func (d *Decoder) Uint(dst *uint64) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(bstr(tok), 10, 64)
	if err != nil {
		return d.Errf("cannot decode number %s as uint64", tok)
	}
	*dst = v
	return nil
}

// Int decodes a JSON number into an int.
func (d *Decoder) Int(dst *int) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(bstr(tok), 10, strconv.IntSize)
	if err != nil {
		return d.Errf("cannot decode number %s as int", tok)
	}
	*dst = int(v)
	return nil
}

// Int64 decodes a JSON number into an int64.
func (d *Decoder) Int64(dst *int64) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(bstr(tok), 10, 64)
	if err != nil {
		return d.Errf("cannot decode number %s as int64", tok)
	}
	*dst = v
	return nil
}

// Float decodes a JSON number into a float64.
func (d *Decoder) Float(dst *float64) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	if v, ok := fastParseFloat(tok); ok {
		*dst = v
		return nil
	}
	v, err := strconv.ParseFloat(bstr(tok), 64)
	if err != nil {
		return d.Errf("cannot decode number %s as float64", tok)
	}
	*dst = v
	return nil
}

// fastParseFloat converts a plain-integer token of at most 15 digits (exact
// in float64) without strconv's general-path cost. The token has already
// passed scanNumber's JSON syntax check, so any non-digit routes to the slow
// path. A "-0" token returns negative zero, as ParseFloat does.
func fastParseFloat(tok []byte) (float64, bool) {
	i := 0
	neg := false
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	if len(tok)-i == 0 || len(tok)-i > 15 {
		return 0, false
	}
	var n int64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	f := float64(n)
	if neg {
		f = -f
	}
	return f, true
}

// Vector decodes a JSON array into a fixed-size vector with encoding/json's
// array semantics: extra elements are validated but discarded, missing
// elements zero the tail, null leaves the array unchanged.
func (d *Decoder) Vector(v *resources.Vector) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	if d.data[d.pos] != '[' {
		return d.Errf("expected array at offset %d", d.pos)
	}
	if err := d.push(); err != nil {
		return err
	}
	d.pos++
	d.skipWS()
	n := 0
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		d.depth--
		for ; n < int(resources.NumKinds); n++ {
			v[n] = 0
		}
		return nil
	}
	for {
		d.skipWS()
		if n < int(resources.NumKinds) {
			if err := d.Float(&v[n]); err != nil {
				return err
			}
		} else if err := d.Skip(); err != nil {
			return err
		}
		n++
		d.skipWS()
		if d.pos >= len(d.data) {
			return d.Errf("unterminated array")
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			d.depth--
			for ; n < int(resources.NumKinds); n++ {
				v[n] = 0
			}
			return nil
		default:
			return d.Errf("expected ',' or ']' at offset %d", d.pos)
		}
	}
}

// Strings decodes a JSON array of strings into the decoder's reused backing
// array (null sets *dst to nil, matching json.Unmarshal's slice semantics).
// The elements are interned, so steady-state decodes are alloc-free. The
// assigned slice is valid only until the next decode; callers that retain
// the frame copy it.
func (d *Decoder) Strings(dst *[]string) error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if d.data[d.pos] != '[' {
		return d.Errf("expected array at offset %d", d.pos)
	}
	if err := d.push(); err != nil {
		return err
	}
	d.pos++
	if d.listBuf == nil {
		d.listBuf = make([]string, 0, 4)
	}
	d.listBuf = d.listBuf[:0]
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		d.depth--
		*dst = d.listBuf
		return nil
	}
	for {
		d.skipWS()
		var s string
		if err := d.String(&s); err != nil {
			return err
		}
		d.listBuf = append(d.listBuf, s)
		d.skipWS()
		if d.pos >= len(d.data) {
			return d.Errf("unterminated array")
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			d.depth--
			*dst = d.listBuf
			return nil
		default:
			return d.Errf("expected ',' or ']' at offset %d", d.pos)
		}
	}
}

// Skip validates and steps over one JSON value of any shape.
func (d *Decoder) Skip() error {
	if d.pos >= len(d.data) {
		return d.Errf("unexpected end of input")
	}
	switch c := d.data[d.pos]; {
	case c == '{':
		return d.object(func([]byte) error { return d.Skip() })
	case c == '[':
		if err := d.push(); err != nil {
			return err
		}
		d.pos++
		d.skipWS()
		if d.pos < len(d.data) && d.data[d.pos] == ']' {
			d.pos++
			d.depth--
			return nil
		}
		for {
			d.skipWS()
			if err := d.Skip(); err != nil {
				return err
			}
			d.skipWS()
			if d.pos >= len(d.data) {
				return d.Errf("unterminated array")
			}
			switch d.data[d.pos] {
			case ',':
				d.pos++
			case ']':
				d.pos++
				d.depth--
				return nil
			default:
				return d.Errf("expected ',' or ']' at offset %d", d.pos)
			}
		}
	case c == '"':
		_, err := d.scanString()
		return err
	case c == 't':
		return d.literal("true")
	case c == 'f':
		return d.literal("false")
	case c == 'n':
		return d.literal("null")
	default:
		_, err := d.scanNumber()
		return err
	}
}

// scanNumber validates JSON number grammar (stricter than strconv: no hex,
// no leading '+', '.', or zero-padding) and returns the token.
func (d *Decoder) scanNumber() ([]byte, error) {
	start := d.pos
	if d.pos < len(d.data) && d.data[d.pos] == '-' {
		d.pos++
	}
	switch {
	case d.pos >= len(d.data):
		return nil, d.Errf("invalid number at offset %d", start)
	case d.data[d.pos] == '0':
		d.pos++
	case d.data[d.pos] >= '1' && d.data[d.pos] <= '9':
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	default:
		return nil, d.Errf("invalid number at offset %d", start)
	}
	if d.pos < len(d.data) && d.data[d.pos] == '.' {
		d.pos++
		if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
			return nil, d.Errf("invalid number at offset %d", start)
		}
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	}
	if d.pos < len(d.data) && (d.data[d.pos] == 'e' || d.data[d.pos] == 'E') {
		d.pos++
		if d.pos < len(d.data) && (d.data[d.pos] == '+' || d.data[d.pos] == '-') {
			d.pos++
		}
		if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
			return nil, d.Errf("invalid number at offset %d", start)
		}
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	}
	return d.data[start:d.pos], nil
}

// scanString validates the string at d.pos and returns the raw (still
// escaped) span between the quotes, advancing past the closing quote.
func (d *Decoder) scanString() ([]byte, error) {
	start := d.pos + 1 // past opening '"'
	i := start
	for {
		if i >= len(d.data) {
			return nil, d.Errf("unterminated string")
		}
		switch c := d.data[i]; {
		case c == '"':
			d.pos = i + 1
			return d.data[start:i], nil
		case c == '\\':
			if i+1 >= len(d.data) {
				return nil, d.Errf("unterminated string escape")
			}
			switch d.data[i+1] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i += 2
			case 'u':
				if i+6 > len(d.data) || !isHex4(d.data[i+2:i+6]) {
					return nil, d.Errf("invalid \\u escape at offset %d", i)
				}
				i += 6
			default:
				return nil, d.Errf("invalid escape character at offset %d", i)
			}
		case c < 0x20:
			return nil, d.Errf("control character in string at offset %d", i)
		default:
			i++
		}
	}
}

func isHex4(b []byte) bool {
	for _, c := range b[:4] {
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// str scans and unescapes the string at d.pos. The returned bytes alias
// either the input line or d.strBuf and are valid only until the next call.
func (d *Decoder) str() ([]byte, error) {
	raw, err := d.scanString()
	if err != nil {
		return nil, err
	}
	// Fast path: no escapes and (for non-ASCII content) valid UTF-8 means the
	// decoded value is the raw span itself.
	if bytes.IndexByte(raw, '\\') < 0 {
		ascii := true
		for _, c := range raw {
			if c >= utf8.RuneSelf {
				ascii = false
				break
			}
		}
		if ascii || utf8.Valid(raw) {
			return raw, nil
		}
	}
	return d.unescape(raw), nil
}

// unescape rewrites a validated raw string span into d.strBuf with
// json.Unmarshal's unquote semantics: standard escapes, \uXXXX with
// surrogate-pair combination (lone surrogates become U+FFFD), and invalid
// UTF-8 bytes replaced by U+FFFD.
func (d *Decoder) unescape(raw []byte) []byte {
	out := d.strBuf[:0]
	for i := 0; i < len(raw); {
		switch c := raw[i]; {
		case c == '\\':
			switch raw[i+1] {
			case '"', '\\', '/':
				out = append(out, raw[i+1])
				i += 2
			case 'b':
				out = append(out, '\b')
				i += 2
			case 'f':
				out = append(out, '\f')
				i += 2
			case 'n':
				out = append(out, '\n')
				i += 2
			case 'r':
				out = append(out, '\r')
				i += 2
			case 't':
				out = append(out, '\t')
				i += 2
			case 'u':
				r := rune(hex4(raw[i+2 : i+6]))
				i += 6
				if utf16.IsSurrogate(r) {
					var r2 rune = -1
					if i+6 <= len(raw) && raw[i] == '\\' && raw[i+1] == 'u' && isHex4(raw[i+2:i+6]) {
						r2 = rune(hex4(raw[i+2 : i+6]))
					}
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						out = utf8.AppendRune(out, dec)
						i += 6
						break
					}
					r = utf8.RuneError
				}
				out = utf8.AppendRune(out, r)
			}
		case c < utf8.RuneSelf:
			out = append(out, c)
			i++
		default:
			r, size := utf8.DecodeRune(raw[i:])
			if r == utf8.RuneError && size == 1 {
				out = utf8.AppendRune(out, utf8.RuneError)
				i++
				break
			}
			out = append(out, raw[i:i+size]...)
			i += size
		}
	}
	d.strBuf = out
	return out
}

func hex4(b []byte) uint32 {
	var v uint32
	for _, c := range b[:4] {
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | uint32(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		default: // 'A'..'F', validated by isHex4
			v = v<<4 | uint32(c-'A'+10)
		}
	}
	return v
}

// intern returns b as a string, reusing a previously allocated copy when the
// same bytes have been seen on this decoder. Frame types, tenant and
// category names, and resource-kind names all repeat, so the steady-state
// decode path performs no string allocation.
func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.strings[string(b)]; ok { // no-alloc map lookup
		return s
	}
	s := string(b)
	if d.strings == nil {
		d.strings = make(map[string]string, 16)
	}
	if len(d.strings) < maxInternStrings {
		d.strings[s] = s
	}
	return s
}
