package dist

import (
	"math"
	"testing"
)

const sampleN = 20000

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func draw(t *testing.T, s Sampler, seed uint64, n int) []float64 {
	t.Helper()
	r := NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(r)
	}
	return out
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestConstant(t *testing.T) {
	xs := draw(t, Constant{V: 306}, 1, 100)
	for _, x := range xs {
		if x != 306 {
			t.Fatalf("constant sampler returned %v", x)
		}
	}
	if (Constant{V: 306}).Name() == "" {
		t.Error("empty name")
	}
}

func TestUniformRange(t *testing.T) {
	u := Uniform{Lo: 2000, Hi: 12000}
	xs := draw(t, u, 2, sampleN)
	for _, x := range xs {
		if x < 2000 || x >= 12000 {
			t.Fatalf("uniform draw %v out of range", x)
		}
	}
	m := mean(xs)
	if math.Abs(m-7000) > 100 {
		t.Errorf("uniform mean = %v, want ~7000", m)
	}
}

func TestNormalMoments(t *testing.T) {
	n := Normal{Mean: 8000, Stddev: 1500, Min: 0}
	xs := draw(t, n, 3, sampleN)
	m := mean(xs)
	if math.Abs(m-8000) > 50 {
		t.Errorf("normal mean = %v, want ~8000", m)
	}
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	sd := math.Sqrt(v / float64(len(xs)))
	if math.Abs(sd-1500) > 60 {
		t.Errorf("normal stddev = %v, want ~1500", sd)
	}
}

func TestNormalFloor(t *testing.T) {
	n := Normal{Mean: 10, Stddev: 100, Min: 5}
	for _, x := range draw(t, n, 4, sampleN) {
		if x < 5 {
			t.Fatalf("normal draw %v below floor", x)
		}
	}
}

func TestExponentialOffsetAndCap(t *testing.T) {
	e := Exponential{Offset: 2000, Mean: 3000, Cap: 50000}
	xs := draw(t, e, 5, sampleN)
	for _, x := range xs {
		if x < 2000 || x > 50000 {
			t.Fatalf("exponential draw %v outside [offset, cap]", x)
		}
	}
	m := mean(xs)
	if math.Abs(m-5000) > 150 {
		t.Errorf("exponential mean = %v, want ~5000", m)
	}
}

func TestLogNormal(t *testing.T) {
	l := LogNormal{Mu: math.Log(100), Sigma: 0.5, Cap: 10000}
	xs := draw(t, l, 6, sampleN)
	for _, x := range xs {
		if x <= 0 || x > 10000 {
			t.Fatalf("lognormal draw %v out of range", x)
		}
	}
	// Median of a lognormal is exp(mu) = 100; check via sample median proxy.
	below := 0
	for _, x := range xs {
		if x < 100 {
			below++
		}
	}
	frac := float64(below) / float64(len(xs))
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("lognormal median fraction = %v, want ~0.5", frac)
	}
}

func TestMixtureBimodal(t *testing.T) {
	m := Mixture{Components: []Component{
		{Weight: 1, Sampler: Normal{Mean: 3000, Stddev: 100}},
		{Weight: 1, Sampler: Normal{Mean: 9000, Stddev: 100}},
	}}
	xs := draw(t, m, 7, sampleN)
	lo, hi := 0, 0
	for _, x := range xs {
		switch {
		case x < 5000:
			lo++
		default:
			hi++
		}
	}
	fl := float64(lo) / float64(len(xs))
	if math.Abs(fl-0.5) > 0.02 {
		t.Errorf("bimodal low-mode fraction = %v, want ~0.5", fl)
	}
	if lo == 0 || hi == 0 {
		t.Error("bimodal sampler collapsed to one mode")
	}
}

func TestMixtureEmptyAndZeroWeight(t *testing.T) {
	r := NewRand(8)
	if (Mixture{}).Sample(r) != 0 {
		t.Error("empty mixture should sample 0")
	}
	z := Mixture{Components: []Component{{Weight: 0, Sampler: Constant{V: 5}}}}
	if z.Sample(r) != 0 {
		t.Error("zero-weight mixture should sample 0")
	}
}

func TestOutlier(t *testing.T) {
	o := Outlier{Base: Constant{V: 1}, Tail: Constant{V: 3}, P: 0.1}
	xs := draw(t, o, 9, sampleN)
	tail := 0
	for _, x := range xs {
		if x == 3 {
			tail++
		} else if x != 1 {
			t.Fatalf("unexpected draw %v", x)
		}
	}
	frac := float64(tail) / float64(len(xs))
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("outlier fraction = %v, want ~0.1", frac)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Base: Constant{V: 8000}, Factor: 1.0 / 4000, Min: 0.5}
	if got := s.Sample(NewRand(10)); got != 2 {
		t.Errorf("scaled draw = %v, want 2", got)
	}
	s2 := Scaled{Base: Constant{V: 100}, Factor: 1.0 / 4000, Min: 0.5}
	if got := s2.Sample(NewRand(10)); got != 0.5 {
		t.Errorf("scaled floor = %v, want 0.5", got)
	}
}

func TestPhasedBoundaries(t *testing.T) {
	p := Phased{
		Phases: []Sampler{
			Constant{V: 1},
			Constant{V: 2},
			Constant{V: 3},
		},
		Boundaries: []int{100, 200},
	}
	r := NewRand(11)
	checks := map[int]float64{0: 1, 99: 1, 100: 2, 199: 2, 200: 3, 999: 3}
	for idx, want := range checks {
		if got := p.SampleAt(idx, r); got != want {
			t.Errorf("SampleAt(%d) = %v, want %v", idx, got, want)
		}
	}
	if p.Sample(r) != 1 {
		t.Error("Sample should draw from the first phase")
	}
	if (Phased{}).Sample(r) != 0 {
		t.Error("empty Phased should sample 0")
	}
}

func TestSamplerNames(t *testing.T) {
	samplers := []Sampler{
		Constant{V: 1},
		Uniform{Lo: 0, Hi: 1},
		Normal{Mean: 0, Stddev: 1},
		Exponential{Mean: 1},
		LogNormal{Mu: 0, Sigma: 1},
		Mixture{},
		Outlier{Base: Constant{}, Tail: Constant{}, P: 0},
		Scaled{Base: Constant{}, Factor: 1},
		Phased{},
	}
	for _, s := range samplers {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
