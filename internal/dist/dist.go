// Package dist provides the seeded, deterministic random distributions used
// by the synthetic workload generators: the five distribution families of the
// paper's synthetic workflows (Normal, Uniform, Exponential, Bimodal,
// Phasing Trimodal) plus the auxiliary shapes (log-normal run times,
// constants, mixtures) needed to synthesize the production workloads.
//
// Every sampler draws from an explicit *rand.Rand so that entire experiments
// are reproducible from a single seed.
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// NewRand returns a deterministic generator for the given seed. All
// experiment entry points derive their randomness from this constructor so a
// run is fully determined by its seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Sampler produces one value per call. Implementations must be pure
// functions of the provided generator state.
type Sampler interface {
	Sample(r *rand.Rand) float64
	Name() string
}

// Constant always returns V.
type Constant struct{ V float64 }

// Sample implements Sampler.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Name implements Sampler.
func (c Constant) Name() string { return fmt.Sprintf("constant(%g)", c.V) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Name implements Sampler.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Normal samples from a normal distribution with the given mean and standard
// deviation, truncated below at Min (values are re-drawn by clamping, which
// keeps the sampler single-draw and deterministic).
type Normal struct {
	Mean, Stddev float64
	Min          float64 // floor; consumption can never be negative
}

// Sample implements Sampler.
func (n Normal) Sample(r *rand.Rand) float64 {
	v := n.Mean + r.NormFloat64()*n.Stddev
	return math.Max(v, n.Min)
}

// Name implements Sampler.
func (n Normal) Name() string { return fmt.Sprintf("normal(%g,%g)", n.Mean, n.Stddev) }

// Exponential samples Offset + Exp(Mean). Cap, when positive, truncates the
// tail so a pathological draw cannot exceed a worker's capacity.
type Exponential struct {
	Offset, Mean float64
	Cap          float64
}

// Sample implements Sampler.
func (e Exponential) Sample(r *rand.Rand) float64 {
	v := e.Offset + r.ExpFloat64()*e.Mean
	if e.Cap > 0 && v > e.Cap {
		v = e.Cap
	}
	return v
}

// Name implements Sampler.
func (e Exponential) Name() string { return fmt.Sprintf("exponential(%g+%g)", e.Offset, e.Mean) }

// LogNormal samples exp(N(Mu, Sigma)), optionally capped.
type LogNormal struct {
	Mu, Sigma float64
	Cap       float64
}

// Sample implements Sampler.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	v := math.Exp(l.Mu + r.NormFloat64()*l.Sigma)
	if l.Cap > 0 && v > l.Cap {
		v = l.Cap
	}
	return v
}

// Name implements Sampler.
func (l LogNormal) Name() string { return fmt.Sprintf("lognormal(%g,%g)", l.Mu, l.Sigma) }

// Component pairs a sampler with a selection weight for use in a Mixture.
type Component struct {
	Weight  float64
	Sampler Sampler
}

// Mixture selects one component with probability proportional to its weight
// and samples from it. It models the paper's Bimodal synthetic workflow and
// the two-cluster memory behaviour of TopEFT processing tasks.
type Mixture struct {
	Components []Component
}

// Sample implements Sampler.
func (m Mixture) Sample(r *rand.Rand) float64 {
	total := 0.0
	for _, c := range m.Components {
		total += c.Weight
	}
	if total <= 0 || len(m.Components) == 0 {
		return 0
	}
	x := r.Float64() * total
	for _, c := range m.Components {
		x -= c.Weight
		if x < 0 {
			return c.Sampler.Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sampler.Sample(r)
}

// Name implements Sampler.
func (m Mixture) Name() string {
	return fmt.Sprintf("mixture(%d components)", len(m.Components))
}

// Outlier wraps a base sampler and, with probability P, replaces the draw
// with one from the Tail sampler. It models the occasional multi-core
// outliers observed in TopEFT (Section III-B).
type Outlier struct {
	Base Sampler
	Tail Sampler
	P    float64
}

// Sample implements Sampler.
func (o Outlier) Sample(r *rand.Rand) float64 {
	if r.Float64() < o.P {
		return o.Tail.Sample(r)
	}
	return o.Base.Sample(r)
}

// Name implements Sampler.
func (o Outlier) Name() string {
	return fmt.Sprintf("outlier(p=%g, base=%s)", o.P, o.Base.Name())
}

// Scaled multiplies another sampler's draws by Factor. It derives the cores
// series of a synthetic workflow from its memory series, preserving the
// distribution's shape at a different magnitude ("cores have a slightly
// different distribution", Section V-B).
type Scaled struct {
	Base   Sampler
	Factor float64
	Min    float64
}

// Sample implements Sampler.
func (s Scaled) Sample(r *rand.Rand) float64 {
	return math.Max(s.Base.Sample(r)*s.Factor, s.Min)
}

// Name implements Sampler.
func (s Scaled) Name() string { return fmt.Sprintf("scaled(%g*%s)", s.Factor, s.Base.Name()) }

// Phased switches between samplers as a function of the task index, modeling
// the paper's Phasing Trimodal workflow in which the resource distribution
// moves between phases of a workflow run. Boundaries are the first task
// index of each subsequent phase.
type Phased struct {
	Phases     []Sampler
	Boundaries []int // len(Boundaries) == len(Phases)-1, ascending
}

// SampleAt returns a draw for the task with the given submission index.
func (p Phased) SampleAt(index int, r *rand.Rand) float64 {
	phase := 0
	for phase < len(p.Boundaries) && index >= p.Boundaries[phase] {
		phase++
	}
	return p.Phases[phase].Sample(r)
}

// Sample implements Sampler by drawing from the first phase; prefer SampleAt
// for index-aware sampling.
func (p Phased) Sample(r *rand.Rand) float64 {
	if len(p.Phases) == 0 {
		return 0
	}
	return p.Phases[0].Sample(r)
}

// Name implements Sampler.
func (p Phased) Name() string { return fmt.Sprintf("phased(%d phases)", len(p.Phases)) }
