// Package opportunistic models the worker pools the paper's workflows run
// on: opportunistic workers obtained from an HTCondor cluster through many
// small backfill pilot jobs, joining and leaving the pool over time
// (Sections I and V-A; the paper's runs used 20-50 workers depending on
// cluster availability).
//
// A Model produces a deterministic schedule of worker arrivals (and
// lease-bounded lifetimes) from a seed; the simulator turns the schedule
// into worker-join and worker-evict events.
package opportunistic

import (
	"fmt"
	"math"
	"sort"

	"dynalloc/internal/dist"
)

// Arrival describes one worker joining the pool.
type Arrival struct {
	At       float64 // virtual time the worker joins
	Lifetime float64 // seconds until eviction; <= 0 means the worker stays forever
}

// Model generates worker arrival schedules.
type Model interface {
	// Schedule returns the arrivals sorted by time.
	Schedule(seed uint64) []Arrival
	Name() string
}

// Static provisions N identical workers at time zero that never leave —
// the simplest pool, used when isolating allocator behaviour from churn.
type Static struct {
	N int
}

// Schedule implements Model.
func (s Static) Schedule(uint64) []Arrival {
	out := make([]Arrival, s.N)
	return out
}

// Name implements Model.
func (s Static) Name() string { return fmt.Sprintf("static(%d)", s.N) }

// Backfill models batch-system backfilling: Min workers are available
// immediately and further workers trickle in every Interval seconds (with
// jitter) as the batch system finds holes, up to Max workers. Workers do
// not leave. This reproduces the paper's "20 to 50 workers depending on the
// availability of the local HTCondor cluster".
type Backfill struct {
	Min, Max int
	Interval float64 // mean seconds between acquisitions
}

// Schedule implements Model.
func (b Backfill) Schedule(seed uint64) []Arrival {
	r := dist.NewRand(seed)
	out := make([]Arrival, 0, b.Max)
	for i := 0; i < b.Min; i++ {
		out = append(out, Arrival{})
	}
	at := 0.0
	for i := b.Min; i < b.Max; i++ {
		at += b.Interval * (0.5 + r.Float64())
		out = append(out, Arrival{At: at})
	}
	return out
}

// Name implements Model.
func (b Backfill) Name() string {
	return fmt.Sprintf("backfill(%d..%d, %.0fs)", b.Min, b.Max, b.Interval)
}

// Churn models a volatile opportunistic pool (spot instances, preemptible
// backfill slots): Initial workers join at time zero and replacements keep
// arriving with exponential inter-arrival times until Horizon; every worker
// holds an exponentially distributed lease and is evicted when it expires.
type Churn struct {
	Initial       int
	MeanLifetime  float64 // mean worker lease in seconds
	MeanInterval  float64 // mean seconds between replacement arrivals
	Horizon       float64 // stop provisioning new workers after this time
	MinimumLease  float64 // floor on lease durations (default 60 s)
	KeepLastAlive bool    // grant the final arrival an unbounded lease so work always drains
}

// Schedule implements Model.
func (c Churn) Schedule(seed uint64) []Arrival {
	r := dist.NewRand(seed)
	minLease := c.MinimumLease
	if minLease <= 0 {
		minLease = 60
	}
	lease := func() float64 {
		return math.Max(r.ExpFloat64()*c.MeanLifetime, minLease)
	}
	var out []Arrival
	for i := 0; i < c.Initial; i++ {
		out = append(out, Arrival{At: 0, Lifetime: lease()})
	}
	at := 0.0
	for {
		at += r.ExpFloat64() * c.MeanInterval
		if at > c.Horizon {
			break
		}
		out = append(out, Arrival{At: at, Lifetime: lease()})
	}
	if c.KeepLastAlive {
		out = append(out, Arrival{At: c.Horizon, Lifetime: 0})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Name implements Model.
func (c Churn) Name() string {
	return fmt.Sprintf("churn(init=%d, life=%.0fs)", c.Initial, c.MeanLifetime)
}

// Scripted replays a fixed arrival schedule verbatim: the seed is ignored
// and Schedule returns exactly the arrivals it was built with. It is the
// pool model behind trace-driven replay (internal/runlog): a recorded run's
// realized worker arrivals and lease ends become the schedule, so a
// counterfactual re-simulation sees the same churn the original run saw
// instead of sampling fresh churn.
type Scripted struct {
	// Label names the schedule's origin (e.g. the source pool's Name()).
	Label string
	// Arrivals is the schedule, sorted ascending by At. The slice is
	// returned as-is by Schedule; callers must not mutate it afterwards.
	Arrivals []Arrival
}

// Schedule implements Model. The seed is ignored — the whole point of a
// scripted pool is that nothing is resampled.
func (s Scripted) Schedule(uint64) []Arrival { return s.Arrivals }

// Name implements Model.
func (s Scripted) Name() string {
	if s.Label != "" {
		return fmt.Sprintf("scripted(%s, %d workers)", s.Label, len(s.Arrivals))
	}
	return fmt.Sprintf("scripted(%d workers)", len(s.Arrivals))
}

// PaperPool returns the evaluation pool shape of Section V-A: workers
// ramping from 20 up to 50 as the HTCondor cluster makes room.
func PaperPool() Model {
	return Backfill{Min: 20, Max: 50, Interval: 120}
}
