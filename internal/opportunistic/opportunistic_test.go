package opportunistic

import (
	"sort"
	"testing"
)

func sorted(arr []Arrival) bool {
	return sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i].At < arr[j].At })
}

func TestStatic(t *testing.T) {
	s := Static{N: 20}
	arr := s.Schedule(1)
	if len(arr) != 20 {
		t.Fatalf("got %d arrivals", len(arr))
	}
	for _, a := range arr {
		if a.At != 0 || a.Lifetime != 0 {
			t.Fatalf("static arrival = %+v, want immediate and permanent", a)
		}
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestBackfillRampsFromMinToMax(t *testing.T) {
	b := Backfill{Min: 20, Max: 50, Interval: 120}
	arr := b.Schedule(2)
	if len(arr) != 50 {
		t.Fatalf("got %d arrivals, want 50", len(arr))
	}
	immediate := 0
	for _, a := range arr {
		if a.At == 0 {
			immediate++
		}
		if a.Lifetime != 0 {
			t.Fatal("backfill workers should not have leases")
		}
	}
	if immediate != 20 {
		t.Errorf("%d immediate workers, want 20", immediate)
	}
	if !sorted(arr) {
		t.Error("arrivals not sorted")
	}
	// Later arrivals spread out in time.
	if arr[49].At <= arr[20].At {
		t.Error("ramp-up has no temporal spread")
	}
}

func TestBackfillDeterministic(t *testing.T) {
	b := Backfill{Min: 5, Max: 15, Interval: 60}
	a1, a2 := b.Schedule(7), b.Schedule(7)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestChurn(t *testing.T) {
	c := Churn{Initial: 10, MeanLifetime: 1800, MeanInterval: 300, Horizon: 7200}
	arr := c.Schedule(3)
	if len(arr) < 10 {
		t.Fatalf("got %d arrivals", len(arr))
	}
	if !sorted(arr) {
		t.Error("arrivals not sorted")
	}
	for _, a := range arr {
		if a.Lifetime < 60 {
			t.Fatalf("lease %v below the 60 s floor", a.Lifetime)
		}
		if a.At > c.Horizon {
			t.Fatalf("arrival at %v beyond horizon", a.At)
		}
	}
	replacements := 0
	for _, a := range arr {
		if a.At > 0 {
			replacements++
		}
	}
	if replacements == 0 {
		t.Error("no replacement arrivals within the horizon")
	}
}

func TestChurnKeepLastAlive(t *testing.T) {
	c := Churn{Initial: 2, MeanLifetime: 600, MeanInterval: 600, Horizon: 3600, KeepLastAlive: true}
	arr := c.Schedule(4)
	last := arr[len(arr)-1]
	if last.Lifetime != 0 {
		t.Errorf("last arrival lease = %v, want permanent", last.Lifetime)
	}
}

func TestPaperPool(t *testing.T) {
	arr := PaperPool().Schedule(5)
	if len(arr) != 50 {
		t.Errorf("paper pool has %d workers, want 50", len(arr))
	}
	immediate := 0
	for _, a := range arr {
		if a.At == 0 {
			immediate++
		}
	}
	if immediate != 20 {
		t.Errorf("paper pool starts with %d workers, want 20", immediate)
	}
}
