// Package runlog reads and writes run logs: a JSON-lines record of one
// workflow execution — which algorithm allocated it, every attempt of every
// task, and the resulting metrics. The paper's artifact is a collection of
// such logs ("All logs are available at ..."); this package makes the
// reproduction's runs equally inspectable and re-analyzable: a log can be
// replayed into a metrics accumulator without re-running the simulation.
//
// Format: the first line is a header object, followed by one object per
// task outcome, terminated by a footer carrying the summary. Every line is
// independent JSON, so logs stream and concatenate naturally.
package runlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

// Header identifies a run.
type Header struct {
	Kind      string `json:"kind"` // always "header"
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Seed      uint64 `json:"seed"`
	Tasks     int    `json:"tasks"`
}

// AttemptRecord is one execution attempt in the log.
type AttemptRecord struct {
	Cores    float64 `json:"cores"`
	MemoryMB float64 `json:"memory_mb"`
	DiskMB   float64 `json:"disk_mb"`
	Duration float64 `json:"duration_s"`
	Status   string  `json:"status"`
}

// TaskRecord is one task outcome in the log.
type TaskRecord struct {
	Kind     string          `json:"kind"` // always "task"
	ID       int             `json:"id"`
	Category string          `json:"category"`
	Cores    float64         `json:"cores"`
	MemoryMB float64         `json:"memory_mb"`
	DiskMB   float64         `json:"disk_mb"`
	Runtime  float64         `json:"runtime_s"`
	Attempts []AttemptRecord `json:"attempts"`
}

// Footer carries the run summary.
type Footer struct {
	Kind    string          `json:"kind"` // always "footer"
	Summary metrics.Summary `json:"summary"`
}

// EventRecord is one lifecycle event emitted by the live engine (dispatch,
// result, eviction, requeue, heartbeat timeout, drain, ...). Event lines are
// interleaved with the header and task records, so a live run's log carries
// both the replayable outcomes and a timeline of what the manager did.
// WorkerID is -1 when the event is not tied to a worker; TaskID is -1 when
// it is not tied to a task.
type EventRecord struct {
	Kind     string `json:"kind"` // always "event"
	TimeNS   int64  `json:"t_ns"` // wall-clock timestamp, unix nanoseconds
	Event    string `json:"event"`
	TaskID   int    `json:"task_id"`
	WorkerID int    `json:"worker_id"`
	Status   string `json:"status,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Writer incrementally emits a run log: the header is written on creation,
// Event appends lifecycle event lines as they happen, and Finish writes the
// task outcomes and the footer. Event is safe for concurrent use, which is
// what a live manager's tracer needs.
type Writer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	events int
}

// NewWriter starts a log with the given header. The caller sets hdr.Tasks to
// the expected task count when known; Write (the one-shot path) fills it from
// the result.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr.Kind = "header"
	if err := enc.Encode(hdr); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, enc: enc}, nil
}

// Event appends one lifecycle event line.
func (w *Writer) Event(ev EventRecord) error {
	ev.Kind = "event"
	w.mu.Lock()
	defer w.mu.Unlock()
	w.events++
	return w.enc.Encode(ev)
}

// Events returns the number of event lines written so far.
func (w *Writer) Events() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events
}

// Finish writes the task outcomes and footer and flushes the log.
func (w *Writer) Finish(res *sim.Result) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, o := range res.Outcomes {
		tr := TaskRecord{
			Kind:     "task",
			ID:       o.TaskID,
			Category: o.Category,
			Cores:    o.Peak.Get(resources.Cores),
			MemoryMB: o.Peak.Get(resources.Memory),
			DiskMB:   o.Peak.Get(resources.Disk),
			Runtime:  o.Runtime,
		}
		for _, a := range o.Attempts {
			tr.Attempts = append(tr.Attempts, AttemptRecord{
				Cores:    a.Alloc.Get(resources.Cores),
				MemoryMB: a.Alloc.Get(resources.Memory),
				DiskMB:   a.Alloc.Get(resources.Disk),
				Duration: a.Duration,
				Status:   a.Status.String(),
			})
		}
		if err := w.enc.Encode(tr); err != nil {
			return err
		}
	}
	if err := w.enc.Encode(Footer{Kind: "footer", Summary: res.Acc.Summarize()}); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Write serializes a run result as a log in one shot (no event lines).
func Write(w io.Writer, hdr Header, res *sim.Result) error {
	hdr.Tasks = len(res.Outcomes)
	lw, err := NewWriter(w, hdr)
	if err != nil {
		return err
	}
	return lw.Finish(res)
}

// Log is a parsed run log.
type Log struct {
	Header   Header
	Outcomes []metrics.TaskOutcome
	Events   []EventRecord // lifecycle events, in log order (live runs only)
	Footer   *Footer       // nil when the log was truncated before the footer
}

// Read parses a log. A missing footer is tolerated (truncated logs can
// still be analyzed); any malformed line is an error.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var log Log
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("runlog: line %d: %w", line, err)
		}
		switch probe.Kind {
		case "header":
			if err := json.Unmarshal(sc.Bytes(), &log.Header); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			sawHeader = true
		case "task":
			var tr TaskRecord
			if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			log.Outcomes = append(log.Outcomes, tr.outcome())
		case "event":
			var ev EventRecord
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			log.Events = append(log.Events, ev)
		case "footer":
			var f Footer
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			log.Footer = &f
		default:
			return nil, fmt.Errorf("runlog: line %d: unknown kind %q", line, probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("runlog: missing header")
	}
	return &log, nil
}

func (tr TaskRecord) outcome() metrics.TaskOutcome {
	o := metrics.TaskOutcome{
		TaskID:   tr.ID,
		Category: tr.Category,
		Peak:     resources.New(tr.Cores, tr.MemoryMB, tr.DiskMB, tr.Runtime),
		Runtime:  tr.Runtime,
	}
	for _, a := range tr.Attempts {
		status := metrics.Success
		switch a.Status {
		case metrics.Exhausted.String():
			status = metrics.Exhausted
		case metrics.Evicted.String():
			status = metrics.Evicted
		case metrics.Failed.String():
			status = metrics.Failed
		}
		o.Attempts = append(o.Attempts, metrics.Attempt{
			Alloc:    resources.New(a.Cores, a.MemoryMB, a.DiskMB, resources.Unlimited),
			Duration: a.Duration,
			Status:   status,
		})
	}
	return o
}

// Replay folds a parsed log into a fresh accumulator, recomputing every
// metric from the raw attempts (rather than trusting the footer).
func Replay(log *Log) *metrics.Accumulator {
	var acc metrics.Accumulator
	for _, o := range log.Outcomes {
		acc.Add(o)
	}
	return &acc
}

// ReplayByCategory folds a parsed log into one accumulator per task
// category, for per-category efficiency breakdowns.
func ReplayByCategory(log *Log) map[string]*metrics.Accumulator {
	out := make(map[string]*metrics.Accumulator)
	for _, o := range log.Outcomes {
		acc, ok := out[o.Category]
		if !ok {
			acc = &metrics.Accumulator{}
			out[o.Category] = acc
		}
		acc.Add(o)
	}
	return out
}
