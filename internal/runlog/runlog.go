// Package runlog reads and writes run logs: a JSON-lines record of one
// workflow execution — which algorithm allocated it, every attempt of every
// task, and the resulting metrics. The paper's artifact is a collection of
// such logs ("All logs are available at ..."); this package makes the
// reproduction's runs equally inspectable and re-analyzable: a log can be
// replayed into a metrics accumulator without re-running the simulation
// (Replay), or fed back into the simulator as a workload for counterfactual
// "what if another allocator had run this trace?" experiments (TraceSource,
// Resimulate).
//
// Format: the first line is a header object, followed by one object per
// trace record (task outcomes, worker arrivals, lifecycle events),
// terminated by a footer carrying the summary. Every line is independent
// JSON, so logs stream and concatenate naturally.
//
// Versioning: the header's "format" field declares the writer's format
// version (FormatVersion; absent means the original v1 layout). A reader
// encountering a record kind it does not know applies the header's version:
// kinds inside a format the reader fully knows are corruption (an error),
// kinds from a declared-newer format are skipped and counted in
// Log.UnknownKinds — so growing the format never breaks old readers again.
package runlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

// FormatVersion is the run-log format this package writes. History:
//
//	1 — header / task / event / footer lines (implicit; no "format" field)
//	2 — versioned header with the replay configuration (driver, consumption
//	    model, placement, pool, submit window, barriers, worker shape),
//	    "worker" lines carrying the realized arrival/eviction schedule,
//	    task submit/done times, and footer makespan
const FormatVersion = 2

// Driver names recorded in Header.Driver: which engine produced the log,
// and hence how Resimulate replays it.
const (
	// DriverSequential: the fast pool-free sequential driver.
	DriverSequential = "sequential"
	// DriverDES: the discrete-event pool simulation.
	DriverDES = "des"
	// DriverWQ: the live Work Queue engine (wall-clock timestamps; replay
	// through the DES against the schedule derived from its worker lines).
	DriverWQ = "wq"
)

// ErrNoOutcomes reports that Finish was asked to serialize a result that
// retained no per-task outcomes (a streaming run with Config.OnOutcome or
// DiscardOutcomes) and no task lines were written incrementally either: the
// log would carry a footer summarizing tasks that appear nowhere in it.
// Streaming runs record by wiring Writer.Task into Config.OnOutcome.
var ErrNoOutcomes = errors.New("runlog: result retained no task outcomes")

// Header identifies a run. The fields beyond Tasks (format 2) pin down
// everything a replay needs to re-create the run's environment; they are
// empty on v1 logs and on logs written by engines for which they do not
// apply (e.g. Placement on a sequential run).
type Header struct {
	Kind      string `json:"kind"`             // always "header"
	Format    int    `json:"format,omitempty"` // FormatVersion; 0 = v1
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Seed      uint64 `json:"seed"` // allocator seed; replay re-seeds with it
	// Tasks is the expected task count when known up front; 0 on streaming
	// runs whose source length is unknown. The footer's summary carries the
	// authoritative count.
	Tasks int `json:"tasks"`

	// Driver names the engine that produced the log (Driver* constants).
	Driver string `json:"driver,omitempty"`
	// Model is the task consumption profile (sim.ConsumptionModel.String).
	Model string `json:"model,omitempty"`
	// Placement is the DES worker placement policy (sim.Placement.String).
	Placement string `json:"placement,omitempty"`
	// Pool names the pool model the run sampled its schedule from; the
	// realized schedule itself is in the worker lines.
	Pool string `json:"pool,omitempty"`
	// Window and Barriers mirror the workload's submit window and phase
	// barriers (workflow.Source contract).
	Window   int   `json:"window,omitempty"`
	Barriers []int `json:"barriers,omitempty"`
	// MaxAttempts is the per-task attempt bound (0 = engine default).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// IncludeEvictions records whether eviction-lost allocations were
	// charged to the waste metrics.
	IncludeEvictions bool `json:"include_evictions,omitempty"`
	// DataLayer marks runs under the TaskVine-style data layer, whose
	// staging times are not recorded and hence not replayable.
	DataLayer bool `json:"data_layer,omitempty"`
	// WorkerCores/WorkerMemoryMB/WorkerDiskMB are the worker shape; zero
	// means the paper worker.
	WorkerCores    float64 `json:"worker_cores,omitempty"`
	WorkerMemoryMB float64 `json:"worker_memory_mb,omitempty"`
	WorkerDiskMB   float64 `json:"worker_disk_mb,omitempty"`
}

// workerShape reconstructs the worker capacity vector recorded in the
// header; the zero vector when the header predates format 2 or recorded the
// default shape.
func (h Header) workerShape() resources.Vector {
	if h.WorkerCores == 0 && h.WorkerMemoryMB == 0 && h.WorkerDiskMB == 0 {
		return resources.Vector{}
	}
	return resources.New(h.WorkerCores, h.WorkerMemoryMB, h.WorkerDiskMB, resources.Unlimited)
}

// SimHeader builds a replayable (format 2) header from a simulation
// configuration: driver is one of the Driver* constants, workload/algorithm
// /seed identify the run, and window/barriers mirror the workload source.
// The pool, placement, and worker shape are recorded only for DES runs —
// the sequential driver has none.
func SimHeader(driver, workload, algorithm string, seed uint64, cfg sim.Config, window int, barriers []int) Header {
	h := Header{
		Workload:         workload,
		Algorithm:        algorithm,
		Seed:             seed,
		Driver:           driver,
		Model:            cfg.Model.String(),
		Window:           window,
		Barriers:         barriers,
		MaxAttempts:      cfg.MaxAttempts,
		IncludeEvictions: cfg.IncludeEvictions,
		DataLayer:        cfg.Data != nil,
	}
	if driver == DriverDES {
		h.Placement = cfg.Place.String()
		if cfg.Pool != nil {
			h.Pool = cfg.Pool.Name()
		}
		shape := cfg.WorkerShape
		if shape.IsZero() {
			shape = resources.PaperWorker()
		}
		h.WorkerCores = shape.Get(resources.Cores)
		h.WorkerMemoryMB = shape.Get(resources.Memory)
		h.WorkerDiskMB = shape.Get(resources.Disk)
	}
	return h
}

// AttemptRecord is one execution attempt in the log.
type AttemptRecord struct {
	Cores    float64 `json:"cores"`
	MemoryMB float64 `json:"memory_mb"`
	DiskMB   float64 `json:"disk_mb"`
	Duration float64 `json:"duration_s"`
	Status   string  `json:"status"`
}

// TaskRecord is one task outcome in the log.
type TaskRecord struct {
	Kind     string          `json:"kind"` // always "task"
	ID       int             `json:"id"`
	Category string          `json:"category"`
	Cores    float64         `json:"cores"`
	MemoryMB float64         `json:"memory_mb"`
	DiskMB   float64         `json:"disk_mb"`
	Runtime  float64         `json:"runtime_s"`
	SubmitS  float64         `json:"submit_s,omitempty"` // virtual submit time
	DoneS    float64         `json:"done_s,omitempty"`   // virtual completion time
	Attempts []AttemptRecord `json:"attempts"`
}

// WorkerRecord is one realized worker arrival in the log: the churn
// schedule the run actually executed against, written so a replay can
// script the identical eviction sequence instead of sampling fresh churn.
type WorkerRecord struct {
	Kind      string  `json:"kind"` // always "worker"
	ID        int     `json:"worker_id"`
	AtS       float64 `json:"at_s"`                  // join time
	LifetimeS float64 `json:"lifetime_s,omitempty"`  // seconds until eviction; <= 0 means never evicted
}

// Footer carries the run summary.
type Footer struct {
	Kind        string          `json:"kind"` // always "footer"
	Summary     metrics.Summary `json:"summary"`
	MakespanS   float64         `json:"makespan_s,omitempty"`
	PeakWorkers int             `json:"peak_workers,omitempty"`
}

// EventRecord is one lifecycle event emitted by the live engine (dispatch,
// result, eviction, requeue, heartbeat timeout, drain, ...). Event lines are
// interleaved with the header and task records, so a live run's log carries
// both the replayable outcomes and a timeline of what the manager did.
// WorkerID is -1 when the event is not tied to a worker; TaskID is -1 when
// it is not tied to a task.
type EventRecord struct {
	Kind     string `json:"kind"` // always "event"
	TimeNS   int64  `json:"t_ns"` // wall-clock timestamp, unix nanoseconds
	Event    string `json:"event"`
	TaskID   int    `json:"task_id"`
	WorkerID int    `json:"worker_id"`
	Status   string `json:"status,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Writer incrementally emits a run log: the header is written (and flushed)
// on creation, Event/Task/Worker append trace lines as they happen, and
// Finish writes any retained task outcomes, the arrival schedule, and the
// footer. All methods are safe for concurrent use, which is what a live
// manager's tracer needs.
type Writer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	events int
	tasks  int
}

// NewWriter starts a log with the given header and flushes it, so even a
// run killed immediately afterwards leaves a parseable (if empty) log. The
// caller sets hdr.Tasks to the expected task count when known; Write (the
// one-shot path) fills it from the result. hdr.Format is stamped with
// FormatVersion unless the caller already set a version.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr.Kind = "header"
	if hdr.Format == 0 {
		hdr.Format = FormatVersion
	}
	if err := enc.Encode(hdr); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, enc: enc}, nil
}

// Event appends one lifecycle event line.
func (w *Writer) Event(ev EventRecord) error {
	ev.Kind = "event"
	w.mu.Lock()
	defer w.mu.Unlock()
	w.events++
	return w.enc.Encode(ev)
}

// Events returns the number of event lines written so far.
func (w *Writer) Events() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.events
}

// Task appends one task outcome line. This is the streaming-mode recording
// path: wire it into sim.Config.OnOutcome and million-task runs are
// recordable without ever retaining the outcome slice in memory. The
// pointed-to outcome is only read during the call, so the simulator is free
// to recycle it afterwards.
func (w *Writer) Task(o *metrics.TaskOutcome) error {
	tr := taskRecord(o)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tasks++
	return w.enc.Encode(tr)
}

// Tasks returns the number of task lines written so far (incremental path
// plus any written by Finish).
func (w *Writer) Tasks() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tasks
}

// Worker appends one realized worker arrival line.
func (w *Writer) Worker(rec WorkerRecord) error {
	rec.Kind = "worker"
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(rec)
}

// Flush pushes everything buffered so far to the underlying writer. Live
// tracers flush periodically so a crashed or killed run loses at most the
// tail of its timeline, not the whole buffered log.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// Finish writes the retained task outcomes, the realized arrival schedule,
// and the footer, then flushes the log.
//
// A result that retained no outcomes (streaming mode) is an error unless
// task lines were already written incrementally through Task: silently
// emitting a footer that summarizes tasks absent from the log would leave
// the file unreplayable with no indication why.
func (w *Writer) Finish(res *sim.Result) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if res.Outcomes == nil && w.tasks == 0 && res.Acc.Tasks() > 0 {
		return fmt.Errorf("%w: %d tasks were streamed away (OnOutcome/DiscardOutcomes); wire Writer.Task into Config.OnOutcome to record streaming runs", ErrNoOutcomes, res.Acc.Tasks())
	}
	for id, a := range res.Arrivals {
		rec := WorkerRecord{Kind: "worker", ID: id, AtS: a.At, LifetimeS: a.Lifetime}
		if err := w.enc.Encode(rec); err != nil {
			return err
		}
	}
	for i := range res.Outcomes {
		w.tasks++
		if err := w.enc.Encode(taskRecord(&res.Outcomes[i])); err != nil {
			return err
		}
	}
	f := Footer{
		Kind:        "footer",
		Summary:     res.Acc.Summarize(),
		MakespanS:   res.Makespan,
		PeakWorkers: res.PeakWorkers,
	}
	if err := w.enc.Encode(f); err != nil {
		return err
	}
	return w.bw.Flush()
}

// taskRecord serializes one outcome as a task line.
func taskRecord(o *metrics.TaskOutcome) TaskRecord {
	tr := TaskRecord{
		Kind:     "task",
		ID:       o.TaskID,
		Category: o.Category,
		Cores:    o.Peak.Get(resources.Cores),
		MemoryMB: o.Peak.Get(resources.Memory),
		DiskMB:   o.Peak.Get(resources.Disk),
		Runtime:  o.Runtime,
		SubmitS:  o.SubmitTime,
		DoneS:    o.DoneTime,
	}
	for _, a := range o.Attempts {
		tr.Attempts = append(tr.Attempts, AttemptRecord{
			Cores:    a.Alloc.Get(resources.Cores),
			MemoryMB: a.Alloc.Get(resources.Memory),
			DiskMB:   a.Alloc.Get(resources.Disk),
			Duration: a.Duration,
			Status:   a.Status.String(),
		})
	}
	return tr
}

// Write serializes a run result as a log in one shot (no event lines). It
// refuses streaming-mode results the same way Finish does.
func Write(w io.Writer, hdr Header, res *sim.Result) error {
	hdr.Tasks = res.Acc.Tasks()
	lw, err := NewWriter(w, hdr)
	if err != nil {
		return err
	}
	return lw.Finish(res)
}

// Log is a parsed run log.
type Log struct {
	Header   Header
	Outcomes []metrics.TaskOutcome
	Workers  []WorkerRecord // realized arrival schedule, in log order
	Events   []EventRecord  // lifecycle events, in log order (live runs only)
	Footer   *Footer        // nil when the log was truncated before the footer
	// UnknownKinds counts record lines whose kind this reader does not know
	// but whose header declared a newer format than FormatVersion — skipped
	// rather than fatal, so future format growth degrades gracefully.
	UnknownKinds int
}

// Read parses a log. A missing footer is tolerated (truncated logs can
// still be analyzed); a malformed line is an error. Unknown record kinds
// are an error when the log's declared format is one this reader fully
// knows (they can only be corruption) and are skipped and counted in
// Log.UnknownKinds when the header declares a newer format.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var log Log
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("runlog: line %d: %w", line, err)
		}
		switch probe.Kind {
		case "header":
			if err := json.Unmarshal(sc.Bytes(), &log.Header); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			if log.Header.Format == 0 {
				log.Header.Format = 1
			}
			sawHeader = true
		case "task":
			var tr TaskRecord
			if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			log.Outcomes = append(log.Outcomes, tr.outcome())
		case "worker":
			var wr WorkerRecord
			if err := json.Unmarshal(sc.Bytes(), &wr); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			log.Workers = append(log.Workers, wr)
		case "event":
			var ev EventRecord
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			log.Events = append(log.Events, ev)
		case "footer":
			var f Footer
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				return nil, fmt.Errorf("runlog: line %d: %w", line, err)
			}
			log.Footer = &f
		default:
			if sawHeader && log.Header.Format > FormatVersion {
				log.UnknownKinds++
				continue
			}
			return nil, fmt.Errorf("runlog: line %d: unknown kind %q", line, probe.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("runlog: missing header")
	}
	return &log, nil
}

func (tr TaskRecord) outcome() metrics.TaskOutcome {
	o := metrics.TaskOutcome{
		TaskID:     tr.ID,
		Category:   tr.Category,
		Peak:       resources.New(tr.Cores, tr.MemoryMB, tr.DiskMB, tr.Runtime),
		Runtime:    tr.Runtime,
		SubmitTime: tr.SubmitS,
		DoneTime:   tr.DoneS,
	}
	for _, a := range tr.Attempts {
		status := metrics.Success
		switch a.Status {
		case metrics.Exhausted.String():
			status = metrics.Exhausted
		case metrics.Evicted.String():
			status = metrics.Evicted
		case metrics.Failed.String():
			status = metrics.Failed
		}
		o.Attempts = append(o.Attempts, metrics.Attempt{
			Alloc:    resources.New(a.Cores, a.MemoryMB, a.DiskMB, resources.Unlimited),
			Duration: a.Duration,
			Status:   status,
		})
	}
	return o
}

// Replay folds a parsed log into a fresh accumulator, recomputing every
// metric from the raw attempts (rather than trusting the footer). The
// accumulator honors the recorded IncludeEvictions setting so the replayed
// totals match the footer's.
func Replay(log *Log) *metrics.Accumulator {
	acc := metrics.Accumulator{IncludeEvictions: log.Header.IncludeEvictions}
	for _, o := range log.Outcomes {
		acc.Add(o)
	}
	return &acc
}

// ReplayByCategory folds a parsed log into one accumulator per task
// category, for per-category efficiency breakdowns.
func ReplayByCategory(log *Log) map[string]*metrics.Accumulator {
	out := make(map[string]*metrics.Accumulator)
	for _, o := range log.Outcomes {
		acc, ok := out[o.Category]
		if !ok {
			acc = &metrics.Accumulator{IncludeEvictions: log.Header.IncludeEvictions}
			out[o.Category] = acc
		}
		acc.Add(o)
	}
	return out
}
