package runlog

import (
	"strings"
	"testing"
)

// FuzzRead exercises the run-log parser with arbitrary input: it must never
// panic and must reject anything without a header.
func FuzzRead(f *testing.F) {
	f.Add(`{"kind":"header","workload":"w","algorithm":"a","seed":1,"tasks":0}`)
	f.Add(`{"kind":"header"}` + "\n" + `{"kind":"task","id":1,"category":"c","runtime_s":5,"attempts":[{"status":"success","duration_s":5}]}`)
	f.Add(`{"kind":"task"}`)
	f.Add(`{"kind":"footer"}`)
	f.Add(`{`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, input string) {
		log, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted logs replay without panicking and with coherent counts.
		acc := Replay(log)
		if acc.Tasks() != len(log.Outcomes) {
			t.Fatalf("replay counted %d of %d outcomes", acc.Tasks(), len(log.Outcomes))
		}
		byCat := ReplayByCategory(log)
		total := 0
		for _, a := range byCat {
			total += a.Tasks()
		}
		if total != len(log.Outcomes) {
			t.Fatalf("per-category replay counted %d of %d", total, len(log.Outcomes))
		}
	})
}
