package runlog

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

// streamedResult builds a result the way a streaming run leaves it: the
// accumulator holds every outcome, Outcomes is nil.
func streamedResult(outcomes []metrics.TaskOutcome) *sim.Result {
	res := &sim.Result{}
	for _, o := range outcomes {
		res.Acc.Add(o)
	}
	return res
}

func someOutcomes(n int) []metrics.TaskOutcome {
	out := make([]metrics.TaskOutcome, n)
	for i := range out {
		out[i] = metrics.TaskOutcome{
			TaskID:     i,
			Category:   "cat",
			Peak:       resources.New(2, 1024, 512, 30),
			Runtime:    30,
			SubmitTime: float64(i),
			DoneTime:   float64(i) + 30,
			Attempts: []metrics.Attempt{
				{Alloc: resources.New(4, 2048, 1024, resources.Unlimited), Duration: 30, Status: metrics.Success},
			},
		}
	}
	return out
}

// Regression (silent-loss bug 1): serializing a streaming result used to
// emit "tasks: 0" with zero task lines and a full footer — a log that
// summarized tasks appearing nowhere in it. It must be a loud error now.
func TestFinishStreamingResultIsLoudError(t *testing.T) {
	res := streamedResult(someOutcomes(5))
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Workload: "w", Algorithm: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(res); !errors.Is(err, ErrNoOutcomes) {
		t.Fatalf("Finish on streamed result = %v, want ErrNoOutcomes", err)
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, Header{Workload: "w", Algorithm: "a"}, res); !errors.Is(err, ErrNoOutcomes) {
		t.Fatalf("Write on streamed result = %v, want ErrNoOutcomes", err)
	}
}

// The streaming recording path: task lines written incrementally through
// Writer.Task (the OnOutcome wiring) make Finish legal on a streamed
// result, and the log round-trips every metric.
func TestWriterTaskStreamingPath(t *testing.T) {
	outcomes := someOutcomes(7)
	res := streamedResult(outcomes)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Workload: "w", Algorithm: "a", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outcomes {
		if err := w.Task(&outcomes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Tasks(); got != 7 {
		t.Fatalf("Tasks() = %d, want 7", got)
	}
	if err := w.Finish(res); err != nil {
		t.Fatalf("Finish after incremental tasks: %v", err)
	}
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log.Header.Format != FormatVersion {
		t.Errorf("header format = %d, want %d", log.Header.Format, FormatVersion)
	}
	if len(log.Outcomes) != 7 {
		t.Fatalf("%d outcomes read back, want 7", len(log.Outcomes))
	}
	if log.Outcomes[3].SubmitTime != 3 || log.Outcomes[3].DoneTime != 33 {
		t.Errorf("submit/done times = %v/%v, want 3/33",
			log.Outcomes[3].SubmitTime, log.Outcomes[3].DoneTime)
	}
	acc := Replay(log)
	for _, k := range resources.AllocatedKinds() {
		if got, want := acc.AWE(k), res.Acc.AWE(k); got != want {
			t.Errorf("replayed AWE(%s) = %v, want %v", k, got, want)
		}
	}
}

// Regression (bug 2): Read used to error on any unknown record kind, so a
// log written by a newer format version was entirely unreadable. Unknown
// kinds under a declared-newer format are skipped and counted; under a
// known format they remain corruption.
func TestReadSkipsFutureKinds(t *testing.T) {
	future := fmt.Sprintf(`{"kind":"header","format":%d,"workload":"w","algorithm":"a","seed":1,"tasks":1}
{"kind":"hologram","payload":"from the future"}
{"kind":"task","id":0,"category":"c","cores":1,"memory_mb":10,"disk_mb":10,"runtime_s":5,"attempts":[{"cores":2,"memory_mb":20,"disk_mb":20,"duration_s":5,"status":"success"}]}
`, FormatVersion+1)
	log, err := Read(strings.NewReader(future))
	if err != nil {
		t.Fatalf("reading declared-newer log: %v", err)
	}
	if log.UnknownKinds != 1 {
		t.Errorf("UnknownKinds = %d, want 1", log.UnknownKinds)
	}
	if len(log.Outcomes) != 1 {
		t.Errorf("%d outcomes, want 1 (known kinds still parse)", len(log.Outcomes))
	}

	current := fmt.Sprintf(`{"kind":"header","format":%d,"workload":"w","algorithm":"a","seed":1,"tasks":0}
{"kind":"hologram"}
`, FormatVersion)
	if _, err := Read(strings.NewReader(current)); err == nil {
		t.Fatal("unknown kind under the current format must remain an error")
	}
}

// Regression (bug 3): the Writer never flushed before Finish, so a run
// killed mid-way left an empty file. The header flushes at creation and
// Flush pushes the buffered tail, so an abandoned log still parses with its
// events intact.
func TestWriterFlushAbandonedLog(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Workload: "w", Algorithm: "a", Tasks: 100})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("header not flushed at creation")
	}
	for i := 0; i < 3; i++ {
		if err := w.Event(EventRecord{TimeNS: int64(i), Event: "dispatch", TaskID: i, WorkerID: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// The writer is now abandoned: no Finish, no footer.
	log, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("abandoned log must still parse: %v", err)
	}
	if log.Footer != nil {
		t.Error("abandoned log has a footer")
	}
	if len(log.Events) != 3 {
		t.Errorf("%d events survived, want 3", len(log.Events))
	}
	if log.Header.Workload != "w" || log.Header.Tasks != 100 {
		t.Errorf("header mangled: %+v", log.Header)
	}
}

// Worker lines round-trip and footer carries makespan and peak workers.
func TestWorkerLinesAndFooterRoundTrip(t *testing.T) {
	outcomes := someOutcomes(2)
	res := &sim.Result{Outcomes: outcomes, Makespan: 123.5, PeakWorkers: 4}
	for _, o := range outcomes {
		res.Acc.Add(o)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Workload: "w", Algorithm: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Worker(WorkerRecord{ID: 0, AtS: 0, LifetimeS: 600}); err != nil {
		t.Fatal(err)
	}
	if err := w.Worker(WorkerRecord{ID: 1, AtS: 42.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(res); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Workers) != 2 {
		t.Fatalf("%d worker lines, want 2", len(log.Workers))
	}
	if log.Workers[0].LifetimeS != 600 || log.Workers[1].AtS != 42.5 {
		t.Errorf("worker lines mangled: %+v", log.Workers)
	}
	if log.Footer == nil || log.Footer.MakespanS != 123.5 || log.Footer.PeakWorkers != 4 {
		t.Errorf("footer = %+v, want makespan 123.5, peak 4", log.Footer)
	}
}
