package runlog

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

func sampleRun(t *testing.T) (*sim.Result, Header) {
	t.Helper()
	w, err := workflow.ByName("bimodal", 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := allocator.MustNew(allocator.Greedy, allocator.Config{Seed: 2})
	res, err := sim.Run(sim.Config{Workflow: w, Policy: pol, Pool: opportunistic.Static{N: 5}})
	if err != nil {
		t.Fatal(err)
	}
	return res, Header{Workload: "bimodal", Algorithm: pol.Name(), Seed: 1}
}

func TestWriteReadRoundTrip(t *testing.T) {
	res, hdr := sampleRun(t)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, res); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log.Header.Workload != "bimodal" || log.Header.Algorithm != "greedy-bucketing" {
		t.Errorf("header = %+v", log.Header)
	}
	if log.Header.Tasks != 80 || len(log.Outcomes) != 80 {
		t.Fatalf("tasks = %d / %d", log.Header.Tasks, len(log.Outcomes))
	}
	if log.Footer == nil {
		t.Fatal("missing footer")
	}

	// Replaying the raw attempts must reproduce the footer's metrics.
	acc := Replay(log)
	for _, k := range resources.AllocatedKinds() {
		orig := res.Acc.AWE(k)
		replayed := acc.AWE(k)
		if math.Abs(orig-replayed) > 1e-9 {
			t.Errorf("AWE(%s): original %v, replayed %v", k, orig, replayed)
		}
		if math.Abs(res.Acc.Waste(k)-acc.Waste(k)) > 1e-6 {
			t.Errorf("waste(%s) mismatch", k)
		}
	}
	if acc.Retries() != res.Acc.Retries() {
		t.Errorf("retries: %d vs %d", acc.Retries(), res.Acc.Retries())
	}
}

func TestReadTruncatedLog(t *testing.T) {
	res, hdr := sampleRun(t)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, res); err != nil {
		t.Fatal(err)
	}
	// Drop the footer line.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n")
	log, err := Read(strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if log.Footer != nil {
		t.Error("truncated log should have no footer")
	}
	if len(log.Outcomes) != 80 {
		t.Errorf("outcomes = %d", len(log.Outcomes))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no header":    `{"kind":"task","id":1}`,
		"bad json":     "{nope",
		"unknown kind": `{"kind":"mystery"}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestStatusRoundTrip(t *testing.T) {
	tr := TaskRecord{
		ID: 1, Category: "c", Cores: 1, MemoryMB: 100, DiskMB: 10, Runtime: 5,
		Attempts: []AttemptRecord{
			{Cores: 1, MemoryMB: 50, DiskMB: 10, Duration: 2, Status: "exhausted"},
			{Cores: 1, MemoryMB: 100, DiskMB: 10, Duration: 1, Status: "evicted"},
			{Cores: 1, MemoryMB: 100, DiskMB: 10, Duration: 5, Status: "success"},
		},
	}
	o := tr.outcome()
	if o.Retries() != 1 {
		t.Errorf("retries = %d", o.Retries())
	}
	if o.EvictedTime() != 1 {
		t.Errorf("evicted time = %v", o.EvictedTime())
	}
	if o.FinalAlloc().Get(resources.Memory) != 100 {
		t.Errorf("final alloc = %v", o.FinalAlloc())
	}
}

func TestEventLinesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Workload: "live", Algorithm: "exhaustive", Seed: 7, Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	events := []EventRecord{
		{TimeNS: 100, Event: "worker-join", TaskID: -1, WorkerID: 0},
		{TimeNS: 200, Event: "dispatch", TaskID: 1, WorkerID: 0},
		{TimeNS: 300, Event: "result", TaskID: 1, WorkerID: 0, Status: "success"},
		{TimeNS: 400, Event: "drain-end", TaskID: -1, WorkerID: -1, Detail: "in_flight=0"},
	}
	for _, ev := range events {
		if err := w.Event(ev); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != len(events) {
		t.Errorf("writer events = %d, want %d", w.Events(), len(events))
	}
	res := &sim.Result{Outcomes: []metrics.TaskOutcome{{
		TaskID: 1, Category: "c", Peak: resources.New(1, 100, 10, 5), Runtime: 5,
		Attempts: []metrics.Attempt{{Alloc: resources.New(1, 100, 10, resources.Unlimited), Duration: 5, Status: metrics.Success}},
	}}}
	res.Acc.Add(res.Outcomes[0])
	if err := w.Finish(res); err != nil {
		t.Fatal(err)
	}

	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != len(events) {
		t.Fatalf("events = %d, want %d", len(log.Events), len(events))
	}
	for i, ev := range log.Events {
		if ev.Event != events[i].Event || ev.TimeNS != events[i].TimeNS ||
			ev.TaskID != events[i].TaskID || ev.WorkerID != events[i].WorkerID {
			t.Errorf("event %d = %+v, want %+v", i, ev, events[i])
		}
	}
	if len(log.Outcomes) != 1 || log.Footer == nil {
		t.Fatalf("outcomes/footer lost: %d outcomes", len(log.Outcomes))
	}
}

func TestFailedStatusRoundTrip(t *testing.T) {
	tr := TaskRecord{
		ID: 1, Category: "c", Cores: 1, MemoryMB: 500, DiskMB: 10, Runtime: 5,
		Attempts: []AttemptRecord{
			{Cores: 1, MemoryMB: 100, DiskMB: 10, Duration: 2, Status: "exhausted"},
			{Cores: 1, MemoryMB: 100, DiskMB: 10, Status: "failed"},
		},
	}
	o := tr.outcome()
	if o.Succeeded() {
		t.Error("failed task reports success")
	}
	if got := o.Attempts[1].Status; got != metrics.Failed {
		t.Errorf("status = %v, want failed", got)
	}
	var acc metrics.Accumulator
	acc.Add(o)
	if acc.Failures() != 1 {
		t.Errorf("failures = %d, want 1", acc.Failures())
	}
}
