package runlog

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

func sampleRun(t *testing.T) (*sim.Result, Header) {
	t.Helper()
	w, err := workflow.ByName("bimodal", 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := allocator.MustNew(allocator.Greedy, allocator.Config{Seed: 2})
	res, err := sim.Run(sim.Config{Workflow: w, Policy: pol, Pool: opportunistic.Static{N: 5}})
	if err != nil {
		t.Fatal(err)
	}
	return res, Header{Workload: "bimodal", Algorithm: pol.Name(), Seed: 1}
}

func TestWriteReadRoundTrip(t *testing.T) {
	res, hdr := sampleRun(t)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, res); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if log.Header.Workload != "bimodal" || log.Header.Algorithm != "greedy-bucketing" {
		t.Errorf("header = %+v", log.Header)
	}
	if log.Header.Tasks != 80 || len(log.Outcomes) != 80 {
		t.Fatalf("tasks = %d / %d", log.Header.Tasks, len(log.Outcomes))
	}
	if log.Footer == nil {
		t.Fatal("missing footer")
	}

	// Replaying the raw attempts must reproduce the footer's metrics.
	acc := Replay(log)
	for _, k := range resources.AllocatedKinds() {
		orig := res.Acc.AWE(k)
		replayed := acc.AWE(k)
		if math.Abs(orig-replayed) > 1e-9 {
			t.Errorf("AWE(%s): original %v, replayed %v", k, orig, replayed)
		}
		if math.Abs(res.Acc.Waste(k)-acc.Waste(k)) > 1e-6 {
			t.Errorf("waste(%s) mismatch", k)
		}
	}
	if acc.Retries() != res.Acc.Retries() {
		t.Errorf("retries: %d vs %d", acc.Retries(), res.Acc.Retries())
	}
}

func TestReadTruncatedLog(t *testing.T) {
	res, hdr := sampleRun(t)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, res); err != nil {
		t.Fatal(err)
	}
	// Drop the footer line.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n")
	log, err := Read(strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if log.Footer != nil {
		t.Error("truncated log should have no footer")
	}
	if len(log.Outcomes) != 80 {
		t.Errorf("outcomes = %d", len(log.Outcomes))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no header":    `{"kind":"task","id":1}`,
		"bad json":     "{nope",
		"unknown kind": `{"kind":"mystery"}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestStatusRoundTrip(t *testing.T) {
	tr := TaskRecord{
		ID: 1, Category: "c", Cores: 1, MemoryMB: 100, DiskMB: 10, Runtime: 5,
		Attempts: []AttemptRecord{
			{Cores: 1, MemoryMB: 50, DiskMB: 10, Duration: 2, Status: "exhausted"},
			{Cores: 1, MemoryMB: 100, DiskMB: 10, Duration: 1, Status: "evicted"},
			{Cores: 1, MemoryMB: 100, DiskMB: 10, Duration: 5, Status: "success"},
		},
	}
	o := tr.outcome()
	if o.Retries() != 1 {
		t.Errorf("retries = %d", o.Retries())
	}
	if o.EvictedTime() != 1 {
		t.Errorf("evicted time = %v", o.EvictedTime())
	}
	if o.FinalAlloc().Get(resources.Memory) != 100 {
		t.Errorf("final alloc = %v", o.FinalAlloc())
	}
}
