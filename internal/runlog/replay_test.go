package runlog

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// recordDES runs one workload through the DES on a churny pool and returns
// the run log text plus the original result.
func recordDES(t *testing.T, wfName string, seed uint64, alg allocator.Name) (string, *sim.Result) {
	t.Helper()
	w, err := workflow.ByName(wfName, 120, seed)
	if err != nil {
		t.Fatal(err)
	}
	pol := allocator.MustNew(alg, allocator.Config{Seed: seed})
	cfg := sim.Config{
		Workflow: w,
		Policy:   pol,
		Pool:     opportunistic.Churn{Initial: 6, MeanLifetime: 500, MeanInterval: 100, Horizon: 1500, KeepLastAlive: true},
		PoolSeed: seed,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdr := SimHeader(DriverDES, w.Name, pol.Name(), seed, cfg, w.SubmitWindow, w.Barriers)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, res); err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

// The round-trip fidelity property: sim → runlog → TraceSource replay under
// the original allocator reproduces the recorded footer summary
// bit-identically, across workloads and seeds. The engine is deterministic
// given (tasks, policy+seed, pool schedule, model, placement) and the
// format-2 header plus worker lines pin all of them; JSON round-trips
// float64 exactly, so anything short of equality is a replay bug.
func TestReplayFidelityDES(t *testing.T) {
	for _, wfName := range []string{"normal", "bimodal", "exponential"} {
		for _, seed := range []uint64{7, 99} {
			t.Run(fmt.Sprintf("%s-%d", wfName, seed), func(t *testing.T) {
				text, res := recordDES(t, wfName, seed, allocator.Greedy)
				log, err := Read(strings.NewReader(text))
				if err != nil {
					t.Fatal(err)
				}
				if len(log.Workers) == 0 {
					t.Fatal("DES log recorded no worker lines")
				}
				if last := log.Outcomes[len(log.Outcomes)-1]; last.DoneTime <= 0 {
					t.Fatal("DES log recorded no virtual completion times")
				}
				replayed, err := ResimulateAs(context.Background(), log, log.Header.Algorithm)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := replayed.Summary(), log.Footer.Summary; !reflect.DeepEqual(got, want) {
					t.Errorf("replayed summary diverged:\n got %+v\nwant %+v", got, want)
				}
				if replayed.Makespan != res.Makespan {
					t.Errorf("replayed makespan = %v, want %v", replayed.Makespan, res.Makespan)
				}
				if replayed.Evictions != res.Evictions {
					t.Errorf("replayed evictions = %v, want %v", replayed.Evictions, res.Evictions)
				}
			})
		}
	}
}

// Same property for the sequential driver: a v2 sequential log replays
// through Materialize + RunSequentialContext bit-identically.
func TestReplayFidelitySequential(t *testing.T) {
	seed := uint64(11)
	w, err := workflow.ByName("uniform", 150, seed)
	if err != nil {
		t.Fatal(err)
	}
	pol := allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: seed})
	res, err := sim.RunSequential(w, pol, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := SimHeader(DriverSequential, w.Name, pol.Name(), seed, sim.Config{}, w.SubmitWindow, w.Barriers)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, res); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ResimulateAs(context.Background(), log, log.Header.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := replayed.Summary(), log.Footer.Summary; !reflect.DeepEqual(got, want) {
		t.Errorf("replayed summary diverged:\n got %+v\nwant %+v", got, want)
	}
	if replayed.Makespan != res.Makespan {
		t.Errorf("replayed makespan = %v, want %v", replayed.Makespan, res.Makespan)
	}
}

// A truncated log (footer and tail task lines lost) still replays end to
// end: the surviving prefix of the task stream runs to completion. The
// replay is not expected to match any recorded summary — the missing tail
// tasks changed worker occupancy for the ones that remain — only to
// succeed and cover exactly the surviving tasks.
func TestReplayTruncatedLog(t *testing.T) {
	text, _ := recordDES(t, "normal", 7, allocator.Greedy)
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	cut := len(lines) / 2
	truncated := strings.Join(lines[:cut], "\n") + "\n"
	log, err := Read(strings.NewReader(truncated))
	if err != nil {
		t.Fatalf("truncated log must parse: %v", err)
	}
	if log.Footer != nil {
		t.Fatal("test construction error: footer survived the cut")
	}
	if len(log.Outcomes) == 0 {
		t.Skip("cut landed before the first task line")
	}
	replayed, err := ResimulateAs(context.Background(), log, log.Header.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Acc.Tasks() != len(log.Outcomes) {
		t.Errorf("replayed %d tasks, want %d (the surviving prefix)",
			replayed.Acc.Tasks(), len(log.Outcomes))
	}
}

// TraceSource must pass through the recorded window and barriers: both
// change scheduling, so dropping them would silently break fidelity on
// windowed/barriered workloads.
func TestTraceSourceShape(t *testing.T) {
	log := &Log{
		Header: Header{Workload: "shaped", Window: 4, Barriers: []int{2, 5}},
		Outcomes: someOutcomes(6),
	}
	src, err := TraceSource(log)
	if err != nil {
		t.Fatal(err)
	}
	if src.SubmitWindow() != 4 {
		t.Errorf("window = %d, want 4", src.SubmitWindow())
	}
	if b := src.NextBarrier(0); b != 2 {
		t.Errorf("NextBarrier(0) = %d, want 2", b)
	}
	if b := src.NextBarrier(2); b != 5 {
		t.Errorf("NextBarrier(2) = %d, want 5", b)
	}
	if b := src.NextBarrier(5); b != -1 {
		t.Errorf("NextBarrier(5) = %d, want -1", b)
	}
	n := 0
	for {
		task, ok := src.Next()
		if !ok {
			break
		}
		if task.ID != n {
			t.Errorf("task %d has ID %d", n, task.ID)
		}
		n++
	}
	if n != 6 {
		t.Errorf("source yielded %d tasks, want 6", n)
	}
}

// ScriptedPool prefers explicit worker lines and falls back to deriving the
// schedule from a live run's worker-join / worker-lost event timeline,
// rebased to the earliest event.
func TestScriptedPoolFromEvents(t *testing.T) {
	base := int64(1_000_000_000_000)
	log := &Log{
		Header: Header{Driver: DriverWQ},
		Events: []EventRecord{
			{TimeNS: base, Event: "worker-join", WorkerID: 0, TaskID: -1},
			{TimeNS: base + 2_000_000_000, Event: "worker-join", WorkerID: 1, TaskID: -1},
			{TimeNS: base + 5_000_000_000, Event: "worker-lost", WorkerID: 0, TaskID: -1},
			{TimeNS: base + 6_000_000_000, Event: "dispatch", WorkerID: 1, TaskID: 3},
		},
	}
	pool, err := ScriptedPool(log)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := pool.Schedule(12345) // seed must be ignored
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals, want 2", len(arrivals))
	}
	if arrivals[0].At != 0 || arrivals[0].Lifetime != 5 {
		t.Errorf("worker 0 arrival = %+v, want {0 5}", arrivals[0])
	}
	if arrivals[1].At != 2 || arrivals[1].Lifetime != 0 {
		t.Errorf("worker 1 arrival = %+v, want {2 0} (never lost = forever)", arrivals[1])
	}

	if _, err := ScriptedPool(&Log{Header: Header{Driver: DriverDES}}); err == nil {
		t.Fatal("a log with neither worker lines nor worker events must not yield a pool")
	}
}

// Data-layer runs record no staging times; replay must refuse them loudly
// instead of producing silently wrong durations.
func TestResimulateRejectsDataLayer(t *testing.T) {
	log := &Log{
		Header:   Header{Driver: DriverDES, DataLayer: true, Algorithm: string(allocator.Greedy)},
		Outcomes: someOutcomes(2),
	}
	pol := allocator.MustNew(allocator.Greedy, allocator.Config{})
	if _, err := Resimulate(context.Background(), log, pol); err == nil {
		t.Fatal("data-layer trace replay must error")
	}
}
