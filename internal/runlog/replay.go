package runlog

import (
	"context"
	"fmt"
	"sort"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// This file closes the record → replay → what-if loop: a parsed Log becomes
// a workflow.Source (the recorded task stream, with true consumption
// recovered from the recorded peaks), a scripted pool (the realized churn
// schedule), and Resimulate drives both through the engine the log names.
// Replaying under the original allocator reproduces the recorded run
// bit-identically on DES/sequential traces — the engine is deterministic
// given the task stream, policy+seed, pool schedule, consumption model, and
// placement, all of which a format-2 header pins down — and replaying under
// a different allocator answers "what if this trace had been allocated
// differently?" against the exact same tasks and evictions.

// TraceSource returns a single-use workflow.Source that replays the
// recorded task stream: same IDs, categories, and hidden consumption
// vectors, in the recorded (submission) order, with the recorded submit
// window and barriers. Like every Source it is not reusable — build a fresh
// one per run.
func TraceSource(log *Log) (workflow.Source, error) {
	if len(log.Outcomes) == 0 {
		return nil, fmt.Errorf("runlog: trace has no task records to replay")
	}
	name := log.Header.Workload
	if name == "" {
		name = "trace"
	}
	return &traceSource{
		name:     name,
		window:   log.Header.Window,
		barriers: log.Header.Barriers,
		outcomes: log.Outcomes,
	}, nil
}

type traceSource struct {
	name     string
	window   int
	barriers []int
	outcomes []metrics.TaskOutcome
	i        int
}

func (s *traceSource) Name() string      { return s.name }
func (s *traceSource) SubmitWindow() int { return s.window }

func (s *traceSource) NextBarrier(after int) int {
	i := sort.SearchInts(s.barriers, after+1)
	if i == len(s.barriers) {
		return -1
	}
	return s.barriers[i]
}

func (s *traceSource) Next() (workflow.Task, bool) {
	if s.i >= len(s.outcomes) {
		return workflow.Task{}, false
	}
	o := &s.outcomes[s.i]
	s.i++
	// The recorded peak has the runtime in its time slot (task lines store
	// the full hidden 4-tuple), so it is exactly the generator's Consumption
	// vector.
	return workflow.Task{ID: o.TaskID, Category: o.Category, Consumption: o.Peak}, true
}

// ScriptedPool reconstructs the realized worker schedule of a recorded run
// as an opportunistic.Model. Preference order: explicit "worker" lines
// (format 2 simulator logs carry the exact schedule the run executed
// against); otherwise the schedule is derived from the live engine's
// worker-join / worker-lost event timeline, with times rebased to seconds
// since the earliest event and never-lost workers given unbounded
// lifetimes. A log with neither has no replayable pool.
func ScriptedPool(log *Log) (opportunistic.Model, error) {
	label := log.Header.Pool
	if label == "" {
		label = "recorded"
	}
	if len(log.Workers) > 0 {
		arrivals := make([]opportunistic.Arrival, len(log.Workers))
		for i, w := range log.Workers {
			arrivals[i] = opportunistic.Arrival{At: w.AtS, Lifetime: w.LifetimeS}
		}
		sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At })
		return opportunistic.Scripted{Label: label, Arrivals: arrivals}, nil
	}
	if pool, ok := poolFromEvents(log.Events); ok {
		return opportunistic.Scripted{Label: label, Arrivals: pool}, nil
	}
	return nil, fmt.Errorf("runlog: trace has no worker lines or worker events; pool schedule is not replayable")
}

// poolFromEvents derives an arrival schedule from a live run's event
// timeline. The event names mirror wq's EventType constants (wq depends on
// runlog, so the strings are duplicated here rather than imported).
func poolFromEvents(events []EventRecord) ([]opportunistic.Arrival, bool) {
	type span struct {
		join int64
		lost int64 // 0 = never lost
	}
	var base int64
	joined := map[int]*span{}
	var order []int
	for i := range events {
		ev := &events[i]
		if base == 0 || ev.TimeNS < base {
			base = ev.TimeNS
		}
		switch ev.Event {
		case "worker-join":
			if _, dup := joined[ev.WorkerID]; !dup {
				joined[ev.WorkerID] = &span{join: ev.TimeNS}
				order = append(order, ev.WorkerID)
			}
		case "worker-lost", "heartbeat-timeout":
			if sp, ok := joined[ev.WorkerID]; ok && sp.lost == 0 {
				sp.lost = ev.TimeNS
			}
		}
	}
	if len(order) == 0 {
		return nil, false
	}
	arrivals := make([]opportunistic.Arrival, 0, len(order))
	for _, id := range order {
		sp := joined[id]
		a := opportunistic.Arrival{At: float64(sp.join-base) / 1e9}
		if sp.lost > sp.join {
			a.Lifetime = float64(sp.lost-sp.join) / 1e9
		}
		arrivals = append(arrivals, a)
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At })
	return arrivals, true
}

// Resimulate replays a recorded run under the given policy, re-creating the
// recorded environment: the engine the header names, the recorded
// consumption model, placement, worker shape, attempt bound, and — for pool
// runs — the realized worker schedule as a scripted pool. The recorded
// trace supplies the tasks; the policy supplies (possibly counterfactual)
// allocations. Replaying with a policy built as the header describes
// (algorithm + seed) reproduces the recorded summary bit-identically for
// simulator traces; live (wq) traces replay approximately, since the DES
// re-executes their wall-clock schedule on a virtual clock.
//
// Data-layer runs are refused: input staging times are not recorded, so no
// replay can reproduce their attempt durations.
func Resimulate(ctx context.Context, log *Log, policy allocator.Policy) (*sim.Result, error) {
	if policy == nil {
		return nil, fmt.Errorf("runlog: a policy is required to resimulate")
	}
	if log.Header.DataLayer {
		return nil, fmt.Errorf("runlog: data-layer runs record no staging times and cannot be replayed")
	}
	src, err := TraceSource(log)
	if err != nil {
		return nil, err
	}
	hdr := log.Header
	var model sim.ConsumptionModel
	if hdr.Model != "" {
		model, err = sim.ParseConsumptionModel(hdr.Model)
		if err != nil {
			return nil, fmt.Errorf("runlog: recorded model: %w", err)
		}
	}
	switch hdr.Driver {
	case DriverSequential, "":
		// v1 logs carry no driver; the sequential engine needs nothing
		// beyond the task stream, so it is the only faithful default.
		w := workflow.Materialize(src)
		return sim.RunSequentialContext(ctx, w, policy, model, hdr.MaxAttempts)
	case DriverDES, DriverWQ:
		pool, err := ScriptedPool(log)
		if err != nil {
			return nil, err
		}
		var place sim.Placement
		if hdr.Placement != "" {
			place, err = sim.ParsePlacement(hdr.Placement)
			if err != nil {
				return nil, fmt.Errorf("runlog: recorded placement: %w", err)
			}
		}
		cfg := sim.Config{
			Source:           src,
			Policy:           policy,
			Pool:             pool,
			WorkerShape:      hdr.workerShape(),
			Model:            model,
			Place:            place,
			MaxAttempts:      hdr.MaxAttempts,
			IncludeEvictions: hdr.IncludeEvictions,
		}
		return sim.RunContext(ctx, cfg)
	default:
		return nil, fmt.Errorf("runlog: unknown driver %q", hdr.Driver)
	}
}

// ResimulateAs is Resimulate under a freshly built allocator: algorithm
// names one of allocator.ExtendedNames() and the policy is seeded with the
// header's recorded seed, so ResimulateAs(ctx, log, hdr.Algorithm) is the
// exact-fidelity replay and any other algorithm is a counterfactual.
func ResimulateAs(ctx context.Context, log *Log, algorithm string) (*sim.Result, error) {
	alg, err := allocator.ParseName(algorithm)
	if err != nil {
		return nil, err
	}
	policy, err := allocator.New(alg, allocator.Config{Seed: log.Header.Seed})
	if err != nil {
		return nil, err
	}
	return Resimulate(ctx, log, policy)
}
