package names

import (
	"errors"
	"strings"
	"testing"
)

func TestParseMatches(t *testing.T) {
	sentinel := errors.New("unknown color")
	all := []string{"red", "green", "blue"}
	ident := func(s string) string { return s }
	for _, want := range all {
		got, err := Parse(want, all, ident, sentinel)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %q, %v", want, got, err)
		}
	}
}

func TestParseMissWrapsSentinelAndListsNames(t *testing.T) {
	sentinel := errors.New("unknown color")
	all := []string{"red", "green", "blue"}
	_, err := Parse("mauve", all, func(s string) string { return s }, sentinel)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not wrap the sentinel", err)
	}
	for _, part := range []string{`"mauve"`, "red", "green", "blue"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("error %q missing %q", err, part)
		}
	}
}

func TestList(t *testing.T) {
	type color int
	got := List([]color{1, 2}, func(c color) string {
		return []string{"", "red", "green"}[c]
	})
	if len(got) != 2 || got[0] != "red" || got[1] != "green" {
		t.Errorf("List = %v", got)
	}
}
