// Package names implements the registry contract shared by every
// name-indexed extension point in the repository — evaluation workloads,
// allocation algorithms, placement policies, consumption models. Each
// domain keeps a Names() function listing its entries in presentation
// order and a Parse() built on this package, so every unknown-name error
// wraps the domain's sentinel (matchable with errors.Is) and names the
// valid entries, which is what the cmd flag parsers surface to users.
package names

import (
	"fmt"
	"strings"
)

// Parse resolves input against the registry entries, rendering each entry
// with str. On a miss it returns the zero T and an error wrapping sentinel
// that lists every valid entry.
func Parse[T any](input string, all []T, str func(T) string, sentinel error) (T, error) {
	for _, v := range all {
		if str(v) == input {
			return v, nil
		}
	}
	var zero T
	return zero, fmt.Errorf("%w %q (valid: %s)", sentinel, input, strings.Join(List(all, str), ", "))
}

// List renders the registry entries in order.
func List[T any](all []T, str func(T) string) []string {
	out := make([]string, len(all))
	for i, v := range all {
		out[i] = str(v)
	}
	return out
}
