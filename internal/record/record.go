// Package record stores the resource-consumption records that completed
// tasks report back to the allocator. Every allocation algorithm in the
// paper is a function of such a record list: the bucketing algorithms break
// it into buckets, Max Seen takes its maximum, and the Tovar strategies sweep
// it for a first-allocation value.
//
// A List is append-only and maintains, lazily, a value-sorted view with
// prefix sums of significance, value·significance, time, and value·time, so
// that every range statistic the algorithms need (bucket probabilities,
// significance-weighted means, expected-waste sweeps) is O(1) per query after
// an O(n log n) rebuild.
package record

import (
	"fmt"
	"sort"
)

// Record is one completed task's observation for a single resource kind.
type Record struct {
	TaskID int     // submission identifier of the task
	Value  float64 // peak consumption of the resource during the run
	Sig    float64 // significance; the paper sets it to the task ID (Section V-A)
	Time   float64 // execution time in seconds, used by time-weighted baselines
}

// List accumulates records and serves sorted range statistics.
// The zero value is an empty, ready-to-use list.
//
// Additions between queries are buffered and merged into the sorted view on
// the next rebuild: sorting only the pending batch and merging it keeps the
// per-update cost at O(n + k log k) for k new records instead of re-sorting
// the whole list, which matters when a long workflow recomputes its
// bucketing state after every completed task.
type List struct {
	recs    []Record
	sorted  []Record
	spare   []Record // retired sorted view, reused as the next merge target
	pending []Record
	dirty   bool

	prefixSig    []float64 // prefixSig[i] = Σ sorted[0..i-1].Sig
	prefixValSig []float64 // Σ sorted[k].Value * sorted[k].Sig
	prefixTime   []float64 // Σ sorted[k].Time
	prefixValT   []float64 // Σ sorted[k].Value * sorted[k].Time
}

// Add appends a record. Significance values must be positive for the
// probability weighting to be well defined; non-positive significances are
// clamped to a tiny epsilon so a record never disappears entirely.
func (l *List) Add(r Record) {
	if r.Sig <= 0 {
		r.Sig = 1e-9
	}
	l.recs = append(l.recs, r)
	l.pending = append(l.pending, r)
	l.dirty = true
}

// Len returns the number of records.
func (l *List) Len() int { return len(l.recs) }

// All returns the records in insertion order. The returned slice must not be
// modified.
func (l *List) All() []Record { return l.recs }

func (l *List) rebuild() {
	if !l.dirty && l.sorted != nil {
		return
	}
	// Sort the pending batch (stable, preserving insertion order among
	// equal values) and merge it with the already-sorted view.
	sort.SliceStable(l.pending, func(i, j int) bool {
		return l.pending[i].Value < l.pending[j].Value
	})
	// firstChanged is the first sorted index whose record moved; prefix sums
	// below it are still valid and are not recomputed.
	firstChanged := len(l.sorted)
	switch {
	case len(l.pending) == 0:
		// First query on an empty list: materialize the (empty) view.
		firstChanged = 0
	case len(l.sorted) == 0:
		l.sorted = append(l.sorted, l.pending...)
		firstChanged = 0
	case l.pending[0].Value >= l.sorted[len(l.sorted)-1].Value:
		// Append fast path: the whole batch lands at or above the current
		// maximum, which is the common case for monotone workload phases.
		// (On ties the merge below would also keep the older records first,
		// so appending matches it exactly.)
		l.sorted = append(l.sorted, l.pending...)
	default:
		// Merge into the retired buffer of the previous rebuild rather than
		// a fresh slice; the two views ping-pong so the steady state is
		// allocation-free.
		need := len(l.sorted) + len(l.pending)
		merged := l.spare[:0]
		if cap(merged) < need {
			merged = make([]Record, 0, need+need/4)
		}
		i, j := 0, 0
		for i < len(l.sorted) && j < len(l.pending) {
			// <= keeps earlier-inserted (already sorted) records first on
			// ties, matching a stable sort of the full list.
			if l.sorted[i].Value <= l.pending[j].Value {
				merged = append(merged, l.sorted[i])
				i++
			} else {
				if j == 0 {
					firstChanged = i
				}
				merged = append(merged, l.pending[j])
				j++
			}
		}
		merged = append(merged, l.sorted[i:]...)
		merged = append(merged, l.pending[j:]...)
		l.sorted, l.spare = merged, l.sorted
	}
	l.pending = l.pending[:0]
	n := len(l.sorted)
	if cap(l.prefixSig) < n+1 {
		c := n + 1 + (n+1)/4
		l.prefixSig = make([]float64, n+1, c)
		l.prefixValSig = make([]float64, n+1, c)
		l.prefixTime = make([]float64, n+1, c)
		l.prefixValT = make([]float64, n+1, c)
		firstChanged = 0
	} else {
		l.prefixSig = l.prefixSig[:n+1]
		l.prefixValSig = l.prefixValSig[:n+1]
		l.prefixTime = l.prefixTime[:n+1]
		l.prefixValT = l.prefixValT[:n+1]
	}
	if firstChanged == 0 {
		l.prefixSig[0], l.prefixValSig[0], l.prefixTime[0], l.prefixValT[0] = 0, 0, 0, 0
	}
	for i := firstChanged; i < n; i++ {
		r := l.sorted[i]
		l.prefixSig[i+1] = l.prefixSig[i] + r.Sig
		l.prefixValSig[i+1] = l.prefixValSig[i] + r.Value*r.Sig
		l.prefixTime[i+1] = l.prefixTime[i] + r.Time
		l.prefixValT[i+1] = l.prefixValT[i] + r.Value*r.Time
	}
	l.dirty = false
}

// Sorted returns the records sorted ascending by value. The returned slice
// is owned by the list and must not be modified; it is valid until the next
// Add.
func (l *List) Sorted() []Record {
	l.rebuild()
	return l.sorted
}

// Value returns the value of the i-th record in sorted order.
func (l *List) Value(i int) float64 {
	l.rebuild()
	return l.sorted[i].Value
}

// MaxValue returns the largest value recorded, or 0 for an empty list.
func (l *List) MaxValue() float64 {
	if l.Len() == 0 {
		return 0
	}
	l.rebuild()
	return l.sorted[len(l.sorted)-1].Value
}

// MinValue returns the smallest value recorded, or 0 for an empty list.
func (l *List) MinValue() float64 {
	if l.Len() == 0 {
		return 0
	}
	l.rebuild()
	return l.sorted[0].Value
}

// SigSum returns the total significance of sorted records in [lo, hi]
// (inclusive indices).
func (l *List) SigSum(lo, hi int) float64 {
	l.rebuild()
	l.checkRange(lo, hi)
	return l.prefixSig[hi+1] - l.prefixSig[lo]
}

// TotalSig returns the total significance of all records.
func (l *List) TotalSig() float64 {
	l.rebuild()
	return l.prefixSig[len(l.sorted)]
}

// WeightedMean returns the significance-weighted mean value of sorted
// records in [lo, hi] (inclusive). This is the v_lo / v_hi / v_i estimator
// of Sections IV-B and IV-C.
func (l *List) WeightedMean(lo, hi int) float64 {
	l.rebuild()
	l.checkRange(lo, hi)
	sig := l.prefixSig[hi+1] - l.prefixSig[lo]
	if sig == 0 {
		return 0
	}
	return (l.prefixValSig[hi+1] - l.prefixValSig[lo]) / sig
}

// TimeSum returns the total execution time of sorted records in [lo, hi].
func (l *List) TimeSum(lo, hi int) float64 {
	l.rebuild()
	l.checkRange(lo, hi)
	return l.prefixTime[hi+1] - l.prefixTime[lo]
}

// ValueTimeSum returns Σ value·time over sorted records in [lo, hi]. The
// Tovar baselines use it to evaluate time-weighted expected waste.
func (l *List) ValueTimeSum(lo, hi int) float64 {
	l.rebuild()
	l.checkRange(lo, hi)
	return l.prefixValT[hi+1] - l.prefixValT[lo]
}

// SearchValue returns the index of the last sorted record whose value is
// strictly less than v, or -1 when no record is below v. This implements the
// "map its value to the closest record that has a lower value than it" step
// of the Exhaustive Bucketing combinations optimization (Section IV-D).
func (l *List) SearchValue(v float64) int {
	l.rebuild()
	// sort.Search finds the first index with value >= v.
	i := sort.Search(len(l.sorted), func(i int) bool { return l.sorted[i].Value >= v })
	return i - 1
}

// View is a read-only snapshot of the sorted record list: the sorted records
// and the prefix-sum slices, exposed directly so that tight partition sweeps
// pay no per-access dirty check or range validation. A View is valid until
// the next Add on its List; the slices are owned by the List and must not be
// modified. Unlike the List accessors, View methods do not re-validate
// ranges — callers index within [0, Len()).
type View struct {
	Sorted       []Record
	PrefixSig    []float64
	PrefixValSig []float64
	PrefixTime   []float64
	PrefixValT   []float64
}

// View rebuilds the sorted view if needed and returns a snapshot of it.
func (l *List) View() View {
	l.rebuild()
	return View{
		Sorted:       l.sorted,
		PrefixSig:    l.prefixSig,
		PrefixValSig: l.prefixValSig,
		PrefixTime:   l.prefixTime,
		PrefixValT:   l.prefixValT,
	}
}

// Len returns the number of records in the snapshot.
func (v View) Len() int { return len(v.Sorted) }

// Value returns the value of the i-th record in sorted order.
func (v View) Value(i int) float64 { return v.Sorted[i].Value }

// MaxValue returns the largest value in the snapshot, or 0 when empty.
func (v View) MaxValue() float64 {
	if len(v.Sorted) == 0 {
		return 0
	}
	return v.Sorted[len(v.Sorted)-1].Value
}

// TotalSig returns the total significance of all records.
func (v View) TotalSig() float64 { return v.PrefixSig[len(v.Sorted)] }

// SigSum returns the total significance of sorted records in [lo, hi]
// (inclusive indices).
func (v View) SigSum(lo, hi int) float64 { return v.PrefixSig[hi+1] - v.PrefixSig[lo] }

// WeightedMean returns the significance-weighted mean value of sorted
// records in [lo, hi] (inclusive), or 0 for a zero-significance range —
// bit-identical to List.WeightedMean.
func (v View) WeightedMean(lo, hi int) float64 {
	sig := v.PrefixSig[hi+1] - v.PrefixSig[lo]
	if sig == 0 {
		return 0
	}
	return (v.PrefixValSig[hi+1] - v.PrefixValSig[lo]) / sig
}

// SearchValue returns the index of the last record whose value is strictly
// less than x, or -1 when no record is below x.
func (v View) SearchValue(x float64) int {
	i := sort.Search(len(v.Sorted), func(i int) bool { return v.Sorted[i].Value >= x })
	return i - 1
}

func (l *List) checkRange(lo, hi int) {
	if lo < 0 || hi >= len(l.sorted) || lo > hi {
		panic(fmt.Sprintf("record: range [%d,%d] out of bounds for %d records", lo, hi, len(l.sorted)))
	}
}
