package record

import (
	"math"
	"sort"
	"testing"
)

// FuzzRecordListMergeMatchesResort pins the incremental rebuild machinery —
// the pending-batch merge, the append fast path, the double-buffered sorted
// view, and the partial prefix-sum recompute — against the obvious oracle: a
// stable sort of all records from scratch plus freshly summed prefixes.
// The fuzzer drives random Add/query interleavings, including duplicate
// values (stability) and monotone runs (the append fast path).
func FuzzRecordListMergeMatchesResort(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 5, 0, 6}, uint8(3))
	f.Add([]byte{9, 9, 9, 9, 0, 1, 1, 0, 255, 0}, uint8(1))
	f.Add([]byte{0, 0, 0}, uint8(7))
	f.Fuzz(func(t *testing.T, vals []byte, mod uint8) {
		l := &List{}
		var oracle []Record
		check := func() {
			t.Helper()
			want := append([]Record(nil), oracle...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].Value < want[j].Value })
			got := l.Sorted()
			if len(got) != len(want) {
				t.Fatalf("sorted length %d, want %d", len(got), len(want))
			}
			var sig, valSig, tm, valT float64
			for i, w := range want {
				if got[i] != w {
					t.Fatalf("sorted[%d] = %+v, want %+v (stability or merge order broken)", i, got[i], w)
				}
				sig += w.Sig
				valSig += w.Value * w.Sig
				tm += w.Time
				valT += w.Value * w.Time
				lo := i / 2 // an arbitrary interior range per position
				if gotSum, wantSum := l.SigSum(lo, i), prefixOracle(want, lo, i, func(r Record) float64 { return r.Sig }); !close(gotSum, wantSum) {
					t.Fatalf("SigSum(%d,%d) = %v, want %v", lo, i, gotSum, wantSum)
				}
			}
			n := len(want)
			if n == 0 {
				return
			}
			if got, want := l.TotalSig(), sig; !close(got, want) {
				t.Fatalf("TotalSig = %v, want %v", got, want)
			}
			if got, want := l.TimeSum(0, n-1), tm; !close(got, want) {
				t.Fatalf("TimeSum = %v, want %v", got, want)
			}
			if got, want := l.ValueTimeSum(0, n-1), valT; !close(got, want) {
				t.Fatalf("ValueTimeSum = %v, want %v", got, want)
			}
			v := l.View()
			if v.Len() != n || v.MaxValue() != want[n-1].Value {
				t.Fatalf("View disagrees with oracle: len %d max %v", v.Len(), v.MaxValue())
			}
		}
		period := int(mod%5) + 1
		for i, b := range vals {
			// Byte 0 forces an interleaved query; other bytes add a record.
			// Values repeat heavily (mod 16) to exercise tie stability, and
			// ascending task IDs double as the paper's significance.
			if b == 0 {
				check()
				continue
			}
			r := Record{
				TaskID: i + 1,
				Value:  float64(b % 16),
				Sig:    float64(i + 1),
				Time:   float64(b%7) + 0.5,
			}
			l.Add(r)
			r.Sig = math.Max(r.Sig, 1e-9) // mirror the Add clamp
			oracle = append(oracle, r)
			if (i+1)%period == 0 {
				check()
			}
		}
		check()
	})
}

// prefixOracle sums f over want[lo..hi] directly.
func prefixOracle(want []Record, lo, hi int, f func(Record) float64) float64 {
	s := 0.0
	for i := lo; i <= hi; i++ {
		s += f(want[i])
	}
	return s
}

// close compares the prefix-sum-derived statistic against the direct sum;
// the two accumulate in different orders, so exact equality is not required
// here (the golden tests pin the production arithmetic bit-exactly).
func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
