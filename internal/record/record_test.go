package record

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func listOf(values ...float64) *List {
	l := &List{}
	for i, v := range values {
		l.Add(Record{TaskID: i + 1, Value: v, Sig: float64(i + 1), Time: 1})
	}
	return l
}

func TestEmptyList(t *testing.T) {
	l := &List{}
	if l.Len() != 0 {
		t.Fatal("empty list should have length 0")
	}
	if l.MaxValue() != 0 || l.MinValue() != 0 {
		t.Error("empty list extrema should be 0")
	}
	if got := l.Sorted(); len(got) != 0 {
		t.Errorf("empty list Sorted() = %v", got)
	}
}

func TestSortedOrderStable(t *testing.T) {
	l := &List{}
	l.Add(Record{TaskID: 1, Value: 5, Sig: 1})
	l.Add(Record{TaskID: 2, Value: 3, Sig: 2})
	l.Add(Record{TaskID: 3, Value: 5, Sig: 3})
	l.Add(Record{TaskID: 4, Value: 1, Sig: 4})
	s := l.Sorted()
	wantValues := []float64{1, 3, 5, 5}
	for i, r := range s {
		if r.Value != wantValues[i] {
			t.Fatalf("sorted[%d].Value = %v, want %v", i, r.Value, wantValues[i])
		}
	}
	// Stable: the two 5s keep insertion order (task 1 before task 3).
	if s[2].TaskID != 1 || s[3].TaskID != 3 {
		t.Errorf("sort not stable: %+v", s)
	}
}

func TestPrefixSums(t *testing.T) {
	l := listOf(10, 20, 30, 40) // sigs 1..4 in the same order
	if got := l.SigSum(0, 3); got != 10 {
		t.Errorf("SigSum(0,3) = %v, want 10", got)
	}
	if got := l.SigSum(1, 2); got != 5 {
		t.Errorf("SigSum(1,2) = %v, want 5", got)
	}
	if got := l.TotalSig(); got != 10 {
		t.Errorf("TotalSig = %v, want 10", got)
	}
	// Weighted mean of [1,2]: (20*2 + 30*3) / 5 = 130/5 = 26.
	if got := l.WeightedMean(1, 2); math.Abs(got-26) > 1e-12 {
		t.Errorf("WeightedMean(1,2) = %v, want 26", got)
	}
	if got := l.TimeSum(0, 3); got != 4 {
		t.Errorf("TimeSum = %v, want 4", got)
	}
	if got := l.ValueTimeSum(0, 1); got != 30 {
		t.Errorf("ValueTimeSum(0,1) = %v, want 30", got)
	}
}

func TestExtrema(t *testing.T) {
	l := listOf(7, 3, 9, 1)
	if l.MinValue() != 1 {
		t.Errorf("MinValue = %v", l.MinValue())
	}
	if l.MaxValue() != 9 {
		t.Errorf("MaxValue = %v", l.MaxValue())
	}
	if l.Value(0) != 1 || l.Value(3) != 9 {
		t.Error("Value(i) should index the sorted order")
	}
}

func TestAddAfterQueryInvalidatesCaches(t *testing.T) {
	l := listOf(5, 10)
	if l.MaxValue() != 10 {
		t.Fatal("precondition failed")
	}
	l.Add(Record{TaskID: 3, Value: 50, Sig: 3})
	if l.MaxValue() != 50 {
		t.Error("cache not invalidated after Add")
	}
	if got := l.TotalSig(); got != 6 {
		t.Errorf("TotalSig after add = %v, want 6", got)
	}
}

func TestSigClamping(t *testing.T) {
	l := &List{}
	l.Add(Record{TaskID: 1, Value: 5, Sig: 0})
	l.Add(Record{TaskID: 2, Value: 5, Sig: -3})
	if got := l.TotalSig(); got <= 0 {
		t.Errorf("TotalSig = %v, want positive after clamping", got)
	}
	if got := l.WeightedMean(0, 1); math.Abs(got-5) > 1e-9 {
		t.Errorf("WeightedMean = %v, want 5", got)
	}
}

func TestSearchValue(t *testing.T) {
	l := listOf(10, 20, 30, 40)
	cases := []struct {
		v    float64
		want int
	}{
		{5, -1},  // below everything
		{10, -1}, // equal to min: no record strictly lower
		{15, 0},  // between 10 and 20
		{20, 0},  // equal: record strictly lower is index 0
		{35, 2},  // between 30 and 40
		{40, 2},  // equal to max
		{100, 3}, // above everything
	}
	for _, c := range cases {
		if got := l.SearchValue(c.v); got != c.want {
			t.Errorf("SearchValue(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRangePanics(t *testing.T) {
	l := listOf(1, 2, 3)
	for _, r := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v should panic", r)
				}
			}()
			l.SigSum(r[0], r[1])
		}()
	}
}

// Property: prefix-sum statistics match a naive recomputation.
func TestPrefixSumsMatchNaive(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rand.New(rand.NewPCG(seed, 1))
		l := &List{}
		for i := 0; i < n; i++ {
			l.Add(Record{
				TaskID: i + 1,
				Value:  r.Float64() * 1000,
				Sig:    r.Float64()*10 + 0.1,
				Time:   r.Float64() * 100,
			})
		}
		s := l.Sorted()
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Value < s[j].Value }) &&
			!sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Value <= s[j].Value }) {
			return false
		}
		// Pick a few random ranges and compare to naive sums.
		for trial := 0; trial < 5; trial++ {
			lo := r.IntN(n)
			hi := lo + r.IntN(n-lo)
			var sig, valSig, tm, valT float64
			for i := lo; i <= hi; i++ {
				sig += s[i].Sig
				valSig += s[i].Value * s[i].Sig
				tm += s[i].Time
				valT += s[i].Value * s[i].Time
			}
			if math.Abs(l.SigSum(lo, hi)-sig) > 1e-6 ||
				math.Abs(l.TimeSum(lo, hi)-tm) > 1e-6 ||
				math.Abs(l.ValueTimeSum(lo, hi)-valT) > 1e-6 {
				return false
			}
			wm := l.WeightedMean(lo, hi)
			if sig > 0 && math.Abs(wm-valSig/sig) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: SearchValue(v) returns the greatest index whose value < v.
func TestSearchValueProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := rand.New(rand.NewPCG(seed, 2))
		l := &List{}
		for i := 0; i < n; i++ {
			l.Add(Record{TaskID: i, Value: float64(r.IntN(20)), Sig: 1})
		}
		s := l.Sorted()
		for v := -1.0; v <= 21; v++ {
			got := l.SearchValue(v)
			want := -1
			for i := range s {
				if s[i].Value < v {
					want = i
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving Add calls with queries (which trigger incremental
// merge rebuilds) yields exactly the same sorted view as adding everything
// up front (one big sort).
func TestIncrementalMergeMatchesFullSort(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		r := rand.New(rand.NewPCG(seed, 5))
		inc := &List{}
		all := &List{}
		var recs []Record
		for i := 0; i < n; i++ {
			rec := Record{TaskID: i + 1, Value: float64(r.IntN(10)), Sig: float64(i + 1), Time: 1}
			recs = append(recs, rec)
		}
		for i, rec := range recs {
			inc.Add(rec)
			all.Add(rec)
			if r.IntN(3) == 0 || i == len(recs)-1 {
				inc.Sorted() // force an incremental merge mid-stream
			}
		}
		a, b := inc.Sorted(), all.Sorted()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return math.Abs(inc.TotalSig()-all.TotalSig()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRebuild5000(b *testing.B) {
	// Steady-state cost: one new record arrives, the sorted view and
	// prefix sums are rebuilt.
	r := rand.New(rand.NewPCG(1, 2))
	base := &List{}
	for i := 0; i < 5000; i++ {
		base.Add(Record{TaskID: i, Value: r.NormFloat64()*2 + 8, Sig: float64(i + 1), Time: 60})
	}
	base.rebuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.Add(Record{TaskID: 5000 + i, Value: r.NormFloat64()*2 + 8, Sig: float64(5000 + i), Time: 60})
		base.rebuild()
	}
}
