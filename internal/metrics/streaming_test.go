package metrics

import (
	"math"
	"testing"

	"dynalloc/internal/resources"
)

func TestReservoirFillAndBound(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 50; i++ {
		r.Observe(float64(i))
	}
	if r.Len() != 50 || r.Seen() != 50 {
		t.Fatalf("len=%d seen=%d after 50 observations", r.Len(), r.Seen())
	}
	for i := 50; i < 100000; i++ {
		r.Observe(float64(i))
	}
	if r.Len() != 100 {
		t.Errorf("reservoir exceeded capacity: %d", r.Len())
	}
	if r.Seen() != 100000 {
		t.Errorf("seen = %d", r.Seen())
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() []float64 {
		r := NewReservoir(32, 7)
		for i := 0; i < 10000; i++ {
			r.Observe(float64(i))
		}
		return r.Sample()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed reservoirs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReservoirUniformish(t *testing.T) {
	// Algorithm R keeps each of n stream elements with probability cap/n;
	// the sample mean of a uniform 0..n-1 stream must land near n/2.
	r := NewReservoir(500, 3)
	const n = 200000
	for i := 0; i < n; i++ {
		r.Observe(float64(i))
	}
	sum := 0.0
	for _, v := range r.Sample() {
		sum += v
	}
	mean := sum / float64(r.Len())
	if math.Abs(mean-n/2) > n/10 {
		t.Errorf("sample mean %v far from %v; sampling is biased", mean, n/2)
	}
}

// TestReservoirDrawUniform pins the bounded draw with a chi-square test over
// a bound that is not a power of two — the case where the old
// `next() % bound` draw was modulo-biased. The statistic is compared against
// the Wilson–Hilferty approximation of the chi-square critical value at
// p ≈ 0.001, so a correct implementation fails with probability ~1e-3 only
// under an unlucky fixed seed — and the seed is fixed, so the test is
// deterministic: it was observed to pass, and stays passing.
func TestReservoirDrawUniform(t *testing.T) {
	const (
		bound = 1000 // not a power of two
		n     = 1_000_000
	)
	for _, seed := range []uint64{1, 42} {
		r := NewReservoir(1, seed)
		counts := make([]int, bound)
		for i := 0; i < n; i++ {
			j := r.draw(bound)
			if j >= bound {
				t.Fatalf("draw(%d) = %d out of range", bound, j)
			}
			counts[j]++
		}
		expected := float64(n) / bound
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// Wilson–Hilferty: chi2_crit ≈ df·(1 - 2/(9df) + z·sqrt(2/(9df)))^3
		// with z = 3.09 (p ≈ 0.001) and df = bound-1.
		df := float64(bound - 1)
		h := 2.0 / (9.0 * df)
		crit := df * math.Pow(1-h+3.09*math.Sqrt(h), 3)
		if chi2 > crit {
			t.Errorf("seed %d: chi-square %.1f over critical %.1f; draw is not uniform", seed, chi2, crit)
		}
	}
}

// TestReservoirDrawSmallBounds: every residue is reachable and in range for
// tiny and awkward bounds, including bound 1 (always 0) and a bound just
// past a power of two.
func TestReservoirDrawSmallBounds(t *testing.T) {
	r := NewReservoir(1, 9)
	for _, bound := range []uint64{1, 2, 3, 5, 7, 129} {
		seen := make(map[uint64]bool)
		for i := 0; i < 20000; i++ {
			j := r.draw(bound)
			if j >= bound {
				t.Fatalf("draw(%d) = %d out of range", bound, j)
			}
			seen[j] = true
		}
		if uint64(len(seen)) != bound {
			t.Errorf("draw(%d) hit only %d residues", bound, len(seen))
		}
	}
}

func TestReservoirQuantile(t *testing.T) {
	r := NewReservoir(1000, 5)
	for i := 1; i <= 1000; i++ {
		r.Observe(float64(i))
	}
	// Capacity >= stream: the sample is exact, quantiles interpolate it.
	if q := r.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := r.Quantile(1); q != 1000 {
		t.Errorf("q1 = %v", q)
	}
	if q := r.Quantile(0.5); math.Abs(q-500.5) > 1 {
		t.Errorf("median = %v, want ~500.5", q)
	}
	if q := NewReservoir(10, 1).Quantile(0.5); q != 0 {
		t.Errorf("empty reservoir quantile = %v", q)
	}
}

func TestReservoirDisabled(t *testing.T) {
	r := NewReservoir(0, 1)
	for i := 0; i < 10; i++ {
		r.Observe(1)
	}
	if r.Len() != 0 || r.Seen() != 10 {
		t.Errorf("disabled reservoir: len=%d seen=%d", r.Len(), r.Seen())
	}
}

func outcome(cat string, mem, runtime float64) TaskOutcome {
	peak := resources.New(1, mem, 10, 0)
	return TaskOutcome{
		Category: cat,
		Peak:     peak,
		Runtime:  runtime,
		Attempts: []Attempt{{Alloc: resources.New(2, 2*mem, 20, runtime), Duration: runtime, Status: Success}},
	}
}

func TestByCategoryPartitionsAccumulator(t *testing.T) {
	bc := NewByCategory(16, 9)
	var global Accumulator
	outs := []TaskOutcome{
		outcome("a", 100, 10), outcome("b", 50, 5),
		outcome("a", 200, 20), outcome("a", 150, 1), outcome("b", 75, 2),
	}
	for i := range outs {
		global.Add(outs[i])
		bc.Add(&outs[i])
	}
	if got := bc.Categories(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("categories = %v", got)
	}
	if bc.Stats("a").Acc.Tasks() != 3 || bc.Stats("b").Acc.Tasks() != 2 {
		t.Error("per-category task counts wrong")
	}
	if bc.Tasks() != global.Tasks() {
		t.Errorf("total %d != global %d", bc.Tasks(), global.Tasks())
	}
	for k := resources.Kind(0); k < resources.NumKinds; k++ {
		sum := bc.Stats("a").Acc.Allocation(k) + bc.Stats("b").Acc.Allocation(k)
		if math.Abs(sum-global.Allocation(k)) > 1e-9*math.Max(1, math.Abs(sum)) {
			t.Errorf("kind %v: allocation partition broken: %v vs %v", k, sum, global.Allocation(k))
		}
	}
	if bc.Stats("a").Runtime.Seen() != 3 {
		t.Errorf("runtime reservoir saw %d", bc.Stats("a").Runtime.Seen())
	}
	if bc.Stats("missing") != nil {
		t.Error("unknown category should be nil")
	}
}

func TestByCategoryReservoirSeedsStable(t *testing.T) {
	// Same seed and same per-category streams => identical samples, even if
	// categories first appear in a different interleaving.
	run := func(order []string) []float64 {
		bc := NewByCategory(8, 42)
		for i, cat := range order {
			o := outcome(cat, float64(100+i), 1)
			bc.Add(&o)
		}
		return bc.Stats("x").Memory.Sample()
	}
	a := run([]string{"x", "y", "x", "y"})
	b := run([]string{"y", "x", "y", "x"})
	// Category x saw memory 100, 102 in run a and 101, 103 in run b — the
	// *samples kept* differ, but the reservoir's random decisions must
	// depend only on (seed, category), so both kept the same count here.
	if len(a) != len(b) {
		t.Errorf("sample sizes diverged: %d vs %d", len(a), len(b))
	}
}
