package metrics

import (
	"math/bits"
	"sort"

	"dynalloc/internal/resources"
)

// Reservoir keeps a bounded uniform sample of an unbounded stream of values
// (Vitter's Algorithm R), so streaming runs can report distribution shape —
// quantiles of per-task memory or runtime — without retaining per-task
// state. Randomness comes from an internal splitmix64 generator seeded at
// construction, so a run's samples are deterministic.
type Reservoir struct {
	capacity int
	seen     uint64
	state    uint64
	vals     []float64
}

// NewReservoir returns a reservoir holding at most capacity samples.
// capacity <= 0 disables sampling (the reservoir still counts the stream).
func NewReservoir(capacity int, seed uint64) *Reservoir {
	r := &Reservoir{capacity: capacity, state: seed}
	// Warm the state so nearby seeds diverge immediately.
	r.next()
	return r
}

// Observe folds one value into the sample.
func (r *Reservoir) Observe(v float64) {
	r.seen++
	if r.capacity <= 0 {
		return
	}
	if len(r.vals) < r.capacity {
		r.vals = append(r.vals, v)
		return
	}
	// Keep the new value with probability capacity/seen: draw a uniform
	// index in [0, seen) and replace only when it lands in the sample.
	if j := r.draw(r.seen); j < uint64(r.capacity) {
		r.vals[j] = v
	}
}

// draw returns a uniform value in [0, bound) via Lemire's nearly-divisionless
// bounded draw: take the high 64 bits of a 64×64→128 multiply, rejecting the
// few raw values whose low half falls in the partial interval. A plain
// `next() % bound` over-weights the first 2^64 mod bound indices whenever
// bound is not a power of two, which would bias replacement toward the front
// of the sample and skew the reported quantiles.
func (r *Reservoir) draw(bound uint64) uint64 {
	x := r.next()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		// Only computed on the rare partial-interval hit: threshold is
		// 2^64 mod bound, the count of raw values that must be rejected for
		// every residue class to be hit equally often.
		threshold := -bound % bound
		for lo < threshold {
			x = r.next()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return hi
}

// next advances the splitmix64 state.
func (r *Reservoir) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seen returns how many values the stream produced.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Len returns the current sample size (min(capacity, seen)).
func (r *Reservoir) Len() int { return len(r.vals) }

// Sample returns a copy of the current sample, in insertion order.
func (r *Reservoir) Sample() []float64 {
	out := make([]float64, len(r.vals))
	copy(out, r.vals)
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) of the stream from the
// sample, by linear interpolation between order statistics. It returns 0 on
// an empty sample.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.vals) == 0 {
		return 0
	}
	s := r.Sample()
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CategoryStats aggregates the outcomes of one task category: the full
// waste/AWE accumulator plus bounded reservoirs over peak memory and
// runtime. The paper's task-oriented allocators are per-category learners,
// so per-category efficiency is the natural streaming report.
type CategoryStats struct {
	Category string
	Acc      Accumulator
	// Memory samples per-task peak memory (MB); Runtime samples per-task
	// runtime (s). Both are bounded reservoirs — see Reservoir.
	Memory  *Reservoir
	Runtime *Reservoir
}

// ByCategory folds a stream of task outcomes into per-category statistics
// with O(categories + reservoir capacity) memory regardless of task count.
// The zero value is not usable; construct with NewByCategory. Not safe for
// concurrent use.
type ByCategory struct {
	// IncludeEvictions mirrors Accumulator.IncludeEvictions for every
	// per-category accumulator created after it is set.
	IncludeEvictions bool

	reservoirCap int
	seed         uint64
	order        []string
	stats        map[string]*CategoryStats
}

// NewByCategory returns an empty per-category folder whose reservoirs hold
// at most reservoirCap samples each (<= 0 disables sampling).
func NewByCategory(reservoirCap int, seed uint64) *ByCategory {
	return &ByCategory{
		reservoirCap: reservoirCap,
		seed:         seed,
		stats:        make(map[string]*CategoryStats),
	}
}

// Add folds one outcome into its category's statistics. The outcome is only
// read during the call, so callers may pass a pointer into reused storage.
func (bc *ByCategory) Add(o *TaskOutcome) {
	cs := bc.stats[o.Category]
	if cs == nil {
		// Derive per-category reservoir seeds from the base seed and the
		// category name (FNV-1a), so samples are stable across runs and
		// independent of category arrival order.
		h := uint64(14695981039346656037)
		for i := 0; i < len(o.Category); i++ {
			h ^= uint64(o.Category[i])
			h *= 1099511628211
		}
		cs = &CategoryStats{
			Category: o.Category,
			Memory:   NewReservoir(bc.reservoirCap, bc.seed^h),
			Runtime:  NewReservoir(bc.reservoirCap, bc.seed^h^0xa5a5a5a5a5a5a5a5),
		}
		cs.Acc.IncludeEvictions = bc.IncludeEvictions
		bc.stats[o.Category] = cs
		bc.order = append(bc.order, o.Category)
	}
	cs.Acc.Add(*o)
	cs.Memory.Observe(o.Peak.Get(resources.Memory))
	cs.Runtime.Observe(o.Runtime)
}

// Categories returns the category names in first-appearance order.
func (bc *ByCategory) Categories() []string {
	out := make([]string, len(bc.order))
	copy(out, bc.order)
	return out
}

// Stats returns the statistics for one category, or nil if no task of that
// category has been observed.
func (bc *ByCategory) Stats(category string) *CategoryStats { return bc.stats[category] }

// Tasks returns the total number of outcomes folded across all categories.
func (bc *ByCategory) Tasks() int {
	n := 0
	for _, cs := range bc.stats {
		n += cs.Acc.Tasks()
	}
	return n
}
