package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynalloc/internal/resources"
)

func vec(c, m, d float64) resources.Vector {
	return resources.New(c, m, d, resources.Unlimited)
}

// oracleOutcome builds a task allocated exactly its consumption, once.
func oracleOutcome(id int, peak resources.Vector, runtime float64) TaskOutcome {
	return TaskOutcome{
		TaskID:  id,
		Peak:    peak,
		Runtime: runtime,
		Attempts: []Attempt{
			{Alloc: peak, Duration: runtime, Status: Success},
		},
	}
}

func TestAttemptStatusString(t *testing.T) {
	if Success.String() != "success" || Exhausted.String() != "exhausted" || Evicted.String() != "evicted" {
		t.Error("status strings wrong")
	}
	if AttemptStatus(42).String() == "" {
		t.Error("unknown status should still stringify")
	}
}

func TestOracleIsPerfect(t *testing.T) {
	// The oracle (a = c, zero retries) has zero waste and AWE = 1
	// (Section II-C: "W is allocated optimally iff its AWE is equal to 1").
	var acc Accumulator
	acc.Add(oracleOutcome(1, vec(2, 1000, 300), 60))
	acc.Add(oracleOutcome(2, vec(1, 500, 300), 120))
	for _, k := range resources.AllocatedKinds() {
		if got := acc.AWE(k); math.Abs(got-1) > 1e-12 {
			t.Errorf("oracle AWE(%s) = %v, want 1", k, got)
		}
		if acc.Waste(k) != 0 {
			t.Errorf("oracle waste(%s) = %v, want 0", k, acc.Waste(k))
		}
	}
	if acc.Tasks() != 2 || acc.Attempts() != 2 || acc.Retries() != 0 {
		t.Errorf("counts: tasks=%d attempts=%d retries=%d", acc.Tasks(), acc.Attempts(), acc.Retries())
	}
}

func TestSingleTaskHandComputed(t *testing.T) {
	// Task consumes (1 core, 400 MB, 100 MB) for 100 s.
	// Attempt 1: alloc (1, 200, 1024), killed at 50 s (memory exhausted).
	// Attempt 2: alloc (1, 800, 1024), succeeds, runs 100 s.
	o := TaskOutcome{
		TaskID:  7,
		Peak:    vec(1, 400, 100),
		Runtime: 100,
		Attempts: []Attempt{
			{Alloc: vec(1, 200, 1024), Duration: 50, Status: Exhausted},
			{Alloc: vec(1, 800, 1024), Duration: 100, Status: Success},
		},
	}
	if got := o.Consumption(resources.Memory); got != 40000 {
		t.Errorf("Consumption = %v, want 40000", got)
	}
	// Internal fragmentation: 100 * (800 - 400) = 40000.
	if got := o.InternalFragmentation(resources.Memory); got != 40000 {
		t.Errorf("IF = %v, want 40000", got)
	}
	// Failed allocation: 200 * 50 = 10000.
	if got := o.FailedAllocation(resources.Memory); got != 10000 {
		t.Errorf("FA = %v, want 10000", got)
	}
	if got := o.Waste(resources.Memory); got != 50000 {
		t.Errorf("Waste = %v, want 50000", got)
	}
	// Allocation: 800*100 + 200*50 = 90000. AWE = 40000/90000.
	if got := o.Allocation(resources.Memory); got != 90000 {
		t.Errorf("Allocation = %v, want 90000", got)
	}
	var acc Accumulator
	acc.Add(o)
	if got := acc.AWE(resources.Memory); math.Abs(got-4.0/9.0) > 1e-12 {
		t.Errorf("AWE = %v, want 4/9", got)
	}
	if acc.Retries() != 1 {
		t.Errorf("Retries = %d, want 1", acc.Retries())
	}
	if o.Retries() != 1 {
		t.Errorf("outcome retries = %d", o.Retries())
	}
}

func TestWasteIdentity(t *testing.T) {
	// Identity: Allocation - Consumption == Waste for every kind, always.
	f := func(seed uint64, attemptsRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		nFail := int(attemptsRaw % 5)
		peak := vec(r.Float64()*4+0.1, r.Float64()*4000+10, r.Float64()*2000+10)
		runtime := r.Float64()*500 + 1
		o := TaskOutcome{TaskID: 1, Peak: peak, Runtime: runtime}
		alloc := peak
		for i := 0; i < nFail; i++ {
			under := alloc.Scale(0.3 + r.Float64()*0.5)
			o.Attempts = append(o.Attempts, Attempt{
				Alloc: under, Duration: r.Float64() * runtime, Status: Exhausted,
			})
		}
		final := peak.Scale(1 + r.Float64())
		o.Attempts = append(o.Attempts, Attempt{Alloc: final, Duration: runtime, Status: Success})
		for _, k := range resources.AllocatedKinds() {
			lhs := o.Allocation(k) - o.Consumption(k)
			if math.Abs(lhs-o.Waste(k)) > 1e-6*(1+math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFinalAllocOfFailedTask(t *testing.T) {
	o := TaskOutcome{
		Peak:    vec(1, 100, 100),
		Runtime: 10,
		Attempts: []Attempt{
			{Alloc: vec(1, 50, 100), Duration: 5, Status: Exhausted},
		},
	}
	if !o.FinalAlloc().IsZero() {
		t.Error("task with no success should have zero final alloc")
	}
	if o.InternalFragmentation(resources.Memory) != 0 {
		t.Error("no IF without a successful attempt")
	}
}

func TestEvictionsExcludedByDefault(t *testing.T) {
	o := TaskOutcome{
		TaskID:  1,
		Peak:    vec(1, 100, 100),
		Runtime: 10,
		Attempts: []Attempt{
			{Alloc: vec(1, 100, 100), Duration: 6, Status: Evicted},
			{Alloc: vec(1, 100, 100), Duration: 10, Status: Success},
		},
	}
	var acc Accumulator
	acc.Add(o)
	if got := acc.AWE(resources.Memory); math.Abs(got-1) > 1e-12 {
		t.Errorf("AWE with excluded eviction = %v, want 1", got)
	}
	if acc.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", acc.Evictions())
	}
	if got := o.EvictedTime(); got != 6 {
		t.Errorf("EvictedTime = %v, want 6", got)
	}

	var inc Accumulator
	inc.IncludeEvictions = true
	inc.Add(o)
	// Allocation = 100*10 + 100*6 = 1600; consumption = 1000.
	if got := inc.AWE(resources.Memory); math.Abs(got-0.625) > 1e-12 {
		t.Errorf("AWE with included eviction = %v, want 0.625", got)
	}
}

func TestStagingTimeChargedToFragmentation(t *testing.T) {
	// A task whose successful attempt held its allocation for 110 s (10 s
	// staging + 100 s run) is charged the extra 10 allocation-seconds as
	// internal fragmentation.
	o := TaskOutcome{
		TaskID:  1,
		Peak:    vec(1, 400, 100),
		Runtime: 100,
		Attempts: []Attempt{
			{Alloc: vec(1, 400, 100), Duration: 110, Status: Success},
		},
	}
	// IF = 400*110 - 400*100 = 4000.
	if got := o.InternalFragmentation(resources.Memory); got != 4000 {
		t.Errorf("IF = %v, want 4000", got)
	}
	if got := o.Allocation(resources.Memory); got != 44000 {
		t.Errorf("Allocation = %v, want 44000", got)
	}
	var acc Accumulator
	acc.Add(o)
	if awe := acc.AWE(resources.Memory); math.Abs(awe-100.0/110.0) > 1e-12 {
		t.Errorf("AWE = %v, want 100/110", awe)
	}
}

func TestAWEZeroAllocation(t *testing.T) {
	var acc Accumulator
	if acc.AWE(resources.Memory) != 0 {
		t.Error("empty accumulator AWE should be 0")
	}
}

func TestAWEInUnitIntervalForOverAllocations(t *testing.T) {
	// Whenever every attempt allocates at least the task's needs at failure
	// time, AWE stays within (0, 1].
	f := func(seed uint64, n uint8) bool {
		r := rand.New(rand.NewPCG(seed, 33))
		var acc Accumulator
		for i := 0; i < int(n%20)+1; i++ {
			peak := vec(r.Float64()*4+0.1, r.Float64()*4000+10, r.Float64()*2000+10)
			runtime := r.Float64()*100 + 1
			o := TaskOutcome{TaskID: i, Peak: peak, Runtime: runtime}
			o.Attempts = append(o.Attempts, Attempt{
				Alloc: peak.Scale(1 + r.Float64()), Duration: runtime, Status: Success,
			})
			acc.Add(o)
		}
		for _, k := range resources.AllocatedKinds() {
			awe := acc.AWE(k)
			if awe <= 0 || awe > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	var acc Accumulator
	acc.Add(oracleOutcome(1, vec(1, 100, 200), 50))
	s := acc.Summarize()
	if s.Tasks != 1 || len(s.PerKind) != 3 {
		t.Fatalf("summary = %+v", s)
	}
	for _, ks := range s.PerKind {
		if math.Abs(ks.AWE-1) > 1e-12 {
			t.Errorf("summary AWE(%s) = %v, want 1", ks.Kind, ks.AWE)
		}
		if ks.Allocation != ks.Consumption {
			t.Errorf("summary alloc != consumption for oracle")
		}
	}
}

func TestFailedStatusAccounting(t *testing.T) {
	if Failed.String() != "failed" {
		t.Error("failed status string wrong")
	}
	// A task abandoned at the retry limit: two exhaustions, then the
	// terminal failed marker. It holds allocation (waste) but never
	// contributes consumption.
	doomed := TaskOutcome{
		TaskID:  1,
		Peak:    vec(1, 500, 100),
		Runtime: 10,
		Attempts: []Attempt{
			{Alloc: vec(1, 100, 100), Duration: 2, Status: Exhausted},
			{Alloc: vec(1, 100, 100), Duration: 2, Status: Exhausted},
			{Alloc: vec(1, 100, 100), Status: Failed},
		},
	}
	if doomed.Succeeded() {
		t.Error("doomed task reports success")
	}
	var acc Accumulator
	acc.Add(doomed)
	acc.Add(oracleOutcome(2, vec(1, 100, 100), 10))
	if acc.Failures() != 1 {
		t.Errorf("failures = %d, want 1", acc.Failures())
	}
	if acc.Retries() != 2 {
		t.Errorf("retries = %d, want 2", acc.Retries())
	}
	s := acc.Summarize()
	if s.Failures != 1 {
		t.Errorf("summary failures = %d, want 1", s.Failures)
	}
	// Consumption comes only from the successful task; the doomed one adds
	// pure waste: memory AWE = (100*10) / (100*10 + 2*2*100).
	want := 1000.0 / 1400.0
	if got := acc.AWE(resources.Memory); math.Abs(got-want) > 1e-12 {
		t.Errorf("memory AWE = %v, want %v", got, want)
	}
	// The Failed marker itself holds no allocation time.
	if got := doomed.FailedAllocation(resources.Memory); got != 400 {
		t.Errorf("failed allocation = %v, want 400 (exhausted attempts only)", got)
	}
}
