// Package metrics implements the evaluation metrics of Section II-C:
// per-task resource waste split into internal fragmentation and failed
// allocation, and the workflow-level Absolute Workflow Efficiency (AWE)
//
//	AWE = Σ C(T_i) / Σ A(T_i)
//
// where C(T_i) = c_i·t_i is a task's useful consumption and A(T_i) is its
// total allocation across every attempt. AWE is independent of the number of
// workers, which is what makes it the paper's headline metric on
// opportunistic resources.
package metrics

import (
	"fmt"

	"dynalloc/internal/resources"
)

// AttemptStatus describes how one execution attempt of a task ended.
type AttemptStatus int

const (
	// Success: the task completed within its allocation.
	Success AttemptStatus = iota
	// Exhausted: the task over-consumed its allocation and was killed; it
	// must be retried with a bigger allocation (assumption 4, Section II-B).
	Exhausted
	// Evicted: the worker disappeared mid-run (opportunistic eviction).
	// This is an infrastructure failure, not an allocation failure; the
	// task retries with the same allocation.
	Evicted
	// Failed: the task was abandoned permanently after exceeding its
	// retry budget (bounded retry under opportunistic loss). A Failed
	// attempt is a terminal marker: it holds no allocation time of its
	// own, and a task whose attempts end in Failed never succeeded.
	Failed
)

func (s AttemptStatus) String() string {
	switch s {
	case Success:
		return "success"
	case Exhausted:
		return "exhausted"
	case Evicted:
		return "evicted"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("AttemptStatus(%d)", int(s))
	}
}

// Attempt records one execution attempt: the allocation it ran under, how
// long it ran (virtual seconds) before ending, and how it ended.
type Attempt struct {
	Alloc    resources.Vector
	Duration float64
	Status   AttemptStatus
}

// TaskOutcome aggregates every attempt of one task together with its true
// peak consumption and successful runtime.
type TaskOutcome struct {
	TaskID   int
	Category string
	Peak     resources.Vector // actual peak consumption (c, m, d)
	Runtime  float64          // duration t of the successful run
	Attempts []Attempt        // chronological; the last one has Status Success or Failed
	// SubmitTime and DoneTime are the times (seconds on the engine's clock:
	// virtual for the simulators, wall-clock since manager start for the
	// live engine) at which the task entered the ready queue and reached a
	// terminal state. They are trace metadata for run-log replay and do not
	// participate in any waste metric.
	SubmitTime float64
	DoneTime   float64
}

// Succeeded reports whether any attempt completed successfully. A task
// abandoned under a retry bound (its last attempt has Status Failed) never
// succeeded and contributes no useful consumption.
func (o *TaskOutcome) Succeeded() bool {
	for _, a := range o.Attempts {
		if a.Status == Success {
			return true
		}
	}
	return false
}

// FinalAlloc returns the allocation of the successful attempt, or the zero
// vector when the task never succeeded.
func (o *TaskOutcome) FinalAlloc() resources.Vector {
	for i := len(o.Attempts) - 1; i >= 0; i-- {
		if o.Attempts[i].Status == Success {
			return o.Attempts[i].Alloc
		}
	}
	return resources.Vector{}
}

// Retries returns the number of exhausted (allocation-failure) attempts.
func (o *TaskOutcome) Retries() int {
	n := 0
	for _, a := range o.Attempts {
		if a.Status == Exhausted {
			n++
		}
	}
	return n
}

// Consumption returns C(T) = c·t for resource kind k.
func (o *TaskOutcome) Consumption(k resources.Kind) float64 {
	return o.Peak.Get(k) * o.Runtime
}

// successDuration returns how long the successful attempt held its
// allocation. It equals the runtime unless the attempt also covered
// non-compute time (e.g. input staging under the data layer); a zero
// recorded duration falls back to the runtime.
func (o *TaskOutcome) successDuration() float64 {
	for i := len(o.Attempts) - 1; i >= 0; i-- {
		if o.Attempts[i].Status == Success {
			if d := o.Attempts[i].Duration; d > 0 {
				return d
			}
			return o.Runtime
		}
	}
	return 0
}

// InternalFragmentation returns a·d - c·t for kind k: everything the
// successful attempt held (allocation a over its duration d) beyond what
// the task consumed (peak c over the runtime t). When d equals the runtime
// this is the paper's t·(a - c).
func (o *TaskOutcome) InternalFragmentation(k resources.Kind) float64 {
	a := o.FinalAlloc().Get(k)
	if a == 0 {
		return 0
	}
	return a*o.successDuration() - o.Peak.Get(k)*o.Runtime
}

// FailedAllocation returns Σ a_i·t_i over the exhausted attempts for kind k.
func (o *TaskOutcome) FailedAllocation(k resources.Kind) float64 {
	sum := 0.0
	for _, at := range o.Attempts {
		if at.Status == Exhausted {
			sum += at.Alloc.Get(k) * at.Duration
		}
	}
	return sum
}

// Waste returns ResourceWaste(T) = t·(a-c) + Σ a_i·t_i for kind k.
func (o *TaskOutcome) Waste(k resources.Kind) float64 {
	return o.InternalFragmentation(k) + o.FailedAllocation(k)
}

// Allocation returns A(T) = a·d + Σ a_i·t_i for kind k, i.e. everything the
// task held across all allocation attempts (d being the successful
// attempt's duration, equal to the runtime unless the attempt included
// staging time).
func (o *TaskOutcome) Allocation(k resources.Kind) float64 {
	return o.FinalAlloc().Get(k)*o.successDuration() + o.FailedAllocation(k)
}

// EvictedTime returns the total duration of attempts lost to evictions.
func (o *TaskOutcome) EvictedTime() float64 {
	sum := 0.0
	for _, at := range o.Attempts {
		if at.Status == Evicted {
			sum += at.Duration
		}
	}
	return sum
}

// Accumulator folds task outcomes into workflow-level totals.
// The zero value is ready to use.
//
// By default, time held by evicted attempts is excluded from the allocation
// totals: an eviction is a property of the opportunistic infrastructure, not
// of the allocation decision, and the paper's AWE metric is defined to be
// independent of the worker pool. Set IncludeEvictions to charge it anyway.
type Accumulator struct {
	IncludeEvictions bool

	consumption [resources.NumKinds]float64
	allocation  [resources.NumKinds]float64
	internal    [resources.NumKinds]float64
	failed      [resources.NumKinds]float64

	tasks     int
	attempts  int
	retries   int
	evictions int
	failures  int
}

// Add folds one task outcome into the totals.
func (acc *Accumulator) Add(o TaskOutcome) {
	acc.tasks++
	acc.attempts += len(o.Attempts)
	for _, at := range o.Attempts {
		switch at.Status {
		case Exhausted:
			acc.retries++
		case Evicted:
			acc.evictions++
		case Failed:
			acc.failures++
		}
	}
	succeeded := o.Succeeded()
	for k := resources.Kind(0); k < resources.NumKinds; k++ {
		// A permanently failed task produced nothing useful: its failed
		// attempts still count as allocation (waste), but it contributes
		// no consumption to the AWE numerator.
		if succeeded {
			acc.consumption[k] += o.Consumption(k)
		}
		acc.allocation[k] += o.Allocation(k)
		acc.internal[k] += o.InternalFragmentation(k)
		acc.failed[k] += o.FailedAllocation(k)
		if acc.IncludeEvictions {
			for _, at := range o.Attempts {
				if at.Status == Evicted {
					acc.allocation[k] += at.Alloc.Get(k) * at.Duration
				}
			}
		}
	}
}

// AWE returns the Absolute Workflow Efficiency for kind k, in [0, 1] for
// feasible allocations (1 means every allocated unit was consumed). It
// returns 0 when nothing was allocated.
func (acc *Accumulator) AWE(k resources.Kind) float64 {
	if acc.allocation[k] == 0 {
		return 0
	}
	return acc.consumption[k] / acc.allocation[k]
}

// Consumption returns Σ C(T_i) for kind k.
func (acc *Accumulator) Consumption(k resources.Kind) float64 { return acc.consumption[k] }

// Allocation returns Σ A(T_i) for kind k.
func (acc *Accumulator) Allocation(k resources.Kind) float64 { return acc.allocation[k] }

// InternalFragmentation returns the total internal fragmentation for kind k.
func (acc *Accumulator) InternalFragmentation(k resources.Kind) float64 { return acc.internal[k] }

// FailedAllocation returns the total failed-allocation waste for kind k.
func (acc *Accumulator) FailedAllocation(k resources.Kind) float64 { return acc.failed[k] }

// Waste returns the total resource waste for kind k.
func (acc *Accumulator) Waste(k resources.Kind) float64 {
	return acc.internal[k] + acc.failed[k]
}

// Tasks returns the number of accumulated task outcomes.
func (acc *Accumulator) Tasks() int { return acc.tasks }

// Attempts returns the total number of execution attempts.
func (acc *Accumulator) Attempts() int { return acc.attempts }

// Retries returns the total number of allocation failures.
func (acc *Accumulator) Retries() int { return acc.retries }

// Evictions returns the total number of eviction-lost attempts.
func (acc *Accumulator) Evictions() int { return acc.evictions }

// Failures returns the number of tasks abandoned permanently after
// exhausting their retry budget.
func (acc *Accumulator) Failures() int { return acc.failures }

// Summary is a flat, serializable snapshot of an Accumulator, used by the
// figure harnesses and the trace dumps.
type Summary struct {
	Tasks     int           `json:"tasks"`
	Attempts  int           `json:"attempts"`
	Retries   int           `json:"retries"`
	Evictions int           `json:"evictions"`
	Failures  int           `json:"failures,omitempty"`
	PerKind   []KindSummary `json:"per_kind"`
}

// KindSummary holds the per-resource-kind metrics.
type KindSummary struct {
	Kind                  string  `json:"kind"`
	AWE                   float64 `json:"awe"`
	Consumption           float64 `json:"consumption"`
	Allocation            float64 `json:"allocation"`
	InternalFragmentation float64 `json:"internal_fragmentation"`
	FailedAllocation      float64 `json:"failed_allocation"`
}

// Summarize snapshots the accumulator for the allocated kinds.
func (acc *Accumulator) Summarize() Summary {
	s := Summary{
		Tasks:     acc.tasks,
		Attempts:  acc.attempts,
		Retries:   acc.retries,
		Evictions: acc.evictions,
		Failures:  acc.failures,
	}
	for _, k := range resources.AllocatedKinds() {
		s.PerKind = append(s.PerKind, KindSummary{
			Kind:                  k.String(),
			AWE:                   acc.AWE(k),
			Consumption:           acc.consumption[k],
			Allocation:            acc.allocation[k],
			InternalFragmentation: acc.internal[k],
			FailedAllocation:      acc.failed[k],
		})
	}
	return s
}
