// Package resources defines the resource model shared by every component of
// the dynalloc reproduction: the resource kinds tracked by the paper (cores,
// memory, disk, execution time), fixed-size vectors over those kinds, and the
// comparison operations used to decide whether a task's consumption fits
// within its allocation or within a worker's capacity.
//
// Units follow the paper: cores are fractional core counts, memory and disk
// are megabytes, and time is seconds.
package resources

import (
	"fmt"
	"math"
	"strings"
)

// Kind identifies one resource dimension.
type Kind int

// The resource kinds, in canonical order. Cores, Memory, and Disk are the
// dimensions evaluated by the paper (Figures 5 and 6); Time participates in
// the task model (a task T(c, m, d, t) runs for t seconds) and in the waste
// metrics as the multiplier of every allocation.
const (
	Cores Kind = iota
	Memory
	Disk
	Time

	// NumKinds is the number of resource kinds.
	NumKinds
)

var kindNames = [NumKinds]string{"cores", "memory", "disk", "time"}
var kindUnits = [NumKinds]string{"cores", "MB", "MB", "s"}

// String returns the lowercase name of the kind, e.g. "memory".
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Unit returns the measurement unit of the kind, e.g. "MB".
func (k Kind) Unit() string {
	if k < 0 || k >= NumKinds {
		return "?"
	}
	return kindUnits[k]
}

// ParseKind converts a kind name (as produced by Kind.String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < NumKinds; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("resources: unknown kind %q", s)
}

// Kinds returns all resource kinds in canonical order.
func Kinds() []Kind {
	return []Kind{Cores, Memory, Disk, Time}
}

// AllocatedKinds returns the kinds for which the allocators predict values
// and for which the paper reports efficiency and waste: cores, memory, disk.
func AllocatedKinds() []Kind {
	return []Kind{Cores, Memory, Disk}
}

// Vector holds one value per resource kind. The zero value is the all-zero
// vector and is ready to use.
type Vector [NumKinds]float64

// New builds a vector from explicit cores/memory/disk/time values.
func New(cores, memoryMB, diskMB, timeS float64) Vector {
	return Vector{cores, memoryMB, diskMB, timeS}
}

// Get returns the value of kind k.
func (v Vector) Get(k Kind) float64 { return v[k] }

// With returns a copy of v with kind k set to val.
func (v Vector) With(k Kind, val float64) Vector {
	v[k] = val
	return v
}

// Add returns the element-wise sum v + o.
func (v Vector) Add(o Vector) Vector {
	for k := range v {
		v[k] += o[k]
	}
	return v
}

// Sub returns the element-wise difference v - o.
func (v Vector) Sub(o Vector) Vector {
	for k := range v {
		v[k] -= o[k]
	}
	return v
}

// Scale returns v with every element multiplied by f.
func (v Vector) Scale(f float64) Vector {
	for k := range v {
		v[k] *= f
	}
	return v
}

// Max returns the element-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	for k := range v {
		v[k] = math.Max(v[k], o[k])
	}
	return v
}

// Min returns the element-wise minimum of v and o.
func (v Vector) Min(o Vector) Vector {
	for k := range v {
		v[k] = math.Min(v[k], o[k])
	}
	return v
}

// FitsWithin reports whether every element of v is less than or equal to the
// corresponding element of limit. It is the success condition of the paper's
// assumption set: a task executes successfully only if c <= c_a, m <= m_a,
// d <= d_a, and t <= t_a.
func (v Vector) FitsWithin(limit Vector) bool {
	for k := range v {
		if v[k] > limit[k] {
			return false
		}
	}
	return true
}

// Exceeded returns the kinds in which v strictly exceeds limit. An empty
// result means v fits within limit.
func (v Vector) Exceeded(limit Vector) []Kind {
	var out []Kind
	for k := Kind(0); k < NumKinds; k++ {
		if v[k] > limit[k] {
			out = append(out, k)
		}
	}
	return out
}

// IsZero reports whether every element is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// NonNegative reports whether every element is >= 0.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// String renders the vector as "cores=1.0 memory=1024.0MB disk=1024.0MB time=60.0s".
func (v Vector) String() string {
	var b strings.Builder
	for k := Kind(0); k < NumKinds; k++ {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.1f%s", k, v[k], suffix(k))
	}
	return b.String()
}

func suffix(k Kind) string {
	switch k {
	case Memory, Disk:
		return "MB"
	case Time:
		return "s"
	default:
		return ""
	}
}

// Unlimited is a practically infinite resource amount, used for dimensions
// that an allocator chooses not to constrain (e.g. wall time by default).
const Unlimited = math.MaxFloat64 / 4

// Worker describes the capacity of one worker node. The paper's evaluation
// deploys opportunistic workers with 16 cores, 64 GB of memory, and 64 GB of
// disk (Section V-A).
type Worker struct {
	Capacity Vector
}

// PaperWorker returns the worker shape used throughout the paper's
// evaluation: 16 cores, 64 GB memory, 64 GB disk, unlimited time.
func PaperWorker() Vector {
	return Vector{16, 64 * 1024, 64 * 1024, Unlimited}
}

// PaperExploration returns the conservative exploratory-mode allocation used
// by the bucketing algorithms (Section V-A): 1 core, 1 GB memory, 1 GB disk.
func PaperExploration() Vector {
	return Vector{1, 1024, 1024, Unlimited}
}
