package resources

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Cores:  "cores",
		Memory: "memory",
		Disk:   "disk",
		Time:   "time",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("out-of-range kind string = %q", got)
	}
}

func TestKindUnit(t *testing.T) {
	if Memory.Unit() != "MB" || Disk.Unit() != "MB" {
		t.Errorf("memory/disk unit should be MB")
	}
	if Time.Unit() != "s" {
		t.Errorf("time unit should be s, got %q", Time.Unit())
	}
	if Kind(-1).Unit() != "?" {
		t.Errorf("invalid kind unit should be ?")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(NumKinds) {
		t.Fatalf("Kinds() returned %d kinds, want %d", len(ks), NumKinds)
	}
	for i, k := range ks {
		if int(k) != i {
			t.Errorf("Kinds()[%d] = %v, want kind %d", i, k, i)
		}
	}
	ak := AllocatedKinds()
	if len(ak) != 3 || ak[0] != Cores || ak[1] != Memory || ak[2] != Disk {
		t.Errorf("AllocatedKinds() = %v, want [cores memory disk]", ak)
	}
}

func TestVectorBasics(t *testing.T) {
	v := New(2, 1024, 2048, 60)
	if v.Get(Cores) != 2 || v.Get(Memory) != 1024 || v.Get(Disk) != 2048 || v.Get(Time) != 60 {
		t.Fatalf("New round-trip failed: %v", v)
	}
	w := v.With(Memory, 512)
	if w.Get(Memory) != 512 {
		t.Errorf("With did not set memory: %v", w)
	}
	if v.Get(Memory) != 1024 {
		t.Errorf("With mutated receiver: %v", v)
	}
}

func TestVectorArithmetic(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(10, 20, 30, 40)
	if got := a.Add(b); got != New(11, 22, 33, 44) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != New(9, 18, 27, 36) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(3); got != New(3, 6, 9, 12) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Max(New(0, 5, 2, 50)); got != New(1, 5, 3, 50) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(New(0, 5, 2, 50)); got != New(0, 2, 2, 4) {
		t.Errorf("Min = %v", got)
	}
}

func TestFitsWithinAndExceeded(t *testing.T) {
	limit := New(4, 4096, 4096, 600)
	fits := New(4, 4096, 4096, 600)
	if !fits.FitsWithin(limit) {
		t.Error("equal vector should fit (c <= c_a)")
	}
	if ex := fits.Exceeded(limit); len(ex) != 0 {
		t.Errorf("equal vector exceeded = %v, want none", ex)
	}
	over := New(5, 4096, 5000, 600)
	if over.FitsWithin(limit) {
		t.Error("over vector should not fit")
	}
	ex := over.Exceeded(limit)
	if len(ex) != 2 || ex[0] != Cores || ex[1] != Disk {
		t.Errorf("Exceeded = %v, want [cores disk]", ex)
	}
}

func TestIsZeroNonNegative(t *testing.T) {
	var z Vector
	if !z.IsZero() {
		t.Error("zero vector should be zero")
	}
	if New(0, 0, 1, 0).IsZero() {
		t.Error("non-zero vector reported zero")
	}
	if !New(0, 1, 2, 3).NonNegative() {
		t.Error("non-negative vector misreported")
	}
	if New(0, -1, 2, 3).NonNegative() {
		t.Error("negative vector misreported")
	}
}

func TestPaperShapes(t *testing.T) {
	w := PaperWorker()
	if w.Get(Cores) != 16 || w.Get(Memory) != 65536 || w.Get(Disk) != 65536 {
		t.Errorf("PaperWorker = %v", w)
	}
	e := PaperExploration()
	if e.Get(Cores) != 1 || e.Get(Memory) != 1024 || e.Get(Disk) != 1024 {
		t.Errorf("PaperExploration = %v", e)
	}
	if !e.FitsWithin(w) {
		t.Error("exploration allocation must fit within a paper worker")
	}
}

func TestVectorString(t *testing.T) {
	s := New(1, 2, 3, 4).String()
	want := "cores=1.0 memory=2.0MB disk=3.0MB time=4.0s"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
}

// Property: Exceeded is empty iff FitsWithin holds.
func TestExceededConsistentWithFits(t *testing.T) {
	f := func(a, b [4]float64) bool {
		va, vb := Vector(a), Vector(b)
		// Map NaNs to zero to keep comparisons total.
		for k := range va {
			if math.IsNaN(va[k]) {
				va[k] = 0
			}
			if math.IsNaN(vb[k]) {
				vb[k] = 0
			}
		}
		return (len(va.Exceeded(vb)) == 0) == va.FitsWithin(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add then Sub is identity (up to float equality on finite values).
func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b [4]float64) bool {
		va, vb := Vector(a), Vector(b)
		for k := range va {
			if math.IsNaN(va[k]) || math.IsInf(va[k], 0) {
				va[k] = 1
			}
			if math.IsNaN(vb[k]) || math.IsInf(vb[k], 0) {
				vb[k] = 1
			}
			// Keep magnitudes comparable so the subtraction is exact-ish.
			va[k] = math.Mod(va[k], 1e6)
			vb[k] = math.Mod(vb[k], 1e6)
		}
		got := va.Add(vb).Sub(vb)
		for k := range got {
			if math.Abs(got[k]-va[k]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Max dominates both inputs; Min is dominated by both.
func TestMaxMinDomination(t *testing.T) {
	f := func(a, b [4]float64) bool {
		va, vb := Vector(a), Vector(b)
		for k := range va {
			if math.IsNaN(va[k]) {
				va[k] = 0
			}
			if math.IsNaN(vb[k]) {
				vb[k] = 0
			}
		}
		mx := va.Max(vb)
		mn := va.Min(vb)
		return va.FitsWithin(mx) && vb.FitsWithin(mx) &&
			mn.FitsWithin(va) && mn.FitsWithin(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
