package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// fingerprint renders every deterministic field of a cell — everything but
// the wall-clock Elapsed — so grids can be compared byte for byte.
func fingerprint(cells []Cell) string {
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "%s/%s makespan=%.9g summary=%#v\n",
			c.Workload, c.Algorithm, c.Makespan, c.Summary)
	}
	return b.String()
}

// TestRunGridDeterministicAcrossParallelism is the harness's core
// guarantee: the full 7x7 grid produces byte-identical cell summaries at
// parallelism 1, 4, and GOMAXPROCS, because per-cell seeds derive from
// grid position rather than completion order.
func TestRunGridDeterministicAcrossParallelism(t *testing.T) {
	opts := Options{Seed: 42, Tasks: 120}
	if testing.Short() {
		opts.Workloads = []string{"normal", "bimodal", "colmena"}
	}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want string
	seen := map[int]bool{}
	for _, p := range levels {
		if seen[p] {
			continue
		}
		seen[p] = true
		opts.Parallelism = p
		cells, err := RunGridContext(context.Background(), opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		got := fingerprint(cells)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallelism %d produced different cells than parallelism %d", p, levels[0])
		}
	}
}

// TestRunGridMatchesHistoricalSequential pins the seed derivation: the
// parallel engine must reproduce what the original sequential loop (seed =
// opts.Seed XOR running cell count + 1) computed.
func TestRunGridMatchesHistoricalSequential(t *testing.T) {
	opts := Options{Seed: 7, Tasks: 50,
		Workloads:  []string{"normal", "uniform"},
		Algorithms: []allocator.Name{allocator.MaxSeen, allocator.Greedy, allocator.Exhaustive}}
	sequential := func() []Cell {
		o := opts.withDefaults()
		var cells []Cell
		for _, wfName := range o.Workloads {
			w, err := workflow.ByName(wfName, o.Tasks, o.Seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range o.Algorithms {
				cfg := o.AllocatorConfig
				cfg.Seed = o.Seed ^ uint64(len(cells)+1)
				pol, err := allocator.New(alg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.RunSequential(w, pol, o.Model, 0)
				if err != nil {
					t.Fatal(err)
				}
				cells = append(cells, Cell{Workload: wfName, Algorithm: alg,
					Summary: res.Summary(), Makespan: res.Makespan})
			}
		}
		return cells
	}
	opts.Parallelism = 4
	got, err := RunGridContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(sequential()) {
		t.Error("parallel grid diverged from the historical sequential engine")
	}
}

func TestRunGridContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := RunGridContext(ctx, Options{Tasks: 20, Workloads: []string{"normal"},
		Progress: func(Progress) { ran++ }})
	if !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, should also wrap context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d cells ran under a pre-canceled context", ran)
	}
}

// TestRunGridCancellationStopsRemainingCells cancels from the first
// progress callback: with a sequential worker the remaining six cells must
// never run.
func TestRunGridCancellationStopsRemainingCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	opts := Options{Seed: 1, Tasks: 20, Workloads: []string{"normal"}, Parallelism: 1,
		Progress: func(Progress) {
			ran++
			cancel()
		}}
	_, err := RunGridContext(ctx, opts)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if ran != 1 {
		t.Errorf("%d cells completed after cancellation, want 1", ran)
	}
}

func TestRunGridFirstErrorPropagates(t *testing.T) {
	// An unknown algorithm fails inside a cell; the real error must win
	// over the cancellation noise of sibling workers.
	opts := Options{Seed: 1, Tasks: 20, Workloads: []string{"normal", "uniform"},
		Algorithms:  []allocator.Name{allocator.MaxSeen, "bogus"},
		Parallelism: 4}
	_, err := RunGridContext(context.Background(), opts)
	if !errors.Is(err, allocator.ErrUnknownAlgorithm) {
		t.Errorf("err = %v, want ErrUnknownAlgorithm", err)
	}
	if errors.Is(err, sim.ErrCanceled) {
		t.Errorf("real failure reported as cancellation: %v", err)
	}
}

func TestRunGridFunctionalOptions(t *testing.T) {
	base, err := RunGrid(Options{Seed: 3, Tasks: 30,
		Workloads:  []string{"uniform"},
		Algorithms: []allocator.Name{allocator.Greedy}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunGridContext(context.Background(), Options{},
		WithSeed(3), WithTasks(30),
		WithWorkloads("uniform"), WithAlgorithms(allocator.Greedy),
		WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(base) {
		t.Error("functional options diverged from struct options")
	}
}

func TestRunGridProgressMonotone(t *testing.T) {
	var events []Progress
	opts := Options{Seed: 2, Tasks: 20, Workloads: []string{"normal", "bimodal"},
		Algorithms:  []allocator.Name{allocator.MaxSeen, allocator.Greedy},
		Parallelism: 4,
		Progress:    func(p Progress) { events = append(events, p) }}
	if _, err := RunGridContext(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("%d progress events, want 4", len(events))
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != 4 {
			t.Errorf("event %d = %d/%d, want %d/4", i, p.Done, p.Total, i+1)
		}
		if p.Cell.Workload == "" {
			t.Errorf("event %d carries no cell", i)
		}
	}
}

func TestRunGridReplicatedContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunGridReplicatedContext(ctx, Options{Tasks: 20, Workloads: []string{"normal"}}, 2)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestRunAblationsParallel(t *testing.T) {
	suite := AblationSuite(1, 40)
	tables, err := RunAblations(context.Background(), suite, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(suite) {
		t.Fatalf("%d tables, want %d", len(tables), len(suite))
	}
	for i, tab := range tables {
		if tab == nil || len(tab.Rows) == 0 {
			t.Errorf("ablation %s produced no rows", suite[i].Name)
		}
	}
	// Input order is preserved regardless of completion order.
	if !strings.Contains(tables[0].Title, "consumption model") {
		t.Errorf("table order not preserved: first title %q", tables[0].Title)
	}
}

func TestRunAblationsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAblations(ctx, AblationSuite(1, 40), 2); !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestTable1ContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Table1Context(ctx, 1, 1); !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

// BenchmarkRunGrid measures the sequential-driver grid at several
// parallelism levels; on a multi-core machine -j 4 should be at least 2x
// faster than -j 1 (cells are embarrassingly parallel and share nothing
// but read-only workflows).
func BenchmarkRunGrid(b *testing.B) {
	for _, j := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := Options{Seed: 42, Tasks: 200,
				Workloads: workflow.SyntheticNames(), Parallelism: j}
			for i := 0; i < b.N; i++ {
				cells, err := RunGridContext(context.Background(), opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(cells) != len(opts.Workloads)*len(allocator.Names()) {
					b.Fatal("short grid")
				}
			}
		})
	}
}
