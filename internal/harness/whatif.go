package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/runlog"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// WhatIfCell is the outcome of replaying one recorded trace under one
// allocator: the counterfactual "what if this exact run — same tasks, same
// arrival order, same worker churn — had been allocated differently?".
type WhatIfCell struct {
	Algorithm allocator.Name
	Summary   metrics.Summary
	Makespan  float64
	Elapsed   time.Duration
	// Recorded marks the allocator the trace was originally recorded under;
	// its replay reproduces the recorded run rather than a counterfactual.
	Recorded bool
	// Err is set when the replay failed under this allocator (for example a
	// pathological policy exceeding the attempt bound); the sweep carries on
	// with the rest instead of aborting.
	Err error
}

// WhatIf replays a recorded run under each allocator and returns one cell
// per allocator, in the given order. It is WhatIfContext without
// cancellation.
func WhatIf(log *runlog.Log, algs []allocator.Name, parallelism int) ([]WhatIfCell, error) {
	return WhatIfContext(context.Background(), log, algs, parallelism)
}

// WhatIfContext replays a recorded run under every allocator in algs (nil =
// all nine registered allocators) across up to parallelism goroutines,
// reusing the grid worker pool. Every allocator sees the identical recorded
// environment: the trace's task stream, submit window, barriers, and — for
// pool runs — the realized worker arrival/eviction schedule as a scripted
// pool. Each policy is seeded with the trace's recorded seed, so the cell
// for the recorded algorithm is the fidelity replay and the others are
// counterfactuals.
//
// A replay failing under one allocator records the error in that cell's Err
// and does not abort the sweep; only cancellation (sim.ErrCanceled) stops
// it.
func WhatIfContext(ctx context.Context, log *runlog.Log, algs []allocator.Name, parallelism int) ([]WhatIfCell, error) {
	if log == nil {
		return nil, fmt.Errorf("harness: a parsed run log is required")
	}
	if len(algs) == 0 {
		algs = allocator.ExtendedNames()
	}
	cells := make([]WhatIfCell, len(algs))
	err := runIndexed(ctx, len(algs), parallelism, func(ctx context.Context, i int) error {
		alg := algs[i]
		cell := WhatIfCell{Algorithm: alg, Recorded: string(alg) == log.Header.Algorithm}
		pol, err := allocator.New(alg, allocator.Config{Seed: log.Header.Seed})
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := runlog.Resimulate(ctx, log, pol)
		cell.Elapsed = time.Since(start)
		if err != nil {
			if errors.Is(err, sim.ErrCanceled) {
				return err
			}
			cell.Err = err
			cells[i] = cell
			return nil
		}
		cell.Summary = res.Summary()
		cell.Makespan = res.Makespan
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// AWE returns the cell's efficiency for a kind, or 0 if the kind is absent.
func (c WhatIfCell) AWE(k resources.Kind) float64 {
	for _, ks := range c.Summary.PerKind {
		if ks.Kind == k.String() {
			return ks.AWE
		}
	}
	return 0
}

// Waste returns the cell's total waste for a kind.
func (c WhatIfCell) Waste(k resources.Kind) float64 {
	for _, ks := range c.Summary.PerKind {
		if ks.Kind == k.String() {
			return ks.InternalFragmentation + ks.FailedAllocation
		}
	}
	return 0
}

// WhatIfTable renders the counterfactual ranking: one row per allocator,
// sorted by memory AWE (descending, failed replays last), with the recorded
// allocator's row marked. The makespan delta column compares each replay
// against the recorded footer's makespan when the trace carries one
// (format-2 logs); on older traces it is "-".
func WhatIfTable(log *runlog.Log, cells []WhatIfCell) *report.Table {
	ranked := append([]WhatIfCell(nil), cells...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if (ranked[i].Err == nil) != (ranked[j].Err == nil) {
			return ranked[i].Err == nil
		}
		return ranked[i].AWE(resources.Memory) > ranked[j].AWE(resources.Memory)
	})
	recordedMakespan := 0.0
	if log.Footer != nil {
		recordedMakespan = log.Footer.MakespanS
	}
	tab := report.New(
		fmt.Sprintf("What-if — %s/%s trace (%d tasks) under each allocator",
			log.Header.Workload, log.Header.Algorithm, len(log.Outcomes)),
		"allocator", "awe_mem", "awe_cores", "waste_mem", "retries", "evictions", "failed",
		"makespan_s", "vs_recorded")
	for _, c := range ranked {
		name := string(c.Algorithm)
		if c.Recorded {
			name += " *"
		}
		if c.Err != nil {
			tab.AddRow(name, "-", "-", "-", "-", "-", "-", "-", fmt.Sprintf("error: %v", c.Err))
			continue
		}
		delta := "-"
		if recordedMakespan > 0 {
			delta = fmt.Sprintf("%+.1fs", c.Makespan-recordedMakespan)
		}
		tab.AddRow(name,
			report.Percent(c.AWE(resources.Memory)),
			report.Percent(c.AWE(resources.Cores)),
			fmt.Sprintf("%.3g", c.Waste(resources.Memory)),
			c.Summary.Retries,
			c.Summary.Evictions,
			c.Summary.Failures,
			fmt.Sprintf("%.1f", c.Makespan),
			delta)
	}
	return tab
}

// BestWhatIf returns the highest-ranked successful cell by memory AWE, or
// false when every replay failed.
func BestWhatIf(cells []WhatIfCell) (WhatIfCell, bool) {
	best, found := WhatIfCell{}, false
	for _, c := range cells {
		if c.Err != nil {
			continue
		}
		if !found || c.AWE(resources.Memory) > best.AWE(resources.Memory) {
			best, found = c, true
		}
	}
	return best, found
}

// TraceWorkloadName returns the grid row name a recorded trace file appears
// under when added to the experiment grid with Options.Traces: the file's
// base name under a "trace:" prefix, so a replayed trace never collides
// with the built-in workload names.
func TraceWorkloadName(path string) string { return "trace:" + filepath.Base(path) }

// loadTraceWorkflow materializes a recorded trace file into a Workflow
// carrying its grid row name: same task stream, submit window, and barriers
// as the recorded run, ready to be swept like any generated workload.
func loadTraceWorkflow(path string) (*workflow.Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: trace: %w", err)
	}
	defer f.Close()
	log, err := runlog.Read(f)
	if err != nil {
		return nil, fmt.Errorf("harness: trace %s: %w", path, err)
	}
	src, err := runlog.TraceSource(log)
	if err != nil {
		return nil, fmt.Errorf("harness: trace %s: %w", path, err)
	}
	w := workflow.Materialize(src)
	w.Name = TraceWorkloadName(path)
	return w, nil
}
