package harness

import (
	"context"
	"fmt"

	"dynalloc/internal/allocator"
	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/stats"
)

// CellStats aggregates one (workload, algorithm) cell across replicated
// runs with different seeds, giving the reproduction statistical error
// bars the paper's single runs lack.
type CellStats struct {
	Workload  string
	Algorithm allocator.Name
	AWE       map[resources.Kind]stats.Summary
	Retries   stats.Summary
}

// RunGridReplicated runs the (workload x algorithm) grid once per seed
// (opts.Seed, opts.Seed+1, ...) and aggregates per-cell statistics. It is
// RunGridReplicatedContext without cancellation.
func RunGridReplicated(opts Options, seeds int) ([]CellStats, error) {
	return RunGridReplicatedContext(context.Background(), opts, seeds)
}

// RunGridReplicatedContext is RunGridReplicated under a context: each
// replica's grid fans its cells across opts.Parallelism workers, and
// cancellation aborts the sweep with an error wrapping sim.ErrCanceled.
// Aggregation is replica-ordered, so the statistics are identical at any
// parallelism.
func RunGridReplicatedContext(ctx context.Context, opts Options, seeds int) ([]CellStats, error) {
	if seeds <= 0 {
		seeds = 1
	}
	opts = opts.withDefaults()
	type key = cellKey
	awes := make(map[key]map[resources.Kind][]float64)
	retries := make(map[key][]float64)
	var order []key
	for s := 0; s < seeds; s++ {
		runOpts := opts
		runOpts.Seed = opts.Seed + uint64(s)
		cells, err := RunGridContext(ctx, runOpts)
		if err != nil {
			return nil, fmt.Errorf("harness: seed %d: %w", runOpts.Seed, err)
		}
		for _, c := range cells {
			k := key{c.Workload, c.Algorithm}
			if awes[k] == nil {
				awes[k] = make(map[resources.Kind][]float64)
				order = append(order, k)
			}
			for _, kind := range resources.AllocatedKinds() {
				awes[k][kind] = append(awes[k][kind], c.AWE(kind))
			}
			retries[k] = append(retries[k], float64(c.Summary.Retries))
		}
	}
	out := make([]CellStats, 0, len(order))
	for _, k := range order {
		cs := CellStats{
			Workload:  k.wf,
			Algorithm: k.alg,
			AWE:       make(map[resources.Kind]stats.Summary),
			Retries:   stats.Summarize(retries[k]),
		}
		for kind, vals := range awes[k] {
			cs.AWE[kind] = stats.Summarize(vals)
		}
		out = append(out, cs)
	}
	return out, nil
}

// ReplicatedTable renders the replicated grid for one resource kind as
// "mean% ± sd" cells.
func ReplicatedTable(cells []CellStats, opts Options, kind resources.Kind, seeds int) *report.Table {
	opts = opts.withDefaults()
	byKey := make(map[cellKey]CellStats, len(cells))
	for _, c := range cells {
		byKey[cellKey{c.Workload, c.Algorithm}] = c
	}
	header := append([]string{"workflow"}, algorithmHeader(opts.Algorithms)...)
	tab := report.New(
		fmt.Sprintf("Figure 5 (replicated x%d) — AWE (%s), mean ± sd", seeds, kind),
		header...)
	for _, wf := range opts.Workloads {
		row := []any{wf}
		for _, alg := range opts.Algorithms {
			cell := "-"
			if c, ok := byKey[cellKey{wf, alg}]; ok {
				s := c.AWE[kind]
				cell = fmt.Sprintf("%.1f%% ± %.1f", 100*s.Mean, 100*s.Stddev)
			}
			row = append(row, cell)
		}
		tab.AddRow(row...)
	}
	return tab
}
