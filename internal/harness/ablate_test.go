package harness

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"dynalloc/internal/report"
)

func TestAblationSuiteSmall(t *testing.T) {
	renderToString := func(tab *report.Table, err error) string {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	const tasks = 60
	ctx := context.Background()
	out := renderToString(AblateConsumptionModel(ctx, 1, "normal", tasks))
	for _, want := range []string{"ramp-early", "ramp-linear", "peak-at-end", "peak-immediate"} {
		if !strings.Contains(out, want) {
			t.Errorf("consumption ablation missing %q:\n%s", want, out)
		}
	}

	out = renderToString(AblateExploration(ctx, 1, "bimodal", tasks, []int{1, 10}))
	if !strings.Contains(out, "10") {
		t.Errorf("exploration ablation malformed:\n%s", out)
	}

	out = renderToString(AblateMaxBuckets(ctx, 1, "trimodal", tasks, []int{1, 5}))
	if strings.Count(out, "%") < 2 {
		t.Errorf("bucket-cap ablation malformed:\n%s", out)
	}

	out = renderToString(AblateSignificance(ctx, 1, "trimodal", tasks))
	if !strings.Contains(out, "task-id") || !strings.Contains(out, "flat") {
		t.Errorf("significance ablation malformed:\n%s", out)
	}

	out = renderToString(AblatePlacement(ctx, 1, "uniform", tasks))
	for _, want := range []string{"first-fit", "worst-fit", "best-fit"} {
		if !strings.Contains(out, want) {
			t.Errorf("placement ablation missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "locality") {
		t.Error("placement ablation should skip locality without a data layer")
	}
}

func TestAblateCategoryIsolationDirection(t *testing.T) {
	// The paper's Section III-B argument must hold: per-category beats
	// category-blind on ColmenaXTB. Extract the two percentages.
	tab, err := AblateCategoryIsolation(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return v
	}
	perCat := parse(tab.Rows[0][1])
	blind := parse(tab.Rows[1][1])
	if perCat <= blind {
		t.Errorf("per-category %.1f%% should beat category-blind %.1f%%", perCat, blind)
	}
}
