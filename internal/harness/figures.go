package harness

import (
	"fmt"
	"io"

	"dynalloc/internal/core"
	"dynalloc/internal/dist"
	"dynalloc/internal/record"
	"dynalloc/internal/report"
	"dynalloc/internal/trace"
	"dynalloc/internal/workflow"
)

// Fig2Series generates the per-task consumption series of the two
// production workloads (the scatter data of Figure 2), keyed by workload
// name.
func Fig2Series(seed uint64) map[string][]trace.TaskPoint {
	return map[string][]trace.TaskPoint{
		"colmena": trace.Points(workflow.ColmenaXTB(seed)),
		"topeft":  trace.Points(workflow.TopEFT(seed)),
	}
}

// Fig4Series generates the memory-consumption series of the five synthetic
// workloads (Figure 4). tasks == 0 uses the paper's 1000.
func Fig4Series(seed uint64, tasks int) (map[string][]trace.TaskPoint, error) {
	out := make(map[string][]trace.TaskPoint)
	for _, name := range workflow.SyntheticNames() {
		w, err := workflow.Synthetic(name, tasks, seed)
		if err != nil {
			return nil, err
		}
		out[name] = trace.Points(w)
	}
	return out, nil
}

// WriteSeriesCSV dumps one named series as CSV.
func WriteSeriesCSV(w io.Writer, points []trace.TaskPoint) error {
	return trace.WriteCSV(w, points)
}

// Fig3Example reproduces the worked example of Figure 3b/3c: records are
// sampled from the N(8,2) GB memory scenario, both bucketing algorithms
// partition them, and the resulting buckets (representative value,
// probability, record count) are reported.
func Fig3Example(seed uint64, records int) *report.Table {
	if records <= 0 {
		records = 2000
	}
	r := dist.NewRand(seed)
	sampler := dist.Normal{Mean: 8, Stddev: 2, Min: 0.1} // GB, as in the paper's example
	l := &record.List{}
	for i := 0; i < records; i++ {
		l.Add(record.Record{TaskID: i + 1, Value: sampler.Sample(r), Sig: float64(i + 1), Time: 60})
	}
	tab := report.New(
		fmt.Sprintf("Figure 3 — bucketing a %d-record N(8,2) GB sample", records),
		"algorithm", "bucket", "range_gb", "rep_gb", "prob", "records")
	for _, alg := range []core.Algorithm{core.GreedyBucketing{}, core.ExhaustiveBucketing{}} {
		buckets := core.ComputeBuckets(l, alg)
		for i, b := range buckets {
			lo := l.Value(b.Lo)
			tab.AddRow(alg.Name(), i+1,
				fmt.Sprintf("(%.2f, %.2f]", lo, b.Rep),
				fmt.Sprintf("%.2f", b.Rep),
				fmt.Sprintf("%.3f", b.Prob),
				b.Count)
		}
	}
	return tab
}
