package harness

import (
	"context"
	"fmt"
	"time"

	"dynalloc/internal/core"
	"dynalloc/internal/dist"
	"dynalloc/internal/record"
	"dynalloc/internal/report"
	"dynalloc/internal/sim"
)

// Table1Sizes are the record-list sizes of the paper's Table I.
var Table1Sizes = []int{10, 200, 1000, 2000, 5000}

// Table1Row is the measured cost of one algorithm at one record count.
type Table1Row struct {
	Algorithm string
	Records   int
	Mean      time.Duration // mean time to recompute the state + derive an allocation
	Buckets   int           // bucket count of the final state
}

// Table1 measures, for Greedy and Exhaustive Bucketing, the average time to
// compute a new bucketing state and derive a new allocation as the record
// list grows — the paper's Table I. Records are memory values sampled from
// the N(8,2) GB scenario of Figure 3b with significance equal to task ID.
// reps controls how many measurements are averaged per cell (0 = 10).
func Table1(seed uint64, reps int) []Table1Row {
	rows, _ := Table1Context(context.Background(), seed, reps)
	return rows
}

// Table1Context is Table1 under a context, checked between cells. Timing
// cells run strictly sequentially regardless of harness parallelism: they
// measure wall-clock cost, and concurrent cells would contend for the CPU
// and corrupt each other's measurements.
func Table1Context(ctx context.Context, seed uint64, reps int) ([]Table1Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if reps <= 0 {
		reps = 10
	}
	r := dist.NewRand(seed)
	sampler := dist.Normal{Mean: 8192, Stddev: 2048, Min: 64}
	var rows []Table1Row
	for _, alg := range []core.Algorithm{core.GreedyBucketing{}, core.ExhaustiveBucketing{}} {
		for _, n := range Table1Sizes {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("harness: table 1: %w: %w", sim.ErrCanceled, err)
			}
			l := &record.List{}
			for i := 0; i < n; i++ {
				l.Add(record.Record{TaskID: i + 1, Value: sampler.Sample(r), Sig: float64(i + 1), Time: 60})
			}
			// Warm the sorted view once so the measurement isolates the
			// worst-case per-allocation work the paper times: partitioning
			// the list, materializing buckets, and sampling an allocation.
			l.Sorted()
			var buckets []core.Bucket
			start := time.Now()
			for rep := 0; rep < reps; rep++ {
				buckets = core.ComputeBuckets(l, alg)
				core.SampleAllocation(buckets, r)
			}
			rows = append(rows, Table1Row{
				Algorithm: alg.Name(),
				Records:   n,
				Mean:      time.Since(start) / time.Duration(reps),
				Buckets:   len(buckets),
			})
		}
	}
	return rows, nil
}

// Table1Report renders Table I in the paper's layout: one row per
// algorithm, one column per record count, cells in microseconds.
func Table1Report(rows []Table1Row) *report.Table {
	header := []string{"algorithm"}
	for _, n := range Table1Sizes {
		header = append(header, fmt.Sprint(n))
	}
	tab := report.New("Table I — mean time (µs) to compute a bucketing state and derive an allocation", header...)
	type rowKey struct {
		alg     string
		records int
	}
	byKey := make(map[rowKey]Table1Row, len(rows))
	for _, r := range rows {
		byKey[rowKey{r.Algorithm, r.Records}] = r
	}
	for _, algName := range []string{"greedy", "exhaustive"} {
		row := []any{algName}
		for _, n := range Table1Sizes {
			cell := "-"
			if r, ok := byKey[rowKey{algName, n}]; ok {
				cell = fmt.Sprintf("%.1f", float64(r.Mean.Nanoseconds())/1e3)
			}
			row = append(row, cell)
		}
		tab.AddRow(row...)
	}
	return tab
}
