package harness

import (
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
)

func TestRunGridWithExtensionAlgorithms(t *testing.T) {
	opts := Options{
		Seed:       5,
		Tasks:      50,
		Workloads:  []string{"bimodal"},
		Algorithms: allocator.ExtendedNames(),
	}
	cells, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(allocator.ExtendedNames()) {
		t.Fatalf("got %d cells", len(cells))
	}
	seen := map[allocator.Name]bool{}
	for _, c := range cells {
		seen[c.Algorithm] = true
		for _, k := range resources.AllocatedKinds() {
			if awe := c.AWE(k); awe <= 0 || awe > 1 {
				t.Errorf("%s: AWE(%s) = %v", c.Algorithm, k, awe)
			}
		}
	}
	if !seen[allocator.KMeans] || !seen[allocator.Percentile] {
		t.Error("extension algorithms missing from the grid")
	}
	// The Figure 5 table renders the extension columns too.
	tables := Fig5Tables(cells, opts)
	if len(tables) != 3 {
		t.Fatal("missing tables")
	}
	hdr := tables[0].Header
	if hdr[len(hdr)-1] != string(allocator.Percentile) {
		t.Errorf("extension column missing: %v", hdr)
	}
}
