package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles enables the pprof capture the benchmark/experiment drivers
// expose through their -cpuprofile/-memprofile flags. Either path may be
// empty to skip that profile. The returned stop function finalizes the
// capture: it stops the CPU profile and writes a GC-settled heap profile,
// and must be called exactly once (typically deferred) before the process
// exits.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("harness: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("harness: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("harness: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("harness: mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("harness: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
