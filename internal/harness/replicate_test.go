package harness

import (
	"bytes"
	"strings"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
)

func TestRunGridReplicated(t *testing.T) {
	opts := Options{
		Seed:       1,
		Tasks:      40,
		Workloads:  []string{"normal"},
		Algorithms: []allocator.Name{allocator.MaxSeen, allocator.Greedy},
	}
	cells, err := RunGridReplicated(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		s := c.AWE[resources.Memory]
		if s.N != 3 {
			t.Errorf("%s: %d samples, want 3", c.Algorithm, s.N)
		}
		if s.Mean <= 0 || s.Mean > 1 {
			t.Errorf("%s: mean AWE = %v", c.Algorithm, s.Mean)
		}
		if s.Min > s.Mean || s.Max < s.Mean {
			t.Errorf("%s: inconsistent summary %+v", c.Algorithm, s)
		}
		if c.Retries.N != 3 {
			t.Errorf("%s: retries summary %+v", c.Algorithm, c.Retries)
		}
	}
	var buf bytes.Buffer
	if err := ReplicatedTable(cells, opts, resources.Memory, 3).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "±") || !strings.Contains(out, "normal") {
		t.Errorf("replicated table malformed:\n%s", out)
	}
}

func TestRunGridReplicatedDefaultsToOneSeed(t *testing.T) {
	opts := Options{Seed: 2, Tasks: 20, Workloads: []string{"uniform"},
		Algorithms: []allocator.Name{allocator.WholeMachine}}
	cells, err := RunGridReplicated(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].AWE[resources.Cores].N != 1 {
		t.Errorf("sample count = %d", cells[0].AWE[resources.Cores].N)
	}
}

func TestRunGridReplicatedPropagatesErrors(t *testing.T) {
	if _, err := RunGridReplicated(Options{Workloads: []string{"bogus"}}, 2); err == nil {
		t.Error("bad workload should fail")
	}
}
