// Package harness reproduces the paper's evaluation (Section V): it runs
// the experiment grids behind every figure and table and renders the same
// rows/series the paper reports.
//
//	Figure 2  — per-task consumption series of ColmenaXTB and TopEFT
//	Figure 3  — worked example of Greedy Bucketing on an N(8,2) GB sample
//	Figure 4  — memory series of the five synthetic workflows
//	Figure 5  — Absolute Workflow Efficiency, 7 workflows x 7 algorithms
//	Figure 6  — waste split into internal fragmentation vs failed
//	            allocation, 7 workflows x 6 algorithms
//	Table I   — time to recompute a bucketing state and derive an
//	            allocation at 10..5000 records
package harness

import (
	"context"
	"fmt"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// Options configure an experiment grid run.
type Options struct {
	// Seed drives workload generation, allocator choices, and the pool.
	Seed uint64
	// Tasks scales the synthetic workloads (0 = the paper's 1000).
	Tasks int
	// Model is the task consumption profile (zero value = RampEarly).
	Model sim.ConsumptionModel
	// UseDES runs the full discrete-event simulation on an opportunistic
	// pool instead of the fast sequential driver. AWE is pool-independent,
	// so both drivers answer the paper's questions; the DES additionally
	// exercises placement, concurrency, and churn.
	UseDES bool
	// Pool is the worker pool model for DES runs (nil = the paper pool).
	Pool opportunistic.Model
	// Workloads restricts the workload set (nil = all seven).
	Workloads []string
	// Traces adds recorded run-log files as extra grid rows (the "trace"
	// axis): each trace's task stream is materialized via runlog.TraceSource
	// and swept under every algorithm like a generated workload, appearing
	// as workload TraceWorkloadName(path).
	Traces []string
	// Algorithms restricts the algorithm set (nil = all seven).
	Algorithms []allocator.Name
	// AllocatorConfig overrides allocator settings (Seed is managed by the
	// harness).
	AllocatorConfig allocator.Config
	// Parallelism bounds how many grid cells run concurrently
	// (0 = GOMAXPROCS, 1 = sequential). Results are identical at any
	// parallelism: each cell's seed derives from its grid position rather
	// than completion order, each cell owns its own Policy instance, and
	// workflows are shared read-only.
	Parallelism int
	// Progress, when non-nil, is called after every completed cell. Calls
	// are serialized, so the callback needs no locking of its own.
	Progress func(Progress)
}

func (o Options) withDefaults() Options {
	if len(o.Workloads) == 0 {
		o.Workloads = workflow.Names()
	}
	// Traces join the workload axis under their grid row names, so the
	// figure renderers (which iterate o.Workloads for rows) include them
	// without special-casing.
	for _, p := range o.Traces {
		name := TraceWorkloadName(p)
		seen := false
		for _, wf := range o.Workloads {
			if wf == name {
				seen = true
				break
			}
		}
		if !seen {
			o.Workloads = append(append([]string(nil), o.Workloads...), name)
		}
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = allocator.Names()
	}
	if o.Pool == nil {
		o.Pool = opportunistic.PaperPool()
	}
	return o
}

// Cell is the outcome of one (workload, algorithm) run.
type Cell struct {
	Workload  string
	Algorithm allocator.Name
	Summary   metrics.Summary
	Makespan  float64
	Elapsed   time.Duration
}

// AWE returns the cell's efficiency for a kind, or 0 if the kind is absent.
func (c Cell) AWE(k resources.Kind) float64 {
	for _, ks := range c.Summary.PerKind {
		if ks.Kind == k.String() {
			return ks.AWE
		}
	}
	return 0
}

// Kind returns the cell's per-kind summary.
func (c Cell) Kind(k resources.Kind) metrics.KindSummary {
	for _, ks := range c.Summary.PerKind {
		if ks.Kind == k.String() {
			return ks
		}
	}
	return metrics.KindSummary{}
}

// RunGrid executes every (workload, algorithm) pair of the options and
// returns one cell per pair, in workload-major order. This is the engine
// behind Figures 5 and 6. It is RunGridContext without cancellation.
func RunGrid(opts Options) ([]Cell, error) {
	return RunGridContext(context.Background(), opts)
}

// RunGridContext executes the (workload x algorithm) grid across
// opts.Parallelism worker goroutines (after applying extra options) and
// returns one cell per pair, in workload-major order regardless of
// completion order.
//
// Determinism: each cell's allocator seed is opts.Seed XOR (grid position
// + 1) — the same derivation the sequential engine always used, now
// independent of completion order — and each cell constructs its own
// Policy, so the cells of a parallel run are byte-for-byte identical to a
// sequential run.
//
// Cancellation: when ctx is done, in-flight simulations abort at their
// next event-loop boundary, no further cells start, and the error wraps
// sim.ErrCanceled. The first cell failure likewise cancels the rest of the
// grid.
func RunGridContext(ctx context.Context, opts Options, extra ...Option) ([]Cell, error) {
	for _, o := range extra {
		o(&opts)
	}
	opts = opts.withDefaults()

	// Workloads are generated up front and shared read-only by the cells
	// of a row; generation is cheap next to simulation, and failing on an
	// unknown workload (or unreadable trace) before any cell runs mirrors
	// the sequential engine.
	tracePaths := make(map[string]string, len(opts.Traces))
	for _, p := range opts.Traces {
		tracePaths[TraceWorkloadName(p)] = p
	}
	wfs := make([]*workflow.Workflow, len(opts.Workloads))
	for i, wfName := range opts.Workloads {
		var w *workflow.Workflow
		var err error
		if p, ok := tracePaths[wfName]; ok {
			w, err = loadTraceWorkflow(p)
		} else {
			w, err = workflow.ByName(wfName, opts.Tasks, opts.Seed)
		}
		if err != nil {
			return nil, err
		}
		wfs[i] = w
	}

	n := len(opts.Workloads) * len(opts.Algorithms)
	cells := make([]Cell, n)
	progress := newProgressFunnel(opts.Progress, n)
	err := runIndexed(ctx, n, opts.Parallelism, func(ctx context.Context, i int) error {
		wfIdx, algIdx := i/len(opts.Algorithms), i%len(opts.Algorithms)
		c, err := runCell(ctx, opts, wfs[wfIdx], opts.Algorithms[algIdx], i)
		if err != nil {
			return err
		}
		cells[i] = c
		progress(c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// runCell executes one grid cell. index is the cell's workload-major grid
// position; it determines the allocator seed.
func runCell(ctx context.Context, opts Options, w *workflow.Workflow, alg allocator.Name, index int) (Cell, error) {
	cfg := opts.AllocatorConfig
	cfg.Seed = opts.Seed ^ uint64(index+1)
	pol, err := allocator.New(alg, cfg)
	if err != nil {
		return Cell{}, err
	}
	start := time.Now()
	var res *sim.Result
	if opts.UseDES {
		res, err = sim.RunContext(ctx, sim.Config{
			Workflow: w,
			Policy:   pol,
			Pool:     opts.Pool,
			PoolSeed: opts.Seed,
			Model:    opts.Model,
		})
	} else {
		res, err = sim.RunSequentialContext(ctx, w, pol, opts.Model, 0)
	}
	if err != nil {
		return Cell{}, fmt.Errorf("harness: %s/%s: %w", w.Name, alg, err)
	}
	return Cell{
		Workload:  w.Name,
		Algorithm: alg,
		Summary:   res.Summary(),
		Makespan:  res.Makespan,
		Elapsed:   time.Since(start),
	}, nil
}

// Fig5Tables renders the Figure 5 content: one table per resource kind with
// a row per workload and a column per algorithm, each cell the AWE
// percentage.
func Fig5Tables(cells []Cell, opts Options) []*report.Table {
	opts = opts.withDefaults()
	byKey := indexCells(cells)
	var tables []*report.Table
	for _, k := range resources.AllocatedKinds() {
		header := append([]string{"workflow"}, algorithmHeader(opts.Algorithms)...)
		tab := report.New(fmt.Sprintf("Figure 5 — Absolute Workflow Efficiency (%s)", k), header...)
		for _, wf := range opts.Workloads {
			row := []any{wf}
			for _, alg := range opts.Algorithms {
				if c, ok := byKey[cellKey{wf, alg}]; ok {
					row = append(row, report.Percent(c.AWE(k)))
				} else {
					row = append(row, "-")
				}
			}
			tab.AddRow(row...)
		}
		tables = append(tables, tab)
	}
	return tables
}

// Fig6Tables renders the Figure 6 content: per resource kind, the waste of
// every workflow under every predictive algorithm (Whole Machine omitted, as
// in the paper), split into internal fragmentation and failed allocation.
func Fig6Tables(cells []Cell, opts Options) []*report.Table {
	opts = opts.withDefaults()
	algs := make([]allocator.Name, 0, len(opts.Algorithms))
	for _, a := range opts.Algorithms {
		if a != allocator.WholeMachine {
			algs = append(algs, a)
		}
	}
	byKey := indexCells(cells)
	var tables []*report.Table
	for _, k := range resources.AllocatedKinds() {
		tab := report.New(
			fmt.Sprintf("Figure 6 — Resource Waste (%s): internal fragmentation + failed allocation", k),
			"workflow", "algorithm", "internal_frag", "failed_alloc", "total_waste", "failed_share")
		for _, wf := range opts.Workloads {
			for _, alg := range algs {
				c, ok := byKey[cellKey{wf, alg}]
				if !ok {
					continue
				}
				ks := c.Kind(k)
				total := ks.InternalFragmentation + ks.FailedAllocation
				share := 0.0
				if total > 0 {
					share = ks.FailedAllocation / total
				}
				tab.AddRow(wf, string(alg),
					fmt.Sprintf("%.3g", ks.InternalFragmentation),
					fmt.Sprintf("%.3g", ks.FailedAllocation),
					fmt.Sprintf("%.3g", total),
					report.Percent(share))
			}
		}
		tables = append(tables, tab)
	}
	return tables
}

func algorithmHeader(algs []allocator.Name) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = string(a)
	}
	return out
}

// cellKey identifies a grid cell by its (workload, algorithm) pair.
type cellKey struct {
	wf  string
	alg allocator.Name
}

// indexCells builds a (workload, algorithm) index over cells, turning the
// per-table-cell lookup the figure renderers do from an O(cells) scan
// (O(n²) across a whole table) into a constant-time map hit.
func indexCells(cells []Cell) map[cellKey]Cell {
	byKey := make(map[cellKey]Cell, len(cells))
	for _, c := range cells {
		byKey[cellKey{c.Workload, c.Algorithm}] = c
	}
	return byKey
}
