// Package harness reproduces the paper's evaluation (Section V): it runs
// the experiment grids behind every figure and table and renders the same
// rows/series the paper reports.
//
//	Figure 2  — per-task consumption series of ColmenaXTB and TopEFT
//	Figure 3  — worked example of Greedy Bucketing on an N(8,2) GB sample
//	Figure 4  — memory series of the five synthetic workflows
//	Figure 5  — Absolute Workflow Efficiency, 7 workflows x 7 algorithms
//	Figure 6  — waste split into internal fragmentation vs failed
//	            allocation, 7 workflows x 6 algorithms
//	Table I   — time to recompute a bucketing state and derive an
//	            allocation at 10..5000 records
package harness

import (
	"fmt"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// Options configure an experiment grid run.
type Options struct {
	// Seed drives workload generation, allocator choices, and the pool.
	Seed uint64
	// Tasks scales the synthetic workloads (0 = the paper's 1000).
	Tasks int
	// Model is the task consumption profile (zero value = RampEarly).
	Model sim.ConsumptionModel
	// UseDES runs the full discrete-event simulation on an opportunistic
	// pool instead of the fast sequential driver. AWE is pool-independent,
	// so both drivers answer the paper's questions; the DES additionally
	// exercises placement, concurrency, and churn.
	UseDES bool
	// Pool is the worker pool model for DES runs (nil = the paper pool).
	Pool opportunistic.Model
	// Workloads restricts the workload set (nil = all seven).
	Workloads []string
	// Algorithms restricts the algorithm set (nil = all seven).
	Algorithms []allocator.Name
	// AllocatorConfig overrides allocator settings (Seed is managed by the
	// harness).
	AllocatorConfig allocator.Config
}

func (o Options) withDefaults() Options {
	if len(o.Workloads) == 0 {
		o.Workloads = workflow.Names()
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = allocator.Names()
	}
	if o.Pool == nil {
		o.Pool = opportunistic.PaperPool()
	}
	return o
}

// Cell is the outcome of one (workload, algorithm) run.
type Cell struct {
	Workload  string
	Algorithm allocator.Name
	Summary   metrics.Summary
	Makespan  float64
	Elapsed   time.Duration
}

// AWE returns the cell's efficiency for a kind, or 0 if the kind is absent.
func (c Cell) AWE(k resources.Kind) float64 {
	for _, ks := range c.Summary.PerKind {
		if ks.Kind == k.String() {
			return ks.AWE
		}
	}
	return 0
}

// Kind returns the cell's per-kind summary.
func (c Cell) Kind(k resources.Kind) metrics.KindSummary {
	for _, ks := range c.Summary.PerKind {
		if ks.Kind == k.String() {
			return ks
		}
	}
	return metrics.KindSummary{}
}

// RunGrid executes every (workload, algorithm) pair of the options and
// returns one cell per pair, in workload-major order. This is the engine
// behind Figures 5 and 6.
func RunGrid(opts Options) ([]Cell, error) {
	opts = opts.withDefaults()
	var cells []Cell
	for _, wfName := range opts.Workloads {
		w, err := workflow.ByName(wfName, opts.Tasks, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, alg := range opts.Algorithms {
			cfg := opts.AllocatorConfig
			cfg.Seed = opts.Seed ^ uint64(len(cells)+1)
			pol, err := allocator.New(alg, cfg)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			var res *sim.Result
			if opts.UseDES {
				res, err = sim.Run(sim.Config{
					Workflow: w,
					Policy:   pol,
					Pool:     opts.Pool,
					PoolSeed: opts.Seed,
					Model:    opts.Model,
				})
			} else {
				res, err = sim.RunSequential(w, pol, opts.Model, 0)
			}
			if err != nil {
				return nil, fmt.Errorf("harness: %s/%s: %w", wfName, alg, err)
			}
			cells = append(cells, Cell{
				Workload:  wfName,
				Algorithm: alg,
				Summary:   res.Summary(),
				Makespan:  res.Makespan,
				Elapsed:   time.Since(start),
			})
		}
	}
	return cells, nil
}

// Fig5Tables renders the Figure 5 content: one table per resource kind with
// a row per workload and a column per algorithm, each cell the AWE
// percentage.
func Fig5Tables(cells []Cell, opts Options) []*report.Table {
	opts = opts.withDefaults()
	var tables []*report.Table
	for _, k := range resources.AllocatedKinds() {
		header := append([]string{"workflow"}, algorithmHeader(opts.Algorithms)...)
		tab := report.New(fmt.Sprintf("Figure 5 — Absolute Workflow Efficiency (%s)", k), header...)
		for _, wf := range opts.Workloads {
			row := []any{wf}
			for _, alg := range opts.Algorithms {
				if c, ok := findCell(cells, wf, alg); ok {
					row = append(row, report.Percent(c.AWE(k)))
				} else {
					row = append(row, "-")
				}
			}
			tab.AddRow(row...)
		}
		tables = append(tables, tab)
	}
	return tables
}

// Fig6Tables renders the Figure 6 content: per resource kind, the waste of
// every workflow under every predictive algorithm (Whole Machine omitted, as
// in the paper), split into internal fragmentation and failed allocation.
func Fig6Tables(cells []Cell, opts Options) []*report.Table {
	opts = opts.withDefaults()
	algs := make([]allocator.Name, 0, len(opts.Algorithms))
	for _, a := range opts.Algorithms {
		if a != allocator.WholeMachine {
			algs = append(algs, a)
		}
	}
	var tables []*report.Table
	for _, k := range resources.AllocatedKinds() {
		tab := report.New(
			fmt.Sprintf("Figure 6 — Resource Waste (%s): internal fragmentation + failed allocation", k),
			"workflow", "algorithm", "internal_frag", "failed_alloc", "total_waste", "failed_share")
		for _, wf := range opts.Workloads {
			for _, alg := range algs {
				c, ok := findCell(cells, wf, alg)
				if !ok {
					continue
				}
				ks := c.Kind(k)
				total := ks.InternalFragmentation + ks.FailedAllocation
				share := 0.0
				if total > 0 {
					share = ks.FailedAllocation / total
				}
				tab.AddRow(wf, string(alg),
					fmt.Sprintf("%.3g", ks.InternalFragmentation),
					fmt.Sprintf("%.3g", ks.FailedAllocation),
					fmt.Sprintf("%.3g", total),
					report.Percent(share))
			}
		}
		tables = append(tables, tab)
	}
	return tables
}

func algorithmHeader(algs []allocator.Name) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = string(a)
	}
	return out
}

func findCell(cells []Cell, wf string, alg allocator.Name) (Cell, bool) {
	for _, c := range cells {
		if c.Workload == wf && c.Algorithm == alg {
			return c, true
		}
	}
	return Cell{}, false
}
