package harness

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

func smallOpts() Options {
	return Options{
		Seed:       1,
		Tasks:      60,
		Workloads:  []string{"normal", "bimodal"},
		Algorithms: []allocator.Name{allocator.WholeMachine, allocator.MaxSeen, allocator.Exhaustive},
	}
}

func TestRunGridShape(t *testing.T) {
	cells, err := RunGrid(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		if c.Summary.Tasks != 60 {
			t.Errorf("%s/%s: %d tasks", c.Workload, c.Algorithm, c.Summary.Tasks)
		}
		for _, k := range resources.AllocatedKinds() {
			if awe := c.AWE(k); awe <= 0 || awe > 1 {
				t.Errorf("%s/%s: AWE(%s) = %v", c.Workload, c.Algorithm, k, awe)
			}
		}
	}
}

func TestRunGridDES(t *testing.T) {
	opts := smallOpts()
	opts.UseDES = true
	cells, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells", len(cells))
	}
}

func TestRunGridDefaultsCoverEverything(t *testing.T) {
	opts := Options{Seed: 2, Tasks: 30, Workloads: []string{"uniform"}}
	cells, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(allocator.Names()) {
		t.Errorf("default algorithms incomplete: %d cells", len(cells))
	}
}

func TestRunGridUnknownWorkload(t *testing.T) {
	_, err := RunGrid(Options{Workloads: []string{"bogus"}})
	if !errors.Is(err, workflow.ErrUnknownWorkflow) {
		t.Errorf("err = %v, want ErrUnknownWorkflow", err)
	}
}

func TestFig5Tables(t *testing.T) {
	opts := smallOpts()
	cells, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	tables := Fig5Tables(cells, opts)
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want one per allocated kind", len(tables))
	}
	var buf bytes.Buffer
	if err := tables[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "normal") || !strings.Contains(out, "exhaustive-bucketing") {
		t.Errorf("table missing rows/columns:\n%s", out)
	}
	if !strings.Contains(out, "%") {
		t.Error("AWE cells should be percentages")
	}
}

func TestFig6TablesExcludeWholeMachine(t *testing.T) {
	opts := smallOpts()
	cells, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	tables := Fig6Tables(cells, opts)
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	var buf bytes.Buffer
	if err := tables[1].Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "whole-machine") {
		t.Error("Figure 6 should omit the whole-machine baseline")
	}
	if !strings.Contains(buf.String(), "max-seen") {
		t.Error("Figure 6 missing predictive algorithms")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1(3, 2)
	if len(rows) != 2*len(Table1Sizes) {
		t.Fatalf("got %d rows", len(rows))
	}
	byAlg := map[string][]Table1Row{}
	for _, r := range rows {
		byAlg[r.Algorithm] = append(byAlg[r.Algorithm], r)
		if r.Mean <= 0 {
			t.Errorf("%s@%d: non-positive mean %v", r.Algorithm, r.Records, r.Mean)
		}
		if r.Buckets < 1 {
			t.Errorf("%s@%d: no buckets", r.Algorithm, r.Records)
		}
	}
	// The paper's headline: exhaustive stays cheap while greedy grows
	// superlinearly; at 5000 records greedy costs much more than
	// exhaustive.
	g := byAlg["greedy"][len(Table1Sizes)-1]
	e := byAlg["exhaustive"][len(Table1Sizes)-1]
	if g.Records != 5000 || e.Records != 5000 {
		t.Fatal("row ordering unexpected")
	}
	if g.Mean < e.Mean {
		t.Errorf("greedy (%v) should cost more than exhaustive (%v) at 5000 records", g.Mean, e.Mean)
	}
	var buf bytes.Buffer
	if err := Table1Report(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "greedy") || !strings.Contains(buf.String(), "5000") {
		t.Errorf("report missing content:\n%s", buf.String())
	}
}

func TestFig2Series(t *testing.T) {
	series := Fig2Series(4)
	if len(series["colmena"]) != workflow.ColmenaEvaluateTasks+workflow.ColmenaComputeTasks {
		t.Errorf("colmena series length %d", len(series["colmena"]))
	}
	if len(series["topeft"]) == 0 {
		t.Error("topeft series empty")
	}
}

func TestFig4Series(t *testing.T) {
	series, err := Fig4Series(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("got %d series", len(series))
	}
	for name, pts := range series {
		if len(pts) != 100 {
			t.Errorf("%s: %d points", name, len(pts))
		}
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series["normal"]); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,category") {
		t.Error("CSV header missing")
	}
}

func TestFig3Example(t *testing.T) {
	tab := Fig3Example(6, 500)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "greedy") || !strings.Contains(out, "exhaustive") {
		t.Errorf("example missing algorithms:\n%s", out)
	}
}
