package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/sim"
)

// Progress reports one completed unit of a long-running experiment sweep.
// Callbacks are invoked serially (never concurrently) with Done strictly
// increasing, so they can drive a progress bar without synchronization.
type Progress struct {
	// Done is the number of completed cells so far, Total the sweep size.
	Done, Total int
	// Cell is the cell that just completed. Completion order is
	// nondeterministic under parallelism; only the counts are monotonic.
	Cell Cell
}

// Option mutates experiment Options; it is the functional-option form of
// the Options struct for the context-aware entry points.
type Option func(*Options)

// WithSeed sets the base random seed of the sweep.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithTasks sets the synthetic workload task count (0 = the paper's 1000).
func WithTasks(n int) Option { return func(o *Options) { o.Tasks = n } }

// WithModel sets the task consumption profile.
func WithModel(m sim.ConsumptionModel) Option { return func(o *Options) { o.Model = m } }

// WithDES selects the full discrete-event pool simulation over the fast
// sequential driver.
func WithDES(use bool) Option { return func(o *Options) { o.UseDES = use } }

// WithPool sets the worker pool model for DES runs.
func WithPool(p opportunistic.Model) Option { return func(o *Options) { o.Pool = p } }

// WithWorkloads restricts the workload set (default: all seven).
func WithWorkloads(names ...string) Option { return func(o *Options) { o.Workloads = names } }

// WithTraces adds recorded run-log files as extra grid rows (the trace
// axis); each appears as workload TraceWorkloadName(path).
func WithTraces(paths ...string) Option { return func(o *Options) { o.Traces = paths } }

// WithAlgorithms restricts the algorithm set (default: all seven).
func WithAlgorithms(algs ...allocator.Name) Option {
	return func(o *Options) { o.Algorithms = algs }
}

// WithAllocatorConfig overrides allocator settings (Seed stays managed by
// the harness).
func WithAllocatorConfig(cfg allocator.Config) Option {
	return func(o *Options) { o.AllocatorConfig = cfg }
}

// WithParallelism bounds how many cells run concurrently (0 = GOMAXPROCS,
// 1 = sequential).
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithProgress installs a per-cell completion callback.
func WithProgress(fn func(Progress)) Option { return func(o *Options) { o.Progress = fn } }

// newProgressFunnel serializes progress callbacks from concurrent workers
// into monotone Done counts; it returns a no-op when fn is nil.
func newProgressFunnel(fn func(Progress), total int) func(Cell) {
	if fn == nil {
		return func(Cell) {}
	}
	var mu sync.Mutex
	done := 0
	return func(c Cell) {
		mu.Lock()
		defer mu.Unlock()
		done++
		fn(Progress{Done: done, Total: total, Cell: c})
	}
}

// effectiveParallelism resolves the worker count for a sweep of n units.
func effectiveParallelism(requested, n int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// runIndexed runs fn(i) for every i in [0, n) on up to parallelism worker
// goroutines. The first failure cancels the remaining work (in-flight
// simulations abort at their next context check; unstarted units never
// run) and is returned; pure cancellation errors never mask a real
// failure. A nil ctx means context.Background().
func runIndexed(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	parallelism = effectiveParallelism(parallelism, n)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next  atomic.Int64
		mu    sync.Mutex
		first error
	)
	fail := func(err error) {
		mu.Lock()
		// Keep the most informative error: a real failure beats the
		// cancellation noise the other workers report once cancel() fires.
		if first == nil || (errors.Is(first, sim.ErrCanceled) && !errors.Is(err, sim.ErrCanceled)) {
			first = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					fail(fmt.Errorf("harness: %w: %w", sim.ErrCanceled, err))
					return
				}
				if err := fn(cctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
