package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/runlog"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// recordTrace runs one small DES workload and returns the parsed log plus
// the raw log text.
func recordTrace(t *testing.T, seed uint64, alg allocator.Name) (*runlog.Log, string) {
	t.Helper()
	w, err := workflow.ByName("normal", 80, seed)
	if err != nil {
		t.Fatal(err)
	}
	pol := allocator.MustNew(alg, allocator.Config{Seed: seed})
	cfg := sim.Config{
		Workflow: w,
		Policy:   pol,
		Pool:     opportunistic.Churn{Initial: 5, MeanLifetime: 400, MeanInterval: 150, Horizon: 1200, KeepLastAlive: true},
		PoolSeed: seed,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdr := runlog.SimHeader(runlog.DriverDES, w.Name, pol.Name(), seed, cfg, w.SubmitWindow, w.Barriers)
	var buf bytes.Buffer
	if err := runlog.Write(&buf, hdr, res); err != nil {
		t.Fatal(err)
	}
	log, err := runlog.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return log, buf.String()
}

// The what-if sweep: every allocator replays against the identical recorded
// environment; the recorded allocator's cell is a fidelity replay matching
// the footer bit-identically; the ranking table renders.
func TestWhatIfSweep(t *testing.T) {
	log, _ := recordTrace(t, 21, allocator.Greedy)
	algs := []allocator.Name{allocator.MaxSeen, allocator.Greedy, allocator.WholeMachine}
	cells, err := WhatIfContext(context.Background(), log, algs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(algs) {
		t.Fatalf("%d cells, want %d", len(cells), len(algs))
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Fatalf("replay under %s failed: %v", c.Algorithm, c.Err)
		}
		if c.Summary.Tasks != 80 {
			t.Errorf("%s replayed %d tasks, want 80", c.Algorithm, c.Summary.Tasks)
		}
	}
	var recorded *WhatIfCell
	for i := range cells {
		if cells[i].Recorded {
			recorded = &cells[i]
		}
	}
	if recorded == nil || recorded.Algorithm != allocator.Greedy {
		t.Fatal("recorded allocator's cell not marked")
	}
	if !reflect.DeepEqual(recorded.Summary, log.Footer.Summary) {
		t.Errorf("recorded allocator's replay is not a fidelity replay:\n got %+v\nwant %+v",
			recorded.Summary, log.Footer.Summary)
	}

	var out bytes.Buffer
	if err := WhatIfTable(log, cells).Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "greedy-bucketing *") {
		t.Errorf("ranking table does not mark the recorded allocator:\n%s", out.String())
	}
}

// Nil algs defaults to the full registered set (the nine allocators).
func TestWhatIfDefaultsToAllAllocators(t *testing.T) {
	log, _ := recordTrace(t, 5, allocator.MaxSeen)
	cells, err := WhatIfContext(context.Background(), log, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(allocator.ExtendedNames()); len(cells) != want {
		t.Fatalf("%d cells, want %d (every registered allocator)", len(cells), want)
	}
}

// The trace axis: a recorded log joins the experiment grid as an extra
// workload row and sweeps under every algorithm like a generated workload.
func TestGridTraceAxis(t *testing.T) {
	_, text := recordTrace(t, 9, allocator.Greedy)
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.jsonl")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := Options{
		Seed:       9,
		Tasks:      60,
		Workloads:  []string{"uniform"},
		Traces:     []string{path},
		Algorithms: []allocator.Name{allocator.MaxSeen, allocator.Greedy},
	}
	cells, err := RunGridContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells, want 4 (2 workloads x 2 algorithms)", len(cells))
	}
	traceName := TraceWorkloadName(path)
	rows := map[string]int{}
	for _, c := range cells {
		rows[c.Workload]++
		if c.Summary.Tasks == 0 {
			t.Errorf("cell %s/%s ran no tasks", c.Workload, c.Algorithm)
		}
	}
	if rows["uniform"] != 2 || rows[traceName] != 2 {
		t.Errorf("grid rows = %v, want 2 cells each for uniform and %s", rows, traceName)
	}

	// The figure renderers pick the trace row up through withDefaults.
	tabs := Fig5Tables(cells, opts)
	var out bytes.Buffer
	if err := tabs[0].Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), traceName) {
		t.Errorf("Figure 5 table is missing the trace row:\n%s", out.String())
	}
}
