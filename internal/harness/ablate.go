package harness

import (
	"context"
	"fmt"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/report"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// The ablation suite quantifies the design choices DESIGN.md calls out:
// the task consumption profile, the exploratory-mode threshold, the bucket
// cap, per-category isolation, significance weighting, and placement
// robustness. Each returns a rendered table; cmd/ablate prints them and
// bench_test.go exposes the same sweeps as benchmarks.

func ablationRow(ctx context.Context, w *workflow.Workflow, pol allocator.Policy, model sim.ConsumptionModel) (awe float64, retries int, err error) {
	res, err := sim.RunSequentialContext(ctx, w, pol, model, 0)
	if err != nil {
		return 0, 0, err
	}
	return res.Acc.AWE(resources.Memory), res.Acc.Retries(), nil
}

// AblateConsumptionModel sweeps the consumption profiles on one workload
// with Exhaustive Bucketing.
func AblateConsumptionModel(ctx context.Context, seed uint64, workloadName string, tasks int) (*report.Table, error) {
	w, err := workflow.ByName(workloadName, tasks, seed)
	if err != nil {
		return nil, err
	}
	tab := report.New(
		fmt.Sprintf("Ablation — consumption model (%s, exhaustive-bucketing)", workloadName),
		"model", "memory AWE", "retries")
	for _, m := range sim.Models() {
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: seed})
		awe, retries, err := ablationRow(ctx, w, pol, m)
		if err != nil {
			return nil, err
		}
		tab.AddRow(m.String(), report.Percent(awe), retries)
	}
	return tab, nil
}

// AblateExploration sweeps the exploratory-mode record threshold.
func AblateExploration(ctx context.Context, seed uint64, workloadName string, tasks int, counts []int) (*report.Table, error) {
	if len(counts) == 0 {
		counts = []int{1, 5, 10, 25, 50}
	}
	w, err := workflow.ByName(workloadName, tasks, seed)
	if err != nil {
		return nil, err
	}
	tab := report.New(
		fmt.Sprintf("Ablation — exploration threshold (%s, exhaustive-bucketing; paper uses 10)", workloadName),
		"records", "memory AWE", "retries")
	for _, c := range counts {
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: seed, ExploreCount: c})
		awe, retries, err := ablationRow(ctx, w, pol, sim.RampEarly)
		if err != nil {
			return nil, err
		}
		tab.AddRow(c, report.Percent(awe), retries)
	}
	return tab, nil
}

// AblateMaxBuckets sweeps Exhaustive Bucketing's bucket cap.
func AblateMaxBuckets(ctx context.Context, seed uint64, workloadName string, tasks int, caps []int) (*report.Table, error) {
	if len(caps) == 0 {
		caps = []int{1, 2, 3, 5, 10, 20}
	}
	w, err := workflow.ByName(workloadName, tasks, seed)
	if err != nil {
		return nil, err
	}
	tab := report.New(
		fmt.Sprintf("Ablation — MaxBuckets cap (%s, exhaustive-bucketing; paper uses 10)", workloadName),
		"cap", "memory AWE", "retries")
	for _, c := range caps {
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: seed, MaxBuckets: c})
		awe, retries, err := ablationRow(ctx, w, pol, sim.RampEarly)
		if err != nil {
			return nil, err
		}
		tab.AddRow(c, report.Percent(awe), retries)
	}
	return tab, nil
}

// AblateCategoryIsolation compares per-category estimator states against a
// single pooled state on the multi-category ColmenaXTB workload
// (Section III-B).
func AblateCategoryIsolation(ctx context.Context, seed uint64) (*report.Table, error) {
	w := workflow.ColmenaXTB(seed)
	tab := report.New(
		"Ablation — category isolation (colmena, exhaustive-bucketing)",
		"mode", "memory AWE", "retries")
	for _, blind := range []bool{false, true} {
		mode := "per-category"
		if blind {
			mode = "category-blind"
		}
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: seed, IgnoreCategories: blind})
		awe, retries, err := ablationRow(ctx, w, pol, sim.RampEarly)
		if err != nil {
			return nil, err
		}
		tab.AddRow(mode, report.Percent(awe), retries)
	}
	return tab, nil
}

// AblateSignificance compares the paper's task-ID recency weighting against
// flat significance on a phasing workload (Section IV-A).
func AblateSignificance(ctx context.Context, seed uint64, workloadName string, tasks int) (*report.Table, error) {
	w, err := workflow.ByName(workloadName, tasks, seed)
	if err != nil {
		return nil, err
	}
	tab := report.New(
		fmt.Sprintf("Ablation — significance weighting (%s, greedy-bucketing)", workloadName),
		"weighting", "memory AWE", "retries")
	for _, flat := range []bool{false, true} {
		mode := "task-id (recency)"
		if flat {
			mode = "flat"
		}
		pol := allocator.MustNew(allocator.Greedy, allocator.Config{Seed: seed, FlatSignificance: flat})
		awe, retries, err := ablationRow(ctx, w, pol, sim.RampEarly)
		if err != nil {
			return nil, err
		}
		tab.AddRow(mode, report.Percent(awe), retries)
	}
	return tab, nil
}

// AblatePlacement runs the discrete-event simulation across placement
// policies, verifying the allocator's efficiency is robust to
// scheduling-order stochasticity (Section II-D1).
func AblatePlacement(ctx context.Context, seed uint64, workloadName string, tasks int) (*report.Table, error) {
	w, err := workflow.ByName(workloadName, tasks, seed)
	if err != nil {
		return nil, err
	}
	tab := report.New(
		fmt.Sprintf("Ablation — placement policy (%s, exhaustive-bucketing, 10 static workers)", workloadName),
		"placement", "memory AWE", "retries", "makespan")
	for _, p := range sim.Placements() {
		if p == sim.Locality {
			continue // needs the data layer; covered by the data tests
		}
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: seed})
		res, err := sim.RunContext(ctx, sim.Config{
			Workflow: w,
			Policy:   pol,
			Pool:     opportunistic.Static{N: 10},
			Place:    p,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(p.String(), report.Percent(res.Acc.AWE(resources.Memory)),
			res.Acc.Retries(), fmt.Sprintf("%.0fs", res.Makespan))
	}
	return tab, nil
}

// An Ablation is one named sweep of the design-choice suite.
type Ablation struct {
	Name string
	Run  func(ctx context.Context) (*report.Table, error)
}

// AblationSuite returns the full suite in its canonical order, bound to a
// seed and synthetic task count. The workload choices per ablation match
// cmd/ablate and EXPERIMENTS.md.
func AblationSuite(seed uint64, tasks int) []Ablation {
	return []Ablation{
		{"model", func(ctx context.Context) (*report.Table, error) {
			return AblateConsumptionModel(ctx, seed, "normal", tasks)
		}},
		{"exploration", func(ctx context.Context) (*report.Table, error) {
			return AblateExploration(ctx, seed, "bimodal", tasks, nil)
		}},
		{"buckets", func(ctx context.Context) (*report.Table, error) {
			return AblateMaxBuckets(ctx, seed, "trimodal", tasks, nil)
		}},
		{"category", func(ctx context.Context) (*report.Table, error) {
			return AblateCategoryIsolation(ctx, seed)
		}},
		{"significance", func(ctx context.Context) (*report.Table, error) {
			return AblateSignificance(ctx, seed, "trimodal", tasks)
		}},
		{"placement", func(ctx context.Context) (*report.Table, error) {
			return AblatePlacement(ctx, seed, "bimodal", tasks)
		}},
	}
}

// RunAblations runs the given ablations across parallelism worker
// goroutines (0 = GOMAXPROCS) and returns their tables in input order. The
// first failure — or ctx cancellation, reported wrapping sim.ErrCanceled —
// cancels the remaining sweeps.
func RunAblations(ctx context.Context, ablations []Ablation, parallelism int) ([]*report.Table, error) {
	tables := make([]*report.Table, len(ablations))
	err := runIndexed(ctx, len(ablations), parallelism, func(ctx context.Context, i int) error {
		tab, err := ablations[i].Run(ctx)
		if err != nil {
			return fmt.Errorf("harness: ablation %s: %w", ablations[i].Name, err)
		}
		tables[i] = tab
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tables, nil
}
