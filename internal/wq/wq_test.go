package wq

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/dist"
	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// quickWorkflow builds a short-runtime workload so live integration tests
// finish in milliseconds at the default time scale.
func quickWorkflow(n int, seed uint64) *workflow.Workflow {
	r := dist.NewRand(seed)
	w := &workflow.Workflow{Name: "quick"}
	mem := dist.Mixture{Components: []dist.Component{
		{Weight: 1, Sampler: dist.Normal{Mean: 300, Stddev: 30, Min: 50}},
		{Weight: 1, Sampler: dist.Normal{Mean: 900, Stddev: 60, Min: 50}},
	}}
	for i := 0; i < n; i++ {
		w.Tasks = append(w.Tasks, workflow.Task{
			ID:       i + 1,
			Category: "quick",
			Consumption: resources.New(
				0.5+r.Float64(),
				mem.Sample(r),
				100+r.Float64()*50,
				5+r.Float64()*15,
			),
		})
	}
	return w
}

func startWorkers(t *testing.T, ctx context.Context, addr string, n int, cfg WorkerConfig) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, addr, cfg); err != nil && ctx.Err() == nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return &wg
}

func TestLiveWorkflowWithAllocator(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 1})
	m := NewManager(pol)
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 3, WorkerConfig{})
	defer wg.Wait()
	defer m.Close()

	w := quickWorkflow(60, 2)
	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 60 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	for _, k := range resources.AllocatedKinds() {
		awe := res.Acc.AWE(k)
		if awe <= 0 || awe > 1+1e-9 {
			t.Errorf("AWE(%s) = %v", k, awe)
		}
	}
	// The bimodal memory shape forces at least some exploration failures.
	if res.Acc.Attempts() < 60 {
		t.Errorf("attempts = %d", res.Acc.Attempts())
	}
	if m.Workers() != 3 {
		t.Errorf("workers = %d, want 3", m.Workers())
	}
}

func TestLiveOracleIsPerfect(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(30, 3)
	m := NewManager(sim.NewOracle(w))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 2, WorkerConfig{})
	defer wg.Wait()
	defer m.Close()

	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range resources.AllocatedKinds() {
		if awe := res.Acc.AWE(k); math.Abs(awe-1) > 1e-9 {
			t.Errorf("oracle AWE(%s) = %v, want 1", k, awe)
		}
	}
	if res.Acc.Retries() != 0 {
		t.Errorf("oracle retries = %d", res.Acc.Retries())
	}
}

func TestLiveBarriers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(20, 4)
	w.Barriers = []int{10}
	for i := range w.Tasks {
		if i < 10 {
			w.Tasks[i].Category = "phase1"
		} else {
			w.Tasks[i].Category = "phase2"
		}
	}
	var mu sync.Mutex
	var order []string
	base := sim.NewOracle(w)
	rec := recordingPolicy{Policy: base, onAllocate: func(cat string) {
		mu.Lock()
		order = append(order, cat)
		mu.Unlock()
	}}
	m := NewManager(rec)
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 4, WorkerConfig{})
	defer wg.Wait()
	defer m.Close()

	if _, err := m.RunWorkflow(ctx, w); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	firstP2 := -1
	for i, cat := range order {
		if cat == "phase2" {
			firstP2 = i
			break
		}
	}
	if firstP2 >= 0 && firstP2 < 10 {
		t.Errorf("phase2 allocated at position %d, before phase1 finished", firstP2)
	}
}

type recordingPolicy struct {
	allocator.Policy
	onAllocate func(cat string)
}

func (r recordingPolicy) Allocate(cat string, id int) resources.Vector {
	r.onAllocate(cat)
	return r.Policy.Allocate(cat, id)
}

func TestLiveWorkerEvictionRequeues(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(30, 5)
	// Slow the tasks down so the doomed worker is killed mid-flight.
	for i := range w.Tasks {
		w.Tasks[i].Consumption = w.Tasks[i].Consumption.With(resources.Time, 200)
	}
	m := NewManager(sim.NewOracle(w))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	doomedCtx, killWorker := context.WithCancel(ctx)
	go RunWorker(doomedCtx, addr, WorkerConfig{TimeScale: 1e-3}) // 0.2 s per task
	wg := startWorkers(t, ctx, addr, 2, WorkerConfig{TimeScale: 1e-3})
	defer wg.Wait()
	defer m.Close()

	go func() {
		time.Sleep(100 * time.Millisecond)
		killWorker()
	}()

	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 30 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	evicted := 0
	for _, o := range res.Outcomes {
		for _, a := range o.Attempts {
			if a.Status == metrics.Evicted {
				evicted++
			}
		}
	}
	if evicted == 0 {
		t.Log("no task was interrupted by the eviction (timing-dependent); completion is still verified")
	}
	for _, k := range resources.AllocatedKinds() {
		if awe := res.Acc.AWE(k); math.Abs(awe-1) > 1e-9 {
			t.Errorf("AWE(%s) = %v, want 1 (evictions excluded)", k, awe)
		}
	}
}

func TestRunWorkflowCancellation(t *testing.T) {
	w := quickWorkflow(5, 6)
	m := NewManager(sim.NewOracle(w))
	if _, err := m.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// No workers connect; the run must end when the context does.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := m.RunWorkflow(ctx, w); err == nil {
		t.Error("expected cancellation error with no workers")
	}
}

func TestWorkerRejectsBadManager(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := RunWorker(ctx, "127.0.0.1:1", WorkerConfig{}); err == nil {
		t.Error("dial to a closed port should fail")
	}
}
