package wq

import (
	"bufio"
	"io"
	"strconv"
	"sync"

	"dynalloc/internal/jsonwire"
)

// This file is the live engine's frame layout on top of the shared wire
// codec in internal/jsonwire. Every hot-path frame (task dispatch, result,
// ping/pong) used to take an encoding/json reflection round trip on each
// side; now both manager and worker encode by appending into a reused buffer
// and decode with a scratch-reusing scanner. The encoding is pinned
// byte-compatible with json.Encoder.Encode(Message) and the decoder
// value-compatible with json.Unmarshal — FuzzWQMessageCodec and
// FuzzWQMessageDecode enforce both — so stock encoding/json peers (older
// workers, test harnesses, other-language clients) interoperate unchanged.

// appendMessage appends the JSON encoding of m plus a trailing newline to
// dst, producing exactly the bytes json.Encoder.Encode(*m) would: same field
// order, same omitempty behavior, same HTML-escaped strings, same float
// formatting. It errors (like json.Marshal) on non-finite floats.
func appendMessage(dst []byte, m *Message) ([]byte, error) {
	var err error
	dst = append(dst, `{"type":`...)
	dst = jsonwire.AppendString(dst, m.Type)
	// Fixed-size arrays are never "empty", so despite the omitempty tags the
	// three vectors appear in every frame — preserved for byte parity.
	if dst, err = jsonwire.AppendVector(append(dst, `,"capacity":`...), m.Capacity); err != nil {
		return dst, err
	}
	if m.TaskID != 0 {
		dst = append(dst, `,"task_id":`...)
		dst = strconv.AppendInt(dst, int64(m.TaskID), 10)
	}
	if m.Category != "" {
		dst = append(dst, `,"category":`...)
		dst = jsonwire.AppendString(dst, m.Category)
	}
	if dst, err = jsonwire.AppendVector(append(dst, `,"alloc":`...), m.Alloc); err != nil {
		return dst, err
	}
	if dst, err = jsonwire.AppendVector(append(dst, `,"peak":`...), m.Peak); err != nil {
		return dst, err
	}
	if m.Runtime != 0 {
		dst = append(dst, `,"runtime":`...)
		if dst, err = jsonwire.AppendFloat(dst, m.Runtime); err != nil {
			return dst, err
		}
	}
	if m.Status != "" {
		dst = append(dst, `,"status":`...)
		dst = jsonwire.AppendString(dst, m.Status)
	}
	if m.Duration != 0 {
		dst = append(dst, `,"duration":`...)
		if dst, err = jsonwire.AppendFloat(dst, m.Duration); err != nil {
			return dst, err
		}
	}
	if len(m.Exceeded) > 0 {
		dst = append(dst, `,"exceeded":[`...)
		for i, s := range m.Exceeded {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = jsonwire.AppendString(dst, s)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}', '\n'), nil
}

// Message field identifiers, in struct declaration order (the fold-match
// tie-break order encoding/json uses).
const (
	mdType = iota
	mdCapacity
	mdTaskID
	mdCategory
	mdAlloc
	mdPeak
	mdRuntime
	mdStatus
	mdDuration
	mdExceeded
	mdUnknown
)

var messageFieldNames = [...]string{
	"type", "capacity", "task_id", "category", "alloc",
	"peak", "runtime", "status", "duration", "exceeded",
}

// messageField resolves a decoded key to a Message field: exact match first,
// then (like encoding/json) the first field equal under Unicode case
// folding.
func messageField(key []byte) int {
	switch string(key) { // no-alloc comparison
	case "type":
		return mdType
	case "capacity":
		return mdCapacity
	case "task_id":
		return mdTaskID
	case "category":
		return mdCategory
	case "alloc":
		return mdAlloc
	case "peak":
		return mdPeak
	case "runtime":
		return mdRuntime
	case "status":
		return mdStatus
	case "duration":
		return mdDuration
	case "exceeded":
		return mdExceeded
	}
	for i, name := range messageFieldNames {
		if jsonwire.FoldEqual(key, name) {
			return i
		}
	}
	return mdUnknown
}

// messageDecoder parses one newline-delimited frame per call on a shared
// jsonwire.Decoder, reusing all scratch (string intern table, Exceeded
// backing array, unescape buffer) across frames so the steady-state decode
// path allocates nothing. Semantics match json.Unmarshal into a fresh
// Message; the decoded Exceeded slice aliases decoder scratch and is valid
// only until the next decode — callers that retain the message copy it.
type messageDecoder struct {
	d jsonwire.Decoder
}

// decode parses line (one JSON document, no trailing newline) into m,
// resetting m first. A bare "null" document leaves m zeroed, as
// json.Unmarshal would leave a fresh Message.
func (dec *messageDecoder) decode(line []byte, m *Message) error {
	*m = Message{}
	d := &dec.d
	return d.DecodeObject(line, func(key []byte) error {
		switch messageField(key) {
		case mdType:
			return d.String(&m.Type)
		case mdCapacity:
			return d.Vector(&m.Capacity)
		case mdTaskID:
			return d.Int(&m.TaskID)
		case mdCategory:
			return d.String(&m.Category)
		case mdAlloc:
			return d.Vector(&m.Alloc)
		case mdPeak:
			return d.Vector(&m.Peak)
		case mdRuntime:
			return d.Float(&m.Runtime)
		case mdStatus:
			return d.String(&m.Status)
		case mdDuration:
			return d.Float(&m.Duration)
		case mdExceeded:
			return d.Strings(&m.Exceeded)
		default:
			return d.Skip()
		}
	})
}

// msgReader reads newline-delimited frames from a connection through the
// shared grow-on-demand line reader, decoding each into a reused Message —
// so a frame bigger than the initial buffer grows the window instead of
// killing the connection (the old bufio.Scanner framing died at its token
// cap). Malformed frames return a *jsonwire.DecodeError; transport failures
// return the underlying error.
type msgReader struct {
	r   *jsonwire.Reader
	dec messageDecoder
}

func newMsgReader(r io.Reader) *msgReader {
	return &msgReader{r: jsonwire.NewReader(r)}
}

func (mr *msgReader) next(m *Message) error {
	line, err := mr.r.Next()
	if err != nil {
		return err
	}
	return mr.dec.decode(line, m)
}

// buffered reports whether a complete frame line is already in memory.
func (mr *msgReader) buffered() bool { return mr.r.Buffered() }

// frameWriter serializes Message frames onto a connection with a reused
// encode buffer behind a buffered writer. queue stages a frame without
// flushing (the manager's coalesced dispatch delivery flushes once per
// batch); send is queue+flush for lockstep frames (register, pong, results,
// pings, shutdown). A frameWriter is safe for concurrent use.
type frameWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc []byte // appendMessage scratch
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(w, 16*1024)}
}

// queue encodes m into the write buffer without flushing.
func (fw *frameWriter) queue(m *Message) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.queueLocked(m)
}

func (fw *frameWriter) queueLocked(m *Message) error {
	var err error
	fw.enc, err = appendMessage(fw.enc[:0], m)
	if err != nil {
		return err
	}
	_, err = fw.bw.Write(fw.enc)
	return err
}

// flush pushes every queued frame to the connection.
func (fw *frameWriter) flush() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.bw.Flush()
}

// send encodes m and flushes it immediately.
func (fw *frameWriter) send(m *Message) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fw.queueLocked(m); err != nil {
		return err
	}
	return fw.bw.Flush()
}
