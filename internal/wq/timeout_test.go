package wq

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

// blackHoleWorker registers and accepts tasks but never returns results —
// the hung-worker failure mode the task watchdog exists for.
func blackHoleWorker(t *testing.T, ctx context.Context, addr string) {
	t.Helper()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Message{Type: MsgRegister, Capacity: resources.PaperWorker()}); err != nil {
		return
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		// Swallow every frame silently.
	}
}

func TestTaskTimeoutReapsHungWorker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(12, 7)
	m := NewManager(sim.NewOracle(w), WithTaskTimeout(500*time.Millisecond))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The black hole connects first and absorbs the initial dispatches.
	go blackHoleWorker(t, ctx, addr)
	for m.Workers() < 1 {
		time.Sleep(10 * time.Millisecond)
	}

	// A healthy worker joins; after the watchdog fires, the stolen tasks
	// must be requeued onto it and the workflow must still complete.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = RunWorker(ctx, addr, WorkerConfig{})
	}()
	defer wg.Wait()
	defer m.Close()

	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 12 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	// At least one task must have gone through the eviction/requeue path.
	evicted := 0
	for _, o := range res.Outcomes {
		evicted += int(o.EvictedTime()) // duration is 0; count attempts instead
	}
	requeued := 0
	for _, o := range res.Outcomes {
		if len(o.Attempts) > 1 {
			requeued++
		}
	}
	if requeued == 0 {
		t.Error("no task was ever requeued despite the hung worker")
	}
	_ = evicted
}

func TestNoTimeoutByDefault(t *testing.T) {
	m := NewManager(nil)
	if m.taskTimeout != 0 {
		t.Error("watchdog should be disabled by default")
	}
	m2 := NewManager(nil, WithTaskTimeout(time.Second))
	if m2.taskTimeout != time.Second {
		t.Error("option not applied")
	}
}
