package wq

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

// blackHoleWorker registers and accepts frames but never answers — neither
// results nor pongs — the hung-worker failure mode the heartbeat sweeper
// exists for.
func blackHoleWorker(t *testing.T, ctx context.Context, addr string) {
	t.Helper()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Message{Type: MsgRegister, Capacity: resources.PaperWorker()}); err != nil {
		return
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		// Swallow every frame silently.
	}
}

func TestTaskTimeoutReapsHungWorker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(12, 7)
	m := NewManager(sim.NewOracle(w), WithTaskTimeout(500*time.Millisecond))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The black hole connects first and absorbs the initial dispatches.
	go blackHoleWorker(t, ctx, addr)
	for m.Workers() < 1 {
		time.Sleep(10 * time.Millisecond)
	}

	// A healthy worker joins; after the sweeper declares the black hole
	// lost, the stolen tasks must be requeued onto it and the workflow must
	// still complete.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = RunWorker(ctx, addr, WorkerConfig{})
	}()
	defer wg.Wait()
	defer m.Close()

	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 12 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	// The black hole held real dispatches, so real eviction attempts must
	// have been recorded when the sweeper reclaimed them.
	evicted := 0
	for _, o := range res.Outcomes {
		for _, a := range o.Attempts {
			if a.Status == metrics.Evicted {
				evicted++
			}
		}
	}
	if evicted == 0 {
		t.Error("no eviction attempt recorded despite the hung worker")
	}
	if res.Acc.Evictions() != evicted {
		t.Errorf("accumulator evictions = %d, want %d", res.Acc.Evictions(), evicted)
	}
	s := m.Stats()
	if s.HeartbeatTimeouts == 0 {
		t.Error("hung worker was not reclaimed by a heartbeat timeout")
	}
	if s.Evictions != evicted {
		t.Errorf("stats evictions = %d, want %d", s.Evictions, evicted)
	}
}

// TestCompletedTaskNeverReaped is the regression for the old per-dispatch
// watchdog's TOCTOU: tasks run much longer than the heartbeat timeout on a
// healthy (pong-answering) worker, and nothing may be reaped.
func TestCompletedTaskNeverReaped(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(6, 8)
	for i := range w.Tasks {
		// 1000 virtual seconds at 1e-3 scale = 1 s per task, well past the
		// heartbeat timeout below.
		w.Tasks[i].Consumption = w.Tasks[i].Consumption.With(resources.Time, 1000)
	}
	m := NewManager(sim.NewOracle(w), WithHeartbeat(50*time.Millisecond, 400*time.Millisecond))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 2, WorkerConfig{TimeScale: 1e-3})
	defer wg.Wait()
	defer m.Close()

	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Acc.Evictions(); got != 0 {
		t.Errorf("healthy workers suffered %d evictions", got)
	}
	s := m.Stats()
	if s.HeartbeatTimeouts != 0 {
		t.Errorf("heartbeat timeouts = %d on responsive workers", s.HeartbeatTimeouts)
	}
	if m.Workers() != 2 {
		t.Errorf("workers = %d, want 2 still connected", m.Workers())
	}
}

// TestHeartbeatDisconnectsSilentWorker: even with no tasks at all, a worker
// that never answers pings is dropped from the pool.
func TestHeartbeatDisconnectsSilentWorker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	m := NewManager(nil, WithHeartbeat(20*time.Millisecond, 100*time.Millisecond))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	go blackHoleWorker(t, ctx, addr)
	for m.Workers() < 1 {
		time.Sleep(5 * time.Millisecond)
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.Workers() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m.Workers() != 0 {
		t.Fatal("silent worker still connected after heartbeat timeout")
	}
	if s := m.Stats(); s.HeartbeatTimeouts != 1 {
		t.Errorf("heartbeat timeouts = %d, want 1", s.HeartbeatTimeouts)
	}
}

func TestHeartbeatOptions(t *testing.T) {
	m := NewManager(nil)
	if m.hbInterval != 0 {
		t.Error("heartbeats should be disabled by default")
	}
	m2 := NewManager(nil, WithTaskTimeout(time.Second))
	if m2.hbTimeout != time.Second || m2.hbInterval != 250*time.Millisecond {
		t.Errorf("WithTaskTimeout mapping: interval=%v timeout=%v", m2.hbInterval, m2.hbTimeout)
	}
	m3 := NewManager(nil, WithHeartbeat(100*time.Millisecond, 0))
	if m3.hbTimeout != 400*time.Millisecond {
		t.Errorf("default heartbeat timeout = %v, want 4x interval", m3.hbTimeout)
	}
	m4 := NewManager(nil, WithRetryLimit(3), WithDrainTimeout(time.Minute))
	if m4.retryLimit != 3 || m4.drainTimeout != time.Minute {
		t.Error("retry limit / drain timeout options not applied")
	}
}
