package wq

import (
	"context"
	"testing"

	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

func TestWorkerConfigDefaults(t *testing.T) {
	cfg := WorkerConfig{}.withDefaults()
	if cfg.Capacity != resources.PaperWorker() {
		t.Errorf("default capacity = %v", cfg.Capacity)
	}
	if cfg.TimeScale != 1e-4 {
		t.Errorf("default timescale = %v", cfg.TimeScale)
	}
	custom := WorkerConfig{Capacity: resources.New(4, 1024, 1024, 0), TimeScale: 1}.withDefaults()
	if custom.Capacity.Get(resources.Cores) != 4 || custom.TimeScale != 1 {
		t.Errorf("custom config overwritten: %+v", custom)
	}
}

func TestExecuteTaskSuccess(t *testing.T) {
	cfg := WorkerConfig{TimeScale: 0}.withDefaults()
	cfg.TimeScale = 1e-9 // effectively no sleeping
	msg := Message{
		Type:     MsgTask,
		TaskID:   7,
		Category: "c",
		Alloc:    resources.New(2, 1000, 1000, resources.Unlimited),
		Peak:     resources.New(1, 500, 100, 0),
		Runtime:  30,
	}
	res := executeTask(context.Background(), cfg, msg)
	if res.Type != MsgResult || res.TaskID != 7 {
		t.Fatalf("result frame = %+v", res)
	}
	if res.Status != StatusSuccess {
		t.Errorf("status = %q", res.Status)
	}
	if res.Duration != 30 {
		t.Errorf("duration = %v, want the runtime", res.Duration)
	}
	if len(res.Exceeded) != 0 {
		t.Errorf("exceeded = %v", res.Exceeded)
	}
}

func TestExecuteTaskExhaustion(t *testing.T) {
	cfg := WorkerConfig{}.withDefaults()
	cfg.TimeScale = 1e-9
	cfg.Model = sim.RampLinear
	msg := Message{
		Type:    MsgTask,
		TaskID:  8,
		Alloc:   resources.New(2, 250, 1000, resources.Unlimited),
		Peak:    resources.New(1, 500, 100, 0),
		Runtime: 100,
	}
	res := executeTask(context.Background(), cfg, msg)
	if res.Status != StatusExhausted {
		t.Fatalf("status = %q", res.Status)
	}
	if res.Duration != 50 {
		t.Errorf("kill time = %v, want 50 (linear ramp crosses at a/c)", res.Duration)
	}
	if len(res.Exceeded) != 1 || res.Exceeded[0] != "memory" {
		t.Errorf("exceeded = %v, want [memory]", res.Exceeded)
	}
}

func TestExecuteTaskCancelledContext(t *testing.T) {
	cfg := WorkerConfig{}.withDefaults()
	cfg.TimeScale = 10 // would sleep 300 s without cancellation
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	msg := Message{
		Type:    MsgTask,
		TaskID:  9,
		Alloc:   resources.New(2, 1000, 1000, resources.Unlimited),
		Peak:    resources.New(1, 500, 100, 0),
		Runtime: 30,
	}
	res := executeTask(ctx, cfg, msg)
	// The result is still produced (the manager may be gone, but the frame
	// logic must not hang).
	if res.Status != StatusSuccess {
		t.Errorf("status = %q", res.Status)
	}
}
