package wq

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"

	"dynalloc/internal/jsonwire"
	"dynalloc/internal/resources"
)

// encodeStdMsg is the reference encoding: exactly what the original engine
// put on the wire via json.Encoder (compact JSON, HTML escaping, trailing
// newline).
func encodeStdMsg(t testing.TB, m *Message) ([]byte, error) {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func TestAppendMessageMatchesEncodingJSON(t *testing.T) {
	msgs := []Message{
		{},
		{Type: MsgRegister, Capacity: resources.New(16, 64000, 64000, 3600)},
		{Type: MsgTask, TaskID: 42, Category: "fit", Alloc: resources.New(4, 2000, 500, 3600),
			Peak: resources.Vector{1.5, 2048, 0.001, 1e21}, Runtime: 30.25},
		{Type: MsgResult, TaskID: 3, Category: "x", Status: StatusExhausted,
			Duration: 12.5, Exceeded: []string{"memory", "time"}},
		{Type: MsgResult, TaskID: 1, Status: StatusSuccess, Duration: 1e-9,
			Peak: resources.Vector{-1e-7, 9.999999999999999e20, 1e-6, math.MaxFloat64}},
		{Type: MsgPing},
		{Type: MsgShutdown, Category: "a<b>&c"},
		{Type: "", Category: "control:\x01\x1f del:\x7f unicode:\u00e9\u2028\u2029 bad:\xff\xfe"},
		{Type: MsgResult, Duration: -0.0},       // negative zero is ==0: omitted
		{Type: MsgResult, Exceeded: []string{}}, // empty-but-non-nil list still omitted
	}
	for i, m := range msgs {
		want, werr := encodeStdMsg(t, &m)
		got, gerr := appendMessage(nil, &m)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("message %d: error mismatch: json=%v codec=%v", i, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("message %d encoding mismatch:\n codec: %s\n  json: %s", i, got, want)
		}
	}
}

func TestAppendMessageNonFiniteFloat(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := Message{Type: MsgResult, Duration: v}
		if _, err := appendMessage(nil, &m); err == nil {
			t.Errorf("appendMessage accepted non-finite duration %v", v)
		}
		m = Message{Type: MsgResult, Peak: resources.Vector{0, v, 0, 0}}
		if _, err := appendMessage(nil, &m); err == nil {
			t.Errorf("appendMessage accepted non-finite vector element %v", v)
		}
	}
}

// TestDecodeMessageMatchesEncodingJSON pins the decoder to json.Unmarshal
// semantics on hand-picked tricky documents: duplicate keys, case-folded
// field names, unknown fields, nulls, short/long arrays, escapes.
func TestDecodeMessageMatchesEncodingJSON(t *testing.T) {
	docs := []string{
		`{"type":"task","task_id":3,"category":"fit","capacity":[0,0,0,0],"alloc":[0,0,0,0],"peak":[0,0,0,0]}`,
		`null`,
		`{}`,
		` { "type" : "ping" } `,
		`{"TYPE":"task","Task_ID":9}`, // case-folded field match
		`{"type":"a","type":"b"}`,     // last duplicate wins
		`{"task_id":null,"status":null,"alloc":null}`, // null leaves zero values
		`{"alloc":[1,2]}`,                                // short array zero-pads
		`{"alloc":[1,2,3,4,5,6]}`,                        // long array: extras validated, discarded
		`{"alloc":[1,2,3,4],"alloc":[9]}`,                // duplicate array re-zeroes tail
		`{"exceeded":[]}`,                                // empty list decodes non-nil
		`{"exceeded":["memory","time"],"exceeded":null}`, // null resets to nil
		`{"exceeded":["a",null,"b"]}`,                    // null element -> ""
		`{"unknown":{"deep":[1,{"x":null}]},"task_id":2}`,
		`{"status":"\u0041\u00e9\ud83d\ude00\t\\\" \ud800 \u2028"}`, // escapes incl. lone surrogate
		`{"category":"caf\u00e9 ` + "\xc3\xa9 \xff" + `"}`,          // raw UTF-8 + invalid byte
		`{"runtime":1e-9,"duration":-0.5e+3}`,
		`{"task_id":-7,"duration":0.125}`,
	}
	for _, doc := range docs {
		var dec messageDecoder
		var mine, std Message
		merr := dec.decode([]byte(doc), &mine)
		serr := json.Unmarshal([]byte(doc), &std)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("doc %q: error mismatch: codec=%v json=%v", doc, merr, serr)
		}
		if merr != nil {
			continue
		}
		if !reflect.DeepEqual(mine, std) {
			t.Errorf("doc %q:\n codec: %+v\n  json: %+v", doc, mine, std)
		}
	}
}

// TestDecodeMessageRejects pins decode failures (and that they are reported
// as *jsonwire.DecodeError, which the manager counts in Stats.DecodeErrors):
// every document here must fail both decoders.
func TestDecodeMessageRejects(t *testing.T) {
	docs := []string{
		``, `   `, `not json`, `{`, `{"type"}`, `{"type":}`, `{"type":"a"`,
		`{"type":"a"} trailing`, `[1,2]`, `"frame"`, `123`, `true`,
		`{"task_id":"x"}`, `{"task_id":1.5}`, `{"task_id":1e3}`,
		`{"runtime":01}`, `{"runtime":+1}`, `{"runtime":.5}`, `{"runtime":1.}`,
		`{"alloc":[1,}`, `{"alloc":{"0":1}}`, `{"exceeded":[5]}`,
		`{"type":"bad \u12 escape"}`, `{"type":"bad \q"}`, "{\"type\":\"ctl \x01\"}",
	}
	for _, doc := range docs {
		var dec messageDecoder
		var mine, std Message
		merr := dec.decode([]byte(doc), &mine)
		serr := json.Unmarshal([]byte(doc), &std)
		if serr == nil {
			t.Fatalf("doc %q: expected json.Unmarshal to fail too; fix the test", doc)
		}
		if merr == nil {
			t.Errorf("doc %q: codec accepted a document json rejects", doc)
			continue
		}
		if _, ok := merr.(*jsonwire.DecodeError); !ok {
			t.Errorf("doc %q: error %v is not a *jsonwire.DecodeError", doc, merr)
		}
	}
}

// TestMsgReaderLargeFrame is the regression for the old bufio.Scanner
// framing, which died at its 1 MiB token cap (and defaulted to 64 KiB before
// Buffer was set): a 2 MiB frame must round-trip through frameWriter and
// msgReader on both one-byte and single reads.
func TestMsgReaderLargeFrame(t *testing.T) {
	big := strings.Repeat("x", 2<<20) // 2 MiB, beyond the old scanner cap
	msgs := []Message{
		{Type: MsgTask, TaskID: 1, Category: big, Alloc: resources.New(1, 2, 3, 4), Runtime: 5},
		{Type: MsgResult, TaskID: 1, Category: big, Status: StatusSuccess, Duration: 5},
		{Type: MsgPong},
	}
	var wire bytes.Buffer
	fw := newFrameWriter(&wire)
	for i := range msgs {
		if err := fw.queue(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.flush(); err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]io.Reader{
		"one-byte-reads": iotest.OneByteReader(bytes.NewReader(wire.Bytes())),
		"single-read":    bytes.NewReader(wire.Bytes()),
	} {
		mr := newMsgReader(r)
		var got Message
		for i, want := range msgs {
			if err := mr.next(&got); err != nil {
				t.Fatalf("%s: frame %d: %v", name, i, err)
			}
			if got.Exceeded != nil {
				got.Exceeded = append([]string(nil), got.Exceeded...)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: frame %d mismatch (category len %d vs %d)",
					name, i, len(got.Category), len(want.Category))
			}
		}
		if err := mr.next(&got); err != io.EOF {
			t.Fatalf("%s: expected EOF after last frame, got %v", name, err)
		}
	}
}

// FuzzWQMessageCodec is the byte-compatibility pin for the encoder and the
// value-compatibility pin for the decoder: for any message, appendMessage
// must produce exactly json.Encoder's bytes, and decoding those bytes must
// match json.Unmarshal field for field (twice, to prove scratch reuse is
// sound).
func FuzzWQMessageCodec(f *testing.F) {
	f.Add("task", "fit", "", "", 3, 1.5, 2048.0, 30.25, 0.0)
	f.Add("result", "x", "exhausted", "memory", 9, 1e-7, 1e21, -0.0, 12.5)
	f.Add("result", "a<b>&c\u2028", "success", "", 0, math.MaxFloat64, 5e-324, 0.1, 1e-9)
	f.Add("register", "oom \xff\xfe", "tab\t\"q\"", "time", 12, math.NaN(), 0.0, 0.0, 99.0)
	f.Fuzz(func(t *testing.T, typ, category, status, exc string,
		taskID int, a, b, rt, dur float64) {
		msg := Message{
			Type:     typ,
			Capacity: resources.Vector{a, b, -a, a + b},
			TaskID:   taskID,
			Category: category,
			Alloc:    resources.Vector{b, rt, a * 2, -b},
			Peak:     resources.Vector{-rt, a, b, rt},
			Runtime:  rt,
			Status:   status,
			Duration: dur,
		}
		if exc != "" {
			msg.Exceeded = []string{exc, "memory"}
		}
		want, werr := encodeStdMsg(t, &msg)
		got, gerr := appendMessage(nil, &msg)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error mismatch: json=%v codec=%v (message %+v)", werr, gerr, msg)
		}
		if werr != nil {
			return // non-finite float; both reject
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encoding mismatch:\n codec: %s\n  json: %s", got, want)
		}
		line := got[:len(got)-1]
		var dec messageDecoder
		var mine, std Message
		if err := dec.decode(line, &mine); err != nil {
			t.Fatalf("codec rejected its own encoding %s: %v", line, err)
		}
		if err := json.Unmarshal(line, &std); err != nil {
			t.Fatalf("json rejected codec encoding %s: %v", line, err)
		}
		if !reflect.DeepEqual(mine, std) {
			t.Fatalf("decode mismatch:\n codec: %+v\n  json: %+v", mine, std)
		}
		// Second decode through the same decoder: the reused scratch (intern
		// table, exceeded backing array, string buffer) must not leak state.
		var again Message
		if err := dec.decode(line, &again); err != nil {
			t.Fatalf("second decode failed: %v", err)
		}
		if !reflect.DeepEqual(again, std) {
			t.Fatalf("second decode diverged:\n codec: %+v\n  json: %+v", again, std)
		}
	})
}

// FuzzWQMessageDecode feeds arbitrary bytes to the decoder and requires
// exact agreement with json.Unmarshal: same accept/reject verdict, and
// identical Message values on accept.
func FuzzWQMessageDecode(f *testing.F) {
	f.Add([]byte(`{"type":"task","task_id":1,"alloc":[1,2,3,4]}`))
	f.Add([]byte(`{"TYPE":"x","capacity":[1],"capacity":null}`))
	f.Add([]byte(`{"exceeded":["a",null],"unknown":[{"k":[true,false,null]}]}`))
	f.Add([]byte(`{"status":"\ud83d\ude00\ud800\u2028"}`))
	f.Add([]byte(` null `))
	f.Add([]byte(`{"task_id":1e3}`))
	f.Add([]byte("{\"category\":\"\xc3\xa9\xff\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec messageDecoder
		var mine, std Message
		merr := dec.decode(data, &mine)
		serr := json.Unmarshal(data, &std)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("verdict mismatch on %q: codec=%v json=%v", data, merr, serr)
		}
		if merr != nil {
			return
		}
		if !reflect.DeepEqual(mine, std) {
			t.Fatalf("decode mismatch on %q:\n codec: %+v\n  json: %+v", data, mine, std)
		}
	})
}
