package wq

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/runlog"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// fixedPolicy always hands out the same allocation, including on retries —
// the pathological policy that turns an under-allocated task into an
// infinite exhaustion loop unless the retry limit bounds it.
type fixedPolicy struct {
	alloc resources.Vector
}

func (p fixedPolicy) Allocate(string, int) resources.Vector { return p.alloc }
func (p fixedPolicy) Retry(_ string, _ int, _ resources.Vector, _ []resources.Kind) resources.Vector {
	return p.alloc
}
func (p fixedPolicy) Observe(string, int, resources.Vector, float64) {}
func (p fixedPolicy) Name() string                                   { return "fixed" }

var _ allocator.Policy = fixedPolicy{}

func generousPolicy() fixedPolicy {
	return fixedPolicy{alloc: resources.New(2, 2000, 2000, resources.Unlimited)}
}

// TestSubmitRunWorkflowIDCollision is the regression for the task-ID
// collision: a Submit-ted task used to claim ID 1, and a later RunWorkflow
// whose pre-declared tasks also start at ID 1 silently overwrote its state.
// Every registration path now draws from one monotonic counter, so all
// outcomes must survive with distinct IDs.
func TestSubmitRunWorkflowIDCollision(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	m := NewManager(generousPolicy())
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 2, WorkerConfig{})
	defer wg.Wait()
	defer m.Close()

	submitted := workflow.Task{
		Category:    "dynamic",
		Consumption: resources.New(1, 500, 100, 10),
	}
	ch := m.Submit(submitted) // claims ID 1

	w := quickWorkflow(5, 9) // declares IDs 1..5, colliding with the submission
	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 5 {
		t.Fatalf("%d workflow outcomes", len(res.Outcomes))
	}

	var submittedOutcome metrics.TaskOutcome
	select {
	case submittedOutcome = <-ch:
	case <-ctx.Done():
		t.Fatal("submitted task outcome lost (overwritten by workflow registration)")
	}
	if !submittedOutcome.Succeeded() {
		t.Fatalf("submitted task did not succeed: %+v", submittedOutcome)
	}

	seen := map[int]bool{submittedOutcome.TaskID: true}
	for _, o := range res.Outcomes {
		if seen[o.TaskID] {
			t.Errorf("task ID %d registered twice", o.TaskID)
		}
		seen[o.TaskID] = true
		if !o.Succeeded() {
			t.Errorf("workflow task %d did not succeed", o.TaskID)
		}
	}
}

// TestEvictionRequeueDeterministic: multi-task evictions requeue in
// ascending task-ID order regardless of map iteration order.
func TestEvictionRequeueDeterministic(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := NewManager(nil)
		for _, id := range []int{7, 3, 5, 11, 2} {
			m.tasks[id] = &taskState{
				task:     workflow.Task{ID: id},
				hasAlloc: true,
				outcome:  metrics.TaskOutcome{TaskID: id},
			}
			m.nextTID = 11
		}
		m.tasks[9] = &taskState{task: workflow.Task{ID: 9}, hasAlloc: true, outcome: metrics.TaskOutcome{TaskID: 9}}
		m.queue = []int{9} // already waiting before the eviction
		w := &managedWorker{id: 0, alive: true, running: map[int]resources.Vector{
			7: {}, 3: {}, 5: {}, 11: {}, 2: {},
		}}
		m.evict(w)
		want := []int{2, 3, 5, 7, 11, 9}
		if len(m.queue) != len(want) {
			t.Fatalf("queue = %v, want %v", m.queue, want)
		}
		for i, id := range want {
			if m.queue[i] != id {
				t.Fatalf("trial %d: queue = %v, want %v", trial, m.queue, want)
			}
		}
	}
}

// TestRetryLimitFailsTask: a task whose allocation can never fit fails
// permanently after the budget is spent, with a terminal metrics.Failed
// attempt, instead of looping forever.
func TestRetryLimitFailsTask(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const limit = 3
	// 100 MB allocated vs a 500 MB peak: every attempt exhausts.
	pol := fixedPolicy{alloc: resources.New(2, 100, 2000, resources.Unlimited)}
	m := NewManager(pol, WithRetryLimit(limit))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 1, WorkerConfig{Model: sim.RampLinear})
	defer wg.Wait()
	defer m.Close()

	w := &workflow.Workflow{Name: "doomed", Tasks: []workflow.Task{{
		ID:          1,
		Category:    "doomed",
		Consumption: resources.New(1, 500, 100, 10),
	}}}
	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("result.Failed = %d, want 1", res.Failed)
	}
	o := res.Outcomes[0]
	if o.Succeeded() {
		t.Fatal("doomed task reported success")
	}
	last := o.Attempts[len(o.Attempts)-1]
	if last.Status != metrics.Failed {
		t.Fatalf("last attempt status = %v, want failed", last.Status)
	}
	exhausted := 0
	for _, a := range o.Attempts {
		if a.Status == metrics.Exhausted {
			exhausted++
		}
	}
	if exhausted != limit+1 {
		t.Errorf("exhausted attempts = %d, want %d (limit+1)", exhausted, limit+1)
	}
	if res.Acc.Failures() != 1 {
		t.Errorf("accumulator failures = %d, want 1", res.Acc.Failures())
	}
	if s := res.Summary(); s.Failures != 1 {
		t.Errorf("summary failures = %d, want 1", s.Failures)
	}
	if s := m.Stats(); s.Failures != 1 || s.Exhaustions != exhausted {
		t.Errorf("stats failures=%d exhaustions=%d, want 1/%d", s.Failures, s.Exhaustions, exhausted)
	}
	// A failed task contributes allocation but no consumption.
	if got := res.Acc.AWE(resources.Memory); got != 0 {
		t.Errorf("memory AWE = %v, want 0 for an all-failed run", got)
	}
}

// TestCloseWakesBlockedRunWorkflow: with no workers, a RunWorkflow caller
// parks in cond.Wait; Close must wake it with ErrManagerClosed well before
// its context deadline.
func TestCloseWakesBlockedRunWorkflow(t *testing.T) {
	w := quickWorkflow(5, 10)
	m := NewManager(generousPolicy())
	if _, err := m.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		_, err := m.RunWorkflow(ctx, w)
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	m.Close()

	select {
	case err := <-errc:
		if !errors.Is(err, ErrManagerClosed) {
			t.Fatalf("err = %v, want ErrManagerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWorkflow still blocked after Close")
	}
	if ctx.Err() != nil {
		t.Fatal("sentinel must arrive before the context deadline")
	}
}

// TestDrainUnderLoad: Close during an active run stops dispatching, waits
// for the in-flight results, and then releases the blocked caller.
func TestDrainUnderLoad(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(30, 11)
	for i := range w.Tasks {
		// Wide, slow tasks: 8 of 16 cores each means only two run per
		// worker, so a backlog necessarily remains when Close lands mid-run.
		w.Tasks[i].Consumption = w.Tasks[i].Consumption.
			With(resources.Time, 200).
			With(resources.Cores, 8)
	}
	m := NewManager(sim.NewOracle(w), WithDrainTimeout(10*time.Second))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 2, WorkerConfig{TimeScale: 1e-3}) // 0.2 s per task
	defer wg.Wait()

	errc := make(chan error, 1)
	go func() {
		_, err := m.RunWorkflow(ctx, w)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let dispatches land
	m.Close()

	select {
	case err := <-errc:
		if !errors.Is(err, ErrManagerClosed) {
			t.Fatalf("err = %v, want ErrManagerClosed", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("RunWorkflow still blocked after drain")
	}
	s := m.Stats()
	if s.InFlight != 0 {
		t.Errorf("in-flight after drain = %d, want 0", s.InFlight)
	}
	// Drain accepted the in-flight results: every dispatch is accounted for
	// as a success, an exhaustion, or an eviction.
	if s.Dispatches != s.Successes+s.Exhaustions+s.Evictions {
		t.Errorf("dispatches=%d not reconciled: successes=%d exhaustions=%d evictions=%d",
			s.Dispatches, s.Successes, s.Exhaustions, s.Evictions)
	}
}

// TestSubmitAfterClose: a closed manager fails submissions immediately
// instead of parking them on a queue nothing will ever drain.
func TestSubmitAfterClose(t *testing.T) {
	m := NewManager(generousPolicy())
	m.Close()
	select {
	case o := <-m.Submit(workflow.Task{Category: "late", Consumption: resources.New(1, 100, 100, 1)}):
		if len(o.Attempts) != 1 || o.Attempts[0].Status != metrics.Failed {
			t.Fatalf("outcome = %+v, want one failed attempt", o)
		}
	case <-time.After(time.Second):
		t.Fatal("Submit on a closed manager never delivered")
	}
}

// TestStatsReconcileWithResult: the Stats() counters agree with the
// sim.Result the same run produced.
func TestStatsReconcileWithResult(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 1})
	m := NewManager(pol)
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 3, WorkerConfig{})
	defer wg.Wait()
	defer m.Close()

	w := quickWorkflow(40, 12)
	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Successes != len(res.Outcomes) {
		t.Errorf("successes = %d, want %d", s.Successes, len(res.Outcomes))
	}
	if s.Exhaustions != res.Acc.Retries() {
		t.Errorf("exhaustions = %d, want %d", s.Exhaustions, res.Acc.Retries())
	}
	if s.Evictions != res.Acc.Evictions() {
		t.Errorf("evictions = %d, want %d", s.Evictions, res.Acc.Evictions())
	}
	if s.Failures != res.Failed {
		t.Errorf("failures = %d, want %d", s.Failures, res.Failed)
	}
	if s.Dispatches != res.Acc.Attempts() {
		t.Errorf("dispatches = %d, want %d attempts", s.Dispatches, res.Acc.Attempts())
	}
	if s.PeakWorkers != 3 || s.ConnectedWorkers != 3 {
		t.Errorf("workers peak=%d connected=%d, want 3/3", s.PeakWorkers, s.ConnectedWorkers)
	}
	if s.PeakQueue < len(w.Tasks) {
		t.Errorf("peak queue = %d, want >= %d", s.PeakQueue, len(w.Tasks))
	}
	if len(s.Workers) != 3 {
		t.Fatalf("per-worker stats for %d workers, want 3", len(s.Workers))
	}
	perWorkerDispatched, perWorkerBusy := 0, 0.0
	for _, ws := range s.Workers {
		perWorkerDispatched += ws.Dispatched
		perWorkerBusy += ws.BusySeconds
	}
	if perWorkerDispatched != s.Dispatches {
		t.Errorf("per-worker dispatch sum = %d, want %d", perWorkerDispatched, s.Dispatches)
	}
	if perWorkerBusy <= 0 {
		t.Error("per-worker busy time never accumulated")
	}
}

// TestRunlogTracerReplay: a live run traced into a run log replays through
// runlog.Read/Replay like a simulator log, with the lifecycle events intact
// and consistent with the manager's counters.
func TestRunlogTracerReplay(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var buf bytes.Buffer
	lw, err := runlog.NewWriter(&buf, runlog.Header{Workload: "quick", Algorithm: "exhaustive", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 13})
	m := NewManager(pol, WithTracer(NewRunlogTracer(lw)), WithHeartbeat(50*time.Millisecond, time.Second))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		_ = RunWorker(ctx, addr, WorkerConfig{})
	}()
	defer wwg.Wait()

	w := quickWorkflow(20, 13)
	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // emit the drain events before the footer
	if err := lw.Finish(res); err != nil {
		t.Fatal(err)
	}

	log, err := runlog.Read(&buf)
	if err != nil {
		t.Fatalf("replaying live run log: %v", err)
	}
	if len(log.Outcomes) != 20 {
		t.Fatalf("%d outcomes in log", len(log.Outcomes))
	}
	acc := runlog.Replay(log)
	for _, k := range resources.AllocatedKinds() {
		if got, want := acc.AWE(k), res.Acc.AWE(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("replayed AWE(%s) = %v, want %v", k, got, want)
		}
	}

	s := m.Stats()
	counts := map[string]int{}
	for _, ev := range log.Events {
		counts[ev.Event]++
	}
	if counts[string(EventDispatch)] != s.Dispatches {
		t.Errorf("dispatch events = %d, want %d", counts[string(EventDispatch)], s.Dispatches)
	}
	if counts[string(EventResult)] != s.Successes+s.Exhaustions {
		t.Errorf("result events = %d, want %d", counts[string(EventResult)], s.Successes+s.Exhaustions)
	}
	if counts[string(EventWorkerJoin)] != 1 {
		t.Errorf("worker-join events = %d, want 1", counts[string(EventWorkerJoin)])
	}
	if counts[string(EventDrainStart)] != 1 || counts[string(EventDrainEnd)] != 1 {
		t.Errorf("drain events = %d/%d, want 1/1",
			counts[string(EventDrainStart)], counts[string(EventDrainEnd)])
	}
	for i := 1; i < len(log.Events); i++ {
		if log.Events[i].TimeNS < log.Events[i-1].TimeNS {
			t.Fatalf("event %d out of order", i)
		}
	}
}
