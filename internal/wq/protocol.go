// Package wq is a small Work Queue-style manager/worker execution engine —
// the live counterpart of the discrete-event simulator. A manager listens on
// TCP, workers connect and advertise their capacity, and the manager
// dispatches tasks with allocations obtained from an allocator policy
// (Figure 1 / Figure 3a of the paper: the scheduler provisions resources for
// each ready task and sends it to an available worker; the worker enforces
// the allocation, kills over-consuming tasks, and returns the resource
// record).
//
// Task "execution" is virtual: each task carries its consumption profile and
// the worker advances it through a scaled wall-clock sleep while enforcing
// the allocation with the same resource-monitor rules the simulator uses
// (sim.EvaluateAttempt). This substitutes for running real payloads while
// exercising a real distributed control path: connection handling,
// dispatch-time allocation, failure/retry round trips, and concurrent
// workers.
//
// The wire protocol is JSON objects, one per line.
package wq

import (
	"dynalloc/internal/resources"
)

// Message is the single frame type of the protocol; Type selects which
// fields are meaningful.
type Message struct {
	Type string `json:"type"`

	// register (worker -> manager)
	Capacity resources.Vector `json:"capacity,omitempty"`

	// task (manager -> worker)
	TaskID   int              `json:"task_id,omitempty"`
	Category string           `json:"category,omitempty"`
	Alloc    resources.Vector `json:"alloc,omitempty"`
	Peak     resources.Vector `json:"peak,omitempty"`
	Runtime  float64          `json:"runtime,omitempty"`

	// result (worker -> manager)
	Status   string   `json:"status,omitempty"` // "success" or "exhausted"
	Duration float64  `json:"duration,omitempty"`
	Exceeded []string `json:"exceeded,omitempty"`

	// shutdown (manager -> worker)

	// ping (manager -> worker) / pong (worker -> manager): the liveness
	// probe. The manager's sweeper pings every worker each heartbeat
	// interval; any frame from the worker (pong or result) refreshes its
	// last-seen time, and a worker silent past the heartbeat timeout is
	// declared lost and its tasks requeued.
}

// Message types.
const (
	MsgRegister = "register"
	MsgTask     = "task"
	MsgResult   = "result"
	MsgShutdown = "shutdown"
	MsgPing     = "ping"
	MsgPong     = "pong"
)

// Statuses carried by result messages.
const (
	StatusSuccess   = "success"
	StatusExhausted = "exhausted"
)
