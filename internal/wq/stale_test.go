package wq

import (
	"io"
	"testing"

	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// countingPolicy is a fixed-allocation policy that counts the lifecycle
// calls the manager makes, so a test can assert that a dropped stale result
// fed nothing back into the allocator.
type countingPolicy struct {
	alloc    resources.Vector
	retries  int
	observes int
}

func (p *countingPolicy) Allocate(string, int) resources.Vector { return p.alloc }
func (p *countingPolicy) Retry(_ string, _ int, _ resources.Vector, _ []resources.Kind) resources.Vector {
	p.retries++
	return p.alloc
}
func (p *countingPolicy) Observe(string, int, resources.Vector, float64) { p.observes++ }
func (p *countingPolicy) Name() string                                   { return "counting" }

// stageWorker registers a fake connected worker whose frames go nowhere, so
// a test can drive dispatch/evict/handleResult interleavings by hand.
func stageWorker(m *Manager, capacity resources.Vector) *managedWorker {
	return m.addWorkerLocked(nil, io.Discard, capacity)
}

// TestStaleResultFromEvictedWorkerDropped is the regression for the
// stale-result race: a slow worker is evicted mid-task, the task requeues
// and re-dispatches to another worker, and then the evicted worker's late
// result arrives. Pre-fix, the manager saw a non-terminal task and appended
// a phantom Exhausted attempt, escalated through policy.Retry, and requeued
// the task while it was still running elsewhere — a double dispatch. The
// result must instead be recognized as coming from a non-owning worker and
// dropped.
func TestStaleResultFromEvictedWorkerDropped(t *testing.T) {
	pol := &countingPolicy{alloc: resources.New(2, 200, 200, resources.Unlimited)}
	m := NewManager(pol)

	m.mu.Lock()
	slow := stageWorker(m, resources.PaperWorker())
	other := stageWorker(m, resources.PaperWorker())
	st := m.registerTaskLocked(workflow.Task{
		Category:    "stale",
		Consumption: resources.New(1, 100, 100, 10),
	}, nil, true)
	id := st.task.ID
	m.dispatchLocked()
	m.mu.Unlock()

	if st.owner != slow.id {
		t.Fatalf("task dispatched to worker %d, want %d", st.owner, slow.id)
	}

	// The slow worker goes silent and is evicted; the task requeues and
	// re-dispatches onto the other worker.
	m.evict(slow)
	if st.owner != other.id {
		t.Fatalf("after eviction, owner = %d, want re-dispatch to %d", st.owner, other.id)
	}
	if _, running := other.running[id]; !running {
		t.Fatal("task not running on the surviving worker after requeue")
	}
	if got := len(st.outcome.Attempts); got != 1 || st.outcome.Attempts[0].Status != metrics.Evicted {
		t.Fatalf("attempts after eviction = %+v, want one Evicted", st.outcome.Attempts)
	}

	// The evicted worker's late exhausted result replays. It must not append
	// an attempt, must not reach policy.Retry, and must not requeue the task.
	m.handleResult(slow, Message{
		Type: MsgResult, TaskID: id, Status: StatusExhausted,
		Duration: 5, Exceeded: []string{"memory"},
	})
	if got := len(st.outcome.Attempts); got != 1 {
		t.Fatalf("stale exhausted result appended a phantom attempt: %+v", st.outcome.Attempts)
	}
	if pol.retries != 0 {
		t.Fatalf("stale result escalated through policy.Retry %d times", pol.retries)
	}
	if len(m.queue) != 0 {
		t.Fatalf("stale result requeued a running task: queue = %v", m.queue)
	}

	// A late success from the evicted worker is just as stale: it must not
	// terminate the task or feed a phantom record to the policy.
	m.handleResult(slow, Message{Type: MsgResult, TaskID: id, Status: StatusSuccess, Duration: 5})
	if st.done {
		t.Fatal("stale success terminated a task still running elsewhere")
	}
	if pol.observes != 0 {
		t.Fatalf("stale success fed %d phantom records to the policy", pol.observes)
	}

	s := m.Stats()
	if s.StaleResults != 2 {
		t.Errorf("StaleResults = %d, want 2", s.StaleResults)
	}
	if s.Successes != 0 || s.Exhaustions != 0 {
		t.Errorf("stale results counted as real: successes=%d exhaustions=%d", s.Successes, s.Exhaustions)
	}

	// The owning worker's genuine result still lands normally.
	m.handleResult(other, Message{Type: MsgResult, TaskID: id, Status: StatusSuccess, Duration: 7})
	if !st.done {
		t.Fatal("genuine result from the owning worker was not accepted")
	}
	if pol.observes != 1 {
		t.Errorf("policy observed %d records, want 1", pol.observes)
	}
	if s := m.Stats(); s.Successes != 1 {
		t.Errorf("successes = %d, want 1", s.Successes)
	}
}

// TestStaleResultTracing: dropped results surface in the trace stream so a
// run log shows the race happened.
func TestStaleResultTracing(t *testing.T) {
	var events []Event
	m := NewManager(&countingPolicy{alloc: resources.New(1, 100, 100, resources.Unlimited)},
		WithTracer(FuncTracer(func(ev Event) { events = append(events, ev) })))

	m.mu.Lock()
	w := stageWorker(m, resources.PaperWorker())
	stageWorker(m, resources.PaperWorker())
	st := m.registerTaskLocked(workflow.Task{
		Category:    "stale",
		Consumption: resources.New(1, 50, 50, 5),
	}, nil, true)
	m.dispatchLocked()
	m.mu.Unlock()

	m.evict(w)
	m.handleResult(w, Message{Type: MsgResult, TaskID: st.task.ID, Status: StatusSuccess})

	var stale []Event
	for _, ev := range events {
		if ev.Type == EventStaleResult {
			stale = append(stale, ev)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("stale-result events = %d, want 1", len(stale))
	}
	if stale[0].TaskID != st.task.ID || stale[0].WorkerID != w.id || stale[0].Status != StatusSuccess {
		t.Errorf("stale event = %+v", stale[0])
	}
}

// TestDispatchOrderAliveWorkers pins the dispatch scan contract after the
// alive-chain rewrite: tasks place onto connected workers in ascending-ID
// order, evicted workers drop out of the scan entirely (instead of leaving
// tombstones the old 0..nextWID sweep paid for forever), and late joiners
// take the tail position.
func TestDispatchOrderAliveWorkers(t *testing.T) {
	var dispatches [][2]int // (taskID, workerID) in dispatch order
	m := NewManager(&countingPolicy{alloc: resources.New(1, 100, 100, resources.Unlimited)},
		WithTracer(FuncTracer(func(ev Event) {
			if ev.Type == EventDispatch {
				dispatches = append(dispatches, [2]int{ev.TaskID, ev.WorkerID})
			}
		})))

	oneCore := resources.New(1, 1024, 1024, resources.Unlimited)
	task := workflow.Task{Category: "order", Consumption: resources.New(1, 50, 50, 5)}

	m.mu.Lock()
	workers := make([]*managedWorker, 5)
	for i := range workers {
		workers[i] = stageWorker(m, oneCore) // room for exactly one task each
	}
	for i := 0; i < 3; i++ {
		m.registerTaskLocked(task, nil, true) // IDs 1..3
	}
	m.dispatchLocked()
	m.mu.Unlock()

	// Tasks 1..3 fill workers 0..2 in ascending order.
	want := [][2]int{{1, 0}, {2, 1}, {3, 2}}
	assertDispatches(t, "initial", dispatches, want)

	// Worker 1 dies: its task requeues and lands on worker 3, the lowest
	// alive worker with headroom.
	m.evict(workers[1])
	want = append(want, [2]int{2, 3})
	assertDispatches(t, "after eviction", dispatches, want)

	// Two new tasks: the first takes worker 4, the second has nowhere to go.
	m.mu.Lock()
	m.registerTaskLocked(task, nil, true) // ID 4
	m.registerTaskLocked(task, nil, true) // ID 5
	m.dispatchLocked()
	m.mu.Unlock()
	want = append(want, [2]int{4, 4})
	assertDispatches(t, "saturated", dispatches, want)

	// Worker 0 dies too; its task parks at the queue front because every
	// survivor is full.
	m.evict(workers[0])
	assertDispatches(t, "no capacity", dispatches, want)

	// A late joiner gets ID 5 and immediately receives the queue front.
	m.mu.Lock()
	stageWorker(m, oneCore)
	m.dispatchLocked()
	queueLen := len(m.queue)
	alive := m.sortedWorkers()
	m.mu.Unlock()
	want = append(want, [2]int{1, 5})
	assertDispatches(t, "late joiner", dispatches, want)
	if queueLen != 1 {
		t.Errorf("queue depth = %d, want 1 (task 5 still waiting)", queueLen)
	}

	// The scan set is exactly the alive workers, ascending.
	wantAlive := []int{2, 3, 4, 5}
	if len(alive) != len(wantAlive) {
		t.Fatalf("alive workers = %d, want %d", len(alive), len(wantAlive))
	}
	for i, w := range alive {
		if w.id != wantAlive[i] {
			t.Fatalf("alive worker order: got id %d at %d, want %d", w.id, i, wantAlive[i])
		}
	}
}

func assertDispatches(t *testing.T, stage string, got, want [][2]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: dispatches = %v, want %v", stage, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: dispatch %d = %v, want %v (full: %v)", stage, i, got[i], want[i], got)
		}
	}
}
