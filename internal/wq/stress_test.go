package wq

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// stressPolicy under-allocates the "tight" category so its first attempt
// always exhausts and must escalate through Retry, exercising the
// exceeded-kinds wire path under load.
type stressPolicy struct{}

func (stressPolicy) Allocate(category string, _ int) resources.Vector {
	if category == "tight" {
		return resources.New(1, 30, 100, 3600)
	}
	return resources.New(1, 100, 100, 3600)
}
func (stressPolicy) Retry(_ string, _ int, prev resources.Vector, _ []resources.Kind) resources.Vector {
	return prev.Scale(2)
}
func (stressPolicy) Observe(string, int, resources.Vector, float64) {}
func (stressPolicy) Name() string                                   { return "stress" }

// TestPipelinedStress drives the full live engine the way the benchmarks do,
// but with every failure mode at once: a dozen workers over real TCP, short
// heartbeats so pings interleave with results on the same connections,
// under-allocated tasks exhausting and escalating mid-stream, and a churn
// goroutine killing and replacing workers the whole time. Every task must
// still reach success (no retry limit) and the counters must reconcile.
func TestPipelinedStress(t *testing.T) {
	const (
		workers = 12
		total   = 1500
		submits = 16
	)
	m := NewManager(stressPolicy{}, WithHeartbeat(5*time.Millisecond, 250*time.Millisecond))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := WorkerConfig{Capacity: resources.New(8, 1000, 1000, 3600), TimeScale: 1e-6}

	// Stable fleet plus a churn slot: cancels[i] kills worker i's connection.
	var cancels [workers]context.CancelFunc
	var cancelsMu sync.Mutex
	spawn := func(slot int) {
		wctx, wcancel := context.WithCancel(ctx)
		cancelsMu.Lock()
		cancels[slot] = wcancel
		cancelsMu.Unlock()
		go func() { _ = RunWorker(wctx, addr, cfg) }()
	}
	for i := 0; i < workers; i++ {
		spawn(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Workers() < workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered", m.Workers(), workers)
		}
		time.Sleep(time.Millisecond)
	}

	// Churn: kill and replace one worker every few milliseconds for the whole
	// run, so evictions, requeues, and re-registrations overlap the stream.
	churnDone := make(chan struct{})
	var churned atomic.Int64
	go func() {
		defer close(churnDone)
		slot := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(3 * time.Millisecond):
			}
			cancelsMu.Lock()
			kill := cancels[slot]
			cancelsMu.Unlock()
			kill()
			churned.Add(1)
			spawn(slot)
			slot = (slot + 1) % workers
		}
	}()

	// Alternate easy and tight tasks from several submitters.
	var seq atomic.Int64
	var wg sync.WaitGroup
	outcomes := make(chan metrics.TaskOutcome, total)
	for g := 0; g < submits; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := seq.Add(1)
				if n > total {
					return
				}
				task := workflow.Task{Category: "easy", Consumption: resources.New(0.5, 50, 50, 1)}
				if n%3 == 0 {
					task.Category = "tight"
				}
				outcomes <- <-m.Submit(task)
			}
		}()
	}
	wg.Wait()
	cancel() // stop churn before inspecting counters
	<-churnDone

	close(outcomes)
	succ, tight := 0, 0
	for out := range outcomes {
		last := out.Attempts[len(out.Attempts)-1]
		if last.Status != metrics.Success {
			t.Fatalf("task %d ended %v after %d attempts", out.TaskID, last.Status, len(out.Attempts))
		}
		succ++
		if out.Category == "tight" {
			tight++
		}
	}
	if succ != total {
		t.Fatalf("got %d outcomes, want %d", succ, total)
	}

	st := m.Stats()
	if st.Successes != total {
		t.Errorf("Successes = %d, want %d", st.Successes, total)
	}
	// Every tight task needs at least one exhausted attempt before its
	// allocation covers its consumption.
	if st.Exhaustions < tight {
		t.Errorf("Exhaustions = %d, want >= %d tight tasks", st.Exhaustions, tight)
	}
	if churned.Load() == 0 {
		t.Error("churn loop never killed a worker")
	}
	if st.DecodeErrors != 0 {
		t.Errorf("DecodeErrors = %d, want 0", st.DecodeErrors)
	}
	// Dispatches and staged frames are counted on the same path; at
	// quiescence every staged frame has been handed to a writer.
	if st.FramesSent != int64(st.Dispatches) {
		t.Errorf("FramesSent = %d, Dispatches = %d; want equal", st.FramesSent, st.Dispatches)
	}
	if st.FlushBatches == 0 || st.FlushBatches > st.FramesSent {
		t.Errorf("FlushBatches = %d out of range (0, %d]", st.FlushBatches, st.FramesSent)
	}
}

// TestLargeFrameRoundTrip pushes a task whose category alone is 2 MiB
// through the full manager->worker->manager loop. The old engine framed
// worker-side reads with a bufio.Scanner capped at 1 MiB (64 KiB before its
// Buffer call), so a frame this size killed the connection; the shared
// grow-on-demand reader must carry it on both sides.
func TestLargeFrameRoundTrip(t *testing.T) {
	m := NewManager(stressPolicy{})
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mgrSide, wkrSide := loopPipe()
	go m.serveWorker(mgrSide)
	cfg := WorkerConfig{Capacity: resources.New(8, 1000, 1000, 3600), TimeScale: 1e-9}
	go func() { _ = runWorkerConn(ctx, wkrSide, cfg) }()
	deadline := time.Now().Add(5 * time.Second)
	for m.Workers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}

	big := make([]byte, 2<<20)
	for i := range big {
		big[i] = 'a' + byte(i%26)
	}
	out := <-m.Submit(workflow.Task{Category: "easy" + string(big), Consumption: resources.New(0.5, 50, 50, 1)})
	if len(out.Attempts) != 1 || out.Attempts[0].Status != metrics.Success {
		t.Fatalf("large-frame task did not succeed in one attempt: %+v", out.Attempts)
	}
	if got := m.Stats(); got.DecodeErrors != 0 {
		t.Fatalf("DecodeErrors = %d, want 0", got.DecodeErrors)
	}
}

// TestDecodeErrorSurfaced pins the malformed-frame path: garbage on a worker
// connection must bump Stats.DecodeErrors and emit a decode-error trace
// event (instead of silently dropping the connection), both before and after
// registration.
func TestDecodeErrorSurfaced(t *testing.T) {
	var traceMu sync.Mutex
	var events []Event
	m := NewManager(stressPolicy{}, WithTracer(FuncTracer(func(ev Event) {
		traceMu.Lock()
		events = append(events, ev)
		traceMu.Unlock()
	})))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Garbage before registration: counted with worker ID -1.
	pre, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(pre, "{not json}\n")
	pre.Close()

	// Garbage after a valid registration: counted against the worker.
	post, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(post, `{"type":"register","capacity":[1,100,100,3600]}`+"\n")
	deadline := time.Now().Add(5 * time.Second)
	for m.Workers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Fprintf(post, "[1,2,3]\n")
	defer post.Close()

	for {
		if m.Stats().DecodeErrors == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("DecodeErrors = %d, want 2", m.Stats().DecodeErrors)
		}
		time.Sleep(time.Millisecond)
	}
	traceMu.Lock()
	defer traceMu.Unlock()
	var pref, postf bool
	for _, ev := range events {
		if ev.Type == EventDecodeError {
			if ev.WorkerID == -1 {
				pref = true
			} else {
				postf = true
			}
			if ev.Detail == "" {
				t.Error("decode-error event carries no detail")
			}
		}
	}
	if !pref || !postf {
		t.Errorf("missing decode-error events: pre-register=%v post-register=%v", pref, postf)
	}
}
