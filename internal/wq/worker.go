package wq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dynalloc/internal/jsonwire"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	// Capacity the worker advertises. Zero means the paper worker.
	Capacity resources.Vector
	// TimeScale converts simulated task seconds into wall-clock sleep:
	// wall = simulated * TimeScale. Zero means 1e-4 (0.1 ms per simulated
	// second), which keeps integration runs fast while preserving ordering.
	TimeScale float64
	// Model is the consumption profile the virtual monitor enforces.
	Model sim.ConsumptionModel
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Capacity.IsZero() {
		c.Capacity = resources.PaperWorker()
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1e-4
	}
	return c
}

// RunWorker connects to the manager at addr, registers, and executes tasks
// until the manager shuts it down, the connection drops, or ctx is
// cancelled. Tasks run concurrently; the manager is responsible for not
// over-committing the advertised capacity (as in Work Queue).
func RunWorker(ctx context.Context, addr string, cfg WorkerConfig) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("wq: worker dial: %w", err)
	}
	return runWorkerConn(ctx, conn, cfg)
}

// workerConn is one worker-side connection: its reused frame writer and the
// pool of executor goroutines running its tasks. Executors are spawned on
// demand (when a task arrives and none is idle) and reused for the life of
// the connection, so steady-state task spawning costs a channel handoff
// rather than a goroutine launch.
type workerConn struct {
	ctx    context.Context
	cfg    WorkerConfig
	conn   net.Conn
	out    *frameWriter
	taskCh chan Message
	wg     sync.WaitGroup
}

// runWorkerConn speaks the worker side of the protocol over an established
// connection. It takes ownership of conn and closes it on return.
func runWorkerConn(ctx context.Context, conn net.Conn, cfg WorkerConfig) error {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	wc := &workerConn{
		ctx: ctx, cfg: cfg.withDefaults(), conn: conn,
		out: newFrameWriter(conn), taskCh: make(chan Message),
	}
	if err := wc.out.send(&Message{Type: MsgRegister, Capacity: wc.cfg.Capacity}); err != nil {
		return fmt.Errorf("wq: worker register: %w", err)
	}

	// On return: stop the executors, then wait for in-flight tasks to report
	// (the connection stays open until the outermost defer).
	defer wc.wg.Wait()
	defer close(wc.taskCh)
	mr := newMsgReader(conn)
	var m Message
	for {
		if err := mr.next(&m); err != nil {
			if ctx.Err() != nil || err == io.EOF {
				// Cancelled, or the manager hung up cleanly.
				return nil
			}
			var derr *jsonwire.DecodeError
			if errors.As(err, &derr) {
				return fmt.Errorf("wq: worker decoding frame: %w", err)
			}
			return fmt.Errorf("wq: worker connection: %w", err)
		}
		switch m.Type {
		case MsgTask:
			// Hand the task to an idle executor; grow the pool only when all
			// are busy. The channel is unbuffered so a task is never parked
			// behind a long-running one while another executor sits idle.
			select {
			case wc.taskCh <- m:
			default:
				wc.wg.Add(1)
				go wc.executor()
				wc.taskCh <- m
			}
		case MsgPing:
			// Liveness probe: answer immediately so the manager's sweeper
			// keeps counting this worker as alive even while long tasks run.
			if err := wc.out.send(&Message{Type: MsgPong}); err != nil && ctx.Err() == nil {
				return fmt.Errorf("wq: worker pong: %w", err)
			}
		case MsgShutdown:
			return nil
		default:
			return fmt.Errorf("wq: worker received unexpected frame %q", m.Type)
		}
	}
}

// executor runs task attempts from the connection's channel until it closes.
func (wc *workerConn) executor() {
	defer wc.wg.Done()
	for task := range wc.taskCh {
		res := executeTask(wc.ctx, wc.cfg, task)
		if err := wc.out.send(&res); err != nil && wc.ctx.Err() == nil {
			// The connection is gone; the manager will requeue.
			wc.conn.Close()
		}
	}
}

// executeTask virtually executes one task attempt: the resource monitor
// decides when (and whether) the attempt is killed, and the worker sleeps
// the scaled duration to model the elapsed run.
func executeTask(ctx context.Context, cfg WorkerConfig, m Message) Message {
	duration, exceeded := sim.EvaluateAttempt(cfg.Model, m.Peak, m.Runtime, m.Alloc)
	wall := time.Duration(duration * cfg.TimeScale * float64(time.Second))
	if wall > 0 {
		select {
		case <-time.After(wall):
		case <-ctx.Done():
		}
	}
	out := Message{
		Type:     MsgResult,
		TaskID:   m.TaskID,
		Category: m.Category,
		Peak:     m.Peak,
		Runtime:  m.Runtime,
		Alloc:    m.Alloc,
		Duration: duration,
		Status:   StatusSuccess,
	}
	if len(exceeded) > 0 {
		out.Status = StatusExhausted
		for _, k := range exceeded {
			out.Exceeded = append(out.Exceeded, k.String())
		}
	}
	return out
}
