package wq

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	// Capacity the worker advertises. Zero means the paper worker.
	Capacity resources.Vector
	// TimeScale converts simulated task seconds into wall-clock sleep:
	// wall = simulated * TimeScale. Zero means 1e-4 (0.1 ms per simulated
	// second), which keeps integration runs fast while preserving ordering.
	TimeScale float64
	// Model is the consumption profile the virtual monitor enforces.
	Model sim.ConsumptionModel
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Capacity.IsZero() {
		c.Capacity = resources.PaperWorker()
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1e-4
	}
	return c
}

// RunWorker connects to the manager at addr, registers, and executes tasks
// until the manager shuts it down, the connection drops, or ctx is
// cancelled. Tasks run concurrently; the manager is responsible for not
// over-committing the advertised capacity (as in Work Queue).
func RunWorker(ctx context.Context, addr string, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("wq: worker dial: %w", err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	enc := json.NewEncoder(conn)
	var sendMu sync.Mutex
	send := func(m Message) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return enc.Encode(m)
	}
	if err := send(Message{Type: MsgRegister, Capacity: cfg.Capacity}); err != nil {
		return fmt.Errorf("wq: worker register: %w", err)
	}

	var wg sync.WaitGroup
	defer wg.Wait()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var m Message
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return fmt.Errorf("wq: worker decoding frame: %w", err)
		}
		switch m.Type {
		case MsgTask:
			task := m
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := executeTask(ctx, cfg, task)
				if err := send(res); err != nil && ctx.Err() == nil {
					// The connection is gone; the manager will requeue.
					conn.Close()
				}
			}()
		case MsgPing:
			// Liveness probe: answer immediately so the manager's sweeper
			// keeps counting this worker as alive even while long tasks run.
			if err := send(Message{Type: MsgPong}); err != nil && ctx.Err() == nil {
				return fmt.Errorf("wq: worker pong: %w", err)
			}
		case MsgShutdown:
			return nil
		default:
			return fmt.Errorf("wq: worker received unexpected frame %q", m.Type)
		}
	}
	if ctx.Err() != nil {
		return nil
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("wq: worker connection: %w", err)
	}
	return nil
}

// executeTask virtually executes one task attempt: the resource monitor
// decides when (and whether) the attempt is killed, and the worker sleeps
// the scaled duration to model the elapsed run.
func executeTask(ctx context.Context, cfg WorkerConfig, m Message) Message {
	duration, exceeded := sim.EvaluateAttempt(cfg.Model, m.Peak, m.Runtime, m.Alloc)
	wall := time.Duration(duration * cfg.TimeScale * float64(time.Second))
	if wall > 0 {
		select {
		case <-time.After(wall):
		case <-ctx.Done():
		}
	}
	out := Message{
		Type:     MsgResult,
		TaskID:   m.TaskID,
		Category: m.Category,
		Peak:     m.Peak,
		Runtime:  m.Runtime,
		Alloc:    m.Alloc,
		Duration: duration,
		Status:   StatusSuccess,
	}
	if len(exceeded) > 0 {
		out.Status = StatusExhausted
		for _, k := range exceeded {
			out.Exceeded = append(out.Exceeded, k.String())
		}
	}
	return out
}
