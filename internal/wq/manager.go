package wq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/jsonwire"
	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// ErrManagerClosed reports that the manager was closed while a workflow (or
// submission) still had unfinished tasks. It is distinguishable from a
// context cancellation so callers can tell "my deadline passed" from "the
// engine went away under me".
var ErrManagerClosed = errors.New("wq: manager closed")

// Manager is the live task scheduler: it accepts worker connections,
// requests an allocation for every ready task from the policy, places tasks
// on workers with free capacity, escalates failed allocations, and feeds
// completed tasks' resource records back to the policy.
//
// Robustness model: worker loss is detected by a heartbeat sweeper (see
// WithHeartbeat) rather than per-dispatch watchdog timers; every eviction or
// exhaustion counts against an optional per-task retry budget (see
// WithRetryLimit); and Close drains in-flight work before waking blocked
// RunWorkflow callers with ErrManagerClosed.
type Manager struct {
	policy allocator.Policy
	// start anchors the manager's trace clock: task submit/done times are
	// recorded as wall-clock seconds since it, the live analogue of the
	// simulators' virtual clock.
	start time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	ln      net.Listener
	workers map[int]*managedWorker
	tasks   map[int]*taskState
	queue   []int // task IDs awaiting placement; retries at the front
	nextWID int
	nextTID int // highest task ID ever registered, on any path
	closed  bool

	// aliveHead/aliveTail chain connected workers in ascending-ID (= join)
	// order, so dispatch scans only live workers instead of every ID ever
	// issued — the scan set shrinks with churn instead of growing with it.
	aliveHead, aliveTail *managedWorker

	stats     Stats
	perWorker map[int]*WorkerStats

	// pendingSends stages outbound task frames produced by dispatchLocked
	// (guarded by mu, like flushBusy and sendSpare). Encoding and I/O happen
	// after mu is released: flushPending swaps the staged batch out under mu,
	// then deliver encodes and writes it with only per-worker writer locks
	// held, flushing each touched worker once per batch instead of once per
	// frame. At most one delivery runs at a time (flushBusy), so the two
	// staging slices ping-pong without copying and concurrent stagers never
	// block on I/O — the active flusher re-checks for frames staged while it
	// was writing.
	flushBusy    bool
	pendingSends []pendingSend
	sendSpare    []pendingSend
	flushBatches atomic.Int64
	framesSent   atomic.Int64

	// intake stages completed results decoded by worker reader goroutines
	// (guarded by intakeMu, deliberately separate from mu): readers never
	// contend on the manager lock just to hand a result over, and whichever
	// goroutine finds the intake idle drains the whole backlog in batches —
	// one flushPending per batch — while later readers stage and move on.
	intakeMu    sync.Mutex
	intake      []stagedResult
	intakeSpare []stagedResult
	intakeBusy  bool

	// options
	hbInterval   time.Duration
	hbTimeout    time.Duration
	retryLimit   int
	drainTimeout time.Duration
	tracer       Tracer

	sweepDone chan struct{}
	sweepWG   sync.WaitGroup
}

type managedWorker struct {
	id       int
	conn     net.Conn
	out      *frameWriter
	capacity resources.Vector
	used     resources.Vector
	running  map[int]resources.Vector // task ID -> allocation held
	alive    bool
	// lastSeen is the UnixNano of the last frame from this worker. Atomic so
	// the reader goroutine refreshes it per frame without touching any lock.
	lastSeen atomic.Int64

	// prev/next link the alive-worker chain in ascending-ID order; nil for a
	// worker that has been evicted (or never joined). Guarded by Manager.mu.
	prev, next *managedWorker
}

func (w *managedWorker) send(m Message) error {
	return w.out.send(&m)
}

// pendingSend is one outbound frame staged by dispatchLocked for delivery
// outside the manager lock.
type pendingSend struct {
	w   *managedWorker
	msg Message
}

// stagedResult is one completed-task frame staged by a worker reader
// goroutine for the intake drainer.
type stagedResult struct {
	w   *managedWorker
	res Message
}

type taskState struct {
	task     workflow.Task
	alloc    resources.Vector
	hasAlloc bool
	outcome  metrics.TaskOutcome
	done     bool
	failed   bool                     // done because the retry budget ran out
	notify   chan metrics.TaskOutcome // non-nil for Submit-ted tasks
	// ephemeral marks a Submit-ted task: its outcome leaves through notify,
	// so its state is deleted from m.tasks at the terminal transition and the
	// live set stays bounded by in-flight work. RunWorkflow tasks stay until
	// their outcomes are collected.
	ephemeral bool
	// attemptsBuf inlines the first attempt record so the common
	// one-attempt-and-done task never heap-allocates its attempts slice.
	attemptsBuf [1]metrics.Attempt

	// owner is the ID of the worker currently running the task, or -1 when
	// the task is queued, finished, or was never dispatched. A result frame
	// is honored only when it comes from the owning worker: after an
	// eviction requeues a task, a late result from the evicted worker must
	// not append a phantom attempt or requeue a task that is already
	// running elsewhere (which would double-dispatch it).
	owner int
}

// Option configures a Manager.
type Option func(*Manager)

// WithHeartbeat enables the liveness sweeper: every interval the manager
// pings each worker, and a worker from which no frame (pong or result) has
// arrived within timeout is declared lost — its connection is closed and its
// in-flight tasks requeue through the eviction path. A non-positive timeout
// defaults to 4×interval. Heartbeats are off when interval is zero.
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(m *Manager) {
		m.hbInterval = interval
		m.hbTimeout = timeout
	}
}

// WithTaskTimeout is the legacy knob from the per-dispatch watchdog era; it
// now configures the heartbeat sweeper: the manager pings every worker each
// d/4, any frame from the worker (pong or result) refreshes its last-seen
// time, and a worker whose last frame is older than d at a sweep tick is
// declared lost — so detection lands between d and d+d/4 after the last
// frame, not per task. Unlike the old watchdog, a healthy worker running a
// task longer than d is never reaped — only silence kills, and its
// in-flight tasks requeue through the eviction path.
func WithTaskTimeout(d time.Duration) Option {
	return func(m *Manager) {
		m.hbInterval = d / 4
		m.hbTimeout = d
	}
}

// WithRetryLimit bounds per-task setbacks: a task evicted or exhausted more
// than n times is abandoned with a recorded metrics.Failed attempt instead
// of looping forever on a doomed allocation or a flapping pool. Zero (the
// default) retries without bound, matching the simulator.
func WithRetryLimit(n int) Option {
	return func(m *Manager) { m.retryLimit = n }
}

// WithDrainTimeout bounds how long Close waits for in-flight results before
// giving up and waking blocked callers. The default is 5s.
func WithDrainTimeout(d time.Duration) Option {
	return func(m *Manager) { m.drainTimeout = d }
}

// WithTracer streams lifecycle events (dispatch, result, eviction, requeue,
// heartbeat timeout, drain) to t. See the Tracer contract.
func WithTracer(t Tracer) Option {
	return func(m *Manager) { m.tracer = t }
}

// NewManager creates a manager around an allocation policy.
func NewManager(policy allocator.Policy, opts ...Option) *Manager {
	m := &Manager{
		policy:       policy,
		start:        time.Now(),
		workers:      make(map[int]*managedWorker),
		tasks:        make(map[int]*taskState),
		perWorker:    make(map[int]*WorkerStats),
		drainTimeout: 5 * time.Second,
		sweepDone:    make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	for _, opt := range opts {
		opt(m)
	}
	if m.hbInterval > 0 && m.hbTimeout <= 0 {
		m.hbTimeout = 4 * m.hbInterval
	}
	return m
}

// Listen starts accepting workers on addr (e.g. "127.0.0.1:0") and returns
// the bound address. When heartbeats are configured the liveness sweeper
// starts alongside the accept loop.
func (m *Manager) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wq: manager listen: %w", err)
	}
	m.mu.Lock()
	m.ln = ln
	m.mu.Unlock()
	go m.acceptLoop(ln)
	if m.hbInterval > 0 {
		m.sweepWG.Add(1)
		go m.sweepLoop()
	}
	return ln.Addr().String(), nil
}

func (m *Manager) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.serveWorker(conn)
	}
}

func (m *Manager) serveWorker(conn net.Conn) {
	defer conn.Close()
	mr := newMsgReader(conn)
	var reg Message
	if err := mr.next(&reg); err != nil || reg.Type != MsgRegister {
		m.noteDecodeError(-1, err)
		return
	}
	capacity := reg.Capacity
	if capacity.IsZero() {
		capacity = resources.PaperWorker()
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	w := m.addWorkerLocked(conn, conn, capacity)
	m.dispatchLocked()
	m.mu.Unlock()
	m.flushPending()

	var res Message
	for {
		if err := mr.next(&res); err != nil {
			m.noteDecodeError(w.id, err)
			break
		}
		w.lastSeen.Store(time.Now().UnixNano())
		switch res.Type {
		case MsgResult:
			m.enqueueResult(w, res)
		case MsgPong:
			// lastSeen is already refreshed; nothing else to do.
		}
	}
	m.evict(w)
}

// noteDecodeError records a malformed frame from a worker connection in the
// stats and the trace before the connection is dropped; transport errors
// (including clean EOFs) pass through silently.
func (m *Manager) noteDecodeError(workerID int, err error) {
	var derr *jsonwire.DecodeError
	if !errors.As(err, &derr) {
		return
	}
	m.mu.Lock()
	m.stats.DecodeErrors++
	m.traceLocked(Event{Type: EventDecodeError, TaskID: -1, WorkerID: workerID, Detail: derr.Error()})
	m.mu.Unlock()
}

// addWorkerLocked registers a connected worker under the next worker ID and
// appends it to the alive chain (IDs are monotonic, so appending keeps the
// chain in ascending-ID order). Callers hold m.mu.
func (m *Manager) addWorkerLocked(conn net.Conn, out io.Writer, capacity resources.Vector) *managedWorker {
	w := &managedWorker{
		id:       m.nextWID,
		conn:     conn,
		out:      newFrameWriter(out),
		capacity: capacity,
		running:  make(map[int]resources.Vector),
		alive:    true,
	}
	w.lastSeen.Store(time.Now().UnixNano())
	m.nextWID++
	m.workers[w.id] = w
	if m.aliveTail == nil {
		m.aliveHead, m.aliveTail = w, w
	} else {
		m.aliveTail.next, w.prev = w, m.aliveTail
		m.aliveTail = w
	}
	m.perWorker[w.id] = &WorkerStats{ID: w.id, Connected: true}
	if len(m.workers) > m.stats.PeakWorkers {
		m.stats.PeakWorkers = len(m.workers)
	}
	m.traceLocked(Event{Type: EventWorkerJoin, TaskID: -1, WorkerID: w.id})
	return w
}

// sweepLoop is the manager-side half of the heartbeat protocol: each tick it
// declares silent workers lost and pings the rest. It replaces the old
// per-dispatch time.AfterFunc watchdogs, which leaked a timer per dispatch
// and could kill a healthy worker when a result raced the reap.
func (m *Manager) sweepLoop() {
	defer m.sweepWG.Done()
	ticker := time.NewTicker(m.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.sweepDone:
			return
		case <-ticker.C:
		}
		m.sweep(time.Now())
	}
}

func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	var lost, live []*managedWorker
	for _, w := range m.workers {
		if now.UnixNano()-w.lastSeen.Load() > int64(m.hbTimeout) {
			lost = append(lost, w)
			m.stats.HeartbeatTimeouts++
			m.traceLocked(Event{Type: EventHeartbeatTimeout, TaskID: -1, WorkerID: w.id})
		} else {
			live = append(live, w)
		}
	}
	m.mu.Unlock()
	for _, w := range lost {
		// Closing the connection funnels the worker through the normal
		// disconnect path: serveWorker's decode fails and evict requeues
		// its in-flight tasks.
		w.conn.Close()
	}
	for _, w := range live {
		go func(w *managedWorker) {
			if err := w.send(Message{Type: MsgPing}); err != nil {
				w.conn.Close()
			}
		}(w)
	}
}

// evict handles a worker disappearing: its in-flight tasks are requeued with
// their allocations intact (an eviction says nothing about allocation
// adequacy) and recorded as eviction-lost attempts. Requeue order is
// ascending task ID so multi-task evictions replay deterministically.
func (m *Manager) evict(w *managedWorker) {
	m.mu.Lock()
	if !w.alive {
		m.mu.Unlock()
		return
	}
	w.alive = false
	delete(m.workers, w.id)
	// Unlink from the alive chain; a worker staged by a test without joining
	// has nil links and a head that isn't it, so this is a no-op for it.
	if w.prev != nil {
		w.prev.next = w.next
	} else if m.aliveHead == w {
		m.aliveHead = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else if m.aliveTail == w {
		m.aliveTail = w.prev
	}
	w.prev, w.next = nil, nil
	ws := m.perWorker[w.id]
	if ws != nil {
		ws.Connected = false
	}
	if !m.closed {
		m.stats.WorkersLost++
		m.traceLocked(Event{Type: EventWorkerLost, TaskID: -1, WorkerID: w.id,
			Detail: fmt.Sprintf("in_flight=%d", len(w.running))})
	}
	ids := make([]int, 0, len(w.running))
	for id := range w.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var requeue []int
	for _, id := range ids {
		st, ok := m.tasks[id]
		if !ok {
			continue
		}
		st.owner = -1 // any later result from w for this task is stale
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:  w.running[id],
			Status: metrics.Evicted,
		})
		m.stats.Evictions++
		if ws != nil {
			ws.Evictions++
		}
		m.traceLocked(Event{Type: EventEviction, TaskID: id, WorkerID: w.id})
		if m.failIfOverLimitLocked(st) {
			continue
		}
		requeue = append(requeue, id)
		m.stats.Requeues++
		m.traceLocked(Event{Type: EventRequeue, TaskID: id, WorkerID: -1})
	}
	m.queue = append(requeue, m.queue...)
	m.notePeakQueueLocked()
	w.running = make(map[int]resources.Vector)
	w.used = resources.Vector{}
	m.dispatchLocked()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.flushPending()
}

// failIfOverLimitLocked enforces the retry budget: once a task has more
// setbacks (evicted or exhausted attempts) than the limit allows, it is
// marked done with a terminal metrics.Failed attempt and its submitter (if
// any) is notified. Returns true when the task was abandoned.
func (m *Manager) failIfOverLimitLocked(st *taskState) bool {
	if m.retryLimit <= 0 || st.done {
		return false
	}
	setbacks := 0
	for _, a := range st.outcome.Attempts {
		if a.Status == metrics.Evicted || a.Status == metrics.Exhausted {
			setbacks++
		}
	}
	if setbacks <= m.retryLimit {
		return false
	}
	st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
		Alloc:  st.alloc,
		Status: metrics.Failed,
	})
	st.done = true
	st.failed = true
	st.outcome.DoneTime = m.sinceStart()
	m.stats.Failures++
	m.traceLocked(Event{Type: EventTaskFailed, TaskID: st.task.ID, WorkerID: -1})
	if st.notify != nil {
		st.notify <- st.outcome // buffered; at most one terminal send per task
		st.notify = nil
	}
	if st.ephemeral {
		// The outcome is delivered; drop the state so the task map stays
		// bounded by live work. A late stale result for this ID takes the
		// unknown-task path, exactly as it would for a done-but-retained one.
		delete(m.tasks, st.task.ID)
	}
	return true
}

// enqueueResult hands a completed-task frame from a worker reader goroutine
// to the intake drainer: the result is staged under intakeMu (never the
// manager lock), and whichever goroutine finds the intake idle becomes the
// drainer for the whole backlog. Hot-path readers therefore stop contending
// on m.mu for result ingestion — the old design's worst contention point,
// where every reader serialized against dispatch.
func (m *Manager) enqueueResult(w *managedWorker, res Message) {
	if res.Exceeded != nil {
		// The decoded slice aliases the reader's scratch and dies at the next
		// frame; results outlive it, so copy (exhaustions are the cold path).
		res.Exceeded = append([]string(nil), res.Exceeded...)
	}
	m.intakeMu.Lock()
	m.intake = append(m.intake, stagedResult{w: w, res: res})
	if m.intakeBusy {
		m.intakeMu.Unlock()
		return
	}
	m.intakeBusy = true
	m.intakeMu.Unlock()
	m.drainIntake()
}

// drainIntake processes staged results in batches until the intake is empty,
// delivering the dispatches each batch produced with one coalesced flush.
// Exactly one drainer runs at a time (intakeBusy), so the two staging slices
// can ping-pong without copying.
func (m *Manager) drainIntake() {
	for {
		m.intakeMu.Lock()
		if len(m.intake) == 0 {
			m.intakeBusy = false
			m.intakeMu.Unlock()
			return
		}
		batch := m.intake
		m.intake = m.intakeSpare[:0]
		m.intakeSpare = batch
		m.intakeMu.Unlock()
		for i := range batch {
			m.processResult(batch[i].w, batch[i].res)
		}
		m.flushPending()
	}
}

// handleResult ingests one result synchronously: process it, then deliver any
// dispatches it unlocked. The live path goes through enqueueResult instead so
// concurrent results batch; this entry point keeps single-result semantics
// for direct callers (tests pinning the stale-result and parity behavior).
func (m *Manager) handleResult(w *managedWorker, res Message) {
	m.processResult(w, res)
	m.flushPending()
}

// processResult applies one result frame to the engine state: release the
// worker's capacity, honor the frame only if the worker still owns the task,
// record the attempt, escalate or complete, and stage follow-on dispatches
// (delivered later by the caller's flushPending).
func (m *Manager) processResult(w *managedWorker, res Message) {
	m.mu.Lock()
	alloc, wasRunning := w.running[res.TaskID]
	if wasRunning {
		delete(w.running, res.TaskID)
		w.used = w.used.Sub(alloc.With(resources.Time, 0))
	}
	st, ok := m.tasks[res.TaskID]
	if !ok || st.done {
		// Unknown or already-terminal task (e.g. a duplicate result after
		// an eviction raced a slow worker): the capacity release above is
		// all that matters.
		m.dispatchLocked()
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	if st.owner != w.id {
		// Stale result: the task is live but this worker no longer owns it —
		// it was evicted and the task requeued (and possibly re-dispatched
		// elsewhere). Honoring the frame would append a phantom attempt,
		// escalate through policy.Retry, and requeue a task that may already
		// be running on another worker — a double dispatch. Drop it.
		m.stats.StaleResults++
		m.traceLocked(Event{Type: EventStaleResult, TaskID: res.TaskID, WorkerID: w.id, Status: res.Status})
		m.dispatchLocked()
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	st.owner = -1
	ws := m.perWorker[w.id]
	m.traceLocked(Event{Type: EventResult, TaskID: res.TaskID, WorkerID: w.id, Status: res.Status})

	switch res.Status {
	case StatusSuccess:
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: res.Duration,
			Status:   metrics.Success,
		})
		st.done = true
		st.outcome.DoneTime = m.sinceStart()
		m.stats.Successes++
		if ws != nil {
			ws.Successes++
			ws.BusySeconds += res.Duration
		}
		notify := st.notify
		st.notify = nil
		outcome := st.outcome
		if st.ephemeral {
			// Terminal and delivered below: drop the state so the task map
			// stays bounded by live work instead of growing per submission.
			delete(m.tasks, res.TaskID)
		}
		m.mu.Unlock()
		// Observe outside the lock: the policy has its own lock and the
		// bucketing recomputation can be slow.
		m.policy.Observe(st.task.Category, st.task.ID, st.task.Consumption, st.task.Runtime())
		if notify != nil {
			notify <- outcome
		}
		m.mu.Lock()
	case StatusExhausted:
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: res.Duration,
			Status:   metrics.Exhausted,
		})
		m.stats.Exhaustions++
		if ws != nil {
			ws.Exhaustions++
			ws.BusySeconds += res.Duration
		}
		if !m.failIfOverLimitLocked(st) {
			var exceeded []resources.Kind
			for _, name := range res.Exceeded {
				if k, err := resources.ParseKind(name); err == nil {
					exceeded = append(exceeded, k)
				}
			}
			prev := st.alloc
			m.mu.Unlock()
			next := m.policy.Retry(st.task.Category, st.task.ID, prev, exceeded)
			m.mu.Lock()
			if !st.done {
				st.alloc = next
				m.queue = append([]int{st.task.ID}, m.queue...)
				m.notePeakQueueLocked()
				m.stats.Requeues++
				m.traceLocked(Event{Type: EventRequeue, TaskID: st.task.ID, WorkerID: -1})
			}
		}
	}
	m.dispatchLocked()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// dispatchLocked places queued tasks onto workers with free capacity. A
// closed (draining) manager dispatches nothing. Callers hold m.mu.
func (m *Manager) dispatchLocked() {
	if m.closed {
		return
	}
	var remaining []int
	for _, id := range m.queue {
		st := m.tasks[id]
		if st == nil || st.done {
			continue
		}
		// Allocation happens at dispatch time: first attempts get a fresh
		// prediction on every placement try so queued tasks benefit from
		// records that arrived while they waited; retries keep their
		// escalated allocation. The policy serializes itself; holding m.mu
		// here is acceptable because Allocate is cheap relative to the
		// network round trips it gates.
		alloc := st.alloc
		if !st.hasAlloc {
			alloc = m.policy.Allocate(st.task.Category, st.task.ID)
		}
		placed := false
		for w := m.aliveHead; w != nil; w = w.next {
			if !fits(w, alloc) {
				continue
			}
			st.alloc = alloc
			st.hasAlloc = true
			st.owner = w.id
			w.used = w.used.Add(st.alloc.With(resources.Time, 0))
			w.running[id] = st.alloc
			m.stats.Dispatches++
			if ws := m.perWorker[w.id]; ws != nil {
				ws.Dispatched++
			}
			m.traceLocked(Event{Type: EventDispatch, TaskID: id, WorkerID: w.id})
			// Stage the frame; encoding and I/O happen in flushPending after
			// the caller releases m.mu, so the lock guards only state
			// transitions. Every path that can stage (Submit, results,
			// evictions, registration, RunWorkflow) flushes on the way out.
			m.pendingSends = append(m.pendingSends, pendingSend{w: w, msg: Message{
				Type:     MsgTask,
				TaskID:   st.task.ID,
				Category: st.task.Category,
				Alloc:    st.alloc,
				Peak:     st.task.Consumption,
				Runtime:  st.task.Runtime(),
			}})
			placed = true
			break
		}
		if !placed {
			remaining = append(remaining, id)
		}
	}
	m.queue = remaining
}

// flushPending delivers every frame dispatchLocked has staged since the last
// flush. Callers must NOT hold m.mu. If a delivery is already in flight the
// call returns immediately — the active flusher re-checks after writing, so
// frames staged during its delivery still go out (and batch up with their
// neighbors).
func (m *Manager) flushPending() {
	m.mu.Lock()
	for {
		if len(m.pendingSends) == 0 || m.flushBusy {
			m.mu.Unlock()
			return
		}
		m.flushBusy = true
		batch := m.pendingSends
		m.pendingSends = m.sendSpare[:0]
		m.sendSpare = batch
		m.mu.Unlock()
		m.deliver(batch)
		m.mu.Lock()
		m.flushBusy = false
	}
}

// deliver encodes and writes one staged batch: frames are queued per worker
// under only that worker's writer lock, then each touched worker is flushed
// once — so a batch of k frames to one worker costs one syscall-equivalent
// write, not k. A write failure closes the connection, funneling the worker
// through the normal eviction path.
func (m *Manager) deliver(batch []pendingSend) {
	var touchedArr [8]*managedWorker
	touched := touchedArr[:0]
	for i := range batch {
		s := &batch[i]
		if s.w.out == nil {
			continue
		}
		if err := s.w.out.queue(&s.msg); err != nil {
			if s.w.conn != nil {
				s.w.conn.Close()
			}
			continue
		}
		seen := false
		for _, t := range touched {
			if t == s.w {
				seen = true
				break
			}
		}
		if !seen {
			touched = append(touched, s.w)
		}
	}
	m.framesSent.Add(int64(len(batch)))
	m.flushBatches.Add(int64(len(touched)))
	for _, w := range touched {
		if err := w.out.flush(); err != nil && w.conn != nil {
			w.conn.Close()
		}
	}
}

func fits(w *managedWorker, alloc resources.Vector) bool {
	for _, k := range resources.AllocatedKinds() {
		if w.used.Get(k)+alloc.Get(k) > w.capacity.Get(k)*(1+1e-9) {
			return false
		}
	}
	return true
}

// sortedWorkers snapshots the alive chain in ascending-ID order. Cost is
// O(connected workers); workers that ever connected but left cost nothing,
// which matters under opportunistic churn where the set of IDs ever issued
// dwarfs the live pool.
func (m *Manager) sortedWorkers() []*managedWorker {
	out := make([]*managedWorker, 0, len(m.workers))
	for w := m.aliveHead; w != nil; w = w.next {
		out = append(out, w)
	}
	return out
}

// registerTaskLocked registers one task under a collision-free ID drawn from
// the single monotonic counter and enqueues it. When fresh is true (Submit)
// the caller's ID is always replaced; otherwise (RunWorkflow) the declared
// ID is kept unless it is non-positive or already taken, in which case the
// task is transparently renumbered. The assigned ID is in the returned
// state's task.ID and outcome.TaskID.
func (m *Manager) registerTaskLocked(t workflow.Task, notify chan metrics.TaskOutcome, fresh bool) *taskState {
	id := t.ID
	if fresh || id <= 0 {
		m.nextTID++
		id = m.nextTID
	} else if _, taken := m.tasks[id]; taken {
		m.nextTID++
		id = m.nextTID
	}
	if id > m.nextTID {
		m.nextTID = id
	}
	t.ID = id
	st := &taskState{task: t, owner: -1, outcome: metrics.TaskOutcome{
		TaskID:     id,
		Category:   t.Category,
		Peak:       t.Consumption,
		Runtime:    t.Runtime(),
		SubmitTime: m.sinceStart(),
	}, notify: notify, ephemeral: notify != nil}
	st.outcome.Attempts = st.attemptsBuf[:0]
	m.tasks[id] = st
	m.queue = append(m.queue, id)
	m.notePeakQueueLocked()
	return st
}

func (m *Manager) notePeakQueueLocked() {
	if len(m.queue) > m.stats.PeakQueue {
		m.stats.PeakQueue = len(m.queue)
	}
}

func (m *Manager) inFlightLocked() int {
	n := 0
	for _, w := range m.workers {
		n += len(w.running)
	}
	return n
}

// sinceStart returns seconds of wall time since the manager was created —
// the live engine's trace clock.
func (m *Manager) sinceStart() float64 { return time.Since(m.start).Seconds() }

func (m *Manager) traceLocked(ev Event) {
	if m.tracer == nil {
		return
	}
	ev.Time = time.Now()
	m.tracer.Trace(ev)
}

// RunWorkflow executes a workflow phase by phase (respecting its barriers)
// and blocks until every task reaches a terminal state (success, or
// permanent failure under WithRetryLimit), ctx is cancelled, or the manager
// is closed (ErrManagerClosed). Declared task IDs that collide with
// already-registered tasks are transparently renumbered; the result's
// outcomes follow the workflow's task order either way.
func (m *Manager) RunWorkflow(ctx context.Context, w *workflow.Workflow) (*sim.Result, error) {
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	start := time.Now()
	ids := make([]int, len(w.Tasks)) // workflow position -> engine task ID
	phases := append(append([]int{}, w.Barriers...), len(w.Tasks))
	from := 0
	for _, until := range phases {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrManagerClosed
		}
		for i, t := range w.Tasks[from:until] {
			st := m.registerTaskLocked(t, nil, false)
			ids[from+i] = st.task.ID
		}
		m.dispatchLocked()
		m.mu.Unlock()
		m.flushPending()
		m.mu.Lock()
		for !m.tasksDoneLocked(ids[:until]) && ctx.Err() == nil && !m.closed {
			m.cond.Wait()
		}
		done := m.tasksDoneLocked(ids[:until])
		closed := m.closed
		m.mu.Unlock()
		if !done {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("wq: workflow cancelled: %w", ctx.Err())
			}
			if closed {
				return nil, fmt.Errorf("wq: workflow aborted: %w", ErrManagerClosed)
			}
		}
		from = until
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	res := &sim.Result{
		Makespan:    time.Since(start).Seconds(),
		PeakWorkers: m.stats.PeakWorkers,
		Evictions:   m.stats.WorkersLost,
	}
	for _, id := range ids {
		st := m.tasks[id]
		res.Outcomes = append(res.Outcomes, st.outcome)
		res.Acc.Add(st.outcome)
		if st.failed {
			res.Failed++
		}
	}
	return res, nil
}

func (m *Manager) tasksDoneLocked(ids []int) bool {
	for _, id := range ids {
		st, ok := m.tasks[id]
		if !ok || !st.done {
			return false
		}
	}
	return true
}

// Submit enqueues a single dynamically generated task and returns a channel
// that delivers its outcome once it reaches a terminal state. The manager
// assigns the task a fresh submission ID from the same monotonic counter
// every registration path shares (preserving the
// significance-equals-submission-order convention); the caller's ID field is
// ignored. Submitting to a closed manager delivers an immediate
// metrics.Failed outcome.
func (m *Manager) Submit(t workflow.Task) <-chan metrics.TaskOutcome {
	ch := make(chan metrics.TaskOutcome, 1)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		ch <- metrics.TaskOutcome{
			Category: t.Category,
			Peak:     t.Consumption,
			Runtime:  t.Runtime(),
			Attempts: []metrics.Attempt{{Status: metrics.Failed}},
		}
		return ch
	}
	m.registerTaskLocked(t, ch, true)
	m.dispatchLocked()
	m.mu.Unlock()
	m.flushPending()
	return ch
}

// Workers returns the number of connected workers.
func (m *Manager) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// Stats returns a consistent snapshot of the lifetime counters, including
// per-worker utilization for every worker that ever connected.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.ConnectedWorkers = len(m.workers)
	s.QueueDepth = len(m.queue)
	s.InFlight = m.inFlightLocked()
	s.FlushBatches = m.flushBatches.Load()
	s.FramesSent = m.framesSent.Load()
	ids := make([]int, 0, len(m.perWorker))
	for id := range m.perWorker {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.Workers = make([]WorkerStats, 0, len(ids))
	for _, id := range ids {
		s.Workers = append(s.Workers, *m.perWorker[id])
	}
	return s
}

// Close gracefully drains the manager: it stops dispatching, waits for
// in-flight results up to the drain timeout, asks every worker to exit, and
// finally broadcasts so blocked RunWorkflow callers return ErrManagerClosed.
// Workers close their own connections after processing the shutdown frame,
// so an in-flight result is never cut off mid-write. Close is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ln := m.ln
	m.traceLocked(Event{Type: EventDrainStart, TaskID: -1, WorkerID: -1})
	m.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	close(m.sweepDone)
	m.sweepWG.Wait()

	expired := false
	timer := time.AfterFunc(m.drainTimeout, func() {
		m.mu.Lock()
		expired = true
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	m.mu.Lock()
	for m.inFlightLocked() > 0 && !expired {
		m.cond.Wait()
	}
	m.traceLocked(Event{Type: EventDrainEnd, TaskID: -1, WorkerID: -1,
		Detail: fmt.Sprintf("in_flight=%d", m.inFlightLocked())})
	workers := m.sortedWorkers()
	m.mu.Unlock()
	timer.Stop()

	for _, w := range workers {
		_ = w.send(Message{Type: MsgShutdown})
	}

	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}
