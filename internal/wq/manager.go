package wq

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// Manager is the live task scheduler: it accepts worker connections,
// requests an allocation for every ready task from the policy, places tasks
// on workers with free capacity, escalates failed allocations, and feeds
// completed tasks' resource records back to the policy.
type Manager struct {
	policy allocator.Policy

	mu          sync.Mutex
	cond        *sync.Cond
	ln          net.Listener
	workers     map[int]*managedWorker
	tasks       map[int]*taskState
	queue       []int // task IDs awaiting placement; retries at the front
	nextWID     int
	nextTID     int
	peak        int
	closed      bool
	taskTimeout time.Duration
}

type managedWorker struct {
	id       int
	conn     net.Conn
	enc      *json.Encoder
	sendMu   sync.Mutex
	capacity resources.Vector
	used     resources.Vector
	running  map[int]resources.Vector // task ID -> allocation held
	alive    bool
}

func (w *managedWorker) send(m Message) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	return w.enc.Encode(m)
}

type taskState struct {
	task     workflow.Task
	alloc    resources.Vector
	hasAlloc bool
	outcome  metrics.TaskOutcome
	done     bool
	notify   chan metrics.TaskOutcome // non-nil for Submit-ted tasks
}

// Option configures a Manager.
type Option func(*Manager)

// WithTaskTimeout makes the manager treat a worker as lost when a
// dispatched task delivers no result within d: the connection is closed and
// the worker's in-flight tasks are requeued (the same path as an
// opportunistic eviction). Zero disables the watchdog.
func WithTaskTimeout(d time.Duration) Option {
	return func(m *Manager) { m.taskTimeout = d }
}

// NewManager creates a manager around an allocation policy.
func NewManager(policy allocator.Policy, opts ...Option) *Manager {
	m := &Manager{
		policy:  policy,
		workers: make(map[int]*managedWorker),
		tasks:   make(map[int]*taskState),
	}
	m.cond = sync.NewCond(&m.mu)
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Listen starts accepting workers on addr (e.g. "127.0.0.1:0") and returns
// the bound address.
func (m *Manager) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wq: manager listen: %w", err)
	}
	m.mu.Lock()
	m.ln = ln
	m.mu.Unlock()
	go m.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (m *Manager) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.serveWorker(conn)
	}
}

func (m *Manager) serveWorker(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	var reg Message
	if err := dec.Decode(&reg); err != nil || reg.Type != MsgRegister {
		return
	}
	capacity := reg.Capacity
	if capacity.IsZero() {
		capacity = resources.PaperWorker()
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	w := &managedWorker{
		id:       m.nextWID,
		conn:     conn,
		enc:      json.NewEncoder(conn),
		capacity: capacity,
		running:  make(map[int]resources.Vector),
		alive:    true,
	}
	m.nextWID++
	m.workers[w.id] = w
	if len(m.workers) > m.peak {
		m.peak = len(m.workers)
	}
	m.dispatchLocked()
	m.mu.Unlock()

	for {
		var res Message
		if err := dec.Decode(&res); err != nil {
			break
		}
		if res.Type != MsgResult {
			continue
		}
		m.handleResult(w, res)
	}
	m.evict(w)
}

// evict handles a worker disappearing: its in-flight tasks are requeued with
// their allocations intact (an eviction says nothing about allocation
// adequacy) and recorded as eviction-lost attempts.
func (m *Manager) evict(w *managedWorker) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !w.alive {
		return
	}
	w.alive = false
	delete(m.workers, w.id)
	for id, alloc := range w.running {
		st, ok := m.tasks[id]
		if !ok {
			continue
		}
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:  alloc,
			Status: metrics.Evicted,
		})
		m.queue = append([]int{id}, m.queue...)
	}
	w.running = make(map[int]resources.Vector)
	m.dispatchLocked()
	m.cond.Broadcast()
}

func (m *Manager) handleResult(w *managedWorker, res Message) {
	m.mu.Lock()
	st, ok := m.tasks[res.TaskID]
	if !ok {
		m.mu.Unlock()
		return
	}
	alloc, wasRunning := w.running[res.TaskID]
	if wasRunning {
		delete(w.running, res.TaskID)
		w.used = w.used.Sub(alloc.With(resources.Time, 0))
	}

	switch res.Status {
	case StatusSuccess:
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: res.Duration,
			Status:   metrics.Success,
		})
		st.done = true
		notify := st.notify
		outcome := st.outcome
		m.mu.Unlock()
		// Observe outside the lock: the policy has its own lock and the
		// bucketing recomputation can be slow.
		m.policy.Observe(st.task.Category, st.task.ID, st.task.Consumption, st.task.Runtime())
		if notify != nil {
			notify <- outcome
		}
		m.mu.Lock()
	case StatusExhausted:
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: res.Duration,
			Status:   metrics.Exhausted,
		})
		var exceeded []resources.Kind
		for _, name := range res.Exceeded {
			if k, err := resources.ParseKind(name); err == nil {
				exceeded = append(exceeded, k)
			}
		}
		prev := st.alloc
		m.mu.Unlock()
		next := m.policy.Retry(st.task.Category, st.task.ID, prev, exceeded)
		m.mu.Lock()
		st.alloc = next
		m.queue = append([]int{st.task.ID}, m.queue...)
	}
	m.dispatchLocked()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// dispatchLocked places queued tasks onto workers with free capacity.
// Callers hold m.mu.
func (m *Manager) dispatchLocked() {
	var remaining []int
	for _, id := range m.queue {
		st := m.tasks[id]
		if st == nil || st.done {
			continue
		}
		// Allocation happens at dispatch time: first attempts get a fresh
		// prediction on every placement try so queued tasks benefit from
		// records that arrived while they waited; retries keep their
		// escalated allocation. The policy serializes itself; holding m.mu
		// here is acceptable because Allocate is cheap relative to the
		// network round trips it gates.
		alloc := st.alloc
		if !st.hasAlloc {
			alloc = m.policy.Allocate(st.task.Category, st.task.ID)
		}
		placed := false
		for _, w := range m.sortedWorkers() {
			if !w.alive || !fits(w, alloc) {
				continue
			}
			st.alloc = alloc
			st.hasAlloc = true
			w.used = w.used.Add(st.alloc.With(resources.Time, 0))
			w.running[id] = st.alloc
			if m.taskTimeout > 0 {
				taskID := id
				time.AfterFunc(m.taskTimeout, func() { m.reapStuck(w, taskID) })
			}
			msg := Message{
				Type:     MsgTask,
				TaskID:   st.task.ID,
				Category: st.task.Category,
				Alloc:    st.alloc,
				Peak:     st.task.Consumption,
				Runtime:  st.task.Runtime(),
			}
			go func(w *managedWorker) {
				if err := w.send(msg); err != nil {
					w.conn.Close()
				}
			}(w)
			placed = true
			break
		}
		if !placed {
			remaining = append(remaining, id)
		}
	}
	m.queue = remaining
}

func fits(w *managedWorker, alloc resources.Vector) bool {
	for _, k := range resources.AllocatedKinds() {
		if w.used.Get(k)+alloc.Get(k) > w.capacity.Get(k)*(1+1e-9) {
			return false
		}
	}
	return true
}

func (m *Manager) sortedWorkers() []*managedWorker {
	out := make([]*managedWorker, 0, len(m.workers))
	for id := 0; id < m.nextWID; id++ {
		if w, ok := m.workers[id]; ok {
			out = append(out, w)
		}
	}
	return out
}

// RunWorkflow executes a workflow phase by phase (respecting its barriers)
// and blocks until every task completes or ctx is cancelled.
func (m *Manager) RunWorkflow(ctx context.Context, w *workflow.Workflow) (*sim.Result, error) {
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	start := time.Now()
	phases := append(append([]int{}, w.Barriers...), len(w.Tasks))
	from := 0
	for _, until := range phases {
		m.mu.Lock()
		for _, t := range w.Tasks[from:until] {
			t := t
			m.tasks[t.ID] = &taskState{task: t, outcome: metrics.TaskOutcome{
				TaskID:   t.ID,
				Category: t.Category,
				Peak:     t.Consumption,
				Runtime:  t.Runtime(),
			}}
			m.queue = append(m.queue, t.ID)
		}
		m.dispatchLocked()
		for !m.phaseDoneLocked(w, until) && ctx.Err() == nil {
			m.cond.Wait()
		}
		m.mu.Unlock()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("wq: workflow cancelled: %w", ctx.Err())
		}
		from = until
	}

	res := &sim.Result{Makespan: time.Since(start).Seconds(), PeakWorkers: m.peak}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range w.Tasks {
		st := m.tasks[t.ID]
		res.Outcomes = append(res.Outcomes, st.outcome)
		res.Acc.Add(st.outcome)
	}
	return res, nil
}

func (m *Manager) phaseDoneLocked(w *workflow.Workflow, until int) bool {
	for _, t := range w.Tasks[:until] {
		st, ok := m.tasks[t.ID]
		if !ok || !st.done {
			return false
		}
	}
	return true
}

// reapStuck fires when a dispatched task's watchdog expires: if the task is
// still outstanding on that worker, the worker is declared lost and its
// connection closed, which funnels every in-flight task through the
// eviction/requeue path.
func (m *Manager) reapStuck(w *managedWorker, taskID int) {
	m.mu.Lock()
	_, still := w.running[taskID]
	alive := w.alive
	m.mu.Unlock()
	if still && alive {
		w.conn.Close()
	}
}

// Submit enqueues a single dynamically generated task and returns a channel
// that delivers its outcome once it completes. The manager assigns the task
// a fresh submission ID (preserving the significance-equals-submission-order
// convention); the caller's ID field is ignored. Submit is how an
// application layer generates tasks at runtime, as opposed to RunWorkflow's
// pre-declared task list.
func (m *Manager) Submit(t workflow.Task) <-chan metrics.TaskOutcome {
	ch := make(chan metrics.TaskOutcome, 1)
	m.mu.Lock()
	if m.nextTID == 0 {
		// Continue after any IDs a RunWorkflow call already registered.
		for id := range m.tasks {
			if id > m.nextTID {
				m.nextTID = id
			}
		}
	}
	m.nextTID++
	t.ID = m.nextTID
	m.tasks[t.ID] = &taskState{
		task: t,
		outcome: metrics.TaskOutcome{
			TaskID:   t.ID,
			Category: t.Category,
			Peak:     t.Consumption,
			Runtime:  t.Runtime(),
		},
		notify: ch,
	}
	m.queue = append(m.queue, t.ID)
	m.dispatchLocked()
	m.mu.Unlock()
	return ch
}

// Workers returns the number of connected workers.
func (m *Manager) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// Close shuts down the listener and asks every worker to exit. Workers
// close their own connections after processing the shutdown frame, so an
// in-flight result is never cut off mid-write.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	ln := m.ln
	workers := m.sortedWorkers()
	m.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, w := range workers {
		_ = w.send(Message{Type: MsgShutdown})
	}
}
