package wq

import (
	"testing"

	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// scriptPool is an opportunistic.Model that replays a fixed arrival script,
// letting a test stage an exact eviction scenario.
type scriptPool []opportunistic.Arrival

func (p scriptPool) Schedule(uint64) []opportunistic.Arrival { return p }
func (p scriptPool) Name() string                            { return "script" }

// orderPolicy hands out a fixed allocation and records the order in which
// task completions are observed.
type orderPolicy struct {
	alloc    resources.Vector
	observed []int
}

func (p *orderPolicy) Allocate(string, int) resources.Vector { return p.alloc }
func (p *orderPolicy) Retry(_ string, _ int, _ resources.Vector, _ []resources.Kind) resources.Vector {
	return p.alloc
}
func (p *orderPolicy) Observe(_ string, id int, _ resources.Vector, _ float64) {
	p.observed = append(p.observed, id)
}
func (p *orderPolicy) Name() string { return "order" }

// TestRequeueParitySimVsWQ pins the cross-substrate recovery contract: when
// a worker carrying several tasks is evicted, both the discrete-event
// simulator and the live wq engine requeue the victims at the queue front
// in ascending task-ID order. The two engines share nothing but this
// convention, so each side is driven through its own eviction path and the
// recovered orders are compared.
func TestRequeueParitySimVsWQ(t *testing.T) {
	// --- simulator substrate -------------------------------------------
	// Worker 0 (3 cores) runs tasks 1-3 and is evicted at t=50 while tasks
	// 4-6 wait. Worker 1 arrives at t=60 and never leaves. The three
	// replayed victims share one completion timestamp, and the event
	// engine fires same-time events in scheduling order, so the observed
	// completion order is exactly the post-eviction queue order.
	w := &workflow.Workflow{Name: "parity"}
	for i := 1; i <= 6; i++ {
		w.Tasks = append(w.Tasks, workflow.Task{
			ID:          i,
			Category:    "parity",
			Consumption: resources.New(1, 100, 10, 100),
		})
	}
	pol := &orderPolicy{alloc: resources.New(1, 200, 50, resources.Unlimited)}
	res, err := sim.Run(sim.Config{
		Workflow:    w,
		Policy:      pol,
		Pool:        scriptPool{{At: 0, Lifetime: 50}, {At: 60}},
		WorkerShape: resources.New(3, 1024, 1024, resources.Unlimited),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 1 {
		t.Fatalf("staged scenario produced %d evictions, want 1", res.Evictions)
	}
	for _, id := range []int{1, 2, 3} {
		o := res.Outcomes[id-1]
		if o.EvictedTime() <= 0 {
			t.Fatalf("task %d was not interrupted by the eviction: %+v", id, o.Attempts)
		}
	}
	if len(pol.observed) != 6 {
		t.Fatalf("observed %d completions, want 6", len(pol.observed))
	}
	simOrder := pol.observed[:3]

	// --- live wq substrate ---------------------------------------------
	// Same shape, driven through Manager.evict: a worker holding tasks
	// {1,2,3} (inserted out of order) disappears while nothing else is
	// queued.
	m := NewManager(nil)
	running := map[int]resources.Vector{}
	for _, id := range []int{3, 1, 2} {
		m.tasks[id] = &taskState{
			task:     workflow.Task{ID: id},
			hasAlloc: true,
			outcome:  metrics.TaskOutcome{TaskID: id},
		}
		running[id] = resources.Vector{}
	}
	m.nextTID = 3
	mw := &managedWorker{id: 0, alive: true, running: running}
	m.evict(mw)
	wqOrder := m.queue

	if len(simOrder) != len(wqOrder) {
		t.Fatalf("recovery lengths differ: sim %v vs wq %v", simOrder, wqOrder)
	}
	for i := range simOrder {
		if simOrder[i] != wqOrder[i] {
			t.Fatalf("recovery order diverged: sim %v vs wq %v", simOrder, wqOrder)
		}
		if i > 0 && simOrder[i] < simOrder[i-1] {
			t.Fatalf("recovery order not ascending: %v", simOrder)
		}
	}
	if simOrder[0] != 1 || simOrder[1] != 2 || simOrder[2] != 3 {
		t.Fatalf("recovery order = %v, want [1 2 3]", simOrder)
	}
}
