package wq

import (
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// This file is the loopback transport benchmark harness for the live engine:
// manager and workers talk over in-memory buffered pipes, so the numbers
// measure the engine itself (frame codec, dispatch locking, flush policy)
// rather than kernel TCP. Unlike net.Pipe — whose writes rendezvous with the
// reader and would serialize both sides — loopPipe buffers writes, so flush
// coalescing behaves as it does on a real socket.

// loopBuf is one direction of an in-memory connection: an append buffer with
// blocking reads.
type loopBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	off    int
	closed bool
}

func newLoopBuf() *loopBuf {
	b := &loopBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *loopBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.off == len(b.data) && !b.closed {
		b.cond.Wait()
	}
	if b.off == len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	if b.off == len(b.data) {
		// Whole buffer consumed: recycle the storage instead of growing.
		b.data = b.data[:0]
		b.off = 0
	}
	return n, nil
}

func (b *loopBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.cond.Signal()
	return len(p), nil
}

func (b *loopBuf) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// loopConn is one endpoint of a loopback pipe.
type loopConn struct {
	rd, wr *loopBuf
}

func loopPipe() (a, b net.Conn) {
	x, y := newLoopBuf(), newLoopBuf()
	return &loopConn{rd: x, wr: y}, &loopConn{rd: y, wr: x}
}

func (c *loopConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *loopConn) Write(p []byte) (int, error) { return c.wr.write(p) }

func (c *loopConn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}

type loopAddr struct{}

func (loopAddr) Network() string { return "loop" }
func (loopAddr) String() string  { return "loop" }

func (c *loopConn) LocalAddr() net.Addr              { return loopAddr{} }
func (c *loopConn) RemoteAddr() net.Addr             { return loopAddr{} }
func (c *loopConn) SetDeadline(time.Time) error      { return nil }
func (c *loopConn) SetReadDeadline(time.Time) error  { return nil }
func (c *loopConn) SetWriteDeadline(time.Time) error { return nil }

// benchPolicy is a fixed-allocation policy: the benchmarks measure the wire
// engine, not prediction, so the policy must cost (and allocate) nothing.
type benchPolicy struct{ alloc resources.Vector }

func (p benchPolicy) Allocate(string, int) resources.Vector { return p.alloc }
func (p benchPolicy) Retry(_ string, _ int, prev resources.Vector, _ []resources.Kind) resources.Vector {
	return prev.Scale(2)
}
func (p benchPolicy) Observe(string, int, resources.Vector, float64) {}
func (p benchPolicy) Name() string                                   { return "bench-fixed" }

// benchEngine wires `workers` loopback workers into a fresh manager and
// waits until they are all registered.
func benchEngine(b *testing.B, workers int) (*Manager, context.CancelFunc) {
	b.Helper()
	m := NewManager(benchPolicy{alloc: resources.New(1, 100, 100, 3600)})
	ctx, cancel := context.WithCancel(context.Background())
	capacity := resources.New(64, 1<<20, 1<<20, 3600)
	cfg := WorkerConfig{Capacity: capacity, TimeScale: 1e-12}
	for i := 0; i < workers; i++ {
		mgrSide, wkrSide := loopPipe()
		go m.serveWorker(mgrSide)
		go func() { _ = runWorkerConn(ctx, wkrSide, cfg) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Workers() < workers {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d workers registered", m.Workers(), workers)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return m, cancel
}

var benchTask = workflow.Task{
	Category:    "bench",
	Consumption: resources.New(0.5, 50, 50, 1),
}

// benchWQDispatch measures sustained dispatch/result round trips: `depth`
// driver goroutines keep that many tasks in flight through Submit, every
// task fits its first allocation, and the workers' virtual execution sleeps
// zero wall time — so the per-op cost is one full manager->worker->manager
// protocol round trip including dispatch-time allocation and bookkeeping.
func benchWQDispatch(b *testing.B, workers int) {
	m, cancel := benchEngine(b, workers)
	defer cancel()
	defer m.Close()

	depth := 8 * workers
	var remaining atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	remaining.Store(int64(b.N))
	var wg sync.WaitGroup
	for g := 0; g < depth; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				<-m.Submit(benchTask)
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/sec")
}

// BenchmarkWQDispatch1Workers is the single-worker protocol floor.
func BenchmarkWQDispatch1Workers(b *testing.B) { benchWQDispatch(b, 1) }

// BenchmarkWQDispatch8Workers is the headline live-engine number recorded in
// BENCH_wq.json: 8 concurrent workers, 64 tasks in flight.
func BenchmarkWQDispatch8Workers(b *testing.B) { benchWQDispatch(b, 8) }

// BenchmarkWQDispatch64Workers stresses the dispatch scan and the result
// intake under a wide worker fleet.
func BenchmarkWQDispatch64Workers(b *testing.B) { benchWQDispatch(b, 64) }

// BenchmarkWQChurn8Workers overlays worker churn on the dispatch stream: one
// of the 8 workers is killed (and replaced) every churnEvery completed
// tasks, so the run continuously exercises the eviction/requeue path and the
// alive-chain maintenance alongside steady-state dispatch.
func BenchmarkWQChurn8Workers(b *testing.B) {
	const workers = 8
	const churnEvery = 2048
	m, cancel := benchEngine(b, workers)
	defer cancel()
	defer m.Close()
	ctx, stopSpawns := context.WithCancel(context.Background())
	defer stopSpawns()

	// victims holds one evictable loopback worker at a time; the driver that
	// crosses a churn boundary kills it and spawns a replacement.
	capacity := resources.New(64, 1<<20, 1<<20, 3600)
	cfg := WorkerConfig{Capacity: capacity, TimeScale: 1e-12}
	var victimMu sync.Mutex
	var victim net.Conn
	spawnVictim := func() {
		mgrSide, wkrSide := loopPipe()
		go m.serveWorker(mgrSide)
		go func() { _ = runWorkerConn(ctx, wkrSide, cfg) }()
		victimMu.Lock()
		victim = wkrSide
		victimMu.Unlock()
	}
	spawnVictim()

	depth := 8 * workers
	var completed atomic.Int64
	var remaining atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	remaining.Store(int64(b.N))
	var wg sync.WaitGroup
	for g := 0; g < depth; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				<-m.Submit(benchTask)
				if n := completed.Add(1); n%churnEvery == 0 {
					victimMu.Lock()
					old := victim
					victimMu.Unlock()
					old.Close()
					spawnVictim()
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/sec")
}
