package wq

import (
	"time"

	"dynalloc/internal/runlog"
)

// EventType names one kind of manager lifecycle event.
type EventType string

// Lifecycle event types emitted by the manager.
const (
	// EventWorkerJoin: a worker registered (WorkerID set).
	EventWorkerJoin EventType = "worker-join"
	// EventWorkerLost: a worker's connection ended while the manager was
	// still running (eviction, crash, or heartbeat reap — the per-task
	// EventEviction lines follow). Workers released by Close do not emit it.
	// Together with EventWorkerJoin this is the realized churn schedule a
	// live run executed against, which is how runlog.ScriptedPool
	// reconstructs a replayable pool from a wq trace.
	EventWorkerLost EventType = "worker-lost"
	// EventDispatch: a task was placed on a worker.
	EventDispatch EventType = "dispatch"
	// EventResult: a result frame was accepted (Status carries the wire
	// status, "success" or "exhausted").
	EventResult EventType = "result"
	// EventEviction: a task in flight on a lost worker was recorded as
	// eviction-lost.
	EventEviction EventType = "eviction"
	// EventRequeue: a task went back to the queue (after an eviction or an
	// exhausted attempt).
	EventRequeue EventType = "requeue"
	// EventHeartbeatTimeout: the sweeper declared a worker lost after it
	// stayed silent past the heartbeat timeout.
	EventHeartbeatTimeout EventType = "heartbeat-timeout"
	// EventStaleResult: a result frame for a live task arrived from a worker
	// that no longer owns it (the task was evicted and requeued, possibly
	// re-dispatched elsewhere) and was dropped (Status carries the dropped
	// frame's wire status).
	EventStaleResult EventType = "stale-result"
	// EventTaskFailed: a task exceeded its retry budget and was abandoned
	// permanently.
	EventTaskFailed EventType = "task-failed"
	// EventDecodeError: a worker connection sent a malformed frame (Detail
	// carries the decode error) and was dropped. WorkerID is -1 when the
	// garbage arrived before a successful registration.
	EventDecodeError EventType = "decode-error"
	// EventDrainStart / EventDrainEnd bracket Close()'s graceful drain.
	EventDrainStart EventType = "drain-start"
	EventDrainEnd   EventType = "drain-end"
)

// Event is one timestamped manager lifecycle event. TaskID and WorkerID are
// -1 when the event is not tied to a task or worker.
type Event struct {
	Time     time.Time
	Type     EventType
	TaskID   int
	WorkerID int
	Status   string // result status for EventResult, "" otherwise
	Detail   string
}

// Tracer receives manager lifecycle events. Implementations must be fast and
// must not call back into the Manager: events are delivered synchronously
// under the manager's lock so that the stream is totally ordered.
type Tracer interface {
	Trace(Event)
}

// Flush policy for RunlogTracer: the buffered log is pushed to disk after
// this many event lines or once this much wall time has passed since the
// last flush, whichever comes first. Without periodic flushing a run killed
// before Finish loses its whole buffered timeline; with it an abandoned log
// still parses with at most the tail missing.
const (
	runlogFlushEvery    = 64
	runlogFlushInterval = 2 * time.Second
)

// RunlogTracer appends manager events to a run log as "event" lines, so a
// live run's log replays through cmd/analyze exactly like a simulator log
// while also carrying the engine timeline. It flushes the log periodically
// (see runlogFlushEvery / runlogFlushInterval) so a crashed run's trace
// survives up to its last few events.
type RunlogTracer struct {
	w *runlog.Writer
	// sinceFlush and lastFlush implement the flush policy. Trace is called
	// synchronously under the manager's lock (see the Tracer contract), so
	// they need no lock of their own.
	sinceFlush int
	lastFlush  time.Time
}

// NewRunlogTracer wraps an incremental run-log writer.
func NewRunlogTracer(w *runlog.Writer) *RunlogTracer {
	return &RunlogTracer{w: w, lastFlush: time.Now()}
}

// Trace implements Tracer. Write errors are dropped: tracing must never take
// the engine down.
func (t *RunlogTracer) Trace(ev Event) {
	_ = t.w.Event(runlog.EventRecord{
		TimeNS:   ev.Time.UnixNano(),
		Event:    string(ev.Type),
		TaskID:   ev.TaskID,
		WorkerID: ev.WorkerID,
		Status:   ev.Status,
		Detail:   ev.Detail,
	})
	t.sinceFlush++
	if t.sinceFlush >= runlogFlushEvery || time.Since(t.lastFlush) >= runlogFlushInterval {
		_ = t.w.Flush()
		t.sinceFlush = 0
		t.lastFlush = time.Now()
	}
}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(Event)

// Trace implements Tracer.
func (f FuncTracer) Trace(ev Event) { f(ev) }

// WorkerStats is the per-worker slice of a Stats snapshot. Counters keep
// accumulating across a worker's lifetime and are retained after it
// disconnects, so a run's final snapshot covers every worker that ever
// joined.
type WorkerStats struct {
	ID        int
	Connected bool
	// Dispatched counts tasks placed on this worker.
	Dispatched int
	// Successes / Exhaustions count result frames accepted from it.
	Successes   int
	Exhaustions int
	// Evictions counts tasks lost in flight when the worker disappeared.
	Evictions int
	// BusySeconds totals the virtual duration of every attempt the worker
	// reported, a utilization proxy independent of the wall-clock scale.
	BusySeconds float64
}

// Stats is a consistent snapshot of the manager's lifetime counters.
// Dispatches equals the number of attempt records across all outcomes when
// every dispatched task reported back or was evicted, which is how a live
// run's counters reconcile with its sim.Result.
type Stats struct {
	Dispatches        int
	Successes         int
	Exhaustions       int
	Evictions         int // eviction-lost attempts
	Failures          int // tasks abandoned at the retry limit
	Requeues          int
	StaleResults      int // dropped results from workers that lost ownership
	HeartbeatTimeouts int
	WorkersLost       int // worker connections lost before Close
	PeakQueue         int // deepest the ready queue ever got
	PeakWorkers       int
	ConnectedWorkers  int
	QueueDepth        int
	InFlight          int
	// DecodeErrors counts malformed frames received from worker connections
	// (each drops its connection), the live engine's analogue of the
	// allocator service's Server.DecodeErrors.
	DecodeErrors int
	// FramesSent counts task frames delivered to workers; FlushBatches counts
	// the coalesced writer flushes that carried them. FramesSent/FlushBatches
	// is the realized dispatch coalescing factor.
	FramesSent   int64
	FlushBatches int64
	Workers      []WorkerStats // sorted by worker ID
}
