package wq

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
	"dynalloc/internal/runlog"
	"dynalloc/internal/sim"
)

// A worker lost mid-run emits EventWorkerLost (the churn half of the
// replayable trace), and every outcome carries manager-clock submit/done
// times.
func TestWorkerLostEventAndTraceTimes(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w := quickWorkflow(30, 5)
	for i := range w.Tasks {
		w.Tasks[i].Consumption = w.Tasks[i].Consumption.With(resources.Time, 200)
	}

	var mu sync.Mutex
	var events []Event
	tracer := FuncTracer(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	m := NewManager(sim.NewOracle(w), WithTracer(tracer))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	doomedCtx, killWorker := context.WithCancel(ctx)
	go RunWorker(doomedCtx, addr, WorkerConfig{TimeScale: 1e-3})
	wg := startWorkers(t, ctx, addr, 2, WorkerConfig{TimeScale: 1e-3})
	defer wg.Wait()
	defer m.Close()

	go func() {
		time.Sleep(100 * time.Millisecond)
		killWorker()
	}()

	res, err := m.RunWorkflow(ctx, w)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	lost := 0
	for _, ev := range events {
		if ev.Type == EventWorkerLost {
			lost++
			if ev.WorkerID < 0 {
				t.Errorf("worker-lost event without a worker ID: %+v", ev)
			}
		}
	}
	mu.Unlock()
	if lost != 1 {
		t.Errorf("worker-lost events = %d, want 1 (one worker was killed mid-run)", lost)
	}

	for _, o := range res.Outcomes {
		if o.DoneTime <= 0 {
			t.Fatalf("task %d has no done time", o.TaskID)
		}
		if o.DoneTime < o.SubmitTime {
			t.Fatalf("task %d done at %v before submit at %v", o.TaskID, o.DoneTime, o.SubmitTime)
		}
	}
}

// The tracer's flush policy: after runlogFlushEvery events the buffered log
// is pushed to the underlying writer, so a run killed before Finish still
// leaves its timeline on disk (minus at most the tail since the last
// flush).
func TestRunlogTracerFlushPolicy(t *testing.T) {
	var buf bytes.Buffer
	lw, err := runlog.NewWriter(&buf, runlog.Header{Workload: "w", Algorithm: "a"})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewRunlogTracer(lw)
	now := time.Now()
	for i := 0; i < runlogFlushEvery; i++ {
		tr.Trace(Event{Time: now, Type: EventDispatch, TaskID: i, WorkerID: 0})
	}
	// The underlying bufio.Writer drains full 4 KiB chunks on its own as it
	// fills, which can leave a partial JSON line at the tail; the policy's
	// explicit Flush at the event-count threshold is what guarantees the
	// written prefix is line-aligned and fully parseable without Finish.
	log, err := runlog.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != runlogFlushEvery {
		t.Errorf("%d events survived the flush, want %d", len(log.Events), runlogFlushEvery)
	}
}

// A live run's log carries enough of the churn timeline for the replay
// layer to reconstruct a scripted pool: worker-join (and worker-lost, when
// churn occurred) events derive an arrival schedule.
func TestLiveTraceDerivesScriptedPool(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var buf bytes.Buffer
	lw, err := runlog.NewWriter(&buf, runlog.Header{
		Workload: "quick", Algorithm: "exhaustive-bucketing", Seed: 13,
		Driver: runlog.DriverWQ,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 13})
	m := NewManager(pol, WithTracer(NewRunlogTracer(lw)))
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := startWorkers(t, ctx, addr, 2, WorkerConfig{})
	defer wg.Wait()

	res, err := m.RunWorkflow(ctx, quickWorkflow(15, 13))
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := lw.Finish(res); err != nil {
		t.Fatal(err)
	}

	log, err := runlog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := runlog.ScriptedPool(log)
	if err != nil {
		t.Fatalf("live trace must derive a scripted pool: %v", err)
	}
	arrivals := pool.Schedule(0)
	if len(arrivals) != 2 {
		t.Fatalf("%d scripted arrivals, want 2 (one per joined worker)", len(arrivals))
	}
	for _, a := range arrivals {
		if a.Lifetime != 0 {
			t.Errorf("worker released by Close got lifetime %v, want 0 (never evicted)", a.Lifetime)
		}
	}
}
