package flow

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
	"dynalloc/internal/wq"
)

func task(cores, mem, disk, runtime float64) workflow.Task {
	return workflow.Task{Consumption: resources.New(cores, mem, disk, runtime)}
}

func TestLocalExecutorBasics(t *testing.T) {
	pol := allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 1})
	f := New(&LocalExecutor{Policy: pol})
	fut := f.Submit("work", task(1, 500, 100, 30))
	o := fut.Wait()
	if o.TaskID != 1 || o.Category != "work" {
		t.Fatalf("outcome = %+v", o)
	}
	if len(o.Attempts) == 0 || o.Attempts[len(o.Attempts)-1].Status != metrics.Success {
		t.Fatal("task did not succeed")
	}
	// Wait is idempotent.
	if fut.Wait().TaskID != 1 {
		t.Fatal("second Wait diverged")
	}
}

func TestFlowLearnsAcrossSubmissions(t *testing.T) {
	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 2})
	f := New(&LocalExecutor{Policy: pol})
	// A steady stream of identical tasks: after exploration, allocations
	// should settle near the observed peak.
	for i := 0; i < 30; i++ {
		f.Submit("steady", task(1, 400, 100, 10)).Wait()
	}
	fut := f.Submit("steady", task(1, 400, 100, 10))
	o := fut.Wait()
	if got := o.FinalAlloc().Get(resources.Memory); got != 400 {
		t.Errorf("steady-state allocation = %v, want 400", got)
	}
}

func TestFlowDynamicGeneration(t *testing.T) {
	// Application logic decides what to submit based on results — the
	// defining behaviour of a dynamic workflow.
	pol := allocator.MustNew(allocator.Greedy, allocator.Config{Seed: 3})
	f := New(&LocalExecutor{Policy: pol})
	var phase2 []*Future
	for i := 0; i < 20; i++ {
		o := f.Submit("rank", task(1, 1000+float64(i%5)*40, 10, 20)).Wait()
		// Follow-up work is generated only for "interesting" results.
		if o.Peak.Get(resources.Memory) > 1100 {
			phase2 = append(phase2, f.Submit("energy", task(2, 200, 10, 60)))
		}
	}
	if len(phase2) == 0 {
		t.Fatal("no dynamic follow-up tasks generated")
	}
	outcomes := f.WaitAll()
	if len(outcomes) != 20+len(phase2) {
		t.Fatalf("%d outcomes", len(outcomes))
	}
	acc := f.Metrics()
	if acc.Tasks() != len(outcomes) {
		t.Errorf("metrics tasks = %d", acc.Tasks())
	}
	for _, k := range resources.AllocatedKinds() {
		if awe := acc.AWE(k); awe <= 0 || awe > 1 {
			t.Errorf("AWE(%s) = %v", k, awe)
		}
	}
}

func TestWaitAllCountsEachOutcomeOnce(t *testing.T) {
	pol := allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 4})
	f := New(&LocalExecutor{Policy: pol})
	for i := 0; i < 5; i++ {
		f.Submit("w", task(1, 100, 10, 1))
	}
	f.WaitAll()
	f.WaitAll() // second call must not double-count
	if got := f.Metrics().Tasks(); got != 5 {
		t.Errorf("tasks counted = %d, want 5", got)
	}
}

func TestLocalExecutorAbandonsAfterMaxAttempts(t *testing.T) {
	// A policy that never escalates forces abandonment.
	f := New(&LocalExecutor{Policy: stuck{}, MaxAttempts: 3})
	o := f.Submit("w", task(1, 500, 10, 10)).Wait()
	if o.Retries() != 3 {
		t.Errorf("retries = %d, want 3", o.Retries())
	}
	if !o.FinalAlloc().IsZero() {
		t.Error("abandoned task should have no successful attempt")
	}
}

type stuck struct{}

func (stuck) Allocate(string, int) resources.Vector {
	return resources.New(0.1, 1, 1, resources.Unlimited)
}
func (stuck) Retry(_ string, _ int, prev resources.Vector, _ []resources.Kind) resources.Vector {
	return prev
}
func (stuck) Observe(string, int, resources.Vector, float64) {}
func (stuck) Name() string                                   { return "stuck" }

func TestConcurrentSubmissions(t *testing.T) {
	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 5})
	f := New(&LocalExecutor{Policy: pol})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Submit("par", task(1, 100+float64(i), 10, 5)).Wait()
		}(i)
	}
	wg.Wait()
	if got := len(f.WaitAll()); got != 50 {
		t.Errorf("outcomes = %d", got)
	}
}

// The same application code drives the live wq engine: wq.Manager
// satisfies flow.Executor.
func TestFlowOverLiveManager(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 6})
	m := wq.NewManager(pol)
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = wq.RunWorker(ctx, addr, wq.WorkerConfig{})
		}()
	}
	defer wg.Wait()
	defer m.Close()

	f := New(m)
	for i := 0; i < 20; i++ {
		f.Submit("live", task(0.5, 200+float64(10*i), 50, 5+float64(i%3)))
	}
	outcomes := f.WaitAll()
	if len(outcomes) != 20 {
		t.Fatalf("%d outcomes", len(outcomes))
	}
	acc := f.Metrics()
	if awe := acc.AWE(resources.Memory); awe <= 0 || awe > 1 {
		t.Errorf("memory AWE = %v", awe)
	}
	if math.IsNaN(acc.AWE(resources.Cores)) {
		t.Error("NaN AWE")
	}
}

var _ Executor = (*wq.Manager)(nil)
