// Package flow is the application layer of Figure 1: a small
// dynamic-workflow programming library in which tasks are generated at
// runtime by application logic — submitted as futures, awaited, and used to
// decide what to submit next — rather than declared as a static DAG in
// advance. This is the execution style of Colmena's steering loop and of
// Parsl/Dask-style apps, and it is exactly the dynamicity that makes
// dispatch-time resource allocation necessary.
//
// A Flow runs on any Executor. LocalExecutor executes tasks instantly
// against an allocation policy with the simulator's virtual resource
// monitor (for tests and fast experiments); wq.Manager's Submit method
// satisfies Executor directly, so the same application code drives a live
// manager/worker deployment.
package flow

import (
	"sync"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// Executor runs one task to completion and delivers its outcome.
type Executor interface {
	Submit(t workflow.Task) <-chan metrics.TaskOutcome
}

// Future is the handle to a submitted task.
type Future struct {
	ch      <-chan metrics.TaskOutcome
	once    sync.Once
	outcome metrics.TaskOutcome
}

// Wait blocks until the task completes and returns its outcome. Wait is
// idempotent.
func (f *Future) Wait() metrics.TaskOutcome {
	f.once.Do(func() { f.outcome = <-f.ch })
	return f.outcome
}

// Flow tracks the futures of one application run and aggregates their
// metrics.
type Flow struct {
	exec Executor

	mu      sync.Mutex
	futures []*Future
	acc     metrics.Accumulator
	counted map[*Future]bool
}

// New creates a Flow over an executor.
func New(exec Executor) *Flow {
	return &Flow{exec: exec, counted: make(map[*Future]bool)}
}

// Submit generates one task at runtime: category names the kind of
// computation, consumption is its hidden resource behaviour (cores, memory
// MB, disk MB, runtime s).
func (f *Flow) Submit(category string, consumption workflow.Task) *Future {
	t := consumption
	t.Category = category
	fut := &Future{ch: f.exec.Submit(t)}
	f.mu.Lock()
	f.futures = append(f.futures, fut)
	f.mu.Unlock()
	return fut
}

// SubmitTask submits a fully specified task.
func (f *Flow) SubmitTask(t workflow.Task) *Future {
	fut := &Future{ch: f.exec.Submit(t)}
	f.mu.Lock()
	f.futures = append(f.futures, fut)
	f.mu.Unlock()
	return fut
}

// WaitAll blocks until every submitted task has completed and returns their
// outcomes in submission order.
func (f *Flow) WaitAll() []metrics.TaskOutcome {
	f.mu.Lock()
	futures := append([]*Future(nil), f.futures...)
	f.mu.Unlock()
	out := make([]metrics.TaskOutcome, len(futures))
	for i, fut := range futures {
		out[i] = fut.Wait()
		f.mu.Lock()
		if !f.counted[fut] {
			f.counted[fut] = true
			f.acc.Add(out[i])
		}
		f.mu.Unlock()
	}
	return out
}

// Metrics returns the accumulated metrics of every outcome retrieved so far
// via WaitAll.
func (f *Flow) Metrics() *metrics.Accumulator {
	f.mu.Lock()
	defer f.mu.Unlock()
	acc := f.acc
	return &acc
}

// LocalExecutor executes tasks immediately (no worker pool, no wall-clock
// delay) under an allocation policy, enforcing allocations with the
// simulator's virtual resource monitor and retrying exhausted attempts with
// escalated allocations. It assigns submission IDs in order, preserving the
// significance convention. Safe for concurrent use; execution is
// serialized, so outcomes are deterministic for a fixed submission order.
type LocalExecutor struct {
	Policy allocator.Policy
	Model  sim.ConsumptionModel
	// MaxAttempts bounds the retry chain (0 = sim.DefaultMaxAttempts).
	MaxAttempts int

	mu     sync.Mutex
	nextID int
}

// Submit implements Executor.
func (e *LocalExecutor) Submit(t workflow.Task) <-chan metrics.TaskOutcome {
	ch := make(chan metrics.TaskOutcome, 1)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	t.ID = e.nextID
	maxAttempts := e.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = sim.DefaultMaxAttempts
	}
	outcome := metrics.TaskOutcome{
		TaskID:   t.ID,
		Category: t.Category,
		Peak:     t.Consumption,
		Runtime:  t.Runtime(),
	}
	alloc := e.Policy.Allocate(t.Category, t.ID)
	for {
		duration, exceeded := sim.EvaluateAttempt(e.Model, t.Consumption, t.Runtime(), alloc)
		if len(exceeded) == 0 {
			outcome.Attempts = append(outcome.Attempts, metrics.Attempt{
				Alloc: alloc, Duration: duration, Status: metrics.Success,
			})
			break
		}
		outcome.Attempts = append(outcome.Attempts, metrics.Attempt{
			Alloc: alloc, Duration: duration, Status: metrics.Exhausted,
		})
		if outcome.Retries() >= maxAttempts {
			// Deliver the partial outcome; the caller sees no success
			// attempt. This mirrors a task abandoned by the manager.
			ch <- outcome
			return ch
		}
		alloc = e.Policy.Retry(t.Category, t.ID, alloc, exceeded)
	}
	e.Policy.Observe(t.Category, t.ID, t.Consumption, t.Runtime())
	ch <- outcome
	return ch
}
