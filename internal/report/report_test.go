package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tab := New("Demo", "workflow", "awe")
	tab.AddRow("normal", 0.71234)
	tab.AddRow("exponential", Percent(0.485))
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "workflow") || !strings.Contains(lines[1], "awe") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(out, "48.5%") {
		t.Errorf("percent cell missing: %s", out)
	}
	if !strings.Contains(out, "0.7123") {
		t.Errorf("float cell missing: %s", out)
	}
	// Columns aligned: "awe" starts at the same offset in header and rows.
	hIdx := strings.Index(lines[1], "awe")
	rIdx := strings.Index(lines[3], "0.7123")
	if hIdx != rIdx {
		t.Errorf("misaligned columns: header offset %d, row offset %d\n%s", hIdx, rIdx, out)
	}
}

func TestRenderWithoutTitle(t *testing.T) {
	tab := New("", "a")
	tab.AddRow(1)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "\n") {
		t.Error("leading blank line without title")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := New("ignored", "x", "y")
	tab.AddRow("a", 1)
	tab.AddRow("b", 2)
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\na,1\nb,2\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestAddRowTypes(t *testing.T) {
	tab := New("", "v")
	tab.AddRow(42)
	tab.AddRow(int64(7))
	tab.AddRow("s")
	tab.AddRow(0.5)
	if tab.Rows[0][0] != "42" || tab.Rows[2][0] != "s" || tab.Rows[3][0] != "0.5" {
		t.Errorf("rows = %v", tab.Rows)
	}
}
