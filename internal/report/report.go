// Package report renders the experiment harness outputs as aligned ASCII
// tables (the rows/series the paper's figures and tables report) and as CSV
// for downstream plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple header + rows structure.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row, formatting each cell with %v (floats with %.4g are
// the caller's responsibility via pre-formatted strings or Cell helpers).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Percent formats a ratio as a percentage cell.
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header then rows; the title is
// omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
