package trace

import (
	"bytes"
	"strings"
	"testing"

	"dynalloc/internal/workflow"
)

// FuzzReadWorkflow exercises the trace parser with arbitrary input: it must
// never panic, and anything it accepts must survive a write/read round
// trip.
func FuzzReadWorkflow(f *testing.F) {
	w, err := workflow.Synthetic("normal", 5, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkflow(&buf, w); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","tasks":[]}`)
	f.Add(`{"name":"x","barriers":[1],"tasks":[{"category":"a","cores":1,"memory_mb":1,"disk_mb":1,"time_s":1}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadWorkflow(strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteWorkflow(&out, got); err != nil {
			t.Fatalf("accepted workflow failed to serialize: %v", err)
		}
		again, err := ReadWorkflow(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again.Tasks) != len(got.Tasks) || again.Name != got.Name {
			t.Fatalf("round trip changed shape: %d/%q vs %d/%q",
				len(again.Tasks), again.Name, len(got.Tasks), got.Name)
		}
	})
}
