// Package trace serializes workloads and run results: the per-task
// consumption series behind Figures 2 and 4 (as CSV or JSON), and full
// workflow definitions so generated traces can be saved, inspected, and
// replayed byte-identically across tools.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// TaskPoint is one point of a Figure 2/4 consumption series: a task's peak
// consumption in every resource dimension, keyed by submission order.
type TaskPoint struct {
	ID       int     `json:"id"`
	Category string  `json:"category"`
	Cores    float64 `json:"cores"`
	MemoryMB float64 `json:"memory_mb"`
	DiskMB   float64 `json:"disk_mb"`
	TimeS    float64 `json:"time_s"`
}

// Points converts a workflow into its consumption series.
func Points(w *workflow.Workflow) []TaskPoint {
	out := make([]TaskPoint, 0, len(w.Tasks))
	for _, t := range w.Tasks {
		out = append(out, TaskPoint{
			ID:       t.ID,
			Category: t.Category,
			Cores:    t.Consumption.Get(resources.Cores),
			MemoryMB: t.Consumption.Get(resources.Memory),
			DiskMB:   t.Consumption.Get(resources.Disk),
			TimeS:    t.Consumption.Get(resources.Time),
		})
	}
	return out
}

// WriteCSV writes the series with a header row, one task per line.
func WriteCSV(w io.Writer, points []TaskPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "category", "cores", "memory_mb", "disk_mb", "time_s"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, p := range points {
		rec := []string{strconv.Itoa(p.ID), p.Category, f(p.Cores), f(p.MemoryMB), f(p.DiskMB), f(p.TimeS)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// File is the JSON representation of a complete workflow.
type File struct {
	Name         string      `json:"name"`
	Barriers     []int       `json:"barriers,omitempty"`
	SubmitWindow int         `json:"submit_window,omitempty"`
	Tasks        []TaskPoint `json:"tasks"`
}

// WriteWorkflow serializes a workflow as indented JSON.
func WriteWorkflow(w io.Writer, wf *workflow.Workflow) error {
	file := File{Name: wf.Name, Barriers: wf.Barriers, SubmitWindow: wf.SubmitWindow, Tasks: Points(wf)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// ReadWorkflow deserializes a workflow written by WriteWorkflow.
func ReadWorkflow(r io.Reader) (*workflow.Workflow, error) {
	var file File
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("trace: decoding workflow: %w", err)
	}
	wf := &workflow.Workflow{Name: file.Name, Barriers: file.Barriers, SubmitWindow: file.SubmitWindow}
	for i, p := range file.Tasks {
		if p.ID == 0 {
			p.ID = i + 1
		}
		wf.Tasks = append(wf.Tasks, workflow.Task{
			ID:          p.ID,
			Category:    p.Category,
			Consumption: resources.New(p.Cores, p.MemoryMB, p.DiskMB, p.TimeS),
		})
	}
	return wf, nil
}
