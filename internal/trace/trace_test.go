package trace

import (
	"bytes"
	"strings"
	"testing"

	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

func sample(t *testing.T) *workflow.Workflow {
	t.Helper()
	w, err := workflow.Synthetic("bimodal", 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPoints(t *testing.T) {
	w := sample(t)
	pts := Points(w)
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		task := w.Tasks[i]
		if p.ID != task.ID || p.Category != task.Category {
			t.Fatalf("point %d identity mismatch", i)
		}
		if p.MemoryMB != task.Consumption.Get(resources.Memory) {
			t.Fatalf("point %d memory mismatch", i)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	w := sample(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Points(w)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 51 {
		t.Fatalf("got %d lines, want header + 50", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,category,cores,memory_mb") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,bimodal,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWorkflowRoundTrip(t *testing.T) {
	w, err := workflow.ByName("colmena", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkflow(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkflow(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Tasks) != len(w.Tasks) {
		t.Fatalf("round-trip shape mismatch: %s/%d", got.Name, len(got.Tasks))
	}
	if len(got.Barriers) != 1 || got.Barriers[0] != w.Barriers[0] {
		t.Errorf("barriers = %v, want %v", got.Barriers, w.Barriers)
	}
	for i := range w.Tasks {
		if got.Tasks[i].ID != w.Tasks[i].ID ||
			got.Tasks[i].Category != w.Tasks[i].Category ||
			got.Tasks[i].Consumption != w.Tasks[i].Consumption {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, got.Tasks[i], w.Tasks[i])
		}
	}
	if err := got.Validate(resources.PaperWorker()); err != nil {
		t.Errorf("round-tripped workflow invalid: %v", err)
	}
}

func TestReadWorkflowFillsMissingIDs(t *testing.T) {
	in := `{"name":"x","tasks":[
		{"category":"a","cores":1,"memory_mb":10,"disk_mb":5,"time_s":1},
		{"category":"a","cores":1,"memory_mb":20,"disk_mb":5,"time_s":1}]}`
	w, err := ReadWorkflow(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Tasks[0].ID != 1 || w.Tasks[1].ID != 2 {
		t.Errorf("IDs = %d, %d", w.Tasks[0].ID, w.Tasks[1].ID)
	}
}

func TestReadWorkflowBadJSON(t *testing.T) {
	if _, err := ReadWorkflow(strings.NewReader("{nope")); err == nil {
		t.Error("bad JSON should error")
	}
}
