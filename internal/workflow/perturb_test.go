package workflow

import (
	"math"
	"testing"

	"dynalloc/internal/dist"
	"dynalloc/internal/resources"
)

func TestPerturbScale(t *testing.T) {
	w, err := Synthetic("normal", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := Perturb(w, Perturbation{Scale: resources.New(1, 2, 1, 1)}, 2)
	if p.Name != "normal-perturbed" {
		t.Errorf("name = %q", p.Name)
	}
	for i := range w.Tasks {
		orig := w.Tasks[i].Consumption
		got := p.Tasks[i].Consumption
		if math.Abs(got.Get(resources.Memory)-2*orig.Get(resources.Memory)) > 1e-9 {
			t.Fatalf("task %d memory not doubled", i)
		}
		if got.Get(resources.Cores) != orig.Get(resources.Cores) {
			t.Fatalf("task %d cores changed", i)
		}
	}
	if err := p.Validate(resources.PaperWorker()); err != nil {
		t.Errorf("perturbed workflow invalid: %v", err)
	}
}

func TestPerturbJitterBounded(t *testing.T) {
	w, err := Synthetic("uniform", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Perturb(w, Perturbation{Jitter: 0.1}, 4)
	changed := 0
	for i := range w.Tasks {
		ratio := p.Tasks[i].Consumption.Get(resources.Memory) / w.Tasks[i].Consumption.Get(resources.Memory)
		if ratio < 0.9-1e-9 || ratio > 1.1+1e-9 {
			t.Fatalf("task %d jitter ratio %v out of bounds", i, ratio)
		}
		if math.Abs(ratio-1) > 1e-9 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("jitter changed nothing")
	}
}

func TestPerturbSwapRespectsPhases(t *testing.T) {
	w := ColmenaXTB(5)
	p := Perturb(w, Perturbation{SwapFraction: 0.5}, 6)
	// Categories must stay on their side of the barrier.
	for i, task := range p.Tasks {
		if i < ColmenaEvaluateTasks && task.Category != "evaluate_mpnn" {
			t.Fatalf("task at %d crossed the phase barrier", i)
		}
		if i >= ColmenaEvaluateTasks && task.Category != "compute_atomization_energy" {
			t.Fatalf("task at %d crossed the phase barrier", i)
		}
	}
	// IDs renumbered contiguously.
	for i, task := range p.Tasks {
		if task.ID != i+1 {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
	}
	if p.Barriers[0] != w.Barriers[0] || p.SubmitWindow != w.SubmitWindow {
		t.Error("structure not preserved")
	}
	// The multiset of consumptions is preserved (swap + identity scale).
	sum := func(tasks []Task) float64 {
		s := 0.0
		for _, t := range tasks {
			s += t.Consumption.Get(resources.Memory)
		}
		return s
	}
	if math.Abs(sum(w.Tasks)-sum(p.Tasks)) > 1e-6 {
		t.Error("swapping changed total consumption")
	}
}

func TestPerturbSwapCountPinned(t *testing.T) {
	// SwapFraction is an upper bound: every attempt draws both indices, but
	// cross-phase pairs are rejected without a redraw. Pin the realized
	// count for a fixed seed (it is fully deterministic) and check it
	// against the analytic acceptance rate. ColmenaXTB has 1228 tasks with
	// a barrier at 228, so a uniform pair lands in one phase with
	// probability (228/1228)² + (1000/1228)² ≈ 0.70.
	w := ColmenaXTB(5)
	r := dist.NewRand(6)
	tasks := append([]Task(nil), w.Tasks...)
	attempts := int(0.5 * float64(len(tasks)))
	realized := swapTasks(tasks, w.PhaseOf, attempts, r)
	if attempts != 614 || realized != 428 {
		t.Errorf("seed 6: %d/%d realized swaps, want 428/614", realized, attempts)
	}

	// The helper consumed exactly the draws Perturb's swap stage consumes:
	// replaying the remaining stream must reproduce Perturb's output, which
	// pins the swap-before-jitter draw order.
	applyScaleJitter(tasks, resources.New(1, 1, 1, 1), 0.1, r)
	p := Perturb(w, Perturbation{SwapFraction: 0.5, Jitter: 0.1}, 6)
	for i := range tasks {
		if tasks[i] != p.Tasks[i] {
			t.Fatalf("task %d diverged from Perturb: %+v vs %+v", i, tasks[i], p.Tasks[i])
		}
	}
}

func TestPerturbEmptyWorkflow(t *testing.T) {
	p := Perturb(&Workflow{Name: "x"}, Perturbation{SwapFraction: 1, Jitter: 0.5}, 9)
	if len(p.Tasks) != 0 || p.Name != "x-perturbed" {
		t.Errorf("empty workflow perturbed wrong: %+v", p)
	}
}

func TestPerturbDoesNotMutateOriginal(t *testing.T) {
	w, err := Synthetic("bimodal", 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]Task(nil), w.Tasks...)
	Perturb(w, Perturbation{Scale: resources.New(3, 3, 3, 3), SwapFraction: 1, Jitter: 0.5}, 8)
	for i := range before {
		if w.Tasks[i] != before[i] {
			t.Fatalf("original task %d mutated", i)
		}
	}
}
