package workflow

import (
	"errors"
	"math"
	"testing"

	"dynalloc/internal/resources"
)

func meanOf(w *Workflow, cat string, k resources.Kind) float64 {
	sum, n := 0.0, 0
	for _, t := range w.Tasks {
		if cat == "" || t.Category == cat {
			sum += t.Consumption.Get(k)
			n++
		}
	}
	return sum / float64(n)
}

func TestAllWorkloadsValidateOnPaperWorker(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name, 0, 1)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := w.Validate(resources.PaperWorker()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 0, 1); !errors.Is(err, ErrUnknownWorkflow) {
		t.Errorf("ByName(nope) = %v, want ErrUnknownWorkflow", err)
	}
	if _, err := Synthetic("nope", 10, 1); !errors.Is(err, ErrUnknownWorkflow) {
		t.Errorf("Synthetic(nope) = %v, want ErrUnknownWorkflow", err)
	}
}

func TestSyntheticTaskCounts(t *testing.T) {
	for _, name := range SyntheticNames() {
		w, err := Synthetic(name, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != DefaultSyntheticTasks {
			t.Errorf("%s: %d tasks, want %d", name, w.Len(), DefaultSyntheticTasks)
		}
		if cats := w.Categories(); len(cats) != 1 {
			t.Errorf("%s: categories = %v, want a single category", name, cats)
		}
		w2, _ := Synthetic(name, 250, 2)
		if w2.Len() != 250 {
			t.Errorf("%s: explicit n ignored, got %d tasks", name, w2.Len())
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, _ := Synthetic("normal", 100, 7)
	b, _ := Synthetic("normal", 100, 7)
	for i := range a.Tasks {
		if a.Tasks[i].Consumption != b.Tasks[i].Consumption {
			t.Fatalf("task %d diverged between identically seeded runs", i)
		}
	}
	c, _ := Synthetic("normal", 100, 8)
	if a.Tasks[0].Consumption == c.Tasks[0].Consumption {
		t.Error("different seeds produced identical first tasks")
	}
}

func TestSyntheticDistributionShapes(t *testing.T) {
	// Means of the memory series should sit near the configured family
	// centers (Figure 4 magnitudes).
	want := map[string]float64{
		"normal":      8000,
		"uniform":     7000,
		"exponential": 5000,
		"bimodal":     6000,
		"trimodal":    5340, // (3000 + 8000 + 5000) / 3, weighted by thirds
	}
	for name, m := range want {
		w, _ := Synthetic(name, 3000, 3)
		got := meanOf(w, "", resources.Memory)
		if math.Abs(got-m) > m*0.08 {
			t.Errorf("%s memory mean = %v, want ~%v", name, got, m)
		}
	}
}

func TestTrimodalPhasesMove(t *testing.T) {
	w, _ := Synthetic("trimodal", 900, 4)
	if len(w.Barriers) != 2 || w.Barriers[0] != 300 || w.Barriers[1] != 600 {
		t.Fatalf("trimodal barriers = %v", w.Barriers)
	}
	phaseMean := func(lo, hi int) float64 {
		sum := 0.0
		for _, t := range w.Tasks[lo:hi] {
			sum += t.Consumption.Get(resources.Memory)
		}
		return sum / float64(hi-lo)
	}
	p1, p2, p3 := phaseMean(0, 300), phaseMean(300, 600), phaseMean(600, 900)
	if math.Abs(p1-3000) > 300 || math.Abs(p2-8000) > 500 || math.Abs(p3-5000) > 400 {
		t.Errorf("phase means = %v, %v, %v; want ~3000, ~8000, ~5000", p1, p2, p3)
	}
	if w.PhaseOf(0) != 0 || w.PhaseOf(299) != 0 || w.PhaseOf(300) != 1 || w.PhaseOf(600) != 2 {
		t.Error("PhaseOf does not respect barriers")
	}
}

func TestColmenaStructure(t *testing.T) {
	w := ColmenaXTB(5)
	counts := w.CategoryCounts()
	if counts["evaluate_mpnn"] != ColmenaEvaluateTasks {
		t.Errorf("evaluate_mpnn count = %d, want %d", counts["evaluate_mpnn"], ColmenaEvaluateTasks)
	}
	if counts["compute_atomization_energy"] != ColmenaComputeTasks {
		t.Errorf("compute count = %d, want %d", counts["compute_atomization_energy"], ColmenaComputeTasks)
	}
	if len(w.Barriers) != 1 || w.Barriers[0] != ColmenaEvaluateTasks {
		t.Errorf("barriers = %v", w.Barriers)
	}
	// Phase 1 memory 1.0-1.2 GB, phase 2 ~200 MB (Section III-B).
	evalMem := meanOf(w, "evaluate_mpnn", resources.Memory)
	if evalMem < 1000 || evalMem > 1200 {
		t.Errorf("evaluate_mpnn memory mean = %v, want in [1000, 1200]", evalMem)
	}
	compMem := meanOf(w, "compute_atomization_energy", resources.Memory)
	if math.Abs(compMem-200) > 30 {
		t.Errorf("compute memory mean = %v, want ~200", compMem)
	}
	// compute cores span 0.9-3.6.
	minC, maxC := math.Inf(1), math.Inf(-1)
	for _, task := range w.Tasks[ColmenaEvaluateTasks:] {
		c := task.Consumption.Get(resources.Cores)
		minC = math.Min(minC, c)
		maxC = math.Max(maxC, c)
	}
	if minC < 0.9 || maxC > 3.6 {
		t.Errorf("compute cores range [%v, %v], want within [0.9, 3.6]", minC, maxC)
	}
	if maxC-minC < 2 {
		t.Errorf("compute cores should be highly variable, range %v", maxC-minC)
	}
	// Disk hovers around 10 MB across the workflow.
	disk := meanOf(w, "", resources.Disk)
	if math.Abs(disk-10) > 3 {
		t.Errorf("colmena disk mean = %v, want ~10", disk)
	}
}

func TestTopEFTStructure(t *testing.T) {
	w := TopEFT(6)
	counts := w.CategoryCounts()
	if counts["preprocessing"] != TopEFTPreprocessTasks ||
		counts["processing"] != TopEFTProcessTasks ||
		counts["accumulating"] != TopEFTAccumulateTasks {
		t.Fatalf("category counts = %v", counts)
	}
	if w.Len() != TopEFTPreprocessTasks+TopEFTProcessTasks+TopEFTAccumulateTasks {
		t.Errorf("total tasks = %d", w.Len())
	}
	// Disk is the paper's constant 306 MB for every task.
	for _, task := range w.Tasks {
		if task.Consumption.Get(resources.Disk) != 306 {
			t.Fatalf("task %d disk = %v, want 306", task.ID, task.Consumption.Get(resources.Disk))
		}
	}
	// Preprocessing and accumulating memory ~180 MB; processing memory is
	// two clusters around 450 and 580 MB.
	if m := meanOf(w, "preprocessing", resources.Memory); math.Abs(m-180) > 15 {
		t.Errorf("preprocessing memory mean = %v, want ~180", m)
	}
	if m := meanOf(w, "accumulating", resources.Memory); math.Abs(m-185) > 15 {
		t.Errorf("accumulating memory mean = %v, want ~185", m)
	}
	lo, hi := 0, 0
	for _, task := range w.Tasks {
		if task.Category != "processing" {
			continue
		}
		m := task.Consumption.Get(resources.Memory)
		switch {
		case math.Abs(m-450) < 60:
			lo++
		case math.Abs(m-580) < 60:
			hi++
		default:
			t.Fatalf("processing memory %v outside both clusters", m)
		}
	}
	if lo == 0 || hi == 0 {
		t.Error("processing memory should form two clusters")
	}
	// Core outliers exist but are rare and bounded by 3.
	outliers := 0
	for _, task := range w.Tasks {
		c := task.Consumption.Get(resources.Cores)
		if c > 3.0 {
			t.Fatalf("core consumption %v exceeds the paper's ~3-core outliers", c)
		}
		if c > 1.0 {
			outliers++
		}
	}
	frac := float64(outliers) / float64(w.Len())
	if frac == 0 || frac > 0.1 {
		t.Errorf("core outlier fraction = %v, want small but non-zero", frac)
	}
	// Interleaving: accumulating tasks appear between processing tasks,
	// not only at the end.
	firstAcc := -1
	for i, task := range w.Tasks {
		if task.Category == "accumulating" {
			firstAcc = i
			break
		}
	}
	if firstAcc < 0 || firstAcc > TopEFTPreprocessTasks+2*topEFTAccumulateSpacing {
		t.Errorf("first accumulating task at index %d; interleaving broken", firstAcc)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good, _ := Synthetic("normal", 10, 1)
	worker := resources.PaperWorker()

	w := *good
	w.Tasks = append([]Task(nil), good.Tasks...)
	w.Tasks[3].ID = 99
	if err := w.Validate(worker); err == nil {
		t.Error("bad ID not caught")
	}

	w.Tasks = append([]Task(nil), good.Tasks...)
	w.Tasks[0].Consumption = w.Tasks[0].Consumption.With(resources.Time, 0)
	if err := w.Validate(worker); err == nil {
		t.Error("zero runtime not caught")
	}

	w.Tasks = append([]Task(nil), good.Tasks...)
	w.Tasks[0].Consumption = w.Tasks[0].Consumption.With(resources.Memory, 1e9)
	if err := w.Validate(worker); err == nil {
		t.Error("infeasible memory not caught")
	}

	w.Tasks = append([]Task(nil), good.Tasks...)
	w.Tasks[0].Category = ""
	if err := w.Validate(worker); err == nil {
		t.Error("empty category not caught")
	}

	w.Tasks = append([]Task(nil), good.Tasks...)
	w.Barriers = []int{0}
	if err := w.Validate(worker); err == nil {
		t.Error("invalid barrier not caught")
	}
}

func TestTaskHelpers(t *testing.T) {
	task := Task{ID: 1, Category: "c", Consumption: resources.New(2, 100, 50, 60)}
	if task.Runtime() != 60 {
		t.Errorf("Runtime = %v", task.Runtime())
	}
	if p := task.Peak(); p.Get(resources.Cores) != 2 || p.Get(resources.Time) != 60 {
		t.Errorf("Peak = %v", p)
	}
}

func TestLargeWorkflowGeneration(t *testing.T) {
	// Future-work scale (Section VII): >10,000-task synthetic workflows.
	w, err := Synthetic("bimodal", 20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 20000 {
		t.Fatalf("got %d tasks", w.Len())
	}
	if err := w.Validate(resources.PaperWorker()); err != nil {
		t.Error(err)
	}
}
