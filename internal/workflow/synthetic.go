package workflow

import (
	"fmt"

	"dynalloc/internal/dist"
	"dynalloc/internal/resources"
)

// DefaultSyntheticTasks is the task count of the paper's synthetic
// workflows (Section V-B).
const DefaultSyntheticTasks = 1000

// memoryPhases returns the memory sampler phases of each synthetic family,
// in MB. Each family captures one stochastic behaviour of Section V-B:
// Normal and Uniform for common randomness, Exponential for outliers,
// Bimodal for specialization of tasks, Phasing Trimodal for a moving
// resource distribution.
func memoryPhases(name string, n int) (dist.Phased, error) {
	switch name {
	case "normal":
		return dist.Phased{Phases: []dist.Sampler{
			dist.Normal{Mean: 8000, Stddev: 1500, Min: 100},
		}}, nil
	case "uniform":
		return dist.Phased{Phases: []dist.Sampler{
			dist.Uniform{Lo: 2000, Hi: 12000},
		}}, nil
	case "exponential":
		return dist.Phased{Phases: []dist.Sampler{
			dist.Exponential{Offset: 2000, Mean: 3000, Cap: 49152},
		}}, nil
	case "bimodal":
		return dist.Phased{Phases: []dist.Sampler{
			dist.Mixture{Components: []dist.Component{
				{Weight: 1, Sampler: dist.Normal{Mean: 3000, Stddev: 400, Min: 100}},
				{Weight: 1, Sampler: dist.Normal{Mean: 9000, Stddev: 700, Min: 100}},
			}},
		}}, nil
	case "trimodal":
		return dist.Phased{
			Phases: []dist.Sampler{
				dist.Normal{Mean: 3000, Stddev: 300, Min: 100},
				dist.Normal{Mean: 8000, Stddev: 500, Min: 100},
				dist.Normal{Mean: 5000, Stddev: 400, Min: 100},
			},
			Boundaries: []int{n / 3, 2 * n / 3},
		}, nil
	default:
		return dist.Phased{}, fmt.Errorf("%w: no synthetic family %q", ErrUnknownWorkflow, name)
	}
}

// syntheticStream is the lazy core of the five synthetic families: one
// shared random stream, sampled in a fixed per-task order, so the i-th task
// is identical whether the workload is drained eagerly or streamed.
func syntheticStream(name string, n int, seed uint64) (*stream, error) {
	if n <= 0 {
		n = DefaultSyntheticTasks
	}
	mem, err := memoryPhases(name, n)
	if err != nil {
		return nil, err
	}
	r := dist.NewRand(seed)
	timeSampler := dist.LogNormal{Mu: ln(120), Sigma: 0.4, Cap: 3600}
	var barriers []int
	if name == "trimodal" {
		barriers = append(barriers, mem.Boundaries...)
	}
	return &stream{
		name:     name,
		barriers: barriers,
		n:        n,
		gen: func(i int) (Task, bool) {
			m := mem.SampleAt(i, r)
			// Disk follows the memory distribution at half magnitude; cores
			// follow it scaled into a realistic 0.5-12 core range.
			d := mem.SampleAt(i, r) * 0.5
			c := clampCores(mem.SampleAt(i, r) / 4000)
			t := timeSampler.Sample(r)
			return Task{
				ID:          i + 1,
				Category:    name,
				Consumption: resources.New(c, m, d, t),
			}, true
		},
	}, nil
}

// Synthetic generates one of the five synthetic workflows with n tasks of a
// single category (the paper's worst case: a large consumption discrepancy
// within one category). n == 0 uses the paper's 1000 tasks. It is
// Materialize over the streaming generator; SourceByName returns the lazy
// form for workloads too large to hold.
func Synthetic(name string, n int, seed uint64) (*Workflow, error) {
	s, err := syntheticStream(name, n, seed)
	if err != nil {
		return nil, err
	}
	return Materialize(s), nil
}

func clampCores(c float64) float64 {
	if c < 0.25 {
		return 0.25
	}
	if c > 12 {
		return 12
	}
	return c
}
