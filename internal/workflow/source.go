package workflow

import "sort"

// Source is the streaming workload contract: tasks are produced one at a
// time, in submission order, as the consumer asks for them. A driver built
// on a Source never needs to hold the full task set, so workload size stops
// being a memory bound — the paper's "large dynamic workflows" regime
// (millions of tasks) fits in a window of in-flight tasks.
//
// A Source is single-use and not safe for concurrent use: Next advances
// internal generator state. Create a fresh Source per run (the generators
// are cheap to construct; all cost is in the per-task sampling).
type Source interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next task in submission order. ok is false once the
	// workload is exhausted; after that every further call keeps returning
	// ok == false.
	Next() (t Task, ok bool)
	// SubmitWindow mirrors Workflow.SubmitWindow: at most
	// completed + SubmitWindow tasks exist at any instant. Zero means every
	// task is available as soon as its phase is released.
	SubmitWindow() int
	// NextBarrier returns the smallest barrier index strictly greater than
	// after, or -1 when no further barrier exists. A task at index >= b may
	// only start once every task at index < b has completed, exactly as
	// Workflow.Barriers defines.
	NextBarrier(after int) int
}

// stream is the concrete Source behind every workload generator: barrier
// and window metadata known up front, plus a gen function that samples the
// i-th task. gen is called with strictly increasing i, so generators are
// free to keep sequential state (counters, a shared random stream).
type stream struct {
	name     string
	window   int
	barriers []int // ascending
	n        int   // total tasks; < 0 when unknown up front
	i        int
	gen      func(i int) (Task, bool)
}

func (s *stream) Name() string      { return s.name }
func (s *stream) SubmitWindow() int { return s.window }

func (s *stream) NextBarrier(after int) int {
	return nextBarrier(s.barriers, after)
}

func (s *stream) Next() (Task, bool) {
	if s.n >= 0 && s.i >= s.n {
		return Task{}, false
	}
	t, ok := s.gen(s.i)
	if !ok {
		return Task{}, false
	}
	s.i++
	return t, true
}

// nextBarrier returns the smallest barrier strictly greater than after, or
// -1; barriers must be ascending.
func nextBarrier(barriers []int, after int) int {
	i := sort.SearchInts(barriers, after+1)
	if i == len(barriers) {
		return -1
	}
	return barriers[i]
}

// Cursor adapts an already materialized Workflow to the Source contract, so
// slice-era callers keep working against Source-driven APIs. The workflow
// itself is read shared and never mutated; each Cursor carries its own
// position, so one Workflow may feed many concurrent runs.
type Cursor struct {
	w *Workflow
	i int
}

// Stream returns a fresh Source view over the workflow's tasks.
func (w *Workflow) Stream() *Cursor { return &Cursor{w: w} }

// Name implements Source.
func (c *Cursor) Name() string { return c.w.Name }

// SubmitWindow implements Source.
func (c *Cursor) SubmitWindow() int { return c.w.SubmitWindow }

// NextBarrier implements Source.
func (c *Cursor) NextBarrier(after int) int { return nextBarrier(c.w.Barriers, after) }

// Next implements Source.
func (c *Cursor) Next() (Task, bool) {
	if c.i >= len(c.w.Tasks) {
		return Task{}, false
	}
	t := c.w.Tasks[c.i]
	c.i++
	return t, true
}

// Materialize drains a source into a fully built Workflow. The eager
// generators (ByName, Synthetic, ColmenaXTB, TopEFT) are Materialize over
// the corresponding streaming source, which is what guarantees the lazy and
// eager paths emit bit-identical task streams.
func Materialize(s Source) *Workflow {
	w := &Workflow{Name: s.Name(), SubmitWindow: s.SubmitWindow()}
	for b := s.NextBarrier(0); b > 0; b = s.NextBarrier(b) {
		w.Barriers = append(w.Barriers, b)
	}
	for {
		t, ok := s.Next()
		if !ok {
			break
		}
		w.Tasks = append(w.Tasks, t)
	}
	return w
}

// windowed overrides a source's submit window, leaving everything else
// untouched. It lets a benchmark or caller bound the in-flight task window
// of a generator family whose default submits everything up front.
type windowed struct {
	Source
	window int
}

func (w *windowed) SubmitWindow() int { return w.window }

// WithSubmitWindow returns a Source identical to src except that it reports
// the given submit window. The returned source shares src's generator
// state; do not keep using src directly afterwards.
func WithSubmitWindow(src Source, window int) Source {
	return &windowed{Source: src, window: window}
}

// SourceByName returns the streaming form of any of the seven evaluation
// workloads: the same name set, task streams, barriers, and submit windows
// as ByName, but generated lazily task by task. n scales the synthetic
// families (0 = the paper's 1000); the production workloads have fixed
// task counts.
func SourceByName(name string, n int, seed uint64) (Source, error) {
	switch name {
	case "normal", "uniform", "exponential", "bimodal", "trimodal":
		return syntheticStream(name, n, seed)
	case "colmena":
		return colmenaStream(seed), nil
	case "topeft":
		return topeftStream(seed), nil
	default:
		return nil, unknownWorkflowError(name)
	}
}
