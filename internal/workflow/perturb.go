package workflow

import (
	"math/rand/v2"

	"dynalloc/internal/dist"
	"dynalloc/internal/resources"
)

// Perturbation models the paper's external stochasticity between runs of
// the same workflow (Section II-D2): evolution of the application shifts
// resource consumption, new input distributions rescale task sizes, and a
// busy shared system stretches runtimes. A prior-free allocator must handle
// a perturbed rerun exactly as well as the original — it carries nothing
// over — whereas anything trained on the previous run would be misled.
type Perturbation struct {
	// Scale multiplies every task's consumption per kind; 1.0 = unchanged.
	// Zero values mean 1.0.
	Scale resources.Vector
	// Jitter adds per-task multiplicative noise: each kind is multiplied by
	// a factor drawn uniformly from [1-Jitter, 1+Jitter].
	Jitter float64
	// SwapFraction randomly reorders task positions, modeling changed
	// submission order between runs: ⌊SwapFraction·len(Tasks)⌋ swap
	// attempts are drawn, each exchanging two uniformly chosen positions.
	// The fraction is an upper bound on realized swaps, not an exact
	// count: an attempt whose two positions straddle a phase barrier is
	// rejected without a redraw (preserving phase structure and keeping
	// the random stream's length independent of the barrier layout), and
	// an attempt may draw the same position twice (a no-op). Workflows
	// with many barriers therefore realize fewer swaps than requested.
	SwapFraction float64
}

// Perturb returns a copy of the workflow with the perturbation applied.
// Task IDs are renumbered to match the new submission order; barriers and
// the submit window are preserved.
func Perturb(w *Workflow, p Perturbation, seed uint64) *Workflow {
	r := dist.NewRand(seed)
	scale := p.Scale
	for k := range scale {
		if scale[k] == 0 {
			scale[k] = 1
		}
	}
	out := &Workflow{
		Name:         w.Name + "-perturbed",
		Barriers:     append([]int(nil), w.Barriers...),
		SubmitWindow: w.SubmitWindow,
		Tasks:        make([]Task, len(w.Tasks)),
	}
	copy(out.Tasks, w.Tasks)

	// Swap positions within the whole list (phase boundaries are respected
	// by only swapping tasks in the same phase).
	if p.SwapFraction > 0 && len(out.Tasks) > 0 {
		swapTasks(out.Tasks, w.PhaseOf, int(p.SwapFraction*float64(len(out.Tasks))), r)
	}

	applyScaleJitter(out.Tasks, scale, p.Jitter, r)
	return out
}

// swapTasks performs up to swaps in-place position exchanges on tasks,
// applying only same-phase pairs, and returns the number of swaps actually
// applied. Both indices are drawn unconditionally for every attempt — a
// rejected cross-phase pair is dropped, never redrawn — so the number of
// random draws consumed (and therefore every draw that follows, e.g. the
// jitter factors) depends only on the attempt count, not on the barrier
// layout. This is what makes SwapFraction an upper bound; see Perturbation.
func swapTasks(tasks []Task, phaseOf func(int) int, swaps int, r *rand.Rand) int {
	realized := 0
	for s := 0; s < swaps; s++ {
		i := r.IntN(len(tasks))
		j := r.IntN(len(tasks))
		if phaseOf(i) == phaseOf(j) {
			tasks[i], tasks[j] = tasks[j], tasks[i]
			realized++
		}
	}
	return realized
}

// applyScaleJitter rescales every task's consumption in place and renumbers
// IDs to match the (possibly swapped) positions.
func applyScaleJitter(tasks []Task, scale resources.Vector, jitter float64, r *rand.Rand) {
	for i := range tasks {
		c := tasks[i].Consumption
		for _, k := range resources.Kinds() {
			factor := scale.Get(k)
			if jitter > 0 {
				factor *= 1 - jitter + 2*jitter*r.Float64()
			}
			c = c.With(k, c.Get(k)*factor)
		}
		tasks[i].Consumption = c
		tasks[i].ID = i + 1
	}
}
