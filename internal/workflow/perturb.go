package workflow

import (
	"dynalloc/internal/dist"
	"dynalloc/internal/resources"
)

// Perturbation models the paper's external stochasticity between runs of
// the same workflow (Section II-D2): evolution of the application shifts
// resource consumption, new input distributions rescale task sizes, and a
// busy shared system stretches runtimes. A prior-free allocator must handle
// a perturbed rerun exactly as well as the original — it carries nothing
// over — whereas anything trained on the previous run would be misled.
type Perturbation struct {
	// Scale multiplies every task's consumption per kind; 1.0 = unchanged.
	// Zero values mean 1.0.
	Scale resources.Vector
	// Jitter adds per-task multiplicative noise: each kind is multiplied by
	// a factor drawn uniformly from [1-Jitter, 1+Jitter].
	Jitter float64
	// SwapFraction randomly reorders this fraction of task positions,
	// modeling changed submission order between runs.
	SwapFraction float64
}

// Perturb returns a copy of the workflow with the perturbation applied.
// Task IDs are renumbered to match the new submission order; barriers and
// the submit window are preserved.
func Perturb(w *Workflow, p Perturbation, seed uint64) *Workflow {
	r := dist.NewRand(seed)
	scale := p.Scale
	for k := range scale {
		if scale[k] == 0 {
			scale[k] = 1
		}
	}
	out := &Workflow{
		Name:         w.Name + "-perturbed",
		Barriers:     append([]int(nil), w.Barriers...),
		SubmitWindow: w.SubmitWindow,
		Tasks:        make([]Task, len(w.Tasks)),
	}
	copy(out.Tasks, w.Tasks)

	// Swap positions within the whole list (phase boundaries are respected
	// by only swapping tasks in the same phase).
	if p.SwapFraction > 0 {
		swaps := int(p.SwapFraction * float64(len(out.Tasks)))
		for s := 0; s < swaps; s++ {
			i := r.IntN(len(out.Tasks))
			j := r.IntN(len(out.Tasks))
			if w.PhaseOf(i) == w.PhaseOf(j) {
				out.Tasks[i], out.Tasks[j] = out.Tasks[j], out.Tasks[i]
			}
		}
	}

	for i := range out.Tasks {
		c := out.Tasks[i].Consumption
		for _, k := range resources.Kinds() {
			factor := scale.Get(k)
			if p.Jitter > 0 {
				factor *= 1 - p.Jitter + 2*p.Jitter*r.Float64()
			}
			c = c.With(k, c.Get(k)*factor)
		}
		out.Tasks[i].Consumption = c
		out.Tasks[i].ID = i + 1
	}
	return out
}
