package workflow

import (
	"math"
	"math/rand/v2"

	"dynalloc/internal/dist"
	"dynalloc/internal/resources"
)

func ln(x float64) float64 { return math.Log(x) }

// Task counts of the two production workflows (Section III-B).
const (
	ColmenaEvaluateTasks    = 228  // evaluate_mpnn
	ColmenaComputeTasks     = 1000 // compute_atomization_energy
	TopEFTPreprocessTasks   = 363
	TopEFTProcessTasks      = 3994
	TopEFTAccumulateTasks   = 212
	topEFTAccumulateSpacing = TopEFTProcessTasks / TopEFTAccumulateTasks
)

// categorySampler bundles the per-kind samplers of one task category.
type categorySampler struct {
	name   string
	cores  dist.Sampler
	memory dist.Sampler
	disk   dist.Sampler
	time   dist.Sampler
}

func (cs categorySampler) task(id int, r *rand.Rand) Task {
	return Task{
		ID:       id,
		Category: cs.name,
		Consumption: resources.New(
			cs.cores.Sample(r),
			cs.memory.Sample(r),
			cs.disk.Sample(r),
			cs.time.Sample(r),
		),
	}
}

// ColmenaXTB synthesizes the ColmenaXTB molecular-design workflow of
// Section III: a phase of 228 evaluate_mpnn tasks (1.0-1.2 GB memory,
// ~1 core, ~10 MB disk) followed, after a barrier, by 1000
// compute_atomization_energy tasks (~200 MB memory, highly variable
// 0.9-3.6 cores, ~10 MB disk). The barrier reproduces the application
// logic: molecules are ranked first, then only top-ranked molecules are
// processed.
func ColmenaXTB(seed uint64) *Workflow {
	return Materialize(colmenaStream(seed))
}

// colmenaStream is the lazy core of ColmenaXTB: the evaluate phase streams
// first, then — past the barrier — the compute phase, all drawn from one
// sequential random stream so eager and lazy generation agree bit for bit.
func colmenaStream(seed uint64) *stream {
	r := dist.NewRand(seed)
	evaluate := categorySampler{
		name:   "evaluate_mpnn",
		cores:  dist.Normal{Mean: 1.0, Stddev: 0.08, Min: 0.5},
		memory: dist.Uniform{Lo: 1000, Hi: 1200},
		disk:   dist.Normal{Mean: 10, Stddev: 2, Min: 2},
		time:   dist.LogNormal{Mu: ln(90), Sigma: 0.35, Cap: 1800},
	}
	compute := categorySampler{
		name:   "compute_atomization_energy",
		cores:  dist.Uniform{Lo: 0.9, Hi: 3.6},
		memory: dist.Normal{Mean: 200, Stddev: 20, Min: 80},
		disk:   dist.Normal{Mean: 10, Stddev: 3, Min: 2},
		time:   dist.LogNormal{Mu: ln(300), Sigma: 0.5, Cap: 3600},
	}
	// Colmena's steering loop submits new work in response to returned
	// results rather than all at once; the window models that runtime task
	// generation.
	return &stream{
		name:     "colmena",
		barriers: []int{ColmenaEvaluateTasks},
		window:   50,
		n:        ColmenaEvaluateTasks + ColmenaComputeTasks,
		gen: func(i int) (Task, bool) {
			if i < ColmenaEvaluateTasks {
				return evaluate.task(i+1, r), true
			}
			return compute.task(i+1, r), true
		},
	}
}

// TopEFT synthesizes the TopEFT LHC-analysis workflow of Section III:
// 363 preprocessing tasks, then 3994 processing tasks interleaved with 212
// accumulating tasks (Coffea submits all preprocessing first, then divides
// events between processing tasks whose partial results accumulating tasks
// merge). Memory of processing tasks is the paper's puzzling two-cluster
// distribution (~450 MB and ~580 MB); preprocessing and accumulating sit
// near 180 MB; disk is the constant 306 MB the paper highlights; cores are
// mostly at or below one with occasional outliers up to three.
func TopEFT(seed uint64) *Workflow {
	return Materialize(topeftStream(seed))
}

// topeftStream is the lazy core of TopEFT. The interleave of processing and
// accumulating tasks is kept as sequential generator state (an accumulate
// task is emitted after every topEFTAccumulateSpacing-th processing task),
// reproducing the eager construction order exactly.
func topeftStream(seed uint64) *stream {
	r := dist.NewRand(seed)
	lightCores := dist.Outlier{
		Base: dist.Uniform{Lo: 0.2, Hi: 1.0},
		Tail: dist.Uniform{Lo: 1.5, Hi: 3.0},
		P:    0.02,
	}
	preprocess := categorySampler{
		name:   "preprocessing",
		cores:  lightCores,
		memory: dist.Normal{Mean: 180, Stddev: 12, Min: 80},
		disk:   dist.Constant{V: 306},
		time:   dist.LogNormal{Mu: ln(30), Sigma: 0.3, Cap: 600},
	}
	process := categorySampler{
		name: "processing",
		cores: dist.Outlier{
			Base: dist.Uniform{Lo: 0.5, Hi: 1.0},
			Tail: dist.Uniform{Lo: 1.5, Hi: 3.0},
			P:    0.03,
		},
		memory: dist.Mixture{Components: []dist.Component{
			{Weight: 0.45, Sampler: dist.Normal{Mean: 450, Stddev: 15, Min: 200}},
			{Weight: 0.55, Sampler: dist.Normal{Mean: 580, Stddev: 15, Min: 200}},
		}},
		disk: dist.Constant{V: 306},
		time: dist.LogNormal{Mu: ln(120), Sigma: 0.4, Cap: 2400},
	}
	accumulate := categorySampler{
		name:   "accumulating",
		cores:  lightCores,
		memory: dist.Normal{Mean: 185, Stddev: 12, Min: 80},
		disk:   dist.Constant{V: 306},
		time:   dist.LogNormal{Mu: ln(60), Sigma: 0.4, Cap: 1200},
	}

	processed, accumulated := 0, 0
	accumulateNext := false
	return &stream{
		name:     "topeft",
		barriers: []int{TopEFTPreprocessTasks},
		n:        TopEFTPreprocessTasks + TopEFTProcessTasks + TopEFTAccumulateTasks,
		gen: func(i int) (Task, bool) {
			id := i + 1
			switch {
			case i < TopEFTPreprocessTasks:
				return preprocess.task(id, r), true
			case accumulateNext:
				accumulateNext = false
				accumulated++
				return accumulate.task(id, r), true
			case processed < TopEFTProcessTasks:
				processed++
				if processed%topEFTAccumulateSpacing == 0 && accumulated < TopEFTAccumulateTasks {
					accumulateNext = true
				}
				return process.task(id, r), true
			case accumulated < TopEFTAccumulateTasks:
				// Trailing accumulates, when the spacing leaves some over.
				accumulated++
				return accumulate.task(id, r), true
			default:
				return Task{}, false
			}
		},
	}
}
