package workflow

import (
	"math"
	"math/rand/v2"

	"dynalloc/internal/dist"
	"dynalloc/internal/resources"
)

func ln(x float64) float64 { return math.Log(x) }

// Task counts of the two production workflows (Section III-B).
const (
	ColmenaEvaluateTasks    = 228  // evaluate_mpnn
	ColmenaComputeTasks     = 1000 // compute_atomization_energy
	TopEFTPreprocessTasks   = 363
	TopEFTProcessTasks      = 3994
	TopEFTAccumulateTasks   = 212
	topEFTAccumulateSpacing = TopEFTProcessTasks / TopEFTAccumulateTasks
)

// categorySampler bundles the per-kind samplers of one task category.
type categorySampler struct {
	name   string
	cores  dist.Sampler
	memory dist.Sampler
	disk   dist.Sampler
	time   dist.Sampler
}

func (cs categorySampler) task(id int, r *rand.Rand) Task {
	return Task{
		ID:       id,
		Category: cs.name,
		Consumption: resources.New(
			cs.cores.Sample(r),
			cs.memory.Sample(r),
			cs.disk.Sample(r),
			cs.time.Sample(r),
		),
	}
}

// ColmenaXTB synthesizes the ColmenaXTB molecular-design workflow of
// Section III: a phase of 228 evaluate_mpnn tasks (1.0-1.2 GB memory,
// ~1 core, ~10 MB disk) followed, after a barrier, by 1000
// compute_atomization_energy tasks (~200 MB memory, highly variable
// 0.9-3.6 cores, ~10 MB disk). The barrier reproduces the application
// logic: molecules are ranked first, then only top-ranked molecules are
// processed.
func ColmenaXTB(seed uint64) *Workflow {
	r := dist.NewRand(seed)
	evaluate := categorySampler{
		name:   "evaluate_mpnn",
		cores:  dist.Normal{Mean: 1.0, Stddev: 0.08, Min: 0.5},
		memory: dist.Uniform{Lo: 1000, Hi: 1200},
		disk:   dist.Normal{Mean: 10, Stddev: 2, Min: 2},
		time:   dist.LogNormal{Mu: ln(90), Sigma: 0.35, Cap: 1800},
	}
	compute := categorySampler{
		name:   "compute_atomization_energy",
		cores:  dist.Uniform{Lo: 0.9, Hi: 3.6},
		memory: dist.Normal{Mean: 200, Stddev: 20, Min: 80},
		disk:   dist.Normal{Mean: 10, Stddev: 3, Min: 2},
		time:   dist.LogNormal{Mu: ln(300), Sigma: 0.5, Cap: 3600},
	}
	// Colmena's steering loop submits new work in response to returned
	// results rather than all at once; the window models that runtime task
	// generation.
	w := &Workflow{Name: "colmena", Barriers: []int{ColmenaEvaluateTasks}, SubmitWindow: 50}
	id := 1
	for i := 0; i < ColmenaEvaluateTasks; i++ {
		w.Tasks = append(w.Tasks, evaluate.task(id, r))
		id++
	}
	for i := 0; i < ColmenaComputeTasks; i++ {
		w.Tasks = append(w.Tasks, compute.task(id, r))
		id++
	}
	return w
}

// TopEFT synthesizes the TopEFT LHC-analysis workflow of Section III:
// 363 preprocessing tasks, then 3994 processing tasks interleaved with 212
// accumulating tasks (Coffea submits all preprocessing first, then divides
// events between processing tasks whose partial results accumulating tasks
// merge). Memory of processing tasks is the paper's puzzling two-cluster
// distribution (~450 MB and ~580 MB); preprocessing and accumulating sit
// near 180 MB; disk is the constant 306 MB the paper highlights; cores are
// mostly at or below one with occasional outliers up to three.
func TopEFT(seed uint64) *Workflow {
	r := dist.NewRand(seed)
	lightCores := dist.Outlier{
		Base: dist.Uniform{Lo: 0.2, Hi: 1.0},
		Tail: dist.Uniform{Lo: 1.5, Hi: 3.0},
		P:    0.02,
	}
	preprocess := categorySampler{
		name:   "preprocessing",
		cores:  lightCores,
		memory: dist.Normal{Mean: 180, Stddev: 12, Min: 80},
		disk:   dist.Constant{V: 306},
		time:   dist.LogNormal{Mu: ln(30), Sigma: 0.3, Cap: 600},
	}
	process := categorySampler{
		name: "processing",
		cores: dist.Outlier{
			Base: dist.Uniform{Lo: 0.5, Hi: 1.0},
			Tail: dist.Uniform{Lo: 1.5, Hi: 3.0},
			P:    0.03,
		},
		memory: dist.Mixture{Components: []dist.Component{
			{Weight: 0.45, Sampler: dist.Normal{Mean: 450, Stddev: 15, Min: 200}},
			{Weight: 0.55, Sampler: dist.Normal{Mean: 580, Stddev: 15, Min: 200}},
		}},
		disk: dist.Constant{V: 306},
		time: dist.LogNormal{Mu: ln(120), Sigma: 0.4, Cap: 2400},
	}
	accumulate := categorySampler{
		name:   "accumulating",
		cores:  lightCores,
		memory: dist.Normal{Mean: 185, Stddev: 12, Min: 80},
		disk:   dist.Constant{V: 306},
		time:   dist.LogNormal{Mu: ln(60), Sigma: 0.4, Cap: 1200},
	}

	w := &Workflow{Name: "topeft", Barriers: []int{TopEFTPreprocessTasks}}
	id := 1
	for i := 0; i < TopEFTPreprocessTasks; i++ {
		w.Tasks = append(w.Tasks, preprocess.task(id, r))
		id++
	}
	accumulated := 0
	for i := 0; i < TopEFTProcessTasks; i++ {
		w.Tasks = append(w.Tasks, process.task(id, r))
		id++
		if (i+1)%topEFTAccumulateSpacing == 0 && accumulated < TopEFTAccumulateTasks {
			w.Tasks = append(w.Tasks, accumulate.task(id, r))
			id++
			accumulated++
		}
	}
	for accumulated < TopEFTAccumulateTasks {
		w.Tasks = append(w.Tasks, accumulate.task(id, r))
		id++
		accumulated++
	}
	return w
}
