package workflow

import (
	"errors"
	"testing"
)

// TestSourceByNameMatchesByName is the foundation of the streaming API: the
// lazy sources must emit exactly the task stream the eager generators
// return — same IDs, categories, and consumption bits — along with the same
// barrier and window metadata. (ByName is Materialize over these sources,
// so this guards the contract from both sides.)
func TestSourceByNameMatchesByName(t *testing.T) {
	for _, name := range Names() {
		for _, seed := range []uint64{0, 1, 99} {
			eager, err := ByName(name, 300, seed)
			if err != nil {
				t.Fatal(err)
			}
			src, err := SourceByName(name, 300, seed)
			if err != nil {
				t.Fatal(err)
			}
			lazy := Materialize(src)
			if lazy.Name != eager.Name || lazy.SubmitWindow != eager.SubmitWindow {
				t.Fatalf("%s/seed%d: metadata diverged: %q/%d vs %q/%d",
					name, seed, lazy.Name, lazy.SubmitWindow, eager.Name, eager.SubmitWindow)
			}
			if len(lazy.Barriers) != len(eager.Barriers) {
				t.Fatalf("%s/seed%d: barriers diverged: %v vs %v", name, seed, lazy.Barriers, eager.Barriers)
			}
			for i := range lazy.Barriers {
				if lazy.Barriers[i] != eager.Barriers[i] {
					t.Fatalf("%s/seed%d: barrier %d diverged", name, seed, i)
				}
			}
			if len(lazy.Tasks) != len(eager.Tasks) {
				t.Fatalf("%s/seed%d: %d vs %d tasks", name, seed, len(lazy.Tasks), len(eager.Tasks))
			}
			for i := range lazy.Tasks {
				if lazy.Tasks[i] != eager.Tasks[i] {
					t.Fatalf("%s/seed%d: task %d diverged: %+v vs %+v",
						name, seed, i, lazy.Tasks[i], eager.Tasks[i])
				}
			}
		}
	}
}

func TestSourceByNameUnknown(t *testing.T) {
	_, err := SourceByName("nope", 0, 0)
	if !errors.Is(err, ErrUnknownWorkflow) {
		t.Errorf("err = %v, want ErrUnknownWorkflow", err)
	}
}

func TestCursorIsIndependentPerStream(t *testing.T) {
	w, err := Synthetic("normal", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Stream(), w.Stream()
	ta, _ := a.Next()
	tb, ok := b.Next()
	if !ok || ta != tb {
		t.Fatal("fresh cursors must restart from the beginning")
	}
	n := 1
	for {
		if _, ok := a.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("cursor yielded %d tasks", n)
	}
	if _, ok := a.Next(); ok {
		t.Error("exhausted cursor yielded a task")
	}
	if b.SubmitWindow() != w.SubmitWindow || b.Name() != w.Name {
		t.Error("cursor metadata diverged")
	}
}

func TestNextBarrierContract(t *testing.T) {
	w := &Workflow{Name: "x", Barriers: []int{3, 7, 9}}
	c := w.Stream()
	for _, tc := range []struct{ after, want int }{
		{0, 3}, {2, 3}, {3, 7}, {6, 7}, {7, 9}, {8, 9}, {9, -1}, {100, -1},
	} {
		if got := c.NextBarrier(tc.after); got != tc.want {
			t.Errorf("NextBarrier(%d) = %d, want %d", tc.after, got, tc.want)
		}
	}
	if got := (&Workflow{}).Stream().NextBarrier(0); got != -1 {
		t.Errorf("barrier-free NextBarrier(0) = %d", got)
	}
}

func TestWithSubmitWindow(t *testing.T) {
	src, err := SourceByName("uniform", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	win := WithSubmitWindow(src, 4)
	if win.SubmitWindow() != 4 {
		t.Errorf("window = %d", win.SubmitWindow())
	}
	if win.Name() != src.Name() {
		t.Error("name not forwarded")
	}
	got := Materialize(win)
	if got.SubmitWindow != 4 || len(got.Tasks) != 20 {
		t.Errorf("materialized: window=%d tasks=%d", got.SubmitWindow, len(got.Tasks))
	}
}
