// Package workflow defines the task model and generates the seven evaluation
// workloads of the paper: the five synthetic workflows of Section V-B
// (Normal, Uniform, Exponential, Bimodal, Phasing Trimodal; 1000 tasks each)
// and synthetic reconstructions of the two production workflows of
// Section III (ColmenaXTB and TopEFT), whose per-category resource
// distributions, task counts, and phase structure follow the paper's
// Figure 2 description.
//
// A Task carries its true resource consumption 4-tuple (c, m, d, t), which
// by the paper's assumption 1 is hidden from the allocator until the task
// completes; only the simulator and the oracle may look at it.
package workflow

import (
	"errors"
	"fmt"
	"sort"

	"dynalloc/internal/names"
	"dynalloc/internal/resources"
)

// ErrUnknownWorkflow is returned (wrapped) when a workload name does not
// match any evaluation workload. Match it with errors.Is.
var ErrUnknownWorkflow = errors.New("workflow: unknown workload")

// Task is one unit of work. Consumption holds the task's peak cores, memory
// (MB), disk (MB), and runtime (s) — the hidden 4-tuple of Section II-B.
type Task struct {
	ID          int
	Category    string
	Consumption resources.Vector
}

// Runtime returns the task's execution duration t in seconds.
func (t Task) Runtime() float64 { return t.Consumption.Get(resources.Time) }

// Peak returns the task's peak consumption with the time dimension zeroed,
// i.e. the (c, m, d) triple the waste metrics integrate over the runtime.
func (t Task) Peak() resources.Vector {
	return t.Consumption.With(resources.Time, t.Runtime())
}

// Workflow is a generated workload: tasks in submission order plus the phase
// barriers that reproduce the application's structure (e.g. ColmenaXTB only
// submits compute_atomization_energy tasks after every evaluate_mpnn task
// has returned).
type Workflow struct {
	Name  string
	Tasks []Task
	// Barriers lists ascending task indices b such that tasks at index >= b
	// may only start after every task at index < b has completed.
	Barriers []int
	// SubmitWindow models runtime task generation: at most
	// completed + SubmitWindow tasks have been submitted at any instant, so
	// a task is only dispatchable once enough earlier tasks have finished.
	// Zero means every task is submitted up front (Coffea-style); Colmena's
	// steering loop submits work in response to results and uses a small
	// window.
	SubmitWindow int
}

// Len returns the number of tasks.
func (w *Workflow) Len() int { return len(w.Tasks) }

// Categories returns the distinct task categories in first-appearance order.
func (w *Workflow) Categories() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range w.Tasks {
		if !seen[t.Category] {
			seen[t.Category] = true
			out = append(out, t.Category)
		}
	}
	return out
}

// CategoryCounts returns the number of tasks per category.
func (w *Workflow) CategoryCounts() map[string]int {
	out := make(map[string]int)
	for _, t := range w.Tasks {
		out[t.Category]++
	}
	return out
}

// MaxConsumption returns the element-wise maximum consumption across tasks;
// a workload is feasible on a worker shape iff this fits within it.
func (w *Workflow) MaxConsumption() resources.Vector {
	var m resources.Vector
	for _, t := range w.Tasks {
		m = m.Max(t.Consumption)
	}
	return m
}

// PhaseOf returns the phase index (0-based) the given task index belongs to,
// according to the barrier list.
func (w *Workflow) PhaseOf(index int) int {
	return sort.SearchInts(w.Barriers, index+1)
}

// Validate checks structural invariants: 1-based contiguous IDs, positive
// runtimes, non-negative consumptions, ascending in-range barriers, and
// feasibility on the given worker shape.
func (w *Workflow) Validate(worker resources.Vector) error {
	for i, t := range w.Tasks {
		if t.ID != i+1 {
			return fmt.Errorf("workflow %s: task %d has ID %d, want %d", w.Name, i, t.ID, i+1)
		}
		if t.Runtime() <= 0 {
			return fmt.Errorf("workflow %s: task %d has non-positive runtime", w.Name, t.ID)
		}
		if !t.Consumption.NonNegative() {
			return fmt.Errorf("workflow %s: task %d has negative consumption", w.Name, t.ID)
		}
		if !t.Peak().With(resources.Time, 0).FitsWithin(worker) {
			return fmt.Errorf("workflow %s: task %d consumption %v exceeds worker %v",
				w.Name, t.ID, t.Consumption, worker)
		}
		if t.Category == "" {
			return fmt.Errorf("workflow %s: task %d has empty category", w.Name, t.ID)
		}
	}
	prev := 0
	for _, b := range w.Barriers {
		if b <= prev || b >= len(w.Tasks) {
			return fmt.Errorf("workflow %s: invalid barrier %d", w.Name, b)
		}
		prev = b
	}
	return nil
}

// Names returns the seven evaluation workload names in the order the
// paper's figures present them.
func Names() []string {
	return []string{"normal", "uniform", "exponential", "bimodal", "trimodal", "colmena", "topeft"}
}

// SyntheticNames returns the five synthetic workload names.
func SyntheticNames() []string {
	return []string{"normal", "uniform", "exponential", "bimodal", "trimodal"}
}

// Parse validates a workload name against Names(), following the shared
// Names()/Parse() registry contract: the returned error wraps
// ErrUnknownWorkflow and lists the valid names.
func Parse(name string) (string, error) {
	return names.Parse(name, Names(), func(s string) string { return s }, ErrUnknownWorkflow)
}

// unknownWorkflowError builds the registry miss error for name.
func unknownWorkflowError(name string) error {
	_, err := Parse(name)
	return err
}

// ByName generates any of the seven evaluation workloads. n is the task
// count for the synthetic workflows (0 means the paper's 1000); the
// production workloads have fixed task counts from the paper. For
// workloads too large to hold in memory, SourceByName returns the same
// task streams lazily.
func ByName(name string, n int, seed uint64) (*Workflow, error) {
	switch name {
	case "normal", "uniform", "exponential", "bimodal", "trimodal":
		return Synthetic(name, n, seed)
	case "colmena":
		return ColmenaXTB(seed), nil
	case "topeft":
		return TopEFT(seed), nil
	default:
		return nil, unknownWorkflowError(name)
	}
}
