// Package stats provides the small set of summary statistics the trace
// tooling and experiment harnesses need: means, standard deviations,
// quantiles, and five-number summaries of float series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation, or 0 for fewer than two
// samples.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It sorts a copy and leaves the input untouched.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a five-number-plus summary of a series.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
}

// Summarize computes the summary of a series.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Min:    sorted[0],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f p25=%.2f med=%.2f p75=%.2f max=%.2f mean=%.2f sd=%.2f",
		s.N, s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean, s.Stddev)
}
