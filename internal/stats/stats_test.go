package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5},
		{0.1, 1.4}, // interpolation: pos = 0.4
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty string rendering")
	}
	var empty Summary
	if Summarize(nil) != empty {
		t.Error("empty summarize should be zero")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rand.New(rand.NewPCG(seed, 4))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		s := Summarize(xs)
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
