package vine

import (
	"math"
	"testing"

	"dynalloc/internal/workflow"
)

func TestStageAndCacheHit(t *testing.T) {
	l := NewLayer()
	l.TransferMBps = 100
	l.SetInputs(1, []File{{Name: "env", SizeMB: 500}, {Name: "d1", SizeMB: 50}})
	l.SetInputs(2, []File{{Name: "env", SizeMB: 500}, {Name: "d2", SizeMB: 30}})

	// Cold worker: everything transfers.
	if got := l.Stage(0, 1); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("cold stage = %v s, want 5.5", got)
	}
	// Warm worker: env is cached, only d2 transfers.
	if got := l.Stage(0, 2); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("warm stage = %v s, want 0.3", got)
	}
	// Fully cached task restages for free.
	if got := l.Stage(0, 1); got != 0 {
		t.Errorf("hot stage = %v s, want 0", got)
	}
	if got := l.CacheBytes(0); got != 580 {
		t.Errorf("cache bytes = %v, want 580", got)
	}
}

func TestCachedMBScoresLocality(t *testing.T) {
	l := NewLayer()
	l.SetInputs(1, []File{{Name: "env", SizeMB: 400}, {Name: "d1", SizeMB: 20}})
	l.SetInputs(2, []File{{Name: "env", SizeMB: 400}, {Name: "d2", SizeMB: 20}})
	l.Stage(7, 1)
	if got := l.CachedMB(7, 2); got != 400 {
		t.Errorf("CachedMB = %v, want 400 (shared env)", got)
	}
	if got := l.CachedMB(8, 2); got != 0 {
		t.Errorf("cold worker CachedMB = %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	l := NewLayer()
	l.CacheMB = 100
	l.SetInputs(1, []File{{Name: "a", SizeMB: 60}})
	l.SetInputs(2, []File{{Name: "b", SizeMB: 60}})
	l.Stage(0, 1) // caches a
	l.Stage(0, 2) // evicts a to fit b
	if l.CachedMB(0, 1) != 0 {
		t.Error("LRU victim still cached")
	}
	if l.CachedMB(0, 2) != 60 {
		t.Error("new file not cached")
	}
	// A file bigger than the whole cache is streamed, not cached.
	l.SetInputs(3, []File{{Name: "huge", SizeMB: 500}})
	delay := l.Stage(0, 3)
	if delay <= 0 {
		t.Error("huge file should still cost transfer time")
	}
	if l.CachedMB(0, 3) != 0 {
		t.Error("uncacheable file was cached")
	}
}

func TestLRUOrderRespectsTouches(t *testing.T) {
	l := NewLayer()
	l.CacheMB = 120
	l.SetInputs(1, []File{{Name: "a", SizeMB: 60}})
	l.SetInputs(2, []File{{Name: "b", SizeMB: 60}})
	l.SetInputs(3, []File{{Name: "c", SizeMB: 60}})
	l.Stage(0, 1)
	l.Stage(0, 2)
	l.Stage(0, 1) // touch a: now b is the LRU
	l.Stage(0, 3) // evicts b
	if l.CachedMB(0, 1) != 60 {
		t.Error("recently touched file evicted")
	}
	if l.CachedMB(0, 2) != 0 {
		t.Error("LRU file survived")
	}
}

func TestDropWorker(t *testing.T) {
	l := NewLayer()
	l.SetInputs(1, []File{{Name: "a", SizeMB: 10}})
	l.Stage(3, 1)
	l.DropWorker(3)
	if l.CacheBytes(3) != 0 || l.CachedMB(3, 1) != 0 {
		t.Error("dropped worker retained cache")
	}
}

func TestZeroBandwidth(t *testing.T) {
	l := NewLayer()
	l.TransferMBps = 0
	l.SetInputs(1, []File{{Name: "a", SizeMB: 10}})
	if got := l.Stage(0, 1); got != 0 {
		t.Errorf("zero-bandwidth stage = %v", got)
	}
}

func TestAttachShape(t *testing.T) {
	w, err := workflow.ByName("topeft", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayer()
	Attach(l, w, 2)
	// Every task has an env file shared with its category plus a unique
	// data file.
	envSeen := map[string]float64{}
	for _, task := range w.Tasks {
		inputs := l.Inputs(task.ID)
		if len(inputs) != 2 {
			t.Fatalf("task %d has %d inputs", task.ID, len(inputs))
		}
		env := inputs[0]
		if envSeen[task.Category] == 0 {
			envSeen[task.Category] = env.SizeMB
		} else if envSeen[task.Category] != env.SizeMB {
			t.Fatalf("category %s env size changed", task.Category)
		}
		if env.SizeMB < 200 || env.SizeMB > 800 {
			t.Fatalf("env size %v out of range", env.SizeMB)
		}
		if inputs[1].SizeMB < 5 || inputs[1].SizeMB > 50 {
			t.Fatalf("data size %v out of range", inputs[1].SizeMB)
		}
		if l.InputMB(task.ID) != env.SizeMB+inputs[1].SizeMB {
			t.Fatal("InputMB mismatch")
		}
	}
	if len(envSeen) != 3 {
		t.Errorf("expected 3 category env files, got %d", len(envSeen))
	}
	// Deterministic.
	l2 := NewLayer()
	Attach(l2, w, 2)
	if l2.InputMB(1) != l.InputMB(1) {
		t.Error("Attach not deterministic")
	}
}
