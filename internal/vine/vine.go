// Package vine models the in-cluster data layer of TaskVine (the successor
// of Work Queue that the paper's acknowledgements point to): tasks declare
// input files, workers keep an LRU cache of files they have already
// fetched, staging a missing file costs transfer time, and the scheduler
// can prefer workers that already hold a task's inputs.
//
// The paper names "data locality on workers" as one source of the arbitrary
// task-ordering stochasticity a robust allocator must tolerate
// (Section II-D1); this layer makes that stochasticity concrete in the
// simulator: locality-aware placement changes which tasks run where and
// when, while the allocator's efficiency should remain stable.
package vine

import (
	"fmt"
	"sort"

	"dynalloc/internal/dist"
	"dynalloc/internal/workflow"
)

// File is one named immutable input of a task.
type File struct {
	Name   string
	SizeMB float64
}

// Layer holds the file attachments of a workload and the per-worker caches
// of a running simulation. It is not safe for concurrent use; the
// discrete-event simulator is single-threaded.
type Layer struct {
	// TransferMBps is the staging bandwidth in MB/s (default 100).
	TransferMBps float64
	// CacheMB bounds each worker's file cache (default 16 GB); least
	// recently used files are evicted to make room.
	CacheMB float64

	inputs map[int][]File // task ID -> inputs
	caches map[int]*cache // worker ID -> cache
}

// NewLayer creates an empty data layer.
func NewLayer() *Layer {
	return &Layer{
		TransferMBps: 100,
		CacheMB:      16 * 1024,
		inputs:       make(map[int][]File),
		caches:       make(map[int]*cache),
	}
}

// SetInputs declares the input files of a task.
func (l *Layer) SetInputs(taskID int, files []File) {
	l.inputs[taskID] = files
}

// Inputs returns a task's declared inputs.
func (l *Layer) Inputs(taskID int) []File { return l.inputs[taskID] }

// InputMB returns the total input volume of a task.
func (l *Layer) InputMB(taskID int) float64 {
	total := 0.0
	for _, f := range l.inputs[taskID] {
		total += f.SizeMB
	}
	return total
}

// CachedMB returns how many MB of a task's inputs a worker already holds —
// the locality score placement uses.
func (l *Layer) CachedMB(workerID, taskID int) float64 {
	c, ok := l.caches[workerID]
	if !ok {
		return 0
	}
	hit := 0.0
	for _, f := range l.inputs[taskID] {
		if c.has(f.Name) {
			hit += f.SizeMB
		}
	}
	return hit
}

// Stage transfers a task's missing inputs to a worker, updates the cache,
// and returns the staging delay in seconds.
func (l *Layer) Stage(workerID, taskID int) float64 {
	c, ok := l.caches[workerID]
	if !ok {
		c = newCache(l.CacheMB)
		l.caches[workerID] = c
	}
	missing := 0.0
	for _, f := range l.inputs[taskID] {
		if c.has(f.Name) {
			c.touch(f.Name)
			continue
		}
		missing += f.SizeMB
		c.put(f)
	}
	if l.TransferMBps <= 0 {
		return 0
	}
	return missing / l.TransferMBps
}

// DropWorker forgets a worker's cache (eviction: the node is gone).
func (l *Layer) DropWorker(workerID int) { delete(l.caches, workerID) }

// CacheBytes returns the MB currently cached on a worker.
func (l *Layer) CacheBytes(workerID int) float64 {
	if c, ok := l.caches[workerID]; ok {
		return c.used
	}
	return 0
}

// cache is a small LRU keyed by file name.
type cache struct {
	cap   float64
	used  float64
	files map[string]*entry
	tick  int64
}

type entry struct {
	file File
	at   int64
}

func newCache(capMB float64) *cache {
	return &cache{cap: capMB, files: make(map[string]*entry)}
}

func (c *cache) has(name string) bool {
	_, ok := c.files[name]
	return ok
}

func (c *cache) touch(name string) {
	if e, ok := c.files[name]; ok {
		c.tick++
		e.at = c.tick
	}
}

func (c *cache) put(f File) {
	if f.SizeMB > c.cap {
		return // never cacheable; streamed through
	}
	c.tick++
	if e, ok := c.files[f.Name]; ok {
		e.at = c.tick
		return
	}
	for c.used+f.SizeMB > c.cap {
		c.evictLRU()
	}
	c.files[f.Name] = &entry{file: f, at: c.tick}
	c.used += f.SizeMB
}

func (c *cache) evictLRU() {
	var victim string
	var oldest int64 = 1<<62 - 1
	for name, e := range c.files {
		if e.at < oldest || (e.at == oldest && name < victim) {
			victim, oldest = name, e.at
		}
	}
	if victim == "" {
		return
	}
	c.used -= c.files[victim].file.SizeMB
	delete(c.files, victim)
}

// Attach generates a synthetic file layout for a workload in the shape of
// the paper's applications: every task of a category shares that category's
// software environment file (hundreds of MB, fetched once per worker and
// then cached) plus a per-task unique data file sized relative to the
// task's disk consumption.
func Attach(l *Layer, w *workflow.Workflow, seed uint64) {
	r := dist.NewRand(seed)
	envSize := make(map[string]float64)
	cats := w.Categories()
	sort.Strings(cats)
	for _, cat := range cats {
		envSize[cat] = 200 + r.Float64()*600
	}
	for _, t := range w.Tasks {
		unique := 5 + r.Float64()*45
		l.SetInputs(t.ID, []File{
			{Name: "env-" + t.Category, SizeMB: envSize[t.Category]},
			{Name: fmt.Sprintf("data-%d", t.ID), SizeMB: unique},
		})
	}
}
