package devent

import (
	"testing"
)

// oracleEvent mirrors one scheduled event in the reference model: a flat
// list re-scanned (and re-sorted conceptually) on every fire, the simplest
// possible implementation of (time, seq) ordering.
type oracleEvent struct {
	at        float64
	seq       int
	id        int
	cancelled bool
	fired     bool
}

// oracleNext returns the index of the earliest live event by (time, seq),
// or -1 when none remain.
func oracleNext(events []oracleEvent) int {
	best := -1
	for i := range events {
		ev := &events[i]
		if ev.cancelled || ev.fired {
			continue
		}
		if best == -1 || ev.at < events[best].at ||
			(ev.at == events[best].at && ev.seq < events[best].seq) {
			best = i
		}
	}
	return best
}

// FuzzEngineMatchesOracle drives random schedule/cancel/fire sequences
// through the 4-ary indexed heap and checks every observable — firing
// order (including same-instant ties), Cancel results, Pending counts —
// against the brute-force sort-by-(time,seq) oracle. Both the typed and
// the closure scheduling path are exercised, so the event pool recycles
// slots across paths under fuzz.
func FuzzEngineMatchesOracle(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 3, 3})
	f.Add([]byte{0, 0, 0, 0, 2, 0, 2, 1, 3, 3, 3})
	f.Add([]byte{1, 5, 1, 5, 1, 5, 3, 2, 0, 3})          // heavy same-instant ties
	f.Add([]byte{0, 9, 2, 0, 0, 9, 2, 0, 0, 9, 2, 0, 3}) // cancel-then-reuse churn
	f.Add([]byte{3, 3, 2, 7, 0, 0, 3})                   // fire/cancel on empty state

	f.Fuzz(func(t *testing.T, data []byte) {
		var e Engine
		var fired []int
		e.SetHandler(func(_ Kind, p Payload) { fired = append(fired, p.A) })

		var oracle []oracleEvent
		var oracleFired []int
		var handles []Handle
		nextID := 0

		// First byte: size of an up-front Preload batch (possibly 0), with
		// times taken from the following bytes — usually unsorted, so both
		// the heapify and the sorted fast path get fuzzed.
		if len(data) > 0 {
			k := int(data[0]) % 9
			data = data[1:]
			var batch []Scheduled
			for i := 0; i < k && i < len(data); i++ {
				at := float64(data[i]%8) * 0.5
				batch = append(batch, Scheduled{Kind: Kind(i % 3), At: at, P: Payload{A: nextID}})
				oracle = append(oracle, oracleEvent{at: at, seq: len(oracle), id: nextID})
				nextID++
			}
			if len(batch) > 0 {
				data = data[len(batch):]
				e.Preload(batch)
				// Preload hands out no handles; pad so handle indices keep
				// matching oracle indices for the cancel op.
				handles = make([]Handle, len(batch))
			}
		}

		fireOne := func() {
			i := oracleNext(oracle)
			stepped := e.Step()
			if (i >= 0) != stepped {
				t.Fatalf("Step = %v with %d live oracle events", stepped, e.Pending())
			}
			if i >= 0 {
				oracle[i].fired = true
				oracleFired = append(oracleFired, oracle[i].id)
			}
		}

		for pos := 0; pos < len(data); pos++ {
			op := data[pos] % 4
			switch op {
			case 0, 1: // schedule (typed on op 0, closure on op 1)
				pos++
				if pos >= len(data) {
					break
				}
				// Quantized deltas make same-instant ties common; delta 0
				// schedules at the current instant.
				at := e.Now() + float64(data[pos]%8)*0.5
				id := nextID
				nextID++
				var h Handle
				if op == 0 {
					h = e.Schedule(at, Kind(id%3), Payload{A: id})
				} else {
					h = e.At(at, func() { fired = append(fired, id) })
				}
				handles = append(handles, h)
				oracle = append(oracle, oracleEvent{at: at, seq: len(oracle), id: id})
			case 2: // cancel a previously issued handle (live, fired, or stale)
				pos++
				if pos >= len(data) || len(handles) == 0 {
					break
				}
				j := int(data[pos]) % len(handles)
				// Preload hands out no handles (zero Handle padding), and a
				// zero Handle is always inert.
				want := handles[j] != (Handle{}) && !oracle[j].cancelled && !oracle[j].fired
				if got := e.Cancel(handles[j]); got != want {
					t.Fatalf("Cancel(handle %d) = %v, oracle wants %v", j, got, want)
				}
				if want {
					oracle[j].cancelled = true
				}
			case 3: // fire the next event
				fireOne()
			}
			if live := len(oracle) - countDead(oracle); e.Pending() != live {
				t.Fatalf("Pending = %d, oracle has %d live events", e.Pending(), live)
			}
		}
		// Drain both worlds and compare the complete firing sequence.
		for oracleNext(oracle) >= 0 || e.Pending() > 0 {
			fireOne()
		}
		if len(fired) != len(oracleFired) {
			t.Fatalf("engine fired %d events, oracle %d", len(fired), len(oracleFired))
		}
		for i := range fired {
			if fired[i] != oracleFired[i] {
				t.Fatalf("firing order diverged at %d: engine %v, oracle %v", i, fired, oracleFired)
			}
		}
	})
}

func countDead(events []oracleEvent) int {
	n := 0
	for i := range events {
		if events[i].cancelled || events[i].fired {
			n++
		}
	}
	return n
}
