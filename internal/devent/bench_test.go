package devent

import "testing"

// The event-engine micro-benchmarks isolate the three costs the simulator
// pays per event: steady-state schedule/fire churn through the 4-ary heap,
// cancellation via the maintained heap index, and the O(n) heapify
// bulk-load of an up-front schedule. `make bench` runs these alongside the
// simulator scenarios and records them in BENCH_sim.json; the typed paths
// must stay at 0 allocs/op.

// lcg is a tiny deterministic generator so benchmark schedules are varied
// but reproducible without math/rand in the timed loop.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>40) / float64(1<<24)
}

// BenchmarkDeventScheduleFireChurn holds a 1024-event future list and, per
// op, schedules one typed event at a pseudo-random offset and fires the
// earliest — the simulator's steady-state pattern.
func BenchmarkDeventScheduleFireChurn(b *testing.B) {
	var e Engine
	e.SetHandler(func(Kind, Payload) {})
	r := lcg(1)
	for i := 0; i < 1024; i++ {
		e.ScheduleAfter(r.next()*100, 0, Payload{A: i})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(r.next()*100, 0, Payload{A: i})
		e.Step()
	}
}

// BenchmarkDeventCancelHeavy mirrors an eviction-heavy run: per op it
// schedules two events, cancels one through its handle (an indexed heap
// removal), and fires the other.
func BenchmarkDeventCancelHeavy(b *testing.B) {
	var e Engine
	e.SetHandler(func(Kind, Payload) {})
	r := lcg(2)
	for i := 0; i < 1024; i++ {
		e.ScheduleAfter(r.next()*100, 0, Payload{A: i})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.ScheduleAfter(r.next()*100, 0, Payload{A: i})
		e.ScheduleAfter(r.next()*100, 0, Payload{A: i})
		e.Cancel(h)
		e.Step()
	}
}

// BenchmarkDeventBulkLoad builds the future-event list for a 4096-entry
// arrival-style schedule, comparing the O(n) Preload heapify against n
// individual pushes. Only the load phase is timed; the untimed drain
// resets the engine between iterations, so the steady state measures pure
// heap construction on a reused pool.
func BenchmarkDeventBulkLoad(b *testing.B) {
	const n = 4096
	items := make([]Scheduled, n)
	r := lcg(3)
	at := 0.0
	for i := range items {
		// Arrival schedules are sorted by time (the Model contract), so the
		// bulk-load input is ascending with random gaps.
		at += r.next()
		items[i] = Scheduled{At: at, P: Payload{A: i}}
	}
	// Draining advances the clock, so each iteration rebases the schedule
	// onto the current instant (both variants pay the same addition).
	b.Run("preload", func(b *testing.B) {
		var e Engine
		e.SetHandler(func(Kind, Payload) {})
		scratch := make([]Scheduled, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			base := e.Now()
			for j, it := range items {
				it.At += base
				scratch[j] = it
			}
			b.StartTimer()
			e.Preload(scratch)
			b.StopTimer()
			e.Run()
			b.StartTimer()
		}
	})
	b.Run("push-loop", func(b *testing.B) {
		var e Engine
		e.SetHandler(func(Kind, Payload) {})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			base := e.Now()
			for _, it := range items {
				e.Schedule(base+it.At, it.Kind, it.P)
			}
			b.StopTimer()
			e.Run()
			b.StartTimer()
		}
	})
}
