package devent

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var e Engine
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("fired %d events, want 5", len(order))
	}
	if e.Now() != 5 {
		t.Errorf("final time = %v, want 5", e.Now())
	}
}

func TestSimultaneousEventsFireInSchedulingOrder(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break broken: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.At(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v, want [10 15]", times)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Error("Cancelled() should be true")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelInterleaved(t *testing.T) {
	var e Engine
	var fired []string
	a := e.At(1, func() { fired = append(fired, "a") })
	e.At(2, func() { fired = append(fired, "b") })
	c := e.At(3, func() { fired = append(fired, "c") })
	_ = a
	// Cancel c from within b.
	e.At(2.5, func() { c.Cancel() })
	e.Run()
	want := []string{"a", "b"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %v, want events at 1..3", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 || e.Now() != 10 {
		t.Errorf("after second RunUntil: fired=%v now=%v", fired, e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

// Property: an arbitrary schedule of events always fires in non-decreasing
// time order and the clock never goes backwards.
func TestMonotonicClock(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := rand.New(rand.NewPCG(seed, 3))
		var e Engine
		last := -1.0
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			e.After(r.Float64()*10, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if depth > 0 && r.Float64() < 0.3 {
					schedule(depth - 1)
				}
			})
		}
		for i := 0; i < n; i++ {
			schedule(2)
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
