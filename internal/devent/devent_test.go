package devent

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var e Engine
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("fired %d events, want 5", len(order))
	}
	if e.Now() != 5 {
		t.Errorf("final time = %v, want 5", e.Now())
	}
}

func TestSimultaneousEventsFireInSchedulingOrder(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break broken: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.At(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v, want [10 15]", times)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(1, func() { fired = true })
	if !e.Cancel(ev) {
		t.Error("Cancel on a live event should report true")
	}
	if e.Live(ev) {
		t.Error("Live should be false after Cancel")
	}
	if e.Cancel(ev) {
		t.Error("second Cancel should be a no-op")
	}
	if e.Cancels() != 1 {
		t.Errorf("Cancels = %d, want 1", e.Cancels())
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelInterleaved(t *testing.T) {
	var e Engine
	var fired []string
	a := e.At(1, func() { fired = append(fired, "a") })
	e.At(2, func() { fired = append(fired, "b") })
	c := e.At(3, func() { fired = append(fired, "c") })
	_ = a
	// Cancel c from within b.
	e.At(2.5, func() { e.Cancel(c) })
	e.Run()
	want := []string{"a", "b"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %v, want events at 1..3", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 || e.Now() != 10 {
		t.Errorf("after second RunUntil: fired=%v now=%v", fired, e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

// Pending must report the live event count: a cancelled event leaves the
// queue immediately instead of lingering as a tombstone (the previous
// engine counted cancelled-but-unreaped events).
func TestPendingExcludesCancelled(t *testing.T) {
	var e Engine
	h1 := e.At(1, func() {})
	e.At(2, func() {})
	e.At(3, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	e.Cancel(h1)
	if e.Pending() != 2 {
		t.Errorf("Pending after cancel = %d, want 2 (live events only)", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending after drain = %d, want 0", e.Pending())
	}
}

// Typed events must deliver their kind and full payload through the single
// owner handler, in (time, seq) order.
func TestTypedEventsDeliverPayload(t *testing.T) {
	var e Engine
	type delivery struct {
		kind Kind
		p    Payload
	}
	var got []delivery
	e.SetHandler(func(kind Kind, p Payload) { got = append(got, delivery{kind, p}) })
	e.Schedule(2, 7, Payload{A: 1, B: 2, F: 3.5, Flag: true})
	e.Schedule(1, 9, Payload{A: -4})
	e.Run()
	want := []delivery{
		{9, Payload{A: -4}},
		{7, Payload{A: 1, B: 2, F: 3.5, Flag: true}},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("deliveries = %+v, want %+v", got, want)
	}
}

func TestScheduleWithoutHandlerPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("Schedule without SetHandler should panic")
		}
	}()
	e.Schedule(1, 0, Payload{})
}

// Preload must fire its batch exactly as if each entry had been scheduled
// individually: time order, with slice order breaking same-instant ties,
// and events pushed afterwards sequence after the batch.
func TestPreloadFiresInScheduleOrder(t *testing.T) {
	var e Engine
	var got []int
	e.SetHandler(func(_ Kind, p Payload) { got = append(got, p.A) })
	e.Preload([]Scheduled{
		{At: 3, P: Payload{A: 0}},
		{At: 1, P: Payload{A: 1}},
		{At: 1, P: Payload{A: 2}}, // same instant: must follow A=1
		{At: 2, P: Payload{A: 3}},
		{At: 0, P: Payload{A: 4}},
	})
	e.Schedule(1, 0, Payload{A: 5}) // later seq: fires after both t=1 batch entries
	e.Run()
	want := []int{4, 1, 2, 5, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestPreloadOnNonEmptyQueuePanics(t *testing.T) {
	var e Engine
	e.SetHandler(func(Kind, Payload) {})
	e.Schedule(1, 0, Payload{})
	defer func() {
		if recover() == nil {
			t.Error("Preload on a non-empty queue should panic")
		}
	}()
	e.Preload([]Scheduled{{At: 2}})
}

// TestStaleHandleCannotCancelRecycledSlot is the generation-counter
// regression: after an event fires (or is cancelled) its slot returns to
// the pool and may be handed to a new event. Cancelling through the old
// handle must not touch the new occupant.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	var e Engine
	first := e.At(1, func() {})
	e.Run() // fires; slot 0 is recycled
	secondFired := false
	second := e.At(2, func() { secondFired = true })
	if second.slot != first.slot {
		t.Fatalf("test premise broken: slot not recycled (first %d, second %d)", first.slot, second.slot)
	}
	if e.Cancel(first) {
		t.Error("stale handle cancelled the slot's new occupant")
	}
	if !e.Live(second) {
		t.Error("new occupant no longer live after stale Cancel")
	}
	e.Run()
	if !secondFired {
		t.Error("new occupant never fired")
	}

	// Same via the cancellation path: a handle whose event was *cancelled*
	// (not fired) must also go stale once the slot is reused.
	third := e.At(3, func() {})
	e.Cancel(third)
	fourthFired := false
	fourth := e.At(4, func() { fourthFired = true })
	if fourth.slot != third.slot {
		t.Fatalf("test premise broken: slot not recycled (third %d, fourth %d)", third.slot, fourth.slot)
	}
	if e.Cancel(third) {
		t.Error("stale handle (cancelled origin) cancelled the new occupant")
	}
	e.Run()
	if !fourthFired {
		t.Error("new occupant never fired after stale Cancel attempt")
	}
}

func TestTimeOf(t *testing.T) {
	var e Engine
	h := e.At(4.5, func() {})
	if at, ok := e.TimeOf(h); !ok || at != 4.5 {
		t.Errorf("TimeOf = (%v, %v), want (4.5, true)", at, ok)
	}
	e.Run()
	if _, ok := e.TimeOf(h); ok {
		t.Error("TimeOf on a fired handle should report ok=false")
	}
	if _, ok := e.TimeOf(Handle{}); ok {
		t.Error("TimeOf on the zero Handle should report ok=false")
	}
}

// Property: an arbitrary schedule of events always fires in non-decreasing
// time order and the clock never goes backwards.
func TestMonotonicClock(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := rand.New(rand.NewPCG(seed, 3))
		var e Engine
		last := -1.0
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			e.After(r.Float64()*10, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if depth > 0 && r.Float64() < 0.3 {
					schedule(depth - 1)
				}
			})
		}
		for i := 0; i < n; i++ {
			schedule(2)
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
