// Package devent is a minimal discrete-event simulation engine: a virtual
// clock and a future-event list ordered by (time, scheduling sequence), with
// cancellable events. The (time, sequence) ordering makes every simulation
// deterministic: events scheduled for the same instant fire in scheduling
// order.
//
// The engine is built for zero steady-state allocation. Events live in a
// pooled slice with an intrusive free list and are addressed by
// generation-counted Handles rather than pointers, so a recycled slot can
// never be cancelled through a stale handle. The future-event list is a
// specialized 4-ary min-heap over inline (time, seq, slot) entries — no
// container/heap, no interface boxing, swap-free sifts — with an O(n)
// heapify bulk-load (Preload) for up-front schedules.
//
// Two scheduling paths share the queue:
//
//   - Typed events (Schedule/ScheduleAfter/Preload) carry a Kind tag and a
//     small inline Payload, dispatched through the single owner callback
//     registered with SetHandler. This path allocates nothing per event.
//   - Closure events (At/After) carry a func(). This path keeps the original
//     API shape for callers that schedule rarely, at the cost of one closure
//     allocation per call site.
package devent

import "fmt"

// Kind tags a typed event. The meaning of each value is owned by the engine
// user; the engine only stores and returns it.
type Kind uint8

// Payload is the inline payload of a typed event: two integer operands
// (e.g. a worker id and a task index), one float operand (e.g. a duration),
// and a flag. It is carried by value — nothing escapes to the heap.
type Payload struct {
	A, B int
	F    float64
	Flag bool
}

// Handler receives every typed event when it fires.
type Handler func(kind Kind, p Payload)

// Handle identifies a scheduled event. It is a value (slot + generation),
// not a pointer: once the event fires or is cancelled its slot may be
// recycled, and the generation counter guarantees a stale Handle can never
// affect the slot's next occupant. The zero Handle is invalid and safely
// inert.
type Handle struct {
	slot int32 // pool index + 1, so the zero Handle matches no slot
	gen  uint32
}

// Scheduled is one entry of a Preload batch.
type Scheduled struct {
	At   float64
	Kind Kind
	P    Payload
}

// event is one pooled event slot.
type event struct {
	at      float64
	fn      func() // closure path; nil for typed events
	a, b    int
	f       float64
	heapIdx int32 // index into Engine.heap, -1 while the slot is free
	gen     uint32
	kind    Kind
	flag    bool
}

// heapEntry is one future-event list entry. The ordering key (time, seq) is
// inline so sift comparisons never chase into the event pool.
type heapEntry struct {
	at   float64
	seq  uint64
	slot int32
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is the simulation clock and event queue. The zero value is ready
// to use at time 0.
type Engine struct {
	now     float64
	seq     uint64
	handler Handler
	events  []event     // slot pool
	free    []int32     // free slot stack
	heap    []heapEntry // 4-ary min-heap by (at, seq)
	cancels int
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of live scheduled events in O(1). Cancelled
// events are removed from the queue immediately, so — unlike the previous
// tombstoning engine — the count never includes cancelled-but-unreaped
// events.
func (e *Engine) Pending() int { return len(e.heap) }

// Cancels returns the cumulative number of successfully cancelled events.
func (e *Engine) Cancels() int { return e.cancels }

// SetHandler registers the single owner callback for typed events. It must
// be set before any typed event is scheduled.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(t float64, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("devent: scheduling at %v before now %v", t, e.now))
	}
	return e.push(t, 0, Payload{}, fn)
}

// After schedules fn to run d virtual seconds from now.
func (e *Engine) After(d float64, fn func()) Handle {
	return e.At(e.now+d, fn)
}

// Schedule schedules a typed event at absolute virtual time t. Like At it
// panics when t is in the past, and it panics when no handler is registered
// (the event could never be delivered).
func (e *Engine) Schedule(t float64, kind Kind, p Payload) Handle {
	if t < e.now {
		panic(fmt.Sprintf("devent: scheduling at %v before now %v", t, e.now))
	}
	if e.handler == nil {
		panic("devent: Schedule before SetHandler")
	}
	return e.push(t, kind, p, nil)
}

// ScheduleAfter schedules a typed event d virtual seconds from now.
func (e *Engine) ScheduleAfter(d float64, kind Kind, p Payload) Handle {
	return e.Schedule(e.now+d, kind, p)
}

// Preload bulk-loads a batch of typed events into an engine whose queue is
// empty, heapifying in O(n) instead of n·O(log n) pushes. Sequence numbers
// are assigned in slice order, so same-instant entries fire in slice order
// — exactly as if each had been scheduled with a Schedule call. It panics
// on a non-empty queue, an unset handler, or an entry in the past.
func (e *Engine) Preload(items []Scheduled) {
	if len(e.heap) != 0 {
		panic("devent: Preload on a non-empty queue")
	}
	if e.handler == nil {
		panic("devent: Preload before SetHandler")
	}
	if cap(e.heap) < len(items) {
		e.heap = make([]heapEntry, 0, len(items))
	}
	sorted := true
	for _, it := range items {
		if it.At < e.now {
			panic(fmt.Sprintf("devent: scheduling at %v before now %v", it.At, e.now))
		}
		if n := len(e.heap); n > 0 && it.At < e.heap[n-1].at {
			sorted = false
		}
		slot := e.allocSlot(it.At, it.Kind, it.P, nil)
		e.heap = append(e.heap, heapEntry{at: it.At, seq: e.seq, slot: slot})
		e.events[slot].heapIdx = int32(len(e.heap) - 1)
		e.seq++
	}
	// A time-sorted batch (the common case: Model schedules are sorted by
	// arrival time, and seq ascends by construction) is already a valid
	// min-heap in array order; otherwise Floyd heapify, sifting each
	// internal node down last parent first.
	if sorted {
		return
	}
	for i := (len(e.heap) - 2) / 4; i >= 0; i-- {
		e.siftDown(i, e.heap[i])
	}
}

// Cancel prevents the event from firing and releases its slot, removing it
// from the queue in O(log n) via the maintained heap index. It reports
// whether an event was actually cancelled: cancelling an already-fired,
// already-cancelled, or zero Handle is a no-op returning false — a recycled
// slot's new occupant is protected by the generation counter.
func (e *Engine) Cancel(h Handle) bool {
	ev := e.resolve(h)
	if ev == nil {
		return false
	}
	e.removeAt(int(ev.heapIdx))
	e.freeSlot(h.slot - 1)
	e.cancels++
	return true
}

// Live reports whether the handle refers to a still-scheduled event.
func (e *Engine) Live(h Handle) bool { return e.resolve(h) != nil }

// TimeOf returns the virtual time a live event is scheduled for; ok is
// false when the handle is stale (fired, cancelled, or zero).
func (e *Engine) TimeOf(h Handle) (at float64, ok bool) {
	ev := e.resolve(h)
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// resolve maps a handle to its pooled event iff the handle is current and
// the event is still queued.
func (e *Engine) resolve(h Handle) *event {
	s := h.slot - 1
	if s < 0 || int(s) >= len(e.events) {
		return nil
	}
	ev := &e.events[s]
	if ev.gen != h.gen || ev.heapIdx < 0 {
		return nil
	}
	return ev
}

// Step fires the next event. It returns false when the queue is exhausted.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
	ev := &e.events[top.slot]
	e.now = top.at
	fn, kind, p := ev.fn, ev.kind, Payload{A: ev.a, B: ev.b, F: ev.f, Flag: ev.flag}
	ev.heapIdx = -1
	e.freeSlot(top.slot)
	if fn != nil {
		fn()
	} else {
		e.handler(kind, p)
	}
	return true
}

// Run drains the event queue. Callbacks may schedule further events.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil drains events scheduled at or before deadline, then advances the
// clock to deadline (if it is in the future).
func (e *Engine) RunUntil(deadline float64) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// push schedules one event (either path) and returns its handle.
func (e *Engine) push(t float64, kind Kind, p Payload, fn func()) Handle {
	slot := e.allocSlot(t, kind, p, fn)
	gen := e.events[slot].gen
	entry := heapEntry{at: t, seq: e.seq, slot: slot}
	e.seq++
	e.heap = append(e.heap, entry)
	e.siftUp(len(e.heap)-1, entry)
	return Handle{slot: slot + 1, gen: gen}
}

// allocSlot takes a slot off the free list (or grows the pool) and fills it.
// The slot's heapIdx is set by the caller once its heap position is known.
func (e *Engine) allocSlot(at float64, kind Kind, p Payload, fn func()) int32 {
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.events = append(e.events, event{})
		slot = int32(len(e.events) - 1)
	}
	ev := &e.events[slot]
	ev.at = at
	ev.fn = fn
	ev.a, ev.b, ev.f, ev.flag = p.A, p.B, p.F, p.Flag
	ev.kind = kind
	return slot
}

// freeSlot returns a slot to the pool. Bumping the generation here is what
// invalidates every outstanding Handle to the old occupant.
func (e *Engine) freeSlot(slot int32) {
	ev := &e.events[slot]
	ev.fn = nil // release the closure for GC
	ev.heapIdx = -1
	ev.gen++
	e.free = append(e.free, slot)
}

// removeAt deletes the heap entry at position i, preserving the heap
// invariant by sifting the displaced last entry whichever way it must go.
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if i == n {
		return
	}
	if i > 0 && entryLess(last, e.heap[(i-1)/4]) {
		e.siftUp(i, last)
	} else {
		e.siftDown(i, last)
	}
}

// siftUp places entry at position i, shifting larger ancestors down. The
// moving entry stays in a register and is written exactly once — no Swap
// churn — with the pool's heap indices maintained along the path.
func (e *Engine) siftUp(i int, entry heapEntry) {
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(entry, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.events[e.heap[i].slot].heapIdx = int32(i)
		i = p
	}
	e.heap[i] = entry
	e.events[entry.slot].heapIdx = int32(i)
}

// siftDown places entry at position i, promoting the smallest of up to four
// children at each level.
func (e *Engine) siftDown(i int, entry heapEntry) {
	n := len(e.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(e.heap[j], e.heap[m]) {
				m = j
			}
		}
		if !entryLess(e.heap[m], entry) {
			break
		}
		e.heap[i] = e.heap[m]
		e.events[e.heap[i].slot].heapIdx = int32(i)
		i = m
	}
	e.heap[i] = entry
	e.events[entry.slot].heapIdx = int32(i)
}
