// Package devent is a minimal discrete-event simulation engine: a virtual
// clock and a future-event list ordered by (time, scheduling sequence), with
// cancellable events. The (time, sequence) ordering makes every simulation
// deterministic: events scheduled for the same instant fire in scheduling
// order.
package devent

import (
	"container/heap"
	"fmt"
)

// Event is a handle to a scheduled callback. It can be cancelled up until it
// fires.
type Event struct {
	at        float64
	seq       int64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() float64 { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation clock and event queue. The zero value is ready
// to use at time 0.
type Engine struct {
	now  float64
	heap eventHeap
	seq  int64
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled (uncancelled or cancelled but not
// yet reaped) events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("devent: scheduling at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d virtual seconds from now.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Step fires the next non-cancelled event. It returns false when the queue
// is exhausted.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run drains the event queue. Callbacks may schedule further events.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil drains events scheduled at or before deadline, then advances the
// clock to deadline (if it is in the future).
func (e *Engine) RunUntil(deadline float64) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

func (e *Engine) peek() (float64, bool) {
	for len(e.heap) > 0 {
		if e.heap[0].cancelled {
			heap.Pop(&e.heap)
			continue
		}
		return e.heap[0].at, true
	}
	return 0, false
}
