package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/resources"
)

// ErrDraining reports that the server announced shutdown; no further frames
// will be answered on this connection.
var ErrDraining = errors.New("serve: server draining")

// Client defaults; see the corresponding ClientOptions.
const (
	defaultPipelineWindow = 128
	defaultFlushInterval  = time.Millisecond
	defaultObserveBurst   = 32
)

// Client is a connection to an allocator service, registered to one tenant.
// It is safe for concurrent use: calls carry sequence numbers and a reader
// goroutine routes each response to its waiting caller, so many goroutines
// can have requests in flight on the one connection.
//
// The wire path is built for pipelining. Waiting callers park on a
// fixed-size ring of reusable slots (the response sequence number encodes
// the slot index, so routing is an array lookup and a call allocates
// nothing), and writes are flush-coalesced: concurrent requests buffer into
// one net.Conn write, and one-way observe frames ride along with the next
// request or a short background flush instead of paying their own syscall.
type Client struct {
	conn net.Conn

	// Write side. sendMu guards the buffered writer and its bookkeeping.
	// Frames accumulate in bw and are flushed by whichever comes first: an
	// inline flush (lockstep calls with nothing else in flight), the flusher
	// goroutine (pipelined bursts), or the flush timer (idle one-way frames).
	sendMu     sync.Mutex
	bw         *bufio.Writer
	enc        []byte // appendFrame scratch
	needFlush  bool   // a reply-bearing frame is buffered unflushed
	unflushed  int    // one-way frames buffered since the last flush
	flushArmed bool
	flushTimer *time.Timer
	flushWake  chan struct{} // signals the flusher goroutine; buffered(1)
	armed      atomic.Int64  // calls currently in flight (armed slots)

	flushInterval time.Duration
	observeBurst  int

	// Call routing. mu guards the slot ring and the terminal error.
	mu    sync.Mutex
	err   error // terminal error once the connection is dead
	done  chan struct{}
	slots []callSlot
	mask  uint64
	free  chan uint32 // indices of unarmed slots; doubles as the window limit
}

// callSlot is one in-flight call's parking spot. Slots are reused: seq is
// gen*window+index, so a slot's sequence numbers never repeat and a stale
// (already abandoned) response can be recognized and dropped.
type callSlot struct {
	seq   uint64
	state uint8 // slotFree, slotArmed, or slotDone
	resp  Frame
	ready chan struct{} // buffered(1); signaled on deposit
}

const (
	slotFree uint8 = iota
	slotArmed
	slotDone
)

// ClientOption configures a Client at Dial time.
type ClientOption func(*Client)

// WithPipelineWindow bounds how many calls may be in flight on the
// connection at once (rounded up to a power of two, minimum 2). Calls past
// the window block until a response frees a slot. The default is 128.
func WithPipelineWindow(n int) ClientOption {
	return func(c *Client) {
		w := 2
		for w < n {
			w *= 2
		}
		c.mask = uint64(w - 1)
	}
}

// WithFlushInterval bounds how long a buffered one-way observe frame may
// wait for a request to ride along with before a background flush pushes it
// out. The default is 1ms; it never delays request/response calls, which
// flush inline.
func WithFlushInterval(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.flushInterval = d
		}
	}
}

// WithObserveBurst sets how many one-way frames may accumulate before a
// flush is forced regardless of the flush interval. The default is 32.
func WithObserveBurst(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.observeBurst = n
		}
	}
}

// Dial connects to an allocator service at addr and registers tenant with
// the given algorithm (empty = the service default) and seed. If the tenant
// already exists on the server, the connection attaches to its live state
// and algorithm/seed are ignored.
func Dial(addr, tenant, algorithm string, seed uint64, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:          conn,
		bw:            bufio.NewWriterSize(conn, 16<<10),
		done:          make(chan struct{}),
		mask:          defaultPipelineWindow - 1,
		flushInterval: defaultFlushInterval,
		observeBurst:  defaultObserveBurst,
		flushWake:     make(chan struct{}, 1),
	}
	for _, opt := range opts {
		opt(c)
	}
	window := int(c.mask) + 1
	c.slots = make([]callSlot, window)
	c.free = make(chan uint32, window)
	for i := range c.slots {
		c.slots[i].ready = make(chan struct{}, 1)
		// Generations start at 1 so no live call ever uses seq 0, which the
		// wire format cannot distinguish from an absent seq.
		c.slots[i].seq = uint64(i)
		c.free <- uint32(i)
	}
	c.flushTimer = time.AfterFunc(time.Hour, c.backgroundFlush)
	c.flushTimer.Stop()

	// Register synchronously before the reader goroutine exists: the ack is
	// the first frame the server sends, so a plain read is race-free here.
	fr := newFrameReader(conn)
	reg := Frame{Type: TypeRegister, Seq: 0, Tenant: tenant, Algorithm: algorithm, Seed: seed}
	if err := c.send(&reg, sendCall); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: register: %w", err)
	}
	var ack Frame
	if err := fr.next(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: register: %w", err)
	}
	switch ack.Type {
	case TypeAck:
	case TypeError:
		conn.Close()
		return nil, fmt.Errorf("serve: register rejected: %s", ack.Error)
	default:
		conn.Close()
		return nil, fmt.Errorf("serve: unexpected register response %q", ack.Type)
	}
	go c.readLoop(fr)
	go c.flushLoop()
	return c, nil
}

// readLoop routes response frames to waiting callers until the connection
// dies or the server drains.
func (c *Client) readLoop(fr *frameReader) {
	var f Frame
	for {
		if err := fr.next(&f); err != nil {
			c.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		if f.Type == TypeDrain {
			c.fail(ErrDraining)
			return
		}
		c.mu.Lock()
		slot := &c.slots[f.Seq&c.mask]
		if slot.state == slotArmed && slot.seq == f.Seq {
			slot.resp = f
			if f.Exceeded != nil {
				// The decoder reuses the Exceeded backing array across
				// frames; a retained response needs its own copy.
				slot.resp.Exceeded = append([]string(nil), f.Exceeded...)
			}
			slot.state = slotDone
			slot.ready <- struct{}{}
		}
		c.mu.Unlock()
	}
}

// fail marks the client dead and wakes every pending caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	c.mu.Unlock()
	c.flushTimer.Stop()
	c.conn.Close()
}

// terminal reports the error a failed operation should surface: the
// connection's terminal error when one is set (so every caller sees the
// same ErrDraining / connection-lost cause rather than a raw net error from
// a closed socket), otherwise the triggering error itself.
func (c *Client) terminal(err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return err
}

// Write-path modes: calls flush as soon as the last concurrent sender has
// written (so a response is never stuck in the buffer), one-way frames wait
// for company, and batch frames leave flushing to their caller entirely.
type sendMode uint8

const (
	sendCall sendMode = iota
	sendOneWay
	sendBatch
)

// send encodes f into the write buffer and applies the coalescing flush
// policy. On a write error the client is failed so all callers agree on the
// terminal error.
func (c *Client) send(f *Frame, mode sendMode) error {
	c.sendMu.Lock()
	c.enc = c.enc[:0]
	var err error
	c.enc, err = appendFrame(c.enc, f)
	if err == nil {
		_, err = c.bw.Write(c.enc)
	}
	if err == nil {
		switch mode {
		case sendCall:
			c.needFlush = true
		case sendOneWay:
			c.unflushed++
			if c.unflushed >= c.observeBurst {
				c.needFlush = true
			}
		}
		switch {
		case c.needFlush && mode != sendBatch:
			if mode == sendCall && c.armed.Load() <= 1 {
				// Lockstep: ours is the only call in flight, so nothing else
				// will ride along — flush inline and skip a scheduler hop.
				err = c.flushLocked()
			} else {
				// Pipelined: let the flusher goroutine collapse this frame
				// and everything concurrent senders buffer behind it into
				// one write.
				select {
				case c.flushWake <- struct{}{}:
				default:
				}
			}
		case mode == sendOneWay && !c.flushArmed:
			// Nothing forced a flush; make sure the observe still leaves
			// within the latency bound.
			c.flushArmed = true
			c.flushTimer.Reset(c.flushInterval)
		}
	}
	c.sendMu.Unlock()
	if err != nil {
		c.fail(err)
		return c.terminal(err)
	}
	return nil
}

// flushLoop is the micro-batching flusher: woken when a reply-bearing frame
// is buffered, it yields once so every runnable sender can append its frame,
// then flushes the whole batch in one write. Under a deep pipeline this
// collapses N frames into one syscall; when the client is idle it parks on
// the wake channel and costs nothing.
func (c *Client) flushLoop() {
	for {
		select {
		case <-c.flushWake:
		case <-c.done:
			return
		}
		runtime.Gosched() // let runnable senders buffer their frames first
		c.sendMu.Lock()
		var err error
		if c.bw.Buffered() > 0 {
			err = c.flushLocked()
		}
		c.sendMu.Unlock()
		if err != nil {
			c.fail(err)
			return
		}
	}
}

func (c *Client) flushLocked() error {
	c.needFlush = false
	c.unflushed = 0
	return c.bw.Flush()
}

// flushNow forces buffered frames onto the wire; used by batch senders.
func (c *Client) flushNow() error {
	c.sendMu.Lock()
	var err error
	if c.bw.Buffered() > 0 {
		err = c.flushLocked()
	}
	c.sendMu.Unlock()
	if err != nil {
		c.fail(err)
		return c.terminal(err)
	}
	return nil
}

// backgroundFlush runs on the flush timer: it pushes out one-way frames
// that no later call flushed within the latency bound.
func (c *Client) backgroundFlush() {
	c.sendMu.Lock()
	c.flushArmed = false
	var err error
	if c.bw.Buffered() > 0 {
		err = c.flushLocked()
	}
	c.sendMu.Unlock()
	if err != nil {
		c.fail(err)
	}
}

// acquireSlot blocks until an in-flight slot is free, or the client dies.
func (c *Client) acquireSlot() (uint32, error) {
	select {
	case idx := <-c.free:
		return idx, nil
	case <-c.done:
		return 0, c.terminal(nil)
	}
}

// armSlot claims slot idx for a new call and returns the sequence number a
// response must echo to land in it.
func (c *Client) armSlot(idx uint32) uint64 {
	window := c.mask + 1
	c.armed.Add(1)
	c.mu.Lock()
	slot := &c.slots[idx]
	slot.seq += window // next generation for this slot; stays ≡ idx (mod window)
	slot.state = slotArmed
	seq := slot.seq
	c.mu.Unlock()
	return seq
}

// await parks until slot idx has a response or the client dies, then frees
// the slot.
func (c *Client) await(idx uint32) (Frame, error) {
	slot := &c.slots[idx]
	select {
	case <-slot.ready:
		c.mu.Lock()
		resp := slot.resp
		slot.state = slotFree
		c.mu.Unlock()
		c.armed.Add(-1)
		c.free <- idx
		if resp.Type == TypeError {
			return Frame{}, fmt.Errorf("serve: %s", resp.Error)
		}
		return resp, nil
	case <-c.done:
		c.mu.Lock()
		slot.state = slotFree
		// A response may have raced the failure; clear its signal so the
		// recycled slot starts clean.
		select {
		case <-slot.ready:
		default:
		}
		err := c.err
		c.mu.Unlock()
		c.armed.Add(-1)
		c.free <- idx
		return Frame{}, err
	}
}

// releaseSlot abandons an armed slot whose request never made it out.
func (c *Client) releaseSlot(idx uint32) {
	c.armed.Add(-1)
	c.mu.Lock()
	c.slots[idx].state = slotFree
	select {
	case <-c.slots[idx].ready:
	default:
	}
	c.mu.Unlock()
	c.free <- idx
}

// call sends a frame stamped with a fresh Seq and waits for its response.
func (c *Client) call(f Frame) (Frame, error) {
	idx, err := c.acquireSlot()
	if err != nil {
		return Frame{}, err
	}
	f.Seq = c.armSlot(idx)
	if err := c.send(&f, sendCall); err != nil {
		c.releaseSlot(idx)
		return Frame{}, err
	}
	return c.await(idx)
}

// Allocate requests a first-attempt prediction for a task.
func (c *Client) Allocate(category string, taskID int) (resources.Vector, error) {
	resp, err := c.call(Frame{Type: TypeRequest, Category: category, TaskID: taskID})
	if err != nil {
		return resources.Vector{}, err
	}
	return resp.Alloc, nil
}

// AllocateBatch requests first-attempt predictions for many tasks in one
// coalesced write, pipelining up to the client's window without waiting for
// individual responses. Results are appended to out (which may be nil) in
// taskIDs order. On error the successfully collected prefix is returned
// along with the first error.
func (c *Client) AllocateBatch(category string, taskIDs []int, out []resources.Vector) ([]resources.Vector, error) {
	if len(out) > 0 {
		out = out[:0]
	}
	if len(taskIDs) == 0 {
		return out, nil
	}
	pending := make([]uint32, 0, min(len(taskIDs), int(c.mask)+1))
	collect := func() error {
		idx := pending[0]
		pending = pending[:copy(pending, pending[1:])]
		resp, err := c.await(idx)
		if err != nil {
			return err
		}
		out = append(out, resp.Alloc)
		return nil
	}
	var firstErr error
	for _, id := range taskIDs {
		var idx uint32
		for {
			select {
			case idx = <-c.free:
			default:
				// No slot free. Drain one of our own outstanding requests —
				// flushing first so its response can exist — rather than
				// blocking on other callers' slots (two pipelining callers
				// waiting on each other would deadlock).
				if len(pending) > 0 {
					if err := c.flushNow(); err != nil {
						firstErr = err
						break
					}
					if err := collect(); err != nil {
						firstErr = err
						break
					}
					continue
				}
				var err error
				if idx, err = c.acquireSlot(); err != nil {
					firstErr = err
					break
				}
			}
			break
		}
		if firstErr != nil {
			break
		}
		f := Frame{Type: TypeRequest, Category: category, TaskID: id, Seq: c.armSlot(idx)}
		if err := c.send(&f, sendBatch); err != nil {
			c.releaseSlot(idx)
			firstErr = err
			break
		}
		pending = append(pending, idx)
	}
	if len(pending) > 0 {
		if err := c.flushNow(); err != nil && firstErr == nil {
			firstErr = err
		}
		for len(pending) > 0 {
			if err := collect(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return out, firstErr
}

// Retry requests an escalated prediction after an attempt that exhausted the
// given resource kinds under allocation prev.
func (c *Client) Retry(category string, taskID int, prev resources.Vector, exceeded []resources.Kind) (resources.Vector, error) {
	names := make([]string, len(exceeded))
	for i, k := range exceeded {
		names[i] = k.String()
	}
	resp, err := c.call(Frame{Type: TypeRetry, Category: category, TaskID: taskID, Prev: prev, Exceeded: names})
	if err != nil {
		return resources.Vector{}, err
	}
	return resp.Alloc, nil
}

// Observe reports a completed task's peak usage and runtime. It is one-way:
// the server applies observations in connection order, so a later Allocate
// on this client is guaranteed to see it. Observes are flush-coalesced —
// they ride along with the next request, an accumulated burst, or the flush
// interval, whichever comes first. After the connection has failed, Observe
// returns the same terminal error as every other method.
func (c *Client) Observe(category string, taskID int, peak resources.Vector, runtime float64) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	f := Frame{Type: TypeObserve, Category: category, TaskID: taskID, Peak: peak, Runtime: runtime}
	return c.send(&f, sendOneWay)
}

// Ping round-trips a liveness frame.
func (c *Client) Ping() error {
	_, err := c.call(Frame{Type: TypePing})
	return err
}

// Stats fetches the tenant's counter snapshot. Because it round-trips after
// any previously sent observes on this connection, it doubles as a barrier:
// the returned counts include everything this client sent before the call.
func (c *Client) Stats() (TenantStats, error) {
	resp, err := c.call(Frame{Type: TypeStats})
	if err != nil {
		return TenantStats{}, err
	}
	if resp.Stats == nil {
		return TenantStats{}, fmt.Errorf("serve: stats response missing payload")
	}
	return *resp.Stats, nil
}

// Close hangs up. Pending calls fail with a connection-lost error.
func (c *Client) Close() error {
	c.flushTimer.Stop()
	return c.conn.Close()
}
