package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"dynalloc/internal/resources"
)

// ErrDraining reports that the server announced shutdown; no further frames
// will be answered on this connection.
var ErrDraining = errors.New("serve: server draining")

// Client is a connection to an allocator service, registered to one tenant.
// It is safe for concurrent use: calls carry sequence numbers and a reader
// goroutine routes each response to its waiting caller, so many goroutines
// can have requests in flight on the one connection.
type Client struct {
	conn net.Conn
	enc  *json.Encoder

	sendMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan Frame
	err     error // terminal error once the reader exits
	done    chan struct{}
}

// Dial connects to an allocator service at addr and registers tenant with
// the given algorithm (empty = the service default) and seed. If the tenant
// already exists on the server, the connection attaches to its live state
// and algorithm/seed are ignored.
func Dial(addr, tenant, algorithm string, seed uint64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		nextSeq: 1,
		pending: make(map[uint64]chan Frame),
		done:    make(chan struct{}),
	}
	// Register synchronously before the reader goroutine exists: the ack is
	// the first frame the server sends, so a plain decode is race-free here.
	reg := Frame{Type: TypeRegister, Seq: 0, Tenant: tenant, Algorithm: algorithm, Seed: seed}
	if err := c.enc.Encode(reg); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: register: %w", err)
	}
	dec := json.NewDecoder(conn)
	var ack Frame
	if err := dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: register: %w", err)
	}
	switch ack.Type {
	case TypeAck:
	case TypeError:
		conn.Close()
		return nil, fmt.Errorf("serve: register rejected: %s", ack.Error)
	default:
		conn.Close()
		return nil, fmt.Errorf("serve: unexpected register response %q", ack.Type)
	}
	go c.readLoop(dec)
	return c, nil
}

// readLoop routes response frames to waiting callers until the connection
// dies or the server drains.
func (c *Client) readLoop(dec *json.Decoder) {
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			c.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		if f.Type == TypeDrain {
			c.fail(ErrDraining)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.Seq]
		if ok {
			delete(c.pending, f.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail marks the client dead and wakes every pending caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	c.pending = make(map[uint64]chan Frame)
	c.mu.Unlock()
	c.conn.Close()
}

// call sends a frame stamped with a fresh Seq and waits for its response.
func (c *Client) call(f Frame) (Frame, error) {
	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Frame{}, err
	}
	seq := c.nextSeq
	c.nextSeq++
	c.pending[seq] = ch
	c.mu.Unlock()

	f.Seq = seq
	c.sendMu.Lock()
	err := c.enc.Encode(f)
	c.sendMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return Frame{}, fmt.Errorf("serve: send: %w", err)
	}

	select {
	case resp := <-ch:
		if resp.Type == TypeError {
			return Frame{}, fmt.Errorf("serve: %s", resp.Error)
		}
		return resp, nil
	case <-c.done:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return Frame{}, err
	}
}

// Allocate requests a first-attempt prediction for a task.
func (c *Client) Allocate(category string, taskID int) (resources.Vector, error) {
	resp, err := c.call(Frame{Type: TypeRequest, Category: category, TaskID: taskID})
	if err != nil {
		return resources.Vector{}, err
	}
	return resp.Alloc, nil
}

// Retry requests an escalated prediction after an attempt that exhausted the
// given resource kinds under allocation prev.
func (c *Client) Retry(category string, taskID int, prev resources.Vector, exceeded []resources.Kind) (resources.Vector, error) {
	names := make([]string, len(exceeded))
	for i, k := range exceeded {
		names[i] = k.String()
	}
	resp, err := c.call(Frame{Type: TypeRetry, Category: category, TaskID: taskID, Prev: prev, Exceeded: names})
	if err != nil {
		return resources.Vector{}, err
	}
	return resp.Alloc, nil
}

// Observe reports a completed task's peak usage and runtime. It is one-way:
// the server applies observations in connection order, so a later Allocate
// on this client is guaranteed to see it.
func (c *Client) Observe(category string, taskID int, peak resources.Vector, runtime float64) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	c.sendMu.Lock()
	err := c.enc.Encode(Frame{Type: TypeObserve, Category: category, TaskID: taskID, Peak: peak, Runtime: runtime})
	c.sendMu.Unlock()
	if err != nil {
		return fmt.Errorf("serve: send: %w", err)
	}
	return nil
}

// Ping round-trips a liveness frame.
func (c *Client) Ping() error {
	_, err := c.call(Frame{Type: TypePing})
	return err
}

// Stats fetches the tenant's counter snapshot. Because it round-trips after
// any previously sent observes on this connection, it doubles as a barrier:
// the returned counts include everything this client sent before the call.
func (c *Client) Stats() (TenantStats, error) {
	resp, err := c.call(Frame{Type: TypeStats})
	if err != nil {
		return TenantStats{}, err
	}
	if resp.Stats == nil {
		return TenantStats{}, fmt.Errorf("serve: stats response missing payload")
	}
	return *resp.Stats, nil
}

// Close hangs up. Pending calls fail with a connection-lost error.
func (c *Client) Close() error {
	return c.conn.Close()
}
