package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/resources"
)

// rawConn speaks the wire protocol with encoding/json primitives only, so
// these tests exercise the server against a third-party-style client rather
// than our own codec.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (rc *rawConn) writeLine(line string) {
	rc.t.Helper()
	if _, err := rc.conn.Write([]byte(line + "\n")); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) readFrame() (Frame, error) {
	line, err := rc.r.ReadBytes('\n')
	if err != nil {
		return Frame{}, err
	}
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return Frame{}, err
	}
	return f, nil
}

func (rc *rawConn) register(tenant string) {
	rc.t.Helper()
	rc.writeLine(fmt.Sprintf(`{"type":"register","tenant":%q}`, tenant))
	ack, err := rc.readFrame()
	if err != nil {
		rc.t.Fatalf("register: %v", err)
	}
	if ack.Type != TypeAck {
		rc.t.Fatalf("register: got %q frame, want ack", ack.Type)
	}
}

// TestServeDecodeErrorsCounted pins the malformed-frame contract: the server
// answers garbage with an error frame, counts it in DecodeErrors, and closes
// the connection — instead of the old behavior of dying silently.
func TestServeDecodeErrorsCounted(t *testing.T) {
	s, addr := startServer(t)

	// Garbage after a valid registration.
	rc := rawDial(t, addr)
	rc.register("garbage-a")
	rc.writeLine(`{"type":"request","seq":1,"category":"ok","task_id":1}`)
	if f, err := rc.readFrame(); err != nil || f.Type != TypeAlloc {
		t.Fatalf("valid request: frame %+v err %v", f, err)
	}
	rc.writeLine(`this is not json`)
	f, err := rc.readFrame()
	if err != nil {
		t.Fatalf("expected an error frame before hangup, got %v", err)
	}
	if f.Type != TypeError || !strings.Contains(f.Error, "decode frame") {
		t.Fatalf("got %+v, want a decode-frame error frame", f)
	}
	if _, err := rc.readFrame(); err == nil {
		t.Fatal("connection stayed open after a malformed frame")
	}
	if n := s.DecodeErrors(); n != 1 {
		t.Fatalf("DecodeErrors = %d, want 1", n)
	}

	// Garbage as the very first line.
	rc2 := rawDial(t, addr)
	rc2.writeLine(`{"seq":`)
	f, err = rc2.readFrame()
	if err != nil {
		t.Fatalf("expected an error frame before hangup, got %v", err)
	}
	if f.Type != TypeError {
		t.Fatalf("got %+v, want an error frame", f)
	}
	if _, err := rc2.readFrame(); err == nil {
		t.Fatal("connection stayed open after a malformed first frame")
	}
	if n := s.DecodeErrors(); n != 2 {
		t.Fatalf("DecodeErrors = %d, want 2", n)
	}

	// A fresh well-behaved connection is unaffected.
	rc3 := rawDial(t, addr)
	rc3.register("garbage-b")
}

// TestServeInteropWithEncodingJSON drives a full request/retry/observe/stats
// exchange through encoding/json on the client side, proving the hand-rolled
// server codec interoperates with stock-JSON third-party clients.
func TestServeInteropWithEncodingJSON(t *testing.T) {
	_, addr := startServer(t)
	rc := rawDial(t, addr)
	rc.register("interop")

	rc.writeLine(`{"type":"request","seq":1,"category":"c","task_id":1}`)
	alloc, err := rc.readFrame()
	if err != nil || alloc.Type != TypeAlloc || alloc.Alloc == (resources.Vector{}) {
		t.Fatalf("request: frame %+v err %v", alloc, err)
	}
	prev, _ := json.Marshal(alloc.Alloc)
	rc.writeLine(fmt.Sprintf(`{"type":"retry","seq":2,"category":"c","task_id":1,"prev":%s,"exceeded":["memory"]}`, prev))
	retry, err := rc.readFrame()
	if err != nil || retry.Type != TypeAlloc {
		t.Fatalf("retry: frame %+v err %v", retry, err)
	}
	if retry.Alloc[resources.Memory] <= alloc.Alloc[resources.Memory] {
		t.Fatalf("retry did not escalate memory: %v -> %v", alloc.Alloc, retry.Alloc)
	}
	rc.writeLine(`{"type":"observe","category":"c","task_id":1,"peak":[1,100,10,5],"runtime":5}`)
	rc.writeLine(`{"type":"stats","seq":3}`)
	st, err := rc.readFrame()
	if err != nil || st.Type != TypeStats || st.Stats == nil {
		t.Fatalf("stats: frame %+v err %v", st, err)
	}
	if st.Stats.Allocates != 1 || st.Stats.Retries != 1 || st.Stats.Observes != 1 {
		t.Fatalf("stats counters %+v, want 1/1/1", *st.Stats)
	}
}

// TestObserveReturnsTerminalError pins the satellite fix: once the
// connection has failed, every Observe (and Allocate) returns the same
// terminal error instead of a raw write-to-closed-conn error from racing
// the failure.
func TestObserveReturnsTerminalError(t *testing.T) {
	// An ill-mannered server: accepts, acks registration, then drops the
	// connection without a drain frame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r := bufio.NewReader(conn)
		if _, err := r.ReadBytes('\n'); err == nil {
			conn.Write([]byte(`{"type":"ack","seq":0}` + "\n"))
		}
		time.Sleep(20 * time.Millisecond)
		conn.Close()
	}()

	c, err := Dial(ln.Addr().String(), "t", "", 1, WithFlushInterval(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var first error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Observe("c", 1, resources.New(1, 1, 1, 1), 1); err != nil {
			first = err
			break
		}
		time.Sleep(time.Millisecond)
	}
	if first == nil {
		t.Fatal("Observe never failed after the server dropped the connection")
	}
	// Every later operation reports the same terminal error, verbatim.
	for i := 0; i < 10; i++ {
		if err := c.Observe("c", 1, resources.New(1, 1, 1, 1), 1); err != first {
			t.Fatalf("Observe %d returned %v, want terminal error %v", i, err, first)
		}
	}
	if _, err := c.Allocate("c", 2); err != first {
		t.Fatalf("Allocate returned %v, want terminal error %v", err, first)
	}
	if err := c.Ping(); err != first {
		t.Fatalf("Ping returned %v, want terminal error %v", err, first)
	}
}

// TestObserveAfterDrainReturnsErrDraining is the graceful-shutdown variant:
// after the server drains, post-failure sends surface ErrDraining rather
// than a net error from the closed socket.
func TestObserveAfterDrainReturnsErrDraining(t *testing.T) {
	s, addr := startServer(t, WithServerDrainTimeout(200*time.Millisecond))
	c := dial(t, addr, "drain-obs", "", 1)
	if _, err := c.Allocate("c", 1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		err := c.Observe("c", 1, resources.New(1, 1, 1, 1), 1)
		if err == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("Observe returned %v, want ErrDraining", err)
		}
		return
	}
	t.Fatal("Observe never failed after drain")
}

// TestAllocateBatchMatchesSequential pins batch semantics: a batched request
// stream produces exactly the vectors sequential Allocate calls would, in
// task order, because the server processes frames in connection order.
func TestAllocateBatchMatchesSequential(t *testing.T) {
	_, addr := startServer(t)
	seq := dial(t, addr, "batch-seq", "", 42)
	bat := dial(t, addr, "batch-bat", "", 42) // separate tenant, same alg+seed

	const n = 100
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	want := make([]resources.Vector, 0, n)
	for _, id := range ids {
		v, err := seq.Allocate("c", id)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	got, err := bat.AllocateBatch("c", ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("batch returned %d vectors, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("task %d: batch %v, sequential %v", ids[i], got[i], want[i])
		}
	}

	// Observations shift the predictions; a second batch reusing the result
	// slice must reflect them, proving interleaved observe/batch ordering.
	for _, id := range ids[:20] {
		if err := bat.Observe("c", id, resources.New(3, 1500, 200, 60), 60); err != nil {
			t.Fatal(err)
		}
		if err := seq.Observe("c", id, resources.New(3, 1500, 200, 60), 60); err != nil {
			t.Fatal(err)
		}
	}
	want = want[:0]
	for _, id := range ids {
		v, err := seq.Allocate("c", id)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	got, err = bat.AllocateBatch("c", ids, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after observes, task %d: batch %v, sequential %v", ids[i], got[i], want[i])
		}
	}
	if _, err := bat.AllocateBatch("c", nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestServePipelinedStress hammers one connection with a deep in-flight
// window from many goroutines — batches bigger than the window (exercising
// the starvation/collect path), single calls, and coalesced observes —
// across reconnects, then checks the server saw every frame. Runs under
// -race via the serve package's race target.
func TestServePipelinedStress(t *testing.T) {
	s, addr := startServer(t, WithMaxRecords(256))
	const (
		rounds   = 3
		workers  = 8
		batchLen = 64 // > window/workers, so batchers starve and self-drain
	)
	var wantAllocs, wantObserves int64
	for round := 0; round < rounds; round++ {
		c, err := Dial(addr, "pipe", "", 1,
			WithPipelineWindow(32), WithFlushInterval(200*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := (round*workers + w) * 1000
				ids := make([]int, batchLen)
				for i := range ids {
					ids[i] = base + i
				}
				out, err := c.AllocateBatch("cat", ids, nil)
				if err != nil {
					errs <- fmt.Errorf("worker %d batch: %w", w, err)
					return
				}
				if len(out) != batchLen {
					errs <- fmt.Errorf("worker %d: got %d vectors, want %d", w, len(out), batchLen)
					return
				}
				for i, v := range out {
					if v == (resources.Vector{}) {
						errs <- fmt.Errorf("worker %d: zero alloc for task %d", w, ids[i])
						return
					}
				}
				for i := 0; i < 16; i++ {
					if err := c.Observe("cat", base+i, out[i].Scale(0.5), 10); err != nil {
						errs <- fmt.Errorf("worker %d observe: %w", w, err)
						return
					}
				}
				if _, err := c.Allocate("cat", base+batchLen); err != nil {
					errs <- fmt.Errorf("worker %d allocate: %w", w, err)
					return
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		wantAllocs += int64(workers * (batchLen + 1))
		wantObserves += int64(workers * 16)
		st, err := c.Stats() // barrier: all observes applied before Close
		if err != nil {
			t.Fatal(err)
		}
		if st.Allocates != wantAllocs {
			t.Fatalf("round %d: server saw %d allocates, want %d", round, st.Allocates, wantAllocs)
		}
		if st.Observes != wantObserves {
			t.Fatalf("round %d: server saw %d observes, want %d", round, st.Observes, wantObserves)
		}
		c.Close()
	}

	// Drain mid-flight: every outstanding pipelined call must surface
	// ErrDraining (or the post-drain connection-lost error), never hang.
	c, err := Dial(addr, "pipe-drain", "", 1, WithPipelineWindow(64))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if _, err := c.Allocate("d", w*100000+i); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if !errors.Is(err, ErrDraining) && !strings.Contains(err.Error(), "connection lost") {
			t.Fatalf("in-flight call failed with %v, want ErrDraining or connection-lost", err)
		}
	}
	if s.DecodeErrors() != 0 {
		t.Fatalf("stress produced %d decode errors", s.DecodeErrors())
	}
}
