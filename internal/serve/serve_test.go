package serve

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
)

// startServer boots a server on a loopback port and registers cleanup.
func startServer(t *testing.T, opts ...ServerOption) (*Server, string) {
	t.Helper()
	s := NewServer(opts...)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func dial(t *testing.T, addr, tenant, alg string, seed uint64) *Client {
	t.Helper()
	c, err := Dial(addr, tenant, alg, seed)
	if err != nil {
		t.Fatalf("dial %s: %v", tenant, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServeRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr, "wf-1", string(allocator.MaxSeen), 7)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// Ten observations graduate the category out of exploratory whole-machine
	// allocations, so the escalation assertion below has headroom.
	for i := 1; i <= 10; i++ {
		if err := c.Observe("fit", i, resources.New(1, 300, 50, 12), 12); err != nil {
			t.Fatalf("observe: %v", err)
		}
	}
	alloc, err := c.Allocate("fit", 11)
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if alloc == (resources.Vector{}) {
		t.Fatal("allocate returned a zero vector")
	}
	alloc2, err := c.Retry("fit", 11, alloc, []resources.Kind{resources.Memory})
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if alloc2.Get(resources.Memory) <= alloc.Get(resources.Memory) {
		t.Errorf("retry did not escalate memory: %v -> %v", alloc.Get(resources.Memory), alloc2.Get(resources.Memory))
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	want := TenantStats{Tenant: "wf-1", Connections: 1, Allocates: 1, Retries: 1,
		Observes: 10, Categories: 1, Records: 10}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
}

// TestServeParityWithEmbedded replays the golden synthetic scheduler loop
// (the same one internal/allocator pins fingerprints over) against a
// single-tenant service and an embedded allocator side by side. Every vector
// the service streams back must be bit-identical to the embedded one —
// proving the service layer adds no drift: same algorithm state, same RNG
// stream, same escalation ladder.
func TestServeParityWithEmbedded(t *testing.T) {
	_, addr := startServer(t) // decay off: exact parity mode
	for _, alg := range []allocator.Name{allocator.Exhaustive, allocator.MaxSeen, allocator.Percentile} {
		for _, seed := range []uint64{1, 2} {
			embedded := allocator.MustNew(alg, allocator.Config{Seed: seed + 100})
			c := dial(t, addr, string(alg)+"-parity-"+string(rune('0'+seed)), string(alg), seed+100)

			drive := rand.New(rand.NewPCG(seed, 0xA11))
			cats := []string{"preproc", "fit"}
			for task := 1; task <= 250; task++ {
				cat := cats[task%len(cats)]
				peak := resources.New(
					1+3*drive.Float64(),
					200+3000*drive.Float64(),
					100+800*drive.Float64(),
					10+50*drive.Float64(),
				)
				if drive.Float64() < 0.3 {
					peak = peak.Scale(4)
				}
				want := embedded.Allocate(cat, task)
				got, err := c.Allocate(cat, task)
				if err != nil {
					t.Fatalf("%s/seed%d task %d: allocate: %v", alg, seed, task, err)
				}
				if got != want {
					t.Fatalf("%s/seed%d task %d: service alloc %v != embedded %v", alg, seed, task, got, want)
				}
				alloc := want
				for hop := 0; hop < 64; hop++ {
					var exceeded []resources.Kind
					for _, k := range resources.AllocatedKinds() {
						if peak.Get(k) > alloc.Get(k) {
							exceeded = append(exceeded, k)
						}
					}
					if len(exceeded) == 0 {
						break
					}
					want = embedded.Retry(cat, task, alloc, exceeded)
					got, err = c.Retry(cat, task, alloc, exceeded)
					if err != nil {
						t.Fatalf("%s/seed%d task %d: retry: %v", alg, seed, task, err)
					}
					if got != want {
						t.Fatalf("%s/seed%d task %d hop %d: service retry %v != embedded %v", alg, seed, task, hop, got, want)
					}
					alloc = want
				}
				rt := 10 + 50*drive.Float64()
				embedded.Observe(cat, task, peak, rt)
				if err := c.Observe(cat, task, peak, rt); err != nil {
					t.Fatalf("%s/seed%d task %d: observe: %v", alg, seed, task, err)
				}
			}
		}
	}
}

// TestServeTenantIsolation: two tenants observing disjoint workloads in the
// same category names must not leak state into each other, and two tenants
// with identical algorithm+seed+stream must serve identical vectors.
func TestServeTenantIsolation(t *testing.T) {
	_, addr := startServer(t)
	small := dial(t, addr, "small", string(allocator.MaxSeen), 3)
	big := dial(t, addr, "big", string(allocator.MaxSeen), 3)

	for i := 1; i <= 20; i++ {
		if err := small.Observe("fit", i, resources.New(1, 100, 10, 5), 5); err != nil {
			t.Fatal(err)
		}
		if err := big.Observe("fit", i, resources.New(8, 8000, 900, 50), 50); err != nil {
			t.Fatal(err)
		}
	}
	sv, err := small.Allocate("fit", 21)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := big.Allocate("fit", 21)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Get(resources.Memory) >= bv.Get(resources.Memory) {
		t.Errorf("isolation broken: small tenant predicts %v MB, big tenant %v MB",
			sv.Get(resources.Memory), bv.Get(resources.Memory))
	}

	// Twin tenants: same alg, seed, and observation stream => same vectors.
	twinA := dial(t, addr, "twin-a", string(allocator.Exhaustive), 11)
	twinB := dial(t, addr, "twin-b", string(allocator.Exhaustive), 11)
	for i := 1; i <= 30; i++ {
		peak := resources.New(float64(1+i%4), float64(100*i%1700), 50, 5)
		if err := twinA.Observe("c", i, peak, 5); err != nil {
			t.Fatal(err)
		}
		if err := twinB.Observe("c", i, peak, 5); err != nil {
			t.Fatal(err)
		}
	}
	va, _ := twinA.Allocate("c", 31)
	vb, _ := twinB.Allocate("c", 31)
	if va != vb {
		t.Errorf("twin tenants diverged: %v vs %v", va, vb)
	}
}

// TestServeDecayBoundsRecords: with decay on, a category's record count stays
// bounded by MaxRecords however many observations stream in, and predictions
// keep tracking the recent window.
func TestServeDecayBoundsRecords(t *testing.T) {
	const maxRecords, window = 50, 25
	_, addr := startServer(t, WithMaxRecords(maxRecords), WithDecayWindow(window))
	c := dial(t, addr, "longrun", string(allocator.MaxSeen), 1)

	for i := 1; i <= 1000; i++ {
		if err := c.Observe("fit", i, resources.New(1, float64(100+i%400), 10, 5), 5); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Observes != 1000 {
		t.Errorf("observes = %d", st.Observes)
	}
	if st.Records > maxRecords {
		t.Errorf("records %d exceed decay bound %d", st.Records, maxRecords)
	}
	if st.Decays == 0 {
		t.Error("decay never triggered over 1000 observations")
	}
	// The allocator still predicts from the retained window.
	v, err := c.Allocate("fit", 1001)
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(resources.Memory) <= 0 {
		t.Errorf("post-decay prediction degenerate: %v", v)
	}
}

// TestServeReconnectContinuesState: tenant state (records, counters)
// survives its last connection hanging up; a reconnect attaches to it.
func TestServeReconnectContinuesState(t *testing.T) {
	s, addr := startServer(t)
	c1, err := Dial(addr, "sticky", string(allocator.MaxSeen), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Observe("fit", 1, resources.New(2, 500, 50, 9), 9); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Stats(); err != nil { // barrier so the observe landed
		t.Fatal(err)
	}
	c1.Close()

	c2 := dial(t, addr, "sticky", "", 0) // alg/seed ignored on reattach
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Observes != 1 || st.Records != 1 {
		t.Errorf("state lost across reconnect: %+v", st)
	}
	if n := s.Tenants(); n != 1 {
		t.Errorf("tenant count = %d", n)
	}
}

// TestServeTenantTTL: an idle, disconnected tenant is evicted after the TTL;
// a connected one is not.
func TestServeTenantTTL(t *testing.T) {
	s, addr := startServer(t, WithTenantTTL(80*time.Millisecond))
	keep := dial(t, addr, "keep", "", 0)
	gone, err := Dial(addr, "gone", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := gone.Observe("c", 1, resources.New(1, 100, 10, 1), 1); err != nil {
		t.Fatal(err)
	}
	gone.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.Tenants() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("idle tenant not evicted: %d tenants, %d evicted", s.Tenants(), s.TenantsEvicted())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.TenantsEvicted() != 1 {
		t.Errorf("evicted = %d", s.TenantsEvicted())
	}
	// The connected tenant survived the sweeps.
	if err := keep.Ping(); err != nil {
		t.Errorf("surviving tenant unreachable: %v", err)
	}
}

// TestServeDrain: Close notifies clients with a drain frame; later calls on
// the drained client fail with ErrDraining, and Close is idempotent.
func TestServeDrain(t *testing.T) {
	s, addr := startServer(t, WithServerDrainTimeout(time.Second))
	c := dial(t, addr, "draining", "", 0)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The drain frame races the call; accept either the typed error or the
	// subsequent connection teardown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ping(); err != nil {
			if errors.Is(err, ErrDraining) {
				break
			}
			if strings.Contains(err.Error(), "connection") || strings.Contains(err.Error(), "EOF") {
				break
			}
			t.Fatalf("unexpected drain error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never saw the drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close() // idempotent
}

// TestServeProtocolErrors covers the error frames: bad algorithm, missing
// tenant, double register, unknown type, and non-register first frame.
func TestServeProtocolErrors(t *testing.T) {
	_, addr := startServer(t)

	if _, err := Dial(addr, "bad-alg", "no-such-algorithm", 0); err == nil {
		t.Error("register with unknown algorithm succeeded")
	}
	if _, err := Dial(addr, "", "", 0); err == nil {
		t.Error("register without tenant name succeeded")
	}

	c := dial(t, addr, "proto", "", 0)
	if _, err := c.call(Frame{Type: TypeRegister, Tenant: "again"}); err == nil {
		t.Error("double register succeeded")
	}
	if _, err := c.call(Frame{Type: "bogus"}); err == nil {
		t.Error("unknown frame type succeeded")
	}
	if _, err := c.call(Frame{Type: TypeRetry, Category: "c", Exceeded: []string{"plutonium"}}); err == nil {
		t.Error("retry with unknown resource kind succeeded")
	}
	// The connection survives protocol errors.
	if err := c.Ping(); err != nil {
		t.Errorf("connection died after error frames: %v", err)
	}
}

// TestServerStatsSorted: Server.Stats lists every tenant, sorted by name.
func TestServerStatsSorted(t *testing.T) {
	s, addr := startServer(t)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		c := dial(t, addr, name, "", 0)
		if _, err := c.Allocate("c", 1); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d tenants", len(stats))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if stats[i].Tenant != want {
			t.Errorf("stats[%d] = %s, want %s", i, stats[i].Tenant, want)
		}
		if stats[i].Allocates != 1 {
			t.Errorf("%s allocates = %d", stats[i].Tenant, stats[i].Allocates)
		}
	}
}
