package serve

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
)

// TestServeStress hammers one server with many tenants, several connections
// per tenant, and mixed allocate/retry/observe/stats traffic while
// connections join and leave mid-stream. Run under -race (the Makefile's
// race target does) it is the service's data-race detector; the final stats
// assertion catches lost updates either way.
func TestServeStress(t *testing.T) {
	tenants := 10
	connsPerTenant := 3
	opsPerConn := 400
	if testing.Short() {
		tenants, connsPerTenant, opsPerConn = 4, 2, 100
	}

	s, addr := startServer(t)
	var wg sync.WaitGroup
	errCh := make(chan error, tenants*connsPerTenant)

	for ti := 0; ti < tenants; ti++ {
		name := fmt.Sprintf("tenant-%02d", ti)
		for ci := 0; ci < connsPerTenant; ci++ {
			wg.Add(1)
			go func(tenant string, ti, ci int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(ti), uint64(ci)))
				c, err := Dial(addr, tenant, string(allocator.Exhaustive), uint64(ti))
				if err != nil {
					errCh <- fmt.Errorf("%s/%d dial: %w", tenant, ci, err)
					return
				}
				defer c.Close()
				for op := 0; op < opsPerConn; op++ {
					// Leave and rejoin mid-stream on a small fraction of ops,
					// exercising tenant refs and reattachment under load.
					if rng.Float64() < 0.01 {
						c.Close()
						c, err = Dial(addr, tenant, string(allocator.Exhaustive), uint64(ti))
						if err != nil {
							errCh <- fmt.Errorf("%s/%d rejoin: %w", tenant, ci, err)
							return
						}
					}
					cat := fmt.Sprintf("cat-%d", op%3)
					task := ci*opsPerConn + op
					switch {
					case rng.Float64() < 0.5:
						alloc, err := c.Allocate(cat, task)
						if err != nil {
							errCh <- fmt.Errorf("%s/%d allocate: %w", tenant, ci, err)
							return
						}
						if rng.Float64() < 0.3 {
							if _, err := c.Retry(cat, task, alloc, []resources.Kind{resources.Memory}); err != nil {
								errCh <- fmt.Errorf("%s/%d retry: %w", tenant, ci, err)
								return
							}
						}
					case rng.Float64() < 0.9:
						peak := resources.New(1+rng.Float64()*4, 100+rng.Float64()*3000, 50, 5)
						if err := c.Observe(cat, task, peak, 5); err != nil {
							errCh <- fmt.Errorf("%s/%d observe: %w", tenant, ci, err)
							return
						}
					default:
						if _, err := c.Stats(); err != nil {
							errCh <- fmt.Errorf("%s/%d stats: %w", tenant, ci, err)
							return
						}
					}
				}
				// Flush: a stats round-trip barriers all observes sent above.
				if _, err := c.Stats(); err != nil {
					errCh <- fmt.Errorf("%s/%d final stats: %w", tenant, ci, err)
				}
			}(name, ti, ci)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	stats := s.Stats()
	if len(stats) != tenants {
		t.Fatalf("%d tenants in stats, want %d", len(stats), tenants)
	}
	for _, st := range stats {
		total := st.Allocates + st.Retries + st.Observes
		if total == 0 {
			t.Errorf("%s served no frames", st.Tenant)
		}
		if st.Categories == 0 && st.Observes > 0 {
			t.Errorf("%s: observes recorded but no categories", st.Tenant)
		}
	}
}

// TestServeStressWithDecayAndTTL layers the memory-bounding features on top
// of concurrent load: record decay active on every tenant and the TTL
// sweeper running throughout. Catches races between decay replay, eviction,
// and live traffic.
func TestServeStressWithDecayAndTTL(t *testing.T) {
	tenants, ops := 8, 300
	if testing.Short() {
		tenants, ops = 4, 80
	}
	s, addr := startServer(t,
		WithMaxRecords(40), WithDecayWindow(20), WithTenantTTL(10*time.Millisecond))

	var wg sync.WaitGroup
	errCh := make(chan error, tenants)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			c, err := Dial(addr, fmt.Sprintf("decay-%d", ti), string(allocator.MaxSeen), uint64(ti))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < ops; i++ {
				if err := c.Observe("c", i, resources.New(1, float64(100+i), 10, 1), 1); err != nil {
					errCh <- err
					return
				}
				if i%7 == 0 {
					if _, err := c.Allocate("c", i); err != nil {
						errCh <- err
						return
					}
				}
			}
			st, err := c.Stats()
			if err != nil {
				errCh <- err
				return
			}
			if st.Records > 40 {
				errCh <- fmt.Errorf("tenant %d: %d records exceed decay bound", ti, st.Records)
			}
			if st.Decays == 0 {
				errCh <- fmt.Errorf("tenant %d: decay never fired over %d observes", ti, ops)
			}
		}(ti)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		// Drained/lost connections are real failures here; the server stays
		// up for the whole test.
		if errors.Is(err, ErrDraining) || strings.Contains(err.Error(), "connection lost") {
			t.Errorf("connection dropped under load: %v", err)
		} else {
			t.Error(err)
		}
	}
	_ = s // cleanup via startServer
}
