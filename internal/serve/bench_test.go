package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
)

// benchServeThroughput measures sustained service throughput: `tenants`
// isolated tenants, `connsPerTenant` connections each, every connection
// streaming allocation requests (with a 25% observe mix so the estimators
// keep learning) as fast as the service answers. Record decay is on, so the
// per-op cost is the steady state a long-lived deployment sees, not an
// ever-growing record list. The headline metric is allocs/sec — total
// allocation round-trips per second across all tenants.
func benchServeThroughput(b *testing.B, tenants, connsPerTenant int) {
	s := NewServer(WithMaxRecords(512))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	clients := make([]*Client, 0, tenants*connsPerTenant)
	for ti := 0; ti < tenants; ti++ {
		name := fmt.Sprintf("bench-%02d", ti)
		for ci := 0; ci < connsPerTenant; ci++ {
			c, err := Dial(addr, name, string(allocator.Exhaustive), uint64(ti))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			clients = append(clients, c)
		}
	}
	// Warm every tenant out of exploratory mode so the steady-state
	// prediction path, not the fixed exploration constant, is measured.
	for i := 0; i < len(clients); i += connsPerTenant {
		c := clients[i]
		for task := 1; task <= 20; task++ {
			if err := c.Observe("fit", task, resources.New(2, 1000, 300, 30), 30); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Stats(); err != nil { // barrier: observes applied
			b.Fatal(err)
		}
	}

	var nextClient atomic.Uint64
	var taskID atomic.Int64
	taskID.Store(1000)
	b.ReportAllocs()
	// One worker goroutine per connection regardless of GOMAXPROCS, so the
	// concurrency under test is the client fleet, not the core count.
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((len(clients) + procs - 1) / procs)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := clients[nextClient.Add(1)%uint64(len(clients))]
		for pb.Next() {
			task := int(taskID.Add(1))
			alloc, err := c.Allocate("fit", task)
			if err != nil {
				b.Error(err)
				return
			}
			if task%4 == 0 {
				if err := c.Observe("fit", task, alloc.Scale(0.5), 30); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	// allocs/sec is the historical name for this metric (allocation
	// round-trips per second); ops/sec is the same number under the name the
	// pipelined benchmarks use.
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "allocs/sec")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// benchServePipelined measures one connection driven at a fixed pipeline
// depth: `depth` goroutines keep that many Allocate calls in flight, so the
// wire carries coalesced bursts instead of lockstep request/response pairs.
// Depth 1 is the protocol floor (one syscall pair per round trip); deeper
// windows show how far flush coalescing and the zero-alloc codec raise
// throughput on the same connection.
func benchServePipelined(b *testing.B, depth int) {
	s := NewServer(WithMaxRecords(512))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	window := 2 * depth
	if window < 8 {
		window = 8
	}
	c, err := Dial(addr, "pipelined", string(allocator.Exhaustive), 1, WithPipelineWindow(window))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for task := 1; task <= 20; task++ {
		if err := c.Observe("fit", task, resources.New(2, 1000, 300, 30), 30); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := c.Stats(); err != nil { // barrier: observes applied
		b.Fatal(err)
	}

	var remaining atomic.Int64
	var taskID atomic.Int64
	taskID.Store(1000)
	b.ReportAllocs()
	b.ResetTimer()
	remaining.Store(int64(b.N))
	var wg sync.WaitGroup
	for g := 0; g < depth; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				if _, err := c.Allocate("fit", int(taskID.Add(1))); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkServePipelined1 is the unpipelined floor on a single connection.
func BenchmarkServePipelined1(b *testing.B) { benchServePipelined(b, 1) }

// BenchmarkServePipelined8 keeps 8 calls in flight.
func BenchmarkServePipelined8(b *testing.B) { benchServePipelined(b, 8) }

// BenchmarkServePipelined64 keeps 64 calls in flight — the headline
// pipelined-throughput number recorded in BENCH_serve.json.
func BenchmarkServePipelined64(b *testing.B) { benchServePipelined(b, 64) }

// BenchmarkServe8Tenants is the headline service number recorded in
// BENCH_serve.json by `make serve-bench`: sustained allocation throughput
// across 8 concurrent tenants.
func BenchmarkServe8Tenants(b *testing.B) { benchServeThroughput(b, 8, 2) }

// BenchmarkServe16Tenants doubles the tenant count to show throughput holds
// as isolated tenants are added.
func BenchmarkServe16Tenants(b *testing.B) { benchServeThroughput(b, 16, 2) }

// BenchmarkServe1Tenant is the single-stream baseline: one tenant, one
// connection, request/response in lockstep — the protocol floor.
func BenchmarkServe1Tenant(b *testing.B) { benchServeThroughput(b, 1, 1) }
