// Package serve is the allocator-as-a-service front end: a long-lived
// concurrent TCP service that wraps allocator.Allocator for many independent
// workflows (tenants) at once. Each tenant gets isolated per-category
// record.List/bucketing state behind its own allocator instance and its own
// lock, so one tenant's slow bucketing recompute never blocks another's
// predictions; within a tenant, observations are O(1) appends and
// predictions recompute lazily from record.View snapshots, inheriting the
// embedded allocator's snapshot-read model. Long-lived tenants stay
// memory-bounded through record decay: once a category accumulates
// MaxRecords observations, the service resets it and replays only the most
// recent DecayWindow records (Section V-A's recency weighting makes the old
// tail nearly weightless anyway).
//
// The wire protocol follows internal/wq's style: one JSON object per line
// over TCP. A connection registers a tenant first, then streams
// request/retry/observe/ping/stats frames; request, retry, ping, and stats
// carry a client-chosen Seq echoed in the response. Observations are
// one-way — the per-connection ordering guarantees they are applied before
// any later request on the same connection. The server's Close mirrors
// wq.Manager.Close: stop accepting, notify every client with a drain frame,
// and give in-flight connections a bounded grace period to finish.
//
// The frames are ordinary JSON on the wire but never touch encoding/json on
// the hot path: both sides use the hand-rolled codec in codec.go (pinned
// byte- and value-compatible with encoding/json by fuzz tests, so stock-JSON
// clients interoperate unchanged), buffer their writes, and flush on a
// coalescing policy rather than per frame. The Client pipelines — many
// goroutines can have calls in flight on one connection, bounded by
// WithPipelineWindow, with AllocateBatch for bulk request streams — and a
// steady-state round trip allocates nothing on either side. See DESIGN.md
// §15 for the full wire performance model.
package serve

import (
	"dynalloc/internal/resources"
)

// Frame is the single message type of the service protocol; Type selects
// which fields are meaningful.
type Frame struct {
	Type string `json:"type"`

	// Seq correlates a request with its response on frames that have one
	// (request, retry, ping, stats). Chosen by the client, echoed verbatim.
	Seq uint64 `json:"seq,omitempty"`

	// register (client -> server)
	Tenant    string `json:"tenant,omitempty"`
	Algorithm string `json:"algorithm,omitempty"` // empty = exhaustive-bucketing
	Seed      uint64 `json:"seed,omitempty"`

	// request / retry / observe (client -> server)
	Category string `json:"category,omitempty"`
	TaskID   int    `json:"task_id,omitempty"`

	// retry (client -> server)
	Prev     resources.Vector `json:"prev,omitempty"`
	Exceeded []string         `json:"exceeded,omitempty"`

	// observe (client -> server)
	Peak    resources.Vector `json:"peak,omitempty"`
	Runtime float64          `json:"runtime,omitempty"`

	// alloc (server -> client): the prediction for a request or retry.
	Alloc resources.Vector `json:"alloc,omitempty"`

	// stats (server -> client)
	Stats *TenantStats `json:"stats,omitempty"`

	// error (server -> client): a failed frame; Seq echoes the offender
	// when it carried one.
	Error string `json:"error,omitempty"`
}

// Frame types. Client to server: register, request, retry, observe, ping,
// stats. Server to client: ack (register accepted), alloc, pong, stats,
// error, drain.
const (
	TypeRegister = "register"
	TypeRequest  = "request"
	TypeRetry    = "retry"
	TypeObserve  = "observe"
	TypePing     = "ping"
	TypeStats    = "stats"

	TypeAck   = "ack"
	TypeAlloc = "alloc"
	TypePong  = "pong"
	TypeError = "error"
	// TypeDrain tells the client the server is closing: no further frames
	// will be answered, finish up and disconnect.
	TypeDrain = "drain"
)

// TenantStats is a point-in-time snapshot of one tenant's service counters,
// returned by the stats frame and by Server.Stats.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Connections currently registered to this tenant.
	Connections int `json:"connections"`
	// Allocates / Retries / Observes count frames served over the tenant's
	// lifetime (across connections, surviving reconnects).
	Allocates int64 `json:"allocates"`
	Retries   int64 `json:"retries"`
	Observes  int64 `json:"observes"`
	// Decays counts category resets performed by the record-decay policy.
	Decays int64 `json:"decays"`
	// Categories is the number of distinct task categories observed.
	Categories int `json:"categories"`
	// Records is the current record count summed over categories — bounded
	// by categories × MaxRecords when decay is enabled.
	Records int `json:"records"`
}
