package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"

	"dynalloc/internal/resources"
)

// encodeStd is the reference encoding: exactly what the PR 7 wire format
// produced via json.Encoder (compact JSON, HTML escaping, trailing newline).
func encodeStd(t testing.TB, f *Frame) ([]byte, error) {
	t.Helper()
	b, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func TestAppendFrameMatchesEncodingJSON(t *testing.T) {
	frames := []Frame{
		{},
		{Type: TypeRequest, Seq: 7, Category: "fit", TaskID: 42},
		{Type: TypeAlloc, Seq: 1, Alloc: resources.New(4, 2000, 500, 3600)},
		{Type: TypeRetry, Seq: 9, Category: "x", TaskID: 3,
			Prev: resources.Vector{1.5, 2048, 0.001, 1e21}, Exceeded: []string{"memory", "time"}},
		{Type: TypeObserve, Category: "c", TaskID: 1,
			Peak: resources.Vector{-1e-7, 9.999999999999999e20, 1e-6, math.MaxFloat64}, Runtime: 12.25},
		{Type: TypeRegister, Tenant: "a<b>&c", Algorithm: "greedy-bucketing", Seed: 18446744073709551615},
		{Type: TypeError, Error: "line1\nline2\ttab \"quoted\" back\\slash"},
		{Type: TypeError, Error: "control:\x01\x1f del:\x7f unicode:\u00e9\u2028\u2029 bad:\xff\xfe"},
		{Type: TypeStats, Seq: 3, Stats: &TenantStats{
			Tenant: "t", Connections: 2, Allocates: 100, Retries: 7,
			Observes: 50, Decays: 1, Categories: 3, Records: 512}},
		{Type: TypePong, Seq: 1, Runtime: 1e-9},
		{Type: TypeAck, Runtime: -0.0},   // negative zero is non-zero for omitempty? (it is ==0: omitted)
		{Type: "", Exceeded: []string{}}, // empty-but-non-nil list still omitted by omitempty
	}
	for i, f := range frames {
		want, werr := encodeStd(t, &f)
		got, gerr := appendFrame(nil, &f)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("frame %d: error mismatch: json=%v codec=%v", i, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d encoding mismatch:\n codec: %s\n  json: %s", i, got, want)
		}
	}
}

func TestAppendFrameNonFiniteFloat(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		f := Frame{Type: TypeObserve, Runtime: v}
		if _, err := appendFrame(nil, &f); err == nil {
			t.Errorf("appendFrame accepted non-finite runtime %v", v)
		}
		f = Frame{Type: TypeObserve, Peak: resources.Vector{0, v, 0, 0}}
		if _, err := appendFrame(nil, &f); err == nil {
			t.Errorf("appendFrame accepted non-finite vector element %v", v)
		}
	}
}

// TestDecodeFrameMatchesEncodingJSON pins the decoder to json.Unmarshal
// semantics on hand-picked tricky documents: duplicate keys, case-folded
// field names, unknown fields, nulls, short/long arrays, escapes.
func TestDecodeFrameMatchesEncodingJSON(t *testing.T) {
	docs := []string{
		`{"type":"request","seq":5,"category":"fit","task_id":3,"prev":[0,0,0,0],"peak":[0,0,0,0],"alloc":[0,0,0,0]}`,
		`null`,
		`{}`,
		` { "type" : "ping" } `,
		`{"TYPE":"request","Task_ID":9}`,         // case-folded field match
		`{"type":"a","type":"b"}`,                // last duplicate wins
		`{"seq":null,"tenant":null,"prev":null}`, // null leaves zero values
		`{"prev":[1,2]}`,                         // short array zero-pads
		`{"prev":[1,2,3,4,5,6]}`,                 // long array: extras validated, discarded
		`{"prev":[1,2,3,4],"prev":[9]}`,          // duplicate array re-zeroes tail
		`{"exceeded":[]}`,                        // empty list decodes non-nil
		`{"exceeded":["memory","time"],"exceeded":null}`, // null resets to nil
		`{"exceeded":["a",null,"b"]}`,                    // null element -> ""
		`{"unknown":{"deep":[1,{"x":null}]},"seq":2}`,
		`{"stats":{"tenant":"t","records":7,"bogus":true}}`,
		`{"stats":{"tenant":"t"},"stats":{"records":3}}`, // duplicate stats objects merge
		`{"stats":null}`,
		`{"error":"\u0041\u00e9\ud83d\ude00\t\\\" \ud800 \u2028"}`, // escapes incl. lone surrogate
		`{"tenant":"caf\u00e9 ` + "\xc3\xa9 \xff" + `"}`,           // raw UTF-8 + invalid byte
		`{"runtime":1e-9,"seq":12345678901234567890}`,
		`{"runtime":-0.5e+3}`,
	}
	for _, doc := range docs {
		var dec frameDecoder
		var mine, std Frame
		merr := dec.decode([]byte(doc), &mine)
		serr := json.Unmarshal([]byte(doc), &std)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("doc %q: error mismatch: codec=%v json=%v", doc, merr, serr)
		}
		if merr != nil {
			continue
		}
		if !reflect.DeepEqual(mine, std) {
			t.Errorf("doc %q:\n codec: %+v\n  json: %+v", doc, mine, std)
		}
	}
}

// TestDecodeFrameRejects pins decode failures (and that they are reported as
// *decodeError, which the server counts): every document here must fail both
// decoders.
func TestDecodeFrameRejects(t *testing.T) {
	docs := []string{
		``, `   `, `not json`, `{`, `{"type"}`, `{"type":}`, `{"type":"a"`,
		`{"type":"a"} trailing`, `[1,2]`, `"frame"`, `123`, `true`,
		`{"seq":-1}`, `{"seq":1.5}`, `{"seq":1e3}`, `{"task_id":"x"}`,
		`{"runtime":01}`, `{"runtime":+1}`, `{"runtime":.5}`, `{"runtime":1.}`,
		`{"prev":[1,}`, `{"prev":{"0":1}}`, `{"exceeded":[5]}`, `{"stats":[]}`,
		`{"type":"bad \u12 escape"}`, `{"type":"bad \q"}`, "{\"type\":\"ctl \x01\"}",
		`{"seq":18446744073709551616}`,
	}
	for _, doc := range docs {
		var dec frameDecoder
		var mine, std Frame
		merr := dec.decode([]byte(doc), &mine)
		serr := json.Unmarshal([]byte(doc), &std)
		if serr == nil {
			t.Fatalf("doc %q: expected json.Unmarshal to fail too; fix the test", doc)
		}
		if merr == nil {
			t.Errorf("doc %q: codec accepted a document json rejects", doc)
			continue
		}
		var de *decodeError
		if !asDecodeError(merr, &de) {
			t.Errorf("doc %q: error %v is not a *decodeError", doc, merr)
		}
	}
}

func asDecodeError(err error, target **decodeError) bool {
	de, ok := err.(*decodeError)
	if ok {
		*target = de
	}
	return ok
}

// TestFrameReader exercises the stream framing layer: one-byte reads (frame
// split across fills), frames larger than the initial buffer, blank-line
// skipping, and a final unterminated line at EOF.
func TestFrameReader(t *testing.T) {
	big := strings.Repeat("x", 10000) // forces buffer growth past 4096
	frames := []Frame{
		{Type: TypeRequest, Seq: 1, Category: "fit", TaskID: 1},
		{Type: TypeObserve, Category: big, TaskID: 2, Peak: resources.New(1, 2, 3, 4), Runtime: 5},
		{Type: TypePing, Seq: 3},
	}
	var wire bytes.Buffer
	for i, f := range frames {
		b, err := appendFrame(nil, &f)
		if err != nil {
			t.Fatal(err)
		}
		wire.Write(b)
		if i == 0 {
			wire.WriteString("\r\n  \n") // blank lines between frames are skipped
		}
	}
	// Final frame without its trailing newline: parsed at EOF.
	last := Frame{Type: TypePong, Seq: 4}
	b, err := appendFrame(nil, &last)
	if err != nil {
		t.Fatal(err)
	}
	wire.Write(bytes.TrimSuffix(b, []byte("\n")))
	want := append(frames, last)

	for name, r := range map[string]io.Reader{
		"one-byte-reads": iotest.OneByteReader(bytes.NewReader(wire.Bytes())),
		"single-read":    bytes.NewReader(wire.Bytes()),
	} {
		fr := newFrameReader(r)
		var got Frame
		for i, w := range want {
			if err := fr.next(&got); err != nil {
				t.Fatalf("%s: frame %d: %v", name, i, err)
			}
			// Clone scratch-aliasing fields before the next decode.
			if got.Exceeded != nil {
				got.Exceeded = append([]string(nil), got.Exceeded...)
			}
			if !reflect.DeepEqual(got, w) {
				t.Fatalf("%s: frame %d:\n got %+v\nwant %+v", name, i, got, w)
			}
		}
		if err := fr.next(&got); err != io.EOF {
			t.Fatalf("%s: expected EOF after last frame, got %v", name, err)
		}
	}
}

// FuzzFrameCodec is the byte-compatibility pin for the encoder and the
// value-compatibility pin for the decoder: for any frame, appendFrame must
// produce exactly json.Encoder's bytes, and decoding those bytes must match
// json.Unmarshal field for field (twice, to prove scratch reuse is sound).
func FuzzFrameCodec(f *testing.F) {
	f.Add("request", "ten", "alg", "fit", "", "", uint64(1), uint64(0), 3, 1.5, 2048.0, 30.25, false, int64(0))
	f.Add("retry", "", "", "x", "", "memory", uint64(9), uint64(7), -1, 1e-7, 1e21, -0.0, false, int64(0))
	f.Add("stats", "a<b>&c\u2028", "", "", "oom \xff\xfe", "", uint64(0), uint64(0), 0, math.MaxFloat64, 5e-324, 0.1, true, int64(-3))
	f.Add("error", "line\nbreak", "", "", "tab\t\"q\"", "", uint64(2), uint64(3), 12, math.NaN(), 0.0, 0.0, true, int64(99))
	f.Fuzz(func(t *testing.T, typ, tenant, alg, category, errStr, exc string,
		seq, seed uint64, taskID int, a, b, rt float64, hasStats bool, statsN int64) {
		fr := Frame{
			Type: typ, Seq: seq, Tenant: tenant, Algorithm: alg, Seed: seed,
			Category: category, TaskID: taskID,
			Prev:    resources.Vector{a, b, -a, a + b},
			Peak:    resources.Vector{b, rt, a * 2, -b},
			Runtime: rt,
			Alloc:   resources.Vector{-rt, a, b, rt},
			Error:   errStr,
		}
		if exc != "" {
			fr.Exceeded = []string{exc, "memory"}
		}
		if hasStats {
			fr.Stats = &TenantStats{
				Tenant: tenant, Connections: taskID, Allocates: statsN,
				Retries: statsN / 2, Observes: -statsN, Decays: statsN % 7,
				Categories: int(seq % 100), Records: taskID / 3,
			}
		}
		want, werr := encodeStd(t, &fr)
		got, gerr := appendFrame(nil, &fr)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error mismatch: json=%v codec=%v (frame %+v)", werr, gerr, fr)
		}
		if werr != nil {
			return // non-finite float; both reject
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encoding mismatch:\n codec: %s\n  json: %s", got, want)
		}
		line := got[:len(got)-1]
		var dec frameDecoder
		var mine, std Frame
		if err := dec.decode(line, &mine); err != nil {
			t.Fatalf("codec rejected its own encoding %s: %v", line, err)
		}
		if err := json.Unmarshal(line, &std); err != nil {
			t.Fatalf("json rejected codec encoding %s: %v", line, err)
		}
		if !reflect.DeepEqual(mine, std) {
			t.Fatalf("decode mismatch:\n codec: %+v\n  json: %+v", mine, std)
		}
		// Second decode through the same decoder: the reused scratch (intern
		// table, exceeded backing array, string buffer) must not leak state.
		var again Frame
		if err := dec.decode(line, &again); err != nil {
			t.Fatalf("second decode failed: %v", err)
		}
		if !reflect.DeepEqual(again, std) {
			t.Fatalf("second decode diverged:\n codec: %+v\n  json: %+v", again, std)
		}
	})
}

// FuzzFrameDecode feeds arbitrary bytes to the decoder and requires exact
// agreement with json.Unmarshal: same accept/reject verdict, and identical
// Frame values on accept.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte(`{"type":"request","seq":1,"prev":[1,2,3,4]}`))
	f.Add([]byte(`{"TYPE":"x","stats":{"tenant":"t"},"stats":{"records":1}}`))
	f.Add([]byte(`{"exceeded":["a",null],"unknown":[{"k":[true,false,null]}]}`))
	f.Add([]byte(`{"error":"\ud83d\ude00\ud800\u2028"}`))
	f.Add([]byte(` null `))
	f.Add([]byte(`{"seq":1e3}`))
	f.Add([]byte("{\"tenant\":\"\xc3\xa9\xff\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec frameDecoder
		var mine, std Frame
		merr := dec.decode(data, &mine)
		serr := json.Unmarshal(data, &std)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("verdict mismatch on %q: codec=%v json=%v", data, merr, serr)
		}
		if merr != nil {
			return
		}
		if !reflect.DeepEqual(mine, std) {
			t.Fatalf("decode mismatch on %q:\n codec: %+v\n  json: %+v", data, mine, std)
		}
	})
}
