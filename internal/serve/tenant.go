package serve

import (
	"sync"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
)

// observation is one retained Observe call, kept in the per-category decay
// window so a reset category can be rebuilt from recent history with the
// original task-ID significance values.
type observation struct {
	taskID  int
	peak    resources.Vector
	runtime float64
}

// tenant is one workflow's isolated allocator state: its own
// allocator.Allocator (and therefore its own record.List/bucketing state and
// its own lock), service counters, and the decay bookkeeping that keeps a
// long-lived tenant's memory bounded.
type tenant struct {
	name string
	alg  allocator.Name

	// mu guards the decay bookkeeping and counters. Prediction calls
	// (Allocate/Retry) deliberately do not take it: they go straight to the
	// allocator, which serializes itself, so a decay replay on the observe
	// path delays at most the allocator-internal critical section, never
	// this tenant's frame routing — and other tenants share nothing at all.
	mu         sync.Mutex
	alloc      *allocator.Allocator
	refs       int       // connections currently registered
	lastActive time.Time // last frame served, for TTL eviction

	allocates int64
	retries   int64
	observes  int64
	decays    int64

	// seen is every category this tenant has observed records for.
	seen map[string]struct{}
	// Per-category decay state: how many records the category has
	// accumulated since its last reset, and the ring of the most recent
	// window observations replayed after a reset.
	counts map[string]int
	recent map[string][]observation

	maxRecords  int // reset a category at this record count; 0 disables
	decayWindow int // observations replayed after a reset
}

func newTenant(name string, alg allocator.Name, seed uint64, maxRecords, decayWindow int) (*tenant, error) {
	a, err := allocator.New(alg, allocator.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &tenant{
		name:        name,
		alg:         alg,
		alloc:       a,
		lastActive:  time.Now(),
		seen:        make(map[string]struct{}),
		counts:      make(map[string]int),
		recent:      make(map[string][]observation),
		maxRecords:  maxRecords,
		decayWindow: decayWindow,
	}, nil
}

// allocate serves a first-attempt prediction.
func (t *tenant) allocate(category string, taskID int) resources.Vector {
	v := t.alloc.Allocate(category, taskID)
	t.mu.Lock()
	t.allocates++
	t.lastActive = time.Now()
	t.mu.Unlock()
	return v
}

// retry serves an escalated prediction after a failed attempt.
func (t *tenant) retry(category string, taskID int, prev resources.Vector, exceeded []resources.Kind) resources.Vector {
	v := t.alloc.Retry(category, taskID, prev, exceeded)
	t.mu.Lock()
	t.retries++
	t.lastActive = time.Now()
	t.mu.Unlock()
	return v
}

// observe feeds one completed task's record into the tenant's allocator and
// applies the decay policy: once a category reaches maxRecords records it is
// reset and rebuilt from the retained window, so the per-category record
// list (and the bucketing state derived from it) never grows beyond
// maxRecords no matter how long the tenant lives.
func (t *tenant) observe(category string, taskID int, peak resources.Vector, runtime float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observes++
	t.lastActive = time.Now()
	t.seen[category] = struct{}{}

	t.alloc.Observe(category, taskID, peak, runtime)

	if t.maxRecords <= 0 {
		return
	}
	ring := t.recent[category]
	ring = append(ring, observation{taskID: taskID, peak: peak, runtime: runtime})
	if len(ring) > t.decayWindow {
		// Shift rather than reslice so the backing array doesn't creep.
		copy(ring, ring[len(ring)-t.decayWindow:])
		ring = ring[:t.decayWindow]
	}
	t.recent[category] = ring
	t.counts[category]++
	if t.counts[category] < t.maxRecords {
		return
	}
	// Decay: drop the category's full history and replay only the window.
	// Recency weighting (significance = task ID) already makes the dropped
	// tail nearly weightless, so predictions move little while memory
	// returns to the window size.
	t.alloc.ResetCategory(category)
	for _, o := range ring {
		t.alloc.Observe(category, o.taskID, o.peak, o.runtime)
	}
	t.counts[category] = len(ring)
	t.decays++
}

// snapshot returns the tenant's current stats.
func (t *tenant) snapshot() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TenantStats{
		Tenant:      t.name,
		Connections: t.refs,
		Allocates:   t.allocates,
		Retries:     t.retries,
		Observes:    t.observes,
		Decays:      t.decays,
	}
	s.Categories = len(t.seen)
	for c := range t.seen {
		s.Records += t.alloc.Records(c)
	}
	return s
}
