package serve

import (
	"io"
	"strconv"

	"dynalloc/internal/jsonwire"
)

// This file is the service's frame layout on top of the shared wire codec in
// internal/jsonwire (which started life here and was extracted so the live
// wq engine could share it). The reflection-based encoding/json round trip
// was the service's dominant cost (~10 allocs and most of the CPU per frame
// on each side), so frames are encoded by appending into a reused buffer and
// decoded by a hand-written scanner into a reused Frame. The encoding is
// pinned byte-compatible with json.Encoder.Encode(Frame) and the decoder
// value-compatible with json.Unmarshal — FuzzFrameCodec and FuzzFrameDecode
// enforce both — so clients built on encoding/json interoperate unchanged
// and the golden parity tests hold bit-identically.

// errNonFiniteFloat mirrors json.Marshal's refusal to encode NaN or ±Inf.
var errNonFiniteFloat = jsonwire.ErrNonFiniteFloat

// decodeError marks a malformed frame, as opposed to an I/O error on the
// underlying connection. The server counts these in Server.DecodeErrors and
// reports them to the peer before hanging up.
type decodeError = jsonwire.DecodeError

// ---------------------------------------------------------------------------
// Encoding

// appendFrame appends the JSON encoding of f plus a trailing newline to dst,
// producing exactly the bytes json.Encoder.Encode(*f) would: same field
// order, same omitempty behavior, same HTML-escaped strings, same float
// formatting. It errors (like json.Marshal) on non-finite floats.
func appendFrame(dst []byte, f *Frame) ([]byte, error) {
	var err error
	dst = append(dst, `{"type":`...)
	dst = jsonwire.AppendString(dst, f.Type)
	if f.Seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, f.Seq, 10)
	}
	if f.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = jsonwire.AppendString(dst, f.Tenant)
	}
	if f.Algorithm != "" {
		dst = append(dst, `,"algorithm":`...)
		dst = jsonwire.AppendString(dst, f.Algorithm)
	}
	if f.Seed != 0 {
		dst = append(dst, `,"seed":`...)
		dst = strconv.AppendUint(dst, f.Seed, 10)
	}
	if f.Category != "" {
		dst = append(dst, `,"category":`...)
		dst = jsonwire.AppendString(dst, f.Category)
	}
	if f.TaskID != 0 {
		dst = append(dst, `,"task_id":`...)
		dst = strconv.AppendInt(dst, int64(f.TaskID), 10)
	}
	// Fixed-size arrays are never "empty", so despite the omitempty tags the
	// three vectors appear in every frame — preserved for byte parity.
	if dst, err = jsonwire.AppendVector(append(dst, `,"prev":`...), f.Prev); err != nil {
		return dst, err
	}
	if len(f.Exceeded) > 0 {
		dst = append(dst, `,"exceeded":[`...)
		for i, s := range f.Exceeded {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = jsonwire.AppendString(dst, s)
		}
		dst = append(dst, ']')
	}
	if dst, err = jsonwire.AppendVector(append(dst, `,"peak":`...), f.Peak); err != nil {
		return dst, err
	}
	if f.Runtime != 0 {
		dst = append(dst, `,"runtime":`...)
		if dst, err = jsonwire.AppendFloat(dst, f.Runtime); err != nil {
			return dst, err
		}
	}
	if dst, err = jsonwire.AppendVector(append(dst, `,"alloc":`...), f.Alloc); err != nil {
		return dst, err
	}
	if f.Stats != nil {
		dst = append(dst, `,"stats":`...)
		dst = appendStats(dst, f.Stats)
	}
	if f.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = jsonwire.AppendString(dst, f.Error)
	}
	return append(dst, '}', '\n'), nil
}

func appendStats(dst []byte, st *TenantStats) []byte {
	dst = append(dst, `{"tenant":`...)
	dst = jsonwire.AppendString(dst, st.Tenant)
	dst = append(dst, `,"connections":`...)
	dst = strconv.AppendInt(dst, int64(st.Connections), 10)
	dst = append(dst, `,"allocates":`...)
	dst = strconv.AppendInt(dst, st.Allocates, 10)
	dst = append(dst, `,"retries":`...)
	dst = strconv.AppendInt(dst, st.Retries, 10)
	dst = append(dst, `,"observes":`...)
	dst = strconv.AppendInt(dst, st.Observes, 10)
	dst = append(dst, `,"decays":`...)
	dst = strconv.AppendInt(dst, st.Decays, 10)
	dst = append(dst, `,"categories":`...)
	dst = strconv.AppendInt(dst, int64(st.Categories), 10)
	dst = append(dst, `,"records":`...)
	dst = strconv.AppendInt(dst, int64(st.Records), 10)
	return append(dst, '}')
}

// ---------------------------------------------------------------------------
// Decoding

// Frame field identifiers, in struct declaration order (the fold-match
// tie-break order encoding/json uses).
const (
	fdType = iota
	fdSeq
	fdTenant
	fdAlgorithm
	fdSeed
	fdCategory
	fdTaskID
	fdPrev
	fdExceeded
	fdPeak
	fdRuntime
	fdAlloc
	fdStats
	fdError
	fdUnknown
)

var frameFieldNames = [...]string{
	"type", "seq", "tenant", "algorithm", "seed", "category",
	"task_id", "prev", "exceeded", "peak", "runtime", "alloc",
	"stats", "error",
}

const (
	sdTenant = iota
	sdConnections
	sdAllocates
	sdRetries
	sdObserves
	sdDecays
	sdCategories
	sdRecords
	sdUnknown
)

var statsFieldNames = [...]string{
	"tenant", "connections", "allocates", "retries",
	"observes", "decays", "categories", "records",
}

// frameDecoder parses one newline-delimited frame per call on a shared
// jsonwire.Decoder, reusing all of its scratch (string intern table,
// Exceeded backing array, unescape buffer) across frames so the steady-state
// decode path allocates nothing.
//
// Semantics match json.Unmarshal into a fresh Frame: case-folded field
// matching, last-duplicate-wins, null leaves fields at their zero value,
// short vectors zero-pad, unknown fields are skipped after validation.
type frameDecoder struct {
	d jsonwire.Decoder
}

// decode parses line (one JSON document, no trailing newline) into f,
// resetting f first. A bare "null" document leaves f zeroed, as
// json.Unmarshal would leave a fresh Frame.
func (dec *frameDecoder) decode(line []byte, f *Frame) error {
	*f = Frame{}
	d := &dec.d
	return d.DecodeObject(line, func(key []byte) error {
		switch frameField(key) {
		case fdType:
			return d.String(&f.Type)
		case fdSeq:
			return d.Uint(&f.Seq)
		case fdTenant:
			return d.String(&f.Tenant)
		case fdAlgorithm:
			return d.String(&f.Algorithm)
		case fdSeed:
			return d.Uint(&f.Seed)
		case fdCategory:
			return d.String(&f.Category)
		case fdTaskID:
			return d.Int(&f.TaskID)
		case fdPrev:
			return d.Vector(&f.Prev)
		case fdExceeded:
			return d.Strings(&f.Exceeded)
		case fdPeak:
			return d.Vector(&f.Peak)
		case fdRuntime:
			return d.Float(&f.Runtime)
		case fdAlloc:
			return d.Vector(&f.Alloc)
		case fdStats:
			return dec.statsField(f)
		case fdError:
			return d.String(&f.Error)
		default:
			return d.Skip()
		}
	})
}

// frameField resolves a decoded key to a Frame field: exact match first,
// then (like encoding/json) the first field equal under Unicode case
// folding.
func frameField(key []byte) int {
	// Exact matches: string(key) in a comparison does not allocate.
	switch string(key) {
	case "type":
		return fdType
	case "seq":
		return fdSeq
	case "tenant":
		return fdTenant
	case "algorithm":
		return fdAlgorithm
	case "seed":
		return fdSeed
	case "category":
		return fdCategory
	case "task_id":
		return fdTaskID
	case "prev":
		return fdPrev
	case "exceeded":
		return fdExceeded
	case "peak":
		return fdPeak
	case "runtime":
		return fdRuntime
	case "alloc":
		return fdAlloc
	case "stats":
		return fdStats
	case "error":
		return fdError
	}
	for i, name := range frameFieldNames {
		if jsonwire.FoldEqual(key, name) {
			return i
		}
	}
	return fdUnknown
}

func statsField(key []byte) int {
	switch string(key) {
	case "tenant":
		return sdTenant
	case "connections":
		return sdConnections
	case "allocates":
		return sdAllocates
	case "retries":
		return sdRetries
	case "observes":
		return sdObserves
	case "decays":
		return sdDecays
	case "categories":
		return sdCategories
	case "records":
		return sdRecords
	}
	for i, name := range statsFieldNames {
		if jsonwire.FoldEqual(key, name) {
			return i
		}
	}
	return sdUnknown
}

// statsField decodes the stats payload. This is the cold path (one frame
// per Stats call), so the TenantStats may allocate; like encoding/json, a
// duplicate key reuses the struct allocated by the first.
func (dec *frameDecoder) statsField(f *Frame) error {
	d := &dec.d
	if null, err := d.Null(); null || err != nil {
		if err == nil {
			f.Stats = nil
		}
		return err
	}
	if f.Stats == nil {
		f.Stats = new(TenantStats)
	}
	st := f.Stats
	return d.Object(func(key []byte) error {
		switch statsField(key) {
		case sdTenant:
			return d.String(&st.Tenant)
		case sdConnections:
			return d.Int(&st.Connections)
		case sdAllocates:
			return d.Int64(&st.Allocates)
		case sdRetries:
			return d.Int64(&st.Retries)
		case sdObserves:
			return d.Int64(&st.Observes)
		case sdDecays:
			return d.Int64(&st.Decays)
		case sdCategories:
			return d.Int(&st.Categories)
		case sdRecords:
			return d.Int(&st.Records)
		default:
			return d.Skip()
		}
	})
}

// ---------------------------------------------------------------------------
// Stream framing

// frameReader reads newline-delimited frames from a connection through the
// shared grow-on-demand line reader, decoding each into a reused Frame. Its
// buffered method lets the server flush coalesced replies exactly when it is
// about to block for more input.
type frameReader struct {
	r   *jsonwire.Reader
	dec frameDecoder
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: jsonwire.NewReader(r)}
}

// next reads the next frame into f. Whitespace-only lines are skipped (the
// old stream decoder treated newlines as inter-frame whitespace); a final
// unterminated line at EOF is parsed as a frame. Malformed frames return a
// *decodeError; transport failures return the underlying error.
func (fr *frameReader) next(f *Frame) error {
	line, err := fr.r.Next()
	if err != nil {
		return err
	}
	return fr.dec.decode(line, f)
}

// buffered reports whether a complete frame line is already in memory, i.e.
// whether next can return without touching the connection.
func (fr *frameReader) buffered() bool {
	return fr.r.Buffered()
}
