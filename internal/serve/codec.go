package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"dynalloc/internal/resources"
)

// This file is the hand-rolled wire codec for the frame protocol. The
// reflection-based encoding/json round trip was the service's dominant cost
// (~10 allocs and most of the CPU per frame on each side), so frames are now
// encoded by appending into a reused buffer and decoded by a hand-written
// scanner into a reused Frame. The encoding is pinned byte-compatible with
// json.Encoder.Encode(Frame) and the decoder value-compatible with
// json.Unmarshal — FuzzFrameCodec and FuzzFrameDecode enforce both — so
// clients built on encoding/json interoperate unchanged and the golden
// parity tests hold bit-identically.

// maxInternStrings bounds the per-connection string intern table so a peer
// streaming unique strings cannot grow it without bound; past the cap new
// strings simply allocate.
const maxInternStrings = 4096

// maxNestingDepth mirrors encoding/json's nesting limit so the decoder
// errors on the same pathological inputs (and cannot recurse unboundedly).
const maxNestingDepth = 10000

// errNonFiniteFloat mirrors json.Marshal's refusal to encode NaN or ±Inf.
var errNonFiniteFloat = errors.New("serve: unsupported value: non-finite float")

// decodeError marks a malformed frame, as opposed to an I/O error on the
// underlying connection. The server counts these in Server.DecodeErrors and
// reports them to the peer before hanging up.
type decodeError struct{ msg string }

func (e *decodeError) Error() string { return "serve: decode frame: " + e.msg }

// ---------------------------------------------------------------------------
// Encoding

// appendFrame appends the JSON encoding of f plus a trailing newline to dst,
// producing exactly the bytes json.Encoder.Encode(*f) would: same field
// order, same omitempty behavior, same HTML-escaped strings, same float
// formatting. It errors (like json.Marshal) on non-finite floats.
func appendFrame(dst []byte, f *Frame) ([]byte, error) {
	var err error
	dst = append(dst, `{"type":`...)
	dst = appendJSONString(dst, f.Type)
	if f.Seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, f.Seq, 10)
	}
	if f.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendJSONString(dst, f.Tenant)
	}
	if f.Algorithm != "" {
		dst = append(dst, `,"algorithm":`...)
		dst = appendJSONString(dst, f.Algorithm)
	}
	if f.Seed != 0 {
		dst = append(dst, `,"seed":`...)
		dst = strconv.AppendUint(dst, f.Seed, 10)
	}
	if f.Category != "" {
		dst = append(dst, `,"category":`...)
		dst = appendJSONString(dst, f.Category)
	}
	if f.TaskID != 0 {
		dst = append(dst, `,"task_id":`...)
		dst = strconv.AppendInt(dst, int64(f.TaskID), 10)
	}
	// Fixed-size arrays are never "empty", so despite the omitempty tags the
	// three vectors appear in every frame — preserved for byte parity.
	if dst, err = appendVector(append(dst, `,"prev":`...), f.Prev); err != nil {
		return dst, err
	}
	if len(f.Exceeded) > 0 {
		dst = append(dst, `,"exceeded":[`...)
		for i, s := range f.Exceeded {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, s)
		}
		dst = append(dst, ']')
	}
	if dst, err = appendVector(append(dst, `,"peak":`...), f.Peak); err != nil {
		return dst, err
	}
	if f.Runtime != 0 {
		dst = append(dst, `,"runtime":`...)
		if dst, err = appendJSONFloat(dst, f.Runtime); err != nil {
			return dst, err
		}
	}
	if dst, err = appendVector(append(dst, `,"alloc":`...), f.Alloc); err != nil {
		return dst, err
	}
	if f.Stats != nil {
		dst = append(dst, `,"stats":`...)
		dst = appendStats(dst, f.Stats)
	}
	if f.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, f.Error)
	}
	return append(dst, '}', '\n'), nil
}

func appendVector(dst []byte, v resources.Vector) ([]byte, error) {
	var err error
	dst = append(dst, '[')
	for i, x := range v {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = appendJSONFloat(dst, x); err != nil {
			return dst, err
		}
	}
	return append(dst, ']'), nil
}

func appendStats(dst []byte, st *TenantStats) []byte {
	dst = append(dst, `{"tenant":`...)
	dst = appendJSONString(dst, st.Tenant)
	dst = append(dst, `,"connections":`...)
	dst = strconv.AppendInt(dst, int64(st.Connections), 10)
	dst = append(dst, `,"allocates":`...)
	dst = strconv.AppendInt(dst, st.Allocates, 10)
	dst = append(dst, `,"retries":`...)
	dst = strconv.AppendInt(dst, st.Retries, 10)
	dst = append(dst, `,"observes":`...)
	dst = strconv.AppendInt(dst, st.Observes, 10)
	dst = append(dst, `,"decays":`...)
	dst = strconv.AppendInt(dst, st.Decays, 10)
	dst = append(dst, `,"categories":`...)
	dst = strconv.AppendInt(dst, int64(st.Categories), 10)
	dst = append(dst, `,"records":`...)
	dst = strconv.AppendInt(dst, int64(st.Records), 10)
	return append(dst, '}')
}

// appendJSONFloat replicates encoding/json's float formatting: shortest
// round-trip representation, 'f' form for 1e-6 <= |v| < 1e21 and 'e' form
// otherwise, with a single leading zero trimmed from small negative
// exponents ("1e-09" -> "1e-9").
func appendJSONFloat(dst []byte, v float64) ([]byte, error) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return dst, errNonFiniteFloat
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, v, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

const hexDigits = "0123456789abcdef"

// htmlSafeFrame[b] reports bytes that pass through unescaped, matching
// encoding/json's htmlSafeSet: printable ASCII minus '"', '\\', '<', '>', '&'.
var htmlSafeFrame = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		t[b] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()

// appendJSONString replicates encoding/json's HTML-escaping string encoder.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafeFrame[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// ---------------------------------------------------------------------------
// Decoding

// Frame field identifiers, in struct declaration order (the fold-match
// tie-break order encoding/json uses).
const (
	fdType = iota
	fdSeq
	fdTenant
	fdAlgorithm
	fdSeed
	fdCategory
	fdTaskID
	fdPrev
	fdExceeded
	fdPeak
	fdRuntime
	fdAlloc
	fdStats
	fdError
	fdUnknown
)

var frameFieldNames = [...]string{
	"type", "seq", "tenant", "algorithm", "seed", "category",
	"task_id", "prev", "exceeded", "peak", "runtime", "alloc",
	"stats", "error",
}

const (
	sdTenant = iota
	sdConnections
	sdAllocates
	sdRetries
	sdObserves
	sdDecays
	sdCategories
	sdRecords
	sdUnknown
)

var statsFieldNames = [...]string{
	"tenant", "connections", "allocates", "retries",
	"observes", "decays", "categories", "records",
}

// frameDecoder parses one newline-delimited frame per call, reusing all of
// its scratch (string intern table, Exceeded backing array, unescape buffer)
// across frames so the steady-state decode path allocates nothing.
//
// Semantics match json.Unmarshal into a fresh Frame: case-folded field
// matching, last-duplicate-wins, null leaves fields at their zero value,
// short vectors zero-pad, unknown fields are skipped after validation.
type frameDecoder struct {
	data  []byte
	pos   int
	depth int

	strings  map[string]string // intern table: hot strings decode alloc-free
	exceeded []string          // backing scratch for Frame.Exceeded
	strBuf   []byte            // scratch for unescaping strings
}

// bstr views b as a string without copying. Used only to feed strconv
// parsers, which do not retain their argument; the byte slice is part of the
// decoder's input buffer and outlives the call.
func bstr(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

func (d *frameDecoder) errf(format string, args ...any) error {
	return &decodeError{msg: fmt.Sprintf(format, args...)}
}

// decode parses line (one JSON document, no trailing newline) into f,
// resetting f first. A bare "null" document leaves f zeroed, as
// json.Unmarshal would leave a fresh Frame.
func (d *frameDecoder) decode(line []byte, f *Frame) error {
	d.data, d.pos, d.depth = line, 0, 0
	*f = Frame{}
	d.skipWS()
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	var err error
	switch d.data[d.pos] {
	case 'n':
		err = d.literal("null")
	case '{':
		err = d.frameObject(f)
	default:
		err = d.errf("frame must be a JSON object")
	}
	if err != nil {
		return err
	}
	d.skipWS()
	if d.pos != len(d.data) {
		return d.errf("trailing data after frame")
	}
	return nil
}

func (d *frameDecoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

func (d *frameDecoder) literal(lit string) error {
	if len(d.data)-d.pos < len(lit) || string(d.data[d.pos:d.pos+len(lit)]) != lit {
		return d.errf("invalid literal at offset %d", d.pos)
	}
	d.pos += len(lit)
	return nil
}

func (d *frameDecoder) push() error {
	d.depth++
	if d.depth > maxNestingDepth {
		return d.errf("exceeded max nesting depth")
	}
	return nil
}

// object steps through the key/value pairs of the JSON object at d.pos,
// invoking field(key) for every value (with d.pos on the value's first
// byte). It factors the brace/comma/colon walk shared by Frame and
// TenantStats objects.
func (d *frameDecoder) object(field func(key []byte) error) error {
	if err := d.push(); err != nil {
		return err
	}
	d.pos++ // '{'
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == '}' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		d.skipWS()
		if d.pos >= len(d.data) || d.data[d.pos] != '"' {
			return d.errf("expected object key at offset %d", d.pos)
		}
		key, err := d.str()
		if err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) || d.data[d.pos] != ':' {
			return d.errf("expected ':' at offset %d", d.pos)
		}
		d.pos++
		d.skipWS()
		if err := field(key); err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return d.errf("unterminated object")
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case '}':
			d.pos++
			d.depth--
			return nil
		default:
			return d.errf("expected ',' or '}' at offset %d", d.pos)
		}
	}
}

func (d *frameDecoder) frameObject(f *Frame) error {
	return d.object(func(key []byte) error {
		switch frameField(key) {
		case fdType:
			return d.stringField(&f.Type)
		case fdSeq:
			return d.uintField(&f.Seq)
		case fdTenant:
			return d.stringField(&f.Tenant)
		case fdAlgorithm:
			return d.stringField(&f.Algorithm)
		case fdSeed:
			return d.uintField(&f.Seed)
		case fdCategory:
			return d.stringField(&f.Category)
		case fdTaskID:
			return d.intField(&f.TaskID)
		case fdPrev:
			return d.vectorField(&f.Prev)
		case fdExceeded:
			return d.exceededField(f)
		case fdPeak:
			return d.vectorField(&f.Peak)
		case fdRuntime:
			return d.floatField(&f.Runtime)
		case fdAlloc:
			return d.vectorField(&f.Alloc)
		case fdStats:
			return d.statsField(f)
		case fdError:
			return d.stringField(&f.Error)
		default:
			return d.skipValue()
		}
	})
}

// frameField resolves a decoded key to a Frame field: exact match first,
// then (like encoding/json) the first field equal under Unicode case
// folding.
func frameField(key []byte) int {
	// Exact matches: string(key) in a comparison does not allocate.
	switch string(key) {
	case "type":
		return fdType
	case "seq":
		return fdSeq
	case "tenant":
		return fdTenant
	case "algorithm":
		return fdAlgorithm
	case "seed":
		return fdSeed
	case "category":
		return fdCategory
	case "task_id":
		return fdTaskID
	case "prev":
		return fdPrev
	case "exceeded":
		return fdExceeded
	case "peak":
		return fdPeak
	case "runtime":
		return fdRuntime
	case "alloc":
		return fdAlloc
	case "stats":
		return fdStats
	case "error":
		return fdError
	}
	for i, name := range frameFieldNames {
		if foldEqual(key, name) {
			return i
		}
	}
	return fdUnknown
}

func statsField(key []byte) int {
	switch string(key) {
	case "tenant":
		return sdTenant
	case "connections":
		return sdConnections
	case "allocates":
		return sdAllocates
	case "retries":
		return sdRetries
	case "observes":
		return sdObserves
	case "decays":
		return sdDecays
	case "categories":
		return sdCategories
	case "records":
		return sdRecords
	}
	for i, name := range statsFieldNames {
		if foldEqual(key, name) {
			return i
		}
	}
	return sdUnknown
}

// foldEqual matches encoding/json's field-name folding, which is defined as
// bytes.EqualFold (ASCII fast path handled there).
func foldEqual(key []byte, name string) bool {
	return len(key) == len(name) && bytes.EqualFold(key, []byte(name))
}

// Field decoders. Each is entered with d.pos on the value's first byte.
// JSON null leaves the target unchanged, matching encoding/json.

func (d *frameDecoder) stringField(dst *string) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	if d.data[d.pos] != '"' {
		return d.errf("expected string at offset %d", d.pos)
	}
	b, err := d.str()
	if err != nil {
		return err
	}
	*dst = d.intern(b)
	return nil
}

func (d *frameDecoder) uintField(dst *uint64) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(bstr(tok), 10, 64)
	if err != nil {
		return d.errf("cannot decode number %s as uint64", tok)
	}
	*dst = v
	return nil
}

func (d *frameDecoder) intField(dst *int) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(bstr(tok), 10, strconv.IntSize)
	if err != nil {
		return d.errf("cannot decode number %s as int", tok)
	}
	*dst = int(v)
	return nil
}

func (d *frameDecoder) floatField(dst *float64) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(bstr(tok), 64)
	if err != nil {
		return d.errf("cannot decode number %s as float64", tok)
	}
	*dst = v
	return nil
}

// vectorField decodes a JSON array into a fixed-size vector with
// encoding/json's array semantics: extra elements are validated but
// discarded, missing elements zero the tail.
func (d *frameDecoder) vectorField(v *resources.Vector) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	if d.data[d.pos] != '[' {
		return d.errf("expected array at offset %d", d.pos)
	}
	if err := d.push(); err != nil {
		return err
	}
	d.pos++
	d.skipWS()
	n := 0
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		d.depth--
		for ; n < int(resources.NumKinds); n++ {
			v[n] = 0
		}
		return nil
	}
	for {
		d.skipWS()
		if n < int(resources.NumKinds) {
			if err := d.floatField(&v[n]); err != nil {
				return err
			}
		} else if err := d.skipValue(); err != nil {
			return err
		}
		n++
		d.skipWS()
		if d.pos >= len(d.data) {
			return d.errf("unterminated array")
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			d.depth--
			for ; n < int(resources.NumKinds); n++ {
				v[n] = 0
			}
			return nil
		default:
			return d.errf("expected ',' or ']' at offset %d", d.pos)
		}
	}
}

// exceededField decodes the exceeded-kind list into the decoder's reused
// backing array. The strings themselves are interned (the well-known kind
// names hit the table), so steady-state retries decode alloc-free. The
// returned slice is valid until the next decode; callers that retain frames
// (the client's response router) copy it.
func (d *frameDecoder) exceededField(f *Frame) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		f.Exceeded = nil
		return nil
	}
	if d.data[d.pos] != '[' {
		return d.errf("expected array at offset %d", d.pos)
	}
	if err := d.push(); err != nil {
		return err
	}
	d.pos++
	if d.exceeded == nil {
		d.exceeded = make([]string, 0, 4)
	}
	d.exceeded = d.exceeded[:0]
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == ']' {
		d.pos++
		d.depth--
		f.Exceeded = d.exceeded
		return nil
	}
	for {
		d.skipWS()
		var s string
		if err := d.stringField(&s); err != nil {
			return err
		}
		d.exceeded = append(d.exceeded, s)
		d.skipWS()
		if d.pos >= len(d.data) {
			return d.errf("unterminated array")
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case ']':
			d.pos++
			d.depth--
			f.Exceeded = d.exceeded
			return nil
		default:
			return d.errf("expected ',' or ']' at offset %d", d.pos)
		}
	}
}

// statsField decodes the stats payload. This is the cold path (one frame
// per Stats call), so the TenantStats may allocate; like encoding/json, a
// duplicate key reuses the struct allocated by the first.
func (d *frameDecoder) statsField(f *Frame) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		f.Stats = nil
		return nil
	}
	if d.data[d.pos] != '{' {
		return d.errf("expected object at offset %d", d.pos)
	}
	if f.Stats == nil {
		f.Stats = new(TenantStats)
	}
	st := f.Stats
	return d.object(func(key []byte) error {
		switch statsField(key) {
		case sdTenant:
			return d.stringField(&st.Tenant)
		case sdConnections:
			return d.intField(&st.Connections)
		case sdAllocates:
			return d.int64Field(&st.Allocates)
		case sdRetries:
			return d.int64Field(&st.Retries)
		case sdObserves:
			return d.int64Field(&st.Observes)
		case sdDecays:
			return d.int64Field(&st.Decays)
		case sdCategories:
			return d.intField(&st.Categories)
		case sdRecords:
			return d.intField(&st.Records)
		default:
			return d.skipValue()
		}
	})
}

func (d *frameDecoder) int64Field(dst *int64) error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	if d.data[d.pos] == 'n' {
		return d.literal("null")
	}
	tok, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(bstr(tok), 10, 64)
	if err != nil {
		return d.errf("cannot decode number %s as int64", tok)
	}
	*dst = v
	return nil
}

// skipValue validates and steps over one JSON value of any shape.
func (d *frameDecoder) skipValue() error {
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	switch c := d.data[d.pos]; {
	case c == '{':
		return d.object(func([]byte) error { return d.skipValue() })
	case c == '[':
		if err := d.push(); err != nil {
			return err
		}
		d.pos++
		d.skipWS()
		if d.pos < len(d.data) && d.data[d.pos] == ']' {
			d.pos++
			d.depth--
			return nil
		}
		for {
			d.skipWS()
			if err := d.skipValue(); err != nil {
				return err
			}
			d.skipWS()
			if d.pos >= len(d.data) {
				return d.errf("unterminated array")
			}
			switch d.data[d.pos] {
			case ',':
				d.pos++
			case ']':
				d.pos++
				d.depth--
				return nil
			default:
				return d.errf("expected ',' or ']' at offset %d", d.pos)
			}
		}
	case c == '"':
		_, err := d.scanString()
		return err
	case c == 't':
		return d.literal("true")
	case c == 'f':
		return d.literal("false")
	case c == 'n':
		return d.literal("null")
	default:
		_, err := d.scanNumber()
		return err
	}
}

// scanNumber validates JSON number grammar (stricter than strconv: no hex,
// no leading '+', '.', or zero-padding) and returns the token.
func (d *frameDecoder) scanNumber() ([]byte, error) {
	start := d.pos
	if d.pos < len(d.data) && d.data[d.pos] == '-' {
		d.pos++
	}
	switch {
	case d.pos >= len(d.data):
		return nil, d.errf("invalid number at offset %d", start)
	case d.data[d.pos] == '0':
		d.pos++
	case d.data[d.pos] >= '1' && d.data[d.pos] <= '9':
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	default:
		return nil, d.errf("invalid number at offset %d", start)
	}
	if d.pos < len(d.data) && d.data[d.pos] == '.' {
		d.pos++
		if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
			return nil, d.errf("invalid number at offset %d", start)
		}
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	}
	if d.pos < len(d.data) && (d.data[d.pos] == 'e' || d.data[d.pos] == 'E') {
		d.pos++
		if d.pos < len(d.data) && (d.data[d.pos] == '+' || d.data[d.pos] == '-') {
			d.pos++
		}
		if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
			return nil, d.errf("invalid number at offset %d", start)
		}
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	}
	return d.data[start:d.pos], nil
}

// scanString validates the string at d.pos and returns the raw (still
// escaped) span between the quotes, advancing past the closing quote.
func (d *frameDecoder) scanString() ([]byte, error) {
	start := d.pos + 1 // past opening '"'
	i := start
	for {
		if i >= len(d.data) {
			return nil, d.errf("unterminated string")
		}
		switch c := d.data[i]; {
		case c == '"':
			d.pos = i + 1
			return d.data[start:i], nil
		case c == '\\':
			if i+1 >= len(d.data) {
				return nil, d.errf("unterminated string escape")
			}
			switch d.data[i+1] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i += 2
			case 'u':
				if i+6 > len(d.data) || !isHex4(d.data[i+2:i+6]) {
					return nil, d.errf("invalid \\u escape at offset %d", i)
				}
				i += 6
			default:
				return nil, d.errf("invalid escape character at offset %d", i)
			}
		case c < 0x20:
			return nil, d.errf("control character in string at offset %d", i)
		default:
			i++
		}
	}
}

func isHex4(b []byte) bool {
	for _, c := range b[:4] {
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// str scans and unescapes the string at d.pos. The returned bytes alias
// either the input line or d.strBuf and are valid only until the next call.
func (d *frameDecoder) str() ([]byte, error) {
	raw, err := d.scanString()
	if err != nil {
		return nil, err
	}
	// Fast path: no escapes and (for non-ASCII content) valid UTF-8 means the
	// decoded value is the raw span itself.
	if bytes.IndexByte(raw, '\\') < 0 {
		ascii := true
		for _, c := range raw {
			if c >= utf8.RuneSelf {
				ascii = false
				break
			}
		}
		if ascii || utf8.Valid(raw) {
			return raw, nil
		}
	}
	return d.unescape(raw), nil
}

// unescape rewrites a validated raw string span into d.strBuf with
// json.Unmarshal's unquote semantics: standard escapes, \uXXXX with
// surrogate-pair combination (lone surrogates become U+FFFD), and invalid
// UTF-8 bytes replaced by U+FFFD.
func (d *frameDecoder) unescape(raw []byte) []byte {
	out := d.strBuf[:0]
	for i := 0; i < len(raw); {
		switch c := raw[i]; {
		case c == '\\':
			switch raw[i+1] {
			case '"', '\\', '/':
				out = append(out, raw[i+1])
				i += 2
			case 'b':
				out = append(out, '\b')
				i += 2
			case 'f':
				out = append(out, '\f')
				i += 2
			case 'n':
				out = append(out, '\n')
				i += 2
			case 'r':
				out = append(out, '\r')
				i += 2
			case 't':
				out = append(out, '\t')
				i += 2
			case 'u':
				r := rune(hex4(raw[i+2 : i+6]))
				i += 6
				if utf16.IsSurrogate(r) {
					var r2 rune = -1
					if i+6 <= len(raw) && raw[i] == '\\' && raw[i+1] == 'u' && isHex4(raw[i+2:i+6]) {
						r2 = rune(hex4(raw[i+2 : i+6]))
					}
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						out = utf8.AppendRune(out, dec)
						i += 6
						break
					}
					r = utf8.RuneError
				}
				out = utf8.AppendRune(out, r)
			}
		case c < utf8.RuneSelf:
			out = append(out, c)
			i++
		default:
			r, size := utf8.DecodeRune(raw[i:])
			if r == utf8.RuneError && size == 1 {
				out = utf8.AppendRune(out, utf8.RuneError)
				i++
				break
			}
			out = append(out, raw[i:i+size]...)
			i += size
		}
	}
	d.strBuf = out
	return out
}

func hex4(b []byte) uint32 {
	var v uint32
	for _, c := range b[:4] {
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | uint32(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		default: // 'A'..'F', validated by isHex4
			v = v<<4 | uint32(c-'A'+10)
		}
	}
	return v
}

// intern returns b as a string, reusing a previously allocated copy when the
// same bytes have been seen on this connection. Frame types, tenant names,
// category names, and resource-kind names all repeat, so the steady-state
// decode path performs no string allocation.
func (d *frameDecoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.strings[string(b)]; ok { // no-alloc map lookup
		return s
	}
	s := string(b)
	if d.strings == nil {
		d.strings = make(map[string]string, 16)
	}
	if len(d.strings) < maxInternStrings {
		d.strings[s] = s
	}
	return s
}

// ---------------------------------------------------------------------------
// Stream framing

// frameReader reads newline-delimited frames from a connection into a
// reused buffer. Its buffered method lets the server flush coalesced replies
// exactly when it is about to block for more input.
type frameReader struct {
	r       io.Reader
	buf     []byte
	start   int // unconsumed window start
	end     int // unconsumed window end
	scanned int // bytes of the window already searched for '\n'
	dec     frameDecoder
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: r, buf: make([]byte, 4096)}
}

// next reads the next frame into f. Whitespace-only lines are skipped (the
// old stream decoder treated newlines as inter-frame whitespace); a final
// unterminated line at EOF is parsed as a frame. Malformed frames return a
// *decodeError; transport failures return the underlying error.
func (fr *frameReader) next(f *Frame) error {
	for {
		window := fr.buf[fr.start:fr.end]
		if i := bytes.IndexByte(window[fr.scanned:], '\n'); i >= 0 {
			line := window[:fr.scanned+i]
			fr.start += fr.scanned + i + 1
			fr.scanned = 0
			if isBlank(line) {
				continue
			}
			return fr.dec.decode(line, f)
		}
		fr.scanned = len(window)
		if err := fr.fill(); err != nil {
			if err == io.EOF && fr.end > fr.start && !isBlank(fr.buf[fr.start:fr.end]) {
				line := fr.buf[fr.start:fr.end]
				fr.start, fr.scanned = fr.end, 0
				return fr.dec.decode(line, f)
			}
			return err
		}
	}
}

// buffered reports whether a complete frame line is already in memory, i.e.
// whether next can return without touching the connection.
func (fr *frameReader) buffered() bool {
	window := fr.buf[fr.start:fr.end]
	if i := bytes.IndexByte(window[fr.scanned:], '\n'); i >= 0 {
		return true
	}
	fr.scanned = len(window)
	return false
}

// fill compacts the window to the front of the buffer, growing it when a
// single frame exceeds the current size, and reads more bytes.
func (fr *frameReader) fill() error {
	if fr.start > 0 {
		copy(fr.buf, fr.buf[fr.start:fr.end])
		fr.end -= fr.start
		fr.start = 0
	}
	if fr.end == len(fr.buf) {
		grown := make([]byte, 2*len(fr.buf))
		copy(grown, fr.buf[:fr.end])
		fr.buf = grown
	}
	n, err := fr.r.Read(fr.buf[fr.end:])
	fr.end += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

func isBlank(line []byte) bool {
	for _, c := range line {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}
