package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/allocator"
	"dynalloc/internal/resources"
)

// ErrServerClosed reports that the server was (or is being) closed.
var ErrServerClosed = errors.New("serve: server closed")

// Server is the multi-tenant allocator service: it accepts client
// connections, routes each connection's frames to its registered tenant, and
// keeps every tenant's allocator state isolated. It is safe for concurrent
// use; every connection is served by its own goroutine and tenants share no
// state with each other.
type Server struct {
	mu      sync.Mutex
	ln      net.Listener
	tenants map[string]*tenant
	conns   map[*serverConn]struct{}
	closed  bool

	// options
	maxRecords   int
	decayWindow  int
	tenantTTL    time.Duration
	drainTimeout time.Duration

	sweepDone chan struct{}
	sweepWG   sync.WaitGroup
	connWG    sync.WaitGroup

	tenantsEvicted int64
	decodeErrors   atomic.Int64
}

// serverConn is one client connection. All of its frame scratch (the decoded
// request, the reply under construction, the encode buffer, the parsed
// exceeded-kind list) is connection-owned and reused across frames, so the
// steady-state request path performs no per-frame allocation.
type serverConn struct {
	conn   net.Conn
	sendMu sync.Mutex // guards bw and enc (drain frames arrive off-goroutine)
	bw     *bufio.Writer
	enc    []byte // appendFrame scratch
	tenant *tenant

	// Scratch owned by the serveConn goroutine.
	req      Frame
	reply    Frame
	exceeded []resources.Kind
}

// send encodes f into the connection's write buffer. Replies are coalesced:
// the buffer is flushed by serveConn only when the read side is about to
// block (or when flush is forced, e.g. for drain and pre-hangup error
// frames), so N pipelined requests cost one write syscall.
func (c *serverConn) send(f *Frame, flush bool) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.enc = c.enc[:0]
	var err error
	c.enc, err = appendFrame(c.enc, f)
	if err == nil {
		_, err = c.bw.Write(c.enc)
	}
	if err == nil && flush {
		err = c.bw.Flush()
	}
	return err
}

func (c *serverConn) flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.bw.Buffered() == 0 {
		return nil
	}
	return c.bw.Flush()
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxRecords bounds per-category memory: once a tenant's category
// accumulates n records it is reset and rebuilt from the most recent
// DecayWindow observations. Zero (the default) disables decay, matching the
// embedded allocator exactly — required for byte-identical parity streams.
func WithMaxRecords(n int) ServerOption {
	return func(s *Server) { s.maxRecords = n }
}

// WithDecayWindow sets how many recent observations survive a decay reset.
// Zero defaults to half of MaxRecords.
func WithDecayWindow(n int) ServerOption {
	return func(s *Server) { s.decayWindow = n }
}

// WithTenantTTL enables tenant eviction: a tenant with no registered
// connections and no frame served for d is dropped entirely, freeing its
// record state. Zero (the default) keeps idle tenants forever so a client
// may reconnect and continue its learned stream.
func WithTenantTTL(d time.Duration) ServerOption {
	return func(s *Server) { s.tenantTTL = d }
}

// WithServerDrainTimeout bounds how long Close waits for in-flight
// connections after sending them drain frames. The default is 5s.
func WithServerDrainTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.drainTimeout = d }
}

// NewServer creates an allocator service.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		tenants:      make(map[string]*tenant),
		conns:        make(map[*serverConn]struct{}),
		drainTimeout: 5 * time.Second,
		sweepDone:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.maxRecords > 0 && s.decayWindow <= 0 {
		s.decayWindow = s.maxRecords / 2
	}
	if s.decayWindow >= s.maxRecords && s.maxRecords > 0 {
		// The replayed window must be strictly smaller than the trigger or
		// a decay would immediately re-trigger on the next observation.
		s.decayWindow = s.maxRecords - 1
	}
	return s
}

// Listen starts accepting clients on addr (e.g. "127.0.0.1:0") and returns
// the bound address. When a tenant TTL is configured the eviction sweeper
// starts alongside the accept loop.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	if s.tenantTTL > 0 {
		s.sweepWG.Add(1)
		go s.sweepLoop()
	}
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		c := &serverConn{conn: conn, bw: bufio.NewWriterSize(conn, 16<<10)}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// sweepLoop evicts tenants that have been idle (no connections, no frames)
// past the TTL, bounding total memory across tenant churn the way the decay
// window bounds it within a tenant.
func (s *Server) sweepLoop() {
	defer s.sweepWG.Done()
	ticker := time.NewTicker(s.tenantTTL / 2)
	defer ticker.Stop()
	for {
		select {
		case <-s.sweepDone:
			return
		case <-ticker.C:
		}
		now := time.Now()
		s.mu.Lock()
		for name, t := range s.tenants {
			t.mu.Lock()
			idle := t.refs == 0 && now.Sub(t.lastActive) > s.tenantTTL
			t.mu.Unlock()
			if idle {
				delete(s.tenants, name)
				s.tenantsEvicted++
			}
		}
		s.mu.Unlock()
	}
}

// register resolves or creates the tenant for a connection's first frame.
// Re-registering an existing tenant attaches to its live state (algorithm
// and seed of the first registration win), so reconnecting clients continue
// the learned stream.
func (s *Server) register(f *Frame) (*tenant, error) {
	if f.Tenant == "" {
		return nil, fmt.Errorf("serve: register frame without tenant name")
	}
	algName := f.Algorithm
	if algName == "" {
		algName = string(allocator.Exhaustive)
	}
	alg, err := allocator.ParseName(algName)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	t, ok := s.tenants[f.Tenant]
	if !ok {
		t, err = newTenant(f.Tenant, alg, f.Seed, s.maxRecords, s.decayWindow)
		if err != nil {
			return nil, err
		}
		s.tenants[f.Tenant] = t
	}
	t.mu.Lock()
	t.refs++
	t.lastActive = time.Now()
	t.mu.Unlock()
	return t, nil
}

func (s *Server) serveConn(c *serverConn) {
	defer s.connWG.Done()
	defer c.conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		if c.tenant != nil {
			c.tenant.mu.Lock()
			c.tenant.refs--
			c.tenant.lastActive = time.Now()
			c.tenant.mu.Unlock()
		}
	}()

	fr := newFrameReader(c.conn)
	var derr *decodeError
	for {
		// Flush coalesced replies exactly when the reader is about to block:
		// while a pipelining client keeps complete frames buffered, replies
		// accumulate and go out in one write.
		if !fr.buffered() {
			if err := c.flush(); err != nil {
				return
			}
		}
		if err := fr.next(&c.req); err != nil {
			if errors.As(err, &derr) {
				// A malformed frame poisons the stream (framing can no
				// longer be trusted): count it, tell the client why, and
				// hang up.
				s.decodeErrors.Add(1)
				c.reply = Frame{Type: TypeError, Error: derr.Error()}
				_ = c.send(&c.reply, true)
			}
			return
		}
		f := &c.req
		if c.tenant == nil {
			// The first frame must register a tenant; anything else is a
			// protocol error the client can read before we hang up.
			if f.Type != TypeRegister {
				c.reply = Frame{Type: TypeError, Seq: f.Seq,
					Error: fmt.Sprintf("first frame must be %q, got %q", TypeRegister, f.Type)}
				_ = c.send(&c.reply, true)
				return
			}
			t, err := s.register(f)
			if err != nil {
				c.reply = Frame{Type: TypeError, Seq: f.Seq, Error: err.Error()}
				_ = c.send(&c.reply, true)
				return
			}
			c.tenant = t
			c.reply = Frame{Type: TypeAck, Seq: f.Seq, Tenant: t.name, Algorithm: string(t.alg)}
			if err := c.send(&c.reply, true); err != nil {
				return
			}
			continue
		}
		if err := s.handleFrame(c, f); err != nil {
			return
		}
	}
}

// handleFrame serves one post-registration frame, reusing the connection's
// reply and exceeded scratch. A returned error means the connection is
// beyond saving (write failed); protocol-level problems are reported to the
// client as error frames instead.
func (s *Server) handleFrame(c *serverConn, f *Frame) error {
	t := c.tenant
	switch f.Type {
	case TypeRequest:
		c.reply = Frame{Type: TypeAlloc, Seq: f.Seq, Alloc: t.allocate(f.Category, f.TaskID)}
		return c.send(&c.reply, false)
	case TypeRetry:
		c.exceeded = c.exceeded[:0]
		for _, name := range f.Exceeded {
			k, err := resources.ParseKind(name)
			if err != nil {
				c.reply = Frame{Type: TypeError, Seq: f.Seq, Error: err.Error()}
				return c.send(&c.reply, false)
			}
			c.exceeded = append(c.exceeded, k)
		}
		c.reply = Frame{Type: TypeAlloc, Seq: f.Seq, Alloc: t.retry(f.Category, f.TaskID, f.Prev, c.exceeded)}
		return c.send(&c.reply, false)
	case TypeObserve:
		t.observe(f.Category, f.TaskID, f.Peak, f.Runtime)
		return nil
	case TypePing:
		c.reply = Frame{Type: TypePong, Seq: f.Seq}
		return c.send(&c.reply, false)
	case TypeStats:
		snap := t.snapshot()
		c.reply = Frame{Type: TypeStats, Seq: f.Seq, Stats: &snap}
		return c.send(&c.reply, false)
	case TypeRegister:
		c.reply = Frame{Type: TypeError, Seq: f.Seq, Error: "connection already registered"}
		return c.send(&c.reply, false)
	default:
		c.reply = Frame{Type: TypeError, Seq: f.Seq, Error: fmt.Sprintf("unknown frame type %q", f.Type)}
		return c.send(&c.reply, false)
	}
}

// Tenants returns the number of live tenants.
func (s *Server) Tenants() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// TenantsEvicted returns how many idle tenants the TTL sweeper dropped.
func (s *Server) TenantsEvicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantsEvicted
}

// DecodeErrors returns how many malformed frames the server has rejected
// across all connections. A nonzero count means some peer is sending
// garbage: each such frame is answered with an error frame, counted here,
// and its connection closed (a malformed line means the stream's framing
// can no longer be trusted).
func (s *Server) DecodeErrors() int64 {
	return s.decodeErrors.Load()
}

// Stats returns a snapshot of every live tenant's counters, sorted by
// tenant name.
func (s *Server) Stats() []TenantStats {
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	out := make([]TenantStats, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, t.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Close gracefully drains the service, mirroring wq.Manager.Close: stop
// accepting, tell every connected client to finish with a drain frame, wait
// for connections to hang up within the drain timeout, then force-close the
// stragglers. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	close(s.sweepDone)
	s.sweepWG.Wait()

	for _, c := range conns {
		// A failed drain write means the client is already gone; its
		// connection goroutine is unwinding on its own.
		drain := Frame{Type: TypeDrain}
		_ = c.send(&drain, true)
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.drainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
}
