package sim

import (
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/workflow"
)

// The dispatch-path benchmark suite: every scenario is chosen to stress a
// different part of the simulator hot path (the ready queue, the worker
// scan, the eviction requeue) rather than the allocator, so regressions in
// the engine itself are visible. `make bench` runs these and records the
// ns/op and allocs/op trajectory in BENCH_sim.json.

// benchRun executes one simulation per iteration and fails the benchmark on
// any simulator error.
func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkflow generates one synthetic workload or aborts the benchmark.
func benchWorkflow(b *testing.B, name string, tasks int, seed uint64) *workflow.Workflow {
	b.Helper()
	w, err := workflow.ByName(name, tasks, seed)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkSimDispatchChurn10k is the headline dispatch-heavy scenario: a
// 10k-task workload on a churny pool, so the engine sees thousands of
// evictions, requeues, and full ready-queue scans. A policy with cheap
// predictions (max-seen) keeps the allocator off the profile.
func BenchmarkSimDispatchChurn10k(b *testing.B) {
	w := benchWorkflow(b, "bimodal", 10000, 42)
	pol := allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 1})
	benchRun(b, Config{
		Workflow: w,
		Policy:   pol,
		Pool: opportunistic.Churn{
			Initial: 30, MeanLifetime: 900, MeanInterval: 120,
			Horizon: 2e5, KeepLastAlive: true,
		},
		PoolSeed: 7,
	})
}

// BenchmarkSimDispatchSubmitWindow10k stresses the window-gated queue scan:
// with a small SubmitWindow most of the ready queue is ungenerated on every
// dispatch pass, so queue traversal cost dominates.
func BenchmarkSimDispatchSubmitWindow10k(b *testing.B) {
	w := benchWorkflow(b, "uniform", 10000, 42)
	w.SubmitWindow = 100
	pol := allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 1})
	benchRun(b, Config{
		Workflow: w,
		Policy:   pol,
		Pool:     opportunistic.Static{N: 50},
		PoolSeed: 7,
	})
}

// BenchmarkSimDispatchQueuePressure keeps the pool tiny relative to the
// task count so nearly every dispatch pass walks a long ready queue and
// most scans end in a placement miss.
func BenchmarkSimDispatchQueuePressure(b *testing.B) {
	w := benchWorkflow(b, "normal", 5000, 42)
	pol := allocator.MustNew(allocator.WholeMachine, allocator.Config{Seed: 1})
	benchRun(b, Config{
		Workflow: w,
		Policy:   pol,
		Pool:     opportunistic.Static{N: 4},
		PoolSeed: 7,
	})
}

// BenchmarkSimPaperPool1k is the paper's own evaluation shape (1000 tasks,
// 20-to-50-worker backfill pool) — the smallest end-to-end trajectory
// point.
func BenchmarkSimPaperPool1k(b *testing.B) {
	w := benchWorkflow(b, "uniform", 0, 42)
	pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 1})
	benchRun(b, Config{
		Workflow: w,
		Policy:   pol,
		Pool:     opportunistic.PaperPool(),
		PoolSeed: 42,
	})
}

// BenchmarkSimPlacementPolicies compares the per-policy cost of the worker
// scan itself on a mid-size run.
func BenchmarkSimPlacementPolicies(b *testing.B) {
	w := benchWorkflow(b, "bimodal", 2000, 42)
	for _, p := range Placements() {
		if p == Locality {
			continue // needs the data layer; covered by the vine tests
		}
		b.Run(p.String(), func(b *testing.B) {
			pol := allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 1})
			benchRun(b, Config{
				Workflow: w,
				Policy:   pol,
				Pool:     opportunistic.Static{N: 20},
				PoolSeed: 7,
				Place:    p,
			})
		})
	}
}
