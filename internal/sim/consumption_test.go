package sim

import (
	"testing"

	"dynalloc/internal/resources"
)

func vec(c, m, d, t float64) resources.Vector { return resources.New(c, m, d, t) }

func kindsEqual(got []resources.Kind, want ...resources.Kind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestConsumptionModelString(t *testing.T) {
	for _, m := range []ConsumptionModel{RampLinear, PeakAtEnd, PeakImmediate} {
		parsed, err := ParseConsumptionModel(m.String())
		if err != nil || parsed != m {
			t.Errorf("round-trip of %v failed: %v, %v", m, parsed, err)
		}
	}
	if _, err := ParseConsumptionModel("bogus"); err == nil {
		t.Error("bogus model should fail to parse")
	}
}

func TestAttemptResultSuccess(t *testing.T) {
	peak := vec(1, 400, 100, 0)
	alloc := vec(1, 400, 100, resources.Unlimited) // a == c succeeds (c <= c_a)
	for _, m := range []ConsumptionModel{RampLinear, PeakAtEnd, PeakImmediate} {
		dur, exceeded := EvaluateAttempt(m, peak, 100, alloc)
		if exceeded != nil || dur != 100 {
			t.Errorf("%v: dur=%v exceeded=%v, want success at 100", m, dur, exceeded)
		}
	}
}

func TestAttemptResultRampLinearKillTime(t *testing.T) {
	// Memory peak 400, allocated 200: linear ramp crosses at t·(200/400).
	peak := vec(0.5, 400, 10, 0)
	alloc := vec(1, 200, 1024, resources.Unlimited)
	dur, exceeded := EvaluateAttempt(RampLinear, peak, 100, alloc)
	if dur != 50 {
		t.Errorf("kill time = %v, want 50", dur)
	}
	if !kindsEqual(exceeded, resources.Memory) {
		t.Errorf("exceeded = %v, want [memory]", exceeded)
	}
}

func TestAttemptResultRampLinearEarliestKindWins(t *testing.T) {
	// Cores cross at 50 (peak 2, alloc 1), memory at 75 (peak 400, alloc
	// 300): the monitor reports only the first crossing.
	peak := vec(2, 400, 10, 0)
	alloc := vec(1, 300, 1024, resources.Unlimited)
	dur, exceeded := EvaluateAttempt(RampLinear, peak, 100, alloc)
	if dur != 50 {
		t.Errorf("kill time = %v, want 50", dur)
	}
	if !kindsEqual(exceeded, resources.Cores) {
		t.Errorf("exceeded = %v, want [cores]", exceeded)
	}
}

func TestAttemptResultRampLinearSimultaneousCrossing(t *testing.T) {
	// Both kinds allocated exactly half their peak cross together.
	peak := vec(2, 400, 10, 0)
	alloc := vec(1, 200, 1024, resources.Unlimited)
	dur, exceeded := EvaluateAttempt(RampLinear, peak, 100, alloc)
	if dur != 50 {
		t.Errorf("kill time = %v, want 50", dur)
	}
	if !kindsEqual(exceeded, resources.Cores, resources.Memory) {
		t.Errorf("exceeded = %v, want [cores memory]", exceeded)
	}
}

func TestAttemptResultTimeExhaustion(t *testing.T) {
	peak := vec(1, 100, 10, 0)
	alloc := vec(2, 200, 100, 60) // time allocation below the 100 s runtime
	dur, exceeded := EvaluateAttempt(RampLinear, peak, 100, alloc)
	if dur != 60 {
		t.Errorf("kill time = %v, want 60 (time allocation elapses)", dur)
	}
	if !kindsEqual(exceeded, resources.Time) {
		t.Errorf("exceeded = %v, want [time]", exceeded)
	}
}

func TestAttemptResultPeakAtEnd(t *testing.T) {
	peak := vec(2, 400, 10, 0)
	alloc := vec(1, 200, 1024, resources.Unlimited)
	dur, exceeded := EvaluateAttempt(PeakAtEnd, peak, 100, alloc)
	if dur != 100 {
		t.Errorf("duration = %v, want the full runtime", dur)
	}
	if !kindsEqual(exceeded, resources.Cores, resources.Memory) {
		t.Errorf("exceeded = %v, want every over-consumed kind", exceeded)
	}
}

func TestAttemptResultPeakImmediate(t *testing.T) {
	peak := vec(2, 400, 10, 0)
	alloc := vec(1, 200, 1024, resources.Unlimited)
	dur, exceeded := EvaluateAttempt(PeakImmediate, peak, 100, alloc)
	if dur != 0 {
		t.Errorf("duration = %v, want 0", dur)
	}
	if len(exceeded) != 2 {
		t.Errorf("exceeded = %v", exceeded)
	}
}

func TestAttemptResultZeroPeakNeverExceeds(t *testing.T) {
	peak := vec(0, 0, 0, 0)
	alloc := vec(1, 1, 1, resources.Unlimited)
	dur, exceeded := EvaluateAttempt(RampLinear, peak, 10, alloc)
	if exceeded != nil || dur != 10 {
		t.Errorf("zero-peak task should always succeed: dur=%v exceeded=%v", dur, exceeded)
	}
}
