package sim

import (
	"testing"

	"dynalloc/internal/metrics"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// TestEvictionRequeueAscendingBlock is the regression for the eviction
// requeue ordering bug: victims were sorted ascending but prepended one at
// a time, leaving the queue front in *descending* task order. The whole
// sorted block must jump the queue as a unit, ahead of previously queued
// work, matching the live wq engine's recovery order.
func TestEvictionRequeueAscendingBlock(t *testing.T) {
	s := &simulator{cfg: Config{
		Workflow: &workflow.Workflow{},
		Policy:   stubbornPolicy{},
	}.withDefaults()}
	s.src = (&workflow.Workflow{}).Stream()
	s.drained = true // nothing left to generate; the 12 tasks below are the window
	for i := 0; i < 12; i++ {
		*s.store.pushBack() = simTask{}
	}
	s.generated = 12
	s.futureArrivals = 1 // a worker is still due, so dispatch won't declare the queue stranded
	s.capIdx = newCapIndex(1)

	w := newSimWorker(0, resources.PaperWorker())
	for _, idx := range []int{9, 3, 5} { // deliberately unsorted
		s.store.get(idx).hasAlloc = true
		w.running[idx] = runningTask{endEv: s.engine.After(100, func() {})}
	}
	s.aliveHead, s.aliveTail, s.alive = w, w, 1
	s.byID = []*simWorker{w}
	s.capIdx.update(0, w)
	s.ready.PushBack(11) // already waiting before the eviction

	s.onEviction(w.id)

	if s.err != nil {
		t.Fatal(s.err)
	}
	want := []int{3, 5, 9, 11}
	if got := queueContents(&s.ready); !equalInts(got, want) {
		t.Errorf("ready queue after eviction = %v, want %v", got, want)
	}
	if s.alive != 0 || s.aliveHead != nil || s.aliveTail != nil {
		t.Errorf("evicted worker still in the alive chain (%d workers)", s.alive)
	}
	if s.evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.evictions)
	}
	for _, idx := range []int{3, 5, 9} {
		a := s.store.get(idx).outcome.Attempts
		if len(a) != 1 || a[0].Status != metrics.Evicted {
			t.Errorf("task %d attempts = %+v, want one evicted attempt", idx, a)
		}
	}
}
