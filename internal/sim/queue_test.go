package sim

import (
	"math/rand/v2"
	"testing"
)

func queueContents(q *taskQueue) []int {
	out := make([]int, 0, q.Len())
	for i := 0; i < q.Len(); i++ {
		out = append(out, q.At(i))
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTaskQueueBasics(t *testing.T) {
	var q taskQueue
	if q.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 0; i < 40; i++ { // crosses the initial capacity twice
		q.PushBack(i)
	}
	q.PushFront(-1)
	want := []int{-1}
	for i := 0; i < 40; i++ {
		want = append(want, i)
	}
	if got := queueContents(&q); !equalInts(got, want) {
		t.Fatalf("contents = %v, want %v", got, want)
	}
	if v := q.PopFront(); v != -1 {
		t.Fatalf("PopFront = %d, want -1", v)
	}
	q.Set(0, 99)
	if q.At(0) != 99 {
		t.Fatal("Set/At disagree")
	}
	q.Truncate(3)
	if got := queueContents(&q); !equalInts(got, []int{99, 1, 2}) {
		t.Fatalf("after truncate: %v", got)
	}
}

func TestTaskQueuePushFrontAllKeepsBlockOrder(t *testing.T) {
	var q taskQueue
	q.PushBack(10)
	q.PushBack(11)
	q.PushFrontAll([]int{1, 2, 3})
	if got := queueContents(&q); !equalInts(got, []int{1, 2, 3, 10, 11}) {
		t.Fatalf("contents = %v, want [1 2 3 10 11]", got)
	}
	// A block larger than the remaining capacity must still land in order.
	big := make([]int, 100)
	for i := range big {
		big[i] = 100 + i
	}
	q.PushFrontAll(big)
	got := queueContents(&q)
	if len(got) != 105 || got[0] != 100 || got[99] != 199 || got[100] != 1 {
		t.Fatalf("large block prepend broke order: %v", got[:5])
	}
}

func TestTaskQueuePanics(t *testing.T) {
	var q taskQueue
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("PopFront", func() { q.PopFront() })
	mustPanic("Truncate", func() { q.Truncate(1) })
}

// TestTaskQueueMatchesSlice drives the ring buffer and a plain-slice model
// through the same randomized operation sequence — including the in-place
// compaction pattern dispatch uses — and demands identical contents at
// every step.
func TestTaskQueueMatchesSlice(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	var q taskQueue
	var model []int
	next := 0
	for step := 0; step < 5000; step++ {
		switch op := r.IntN(5); {
		case op == 0: // push back
			q.PushBack(next)
			model = append(model, next)
			next++
		case op == 1: // push front
			q.PushFront(next)
			model = append([]int{next}, model...)
			next++
		case op == 2 && len(model) > 0: // pop front
			got, want := q.PopFront(), model[0]
			model = model[1:]
			if got != want {
				t.Fatalf("step %d: PopFront = %d, want %d", step, got, want)
			}
		case op == 3: // block prepend, eviction-style
			block := []int{next, next + 1, next + 2}
			next += 3
			q.PushFrontAll(block)
			model = append(append([]int{}, block...), model...)
		case op == 4 && len(model) > 0: // dispatch-style compaction
			kept := 0
			var keptModel []int
			for i := 0; i < q.Len(); i++ {
				if q.At(i)%3 == 0 { // drop every third value
					continue
				}
				q.Set(kept, q.At(i))
				kept++
				keptModel = append(keptModel, model[i])
			}
			q.Truncate(kept)
			model = keptModel
		}
		if got := queueContents(&q); !equalInts(got, model) {
			t.Fatalf("step %d: queue %v diverged from model %v", step, got, model)
		}
	}
}
