package sim

import (
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/dist"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// benchStream drives nTasks lazily generated tasks through the streaming
// engine on a pool that churns through roughly horizon workers (mean lease
// 260s against ~130s tasks, so evictions and retries are constant), folding
// outcomes into the accumulator as they finish. The peak-window metric is
// the largest number of task records alive at once — the run's working set
// is that window, not the task count.
func benchStream(b *testing.B, nTasks, window int, horizon float64) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := workflow.SourceByName("uniform", nTasks, 42)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(Config{
			Source: workflow.WithSubmitWindow(src, window),
			Policy: allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 42}),
			Pool: opportunistic.Churn{
				Initial: 256, MeanLifetime: 260, MeanInterval: 1,
				Horizon: horizon, KeepLastAlive: true,
			},
			PoolSeed:        42,
			DiscardOutcomes: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Acc.Tasks() != nTasks {
			b.Fatalf("completed %d of %d tasks", res.Acc.Tasks(), nTasks)
		}
		b.ReportMetric(float64(res.PeakWindow), "peak-window")
		b.ReportMetric(float64(res.PeakWorkers), "peak-workers")
	}
}

// BenchmarkStream1M is the headline scaling scenario: one million tasks
// against ~100k churning workers in one process. It runs close to a minute,
// so it is recorded by `make bench-stream` rather than the default suite
// (and is deliberately outside the BenchmarkSim pattern).
func BenchmarkStream1M(b *testing.B) { benchStream(b, 1_000_000, 16384, 1e5) }

// BenchmarkStream100k is the same shape at a tenth the scale (~10k churning
// workers); `make bench-stream-smoke` runs it in ci, asserting the
// allocs/op ceiling that keeps the engine's footprint window-bounded.
func BenchmarkStream100k(b *testing.B) { benchStream(b, 100_000, 16384, 1e4) }

// BenchmarkPlacementIndex100k probes the capacity index at 100k worker
// slots under a mixed load (uniform fill, so ~1 in 9 workers is too full
// for the probe allocation). Updates and first-fit/worst-fit queries are
// O(log W); best-fit is exact branch-and-bound — its score lower bound
// keeps pointing into subtrees of too-full workers, so under mixed loads
// it degenerates toward the cost of the linear scan it replaced. The
// sub-runs keep those costs separately visible in the trajectory.
func BenchmarkPlacementIndex100k(b *testing.B) {
	const n = 100_000
	shape := resources.PaperWorker()
	ci := newCapIndex(n)
	r := dist.NewRand(7)
	workers := make([]*simWorker, n)
	for i := range workers {
		w := newSimWorker(i, shape)
		w.used = shape.Scale(r.Float64() * 0.95)
		workers[i] = w
		ci.update(i, w)
	}
	alloc := resources.New(3, 12000, 6000, 0)
	b.Run("update", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slot := int(uint64(i) * 2654435761 % n)
			w := workers[slot]
			w.used = shape.Scale(float64(i%97) / 100)
			ci.update(slot, w)
		}
	})
	probe := func(fit func(resources.Vector) *simWorker) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if fit(alloc) == nil {
					b.Fatal("index lost every worker")
				}
			}
		}
	}
	b.Run("first-fit", probe(ci.firstFit))
	b.Run("worst-fit", probe(ci.worstFit))
	b.Run("best-fit", probe(ci.bestFit))
}
