package sim

import (
	"errors"
	"fmt"

	"dynalloc/internal/names"
	"dynalloc/internal/resources"
	"dynalloc/internal/vine"
)

// Placement selects which worker a dispatchable task lands on. The paper's
// Section II-D1 names scheduling-induced ordering (data locality, worker
// capacity, priorities) as a source of internal stochasticity that a robust
// allocator must tolerate; making placement pluggable lets the test suite
// and the robustness experiments vary exactly that.
type Placement int

const (
	// FirstFit places a task on the first alive worker with room — Work
	// Queue's default greedy behaviour.
	FirstFit Placement = iota
	// WorstFit places a task on the worker with the most free memory,
	// spreading load across the pool.
	WorstFit
	// BestFit places a task on the worker whose free memory is tightest,
	// packing the pool densely.
	BestFit
	// Locality places a task on the worker already caching the most of its
	// input data (requires Config.Data); ties and cache-less pools fall
	// back to first-fit order. This is TaskVine's scheduling preference.
	Locality
)

func (p Placement) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	case BestFit:
		return "best-fit"
	case Locality:
		return "locality"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Placements returns all placement policies.
func Placements() []Placement { return []Placement{FirstFit, WorstFit, BestFit, Locality} }

// ErrUnknownPlacement is returned (wrapped) when a placement name does not
// match any placement policy. Match it with errors.Is; it completes the
// sentinel taxonomy alongside workflow.ErrUnknownWorkflow and
// allocator.ErrUnknownAlgorithm.
var ErrUnknownPlacement = errors.New("sim: unknown placement policy")

// ParsePlacement converts a placement name to a Placement, following the
// shared Names()/Parse() registry contract: the error wraps
// ErrUnknownPlacement and lists the valid names.
func ParsePlacement(s string) (Placement, error) {
	return names.Parse(s, Placements(), Placement.String, ErrUnknownPlacement)
}

// pickLinear returns the chosen worker among those that fit, or nil, by a
// linear scan over workers in slice order. It is the reference semantics
// for the capacity-indexed path (simulator.pickWorker): the property tests
// assert that capIndex queries return exactly the worker this scan picks.
// workers holds only alive workers; data and taskID feed the Locality
// policy and may be nil/zero for the others.
func (p Placement) pickLinear(workers []*simWorker, alloc resources.Vector, data *vine.Layer, taskID int) *simWorker {
	var chosen *simWorker
	var chosenScore float64
	for _, w := range workers {
		if !w.fits(alloc) {
			continue
		}
		switch p {
		case FirstFit:
			return w
		case WorstFit:
			free := w.capacity.Get(resources.Memory) - w.used.Get(resources.Memory)
			if chosen == nil || free > chosenScore {
				chosen, chosenScore = w, free
			}
		case BestFit:
			free := w.capacity.Get(resources.Memory) - w.used.Get(resources.Memory)
			if chosen == nil || free < chosenScore {
				chosen, chosenScore = w, free
			}
		case Locality:
			score := 0.0
			if data != nil {
				score = data.CachedMB(w.id, taskID)
			}
			if chosen == nil || score > chosenScore {
				chosen, chosenScore = w, score
			}
		}
	}
	return chosen
}
