package sim

import (
	"fmt"

	"dynalloc/internal/resources"
	"dynalloc/internal/vine"
)

// Placement selects which worker a dispatchable task lands on. The paper's
// Section II-D1 names scheduling-induced ordering (data locality, worker
// capacity, priorities) as a source of internal stochasticity that a robust
// allocator must tolerate; making placement pluggable lets the test suite
// and the robustness experiments vary exactly that.
type Placement int

const (
	// FirstFit places a task on the first alive worker with room — Work
	// Queue's default greedy behaviour.
	FirstFit Placement = iota
	// WorstFit places a task on the worker with the most free memory,
	// spreading load across the pool.
	WorstFit
	// BestFit places a task on the worker whose free memory is tightest,
	// packing the pool densely.
	BestFit
	// Locality places a task on the worker already caching the most of its
	// input data (requires Config.Data); ties and cache-less pools fall
	// back to first-fit order. This is TaskVine's scheduling preference.
	Locality
)

func (p Placement) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	case BestFit:
		return "best-fit"
	case Locality:
		return "locality"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Placements returns all placement policies.
func Placements() []Placement { return []Placement{FirstFit, WorstFit, BestFit, Locality} }

// ParsePlacement converts a placement name to a Placement.
func ParsePlacement(s string) (Placement, error) {
	for _, p := range Placements() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown placement policy %q", s)
}

// pick returns the chosen worker among those that fit, or nil. workers is
// the simulator's alive index — eviction removes workers from the scan set,
// so pick never filters the dead. data and taskID feed the Locality policy
// and may be nil/zero for the others.
func (p Placement) pick(workers []*simWorker, alloc resources.Vector, data *vine.Layer, taskID int) *simWorker {
	var chosen *simWorker
	var chosenScore float64
	for _, w := range workers {
		if !w.fits(alloc) {
			continue
		}
		switch p {
		case FirstFit:
			return w
		case WorstFit:
			free := w.capacity.Get(resources.Memory) - w.used.Get(resources.Memory)
			if chosen == nil || free > chosenScore {
				chosen, chosenScore = w, free
			}
		case BestFit:
			free := w.capacity.Get(resources.Memory) - w.used.Get(resources.Memory)
			if chosen == nil || free < chosenScore {
				chosen, chosenScore = w, free
			}
		case Locality:
			score := 0.0
			if data != nil {
				score = data.CachedMB(w.id, taskID)
			}
			if chosen == nil || score > chosenScore {
				chosen, chosenScore = w, score
			}
		}
	}
	return chosen
}
