package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dynalloc/internal/allocator"
	"dynalloc/internal/devent"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/vine"
	"dynalloc/internal/workflow"
)

// ErrCanceled is returned (wrapped) when a simulation is aborted by its
// context before completing. Match it with errors.Is; the context's own
// error (context.Canceled or context.DeadlineExceeded) is wrapped too.
var ErrCanceled = errors.New("sim: run canceled")

// ctxCheckInterval is how many simulation events may fire between context
// checks. ctx.Err() is cheap but not free (a mutex acquisition in the
// stdlib context types); checking every 64th event keeps cancellation
// latency well under a millisecond of wall time at negligible cost.
const ctxCheckInterval = 64

// capacitySlack is the relative tolerance applied to worker capacity when
// deciding whether an allocation fits. Admission (simWorker.fits) and the
// over-pack invariant check (simulator.place) share this one constant so
// they can never disagree: an allocation admitted at capacity*(1+slack)
// is, by the same comparison, never reported as over-packing.
const capacitySlack = 1e-9

// DefaultMaxAttempts bounds the retry chain of a single task. With doubling
// escalation a task reaches worker capacity from the 1-unit floor in well
// under 64 attempts, so hitting the bound indicates a logic error rather
// than an unlucky run.
const DefaultMaxAttempts = 64

// Config describes one simulation run.
type Config struct {
	Workflow *workflow.Workflow
	Policy   allocator.Policy
	// Pool provides the worker arrival schedule. Nil means the paper pool
	// (20 workers ramping to 50).
	Pool opportunistic.Model
	// PoolSeed seeds the pool schedule.
	PoolSeed uint64
	// WorkerShape is each worker's capacity. Zero means the paper worker.
	WorkerShape resources.Vector
	// Model is the task consumption profile (zero value = RampEarly).
	Model ConsumptionModel
	// Place is the worker placement policy (zero value = FirstFit).
	Place Placement
	// Data, when non-nil, enables the TaskVine-style data layer: task
	// inputs are staged to workers before execution (holding the
	// allocation meanwhile), workers cache files, evictions lose caches,
	// and the Locality placement prefers workers holding a task's inputs.
	Data *vine.Layer
	// MaxAttempts bounds per-task attempts (default DefaultMaxAttempts).
	MaxAttempts int
	// IncludeEvictions charges eviction-lost allocations to the AWE metric.
	IncludeEvictions bool
}

func (c Config) withDefaults() Config {
	if c.Pool == nil {
		c.Pool = opportunistic.PaperPool()
	}
	if c.WorkerShape.IsZero() {
		c.WorkerShape = resources.PaperWorker()
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	return c
}

// Result aggregates a simulation run.
type Result struct {
	Outcomes []metrics.TaskOutcome
	Acc      metrics.Accumulator
	Makespan float64
	// PeakWorkers is the largest number of simultaneously alive workers.
	PeakWorkers int
	// Evictions counts worker evictions. Every eviction is counted,
	// whether it interrupted running tasks or hit an idle worker.
	Evictions int
	// Failed counts tasks abandoned permanently after exceeding a retry
	// bound (live engine only; the simulator retries without bound).
	Failed int
}

// Summary returns the metric summary of the run.
func (r *Result) Summary() metrics.Summary { return r.Acc.Summarize() }

type simTask struct {
	task     workflow.Task
	outcome  metrics.TaskOutcome
	alloc    resources.Vector
	hasAlloc bool
	done     bool
}

// Simulator event kinds for the typed devent path. Payload layout per kind:
// evArrival carries the arrival index in A; evEviction the worker id in A;
// evTaskEnd the worker id in A, the task index in B, and the attempt
// duration in F; evDispatch carries nothing.
const (
	evDispatch devent.Kind = iota
	evArrival
	evEviction
	evTaskEnd
)

// runningTask is a value (stored by value in simWorker.running): the typed
// event path addresses attempts by (worker id, task index), so nothing
// needs a stable pointer and placing a task allocates nothing.
type runningTask struct {
	start    float64
	exceeded []resources.Kind
	endEv    devent.Handle
}

type simWorker struct {
	id       int
	capacity resources.Vector
	// limit is capacity scaled by (1 + capacitySlack), precomputed once at
	// arrival so admission is three comparisons instead of re-deriving the
	// slack product per kind on every fits probe.
	limit   resources.Vector
	used    resources.Vector
	running map[int]runningTask
	alive   bool
}

// newSimWorker builds an alive worker of the given shape with its admission
// limits precomputed.
func newSimWorker(id int, shape resources.Vector) *simWorker {
	w := &simWorker{
		id:       id,
		capacity: shape,
		running:  make(map[int]runningTask),
		alive:    true,
	}
	for k := range shape {
		w.limit[k] = shape[k] * (1 + capacitySlack)
	}
	return w
}

// fits reports whether alloc fits into the worker's free capacity. The
// comparisons are bit-identical to `used+alloc > capacity*(1+capacitySlack)`
// with the product precomputed, and unrolled over the allocated kinds so
// the hot path performs no slice allocation.
func (w *simWorker) fits(alloc resources.Vector) bool {
	return w.used[resources.Cores]+alloc[resources.Cores] <= w.limit[resources.Cores] &&
		w.used[resources.Memory]+alloc[resources.Memory] <= w.limit[resources.Memory] &&
		w.used[resources.Disk]+alloc[resources.Disk] <= w.limit[resources.Disk]
}

type simulator struct {
	cfg      Config
	engine   devent.Engine
	tasks    []simTask
	arrivals []opportunistic.Arrival // pool schedule, indexed by worker id
	ready    taskQueue               // task indices awaiting placement, in dispatch priority order
	// workers holds only alive workers, in arrival (ascending-ID) order:
	// eviction removes a worker from the scan set instead of leaving a
	// tombstone, so placement never iterates the dead.
	workers []*simWorker
	// byID resolves the worker id carried in event payloads; evicted slots
	// are nilled so the worker can be collected.
	byID    []*simWorker
	victims []int // eviction scratch, reused across onEviction calls

	released          int // tasks [0, released) may start (barrier gating)
	completed         int
	completedInPrefix int
	futureArrivals    int
	peakWorkers       int
	evictions         int
	makespan          float64
	err               error
}

// Run executes the discrete-event simulation and returns the per-task
// outcomes and aggregated metrics.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: the event loop checks ctx at event
// boundaries (every ctxCheckInterval events) and aborts with an error
// wrapping ErrCanceled once the context is done.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w before start: %w", ErrCanceled, err)
	}
	cfg = cfg.withDefaults()
	if cfg.Workflow == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("sim: Workflow and Policy are required")
	}
	s := &simulator{cfg: cfg}
	s.tasks = make([]simTask, len(cfg.Workflow.Tasks))
	for i, t := range cfg.Workflow.Tasks {
		s.tasks[i] = simTask{task: t, outcome: metrics.TaskOutcome{
			TaskID:   t.ID,
			Category: t.Category,
			Peak:     t.Consumption,
			Runtime:  t.Runtime(),
		}}
	}

	arrivals := cfg.Pool.Schedule(cfg.PoolSeed)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("sim: pool model %s provided no workers", cfg.Pool.Name())
	}
	s.arrivals = arrivals
	s.byID = make([]*simWorker, len(arrivals))
	s.futureArrivals = len(arrivals)
	s.engine.SetHandler(s.handleEvent)
	// Bulk-load the whole arrival schedule: one O(n) heapify instead of n
	// heap pushes, and no per-arrival closure.
	pre := make([]devent.Scheduled, len(arrivals))
	for i, a := range arrivals {
		pre[i] = devent.Scheduled{At: a.At, Kind: evArrival, P: devent.Payload{A: i}}
	}
	s.engine.Preload(pre)

	s.released = len(s.tasks)
	if len(cfg.Workflow.Barriers) > 0 {
		s.released = cfg.Workflow.Barriers[0]
	}
	for i := 0; i < s.released; i++ {
		s.ready.PushBack(i)
	}
	s.engine.Schedule(0, evDispatch, devent.Payload{})
	for steps := 0; ; steps++ {
		if steps%ctxCheckInterval == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("%w at virtual time %.1fs: %w", ErrCanceled, s.engine.Now(), ctx.Err())
		}
		if !s.engine.Step() {
			break
		}
	}

	if s.err != nil {
		return nil, s.err
	}
	if s.completed != len(s.tasks) {
		return nil, fmt.Errorf("sim: deadlock with %d/%d tasks complete (pool drained or infeasible allocation)",
			s.completed, len(s.tasks))
	}
	res := &Result{
		Makespan:    s.makespan,
		PeakWorkers: s.peakWorkers,
		Evictions:   s.evictions,
	}
	res.Acc.IncludeEvictions = cfg.IncludeEvictions
	for i := range s.tasks {
		res.Outcomes = append(res.Outcomes, s.tasks[i].outcome)
		res.Acc.Add(s.tasks[i].outcome)
	}
	return res, nil
}

func (s *simulator) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// handleEvent is the single devent owner callback: every typed event is
// decoded here and routed to its handler, replacing the per-event closures
// the engine used to capture.
func (s *simulator) handleEvent(kind devent.Kind, p devent.Payload) {
	switch kind {
	case evTaskEnd:
		s.onTaskEnd(p.A, p.B, p.F)
	case evDispatch:
		s.dispatch()
	case evArrival:
		s.onArrival(p.A)
	case evEviction:
		s.onEviction(p.A)
	default:
		s.fail(fmt.Errorf("sim: unknown event kind %d", kind))
	}
}

func (s *simulator) onArrival(id int) {
	if s.err != nil {
		return
	}
	w := newSimWorker(id, s.cfg.WorkerShape)
	s.workers = append(s.workers, w)
	s.byID[id] = w
	s.futureArrivals--
	if len(s.workers) > s.peakWorkers {
		s.peakWorkers = len(s.workers)
	}
	if lt := s.arrivals[id].Lifetime; lt > 0 {
		s.engine.ScheduleAfter(lt, evEviction, devent.Payload{A: id})
	}
	s.dispatch()
}

func (s *simulator) onEviction(id int) {
	w := s.byID[id]
	if s.err != nil || w == nil || !w.alive {
		return
	}
	w.alive = false
	s.byID[id] = nil
	// Remove the worker from the alive index: the scan set shrinks instead
	// of accumulating tombstones that every placement probe would skip.
	for i, x := range s.workers {
		if x == w {
			s.workers = append(s.workers[:i], s.workers[i+1:]...)
			break
		}
	}
	s.evictions++
	if s.cfg.Data != nil {
		s.cfg.Data.DropWorker(w.id)
	}
	now := s.engine.Now()
	// Iterate the victims in task order: map iteration order would make
	// the requeue order — and hence the whole run — nondeterministic.
	victims := s.victims[:0]
	for idx := range w.running {
		victims = append(victims, idx)
	}
	sort.Ints(victims)
	for _, idx := range victims {
		rt := w.running[idx]
		s.engine.Cancel(rt.endEv)
		st := &s.tasks[idx]
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: now - rt.start,
			Status:   metrics.Evicted,
		})
	}
	// The tasks keep their allocations: eviction says nothing about the
	// allocation's adequacy. Retries jump the queue as one block, so the
	// queue front stays in ascending task-ID order — the same recovery
	// order the live wq engine uses.
	s.ready.PushFrontAll(victims)
	s.victims = victims
	w.running = nil // the worker is dead; release its attempt map
	w.used = resources.Vector{}
	s.dispatch()
}

// dispatch greedily places ready tasks onto alive workers, in queue order,
// skipping tasks that fit no worker right now (Work Queue-style in-manager
// backfilling avoids head-of-line blocking).
func (s *simulator) dispatch() {
	if s.err != nil {
		return
	}
	// SubmitWindow models runtime task generation: tasks beyond
	// completed+window have not been produced by the application yet.
	submitted := len(s.tasks)
	if w := s.cfg.Workflow.SubmitWindow; w > 0 {
		submitted = s.completed + w
	}
	// Bound the backfilling depth: after this many consecutive placement
	// failures the pool is effectively full for this batch's allocation
	// sizes and the rest of the queue is left for the next event (real
	// managers bound their dispatch scans the same way).
	const maxConsecutiveMisses = 256
	misses := 0
	// The scan compacts the ring in place: unplaced indices slide down to
	// position `kept` as the read cursor advances, preserving queue order
	// without rebuilding a `remaining` slice per dispatch pass.
	n := s.ready.Len()
	kept, scanned := 0, 0
	for ; scanned < n; scanned++ {
		if misses >= maxConsecutiveMisses {
			break
		}
		idx := s.ready.At(scanned)
		st := &s.tasks[idx]
		// Window-gating applies to tasks that never started; a retried or
		// evicted task was already generated and stays dispatchable.
		if !st.hasAlloc && idx >= submitted {
			s.ready.Set(kept, idx)
			kept++
			continue
		}
		// Allocation happens at dispatch time (Section II-A): a first
		// attempt gets a fresh prediction every time placement is tried,
		// so a task that waited in the queue benefits from everything the
		// allocator learned meanwhile. Retries keep their escalated
		// allocation (hasAlloc is set on the retry path).
		alloc := st.alloc
		if !st.hasAlloc {
			alloc = s.cfg.Policy.Allocate(st.task.Category, st.task.ID)
		}
		if w := s.cfg.Place.pick(s.workers, alloc, s.cfg.Data, st.task.ID); w != nil {
			st.alloc = alloc
			st.hasAlloc = true
			s.place(w, idx)
			misses = 0
		} else {
			s.ready.Set(kept, idx)
			kept++
			misses++
		}
	}
	// Slide any unscanned tail (miss-bound bailout) down behind the kept
	// prefix, keeping the original relative order.
	for ; scanned < n; scanned++ {
		s.ready.Set(kept, s.ready.At(scanned))
		kept++
	}
	s.ready.Truncate(kept)
	if s.ready.Len() > 0 && len(s.workers) == 0 && s.futureArrivals == 0 {
		s.fail(fmt.Errorf("sim: %d tasks stranded with no workers left", s.ready.Len()))
	}
}

func (s *simulator) place(w *simWorker, idx int) {
	st := &s.tasks[idx]
	w.used = w.used.Add(st.alloc.With(resources.Time, 0))
	for _, k := range [...]resources.Kind{resources.Cores, resources.Memory, resources.Disk} {
		if w.used.Get(k) > w.limit.Get(k) {
			s.fail(fmt.Errorf("sim: worker %d over-packed on %s: %v > %v",
				w.id, k, w.used.Get(k), w.capacity.Get(k)))
			return
		}
	}
	now := s.engine.Now()
	duration, exceeded := EvaluateAttempt(s.cfg.Model, st.task.Consumption, st.task.Runtime(), st.alloc)
	if s.cfg.Data != nil {
		// Staging a task's missing inputs holds the allocation before the
		// payload starts; the transfer time extends the attempt.
		duration += s.cfg.Data.Stage(w.id, st.task.ID)
	}
	w.running[idx] = runningTask{
		start:    now,
		exceeded: exceeded,
		endEv: s.engine.ScheduleAfter(duration, evTaskEnd,
			devent.Payload{A: w.id, B: idx, F: duration}),
	}
}

func (s *simulator) onTaskEnd(workerID, idx int, duration float64) {
	if s.err != nil {
		return
	}
	// The end event is cancelled on eviction, so the worker is always alive
	// (and registered) when it fires.
	w := s.byID[workerID]
	st := &s.tasks[idx]
	exceeded := w.running[idx].exceeded
	delete(w.running, idx)
	w.used = w.used.Sub(st.alloc.With(resources.Time, 0))
	// Guard against float drift accumulating below zero.
	for k := range w.used {
		if w.used[k] < 0 && w.used[k] > -1e-6 {
			w.used[k] = 0
		}
	}

	if len(exceeded) == 0 {
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: duration,
			Status:   metrics.Success,
		})
		st.done = true
		s.completed++
		s.makespan = s.engine.Now()
		s.cfg.Policy.Observe(st.task.Category, st.task.ID, st.task.Consumption, st.task.Runtime())
		s.advanceBarrier(idx)
		s.dispatch()
		return
	}

	st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
		Alloc:    st.alloc,
		Duration: duration,
		Status:   metrics.Exhausted,
	})
	if st.outcome.Retries() >= s.cfg.MaxAttempts {
		s.fail(fmt.Errorf("sim: task %d exceeded %d attempts under %s (alloc %v, peak %v)",
			st.task.ID, s.cfg.MaxAttempts, s.cfg.Policy.Name(), st.alloc, st.task.Consumption))
		return
	}
	st.alloc = s.cfg.Policy.Retry(st.task.Category, st.task.ID, st.alloc, exceeded)
	s.ready.PushFront(idx)
	s.dispatch()
}

// advanceBarrier releases the next phase once every task before the current
// barrier has completed.
func (s *simulator) advanceBarrier(completedIdx int) {
	if completedIdx < s.released {
		s.completedInPrefix++
	}
	w := s.cfg.Workflow
	for s.released < len(s.tasks) && s.completedInPrefix == s.released {
		next := len(s.tasks)
		for _, b := range w.Barriers {
			if b > s.released {
				next = int(math.Min(float64(next), float64(b)))
				break
			}
		}
		for i := s.released; i < next; i++ {
			s.ready.PushBack(i)
		}
		// Count already-completed tasks in the newly released prefix (none
		// can exist, but keep the invariant explicit).
		s.released = next
	}
}
