package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dynalloc/internal/allocator"
	"dynalloc/internal/devent"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/vine"
	"dynalloc/internal/workflow"
)

// ErrCanceled is returned (wrapped) when a simulation is aborted by its
// context before completing. Match it with errors.Is; the context's own
// error (context.Canceled or context.DeadlineExceeded) is wrapped too.
var ErrCanceled = errors.New("sim: run canceled")

// ctxCheckInterval is how many simulation events may fire between context
// checks. ctx.Err() is cheap but not free (a mutex acquisition in the
// stdlib context types); checking every 64th event keeps cancellation
// latency well under a millisecond of wall time at negligible cost.
const ctxCheckInterval = 64

// capacitySlack is the relative tolerance applied to worker capacity when
// deciding whether an allocation fits. Admission (simWorker.fits) and the
// over-pack invariant check (simulator.place) share this one constant so
// they can never disagree: an allocation admitted at capacity*(1+slack)
// is, by the same comparison, never reported as over-packing.
const capacitySlack = 1e-9

// DefaultMaxAttempts bounds the retry chain of a single task. With doubling
// escalation a task reaches worker capacity from the 1-unit floor in well
// under 64 attempts, so hitting the bound indicates a logic error rather
// than an unlucky run.
const DefaultMaxAttempts = 64

// Config describes one simulation run.
type Config struct {
	// Workflow is the workload as a materialized task slice. Exactly one of
	// Workflow and Source must be set; a Workflow runs through its Stream()
	// cursor, so both forms drive the same engine.
	Workflow *workflow.Workflow
	// Source generates the workload lazily (see workflow.Source). Tasks are
	// pulled only as barriers and the submit window release them, so with a
	// bounded window the engine's peak memory scales with the in-flight
	// window, not the task count — the streaming path for million-task
	// runs. Combine with OnOutcome or DiscardOutcomes to keep the result
	// side equally bounded.
	Source workflow.Source
	Policy allocator.Policy
	// Pool provides the worker arrival schedule. Nil means the paper pool
	// (20 workers ramping to 50).
	Pool opportunistic.Model
	// PoolSeed seeds the pool schedule.
	PoolSeed uint64
	// WorkerShape is each worker's capacity. Zero means the paper worker.
	WorkerShape resources.Vector
	// Model is the task consumption profile (zero value = RampEarly).
	Model ConsumptionModel
	// Place is the worker placement policy (zero value = FirstFit).
	Place Placement
	// Data, when non-nil, enables the TaskVine-style data layer: task
	// inputs are staged to workers before execution (holding the
	// allocation meanwhile), workers cache files, evictions lose caches,
	// and the Locality placement prefers workers holding a task's inputs.
	Data *vine.Layer
	// MaxAttempts bounds per-task attempts (default DefaultMaxAttempts).
	MaxAttempts int
	// IncludeEvictions charges eviction-lost allocations to the AWE metric.
	IncludeEvictions bool
	// OnOutcome, when non-nil, streams each finalized task outcome (in task
	// index order) instead of retaining it: Result.Outcomes stays nil. The
	// pointed-to outcome is owned by the simulator and recycled after the
	// callback returns — copy anything kept beyond the call.
	OnOutcome func(*metrics.TaskOutcome)
	// DiscardOutcomes drops per-task outcomes after folding them into the
	// run's accumulator (and Categories/OnOutcome, if set), leaving
	// Result.Outcomes nil. Set it on large streaming runs where only the
	// aggregate metrics matter.
	DiscardOutcomes bool
	// Categories, when non-nil, additionally folds every outcome into
	// bounded per-category streaming statistics (waste accumulators plus
	// memory/runtime reservoirs).
	Categories *metrics.ByCategory
}

func (c Config) withDefaults() Config {
	if c.Pool == nil {
		c.Pool = opportunistic.PaperPool()
	}
	if c.WorkerShape.IsZero() {
		c.WorkerShape = resources.PaperWorker()
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	return c
}

// Result aggregates a simulation run.
type Result struct {
	// Outcomes holds the per-task outcomes in task order. It is nil when
	// the run streamed them away (Config.OnOutcome or DiscardOutcomes).
	Outcomes []metrics.TaskOutcome
	Acc      metrics.Accumulator
	Makespan float64
	// PeakWorkers is the largest number of simultaneously alive workers.
	PeakWorkers int
	// PeakWindow is the largest number of task records held at once: the
	// realized in-flight window, which bounds the engine's per-task memory
	// (on a windowed streaming run it is independent of the task count).
	PeakWindow int
	// Evictions counts worker evictions. Every eviction is counted,
	// whether it interrupted running tasks or hit an idle worker.
	Evictions int
	// Failed counts tasks abandoned permanently after exceeding a retry
	// bound (live engine only; the simulator retries without bound).
	Failed int
	// Arrivals is the realized worker arrival schedule the run executed
	// against (DES runs only; nil under the sequential driver). Recording it
	// alongside the outcomes is what makes a run log replayable: a scripted
	// pool re-presents exactly this schedule to a counterfactual run.
	Arrivals []opportunistic.Arrival
}

// Summary returns the metric summary of the run.
func (r *Result) Summary() metrics.Summary { return r.Acc.Summarize() }

type simTask struct {
	task     workflow.Task
	outcome  metrics.TaskOutcome
	alloc    resources.Vector
	hasAlloc bool
	done     bool
}

// Simulator event kinds for the typed devent path. Payload layout per kind:
// evArrival carries the arrival index in A; evEviction the worker id in A;
// evTaskEnd the worker id in A, the task index in B, and the attempt
// duration in F; evDispatch carries nothing.
const (
	evDispatch devent.Kind = iota
	evArrival
	evEviction
	evTaskEnd
)

// runningTask is a value (stored by value in simWorker.running): the typed
// event path addresses attempts by (worker id, task index), so nothing
// needs a stable pointer and placing a task allocates nothing.
type runningTask struct {
	start    float64
	exceeded []resources.Kind
	endEv    devent.Handle
}

type simWorker struct {
	id       int
	capacity resources.Vector
	// limit is capacity scaled by (1 + capacitySlack), precomputed once at
	// arrival so admission is three comparisons instead of re-deriving the
	// slack product per kind on every fits probe.
	limit   resources.Vector
	used    resources.Vector
	running map[int]runningTask
	alive   bool
	// prev/next link the alive list in ascending-id (= arrival) order;
	// eviction unlinks in O(1) instead of splicing a slice.
	prev, next *simWorker
}

// newSimWorker builds an alive worker of the given shape with its admission
// limits precomputed.
func newSimWorker(id int, shape resources.Vector) *simWorker {
	w := &simWorker{
		id:       id,
		capacity: shape,
		running:  make(map[int]runningTask),
		alive:    true,
	}
	for k := range shape {
		w.limit[k] = shape[k] * (1 + capacitySlack)
	}
	return w
}

// fits reports whether alloc fits into the worker's free capacity. The
// comparisons are bit-identical to `used+alloc > capacity*(1+capacitySlack)`
// with the product precomputed, and unrolled over the allocated kinds so
// the hot path performs no slice allocation.
func (w *simWorker) fits(alloc resources.Vector) bool {
	return w.used[resources.Cores]+alloc[resources.Cores] <= w.limit[resources.Cores] &&
		w.used[resources.Memory]+alloc[resources.Memory] <= w.limit[resources.Memory] &&
		w.used[resources.Disk]+alloc[resources.Disk] <= w.limit[resources.Disk]
}

// unreleased marks simulator.released when no barrier gates task
// generation: every task the source produces may start.
const unreleased = math.MaxInt

type simulator struct {
	cfg      Config
	src      workflow.Source
	engine   devent.Engine
	store    taskStore               // in-flight window of per-task state, keyed by task index
	ready    taskQueue               // task indices awaiting placement, in dispatch priority order
	arrivals []opportunistic.Arrival // pool schedule, indexed by worker id
	capIdx   *capIndex               // capacity index over worker slots for O(log W) placement
	// aliveHead/aliveTail chain alive workers in arrival (ascending-id)
	// order; the Locality placement scans the chain and eviction unlinks
	// in O(1).
	aliveHead, aliveTail *simWorker
	alive                int
	// byID resolves the worker id carried in event payloads; evicted slots
	// are nilled so the worker can be collected.
	byID    []*simWorker
	victims []int // eviction scratch, reused across onEviction calls

	window            int  // submit window (0 = everything released at once)
	generated         int  // tasks pulled from the source so far
	drained           bool // the source is exhausted
	retain            bool // keep emitted outcomes in Result.Outcomes
	released          int  // tasks [0, released) may start (barrier gating); unreleased when no barrier remains
	completed         int
	completedInPrefix int
	outcomes          []metrics.TaskOutcome
	acc               metrics.Accumulator
	futureArrivals    int
	peakWorkers       int
	evictions         int
	makespan          float64
	err               error
}

// Run executes the discrete-event simulation and returns the per-task
// outcomes and aggregated metrics.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: the event loop checks ctx at event
// boundaries (every ctxCheckInterval events) and aborts with an error
// wrapping ErrCanceled once the context is done.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w before start: %w", ErrCanceled, err)
	}
	cfg = cfg.withDefaults()
	src := cfg.Source
	if cfg.Workflow != nil {
		if src != nil {
			return nil, fmt.Errorf("sim: set exactly one of Workflow and Source")
		}
		src = cfg.Workflow.Stream()
	}
	if src == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("sim: Workflow (or Source) and Policy are required")
	}
	s := &simulator{cfg: cfg, src: src}
	s.window = src.SubmitWindow()
	s.retain = cfg.OnOutcome == nil && !cfg.DiscardOutcomes
	s.acc.IncludeEvictions = cfg.IncludeEvictions
	s.released = unreleased
	if b := src.NextBarrier(0); b >= 0 {
		s.released = b
	}

	arrivals := cfg.Pool.Schedule(cfg.PoolSeed)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("sim: pool model %s provided no workers", cfg.Pool.Name())
	}
	s.arrivals = arrivals
	s.byID = make([]*simWorker, len(arrivals))
	s.capIdx = newCapIndex(len(arrivals))
	s.futureArrivals = len(arrivals)
	s.engine.SetHandler(s.handleEvent)
	// Bulk-load the whole arrival schedule: one O(n) heapify instead of n
	// heap pushes, and no per-arrival closure.
	pre := make([]devent.Scheduled, len(arrivals))
	for i, a := range arrivals {
		pre[i] = devent.Scheduled{At: a.At, Kind: evArrival, P: devent.Payload{A: i}}
	}
	s.engine.Preload(pre)

	s.engine.Schedule(0, evDispatch, devent.Payload{})
	for steps := 0; ; steps++ {
		if steps%ctxCheckInterval == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("%w at virtual time %.1fs: %w", ErrCanceled, s.engine.Now(), ctx.Err())
		}
		if !s.engine.Step() {
			break
		}
	}

	if s.err != nil {
		return nil, s.err
	}
	if !s.drained || s.completed != s.generated {
		return nil, fmt.Errorf("sim: deadlock with %d/%d generated tasks complete (pool drained or infeasible allocation)",
			s.completed, s.generated)
	}
	return &Result{
		Outcomes:    s.outcomes,
		Acc:         s.acc,
		Makespan:    s.makespan,
		PeakWorkers: s.peakWorkers,
		PeakWindow:  s.store.peak,
		Evictions:   s.evictions,
		Arrivals:    s.arrivals,
	}, nil
}

func (s *simulator) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// handleEvent is the single devent owner callback: every typed event is
// decoded here and routed to its handler, replacing the per-event closures
// the engine used to capture.
func (s *simulator) handleEvent(kind devent.Kind, p devent.Payload) {
	switch kind {
	case evTaskEnd:
		s.onTaskEnd(p.A, p.B, p.F)
	case evDispatch:
		s.dispatch()
	case evArrival:
		s.onArrival(p.A)
	case evEviction:
		s.onEviction(p.A)
	default:
		s.fail(fmt.Errorf("sim: unknown event kind %d", kind))
	}
}

func (s *simulator) onArrival(id int) {
	if s.err != nil {
		return
	}
	w := newSimWorker(id, s.cfg.WorkerShape)
	s.byID[id] = w
	// Append to the alive-list tail: ids arrive in ascending order (pool
	// schedules are time-sorted, ties fire in preload order), so the chain
	// stays sorted by id without insertion search.
	if s.aliveTail == nil {
		s.aliveHead, s.aliveTail = w, w
	} else {
		s.aliveTail.next, w.prev = w, s.aliveTail
		s.aliveTail = w
	}
	s.alive++
	s.capIdx.update(id, w)
	s.futureArrivals--
	if s.alive > s.peakWorkers {
		s.peakWorkers = s.alive
	}
	if lt := s.arrivals[id].Lifetime; lt > 0 {
		s.engine.ScheduleAfter(lt, evEviction, devent.Payload{A: id})
	}
	s.dispatch()
}

func (s *simulator) onEviction(id int) {
	w := s.byID[id]
	if s.err != nil || w == nil || !w.alive {
		return
	}
	w.alive = false
	s.byID[id] = nil
	// Unlink from the alive chain: the scan set shrinks instead of
	// accumulating tombstones that every placement probe would skip.
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		s.aliveHead = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		s.aliveTail = w.prev
	}
	w.prev, w.next = nil, nil
	s.alive--
	s.capIdx.update(id, nil)
	s.evictions++
	if s.cfg.Data != nil {
		s.cfg.Data.DropWorker(w.id)
	}
	now := s.engine.Now()
	// Iterate the victims in task order: map iteration order would make
	// the requeue order — and hence the whole run — nondeterministic.
	victims := s.victims[:0]
	for idx := range w.running {
		victims = append(victims, idx)
	}
	sort.Ints(victims)
	for _, idx := range victims {
		rt := w.running[idx]
		s.engine.Cancel(rt.endEv)
		st := s.store.get(idx)
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: now - rt.start,
			Status:   metrics.Evicted,
		})
	}
	// The tasks keep their allocations: eviction says nothing about the
	// allocation's adequacy. Retries jump the queue as one block, so the
	// queue front stays in ascending task-ID order — the same recovery
	// order the live wq engine uses.
	s.ready.PushFrontAll(victims)
	s.victims = victims
	w.running = nil // the worker is dead; release its attempt map
	w.used = resources.Vector{}
	s.dispatch()
}

// generate pulls tasks from the source into the store and the ready queue,
// up to the barrier/submit-window limit. Pulling lazily here is what the
// old engine achieved by queueing every released task and window-gating
// the scan: ungated fresh tasks are always an ascending-index suffix of
// the ready queue, so deferring their creation changes no dispatch
// decision — it only keeps the in-flight window small.
func (s *simulator) generate() {
	limit := s.released
	if s.window > 0 {
		if l := s.completed + s.window; l < limit {
			limit = l
		}
	}
	for !s.drained && s.generated < limit {
		t, ok := s.src.Next()
		if !ok {
			s.drained = true
			return
		}
		e := s.store.pushBack()
		var attempts []metrics.Attempt
		if !s.retain {
			// The slot's previous occupant was emitted and will never be
			// read again; recycle its attempts capacity.
			attempts = e.outcome.Attempts[:0]
		}
		*e = simTask{task: t, outcome: metrics.TaskOutcome{
			TaskID:     t.ID,
			Category:   t.Category,
			Peak:       t.Consumption,
			Runtime:    t.Runtime(),
			Attempts:   attempts,
			SubmitTime: s.engine.Now(),
		}}
		s.ready.PushBack(s.generated)
		s.generated++
	}
}

// emit flushes the completed prefix of the task window, in task-index
// order: fold into the accumulators, hand to the streaming callback, and
// (in retained mode) append to the outcome slice. Index-ordered emission
// keeps the accumulator's floating-point sums bit-identical to the old
// end-of-run fold.
func (s *simulator) emit() {
	for s.store.len() > 0 && s.store.front().done {
		st := s.store.front()
		s.acc.Add(st.outcome)
		if s.cfg.Categories != nil {
			s.cfg.Categories.Add(&st.outcome)
		}
		if s.cfg.OnOutcome != nil {
			s.cfg.OnOutcome(&st.outcome)
		}
		if s.retain {
			s.outcomes = append(s.outcomes, st.outcome)
		}
		s.store.popFront()
	}
}

// dispatch greedily places ready tasks onto alive workers, in queue order,
// skipping tasks that fit no worker right now (Work Queue-style in-manager
// backfilling avoids head-of-line blocking).
func (s *simulator) dispatch() {
	if s.err != nil {
		return
	}
	s.generate()
	// Bound the backfilling depth: after this many consecutive placement
	// failures the pool is effectively full for this batch's allocation
	// sizes and the rest of the queue is left for the next event (real
	// managers bound their dispatch scans the same way).
	const maxConsecutiveMisses = 256
	misses := 0
	// The scan compacts the ring in place: unplaced indices slide down to
	// position `kept` as the read cursor advances, preserving queue order
	// without rebuilding a `remaining` slice per dispatch pass.
	n := s.ready.Len()
	kept, scanned := 0, 0
	for ; scanned < n; scanned++ {
		if misses >= maxConsecutiveMisses {
			break
		}
		idx := s.ready.At(scanned)
		st := s.store.get(idx)
		// Allocation happens at dispatch time (Section II-A): a first
		// attempt gets a fresh prediction every time placement is tried,
		// so a task that waited in the queue benefits from everything the
		// allocator learned meanwhile. Retries keep their escalated
		// allocation (hasAlloc is set on the retry path).
		alloc := st.alloc
		if !st.hasAlloc {
			alloc = s.cfg.Policy.Allocate(st.task.Category, st.task.ID)
		}
		if w := s.pickWorker(alloc, st.task.ID); w != nil {
			st.alloc = alloc
			st.hasAlloc = true
			s.place(w, idx)
			misses = 0
		} else {
			s.ready.Set(kept, idx)
			kept++
			misses++
		}
	}
	// Slide any unscanned tail (miss-bound bailout) down behind the kept
	// prefix, keeping the original relative order.
	for ; scanned < n; scanned++ {
		s.ready.Set(kept, s.ready.At(scanned))
		kept++
	}
	s.ready.Truncate(kept)
	if s.alive == 0 && s.futureArrivals == 0 && (s.ready.Len() > 0 || !s.drained) {
		s.fail(fmt.Errorf("sim: %d tasks stranded with no workers left", s.ready.Len()))
	}
}

// pickWorker routes a placement probe to the capacity index (first/worst/
// best fit, O(log W)) or, for Locality, to a scan of the alive chain in
// arrival order.
func (s *simulator) pickWorker(alloc resources.Vector, taskID int) *simWorker {
	switch s.cfg.Place {
	case FirstFit:
		return s.capIdx.firstFit(alloc)
	case WorstFit:
		return s.capIdx.worstFit(alloc)
	case BestFit:
		return s.capIdx.bestFit(alloc)
	case Locality:
		var chosen *simWorker
		var chosenScore float64
		for w := s.aliveHead; w != nil; w = w.next {
			if !w.fits(alloc) {
				continue
			}
			score := 0.0
			if s.cfg.Data != nil {
				score = s.cfg.Data.CachedMB(w.id, taskID)
			}
			if chosen == nil || score > chosenScore {
				chosen, chosenScore = w, score
			}
		}
		return chosen
	default:
		return nil
	}
}

func (s *simulator) place(w *simWorker, idx int) {
	st := s.store.get(idx)
	w.used = w.used.Add(st.alloc.With(resources.Time, 0))
	for _, k := range [...]resources.Kind{resources.Cores, resources.Memory, resources.Disk} {
		if w.used.Get(k) > w.limit.Get(k) {
			s.fail(fmt.Errorf("sim: worker %d over-packed on %s: %v > %v",
				w.id, k, w.used.Get(k), w.capacity.Get(k)))
			return
		}
	}
	s.capIdx.update(w.id, w)
	now := s.engine.Now()
	duration, exceeded := EvaluateAttempt(s.cfg.Model, st.task.Consumption, st.task.Runtime(), st.alloc)
	if s.cfg.Data != nil {
		// Staging a task's missing inputs holds the allocation before the
		// payload starts; the transfer time extends the attempt.
		duration += s.cfg.Data.Stage(w.id, st.task.ID)
	}
	w.running[idx] = runningTask{
		start:    now,
		exceeded: exceeded,
		endEv: s.engine.ScheduleAfter(duration, evTaskEnd,
			devent.Payload{A: w.id, B: idx, F: duration}),
	}
}

func (s *simulator) onTaskEnd(workerID, idx int, duration float64) {
	if s.err != nil {
		return
	}
	// The end event is cancelled on eviction, so the worker is always alive
	// (and registered) when it fires.
	w := s.byID[workerID]
	st := s.store.get(idx)
	exceeded := w.running[idx].exceeded
	delete(w.running, idx)
	w.used = w.used.Sub(st.alloc.With(resources.Time, 0))
	// Guard against float drift accumulating below zero.
	for k := range w.used {
		if w.used[k] < 0 && w.used[k] > -1e-6 {
			w.used[k] = 0
		}
	}
	s.capIdx.update(w.id, w)

	if len(exceeded) == 0 {
		st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
			Alloc:    st.alloc,
			Duration: duration,
			Status:   metrics.Success,
		})
		st.done = true
		st.outcome.DoneTime = s.engine.Now()
		s.completed++
		s.makespan = s.engine.Now()
		s.cfg.Policy.Observe(st.task.Category, st.task.ID, st.task.Consumption, st.task.Runtime())
		s.advanceBarrier(idx)
		s.emit()
		s.dispatch()
		return
	}

	st.outcome.Attempts = append(st.outcome.Attempts, metrics.Attempt{
		Alloc:    st.alloc,
		Duration: duration,
		Status:   metrics.Exhausted,
	})
	if st.outcome.Retries() >= s.cfg.MaxAttempts {
		s.fail(fmt.Errorf("sim: task %d exceeded %d attempts under %s (alloc %v, peak %v)",
			st.task.ID, s.cfg.MaxAttempts, s.cfg.Policy.Name(), st.alloc, st.task.Consumption))
		return
	}
	st.alloc = s.cfg.Policy.Retry(st.task.Category, st.task.ID, st.alloc, exceeded)
	s.ready.PushFront(idx)
	s.dispatch()
}

// advanceBarrier releases the next phase once every task before the current
// barrier has completed.
func (s *simulator) advanceBarrier(completedIdx int) {
	if completedIdx < s.released {
		s.completedInPrefix++
	}
	for s.released != unreleased && s.completedInPrefix == s.released {
		next := s.src.NextBarrier(s.released)
		if next < 0 {
			next = unreleased
		}
		s.released = next
	}
}
