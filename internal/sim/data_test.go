package sim

import (
	"testing"

	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/vine"
	"dynalloc/internal/workflow"
)

func dataRun(t *testing.T, place Placement) (*Result, *vine.Layer) {
	t.Helper()
	w, err := workflow.ByName("topeft", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.Tasks = w.Tasks[:400]
	w.Barriers = nil
	for i := range w.Tasks {
		w.Tasks[i].ID = i + 1
	}
	layer := vine.NewLayer()
	vine.Attach(layer, w, 4)
	res, err := Run(Config{
		Workflow: w,
		Policy:   NewOracle(w),
		Pool:     opportunistic.Static{N: 10},
		Place:    place,
		Data:     layer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, layer
}

func TestDataLayerStagingExtendsMakespan(t *testing.T) {
	withData, _ := dataRun(t, FirstFit)
	w, err := workflow.ByName("topeft", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	w.Tasks = w.Tasks[:400]
	w.Barriers = nil
	for i := range w.Tasks {
		w.Tasks[i].ID = i + 1
	}
	without, err := Run(Config{
		Workflow: w,
		Policy:   NewOracle(w),
		Pool:     opportunistic.Static{N: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if withData.Makespan <= without.Makespan {
		t.Errorf("staging should extend the makespan: %v vs %v",
			withData.Makespan, without.Makespan)
	}
	if len(withData.Outcomes) != 400 {
		t.Fatalf("%d outcomes", len(withData.Outcomes))
	}
}

func TestLocalityPlacementReducesTransfers(t *testing.T) {
	// With locality-aware placement, tasks gravitate to workers that have
	// their category's environment cached, so the total staging volume —
	// visible through the makespan — is no larger than under first-fit.
	localRes, _ := dataRun(t, Locality)
	firstRes, _ := dataRun(t, FirstFit)
	if localRes.Makespan > firstRes.Makespan*1.05 {
		t.Errorf("locality placement made staging worse: %v vs %v",
			localRes.Makespan, firstRes.Makespan)
	}
}

func TestDataLayerChargesStagingToAllocation(t *testing.T) {
	res, layer := dataRun(t, FirstFit)
	// Attempt durations include staging, so the oracle's AWE dips below 1
	// exactly by the staged time the allocation was held without running.
	awe := res.Acc.AWE(resources.Memory)
	if awe >= 1 {
		t.Errorf("AWE = %v; staging time should be charged", awe)
	}
	if awe < 0.5 {
		t.Errorf("AWE = %v; staging dominates implausibly", awe)
	}
	// Caches really hold data after the run.
	total := 0.0
	for id := 0; id < 10; id++ {
		total += layer.CacheBytes(id)
	}
	if total == 0 {
		t.Error("no worker cached anything")
	}
}
