// Package sim simulates the execution of a dynamic workflow on an
// opportunistic worker pool: the manager dispatches ready tasks with
// allocations obtained from a Policy, workers enforce those allocations and
// kill over-consuming tasks (assumptions 2-4 of Section II-B), failed tasks
// are retried with escalated allocations, and completed tasks report their
// resource records back to the allocator.
//
// Because the paper's AWE metric is independent of the worker pool, the
// package offers two drivers with identical allocation semantics: Run, a
// discrete-event simulation with worker placement, arrivals, and evictions;
// and RunSequential, a fast pool-free driver for benchmarks and sweeps.
package sim

import (
	"errors"
	"fmt"

	"dynalloc/internal/names"
	"dynalloc/internal/resources"
)

// ConsumptionModel describes how a task's resource usage evolves over its
// run, which determines *when* an under-allocated task is killed and hence
// the duration term of each failed allocation (Section II-C defines failed
// allocation waste as Σ a_i·t_i). The paper's tasks were monitored by a real
// resource monitor; these parametric profiles are the simulation substitute
// (see DESIGN.md).
type ConsumptionModel int

const (
	// RampEarly: usage grows linearly and reaches the peak a quarter of the
	// way into the run, staying there, so an attempt allocated a < c is
	// killed at 0.25·t·a/c. This is the default and the model used by the
	// figure harnesses: the paper's production tasks (Python ML inference
	// and columnar data processing) acquire their working set early in the
	// run, so under-allocations are detected quickly.
	RampEarly ConsumptionModel = iota
	// RampLinear: usage grows linearly from zero to the peak across the
	// run, so an attempt allocated a < c is killed at t·a/c.
	RampLinear
	// PeakAtEnd: usage spikes to the peak at the end of the run; failed
	// attempts burn the full runtime (the most expensive failure model).
	PeakAtEnd
	// PeakImmediate: usage jumps to the peak immediately; failed attempts
	// are detected instantly and waste nothing (the cheapest failure
	// model). Useful as an ablation bound.
	PeakImmediate
)

// earlyPeakFraction is the fraction of the runtime at which RampEarly
// reaches peak consumption.
const earlyPeakFraction = 0.25

func (m ConsumptionModel) String() string {
	switch m {
	case RampLinear:
		return "ramp-linear"
	case RampEarly:
		return "ramp-early"
	case PeakAtEnd:
		return "peak-at-end"
	case PeakImmediate:
		return "peak-immediate"
	default:
		return fmt.Sprintf("ConsumptionModel(%d)", int(m))
	}
}

// Models returns all consumption models.
func Models() []ConsumptionModel {
	return []ConsumptionModel{RampEarly, RampLinear, PeakAtEnd, PeakImmediate}
}

// ErrUnknownModel is returned (wrapped) when a consumption model name does
// not match any model. Match it with errors.Is.
var ErrUnknownModel = errors.New("sim: unknown consumption model")

// ParseConsumptionModel converts a model name to a ConsumptionModel,
// following the shared Names()/Parse() registry contract: the error wraps
// ErrUnknownModel and lists the valid names.
func ParseConsumptionModel(s string) (ConsumptionModel, error) {
	return names.Parse(s, Models(), ConsumptionModel.String, ErrUnknownModel)
}

// EvaluateAttempt determines how an attempt ends when a task with the given
// peak consumption and runtime executes under alloc: the duration the
// attempt runs and the kinds in which it was caught over-consuming (nil
// means the attempt succeeds and duration equals the runtime).
//
// The time dimension is treated uniformly: "usage" of wall time is the
// elapsed time itself, so a task whose runtime exceeds its time allocation
// is killed when the allocation elapses.
//
// It is exported for the live execution engine (internal/wq), whose workers
// enforce allocations with the same virtual resource monitor the simulator
// uses.
func EvaluateAttempt(model ConsumptionModel, peak resources.Vector, runtime float64, alloc resources.Vector) (duration float64, exceeded []resources.Kind) {
	over := peak.With(resources.Time, runtime).Exceeded(alloc)
	if len(over) == 0 {
		return runtime, nil
	}
	switch model {
	case PeakAtEnd:
		return runtime, over
	case PeakImmediate:
		return 0, over
	default: // RampLinear, RampEarly
		// Each over-consumed kind crosses its allocation while usage ramps
		// toward the peak; the resource monitor kills the task at the
		// earliest crossing and reports the kinds crossing at that instant.
		fraction := 1.0
		if model == RampEarly {
			fraction = earlyPeakFraction
		}
		crossing := func(k resources.Kind) float64 {
			if k == resources.Time {
				// Wall time "usage" is the elapsed time itself; the kill
				// happens when the time allocation elapses.
				return alloc.Get(k)
			}
			return fraction * runtime * alloc.Get(k) / peak.Get(k)
		}
		earliest := runtime
		for _, k := range over {
			if t := crossing(k); t < earliest {
				earliest = t
			}
		}
		const tieTolerance = 1e-9
		var first []resources.Kind
		for _, k := range over {
			if crossing(k) <= earliest*(1+tieTolerance) {
				first = append(first, k)
			}
		}
		return earliest, first
	}
}
