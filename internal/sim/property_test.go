package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynalloc/internal/allocator"
	"dynalloc/internal/dist"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// randomWorkflow builds an arbitrary feasible workload: random category
// count, random per-category distributions, random barriers.
func randomWorkflow(r *rand.Rand, n int) *workflow.Workflow {
	w := &workflow.Workflow{Name: "random"}
	nCats := 1 + r.IntN(4)
	type shape struct{ cores, mem, disk, runtime dist.Sampler }
	shapes := make([]shape, nCats)
	for c := range shapes {
		shapes[c] = shape{
			cores:   dist.Uniform{Lo: 0.1 + r.Float64(), Hi: 1.5 + 3*r.Float64()},
			mem:     dist.Normal{Mean: 200 + r.Float64()*8000, Stddev: 50 + r.Float64()*1000, Min: 10},
			disk:    dist.Uniform{Lo: 5, Hi: 50 + r.Float64()*5000},
			runtime: dist.LogNormal{Mu: 3 + 2*r.Float64(), Sigma: 0.5, Cap: 3600},
		}
	}
	for i := 0; i < n; i++ {
		c := r.IntN(nCats)
		s := shapes[c]
		w.Tasks = append(w.Tasks, workflow.Task{
			ID:       i + 1,
			Category: string(rune('a' + c)),
			Consumption: resources.New(
				s.cores.Sample(r), s.mem.Sample(r), s.disk.Sample(r), s.runtime.Sample(r)),
		})
	}
	if n > 4 && r.IntN(2) == 0 {
		w.Barriers = []int{1 + r.IntN(n-2)}
	}
	return w
}

// Property: with a permanent pool, every algorithm completes every random
// feasible workload, the simulator's internal capacity checks never fire,
// and the efficiency metrics stay in range.
func TestSimulationCompletesArbitraryWorkloads(t *testing.T) {
	algs := allocator.ExtendedNames()
	f := func(seed uint64, nRaw uint8, algIdx uint8) bool {
		r := rand.New(rand.NewPCG(seed, 101))
		n := int(nRaw%80) + 5
		w := randomWorkflow(r, n)
		if err := w.Validate(resources.PaperWorker()); err != nil {
			return true // infeasible draws are out of scope
		}
		alg := algs[int(algIdx)%len(algs)]
		pol := allocator.MustNew(alg, allocator.Config{Seed: seed})
		res, err := Run(Config{
			Workflow: w,
			Policy:   pol,
			Pool:     opportunistic.Static{N: 1 + r.IntN(8)},
			Model:    Models()[r.IntN(len(Models()))],
		})
		if err != nil {
			t.Logf("seed=%d alg=%s: %v", seed, alg, err)
			return false
		}
		if len(res.Outcomes) != n {
			return false
		}
		for _, k := range resources.AllocatedKinds() {
			awe := res.Acc.AWE(k)
			if awe <= 0 || awe > 1+1e-9 {
				t.Logf("seed=%d alg=%s: AWE(%s)=%v", seed, alg, k, awe)
				return false
			}
			if res.Acc.Waste(k) < -1e-6 {
				return false
			}
		}
		// Every outcome ends in success and has coherent attempt counts.
		for _, o := range res.Outcomes {
			if len(o.Attempts) == 0 {
				return false
			}
			last := o.Attempts[len(o.Attempts)-1]
			if last.Status != 0 { // metrics.Success
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: identical configurations produce byte-identical outcome
// sequences, regardless of pool churn.
func TestSimulationDeterminismUnderChurn(t *testing.T) {
	f := func(seed uint64) bool {
		run := func() []int {
			r := rand.New(rand.NewPCG(seed, 202))
			w := randomWorkflow(r, 40)
			pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: seed})
			res, err := Run(Config{
				Workflow: w,
				Policy:   pol,
				Pool: opportunistic.Churn{
					Initial: 4, MeanLifetime: 2000, MeanInterval: 500,
					Horizon: 1e6, KeepLastAlive: true,
				},
				PoolSeed: seed,
			})
			if err != nil {
				return nil
			}
			var sig []int
			for _, o := range res.Outcomes {
				sig = append(sig, len(o.Attempts))
			}
			return sig
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
