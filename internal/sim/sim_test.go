package sim

import (
	"math"
	"strings"
	"sync"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

func mustWorkflow(t testing.TB, name string, n int, seed uint64) *workflow.Workflow {
	t.Helper()
	w, err := workflow.ByName(name, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOracleAchievesPerfectEfficiency(t *testing.T) {
	w := mustWorkflow(t, "normal", 200, 1)
	res, err := Run(Config{
		Workflow: w,
		Policy:   NewOracle(w),
		Pool:     opportunistic.Static{N: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 200 {
		t.Fatalf("completed %d tasks", len(res.Outcomes))
	}
	for _, k := range resources.AllocatedKinds() {
		if awe := res.Acc.AWE(k); math.Abs(awe-1) > 1e-9 {
			t.Errorf("oracle AWE(%s) = %v, want 1", k, awe)
		}
		if res.Acc.Waste(k) != 0 {
			t.Errorf("oracle waste(%s) = %v, want 0", k, res.Acc.Waste(k))
		}
	}
	if res.Acc.Retries() != 0 {
		t.Errorf("oracle retries = %d", res.Acc.Retries())
	}
	if res.Makespan <= 0 {
		t.Error("makespan not recorded")
	}
}

func TestAllAlgorithmsCompleteAllWorkloads(t *testing.T) {
	// Integration: every algorithm finishes a down-scaled version of every
	// workload on a static pool; all AWE values are in (0, 1].
	for _, wfName := range workflow.SyntheticNames() {
		w := mustWorkflow(t, wfName, 120, 2)
		for _, alg := range allocator.Names() {
			pol := allocator.MustNew(alg, allocator.Config{Seed: 3})
			res, err := Run(Config{Workflow: w, Policy: pol, Pool: opportunistic.Static{N: 8}})
			if err != nil {
				t.Fatalf("%s/%s: %v", wfName, alg, err)
			}
			if len(res.Outcomes) != w.Len() {
				t.Fatalf("%s/%s: %d outcomes", wfName, alg, len(res.Outcomes))
			}
			for _, k := range resources.AllocatedKinds() {
				awe := res.Acc.AWE(k)
				if awe <= 0 || awe > 1+1e-9 {
					t.Errorf("%s/%s: AWE(%s) = %v out of (0,1]", wfName, alg, k, awe)
				}
			}
		}
	}
}

// recordingPolicy wraps a policy and logs the order of calls, for asserting
// barrier semantics.
type recordingPolicy struct {
	allocator.Policy
	mu        sync.Mutex
	allocated []int
	observed  []int
}

func (r *recordingPolicy) Allocate(cat string, id int) resources.Vector {
	r.mu.Lock()
	r.allocated = append(r.allocated, id)
	r.mu.Unlock()
	return r.Policy.Allocate(cat, id)
}

func (r *recordingPolicy) Observe(cat string, id int, peak resources.Vector, runtime float64) {
	r.mu.Lock()
	r.observed = append(r.observed, id)
	r.mu.Unlock()
	r.Policy.Observe(cat, id, peak, runtime)
}

func TestBarriersGatePhases(t *testing.T) {
	w := mustWorkflow(t, "colmena", 0, 3)
	rec := &recordingPolicy{Policy: NewOracle(w)}
	if _, err := Run(Config{Workflow: w, Policy: rec, Pool: opportunistic.Static{N: 30}}); err != nil {
		t.Fatal(err)
	}
	// A phase-2 task (ID > 228) may only be allocated once every phase-1
	// task has completed, so at least 228 allocations (one per phase-1
	// task, ignoring retries) must precede the first phase-2 allocation,
	// and all 228 phase-1 observations must already have been recorded.
	firstPhase2 := -1
	for i, id := range rec.allocated {
		if id > workflow.ColmenaEvaluateTasks {
			firstPhase2 = i
			break
		}
	}
	if firstPhase2 < 0 {
		t.Fatal("no phase-2 task was ever allocated")
	}
	if firstPhase2 < workflow.ColmenaEvaluateTasks {
		t.Errorf("a phase-2 task was allocated after only %d allocations; barrier leaked", firstPhase2)
	}
	phase1Observed := 0
	for _, id := range rec.observed[:min(len(rec.observed), workflow.ColmenaEvaluateTasks)] {
		if id <= workflow.ColmenaEvaluateTasks {
			phase1Observed++
		}
	}
	if phase1Observed != workflow.ColmenaEvaluateTasks {
		t.Errorf("first %d observations contain %d phase-1 tasks; phases interleaved",
			workflow.ColmenaEvaluateTasks, phase1Observed)
	}
}

func TestEvictionsAreRetriedAndExcluded(t *testing.T) {
	w := mustWorkflow(t, "uniform", 150, 4)
	pool := opportunistic.Churn{
		Initial:       6,
		MeanLifetime:  400,
		MeanInterval:  150,
		Horizon:       1e7,
		KeepLastAlive: false,
	}
	res, err := Run(Config{
		Workflow: w,
		Policy:   NewOracle(w),
		Pool:     pool,
		PoolSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Skip("churn seed produced no evictions before completion")
	}
	evictedAttempts := 0
	for _, o := range res.Outcomes {
		for _, a := range o.Attempts {
			if a.Status == metrics.Evicted {
				evictedAttempts++
			}
		}
	}
	if evictedAttempts == 0 {
		t.Skip("no task was interrupted (evictions hit idle workers)")
	}
	// Default accounting: eviction time does not dent the oracle's AWE.
	for _, k := range resources.AllocatedKinds() {
		if awe := res.Acc.AWE(k); math.Abs(awe-1) > 1e-9 {
			t.Errorf("AWE(%s) = %v, want 1 with evictions excluded", k, awe)
		}
	}
	if res.Acc.Evictions() != evictedAttempts {
		t.Errorf("accumulator evictions = %d, want %d", res.Acc.Evictions(), evictedAttempts)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() metrics.Summary {
		w := mustWorkflow(t, "bimodal", 200, 6)
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 7})
		res, err := Run(Config{Workflow: w, Policy: pol, Pool: opportunistic.PaperPool(), PoolSeed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	a, b := run(), run()
	if a.Attempts != b.Attempts || a.Retries != b.Retries {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.PerKind {
		if a.PerKind[i].AWE != b.PerKind[i].AWE {
			t.Fatalf("AWE diverged for %s", a.PerKind[i].Kind)
		}
	}
}

func TestPoolDrainedError(t *testing.T) {
	w := mustWorkflow(t, "normal", 50, 9)
	// Override runtimes to outlast every lease so eviction strands work.
	for i := range w.Tasks {
		w.Tasks[i].Consumption = w.Tasks[i].Consumption.With(resources.Time, 5000)
	}
	pool := opportunistic.Churn{Initial: 2, MeanLifetime: 100, MeanInterval: 1e9, Horizon: 1}
	_, err := Run(Config{Workflow: w, Policy: NewOracle(w), Pool: pool, PoolSeed: 10})
	if err == nil || !strings.Contains(err.Error(), "stranded") {
		t.Errorf("expected stranded-tasks error, got %v", err)
	}
}

func TestEmptyPoolError(t *testing.T) {
	w := mustWorkflow(t, "normal", 10, 11)
	_, err := Run(Config{Workflow: w, Policy: NewOracle(w), Pool: opportunistic.Static{N: 0}})
	if err == nil {
		t.Error("empty pool should error")
	}
}

func TestMissingConfigError(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing workflow/policy should error")
	}
}

// stubbornPolicy never escalates, driving a task into the attempt limit.
type stubbornPolicy struct{}

func (stubbornPolicy) Allocate(string, int) resources.Vector {
	return resources.New(0.1, 1, 1, resources.Unlimited)
}
func (stubbornPolicy) Retry(_ string, _ int, prev resources.Vector, _ []resources.Kind) resources.Vector {
	return prev
}
func (stubbornPolicy) Observe(string, int, resources.Vector, float64) {}
func (stubbornPolicy) Name() string                                   { return "stubborn" }

func TestMaxAttemptsGuard(t *testing.T) {
	w := mustWorkflow(t, "normal", 5, 12)
	_, err := Run(Config{
		Workflow:    w,
		Policy:      stubbornPolicy{},
		Pool:        opportunistic.Static{N: 1},
		MaxAttempts: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "attempts") {
		t.Errorf("expected attempt-limit error, got %v", err)
	}
}

func TestSequentialOracle(t *testing.T) {
	w := mustWorkflow(t, "topeft", 0, 13)
	res, err := RunSequential(w, NewOracle(w), RampLinear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != w.Len() {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	for _, k := range resources.AllocatedKinds() {
		if awe := res.Acc.AWE(k); math.Abs(awe-1) > 1e-9 {
			t.Errorf("sequential oracle AWE(%s) = %v", k, awe)
		}
	}
}

func TestSequentialMatchesSimulationForOracle(t *testing.T) {
	// With the oracle (no learning, no retries), sequential and
	// discrete-event execution must produce identical waste and AWE.
	w := mustWorkflow(t, "bimodal", 100, 14)
	seq, err := RunSequential(w, NewOracle(w), RampLinear, 0)
	if err != nil {
		t.Fatal(err)
	}
	des, err := Run(Config{Workflow: w, Policy: NewOracle(w), Pool: opportunistic.Static{N: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range resources.AllocatedKinds() {
		if math.Abs(seq.Acc.Allocation(k)-des.Acc.Allocation(k)) > 1e-6 {
			t.Errorf("allocation mismatch for %s: %v vs %v", k, seq.Acc.Allocation(k), des.Acc.Allocation(k))
		}
	}
}

func TestSequentialErrors(t *testing.T) {
	if _, err := RunSequential(nil, nil, RampLinear, 0); err == nil {
		t.Error("nil inputs should error")
	}
	w := mustWorkflow(t, "normal", 5, 15)
	if _, err := RunSequential(w, stubbornPolicy{}, RampLinear, 3); err == nil {
		t.Error("stubborn policy should exhaust attempts")
	}
}

func TestSubmitWindowThrottlesGeneration(t *testing.T) {
	// With a window of w, at most w tasks may ever have been started
	// before the k-th completion, so the number of distinct tasks allocated
	// ahead of feedback is bounded by w.
	w := mustWorkflow(t, "uniform", 100, 20)
	w.SubmitWindow = 5
	rec := &recordingPolicy{Policy: NewOracle(w)}
	if _, err := Run(Config{Workflow: w, Policy: rec, Pool: opportunistic.Static{N: 50}}); err != nil {
		t.Fatal(err)
	}
	// Despite 50 free workers, only the window's 5 tasks exist at t=0, so
	// the first five allocations are exactly tasks 1-5.
	if len(rec.allocated) < 5 {
		t.Fatalf("only %d allocations", len(rec.allocated))
	}
	for i, id := range rec.allocated[:5] {
		if id < 1 || id > 5 {
			t.Errorf("allocation %d was task %d; window of 5 leaked", i, id)
		}
	}
	distinct := map[int]bool{}
	for _, id := range rec.allocated {
		distinct[id] = true
	}
	if len(distinct) != 100 {
		t.Fatalf("only %d distinct tasks were allocated", len(distinct))
	}
}

func TestWorkersRampUpIsUsed(t *testing.T) {
	w := mustWorkflow(t, "uniform", 300, 16)
	res, err := Run(Config{
		Workflow: w,
		Policy:   NewOracle(w),
		Pool:     opportunistic.Backfill{Min: 3, Max: 10, Interval: 30},
		PoolSeed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakWorkers < 4 {
		t.Errorf("peak workers = %d; ramp-up never used", res.PeakWorkers)
	}
}

func TestOracleUnknownTaskFallsBack(t *testing.T) {
	w := mustWorkflow(t, "normal", 5, 18)
	o := NewOracle(w)
	alloc := o.Allocate("x", 99999)
	if alloc.Get(resources.Cores) != 16 {
		t.Errorf("unknown task alloc = %v, want whole machine", alloc)
	}
	if o.Name() != "oracle" {
		t.Error("name")
	}
}
