package sim

import (
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// streamParityPool is a churny pool, so the Source-driven path is exercised
// under evictions, block requeues, and worker turnover — not just the happy
// path.
func streamParityPool() opportunistic.Model {
	return opportunistic.Churn{
		Initial: 8, MeanLifetime: 600, MeanInterval: 250,
		Horizon: 1e5, KeepLastAlive: true,
	}
}

// TestSourceMatchesWorkflowFingerprints is the API-redesign contract: for
// every evaluation workload and several seeds, driving the simulator from a
// lazy workflow.Source must produce a byte-identical Result — same
// makespan bits, same attempt chains, same allocation vectors — as driving
// it from the materialized *Workflow. The workloads' generators share one
// sequential random stream between the two forms (Materialize is defined
// over the stream), so any divergence is an engine bug, not sampling noise.
func TestSourceMatchesWorkflowFingerprints(t *testing.T) {
	for _, name := range workflow.Names() {
		for _, seed := range []uint64{1, 7, 23} {
			n := 160 // synthetic families; production workloads fix their own count
			run := func(cfg Config) uint64 {
				cfg.Policy = allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: seed + 5})
				cfg.Pool = streamParityPool()
				cfg.PoolSeed = seed
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/seed%d: %v", name, seed, err)
				}
				return resultFingerprint(res)
			}
			w, err := workflow.ByName(name, n, seed)
			if err != nil {
				t.Fatal(err)
			}
			src, err := workflow.SourceByName(name, n, seed)
			if err != nil {
				t.Fatal(err)
			}
			if slice, stream := run(Config{Workflow: w}), run(Config{Source: src}); slice != stream {
				t.Errorf("%s/seed%d: source-driven run diverged: %x vs %x", name, seed, slice, stream)
			}
		}
	}
}

// TestStreamingModeMatchesRetained checks the outcome-streaming side of the
// redesign: with OnOutcome (or DiscardOutcomes) set, Result.Outcomes is nil
// but the accumulated metrics, the emission order, and every emitted
// outcome must match the retained run exactly.
func TestStreamingModeMatchesRetained(t *testing.T) {
	w := mustWorkflow(t, "bimodal", 220, 3)
	base := func() Config {
		return Config{
			Workflow: w,
			Policy:   allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 9}),
			Pool:     streamParityPool(),
			PoolSeed: 3,
		}
	}
	retained, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}

	var streamed []metrics.TaskOutcome
	cfg := base()
	cfg.OnOutcome = func(o *metrics.TaskOutcome) {
		c := *o
		c.Attempts = append([]metrics.Attempt(nil), o.Attempts...)
		streamed = append(streamed, c)
	}
	stream, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Outcomes != nil {
		t.Error("streaming run retained outcomes")
	}
	if len(streamed) != len(retained.Outcomes) {
		t.Fatalf("streamed %d outcomes, retained run had %d", len(streamed), len(retained.Outcomes))
	}
	for i := range streamed {
		if streamed[i].TaskID != retained.Outcomes[i].TaskID {
			t.Fatalf("emission order diverged at %d: task %d vs %d",
				i, streamed[i].TaskID, retained.Outcomes[i].TaskID)
		}
		if len(streamed[i].Attempts) != len(retained.Outcomes[i].Attempts) {
			t.Fatalf("task %d attempt count diverged", streamed[i].TaskID)
		}
		for j := range streamed[i].Attempts {
			if streamed[i].Attempts[j] != retained.Outcomes[i].Attempts[j] {
				t.Fatalf("task %d attempt %d diverged", streamed[i].TaskID, j)
			}
		}
	}
	if stream.Acc != retained.Acc {
		t.Errorf("accumulators diverged:\nstream   %+v\nretained %+v", stream.Summary(), retained.Summary())
	}

	discard := base()
	discard.DiscardOutcomes = true
	disc, err := Run(discard)
	if err != nil {
		t.Fatal(err)
	}
	if disc.Outcomes != nil {
		t.Error("DiscardOutcomes retained outcomes")
	}
	if disc.Acc != retained.Acc {
		t.Error("DiscardOutcomes accumulator diverged from retained run")
	}
}

// TestSubmitWindowBoundsPeakWindow is the memory claim behind the streaming
// API: with a submit window, the number of task records alive at once is a
// function of the window and the pool (emission is index-ordered, so tasks
// completing behind a long-running older task linger until it drains), but
// NOT of the task count — doubling the workload must not move the peak.
func TestSubmitWindowBoundsPeakWindow(t *testing.T) {
	peak := func(n int) int {
		src, err := workflow.SourceByName("uniform", n, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Source:          workflow.WithSubmitWindow(src, 32),
			Policy:          allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 6}),
			Pool:            opportunistic.Static{N: 10},
			DiscardOutcomes: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Acc.Tasks() != n {
			t.Fatalf("completed %d of %d tasks", res.Acc.Tasks(), n)
		}
		if res.Outcomes != nil {
			t.Error("discard run kept outcomes")
		}
		return res.PeakWindow
	}
	p1, p2 := peak(1500), peak(3000)
	if p2 >= 1500/2 {
		t.Errorf("peak window %d is not small relative to the workload", p2)
	}
	// Independence of task count: doubling the workload adds 1500 tasks but
	// may only nudge the peak by straggler noise (a deeper run has more
	// chances to hit an extreme duration outlier), never track the count.
	if p2 > p1+2*32 {
		t.Errorf("peak window grew with the task count: %d (n=1500) vs %d (n=3000)", p1, p2)
	}
}

// TestCategoriesStreaming wires Config.Categories: per-category accumulators
// must partition the global accumulator exactly.
func TestCategoriesStreaming(t *testing.T) {
	w := mustWorkflow(t, "colmena", 0, 4)
	bc := metrics.NewByCategory(64, 11)
	res, err := Run(Config{
		Workflow:        w,
		Policy:          allocator.MustNew(allocator.MaxSeen, allocator.Config{Seed: 12}),
		Pool:            opportunistic.Static{N: 30},
		Categories:      bc,
		DiscardOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := bc.Categories()
	if len(cats) != 2 || cats[0] != "evaluate_mpnn" || cats[1] != "compute_atomization_energy" {
		t.Fatalf("categories = %v", cats)
	}
	if bc.Tasks() != res.Acc.Tasks() {
		t.Errorf("per-category tasks %d != global %d", bc.Tasks(), res.Acc.Tasks())
	}
	for _, k := range resources.AllocatedKinds() {
		sum := 0.0
		for _, c := range cats {
			sum += bc.Stats(c).Acc.Allocation(k)
		}
		if got := res.Acc.Allocation(k); !almostEqual(sum, got) {
			t.Errorf("allocation(%s): category sum %v != global %v", k, sum, got)
		}
	}
	for _, c := range cats {
		cs := bc.Stats(c)
		if cs.Memory.Seen() != uint64(cs.Acc.Tasks()) {
			t.Errorf("%s: memory reservoir saw %d of %d tasks", c, cs.Memory.Seen(), cs.Acc.Tasks())
		}
		if cs.Memory.Len() > 64 {
			t.Errorf("%s: reservoir overflowed its capacity: %d", c, cs.Memory.Len())
		}
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}

// TestConfigSourceExclusivity: setting both workload forms is a caller bug
// and must error rather than silently prefer one.
func TestConfigSourceExclusivity(t *testing.T) {
	w := mustWorkflow(t, "normal", 10, 2)
	_, err := Run(Config{
		Workflow: w,
		Source:   w.Stream(),
		Policy:   NewOracle(w),
		Pool:     opportunistic.Static{N: 2},
	})
	if err == nil {
		t.Error("both Workflow and Source set should error")
	}
}
