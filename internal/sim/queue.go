package sim

// taskQueue is the simulator's ready queue: a growable ring buffer of task
// indices with O(1) push at either end. The eviction and retry paths push
// blocks onto the front (retries jump the queue), which on a plain slice
// cost a full copy per requeued task; dispatch compacts the queue in place
// through At/Set/Truncate instead of rebuilding a `remaining` slice per
// scan, so the steady-state hot path allocates nothing.
//
// The zero value is an empty queue ready for use.
type taskQueue struct {
	buf  []int // ring storage; len(buf) is a power of two (or zero)
	head int   // index of element 0 within buf
	n    int   // number of live elements
}

// Len returns the number of queued indices.
func (q *taskQueue) Len() int { return q.n }

// At returns the i-th queued index (0 = front). i must be in [0, Len()).
func (q *taskQueue) At(i int) int { return q.buf[(q.head+i)&(len(q.buf)-1)] }

// Set overwrites the i-th queued index. i must be in [0, Len()).
func (q *taskQueue) Set(i, v int) { q.buf[(q.head+i)&(len(q.buf)-1)] = v }

// PushBack appends v to the back of the queue.
func (q *taskQueue) PushBack(v int) {
	q.grow(1)
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// PushFront prepends v to the front of the queue.
func (q *taskQueue) PushFront(v int) {
	q.grow(1)
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = v
	q.n++
}

// PushFrontAll prepends vs as a block: after the call the queue reads
// vs[0], vs[1], ..., then the previous contents. This is the multi-victim
// eviction requeue — the whole block jumps the queue while its internal
// (ascending task ID) order is preserved.
func (q *taskQueue) PushFrontAll(vs []int) {
	q.grow(len(vs))
	for i := len(vs) - 1; i >= 0; i-- {
		q.head = (q.head - 1) & (len(q.buf) - 1)
		q.buf[q.head] = vs[i]
		q.n++
	}
}

// PopFront removes and returns the front index. The queue must not be
// empty.
func (q *taskQueue) PopFront() int {
	if q.n == 0 {
		panic("sim: PopFront on empty taskQueue")
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Truncate shrinks the queue to its first n elements. n must be in
// [0, Len()]; growing through Truncate is not allowed.
func (q *taskQueue) Truncate(n int) {
	if n < 0 || n > q.n {
		panic("sim: Truncate out of range")
	}
	q.n = n
}

// grow ensures capacity for k more elements, doubling the ring (and
// re-linearizing it) as needed.
func (q *taskQueue) grow(k int) {
	need := q.n + k
	if need <= len(q.buf) {
		return
	}
	size := len(q.buf)
	if size == 0 {
		size = 16
	}
	for size < need {
		size *= 2
	}
	buf := make([]int, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.At(i)
	}
	q.buf = buf
	q.head = 0
}
