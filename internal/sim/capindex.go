package sim

import (
	"math"

	"dynalloc/internal/resources"
)

// pruneSlack is the relative slack added to per-node headroom upper bounds.
// A worker admits an allocation when fl(used+alloc) <= limit; rewriting that
// as alloc <= limit-used for pruning introduces up to ~3 ulps of rounding
// difference, so each bound carries slack of limit*pruneSlack (≈ 4.5 ulps)
// to guarantee the index never prunes away a worker the exact comparison
// would admit. False positives are harmless: the leaf re-checks with
// simWorker.fits, the same comparison the linear scan used.
const pruneSlack = 1e-15

// capIndex is a segment tree over worker slots (slot = arrival index, which
// is also arrival order since pool schedules are time-sorted and same-time
// arrivals fire in slot order). Each node aggregates, over the alive workers
// in its subtree:
//
//   - hubC/hubM/hubD: an upper bound on per-kind headroom (limit - used,
//     plus pruneSlack), so a subtree with hub < alloc on any kind cannot
//     contain a fitting worker and is skipped;
//   - smax/smin: the exact max/min of the placement score (free memory,
//     computed with the same expression the linear scan used), driving
//     branch-and-bound for worst-fit and best-fit.
//
// Queries descend left-first, so ties resolve to the lowest slot — the same
// worker the old linear scan over the arrival-ordered alive slice returned.
// Updates on place/complete/arrive/evict are O(log W). First-fit probes are
// O(log W) (one root-to-leaf descent with O(1) subtree rejections), and
// worst-fit behaves the same in practice because smax steers the descent
// straight to the maximum. Best-fit is exact branch-and-bound: smin keeps
// pointing into subtrees of workers too full to fit, so with many near-full
// workers it can degenerate toward the O(W) scan it replaced — but never
// asymptotically worse, and the golden runs show typical pools prune well.
type capIndex struct {
	size int           // leaf count, a power of two; node k's children are 2k and 2k+1
	ws   []*simWorker  // leaf slot -> alive worker, nil when dead or not yet arrived
	hubC []float64     // headroom upper bound, cores
	hubM []float64     // headroom upper bound, memory
	hubD []float64     // headroom upper bound, disk
	smax []float64     // max free-memory score in subtree (-Inf when empty)
	smin []float64     // min free-memory score in subtree (+Inf when empty)
}

// newCapIndex builds an empty index with room for n worker slots.
func newCapIndex(n int) *capIndex {
	size := 1
	for size < n {
		size <<= 1
	}
	ci := &capIndex{
		size: size,
		ws:   make([]*simWorker, size),
		hubC: make([]float64, 2*size),
		hubM: make([]float64, 2*size),
		hubD: make([]float64, 2*size),
		smax: make([]float64, 2*size),
		smin: make([]float64, 2*size),
	}
	negInf, posInf := math.Inf(-1), math.Inf(1)
	for i := range ci.hubC {
		ci.hubC[i], ci.hubM[i], ci.hubD[i] = -1, -1, -1
		ci.smax[i], ci.smin[i] = negInf, posInf
	}
	return ci
}

// update refreshes slot after any change to the worker's used vector or
// liveness; pass a nil or dead worker to clear the slot. Cost: O(log W).
func (ci *capIndex) update(slot int, w *simWorker) {
	k := ci.size + slot
	if w == nil || !w.alive {
		ci.ws[slot] = nil
		ci.hubC[k], ci.hubM[k], ci.hubD[k] = -1, -1, -1
		ci.smax[k] = math.Inf(-1)
		ci.smin[k] = math.Inf(1)
	} else {
		ci.ws[slot] = w
		ci.hubC[k] = w.limit[resources.Cores] - w.used[resources.Cores] + w.limit[resources.Cores]*pruneSlack
		ci.hubM[k] = w.limit[resources.Memory] - w.used[resources.Memory] + w.limit[resources.Memory]*pruneSlack
		ci.hubD[k] = w.limit[resources.Disk] - w.used[resources.Disk] + w.limit[resources.Disk]*pruneSlack
		free := w.capacity.Get(resources.Memory) - w.used.Get(resources.Memory)
		ci.smax[k], ci.smin[k] = free, free
	}
	for k >>= 1; k >= 1; k >>= 1 {
		l, r := 2*k, 2*k+1
		ci.hubC[k] = max(ci.hubC[l], ci.hubC[r])
		ci.hubM[k] = max(ci.hubM[l], ci.hubM[r])
		ci.hubD[k] = max(ci.hubD[l], ci.hubD[r])
		ci.smax[k] = max(ci.smax[l], ci.smax[r])
		ci.smin[k] = min(ci.smin[l], ci.smin[r])
	}
}

// admits reports whether subtree k may contain a worker fitting alloc. Only
// a conservative upper-bound check: a true result still needs the exact
// leaf-level fits.
func (ci *capIndex) admits(k int, alloc resources.Vector) bool {
	return alloc[resources.Cores] <= ci.hubC[k] &&
		alloc[resources.Memory] <= ci.hubM[k] &&
		alloc[resources.Disk] <= ci.hubD[k]
}

// firstFit returns the lowest-slot alive worker that fits alloc, or nil.
func (ci *capIndex) firstFit(alloc resources.Vector) *simWorker {
	if !ci.admits(1, alloc) {
		return nil
	}
	return ci.firstFitRec(1, alloc)
}

func (ci *capIndex) firstFitRec(k int, alloc resources.Vector) *simWorker {
	if k >= ci.size {
		// Leaf: decide with the exact admission comparison; the bounds may
		// have let a near-boundary non-fit through.
		if w := ci.ws[k-ci.size]; w != nil && w.fits(alloc) {
			return w
		}
		return nil
	}
	if ci.admits(2*k, alloc) {
		if w := ci.firstFitRec(2*k, alloc); w != nil {
			return w
		}
	}
	if ci.admits(2*k+1, alloc) {
		return ci.firstFitRec(2*k+1, alloc)
	}
	return nil
}

// worstFit returns the fitting worker with the most free memory (ties to
// the lowest slot), or nil.
func (ci *capIndex) worstFit(alloc resources.Vector) *simWorker {
	w, _ := ci.worstFitRec(1, alloc, nil, 0)
	return w
}

func (ci *capIndex) worstFitRec(k int, alloc resources.Vector, best *simWorker, bestScore float64) (*simWorker, float64) {
	if !ci.admits(k, alloc) {
		return best, bestScore
	}
	// Strict improvement only (matching the linear scan's tie-to-earliest),
	// so a subtree whose score maximum does not exceed the incumbent is dead.
	if best != nil && ci.smax[k] <= bestScore {
		return best, bestScore
	}
	if k >= ci.size {
		w := ci.ws[k-ci.size]
		if w == nil || !w.fits(alloc) {
			return best, bestScore
		}
		free := w.capacity.Get(resources.Memory) - w.used.Get(resources.Memory)
		if best == nil || free > bestScore {
			return w, free
		}
		return best, bestScore
	}
	best, bestScore = ci.worstFitRec(2*k, alloc, best, bestScore)
	return ci.worstFitRec(2*k+1, alloc, best, bestScore)
}

// bestFit returns the fitting worker with the least free memory (ties to
// the lowest slot), or nil.
func (ci *capIndex) bestFit(alloc resources.Vector) *simWorker {
	w, _ := ci.bestFitRec(1, alloc, nil, 0)
	return w
}

func (ci *capIndex) bestFitRec(k int, alloc resources.Vector, best *simWorker, bestScore float64) (*simWorker, float64) {
	if !ci.admits(k, alloc) {
		return best, bestScore
	}
	if best != nil && ci.smin[k] >= bestScore {
		return best, bestScore
	}
	if k >= ci.size {
		w := ci.ws[k-ci.size]
		if w == nil || !w.fits(alloc) {
			return best, bestScore
		}
		free := w.capacity.Get(resources.Memory) - w.used.Get(resources.Memory)
		if best == nil || free < bestScore {
			return w, free
		}
		return best, bestScore
	}
	best, bestScore = ci.bestFitRec(2*k, alloc, best, bestScore)
	return ci.bestFitRec(2*k+1, alloc, best, bestScore)
}
