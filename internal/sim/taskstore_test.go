package sim

import "testing"

func TestTaskStoreWindowSemantics(t *testing.T) {
	var ts taskStore
	if ts.len() != 0 || ts.lo() != 0 || ts.hi() != 0 {
		t.Fatalf("zero store not empty: len=%d lo=%d hi=%d", ts.len(), ts.lo(), ts.hi())
	}
	// Slide a window of at most 5 over 1000 task indices, forcing many ring
	// wraps, and verify every live entry stays addressable by its absolute
	// index.
	next := 0
	for next < 1000 || ts.len() > 0 {
		for ts.len() < 5 && next < 1000 {
			e := ts.pushBack()
			e.task.ID = next + 1
			e.done = false
			next++
		}
		for i := ts.lo(); i < ts.hi(); i++ {
			if got := ts.get(i).task.ID; got != i+1 {
				t.Fatalf("get(%d).ID = %d, want %d", i, got, i+1)
			}
		}
		if ts.front() != ts.get(ts.lo()) {
			t.Fatal("front() disagrees with get(lo())")
		}
		drop := 1 + next%3
		for d := 0; d < drop && ts.len() > 0; d++ {
			ts.popFront()
		}
	}
	if ts.lo() != 1000 || ts.hi() != 1000 {
		t.Errorf("final window = [%d, %d), want [1000, 1000)", ts.lo(), ts.hi())
	}
	if ts.peak > 8 {
		t.Errorf("peak window = %d for a 5-wide sliding window", ts.peak)
	}
	if len(ts.buf) > 16 {
		t.Errorf("ring grew to %d entries for a 5-wide window", len(ts.buf))
	}
}

func TestTaskStoreGrowPreservesOrder(t *testing.T) {
	var ts taskStore
	// Interleave pushes and pops so the ring wraps before growing.
	for i := 0; i < 12; i++ {
		ts.pushBack().task.ID = i + 1
	}
	for i := 0; i < 10; i++ {
		ts.popFront()
	}
	for i := 12; i < 200; i++ { // forces several doublings across the wrap
		ts.pushBack().task.ID = i + 1
	}
	for i := ts.lo(); i < ts.hi(); i++ {
		if got := ts.get(i).task.ID; got != i+1 {
			t.Fatalf("after grow: get(%d).ID = %d, want %d", i, got, i+1)
		}
	}
	if ts.lo() != 10 || ts.hi() != 200 {
		t.Errorf("window = [%d, %d), want [10, 200)", ts.lo(), ts.hi())
	}
}

func TestTaskStorePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("popFront on empty store did not panic")
		}
	}()
	var ts taskStore
	ts.popFront()
}
