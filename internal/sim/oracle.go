package sim

import (
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

// Oracle is the unrealizable optimal policy of Section II-C: it allocates
// every task exactly its peak consumption, achieving zero resource waste and
// AWE = 1. It exists only in simulation — where the hidden 4-tuple is
// visible — and anchors the test suite: every realizable policy must be
// dominated by it.
type Oracle struct {
	byID map[int]resources.Vector
}

// NewOracle builds the oracle for a workload.
func NewOracle(w *workflow.Workflow) *Oracle {
	o := &Oracle{byID: make(map[int]resources.Vector, len(w.Tasks))}
	for _, t := range w.Tasks {
		o.byID[t.ID] = t.Consumption
	}
	return o
}

// Allocate implements allocator.Policy.
func (o *Oracle) Allocate(category string, taskID int) resources.Vector {
	c, ok := o.byID[taskID]
	if !ok {
		return resources.PaperWorker()
	}
	// Exact peak; time is left unconstrained as in the paper's evaluation.
	return c.With(resources.Time, resources.Unlimited)
}

// Retry implements allocator.Policy. The oracle never under-allocates, so a
// retry can only follow an eviction or a misuse; escalate defensively.
func (o *Oracle) Retry(category string, taskID int, prev resources.Vector, exceeded []resources.Kind) resources.Vector {
	next := prev
	for _, k := range exceeded {
		next = next.With(k, prev.Get(k)*2)
	}
	return next
}

// Observe implements allocator.Policy.
func (o *Oracle) Observe(string, int, resources.Vector, float64) {}

// Name implements allocator.Policy.
func (o *Oracle) Name() string { return "oracle" }
