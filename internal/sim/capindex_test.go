package sim

import (
	"math/rand/v2"
	"testing"

	"dynalloc/internal/resources"
)

// TestCapIndexMatchesLinearScan is the equivalence property behind the
// O(log W) placement path: under an arbitrary churn of arrivals, evictions,
// placements, and completions, every first/worst/best-fit query on the
// capacity index must return exactly the worker the reference linear scan
// (Placement.pickLinear over the arrival-ordered alive slice) returns —
// same pointer, including nil, including ties.
func TestCapIndexMatchesLinearScan(t *testing.T) {
	const slots = 60
	shape := resources.PaperWorker()
	r := rand.New(rand.NewPCG(11, 17))

	ci := newCapIndex(slots)
	var alive []*simWorker // arrival order == ascending id
	byID := make([]*simWorker, slots)
	nextID := 0

	randAlloc := func() resources.Vector {
		// Mix tiny, mid, and near-capacity allocations so probes regularly
		// straddle the fits boundary.
		f := []float64{0.01, 0.1, 0.3, 0.5, 0.9, 1.0}[r.IntN(6)]
		return resources.New(
			shape.Get(resources.Cores)*f,
			shape.Get(resources.Memory)*f,
			shape.Get(resources.Disk)*f,
			resources.Unlimited)
	}

	check := func(step int) {
		alloc := randAlloc()
		for _, tc := range []struct {
			place Placement
			got   *simWorker
		}{
			{FirstFit, ci.firstFit(alloc)},
			{WorstFit, ci.worstFit(alloc)},
			{BestFit, ci.bestFit(alloc)},
		} {
			want := tc.place.pickLinear(alive, alloc, nil, 0)
			if tc.got != want {
				t.Fatalf("step %d: %s diverged for alloc %v: index=%v linear=%v",
					step, tc.place, alloc, workerID(tc.got), workerID(want))
			}
		}
	}

	for step := 0; step < 4000; step++ {
		switch op := r.IntN(10); {
		case op < 3 && nextID < slots: // arrival
			w := newSimWorker(nextID, shape)
			byID[nextID] = w
			alive = append(alive, w)
			ci.update(nextID, w)
			nextID++
		case op < 5 && len(alive) > 0: // eviction
			i := r.IntN(len(alive))
			w := alive[i]
			w.alive = false
			w.used = resources.Vector{}
			byID[w.id] = nil
			alive = append(alive[:i], alive[i+1:]...)
			ci.update(w.id, nil)
		case len(alive) > 0: // place or complete on a random worker
			w := alive[r.IntN(len(alive))]
			alloc := randAlloc()
			if r.IntN(2) == 0 && w.fits(alloc) {
				w.used = w.used.Add(alloc.With(resources.Time, 0))
			} else {
				w.used = resources.Vector{} // drain the worker
			}
			ci.update(w.id, w)
		}
		check(step)
	}
}

func workerID(w *simWorker) int {
	if w == nil {
		return -1
	}
	return w.id
}

// TestCapIndexBoundaryAllocations drives allocations right at the slack
// boundary, where conservative pruning and the exact leaf check may
// disagree transiently: the index must still agree with the linear scan.
func TestCapIndexBoundaryAllocations(t *testing.T) {
	shape := resources.New(16, 64000, 64000, resources.Unlimited)
	ci := newCapIndex(4)
	var alive []*simWorker
	for i := 0; i < 4; i++ {
		w := newSimWorker(i, shape)
		alive = append(alive, w)
		ci.update(i, w)
	}
	// Fill worker 0 to exactly capacity, worker 1 to capacity*(1+slack)
	// (the admission limit), worker 2 just beyond it.
	alive[0].used = shape.With(resources.Time, 0)
	alive[1].used = alive[1].limit.With(resources.Time, 0)
	alive[2].used = alive[2].limit.Scale(1 + 1e-9).With(resources.Time, 0)
	for i := 0; i < 3; i++ {
		ci.update(i, alive[i])
	}
	for _, alloc := range []resources.Vector{
		resources.New(0, 0, 0, 0),
		resources.New(1e-12, 1e-12, 1e-12, 0),
		resources.New(0.5, 2000, 2000, resources.Unlimited),
		shape.With(resources.Time, resources.Unlimited),
	} {
		if got, want := ci.firstFit(alloc), FirstFit.pickLinear(alive, alloc, nil, 0); got != want {
			t.Errorf("first-fit(%v): index=%d linear=%d", alloc, workerID(got), workerID(want))
		}
		if got, want := ci.worstFit(alloc), WorstFit.pickLinear(alive, alloc, nil, 0); got != want {
			t.Errorf("worst-fit(%v): index=%d linear=%d", alloc, workerID(got), workerID(want))
		}
		if got, want := ci.bestFit(alloc), BestFit.pickLinear(alive, alloc, nil, 0); got != want {
			t.Errorf("best-fit(%v): index=%d linear=%d", alloc, workerID(got), workerID(want))
		}
	}
}
