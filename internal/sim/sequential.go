package sim

import (
	"context"
	"fmt"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/workflow"
)

// RunSequential evaluates a policy on a workflow without a worker pool:
// tasks execute one at a time in submission order, each retried until it
// succeeds, and every completion feeds the policy before the next task is
// allocated. Because the AWE metric is independent of the worker pool
// (Section II-C), this fast path produces efficiency and waste numbers of
// the same nature as the full simulation — with completion order equal to
// submission order — at a fraction of the cost. Benchmarks and parameter
// sweeps use it; the discrete-event Run exercises realistic interleavings.
func RunSequential(w *workflow.Workflow, policy allocator.Policy, model ConsumptionModel, maxAttempts int) (*Result, error) {
	return RunSequentialContext(context.Background(), w, policy, model, maxAttempts)
}

// RunSequentialContext is RunSequential under a context: the driver checks
// ctx between tasks and aborts with an error wrapping ErrCanceled once the
// context is done.
func RunSequentialContext(ctx context.Context, w *workflow.Workflow, policy allocator.Policy, model ConsumptionModel, maxAttempts int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w == nil || policy == nil {
		return nil, fmt.Errorf("sim: workflow and policy are required")
	}
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	res := &Result{PeakWorkers: 1}
	clock := 0.0
	for i, t := range w.Tasks {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w after %d/%d tasks: %w", ErrCanceled, i, len(w.Tasks), err)
			}
		}
		outcome := metrics.TaskOutcome{
			TaskID:     t.ID,
			Category:   t.Category,
			Peak:       t.Consumption,
			Runtime:    t.Runtime(),
			SubmitTime: clock,
		}
		alloc := policy.Allocate(t.Category, t.ID)
		for {
			duration, exceeded := EvaluateAttempt(model, t.Consumption, t.Runtime(), alloc)
			clock += duration
			if len(exceeded) == 0 {
				outcome.Attempts = append(outcome.Attempts, metrics.Attempt{
					Alloc: alloc, Duration: duration, Status: metrics.Success,
				})
				break
			}
			outcome.Attempts = append(outcome.Attempts, metrics.Attempt{
				Alloc: alloc, Duration: duration, Status: metrics.Exhausted,
			})
			if outcome.Retries() >= maxAttempts {
				return nil, fmt.Errorf("sim: task %d exceeded %d attempts under %s",
					t.ID, maxAttempts, policy.Name())
			}
			alloc = policy.Retry(t.Category, t.ID, alloc, exceeded)
		}
		outcome.DoneTime = clock
		policy.Observe(t.Category, t.ID, t.Consumption, t.Runtime())
		res.Outcomes = append(res.Outcomes, outcome)
		res.Acc.Add(outcome)
	}
	res.Makespan = clock
	return res, nil
}
