package sim

import (
	"fmt"

	"dynalloc/internal/allocator"
	"dynalloc/internal/metrics"
	"dynalloc/internal/workflow"
)

// RunSequential evaluates a policy on a workflow without a worker pool:
// tasks execute one at a time in submission order, each retried until it
// succeeds, and every completion feeds the policy before the next task is
// allocated. Because the AWE metric is independent of the worker pool
// (Section II-C), this fast path produces efficiency and waste numbers of
// the same nature as the full simulation — with completion order equal to
// submission order — at a fraction of the cost. Benchmarks and parameter
// sweeps use it; the discrete-event Run exercises realistic interleavings.
func RunSequential(w *workflow.Workflow, policy allocator.Policy, model ConsumptionModel, maxAttempts int) (*Result, error) {
	if w == nil || policy == nil {
		return nil, fmt.Errorf("sim: workflow and policy are required")
	}
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	res := &Result{PeakWorkers: 1}
	clock := 0.0
	for _, t := range w.Tasks {
		outcome := metrics.TaskOutcome{
			TaskID:   t.ID,
			Category: t.Category,
			Peak:     t.Consumption,
			Runtime:  t.Runtime(),
		}
		alloc := policy.Allocate(t.Category, t.ID)
		for {
			duration, exceeded := EvaluateAttempt(model, t.Consumption, t.Runtime(), alloc)
			clock += duration
			if len(exceeded) == 0 {
				outcome.Attempts = append(outcome.Attempts, metrics.Attempt{
					Alloc: alloc, Duration: duration, Status: metrics.Success,
				})
				break
			}
			outcome.Attempts = append(outcome.Attempts, metrics.Attempt{
				Alloc: alloc, Duration: duration, Status: metrics.Exhausted,
			})
			if outcome.Retries() >= maxAttempts {
				return nil, fmt.Errorf("sim: task %d exceeded %d attempts under %s",
					t.ID, maxAttempts, policy.Name())
			}
			alloc = policy.Retry(t.Category, t.ID, alloc, exceeded)
		}
		policy.Observe(t.Category, t.ID, t.Consumption, t.Runtime())
		res.Outcomes = append(res.Outcomes, outcome)
		res.Acc.Add(outcome)
	}
	res.Makespan = clock
	return res, nil
}
