package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/vine"
)

// The golden-equivalence layer: the dispatch hot path is free to change its
// data structures (alive-worker index, ready deque, precomputed capacity
// limits) but must never change simulated results. Each scenario pins the
// exact Result a fixed seed produces — makespan to the bit, eviction and
// attempt counts, and an FNV-1a fingerprint over every outcome's attempt
// chain. Any refactor that perturbs dispatch order, admission decisions, or
// requeue order shows up as a fingerprint mismatch.
//
// Regenerate after an *intentional* behaviour change with:
//
//	SIM_GOLDEN_UPDATE=1 go test ./internal/sim -run TestGoldenEquivalence -v

// resultFingerprint hashes everything observable about a run's outcomes:
// task IDs, attempt statuses, attempt durations, and allocation vectors,
// all bit-exact.
func resultFingerprint(res *Result) uint64 {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	word(math.Float64bits(res.Makespan))
	word(uint64(res.Evictions))
	word(uint64(res.PeakWorkers))
	for _, o := range res.Outcomes {
		word(uint64(o.TaskID))
		word(uint64(len(o.Attempts)))
		for _, a := range o.Attempts {
			word(uint64(a.Status))
			word(math.Float64bits(a.Duration))
			for _, v := range a.Alloc {
				word(math.Float64bits(v))
			}
		}
	}
	return h.Sum64()
}

type goldenWant struct {
	makespan    float64
	evictions   int
	peakWorkers int
	attempts    int
	retries     int
	fingerprint uint64
}

// goldenConfig builds the scenario config for one (seed, placement) cell:
// a 250-task bimodal workload under Exhaustive Bucketing on a churny pool,
// so the run exercises evictions, block requeues, retries, and backfilled
// dispatch. withData additionally attaches the TaskVine data layer.
func goldenConfig(t testing.TB, seed uint64, place Placement, withData bool) Config {
	t.Helper()
	w := mustWorkflow(t, "bimodal", 250, seed)
	cfg := Config{
		Workflow: w,
		Policy:   allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: seed + 100}),
		Pool: opportunistic.Churn{
			Initial: 8, MeanLifetime: 500, MeanInterval: 200,
			Horizon: 2e4, KeepLastAlive: true,
		},
		PoolSeed: seed,
		Place:    place,
	}
	if withData {
		layer := vine.NewLayer()
		vine.Attach(layer, w, seed)
		cfg.Data = layer
	}
	return cfg
}

func TestGoldenEquivalence(t *testing.T) {
	type cell struct {
		seed     uint64
		place    Placement
		withData bool
	}
	var cells []cell
	for _, seed := range []uint64{1, 2} {
		for _, p := range Placements() {
			cells = append(cells, cell{seed: seed, place: p})
		}
	}
	// Locality with a live data layer: staging delays and cache-aware
	// picks are part of the contract too.
	cells = append(cells, cell{seed: 1, place: Locality, withData: true})

	update := os.Getenv("SIM_GOLDEN_UPDATE") != ""
	for i, c := range cells {
		name := fmt.Sprintf("seed%d/%s", c.seed, c.place)
		if c.withData {
			name += "+data"
		}
		t.Run(name, func(t *testing.T) {
			res, err := Run(goldenConfig(t, c.seed, c.place, c.withData))
			if err != nil {
				t.Fatal(err)
			}
			got := goldenWant{
				makespan:    res.Makespan,
				evictions:   res.Evictions,
				peakWorkers: res.PeakWorkers,
				attempts:    res.Summary().Attempts,
				retries:     res.Summary().Retries,
				fingerprint: resultFingerprint(res),
			}
			if update {
				fmt.Printf("\t{makespan: %v, evictions: %d, peakWorkers: %d, attempts: %d, retries: %d, fingerprint: 0x%x},\n",
					got.makespan, got.evictions, got.peakWorkers, got.attempts, got.retries, got.fingerprint)
				return
			}
			want := goldenResults[i]
			if got != want {
				t.Errorf("result diverged from golden:\n got  %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestGoldenRunsAreReproducible guards the golden table itself: two
// back-to-back runs of the same cell must already agree before comparing
// against pinned values means anything.
func TestGoldenRunsAreReproducible(t *testing.T) {
	run := func() uint64 {
		res, err := Run(goldenConfig(t, 1, WorstFit, false))
		if err != nil {
			t.Fatal(err)
		}
		return resultFingerprint(res)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverged: %x vs %x", a, b)
	}
}

// goldenResults is indexed by the cell order constructed in
// TestGoldenEquivalence: seeds {1, 2} x Placements(), then the
// locality+data cell. Locality without a data layer scores every worker 0
// and degenerates to first-fit, so those rows match by construction.
var goldenResults = []goldenWant{
	{makespan: 1026.47597365074, evictions: 110, peakWorkers: 10, attempts: 1777, retries: 1475, fingerprint: 0xd0437ad83c964949},
	{makespan: 1200.5077946536403, evictions: 110, peakWorkers: 10, attempts: 1759, retries: 1455, fingerprint: 0xc2bcd8dc31758d6f},
	{makespan: 990.8977654409191, evictions: 110, peakWorkers: 10, attempts: 1732, retries: 1429, fingerprint: 0x3e51e09fa68170f},
	{makespan: 1026.47597365074, evictions: 110, peakWorkers: 10, attempts: 1777, retries: 1475, fingerprint: 0xd0437ad83c964949},
	{makespan: 1291.5866225283432, evictions: 119, peakWorkers: 11, attempts: 1727, retries: 1372, fingerprint: 0x82d33ad589d8ed36},
	{makespan: 1271.8330728440658, evictions: 119, peakWorkers: 11, attempts: 1728, retries: 1374, fingerprint: 0x3f72202f7d85c84d},
	{makespan: 1322.1446808664955, evictions: 119, peakWorkers: 11, attempts: 1737, retries: 1373, fingerprint: 0x3c6bcb8a5649e3bf},
	{makespan: 1291.5866225283432, evictions: 119, peakWorkers: 11, attempts: 1727, retries: 1372, fingerprint: 0x82d33ad589d8ed36},
	{makespan: 1229.8817306250423, evictions: 110, peakWorkers: 10, attempts: 1765, retries: 1457, fingerprint: 0xa89272b8858b3879},
}
