package sim

// taskStore is the simulator's window of per-task state: a growable ring of
// simTask entries addressed by absolute task index. Tasks enter at the back
// as the workload source generates them and leave at the front as soon as
// they (and every lower-indexed task) complete and their outcome is
// emitted, so the store holds only the in-flight window — the structure
// that makes peak memory independent of total task count on streaming
// runs. The zero value is an empty store ready for use.
type taskStore struct {
	buf  []simTask // ring storage; len(buf) is a power of two (or zero)
	base int       // absolute task index of the logical front
	head int       // position of the front within buf
	n    int       // live entries: task indices [base, base+n)
	peak int       // high-water mark of n (the realized window size)
}

// len returns the number of live entries.
func (ts *taskStore) len() int { return ts.n }

// lo returns the lowest live task index (the front).
func (ts *taskStore) lo() int { return ts.base }

// hi returns one past the highest live task index.
func (ts *taskStore) hi() int { return ts.base + ts.n }

// get returns the entry for absolute task index idx, which must be live
// (in [lo(), hi())). The pointer is valid until the next pushBack.
func (ts *taskStore) get(idx int) *simTask {
	return &ts.buf[(ts.head+(idx-ts.base))&(len(ts.buf)-1)]
}

// front returns the entry at the logical front. The store must not be
// empty.
func (ts *taskStore) front() *simTask {
	return &ts.buf[ts.head]
}

// pushBack extends the window by one entry (absolute index hi()) and
// returns it. The entry may hold the leftovers of a previous occupant —
// callers overwrite every field, optionally recycling the old Attempts
// capacity.
func (ts *taskStore) pushBack() *simTask {
	ts.grow(1)
	e := &ts.buf[(ts.head+ts.n)&(len(ts.buf)-1)]
	ts.n++
	if ts.n > ts.peak {
		ts.peak = ts.n
	}
	return e
}

// popFront releases the front entry, advancing the window. The store must
// not be empty.
func (ts *taskStore) popFront() {
	if ts.n == 0 {
		panic("sim: popFront on empty taskStore")
	}
	ts.head = (ts.head + 1) & (len(ts.buf) - 1)
	ts.base++
	ts.n--
}

// grow ensures capacity for k more entries, doubling and re-linearizing
// the ring as needed.
func (ts *taskStore) grow(k int) {
	need := ts.n + k
	if need <= len(ts.buf) {
		return
	}
	size := len(ts.buf)
	if size == 0 {
		size = 16
	}
	for size < need {
		size *= 2
	}
	buf := make([]simTask, size)
	for i := 0; i < ts.n; i++ {
		buf[i] = ts.buf[(ts.head+i)&(len(ts.buf)-1)]
	}
	ts.buf = buf
	ts.head = 0
}
