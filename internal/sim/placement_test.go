package sim

import (
	"math"
	"testing"

	"dynalloc/internal/allocator"
	"dynalloc/internal/opportunistic"
	"dynalloc/internal/resources"
	"dynalloc/internal/workflow"
)

func TestPlacementParseRoundTrip(t *testing.T) {
	for _, p := range Placements() {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip %v: %v %v", p, got, err)
		}
	}
	if _, err := ParsePlacement("nope"); err == nil {
		t.Error("bad placement should fail to parse")
	}
	if Placement(99).String() == "" {
		t.Error("unknown placement should still stringify")
	}
}

func TestPickPolicies(t *testing.T) {
	shape := resources.New(16, 64*1024, 64*1024, resources.Unlimited)
	mkWorker := func(id int, usedMem float64) *simWorker {
		w := newSimWorker(id, shape)
		w.used = resources.New(0, usedMem, 0, 0)
		return w
	}
	workers := []*simWorker{
		mkWorker(0, 30000), // moderately loaded
		mkWorker(1, 60000), // nearly full
		mkWorker(2, 1000),  // nearly empty
	}
	alloc := resources.New(1, 2000, 100, resources.Unlimited)

	if w := FirstFit.pickLinear(workers, alloc, nil, 0); w.id != 0 {
		t.Errorf("first-fit chose %d, want 0", w.id)
	}
	if w := WorstFit.pickLinear(workers, alloc, nil, 0); w.id != 2 {
		t.Errorf("worst-fit chose %d, want 2 (most free memory)", w.id)
	}
	if w := BestFit.pickLinear(workers, alloc, nil, 0); w.id != 1 {
		t.Errorf("best-fit chose %d, want 1 (tightest fit)", w.id)
	}

	// Nothing fits: nil.
	huge := resources.New(1, 65000, 100, resources.Unlimited)
	if w := BestFit.pickLinear(workers, huge, nil, 0); w != nil {
		t.Errorf("impossible allocation placed on %d", w.id)
	}
	// Evicted workers leave the scan set entirely (the simulator removes
	// them from the alive index), so pick never sees them.
	if w := WorstFit.pickLinear(workers[:2], alloc, nil, 0); w.id != 0 {
		t.Errorf("worst-fit with evicted worker chose %d, want 0", w.id)
	}
}

// The robustness claim: the allocator's efficiency is insensitive to the
// placement policy (which only permutes completion order), so AWE across
// policies stays within a few points.
func TestAWERobustAcrossPlacementPolicies(t *testing.T) {
	w, err := workflow.ByName("bimodal", 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	var awes []float64
	for _, p := range Placements() {
		pol := allocator.MustNew(allocator.Exhaustive, allocator.Config{Seed: 10})
		res, err := Run(Config{
			Workflow: w,
			Policy:   pol,
			Pool:     opportunistic.Static{N: 10},
			Place:    p,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(res.Outcomes) != 300 {
			t.Fatalf("%v: %d outcomes", p, len(res.Outcomes))
		}
		awes = append(awes, res.Acc.AWE(resources.Memory))
	}
	lo, hi := awes[0], awes[0]
	for _, a := range awes {
		lo = math.Min(lo, a)
		hi = math.Max(hi, a)
	}
	if hi-lo > 0.10 {
		t.Errorf("AWE spread across placements = %v (%v); allocator not placement-robust", hi-lo, awes)
	}
}
