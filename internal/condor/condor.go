// Package condor simulates the batch system underneath the paper's worker
// pool: an HTCondor-style cluster whose slots are primarily consumed by a
// stream of higher-priority batch jobs, with the workflow's pilot jobs
// (workers) backfilled into whatever slots are idle and preempted the moment
// a primary job wants the slot back.
//
// This is the mechanism Section I describes — "workers can be deployed by
// submitting many small pilot jobs to take advantage of the backfilling
// strategy commonly seen in large batch systems ... and utilize unused
// resources as they become available over time" — and it produces exactly
// the opportunistic arrival/eviction schedules the workflow simulator
// consumes: Cluster implements opportunistic.Model.
package condor

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"dynalloc/internal/dist"
	"dynalloc/internal/opportunistic"
)

// Cluster describes the batch system. The zero value is not useful; fill
// the fields or use DefaultCluster.
type Cluster struct {
	// Slots is the total number of worker-shaped slots in the cluster.
	Slots int
	// PrimaryLoad is the long-run fraction of slots occupied by primary
	// (non-pilot) jobs, in [0, 1).
	PrimaryLoad float64
	// PrimaryMeanDuration is the mean runtime of a primary job in seconds.
	PrimaryMeanDuration float64
	// PilotTarget is how many pilot jobs the workflow keeps in the queue;
	// at most this many workers run concurrently.
	PilotTarget int
	// SubmitDelay is the batch-system latency between a slot opening and a
	// pilot starting in it, in seconds.
	SubmitDelay float64
	// Horizon is how long pilots keep being (re)submitted, in seconds.
	Horizon float64
}

// DefaultCluster mirrors the paper's environment: enough slots for 50
// concurrent workers under a 60%-utilized cluster, pilots resubmitted for a
// day.
func DefaultCluster() Cluster {
	return Cluster{
		Slots:               125,
		PrimaryLoad:         0.6,
		PrimaryMeanDuration: 3600,
		PilotTarget:         50,
		SubmitDelay:         30,
		Horizon:             86400,
	}
}

// Name implements opportunistic.Model.
func (c Cluster) Name() string {
	return fmt.Sprintf("condor(slots=%d, load=%.0f%%, pilots=%d)",
		c.Slots, 100*c.PrimaryLoad, c.PilotTarget)
}

// validate normalizes degenerate configurations.
func (c Cluster) validate() Cluster {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.PrimaryLoad < 0 {
		c.PrimaryLoad = 0
	}
	if c.PrimaryLoad > 0.95 {
		c.PrimaryLoad = 0.95
	}
	if c.PrimaryMeanDuration <= 0 {
		c.PrimaryMeanDuration = 3600
	}
	if c.PilotTarget <= 0 {
		c.PilotTarget = 1
	}
	if c.SubmitDelay <= 0 {
		// A zero submit delay would let a blocked pilot retry at the same
		// virtual instant forever.
		c.SubmitDelay = 30
	}
	if c.Horizon <= 0 {
		c.Horizon = 86400
	}
	return c
}

// event kinds of the internal batch-system timeline.
const (
	evPrimaryArrive = iota
	evPrimaryFinish
	evPilotStart
)

type event struct {
	at   float64
	kind int
	seq  int
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Schedule implements opportunistic.Model: it plays the batch-system
// timeline and emits one Arrival per pilot placement, with the lifetime set
// by the preemption that ended it (or 0 when the pilot survives to the
// horizon).
func (c Cluster) Schedule(seed uint64) []opportunistic.Arrival {
	c = c.validate()
	r := dist.NewRand(seed)

	// Little's law: with mean duration D and target utilization u over S
	// slots, primary jobs must arrive at rate u·S/D.
	arrivalRate := c.PrimaryLoad * float64(c.Slots) / c.PrimaryMeanDuration
	nextPrimaryGap := func() float64 {
		if arrivalRate <= 0 {
			return math.Inf(1)
		}
		return r.ExpFloat64() / arrivalRate
	}

	var q eventQueue
	seq := 0
	push := func(at float64, kind int) {
		heap.Push(&q, event{at: at, kind: kind, seq: seq})
		seq++
	}

	// State: slot accounting plus the start times of running pilots (the
	// youngest pilot is preempted first, matching HTCondor's preference for
	// keeping long-running jobs).
	primaryRunning := 0
	pilotStarts := []float64{} // sorted ascending by start time
	var out []opportunistic.Arrival
	pilotIdx := map[int]int{} // index into pilotStarts -> index into out
	free := func() int { return c.Slots - primaryRunning - len(pilotStarts) }

	// Seed the timeline: the primary load is warmed up by starting
	// load*Slots primary jobs at t=0 with residual lifetimes, then pilots
	// are submitted.
	warm := int(c.PrimaryLoad * float64(c.Slots))
	for i := 0; i < warm; i++ {
		primaryRunning++
		push(r.ExpFloat64()*c.PrimaryMeanDuration, evPrimaryFinish)
	}
	if g := nextPrimaryGap(); !math.IsInf(g, 1) {
		push(g, evPrimaryArrive)
	}
	for i := 0; i < c.PilotTarget; i++ {
		push(c.SubmitDelay*(0.5+r.Float64()), evPilotStart)
	}

	now := 0.0
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		now = e.at
		if now > c.Horizon {
			break
		}
		switch e.kind {
		case evPrimaryArrive:
			// Schedule the next arrival first.
			push(now+nextPrimaryGap(), evPrimaryArrive)
			if primaryRunning >= c.Slots {
				break // cluster saturated with primaries; job balks
			}
			if free() <= 0 && len(pilotStarts) > 0 {
				// Preempt the youngest pilot.
				last := len(pilotStarts) - 1
				started := pilotStarts[last]
				out[pilotIdx[last]].Lifetime = now - started
				delete(pilotIdx, last)
				pilotStarts = pilotStarts[:last]
				// The workflow resubmits a replacement pilot.
				push(now+c.SubmitDelay*(0.5+r.Float64()), evPilotStart)
			}
			primaryRunning++
			push(now+r.ExpFloat64()*c.PrimaryMeanDuration, evPrimaryFinish)
		case evPrimaryFinish:
			primaryRunning--
		case evPilotStart:
			if len(pilotStarts) >= c.PilotTarget {
				break // target already met
			}
			if free() <= 0 {
				// No hole to backfill into; retry later.
				push(now+c.SubmitDelay*(1+r.Float64()), evPilotStart)
				break
			}
			pilotIdx[len(pilotStarts)] = len(out)
			pilotStarts = append(pilotStarts, now)
			out = append(out, opportunistic.Arrival{At: now})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

var _ opportunistic.Model = Cluster{}
