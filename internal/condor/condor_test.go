package condor

import (
	"sort"
	"testing"
	"time"

	"dynalloc/internal/opportunistic"
	"dynalloc/internal/sim"
	"dynalloc/internal/workflow"
)

// maxConcurrent replays a schedule and returns the peak number of pilots
// alive at once.
func maxConcurrent(arr []opportunistic.Arrival) int {
	type edge struct {
		at float64
		d  int
	}
	var edges []edge
	for _, a := range arr {
		edges = append(edges, edge{a.At, +1})
		if a.Lifetime > 0 {
			edges = append(edges, edge{a.At + a.Lifetime, -1})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].d < edges[j].d // process departures first at ties
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.d
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

func TestIdleClusterRunsFullPilotTarget(t *testing.T) {
	c := Cluster{Slots: 60, PrimaryLoad: 0, PrimaryMeanDuration: 3600,
		PilotTarget: 50, SubmitDelay: 30, Horizon: 86400}
	arr := c.Schedule(1)
	if len(arr) != 50 {
		t.Fatalf("idle cluster placed %d pilots, want 50", len(arr))
	}
	for _, a := range arr {
		if a.Lifetime != 0 {
			t.Fatalf("idle cluster evicted a pilot: %+v", a)
		}
		if a.At > 100 {
			t.Fatalf("pilot start %v too late for an idle cluster", a.At)
		}
	}
}

func TestBusyClusterEvictsAndReplaces(t *testing.T) {
	c := DefaultCluster()
	arr := c.Schedule(2)
	if len(arr) <= c.PilotTarget {
		t.Fatalf("busy cluster placed only %d pilots; expected preemptions and replacements", len(arr))
	}
	evicted := 0
	for _, a := range arr {
		if a.Lifetime < 0 {
			t.Fatalf("negative lifetime: %+v", a)
		}
		if a.Lifetime > 0 {
			evicted++
		}
	}
	if evicted == 0 {
		t.Error("no pilot was ever preempted on a 60%-loaded cluster")
	}
}

func TestConcurrencyNeverExceedsPilotTarget(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		c := Cluster{Slots: 40, PrimaryLoad: 0.7, PrimaryMeanDuration: 1800,
			PilotTarget: 20, SubmitDelay: 15, Horizon: 43200}
		arr := c.Schedule(seed)
		if got := maxConcurrent(arr); got > c.PilotTarget {
			t.Fatalf("seed %d: %d concurrent pilots, target %d", seed, got, c.PilotTarget)
		}
	}
}

func TestScheduleSortedAndDeterministic(t *testing.T) {
	c := DefaultCluster()
	a := c.Schedule(7)
	b := c.Schedule(7)
	if len(a) != len(b) {
		t.Fatal("same seed, different schedule lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different schedules")
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].At < a[j].At }) {
		t.Error("schedule not sorted by arrival time")
	}
}

func TestValidateDegenerateConfigs(t *testing.T) {
	// Regression: a zero SubmitDelay used to retry blocked pilots at the
	// same virtual instant forever, hanging Schedule.
	c := Cluster{Slots: -1, PrimaryLoad: 2, PrimaryMeanDuration: -5, PilotTarget: 0}
	done := make(chan []opportunistic.Arrival, 1)
	go func() { done <- c.Schedule(3) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Schedule hung on a degenerate configuration")
	}
	v := c.validate()
	if v.Slots != 1 || v.PrimaryLoad != 0.95 || v.PilotTarget != 1 || v.SubmitDelay != 30 {
		t.Errorf("validate() = %+v", v)
	}
}

func TestClusterDrivesWorkflowSimulation(t *testing.T) {
	w, err := workflow.ByName("uniform", 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := Cluster{Slots: 30, PrimaryLoad: 0.5, PrimaryMeanDuration: 1200,
		PilotTarget: 12, SubmitDelay: 20, Horizon: 1e7}
	res, err := sim.Run(sim.Config{
		Workflow: w,
		Policy:   sim.NewOracle(w),
		Pool:     c,
		PoolSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 200 {
		t.Fatalf("completed %d tasks", len(res.Outcomes))
	}
	if res.PeakWorkers > c.PilotTarget {
		t.Errorf("peak workers %d exceeded pilot target %d", res.PeakWorkers, c.PilotTarget)
	}
}

func TestName(t *testing.T) {
	if DefaultCluster().Name() == "" {
		t.Error("empty name")
	}
}
