package allocator

import (
	"math/rand/v2"

	"dynalloc/internal/core"
	"dynalloc/internal/record"
)

// bucketing adapts a core bucketing State (Greedy or Exhaustive) to the
// Estimator interface. This is the thin glue of Figure 3a: the task
// scheduler's allocation requests become Predict/Retry calls and completed
// tasks' resource records become Observe calls.
type bucketing struct {
	state *core.State
}

func newBucketing(alg core.Algorithm) *bucketing {
	return &bucketing{state: core.NewState(alg)}
}

func (b *bucketing) Predict(r *rand.Rand) float64 { return b.state.Predict(r) }

func (b *bucketing) Retry(prev float64, r *rand.Rand) float64 { return b.state.Retry(prev, r) }

func (b *bucketing) Observe(rec record.Record) { b.state.Add(rec) }

func (b *bucketing) Len() int { return b.state.Len() }

// Stats exposes the underlying state's recomputation telemetry.
func (b *bucketing) Stats() core.Stats { return b.state.Stats() }
