package allocator

import (
	"math"
	"math/rand/v2"
	"testing"

	"dynalloc/internal/record"
)

func TestQuantizedDefaultSplit(t *testing.T) {
	q := newQuantized(nil)
	if len(q.quantiles) != 1 || q.quantiles[0] != 0.5 {
		t.Fatalf("default quantiles = %v, want [0.5]", q.quantiles)
	}
}

func TestQuantizedReps(t *testing.T) {
	q := newQuantized([]float64{0.5})
	observeValues(q, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	reps, weights := q.reps()
	if len(reps) != 2 {
		t.Fatalf("reps = %v", reps)
	}
	// Median split: index int(0.5*10)-1 = 4 -> value 5, then max 10.
	if reps[0] != 5 || reps[1] != 10 {
		t.Errorf("reps = %v, want [5 10]", reps)
	}
	if weights[0] != 5 || weights[1] != 5 {
		t.Errorf("weights = %v, want [5 5]", weights)
	}
}

func TestQuantizedPredictSamplesBothBuckets(t *testing.T) {
	q := newQuantized([]float64{0.5})
	observeValues(q, 1, 2, 3, 4, 100, 200, 300, 400)
	r := rand.New(rand.NewPCG(1, 1))
	counts := map[float64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[q.Predict(r)]++
	}
	if len(counts) != 2 {
		t.Fatalf("prediction support = %v, want 2 reps", counts)
	}
	for rep, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.5) > 0.02 {
			t.Errorf("rep %v frequency = %v, want ~0.5", rep, frac)
		}
	}
}

func TestQuantizedRetryEscalation(t *testing.T) {
	q := newQuantized([]float64{0.5})
	observeValues(q, 1, 2, 3, 4, 100, 200, 300, 400)
	r := rand.New(rand.NewPCG(2, 2))
	reps, _ := q.reps()
	low := reps[0]
	for i := 0; i < 50; i++ {
		got := q.Retry(low, r)
		if got <= low {
			t.Fatalf("Retry(%v) = %v, not an escalation", low, got)
		}
	}
	// Above the max rep: doubling.
	if got := q.Retry(400, r); got != 800 {
		t.Errorf("Retry(400) = %v, want 800", got)
	}
	if got := q.Retry(0, r); got <= 0 {
		t.Errorf("Retry(0) = %v, want positive", got)
	}
}

func TestQuantizedSingleRecord(t *testing.T) {
	q := newQuantized([]float64{0.5})
	q.Observe(record.Record{TaskID: 1, Value: 42, Time: 1})
	r := rand.New(rand.NewPCG(3, 3))
	if got := q.Predict(r); got != 42 {
		t.Errorf("single-record Predict = %v, want 42", got)
	}
}

func TestQuantizedEmpty(t *testing.T) {
	q := newQuantized(nil)
	r := rand.New(rand.NewPCG(4, 4))
	if got := q.Predict(r); got != 0 {
		t.Errorf("empty Predict = %v, want 0", got)
	}
	if got := q.Retry(10, r); got != 20 {
		t.Errorf("empty Retry(10) = %v, want 20", got)
	}
}

func TestQuantizedMultipleQuantiles(t *testing.T) {
	q := newQuantized([]float64{0.25, 0.5, 0.75})
	var vals []float64
	for i := 1; i <= 100; i++ {
		vals = append(vals, float64(i))
	}
	observeValues(q, vals...)
	reps, weights := q.reps()
	if len(reps) != 4 {
		t.Fatalf("reps = %v, want 4 buckets", reps)
	}
	// Quantile indices int(q*100)-1 = 24, 49, 74 select values 25, 50, 75.
	wantReps := []float64{25, 50, 75, 100}
	for i := range wantReps {
		if reps[i] != wantReps[i] {
			t.Errorf("reps = %v, want %v", reps, wantReps)
			break
		}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total != 100 {
		t.Errorf("weights %v sum to %v, want 100", weights, total)
	}
}
