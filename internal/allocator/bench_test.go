package allocator

import (
	"math/rand/v2"
	"testing"

	"dynalloc/internal/resources"
)

// The allocator benchmark suite: one full scheduler interaction per
// iteration — Allocate, escalate through Retry until the task's peak fits,
// Observe — for every algorithm of the evaluation. This is the per-task
// overhead the paper's Table I argues is negligible; `make bench-alloc`
// tracks it (with the bucketing-core scenarios) in BENCH_alloc.json.

// BenchmarkAllocCycle measures the full Predict/Retry/Observe cycle per
// algorithm on a two-category bimodal workload.
func BenchmarkAllocCycle(b *testing.B) {
	for _, alg := range ExtendedNames() {
		b.Run(string(alg), func(b *testing.B) {
			a := MustNew(alg, Config{Seed: 7})
			drive := rand.New(rand.NewPCG(7, 0xA11))
			cats := [2]string{"preproc", "fit"}
			// Warm both categories out of exploratory mode so the steady
			// state, not the fixed exploration constant, is measured.
			for task := 1; task <= 40; task++ {
				a.Observe(cats[task%2], task, resources.New(2, 1000, 300, 30), 30)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				task := 40 + i + 1
				cat := cats[task%2]
				peak := resources.New(
					1+3*drive.Float64(),
					200+3000*drive.Float64(),
					100+800*drive.Float64(),
					10+50*drive.Float64(),
				)
				alloc := a.Allocate(cat, task)
				for hop := 0; hop < 64; hop++ {
					var exceeded []resources.Kind
					for _, k := range resources.AllocatedKinds() {
						if peak.Get(k) > alloc.Get(k) {
							exceeded = append(exceeded, k)
						}
					}
					if len(exceeded) == 0 {
						break
					}
					alloc = a.Retry(cat, task, alloc, exceeded)
				}
				a.Observe(cat, task, peak, 30)
			}
		})
	}
}
