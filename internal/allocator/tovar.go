package allocator

import (
	"math"
	"math/rand/v2"

	"dynalloc/internal/record"
)

// The two strategies of Tovar et al., "A Job Sizing Strategy for
// High-Throughput Scientific Workflows" (TPDS 2018), as used for comparison
// in Section V-A. Both pick a first allocation from the observed record
// distribution under an at-most-once-retry policy: a task that exhausts its
// first allocation is retried with the maximum value seen so far (and keeps
// doubling should even that fail).

// minWaste chooses the first allocation a* minimizing the expected
// time-weighted resource waste
//
//	E[waste](a) = Σ_{v<=a} t_v·(a-v) + Σ_{v>a} t_v·(a + m - v)
//
// over the observed records, where m is the maximum seen value. Candidates
// are the observed values themselves; prefix sums make the sweep O(n) after
// sorting.
type minWaste struct {
	recs record.List
	// The sweep result is deterministic for a fixed record list; cache it
	// until the next observation (the scheduler may ask for thousands of
	// predictions between completions).
	cachedAt int
	cached   float64
}

func (mw *minWaste) Predict(*rand.Rand) float64 {
	n := mw.recs.Len()
	if n == 0 {
		return 0
	}
	if mw.cachedAt == n {
		return mw.cached
	}
	m := mw.recs.MaxValue()
	tAll := mw.recs.TimeSum(0, n-1)
	vtAll := mw.recs.ValueTimeSum(0, n-1)
	best := math.Inf(1)
	bestA := m
	for k := 0; k < n; k++ {
		a := mw.recs.Value(k)
		if k+1 < n && mw.recs.Value(k+1) == a {
			continue // identical candidate; evaluate once at the last duplicate
		}
		// Records (k+1..n-1) exceed a and pay a full failed allocation a·t
		// plus the retry fragmentation (m - v)·t.
		var tHi float64
		if k+1 < n {
			tHi = mw.recs.TimeSum(k+1, n-1)
		}
		waste := a*tAll - vtAll + m*tHi
		if waste < best {
			best = waste
			bestA = a
		}
	}
	mw.cachedAt, mw.cached = n, bestA
	return bestA
}

func (mw *minWaste) Retry(prev float64, _ *rand.Rand) float64 {
	return tovarRetry(&mw.recs, prev)
}

func (mw *minWaste) Observe(rec record.Record) { mw.recs.Add(rec) }

func (mw *minWaste) Len() int { return mw.recs.Len() }

// maxThroughput chooses the first allocation maximizing the expected number
// of task completions per unit of allocated resource: a smaller allocation
// packs more concurrent tasks on a fixed pool, discounted by its success
// probability. Candidates are the observed values; the score is
// P(v <= a) / a, time-weighted to favour long-running successes.
type maxThroughput struct {
	recs     record.List
	cachedAt int
	cached   float64
}

func (mt *maxThroughput) Predict(*rand.Rand) float64 {
	n := mt.recs.Len()
	if n == 0 {
		return 0
	}
	if mt.cachedAt == n {
		return mt.cached
	}
	tAll := mt.recs.TimeSum(0, n-1)
	best := math.Inf(-1)
	bestA := mt.recs.MaxValue()
	for k := 0; k < n; k++ {
		a := mt.recs.Value(k)
		if k+1 < n && mt.recs.Value(k+1) == a {
			continue
		}
		if a <= 0 {
			continue
		}
		pSuccess := mt.recs.TimeSum(0, k) / tAll
		score := pSuccess / a
		if score > best {
			best = score
			bestA = a
		}
	}
	mt.cachedAt, mt.cached = n, bestA
	return bestA
}

func (mt *maxThroughput) Retry(prev float64, _ *rand.Rand) float64 {
	return tovarRetry(&mt.recs, prev)
}

func (mt *maxThroughput) Observe(rec record.Record) { mt.recs.Add(rec) }

func (mt *maxThroughput) Len() int { return mt.recs.Len() }

// tovarRetry implements the at-most-once-retry policy: escalate straight to
// the maximum seen value, and keep doubling if even that proves too small.
func tovarRetry(recs *record.List, prev float64) float64 {
	if m := recs.MaxValue(); m > prev {
		return m
	}
	if prev <= 0 {
		return 1
	}
	return prev * 2
}
