package allocator

import (
	"math"
	"math/rand/v2"
	"sort"

	"dynalloc/internal/record"
)

// Extension algorithms beyond the paper's seven (its Section VII names
// "exploring other approaches and deriving alternative solutions" as future
// work). They are excluded from the paper-reproduction figures — Names()
// stays the evaluation's seven — but share the same Policy machinery and
// participate in the extended grid via ExtendedNames().

// Extension algorithm names.
const (
	// KMeans is the k-means clustering variant of the category-aware
	// allocator of Phung et al. [11] ("using the k-means and quantile
	// clustering methods"); Quantized covers the quantile variant.
	KMeans Name = "kmeans-bucketing"
	// Percentile allocates a fixed high quantile of the observed records —
	// a common operations heuristic and a useful yardstick for the
	// bucketing algorithms.
	Percentile Name = "percentile"
)

// ExtendedNames returns the paper's seven algorithms plus the extensions.
func ExtendedNames() []Name {
	return append(Names(), KMeans, Percentile)
}

// kmeans clusters the observed records with 1-D Lloyd's algorithm and
// treats each cluster as a bucket: representative = cluster max,
// probability = record share. Retry escalates through higher clusters, then
// doubles.
type kmeans struct {
	recs record.List
	k    int
	// Lloyd's algorithm is deterministic for a fixed record list; cache the
	// clusters until the next observation.
	cachedAt      int
	cachedReps    []float64
	cachedWeights []float64
}

func newKMeans(k int) *kmeans {
	if k <= 0 {
		k = 3
	}
	return &kmeans{k: k}
}

// clusters returns the bucket representatives and record-count weights.
func (km *kmeans) clusters() (reps, weights []float64) {
	n := km.recs.Len()
	if n == 0 {
		return nil, nil
	}
	if km.cachedAt == n {
		return km.cachedReps, km.cachedWeights
	}
	defer func() {
		km.cachedAt, km.cachedReps, km.cachedWeights = n, reps, weights
	}()
	sorted := km.recs.Sorted()
	k := km.k
	if k > n {
		k = n
	}
	// Initialize centroids evenly across the sorted records (deterministic;
	// no k-means++ randomness so allocations are reproducible).
	centroids := make([]float64, k)
	for i := range centroids {
		centroids[i] = sorted[(2*i+1)*(n-1)/(2*k)].Value
	}
	assign := make([]int, n)
	for iter := 0; iter < 32; iter++ {
		changed := false
		// Assignment: records are sorted, centroids are sorted, so the
		// boundary between cluster c and c+1 is the midpoint.
		for i, r := range sorted {
			best := 0
			bestD := math.Abs(r.Value - centroids[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(r.Value - centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Update.
		sum := make([]float64, k)
		cnt := make([]float64, k)
		for i, r := range sorted {
			sum[assign[i]] += r.Value
			cnt[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if cnt[c] > 0 {
				centroids[c] = sum[c] / cnt[c]
			}
		}
		sort.Float64s(centroids)
		if !changed {
			break
		}
	}
	// Materialize buckets from assignments (clusters are contiguous in
	// sorted order because centroids are sorted).
	maxV := make([]float64, k)
	cnt := make([]float64, k)
	for i, r := range sorted {
		c := assign[i]
		cnt[c]++
		if r.Value > maxV[c] {
			maxV[c] = r.Value
		}
	}
	for c := 0; c < k; c++ {
		if cnt[c] == 0 {
			continue
		}
		reps = append(reps, maxV[c])
		weights = append(weights, cnt[c])
	}
	return reps, weights
}

func (km *kmeans) Predict(r *rand.Rand) float64 {
	reps, weights := km.clusters()
	return sampleReps(reps, weights, -math.Inf(1), r)
}

func (km *kmeans) Retry(prev float64, r *rand.Rand) float64 {
	reps, _ := km.clusters()
	any := false
	for _, rep := range reps {
		if rep > prev {
			any = true
			break
		}
	}
	if !any {
		if prev <= 0 {
			return 1
		}
		return prev * 2
	}
	_, weights := km.clusters()
	return sampleReps(reps, weights, prev, r)
}

func (km *kmeans) Observe(rec record.Record) { km.recs.Add(rec) }

func (km *kmeans) Len() int { return km.recs.Len() }

// sampleReps draws a representative above the floor in proportion to the
// weights, or 0 when none qualify.
func sampleReps(reps, weights []float64, floor float64, r *rand.Rand) float64 {
	total := 0.0
	for i, rep := range reps {
		if rep > floor {
			total += weights[i]
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, rep := range reps {
		if rep <= floor {
			continue
		}
		x -= weights[i]
		if x < 0 {
			return rep
		}
	}
	return reps[len(reps)-1]
}

// percentile allocates the q-quantile of observed values (default P95) and
// retries at the maximum, then doubles.
type percentile struct {
	recs record.List
	q    float64
}

func newPercentile(q float64) *percentile {
	if q <= 0 || q >= 1 {
		q = 0.95
	}
	return &percentile{q: q}
}

func (p *percentile) Predict(*rand.Rand) float64 {
	n := p.recs.Len()
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p.q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return p.recs.Value(idx)
}

func (p *percentile) Retry(prev float64, _ *rand.Rand) float64 {
	return tovarRetry(&p.recs, prev)
}

func (p *percentile) Observe(rec record.Record) { p.recs.Add(rec) }

func (p *percentile) Len() int { return p.recs.Len() }
