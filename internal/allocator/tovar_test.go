package allocator

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dynalloc/internal/record"
)

func observeValues(e Estimator, values ...float64) {
	for i, v := range values {
		e.Observe(record.Record{TaskID: i + 1, Value: v, Sig: float64(i + 1), Time: 1})
	}
}

func TestMinWasteHandComputed(t *testing.T) {
	// Records (value, time=1): 10, 20, 100; max m = 100.
	//   a=10:  waste = 10*3 - 130 + 100*2 = 100
	//   a=20:  waste = 20*3 - 130 + 100*1 = 30
	//   a=100: waste = 100*3 - 130 + 0   = 170
	// argmin is a = 20.
	mw := &minWaste{}
	observeValues(mw, 10, 20, 100)
	r := rand.New(rand.NewPCG(1, 1))
	if got := mw.Predict(r); got != 20 {
		t.Errorf("MinWaste first allocation = %v, want 20", got)
	}
}

func TestMinWasteEmpty(t *testing.T) {
	mw := &minWaste{}
	r := rand.New(rand.NewPCG(2, 2))
	if got := mw.Predict(r); got != 0 {
		t.Errorf("empty Predict = %v, want 0", got)
	}
}

func TestMinWasteTimeWeighting(t *testing.T) {
	// A long-running small task shifts the optimum downward: wasting
	// (a - v) over a long time is expensive.
	mw := &minWaste{}
	mw.Observe(record.Record{TaskID: 1, Value: 10, Time: 1000})
	mw.Observe(record.Record{TaskID: 2, Value: 100, Time: 1})
	r := rand.New(rand.NewPCG(3, 3))
	if got := mw.Predict(r); got != 10 {
		t.Errorf("time-weighted MinWaste = %v, want 10", got)
	}
}

func TestMinWastePredictIsOptimalAmongCandidates(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := rand.New(rand.NewPCG(seed, 21))
		mw := &minWaste{}
		var vals, times []float64
		for i := 0; i < n; i++ {
			v := r.Float64()*100 + 1
			tm := r.Float64()*10 + 0.1
			vals = append(vals, v)
			times = append(times, tm)
			mw.Observe(record.Record{TaskID: i + 1, Value: v, Time: tm})
		}
		got := mw.Predict(rand.New(rand.NewPCG(0, 0)))
		// Naive evaluation of the expected-waste objective at a candidate.
		m := 0.0
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		waste := func(a float64) float64 {
			w := 0.0
			for i, v := range vals {
				if v <= a {
					w += times[i] * (a - v)
				} else {
					w += times[i] * (a + m - v)
				}
			}
			return w
		}
		best := waste(got)
		for _, a := range vals {
			if waste(a) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxThroughputPrefersDenseSmallAllocations(t *testing.T) {
	// Values 10, 12, 100 (time 1 each): scores 1/30, (2/3)/12, 1/100;
	// the winner is 12.
	mt := &maxThroughput{}
	observeValues(mt, 10, 12, 100)
	r := rand.New(rand.NewPCG(4, 4))
	if got := mt.Predict(r); got != 12 {
		t.Errorf("MaxThroughput first allocation = %v, want 12", got)
	}
}

func TestMaxThroughputEmpty(t *testing.T) {
	mt := &maxThroughput{}
	r := rand.New(rand.NewPCG(5, 5))
	if got := mt.Predict(r); got != 0 {
		t.Errorf("empty Predict = %v, want 0", got)
	}
}

func TestMaxThroughputPredictIsOptimalAmongCandidates(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := rand.New(rand.NewPCG(seed, 22))
		mt := &maxThroughput{}
		var vals, times []float64
		for i := 0; i < n; i++ {
			v := r.Float64()*100 + 1
			tm := r.Float64()*10 + 0.1
			vals = append(vals, v)
			times = append(times, tm)
			mt.Observe(record.Record{TaskID: i + 1, Value: v, Time: tm})
		}
		got := mt.Predict(rand.New(rand.NewPCG(0, 0)))
		tAll := 0.0
		for _, tm := range times {
			tAll += tm
		}
		score := func(a float64) float64 {
			s := 0.0
			for i, v := range vals {
				if v <= a {
					s += times[i]
				}
			}
			return s / tAll / a
		}
		best := score(got)
		for _, a := range vals {
			if score(a) > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTovarRetryPolicy(t *testing.T) {
	for _, makeEst := range []func() Estimator{
		func() Estimator { return &minWaste{} },
		func() Estimator { return &maxThroughput{} },
	} {
		e := makeEst()
		observeValues(e, 10, 20, 100)
		r := rand.New(rand.NewPCG(6, 6))
		// At-most-once retry: escalate straight to the max seen.
		if got := e.Retry(20, r); got != 100 {
			t.Errorf("%T Retry(20) = %v, want 100", e, got)
		}
		// Beyond the max: doubling.
		if got := e.Retry(100, r); got != 200 {
			t.Errorf("%T Retry(100) = %v, want 200", e, got)
		}
		if got := e.Retry(0, r); got != 100 {
			t.Errorf("%T Retry(0) = %v, want 100", e, got)
		}
	}
	// With no records at all, retry still increases.
	e := &minWaste{}
	r := rand.New(rand.NewPCG(7, 7))
	if got := e.Retry(0, r); got != 1 {
		t.Errorf("no-record Retry(0) = %v, want 1", got)
	}
}
