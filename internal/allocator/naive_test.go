package allocator

import (
	"math/rand/v2"
	"testing"

	"dynalloc/internal/record"
)

func TestWholeMachineAlwaysCapacity(t *testing.T) {
	w := &wholeMachine{capacity: 16}
	r := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 5; i++ {
		if got := w.Predict(r); got != 16 {
			t.Fatalf("Predict = %v, want 16", got)
		}
		w.Observe(record.Record{TaskID: i, Value: 3})
	}
	if w.Len() != 5 {
		t.Errorf("Len = %d", w.Len())
	}
	if got := w.Retry(16, r); got != 32 {
		t.Errorf("Retry(16) = %v, want 32", got)
	}
	if got := w.Retry(0, r); got != 16 {
		t.Errorf("Retry(0) = %v, want capacity", got)
	}
}

func TestQuantize(t *testing.T) {
	cases := []struct{ v, q, want float64 }{
		{306, 250, 500},
		{250, 250, 250},
		{251, 250, 500},
		{0.4, 1, 1},
		{3.0, 1, 3},
		{100, 0, 100}, // disabled
	}
	for _, c := range cases {
		if got := quantize(c.v, c.q); got != c.want {
			t.Errorf("quantize(%v, %v) = %v, want %v", c.v, c.q, got, c.want)
		}
	}
}

func TestMaxSeenHistogramRounding(t *testing.T) {
	// The paper's example (Section V-C): a constant 306 MB disk consumption
	// yields a 500 MB allocation under a 250 MB histogram.
	m := &maxSeen{quantum: 250}
	r := rand.New(rand.NewPCG(2, 2))
	if got := m.Predict(r); got != 0 {
		t.Fatalf("Predict with no records = %v, want 0", got)
	}
	m.Observe(record.Record{TaskID: 1, Value: 306})
	if got := m.Predict(r); got != 500 {
		t.Errorf("Predict = %v, want 500", got)
	}
	m.Observe(record.Record{TaskID: 2, Value: 120})
	if got := m.Predict(r); got != 500 {
		t.Errorf("Predict after smaller record = %v, want 500 (max seen)", got)
	}
	m.Observe(record.Record{TaskID: 3, Value: 501})
	if got := m.Predict(r); got != 750 {
		t.Errorf("Predict = %v, want 750", got)
	}
}

func TestMaxSeenRetry(t *testing.T) {
	m := &maxSeen{quantum: 250}
	r := rand.New(rand.NewPCG(3, 3))
	m.Observe(record.Record{TaskID: 1, Value: 700})
	// Failure below the quantized max escalates straight to it.
	if got := m.Retry(500, r); got != 750 {
		t.Errorf("Retry(500) = %v, want 750", got)
	}
	// Failure at or above the quantized max doubles.
	if got := m.Retry(750, r); got != 1500 {
		t.Errorf("Retry(750) = %v, want 1500", got)
	}
	if got := m.Retry(0, r); got <= 0 {
		t.Errorf("Retry(0) = %v, want positive", got)
	}
}

func TestExplorerPhases(t *testing.T) {
	e := &explorer{inner: &maxSeen{quantum: 1}, threshold: 3, initial: 1024}
	r := rand.New(rand.NewPCG(4, 4))
	if got := e.Predict(r); got != 1024 {
		t.Fatalf("exploratory Predict = %v, want 1024", got)
	}
	if got := e.Retry(1024, r); got != 2048 {
		t.Errorf("exploratory Retry = %v, want 2048 (doubling)", got)
	}
	if got := e.Retry(0, r); got != 1024 {
		t.Errorf("exploratory Retry(0) = %v, want initial", got)
	}
	for i := 1; i <= 3; i++ {
		e.Observe(record.Record{TaskID: i, Value: 100})
	}
	if e.exploring() {
		t.Fatal("still exploring after threshold records")
	}
	if got := e.Predict(r); got != 100 {
		t.Errorf("steady-state Predict = %v, want 100 (inner estimator)", got)
	}
}

func TestExplorerFallsBackWhenInnerPredictsZero(t *testing.T) {
	e := &explorer{inner: &maxSeen{quantum: 1}, threshold: 1, initial: 7}
	r := rand.New(rand.NewPCG(5, 5))
	e.Observe(record.Record{TaskID: 1, Value: 0}) // zero-valued resource
	if got := e.Predict(r); got != 7 {
		t.Errorf("Predict = %v, want fallback 7", got)
	}
}
